#!/usr/bin/env bash
# The full verification gate: release build + tests, rule-program lint
# over the shipped fixtures, the sync-layer discipline gate, clang-tidy
# and the thread-safety analysis build (both when clang is installed),
# and the tsan/asan/ubsan suites. Any new diagnostic fails the script.
#
# Usage:
#   scripts/check.sh              # everything
#   scripts/check.sh --fast       # release build + ctest + eid-lint +
#                                 # mutex gate only
#   scripts/check.sh --mutex-gate # only the raw-std::mutex grep gate
#                                 # (what the CI thread-safety job calls)
#   EID_CHECK_SANITIZER_TESTS=... # ctest -R filter for sanitizer runs
#                                 # (default: the determinism/equivalence
#                                 #  suites the sanitizers exist to guard)
set -euo pipefail

cd "$(dirname "$0")/.."

# Sync-layer discipline (DESIGN.md §4f): every lock in src/ outside the
# base layer must be a base::Mutex so Clang Thread Safety Analysis can
# see it. A raw std:: synchronization primitive as a member or local is
# invisible to the capability model and fails this gate.
mutex_gate() {
  local hits
  hits=$(grep -rnE 'std::(mutex|shared_mutex|recursive_mutex|condition_variable|lock_guard|unique_lock|scoped_lock|shared_lock)' \
      src --include='*.h' --include='*.cc' | grep -v '^src/base/' || true)
  if [[ -n "$hits" ]]; then
    echo "raw std:: synchronization outside src/base/ (use base::Mutex" \
         "from src/base/mutex.h so thread-safety analysis sees it):"
    echo "$hits"
    return 1
  fi
  echo "mutex gate: no raw std:: synchronization outside src/base/"
}

if [[ "${1:-}" == "--mutex-gate" ]]; then
  mutex_gate
  exit 0
fi

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

# Sanitizer runs cover the suites exercising the parallel exec layer and
# the indexed-vs-exhaustive equivalence; a full suite under three
# sanitizers is prohibitive on small machines. Override the filter (e.g.
# '.' for everything) via EID_CHECK_SANITIZER_TESTS.
# (gtest_discover_tests registers per-case names, so the filter matches
# gtest suite names, not test binary names.)
SANITIZER_TESTS="${EID_CHECK_SANITIZER_TESTS:-^(Coverage/|Staged/)?(Determinism|Differential|BlockEvaluator|DifferentialConflict|DifferentialIncremental|CompiledConjunction|DerivationProgram|DerivationMemo|Identifier|Analyzer.*|ThreadPool|ParallelForHelper|ResolveThreads|ColumnIndex|PlanBlocking|CollectTruePairs|AmqFilter|CandidateGenerator|ColumnarDifferential|ColumnarInterner|EliasFano|Dictionary|FingerprintIndex|Snapshot|SnapshotDifferential)Test\.}"

step() { printf '\n=== %s ===\n' "$*"; }

step "release: configure + build"
cmake --preset release >/dev/null
cmake --build --preset release -j "$(nproc)"

step "release: ctest"
ctest --preset release -j "$(nproc)"

step "eid-lint: shipped fixtures must be clean"
for fixture in example1 example2 example3; do
  ./build/examples/eid-lint --fixture "$fixture" --quiet
  echo "eid-lint --fixture $fixture: clean"
done

step "sync-layer discipline: no raw std::mutex outside src/base/"
mutex_gate

if [[ "$FAST" == "1" ]]; then
  echo "--fast: skipping clang-tidy, thread-safety and sanitizer presets"
  exit 0
fi

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --preset clang-tidy >/dev/null
  cmake --build --preset clang-tidy -j "$(nproc)"
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

step "thread-safety: clang -Wthread-safety[-beta] as errors"
if command -v clang++ >/dev/null 2>&1; then
  cmake --preset thread-safety >/dev/null
  cmake --build --preset thread-safety -j "$(nproc)"
else
  echo "clang++ not installed; skipping (annotations are no-ops on gcc;" \
       "CI runs this gate — see .github/workflows/check.yml)"
fi

for preset in tsan asan ubsan; do
  step "$preset: build + tests ($SANITIZER_TESTS)"
  cmake --preset "$preset" >/dev/null
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --test-dir "build-$preset" -R "$SANITIZER_TESTS" \
    --no-tests=error --output-on-failure -j "$(nproc)"
done

echo
echo "all checks passed"
