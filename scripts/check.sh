#!/usr/bin/env bash
# The full verification gate: release build + tests, rule-program lint
# over the shipped fixtures, clang-tidy (when installed), and the
# tsan/asan/ubsan suites. Any new diagnostic fails the script.
#
# Usage:
#   scripts/check.sh              # everything
#   scripts/check.sh --fast       # release build + ctest + eid-lint only
#   EID_CHECK_SANITIZER_TESTS=... # ctest -R filter for sanitizer runs
#                                 # (default: the determinism/equivalence
#                                 #  suites the sanitizers exist to guard)
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

# Sanitizer runs cover the suites exercising the parallel exec layer and
# the indexed-vs-exhaustive equivalence; a full suite under three
# sanitizers is prohibitive on small machines. Override the filter (e.g.
# '.' for everything) via EID_CHECK_SANITIZER_TESTS.
# (gtest_discover_tests registers per-case names, so the filter matches
# gtest suite names, not test binary names.)
SANITIZER_TESTS="${EID_CHECK_SANITIZER_TESTS:-^(Coverage/)?(Determinism|Differential|DifferentialConflict|DifferentialIncremental|CompiledConjunction|DerivationProgram|DerivationMemo|Identifier|Analyzer.*|ThreadPool|ParallelForHelper|ResolveThreads|ColumnIndex|PlanBlocking|CollectTruePairs|AmqFilter|CandidateGenerator|EliasFano|Dictionary|FingerprintIndex|Snapshot|SnapshotDifferential)Test\.}"

step() { printf '\n=== %s ===\n' "$*"; }

step "release: configure + build"
cmake --preset release >/dev/null
cmake --build --preset release -j "$(nproc)"

step "release: ctest"
ctest --preset release -j "$(nproc)"

step "eid-lint: shipped fixtures must be clean"
for fixture in example1 example2 example3; do
  ./build/examples/eid-lint --fixture "$fixture" --quiet
  echo "eid-lint --fixture $fixture: clean"
done

if [[ "$FAST" == "1" ]]; then
  echo "--fast: skipping clang-tidy and sanitizer presets"
  exit 0
fi

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --preset clang-tidy >/dev/null
  cmake --build --preset clang-tidy -j "$(nproc)"
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

for preset in tsan asan ubsan; do
  step "$preset: build + tests ($SANITIZER_TESTS)"
  cmake --preset "$preset" >/dev/null
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --test-dir "build-$preset" -R "$SANITIZER_TESTS" \
    --no-tests=error --output-on-failure -j "$(nproc)"
done

echo
echo "all checks passed"
