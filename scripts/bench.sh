#!/usr/bin/env bash
# Engine-comparison benchmarks: compiled + memo vs per-tuple interpreter.
#
# Smoke mode (default) runs the comparison at small n so CI can prove the
# benches still build, run, and emit JSON in a few seconds. --full sweeps
# up to n=4096 — the configuration whose numbers EXPERIMENTS.md records.
#
# Output: BENCH_derivation.json (bench_scaling_ilfd), BENCH_matcher.json
# and BENCH_scaling.json (bench_scaling_matcher), and BENCH_snapshot.json
# (bench_snapshot: save/load vs cold rebuild) at the repo root. The
# emitters merge per (name, n[, threads]) key, so a smoke run refreshes
# the small-n records without disturbing committed large-n ones.
#
# After the runs, the quadratic-fallback guard fails the script when any
# blocked-fixture record evaluated as many candidate pairs as the full
# cross product — i.e. the staged generator silently degenerated into
# the all-pairs sweep it exists to replace.
#
# Usage:
#   scripts/bench.sh          # smoke: small n, fast
#   scripts/bench.sh --full   # full sweep, identify up to n=65536
set -euo pipefail

cd "$(dirname "$0")/.."

FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

if [[ ! -x build/bench/bench_scaling_ilfd || ! -x build/bench/bench_snapshot ]]; then
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$(nproc)" \
    --target bench_scaling_ilfd bench_scaling_matcher bench_snapshot
fi

if [[ "$FULL" == "1" ]]; then
  DERIVATION_FILTER='BM_(Derivation|Extension)(Compiled|Interpreter)'
  MATCHER_FILTER='BM_Matcher(Compiled|Interpreter)'
  SCALING_FILTER='BM_ParallelIdentify(Blocked|Scalar)?/|BM_ResidualSweep'
  MIN_TIME=0.2
else
  DERIVATION_FILTER='BM_Derivation(Compiled|Interpreter)/256$|BM_Extension(Compiled|Interpreter)/1024$'
  MATCHER_FILTER='BM_Matcher(Compiled|Interpreter)/1024$'
  SCALING_FILTER='BM_ParallelIdentifyBlocked/4096/|BM_ResidualSweep'
  MIN_TIME=0.05
fi

echo "=== bench_scaling_ilfd -> BENCH_derivation.json ==="
EID_BENCH_JSON=BENCH_derivation.json ./build/bench/bench_scaling_ilfd \
  --benchmark_filter="$DERIVATION_FILTER" \
  --benchmark_min_time="$MIN_TIME"

echo "=== bench_scaling_matcher -> BENCH_matcher.json ==="
EID_BENCH_JSON=BENCH_matcher.json ./build/bench/bench_scaling_matcher \
  --benchmark_filter="$MATCHER_FILTER" \
  --benchmark_min_time="$MIN_TIME"

echo "=== bench_scaling_matcher (blocked identify) -> BENCH_scaling.json ==="
EID_BENCH_JSON=BENCH_scaling.json ./build/bench/bench_scaling_matcher \
  --benchmark_filter="$SCALING_FILTER" \
  --benchmark_min_time="$MIN_TIME"

echo "=== bench_snapshot -> BENCH_snapshot.json ==="
if [[ "$FULL" == "1" ]]; then
  EID_BENCH_JSON=BENCH_snapshot.json ./build/bench/bench_snapshot --full
else
  EID_BENCH_JSON=BENCH_snapshot.json ./build/bench/bench_snapshot
fi

echo "=== snapshot-structure guard (BENCH_snapshot.json) ==="
awk '/"name": "snapshot"/ {
  seen = 1
  lm = $0; sub(/.*"load_ms": /, "", lm); sub(/[,}].*/, "", lm)
  fb = $0; sub(/.*"file_bytes": /, "", fb); sub(/[,}].*/, "", fb)
  if (lm + 0 <= 0 || fb + 0 <= 0) { print "DEGENERATE RECORD: " $0; bad = 1 }
}
END {
  if (!seen) { print "no snapshot records in BENCH_snapshot.json"; exit 1 }
  if (bad) exit 1
  print "snapshot records carry positive load times and file sizes"
}' BENCH_snapshot.json

echo "=== quadratic-fallback guard (BENCH_scaling.json) ==="
awk '/"name": "identify_blocked"/ {
  seen = 1
  cp = $0; sub(/.*"candidate_pairs": /, "", cp); sub(/[,}].*/, "", cp)
  xp = $0; sub(/.*"cross_product": /, "", xp); sub(/[,}].*/, "", xp)
  if (cp + 0 >= xp + 0) { print "QUADRATIC FALLBACK: " $0; bad = 1 }
}
END {
  if (!seen) { print "no identify_blocked records in BENCH_scaling.json"
               exit 1 }
  if (bad) exit 1
  print "blocked fixtures stayed below the cross product"
}' BENCH_scaling.json

echo "=== block-evaluator speedup guard (BENCH_scaling.json) ==="
# The 256-lane block evaluator must stay comfortably ahead of the scalar
# PairTruth oracle on the residual-dominated sweep: at every n where both
# records exist the ratio scalar/block must be >= 1.5 (EXPERIMENTS.md S9;
# the op-major id pass amortises the per-candidate virtual call and
# short-circuits whole blocks, so parity means the block path died).
awk '/"name": "residual_(block|scalar)"/ {
  name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
  n = $0; sub(/.*"n": /, "", n); sub(/[,}].*/, "", n)
  ns = $0; sub(/.*"ns_op": /, "", ns); sub(/[,}].*/, "", ns)
  if (name == "residual_block") block[n] = ns + 0
  else scalar[n] = ns + 0
}
END {
  for (n in block) {
    if (!(n in scalar)) continue
    seen = 1
    ratio = scalar[n] / block[n]
    printf "n=%s block=%.3fms scalar=%.3fms ratio=%.2fx\n", \
           n, block[n] / 1e6, scalar[n] / 1e6, ratio
    if (ratio < 1.5) { print "BLOCK EVALUATOR REGRESSION: ratio < 1.5x"; bad = 1 }
  }
  if (!seen) { print "no residual block/scalar pairs in BENCH_scaling.json"; exit 1 }
  if (bad) exit 1
  print "block evaluator holds >= 1.5x over the scalar oracle"
}' BENCH_scaling.json

echo "=== compiled-engine speedup guard (BENCH_matcher.json) ==="
# The columnar compiled engine must stay comfortably ahead of the
# per-tuple interpreter: at every n where both records exist the ratio
# interpreter/compiled must be >= 1.5 (EXPERIMENTS.md S8 records ~2x at
# n=4096; 1.5 leaves slack for noisy CI machines without letting a
# regression to parity slip through).
awk '/"name": "matcher_(compiled|interpreter)"/ {
  name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
  n = $0; sub(/.*"n": /, "", n); sub(/[,}].*/, "", n)
  ns = $0; sub(/.*"ns_op": /, "", ns); sub(/[,}].*/, "", ns)
  if (name == "matcher_compiled") compiled[n] = ns + 0
  else interp[n] = ns + 0
}
END {
  for (n in compiled) {
    if (!(n in interp)) continue
    seen = 1
    ratio = interp[n] / compiled[n]
    printf "n=%s compiled=%.3fms interpreter=%.3fms ratio=%.2fx\n", \
           n, compiled[n] / 1e6, interp[n] / 1e6, ratio
    if (ratio < 1.5) { print "COMPILED ENGINE REGRESSION: ratio < 1.5x"; bad = 1 }
  }
  if (!seen) { print "no matcher engine pairs in BENCH_matcher.json"; exit 1 }
  if (bad) exit 1
  print "compiled engine holds >= 1.5x over the interpreter"
}' BENCH_matcher.json

echo
echo "wrote BENCH_derivation.json, BENCH_matcher.json, BENCH_scaling.json" \
     "and BENCH_snapshot.json"
