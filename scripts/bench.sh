#!/usr/bin/env bash
# Engine-comparison benchmarks: compiled + memo vs per-tuple interpreter.
#
# Smoke mode (default) runs the comparison at small n so CI can prove the
# benches still build, run, and emit JSON in a few seconds. --full sweeps
# up to n=4096 — the configuration whose numbers EXPERIMENTS.md records.
#
# Output: BENCH_derivation.json (bench_scaling_ilfd) and
# BENCH_matcher.json (bench_scaling_matcher) at the repo root. The
# emitter merges per (name, n, threads) key, so a smoke run refreshes
# the small-n records without disturbing committed n=4096 ones.
#
# Usage:
#   scripts/bench.sh          # smoke: small n, fast
#   scripts/bench.sh --full   # full sweep, n up to 4096
set -euo pipefail

cd "$(dirname "$0")/.."

FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

if [[ ! -x build/bench/bench_scaling_ilfd ]]; then
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$(nproc)" \
    --target bench_scaling_ilfd bench_scaling_matcher
fi

if [[ "$FULL" == "1" ]]; then
  DERIVATION_FILTER='BM_(Derivation|Extension)(Compiled|Interpreter)'
  MATCHER_FILTER='BM_Matcher(Compiled|Interpreter)'
  MIN_TIME=0.2
else
  DERIVATION_FILTER='BM_Derivation(Compiled|Interpreter)/256$|BM_Extension(Compiled|Interpreter)/1024$'
  MATCHER_FILTER='BM_Matcher(Compiled|Interpreter)/1024$'
  MIN_TIME=0.05
fi

echo "=== bench_scaling_ilfd -> BENCH_derivation.json ==="
EID_BENCH_JSON=BENCH_derivation.json ./build/bench/bench_scaling_ilfd \
  --benchmark_filter="$DERIVATION_FILTER" \
  --benchmark_min_time="$MIN_TIME"

echo "=== bench_scaling_matcher -> BENCH_matcher.json ==="
EID_BENCH_JSON=BENCH_matcher.json ./build/bench/bench_scaling_matcher \
  --benchmark_filter="$MATCHER_FILTER" \
  --benchmark_min_time="$MIN_TIME"

echo
echo "wrote BENCH_derivation.json and BENCH_matcher.json"
