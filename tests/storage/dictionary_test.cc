// Interned-value dictionary: dense first-seen ids, exact round-trips of
// every value type, clean rejection of malformed payloads, and the
// contract the snapshot loader relies on — preloading a ValueInterner
// with the decoded dictionary reproduces the ids the builder assigned.

#include "storage/dictionary.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "compile/interner.h"
#include "storage/format.h"

namespace eid {
namespace storage {
namespace {

std::vector<Value> SampleValues() {
  return {Value::Null(),
          Value::Bool(true),
          Value::Bool(false),
          Value::Int(0),
          Value::Int(-12345),
          Value::Int(1LL << 40),
          Value::Double(0.0),
          Value::Double(-2.5),
          Value::Double(1e300),
          Value::String(""),
          Value::String("Kababish"),
          Value::String(std::string(1000, 'x'))};
}

TEST(DictionaryTest, FirstSeenDenseIds) {
  DictionaryBuilder dict;
  EXPECT_EQ(dict.Intern(Value::String("a")), 0u);
  EXPECT_EQ(dict.Intern(Value::String("b")), 1u);
  EXPECT_EQ(dict.Intern(Value::String("a")), 0u);
  EXPECT_EQ(dict.Intern(Value::Int(7)), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, RoundTripAllValueTypes) {
  DictionaryBuilder dict;
  std::vector<Value> values = SampleValues();
  for (const Value& v : values) dict.Intern(v);
  ByteWriter w;
  dict.AppendTo(&w);
  std::string bytes = std::move(w).Take();

  ByteReader in(bytes.data(), bytes.size());
  std::vector<Value> decoded;
  Status st = ParseDictionary(&in, &decoded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(decoded[i] == values[i]) << "id " << i;
    EXPECT_EQ(decoded[i].type(), values[i].type()) << "id " << i;
  }
}

TEST(DictionaryTest, ParseRejectsTruncationAtEveryPrefix) {
  DictionaryBuilder dict;
  for (const Value& v : SampleValues()) dict.Intern(v);
  ByteWriter w;
  dict.AppendTo(&w);
  std::string bytes = std::move(w).Take();
  for (size_t len = 0; len < bytes.size(); ++len) {
    ByteReader in(bytes.data(), len);
    std::vector<Value> decoded;
    EXPECT_FALSE(ParseDictionary(&in, &decoded).ok()) << "prefix " << len;
  }
}

TEST(DictionaryTest, ParseRejectsUnknownTypeTag) {
  ByteWriter w;
  w.PutU32(1);
  w.PutU8(0xEE);  // no such ValueType
  std::string bytes = std::move(w).Take();
  ByteReader in(bytes.data(), bytes.size());
  std::vector<Value> decoded;
  Status st = ParseDictionary(&in, &decoded);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("snapshot corrupt:"), std::string::npos);
}

TEST(DictionaryTest, ParseRejectsOverstatedCount) {
  ByteWriter w;
  w.PutU32(1u << 30);  // claims a billion values in a tiny payload
  std::string bytes = std::move(w).Take();
  ByteReader in(bytes.data(), bytes.size());
  std::vector<Value> decoded;
  EXPECT_FALSE(ParseDictionary(&in, &decoded).ok());
}

TEST(DictionaryTest, InternerPreloadReproducesIds) {
  // The snapshot loader hands the decoded dictionary to a ValueInterner;
  // GetOrIntern afterwards must return exactly the builder's ids, so
  // compiled programs over a loaded world agree with the saved one.
  DictionaryBuilder dict;
  std::vector<Value> values = SampleValues();
  std::vector<uint32_t> ids;
  for (const Value& v : values) ids.push_back(dict.Intern(v));

  compile::ValueInterner interner;
  interner.Preload(dict.values());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(interner.GetOrIntern(values[i]), ids[i]) << "value " << i;
  }
  // New values keep extending densely past the preloaded range.
  EXPECT_EQ(interner.GetOrIntern(Value::String("fresh")), dict.size());
}

}  // namespace
}  // namespace storage
}  // namespace eid
