// Snapshot round-trip differential: build a generated world, identify,
// save, load, and re-identify from the loaded sources with the loaded
// rule program — across MatcherOptions::staged on/off and thread counts
// {1, 8}, with and without the snapshot accelerators (AMQ seeds). Every
// configuration must reproduce the saved MT/NMT pair lists and partition
// counts bit-identically: the snapshot is a faithful world image, not an
// approximation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eid.h"
#include "storage/snapshot.h"
#include "workload/generator.h"

// WriteSnapshot returns Status; keep the assertion next to the use site.
#define EID_ASSERT_WRITE(expr)                    \
  do {                                            \
    ::eid::Status _st = (expr);                   \
    ASSERT_TRUE(_st.ok()) << _st.ToString();      \
  } while (0)

namespace eid {
namespace storage {
namespace {

GeneratedWorld MakeWorld(size_t per_side) {
  GeneratorConfig gen;
  gen.seed = 1234;
  gen.overlap_entities = per_side / 2;
  gen.r_only_entities = per_side / 2;
  gen.s_only_entities = per_side / 2;
  gen.name_pool = per_side * 2;
  gen.street_pool = per_side * 3;
  gen.cities = 32;
  gen.speciality_pool = 128;
  gen.cuisines = 16;
  gen.ilfd_coverage = 1.0;
  Result<GeneratedWorld> world = GenerateWorld(gen);
  EXPECT_TRUE(world.ok()) << world.status().ToString();
  return std::move(world).value();
}

IdentifierConfig ConfigOf(const GeneratedWorld& world) {
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  config.distinctness_from_ilfds = true;
  return config;
}

void ExpectSameOutcome(const IdentificationResult& expected,
                       const IdentificationResult& actual,
                       const std::string& label) {
  EXPECT_EQ(actual.matching.pairs(), expected.matching.pairs()) << label;
  EXPECT_EQ(actual.negative.table.pairs(), expected.negative.table.pairs())
      << label;
  EXPECT_EQ(actual.partition.total, expected.partition.total) << label;
  EXPECT_EQ(actual.partition.matched, expected.partition.matched) << label;
  EXPECT_EQ(actual.partition.non_matched, expected.partition.non_matched)
      << label;
  EXPECT_EQ(actual.partition.undetermined, expected.partition.undetermined)
      << label;
}

TEST(SnapshotDifferentialTest, LoadedWorldIdentifiesBitIdentically) {
  GeneratedWorld world = MakeWorld(128);
  IdentifierConfig config = ConfigOf(world);
  Result<IdentificationResult> fresh =
      EntityIdentifier(config).Identify(world.r, world.s);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  const std::string path =
      ::testing::TempDir() + "/differential.eidsnap";
  EID_ASSERT_WRITE(
      WriteSnapshot(ImageOf(world.r, world.s, config, *fresh), path));
  Result<LoadedWorld> loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The persisted tables equal the fresh run's.
  EXPECT_EQ(loaded->matching.pairs(), fresh->matching.pairs());
  EXPECT_EQ(loaded->negative.pairs(), fresh->negative.table.pairs());

  for (bool staged : {true, false}) {
    for (int threads : {1, 8}) {
      for (bool seeded : {true, false}) {
        if (seeded && !staged) continue;  // seeds only feed the staged path
        IdentifierConfig again_config = loaded->ToConfig();
        again_config.distinctness_from_ilfds = true;
        again_config.matcher_options.staged = staged;
        again_config.matcher_options.threads = threads;
        if (!seeded) again_config.matcher_options.amq_seeds = nullptr;
        Result<IdentificationResult> again =
            EntityIdentifier(again_config).Identify(loaded->r, loaded->s);
        const std::string label =
            "staged=" + std::to_string(staged) +
            " threads=" + std::to_string(threads) +
            " seeded=" + std::to_string(seeded);
        ASSERT_TRUE(again.ok()) << label << ": "
                                << again.status().ToString();
        ExpectSameOutcome(*fresh, *again, label);
      }
    }
  }
}

TEST(SnapshotDifferentialTest, SaveLoadSaveIsByteStable) {
  // Determinism of the writer: saving a loaded world again produces the
  // same sections (same checksums), so snapshots are reproducible
  // artifacts.
  GeneratedWorld world = MakeWorld(64);
  IdentifierConfig config = ConfigOf(world);
  Result<IdentificationResult> fresh =
      EntityIdentifier(config).Identify(world.r, world.s);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  const std::string path1 = ::testing::TempDir() + "/stable1.eidsnap";
  const std::string path2 = ::testing::TempDir() + "/stable2.eidsnap";
  EID_ASSERT_WRITE(
      WriteSnapshot(ImageOf(world.r, world.s, config, *fresh), path1));

  Result<LoadedWorld> loaded = LoadSnapshot(path1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  WorldImage image;
  image.r = &loaded->r;
  image.s = &loaded->s;
  image.r_extended = &loaded->r_extended;
  image.s_extended = &loaded->s_extended;
  image.r_traces = &loaded->r_traces;
  image.s_traces = &loaded->s_traces;
  image.matching = &loaded->matching;
  image.negative = &loaded->negative;
  image.ilfds = &loaded->ilfds;
  image.correspondence = &loaded->correspondence;
  image.extended_key =
      loaded->extended_key.has_value() ? &*loaded->extended_key : nullptr;
  EID_ASSERT_WRITE(WriteSnapshot(image, path2));

  Result<SnapshotReader> r1 = SnapshotReader::Open(path1);
  Result<SnapshotReader> r2 = SnapshotReader::Open(path2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->sections().size(), r2->sections().size());
  ASSERT_EQ(r1->file_size(), r2->file_size());
  for (size_t i = 0; i < r1->sections().size(); ++i) {
    EXPECT_EQ(r1->sections()[i].kind, r2->sections()[i].kind) << i;
    EXPECT_EQ(r1->sections()[i].checksum, r2->sections()[i].checksum) << i;
  }
}

TEST(SnapshotDifferentialTest, ColdStartUsesPostingsNotRowScans) {
  // The preloaded indexes must be drop-in equivalent inside a staged
  // sweep: run the negative-table build with preloaded caches and with
  // scan-built caches; identical tables.
  GeneratedWorld world = MakeWorld(64);
  IdentifierConfig config = ConfigOf(world);
  Result<IdentificationResult> fresh =
      EntityIdentifier(config).Identify(world.r, world.s);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  const std::string path = ::testing::TempDir() + "/coldstart.eidsnap";
  EID_ASSERT_WRITE(
      WriteSnapshot(ImageOf(world.r, world.s, config, *fresh), path));
  Result<LoadedWorld> loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  exec::ColumnIndexCache r_cache(&loaded->r_extended);
  exec::ColumnIndexCache s_cache(&loaded->s_extended);
  loaded->PreloadIndexes(&r_cache, &s_cache);

  // Every attribute of both schemas is resolvable from the preloaded
  // caches and bucket-count-identical to a scan build.
  exec::ColumnIndexCache r_fresh(&loaded->r_extended);
  for (const Attribute& a : loaded->r_extended.schema().attributes()) {
    const exec::ColumnIndex* pre = r_cache.ForAttribute(a.name);
    const exec::ColumnIndex* scan = r_fresh.ForAttribute(a.name);
    ASSERT_NE(pre, nullptr) << a.name;
    ASSERT_NE(scan, nullptr) << a.name;
    EXPECT_EQ(pre->bucket_count(), scan->bucket_count()) << a.name;
  }
}

}  // namespace
}  // namespace storage
}  // namespace eid
