// Snapshot save/load: a full world (paper Example 3) round-trips exactly
// — sources, extended relations, provenance, MT/NMT and the rule program
// — and every corruption we can inject (wrong magic, wrong version,
// foreign endianness, bit flips, truncation at any length, a forged
// posting-list length) comes back as a "snapshot corrupt:" Status, never
// a crash. The asan/ubsan presets run this suite to prove "never UB".

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "eid.h"
#include "workload/fixtures.h"

namespace eid {
namespace storage {
namespace {

struct SavedWorld {
  Relation r, s;
  IdentifierConfig config;
  IdentificationResult result;
  std::string path;
};

SavedWorld SaveExample3(const std::string& filename) {
  SavedWorld world;
  world.r = fixtures::Example3R();
  world.s = fixtures::Example3S();
  world.config.correspondence =
      AttributeCorrespondence::Identity(world.r, world.s);
  world.config.extended_key = fixtures::Example3ExtendedKey();
  world.config.ilfds = fixtures::Example3Ilfds();
  world.config.distinctness_from_ilfds = true;
  Result<IdentificationResult> result =
      EntityIdentifier(world.config).Identify(world.r, world.s);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  world.result = std::move(result).value();
  world.path = ::testing::TempDir() + "/" + filename;
  Status st = WriteSnapshot(
      ImageOf(world.r, world.s, world.config, world.result), world.path);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return world;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

void PatchU64(std::string* bytes, size_t offset, uint64_t v) {
  for (size_t i = 0; i < 8; ++i) {
    (*bytes)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void PatchU32(std::string* bytes, size_t offset, uint32_t v) {
  for (size_t i = 0; i < 4; ++i) {
    (*bytes)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint32_t ReadU32(const std::string& bytes, size_t offset) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[offset + i]))
         << (8 * i);
  }
  return v;
}

uint64_t ReadU64(const std::string& bytes, size_t offset) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[offset + i]))
         << (8 * i);
  }
  return v;
}

/// Recomputes the header checksum (over the first 40 bytes) after a
/// deliberate header edit, so the test reaches the targeted validation
/// step instead of the checksum wall in front of it.
void ResealHeader(std::string* bytes) {
  PatchU64(bytes, 40, Fnv64(bytes->data(), 40));
}

void ExpectCorrupt(const std::string& path, const std::string& needle) {
  Result<LoadedWorld> world = LoadSnapshot(path);
  ASSERT_FALSE(world.ok()) << "expected corruption for " << needle;
  EXPECT_EQ(world.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(world.status().message().find("snapshot corrupt:"),
            std::string::npos)
      << world.status().message();
  EXPECT_NE(world.status().message().find(needle), std::string::npos)
      << "wanted '" << needle << "' in: " << world.status().message();
}

TEST(SnapshotTest, RoundTripExample3) {
  SavedWorld saved = SaveExample3("rt.eidsnap");
  Result<LoadedWorld> loaded = LoadSnapshot(saved.path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Sources and extended relations: schema, names, keys, rows.
  for (const auto& [fresh, from_disk] :
       {std::pair<const Relation*, const Relation*>{&saved.r, &loaded->r},
        {&saved.s, &loaded->s},
        {&saved.result.r_extended, &loaded->r_extended},
        {&saved.result.s_extended, &loaded->s_extended}}) {
    EXPECT_EQ(fresh->name(), from_disk->name());
    ASSERT_EQ(fresh->schema().size(), from_disk->schema().size());
    for (size_t c = 0; c < fresh->schema().size(); ++c) {
      EXPECT_EQ(fresh->schema().attribute(c).name,
                from_disk->schema().attribute(c).name);
      EXPECT_EQ(fresh->schema().attribute(c).type,
                from_disk->schema().attribute(c).type);
    }
    EXPECT_EQ(fresh->keys().size(), from_disk->keys().size());
    ASSERT_EQ(fresh->size(), from_disk->size());
    for (size_t r = 0; r < fresh->size(); ++r) {
      ASSERT_EQ(fresh->row(r).size(), from_disk->row(r).size());
      for (size_t c = 0; c < fresh->row(r).size(); ++c) {
        EXPECT_TRUE(fresh->row(r)[c] == from_disk->row(r)[c])
            << "row " << r << " col " << c;
      }
    }
  }

  // Match tables, pair for pair in order.
  EXPECT_EQ(loaded->matching.pairs(), saved.result.matching.pairs());
  EXPECT_EQ(loaded->negative.pairs(), saved.result.negative.table.pairs());

  // Provenance: derivation traces survive including conflict provenance.
  ASSERT_EQ(loaded->r_traces.size(), saved.result.r_traces.size());
  for (size_t i = 0; i < loaded->r_traces.size(); ++i) {
    EXPECT_EQ(loaded->r_traces[i].derived.size(),
              saved.result.r_traces[i].derived.size());
    EXPECT_EQ(loaded->r_traces[i].steps.size(),
              saved.result.r_traces[i].steps.size());
    EXPECT_EQ(loaded->r_traces[i].conflicts.size(),
              saved.result.r_traces[i].conflicts.size());
    for (size_t k = 0; k < loaded->r_traces[i].steps.size(); ++k) {
      EXPECT_EQ(loaded->r_traces[i].steps[k].attribute,
                saved.result.r_traces[i].steps[k].attribute);
      EXPECT_EQ(loaded->r_traces[i].steps[k].ilfd_index,
                saved.result.r_traces[i].steps[k].ilfd_index);
    }
  }
  EXPECT_EQ(loaded->s_traces.size(), saved.result.s_traces.size());

  // Rule program: ILFDs, correspondence, extended key.
  EXPECT_EQ(loaded->ilfds.size(), saved.config.ilfds.size());
  EXPECT_EQ(loaded->ilfds.ToString(), saved.config.ilfds.ToString());
  EXPECT_EQ(loaded->correspondence.mappings().size(),
            saved.config.correspondence.mappings().size());
  ASSERT_TRUE(loaded->extended_key.has_value());
  EXPECT_EQ(loaded->extended_key->attributes(),
            saved.config.extended_key->attributes());

  // Accelerators and stats are populated.
  EXPECT_GT(loaded->dictionary.size(), 0u);
  ASSERT_NE(loaded->amq_seeds, nullptr);
  EXPECT_EQ(loaded->amq_seeds->r_columns.size(),
            loaded->r_extended.schema().size());
  EXPECT_EQ(loaded->r_postings.columns.size(),
            loaded->r_extended.schema().size());
  EXPECT_EQ(loaded->load_stats.stage, "snapshot_load");
  EXPECT_EQ(loaded->load_stats.dict_values, loaded->dictionary.size());
  EXPECT_GT(loaded->load_stats.snapshot_load_ms, 0.0);
}

TEST(SnapshotTest, LoadedKeysStillEnforced) {
  // AdoptRows defers key-set construction; the first Insert after a load
  // must still reject a duplicate key.
  SavedWorld saved = SaveExample3("keys.eidsnap");
  Result<LoadedWorld> loaded = LoadSnapshot(saved.path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->r.has_keys());
  Row duplicate = loaded->r.row(0);
  Status st = loaded->r.Insert(duplicate);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
}

TEST(SnapshotTest, PreloadedIndexesMatchBuiltIndexes) {
  SavedWorld saved = SaveExample3("idx.eidsnap");
  Result<LoadedWorld> loaded = LoadSnapshot(saved.path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  exec::ColumnIndexCache r_pre(&loaded->r_extended);
  exec::ColumnIndexCache s_pre(&loaded->s_extended);
  loaded->PreloadIndexes(&r_pre, &s_pre);
  exec::ColumnIndexCache r_scan(&loaded->r_extended);

  for (size_t c = 0; c < loaded->r_extended.schema().size(); ++c) {
    const std::string& attr = loaded->r_extended.schema().attribute(c).name;
    const exec::ColumnIndex* from_postings = r_pre.ForAttribute(attr);
    const exec::ColumnIndex* from_scan = r_scan.ForAttribute(attr);
    ASSERT_NE(from_postings, nullptr) << attr;
    ASSERT_NE(from_scan, nullptr) << attr;
    for (size_t r = 0; r < loaded->r_extended.size(); ++r) {
      const Value& v = loaded->r_extended.row(r)[c];
      if (v.is_null()) continue;
      const std::vector<size_t>* a = from_postings->Find(v);
      const std::vector<size_t>* b = from_scan->Find(v);
      ASSERT_NE(a, nullptr) << attr << " value " << v.ToString();
      ASSERT_NE(b, nullptr) << attr << " value " << v.ToString();
      EXPECT_EQ(*a, *b) << attr << " value " << v.ToString();
    }
  }
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  Result<LoadedWorld> world = LoadSnapshot("/nonexistent/nope.eidsnap");
  ASSERT_FALSE(world.ok());
  EXPECT_EQ(world.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, EmptyFileIsCorrupt) {
  const std::string path = ::testing::TempDir() + "/empty.eidsnap";
  WriteFile(path, "");
  Result<LoadedWorld> world = LoadSnapshot(path);
  ASSERT_FALSE(world.ok());
  EXPECT_EQ(world.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, WrongMagicIsCorrupt) {
  SavedWorld saved = SaveExample3("magic.eidsnap");
  std::string bytes = ReadFile(saved.path);
  bytes[0] = 'X';
  WriteFile(saved.path, bytes);
  ExpectCorrupt(saved.path, "magic");
}

TEST(SnapshotTest, WrongVersionIsCorrupt) {
  SavedWorld saved = SaveExample3("version.eidsnap");
  std::string bytes = ReadFile(saved.path);
  PatchU32(&bytes, 8, kSnapshotVersion + 1);
  ResealHeader(&bytes);
  WriteFile(saved.path, bytes);
  ExpectCorrupt(saved.path, "version");
}

TEST(SnapshotTest, ForeignEndiannessIsCorrupt) {
  SavedWorld saved = SaveExample3("endian.eidsnap");
  std::string bytes = ReadFile(saved.path);
  PatchU32(&bytes, 12, 0x04030201);  // byte-swapped sentinel
  ResealHeader(&bytes);
  WriteFile(saved.path, bytes);
  ExpectCorrupt(saved.path, "endian");
}

TEST(SnapshotTest, BitFlippedHeaderIsCorrupt) {
  SavedWorld saved = SaveExample3("hdrflip.eidsnap");
  const std::string pristine = ReadFile(saved.path);
  // Flip one bit in each header byte (first 40: fields; 40-47: the
  // checksum itself). Every mutant must fail.
  for (size_t offset = 8; offset < kHeaderSize; ++offset) {
    std::string bytes = pristine;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x10);
    WriteFile(saved.path, bytes);
    Result<LoadedWorld> world = LoadSnapshot(saved.path);
    ASSERT_FALSE(world.ok()) << "header byte " << offset;
    EXPECT_EQ(world.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SnapshotTest, BitFlipAnywhereNeverCrashes) {
  SavedWorld saved = SaveExample3("flip.eidsnap");
  const std::string pristine = ReadFile(saved.path);
  size_t rejected = 0;
  for (size_t offset = 0; offset < pristine.size(); ++offset) {
    std::string bytes = pristine;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x04);
    WriteFile(saved.path, bytes);
    Result<LoadedWorld> world = LoadSnapshot(saved.path);
    // Checksummed regions must reject; inter-section padding bytes are
    // the only bytes no checksum covers, and flipping those is harmless.
    if (!world.ok()) {
      ++rejected;
      EXPECT_NE(world.status().message().find("snapshot corrupt:"),
                std::string::npos)
          << world.status().message();
    }
  }
  EXPECT_GE(rejected, pristine.size() * 9 / 10);
}

TEST(SnapshotTest, TruncationAtEveryLengthIsCorrupt) {
  SavedWorld saved = SaveExample3("trunc.eidsnap");
  const std::string pristine = ReadFile(saved.path);
  for (size_t len = 0; len < pristine.size(); len += 7) {
    WriteFile(saved.path, pristine.substr(0, len));
    Result<LoadedWorld> world = LoadSnapshot(saved.path);
    ASSERT_FALSE(world.ok()) << "length " << len;
    EXPECT_EQ(world.status().code(), StatusCode::kInvalidArgument)
        << "length " << len;
  }
}

TEST(SnapshotTest, TruncatedPostingListIsCorrupt) {
  // Forge a snapshot whose postings section is cut short but whose
  // checksums are all valid — the decoder itself must catch it.
  SavedWorld saved = SaveExample3("postings.eidsnap");
  std::string bytes = ReadFile(saved.path);
  const uint32_t section_count = ReadU32(bytes, 24);
  bool patched = false;
  for (uint32_t i = 0; i < section_count && !patched; ++i) {
    const size_t entry = kHeaderSize + i * kSectionEntrySize;
    if (ReadU32(bytes, entry) !=
        static_cast<uint32_t>(SectionKind::kPostings)) {
      continue;
    }
    const uint64_t offset = ReadU64(bytes, entry + 8);
    const uint64_t length = ReadU64(bytes, entry + 16);
    ASSERT_GT(length, 5u);
    PatchU64(&bytes, entry + 16, length - 5);  // shorten the payload
    PatchU64(&bytes, entry + 24,
             Fnv64(bytes.data() + offset, length - 5));  // reseal section
    PatchU64(&bytes, 32,
             Fnv64(bytes.data() + kHeaderSize,
                   static_cast<size_t>(section_count) * kSectionEntrySize));
    ResealHeader(&bytes);
    patched = true;
  }
  ASSERT_TRUE(patched);
  WriteFile(saved.path, bytes);
  ExpectCorrupt(saved.path, "posting");
}

TEST(SnapshotTest, WriteRequiresRelations) {
  WorldImage image;  // all null
  Status st = WriteSnapshot(image, ::testing::TempDir() + "/never.eidsnap");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, WriteToUnwritablePathFails) {
  SavedWorld saved = SaveExample3("unwritable.eidsnap");
  Status st = WriteSnapshot(
      ImageOf(saved.r, saved.s, saved.config, saved.result),
      "/nonexistent-dir/x.eidsnap");
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace storage
}  // namespace eid
