// Fingerprint index: buckets agree with a row scan, lookups return the
// exact ascending row sets, serialized sections round-trip, and the AMQ
// seed arrays carry the same fingerprint set a filter built by scanning
// the relation would hold — the no-false-negative handoff.

#include "storage/fingerprint_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exec/amq_filter.h"

namespace eid {
namespace storage {
namespace {

Relation SampleRelation() {
  Relation rel("T", Schema::OfStrings({"name", "city", "cuisine"}));
  const std::vector<std::vector<std::string>> rows = {
      {"Kababish", "Lubbock", "Indian"}, {"Wok", "Austin", "Chinese"},
      {"Kababish", "Austin", "Indian"},  {"Wok", "Lubbock", "Chinese"},
      {"Greek", "Austin", "Greek"},
  };
  for (const auto& row : rows) EXPECT_TRUE(rel.InsertText(row).ok());
  return rel;
}

TEST(FingerprintIndexTest, BucketsMatchRowScan) {
  Relation rel = SampleRelation();
  FingerprintIndex index = FingerprintIndex::Build(rel);
  ASSERT_EQ(index.column_count(), rel.schema().size());
  for (size_t c = 0; c < rel.schema().size(); ++c) {
    for (size_t r = 0; r < rel.size(); ++r) {
      const Value& v = rel.row(r)[c];
      const uint64_t fp = exec::FingerprintKey(c, ValueHash{}(v));
      std::vector<uint32_t> rows = index.Lookup(c, fp);
      EXPECT_TRUE(std::find(rows.begin(), rows.end(),
                            static_cast<uint32_t>(r)) != rows.end())
          << "column " << c << " row " << r;
      EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
    }
    EXPECT_TRUE(index.Lookup(c, 0xDEADBEEFull).empty());
  }
}

TEST(FingerprintIndexTest, NullCellsAreNotIndexed) {
  Relation rel("N", Schema::OfStrings({"a"}));
  EXPECT_TRUE(rel.Insert({Value::Null()}).ok());
  EXPECT_TRUE(rel.Insert({Value::String("x")}).ok());
  FingerprintIndex index = FingerprintIndex::Build(rel);
  // Only the non-NULL value gets a bucket.
  EXPECT_EQ(index.ColumnFingerprints(0).size(), 1u);
}

TEST(FingerprintIndexTest, SectionRoundTrip) {
  FingerprintIndex index = FingerprintIndex::Build(SampleRelation());
  ByteWriter w;
  index.AppendTo(&w);
  std::string bytes = std::move(w).Take();

  ByteReader in(bytes.data(), bytes.size());
  FingerprintIndex decoded;
  Status st = FingerprintIndex::Parse(&in, &decoded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(decoded.column_count(), index.column_count());
  for (size_t c = 0; c < index.column_count(); ++c) {
    EXPECT_EQ(decoded.column(c).fps, index.column(c).fps);
    EXPECT_EQ(decoded.column(c).offsets, index.column(c).offsets);
    EXPECT_EQ(decoded.column(c).rows, index.column(c).rows);
  }
}

TEST(FingerprintIndexTest, ParseRejectsTruncationAtEveryPrefix) {
  FingerprintIndex index = FingerprintIndex::Build(SampleRelation());
  ByteWriter w;
  index.AppendTo(&w);
  std::string bytes = std::move(w).Take();
  for (size_t len = 0; len < bytes.size(); ++len) {
    ByteReader in(bytes.data(), len);
    FingerprintIndex decoded;
    EXPECT_FALSE(FingerprintIndex::Parse(&in, &decoded).ok())
        << "prefix " << len;
  }
}

TEST(FingerprintIndexTest, SeededFilterMatchesScanBuiltFilter) {
  Relation rel = SampleRelation();
  FingerprintIndex index = FingerprintIndex::Build(rel);

  // Scan-built: the candidate generator's fallback path.
  std::set<uint64_t> scanned;
  for (size_t c = 0; c < rel.schema().size(); ++c) {
    for (size_t r = 0; r < rel.size(); ++r) {
      const Value& v = rel.row(r)[c];
      if (v.is_null()) continue;
      scanned.insert(exec::FingerprintKey(c, ValueHash{}(v)));
    }
  }
  // Seed-built: the snapshot path.
  std::set<uint64_t> seeded;
  exec::AmqFilter filter;
  for (size_t c = 0; c < rel.schema().size(); ++c) {
    for (uint64_t fp : index.ColumnFingerprints(c)) {
      seeded.insert(fp);
      filter.Insert(fp);
    }
  }
  EXPECT_EQ(seeded, scanned);
  // No false negatives through the filter for any present fingerprint.
  for (uint64_t fp : scanned) EXPECT_TRUE(filter.Contains(fp));
}

}  // namespace
}  // namespace storage
}  // namespace eid
