// Elias-Fano posting-list codec: exact round-trips over the shapes the
// snapshot emits (empty, singleton, dense, sparse, full range), and
// strict rejection of malformed encodings — a forged or bit-flipped list
// must come back as a Status, never as garbage rows or UB.

#include "storage/elias_fano.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

// gtest-style OK check without pulling in tests/test_util.h (this suite
// exercises the storage layer only).
#define EID_EXPECT_OK_LOCAL(expr)                \
  do {                                           \
    ::eid::Status _st = (expr);                  \
    EXPECT_TRUE(_st.ok()) << _st.ToString();     \
  } while (0)

namespace eid {
namespace storage {
namespace {

std::vector<uint32_t> RoundTrip(const std::vector<uint32_t>& values,
                                uint32_t universe) {
  EliasFano ef = EliasFanoEncode(values, universe);
  std::vector<uint32_t> out;
  Status st = EliasFanoDecode(ef, &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(EliasFanoTest, RoundTripShapes) {
  EXPECT_EQ(RoundTrip({}, 0), (std::vector<uint32_t>{}));
  EXPECT_EQ(RoundTrip({}, 100), (std::vector<uint32_t>{}));
  EXPECT_EQ(RoundTrip({0}, 1), (std::vector<uint32_t>{0}));
  EXPECT_EQ(RoundTrip({7}, 100), (std::vector<uint32_t>{7}));
  // Dense: every element of the universe.
  std::vector<uint32_t> dense;
  for (uint32_t i = 0; i < 257; ++i) dense.push_back(i);
  EXPECT_EQ(RoundTrip(dense, 257), dense);
  // Sparse: few elements in a large universe (high low_bits).
  std::vector<uint32_t> sparse = {3, 70000, 1u << 20, (1u << 28) + 5};
  EXPECT_EQ(RoundTrip(sparse, 1u << 29), sparse);
  // Boundary: first and last possible element.
  EXPECT_EQ(RoundTrip({0, 999}, 1000), (std::vector<uint32_t>{0, 999}));
}

TEST(EliasFanoTest, RoundTripEveryStride) {
  for (uint32_t stride : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    std::vector<uint32_t> values;
    for (uint32_t v = 0; v < 10000; v += stride) values.push_back(v);
    EXPECT_EQ(RoundTrip(values, 10000), values) << "stride=" << stride;
  }
}

TEST(EliasFanoTest, ByteSizeBeatsPlainArrayWhenDense) {
  std::vector<uint32_t> dense;
  for (uint32_t i = 0; i < 4096; ++i) dense.push_back(i);
  EliasFano ef = EliasFanoEncode(dense, 4096);
  EXPECT_LT(ef.ByteSize(), dense.size() * sizeof(uint32_t));
}

TEST(EliasFanoTest, AppendParseRoundTrip) {
  std::vector<uint32_t> values = {1, 5, 6, 42, 900};
  ByteWriter w;
  EliasFanoAppend(EliasFanoEncode(values, 1000), &w);
  std::string bytes = std::move(w).Take();
  ByteReader in(bytes.data(), bytes.size());
  EliasFano parsed;
  ASSERT_TRUE(EliasFanoParse(&in, &parsed));
  EXPECT_TRUE(in.AtEnd());
  std::vector<uint32_t> out;
  EID_EXPECT_OK_LOCAL(EliasFanoDecode(parsed, &out));
  EXPECT_EQ(out, values);
}

TEST(EliasFanoTest, ParseRejectsTruncation) {
  std::vector<uint32_t> values = {1, 5, 6, 42, 900};
  ByteWriter w;
  EliasFanoAppend(EliasFanoEncode(values, 1000), &w);
  std::string bytes = std::move(w).Take();
  for (size_t len = 0; len < bytes.size(); ++len) {
    ByteReader in(bytes.data(), len);
    EliasFano parsed;
    EXPECT_FALSE(EliasFanoParse(&in, &parsed)) << "prefix " << len;
  }
}

TEST(EliasFanoTest, DecodeRejectsForgedEncodings) {
  std::vector<uint32_t> out;

  // low_bits beyond the 31-bit cap.
  EliasFano bad = EliasFanoEncode({1, 2, 3}, 10);
  bad.low_bits = 32;
  EXPECT_FALSE(EliasFanoDecode(bad, &out).ok());

  // Upper bitvector with too few set bits for the claimed count.
  bad = EliasFanoEncode({1, 2, 3}, 10);
  bad.count = 4;
  EXPECT_FALSE(EliasFanoDecode(bad, &out).ok());

  // Element pushed past the universe.
  bad = EliasFanoEncode({1, 2, 9}, 10);
  bad.universe = 5;
  EXPECT_FALSE(EliasFanoDecode(bad, &out).ok());

  // Truncated lower-bits array.
  bad = EliasFanoEncode({100, 200, 300}, 100000);
  if (!bad.lower.empty()) {
    bad.lower.pop_back();
    EXPECT_FALSE(EliasFanoDecode(bad, &out).ok());
  }
}

TEST(EliasFanoTest, DecodeFlaggedBitFlips) {
  // Flip every bit of a small encoding: each mutant must either decode
  // to a valid strictly-increasing in-range sequence or fail cleanly —
  // asan/ubsan turn any out-of-bounds read here into a test failure.
  std::vector<uint32_t> values = {2, 9, 27, 40, 41};
  EliasFano ef = EliasFanoEncode(values, 64);
  for (size_t byte = 0; byte < ef.upper.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      EliasFano mutant = ef;
      mutant.upper[byte] ^= static_cast<uint8_t>(1u << bit);
      std::vector<uint32_t> out;
      Status st = EliasFanoDecode(mutant, &out);
      if (st.ok()) {
        for (size_t i = 0; i < out.size(); ++i) {
          EXPECT_LT(out[i], 64u);
          if (i > 0) {
            EXPECT_LT(out[i - 1], out[i]);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace storage
}  // namespace eid
