// Shared helpers for the eid test suites.

#ifndef EID_TESTS_TEST_UTIL_H_
#define EID_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "relational/relation.h"

namespace eid {
namespace testing {

/// Builds an all-string relation with an optional candidate key, failing
/// the test on any error.
inline Relation MakeRelation(
    const std::string& name, const std::vector<std::string>& attributes,
    const std::vector<std::string>& key,
    const std::vector<std::vector<std::string>>& rows) {
  Relation rel(name, Schema::OfStrings(attributes));
  if (!key.empty()) {
    Status st = rel.DeclareKey(key);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  for (const std::vector<std::string>& row : rows) {
    Status st = rel.InsertText(row);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return rel;
}

/// gtest-friendly OK assertion for Status.
#define EID_EXPECT_OK(expr)                              \
  do {                                                   \
    ::eid::Status _st = (expr);                          \
    EXPECT_TRUE(_st.ok()) << _st.ToString();             \
  } while (0)

#define EID_ASSERT_OK(expr)                              \
  do {                                                   \
    ::eid::Status _st = (expr);                          \
    ASSERT_TRUE(_st.ok()) << _st.ToString();             \
  } while (0)

/// Unwraps a Result<T>, failing the test on error. Usage:
///   EID_ASSERT_OK_AND_ASSIGN(auto rel, ReadCsv(...));
#define EID_ASSERT_OK_AND_ASSIGN(lhs, rexpr)                         \
  auto EID_CONCAT_(_res_, __LINE__) = (rexpr);                       \
  ASSERT_TRUE(EID_CONCAT_(_res_, __LINE__).ok())                     \
      << EID_CONCAT_(_res_, __LINE__).status().ToString();           \
  lhs = std::move(EID_CONCAT_(_res_, __LINE__)).value()

}  // namespace testing
}  // namespace eid

#endif  // EID_TESTS_TEST_UTIL_H_
