#include "logic/kb.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

/// The §5.2 example: F = {(A=a1)->(B=b1), (B=b1)->(C=c1)} as atoms P,Q,R.
class KbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    p_ = table_.Intern("A", Value::Str("a1"));
    q_ = table_.Intern("B", Value::Str("b1"));
    r_ = table_.Intern("C", Value::Str("c1"));
    kb_.Add(Implication{AtomSet::Of({p_}), AtomSet::Of({q_})});
    kb_.Add(Implication{AtomSet::Of({q_}), AtomSet::Of({r_})});
  }

  AtomTable table_;
  KnowledgeBase kb_;
  AtomId p_ = 0, q_ = 0, r_ = 0;
};

TEST_F(KbTest, ClosureContainsSeed) {
  ClosureResult c = kb_.ForwardClosure(AtomSet::Of({r_}));
  EXPECT_EQ(c.atoms, AtomSet::Of({r_}));
  EXPECT_TRUE(c.provenance.empty());
}

TEST_F(KbTest, TransitiveChainSaturates) {
  ClosureResult c = kb_.ForwardClosure(AtomSet::Of({p_}));
  EXPECT_EQ(c.atoms, AtomSet::Of({p_, q_, r_}));
  EXPECT_EQ(c.provenance.at(q_), 0u);
  EXPECT_EQ(c.provenance.at(r_), 1u);
  EXPECT_EQ(c.firing_order, (std::vector<size_t>{0, 1}));
}

TEST_F(KbTest, EntailsAndImplies) {
  EXPECT_TRUE(kb_.Entails(AtomSet::Of({p_}), AtomSet::Of({r_})));
  EXPECT_FALSE(kb_.Entails(AtomSet::Of({q_}), AtomSet::Of({p_})));
  EXPECT_TRUE(kb_.Implies(Implication{AtomSet::Of({p_}), AtomSet::Of({q_, r_})}));
  EXPECT_TRUE(kb_.Implies(Implication{AtomSet::Of({p_}), AtomSet::Of({p_})}));
}

TEST(KnowledgeBaseTest, MultiAtomBodyNeedsEveryAtom) {
  AtomTable t;
  AtomId a = t.Intern("a", Value::Int(1));
  AtomId b = t.Intern("b", Value::Int(1));
  AtomId c = t.Intern("c", Value::Int(1));
  KnowledgeBase kb;
  kb.Add(Implication{AtomSet::Of({a, b}), AtomSet::Of({c})});
  EXPECT_FALSE(kb.Entails(AtomSet::Of({a}), AtomSet::Of({c})));
  EXPECT_FALSE(kb.Entails(AtomSet::Of({b}), AtomSet::Of({c})));
  EXPECT_TRUE(kb.Entails(AtomSet::Of({a, b}), AtomSet::Of({c})));
}

TEST(KnowledgeBaseTest, UnconditionalFactsAlwaysFire) {
  KnowledgeBase kb;
  kb.Add(Implication{AtomSet(), AtomSet::Of({7})});
  ClosureResult c = kb.ForwardClosure(AtomSet());
  EXPECT_TRUE(c.atoms.Contains(7));
}

TEST(KnowledgeBaseTest, MultiHeadDerivesAllAtoms) {
  KnowledgeBase kb;
  kb.Add(Implication{AtomSet::Of({0}), AtomSet::Of({1, 2})});
  ClosureResult c = kb.ForwardClosure(AtomSet::Of({0}));
  EXPECT_TRUE(c.atoms.Contains(1));
  EXPECT_TRUE(c.atoms.Contains(2));
}

TEST(KnowledgeBaseTest, CyclicClausesTerminate) {
  KnowledgeBase kb;
  kb.Add(Implication{AtomSet::Of({0}), AtomSet::Of({1})});
  kb.Add(Implication{AtomSet::Of({1}), AtomSet::Of({0})});
  ClosureResult c = kb.ForwardClosure(AtomSet::Of({0}));
  EXPECT_EQ(c.atoms, AtomSet::Of({0, 1}));
}

TEST(KnowledgeBaseTest, DiamondDerivationsUseFirstClause) {
  // Two clauses derive atom 2; provenance records the first to fire.
  KnowledgeBase kb;
  kb.Add(Implication{AtomSet::Of({0}), AtomSet::Of({2})});
  kb.Add(Implication{AtomSet::Of({1}), AtomSet::Of({2})});
  ClosureResult c = kb.ForwardClosure(AtomSet::Of({0, 1}));
  EXPECT_EQ(c.provenance.at(2), 0u);
}

TEST(KnowledgeBaseTest, LongChainLinearTime) {
  // 100k-clause chain closes without issue (counting algorithm).
  KnowledgeBase kb;
  const AtomId n = 100000;
  for (AtomId i = 0; i < n; ++i) {
    kb.Add(Implication{AtomSet::Of({i}), AtomSet::Of({i + 1})});
  }
  ClosureResult c = kb.ForwardClosure(AtomSet::Of({0}));
  EXPECT_EQ(c.atoms.size(), n + 1);
}

TEST(KnowledgeBaseTest, SeedAtomsDoNotGetProvenance) {
  KnowledgeBase kb;
  kb.Add(Implication{AtomSet::Of({0}), AtomSet::Of({1})});
  ClosureResult c = kb.ForwardClosure(AtomSet::Of({0, 1}));
  EXPECT_TRUE(c.provenance.empty());  // 1 was already in the seed
}

}  // namespace
}  // namespace eid
