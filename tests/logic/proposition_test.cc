#include "logic/proposition.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

TEST(AtomTableTest, InternIsIdempotent) {
  AtomTable table;
  AtomId a = table.Intern("cuisine", Value::Str("Chinese"));
  AtomId b = table.Intern("cuisine", Value::Str("Chinese"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(AtomTableTest, DistinctAtomsGetDistinctIds) {
  AtomTable table;
  AtomId a = table.Intern("cuisine", Value::Str("Chinese"));
  AtomId b = table.Intern("cuisine", Value::Str("Greek"));
  AtomId c = table.Intern("speciality", Value::Str("Chinese"));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(AtomTableTest, ValueTypeDistinguishesAtoms) {
  AtomTable table;
  AtomId a = table.Intern("n", Value::Int(1));
  AtomId b = table.Intern("n", Value::Str("1"));
  EXPECT_NE(a, b);
}

TEST(AtomTableTest, FindWithoutInterning) {
  AtomTable table;
  EXPECT_FALSE(table.Find("a", Value::Int(1)).has_value());
  AtomId id = table.Intern("a", Value::Int(1));
  EXPECT_EQ(table.Find("a", Value::Int(1)), id);
}

TEST(AtomTableTest, RoundTripAndToString) {
  AtomTable table;
  AtomId id = table.Intern("cuisine", Value::Str("Greek"));
  EXPECT_EQ(table.atom(id).attribute, "cuisine");
  EXPECT_EQ(table.ToString(id), "cuisine=Greek");
}

TEST(AtomTableTest, AtomsForAttribute) {
  AtomTable table;
  table.Intern("a", Value::Int(1));
  table.Intern("b", Value::Int(2));
  table.Intern("a", Value::Int(3));
  EXPECT_EQ(table.AtomsForAttribute("a").size(), 2u);
  EXPECT_EQ(table.AtomsForAttribute("zzz").size(), 0u);
}

TEST(AtomSetTest, ConstructionSortsAndDeduplicates) {
  AtomSet s(std::vector<AtomId>{3, 1, 3, 2});
  EXPECT_EQ(s.ids(), (std::vector<AtomId>{1, 2, 3}));
}

TEST(AtomSetTest, ContainsAndContainsAll) {
  AtomSet s = AtomSet::Of({1, 2, 3});
  EXPECT_TRUE(s.Contains(2));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_TRUE(s.ContainsAll(AtomSet::Of({1, 3})));
  EXPECT_FALSE(s.ContainsAll(AtomSet::Of({1, 4})));
  EXPECT_TRUE(s.ContainsAll(AtomSet()));
}

TEST(AtomSetTest, SetOperations) {
  AtomSet a = AtomSet::Of({1, 2, 3});
  AtomSet b = AtomSet::Of({3, 4});
  EXPECT_EQ(a.UnionWith(b).ids(), (std::vector<AtomId>{1, 2, 3, 4}));
  EXPECT_EQ(a.IntersectWith(b).ids(), (std::vector<AtomId>{3}));
  EXPECT_EQ(a.Minus(b).ids(), (std::vector<AtomId>{1, 2}));
}

TEST(AtomSetTest, DisjointFrom) {
  EXPECT_TRUE(AtomSet::Of({1, 2}).DisjointFrom(AtomSet::Of({3})));
  EXPECT_FALSE(AtomSet::Of({1, 2}).DisjointFrom(AtomSet::Of({2})));
  EXPECT_TRUE(AtomSet().DisjointFrom(AtomSet::Of({1})));
}

TEST(AtomSetTest, InsertMaintainsOrder) {
  AtomSet s;
  s.Insert(5);
  s.Insert(1);
  s.Insert(5);
  s.Insert(3);
  EXPECT_EQ(s.ids(), (std::vector<AtomId>{1, 3, 5}));
}

TEST(AtomSetTest, ToStringUsesTable) {
  AtomTable table;
  AtomId a = table.Intern("x", Value::Int(1));
  AtomId b = table.Intern("y", Value::Int(2));
  AtomSet s = AtomSet::Of({a, b});
  EXPECT_EQ(s.ToString(table), "{x=1 ^ y=2}");
}

}  // namespace
}  // namespace eid
