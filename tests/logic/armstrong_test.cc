#include "logic/armstrong.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "logic/model.h"
#include "workload/rng.h"

namespace eid {
namespace {

class ArmstrongTest : public ::testing::Test {
 protected:
  void SetUp() override {
    p_ = table_.Intern("A", Value::Str("a1"));
    q_ = table_.Intern("B", Value::Str("b1"));
    r_ = table_.Intern("C", Value::Str("c1"));
    kb_.Add(Implication{AtomSet::Of({p_}), AtomSet::Of({q_})});
    kb_.Add(Implication{AtomSet::Of({q_}), AtomSet::Of({r_})});
  }

  AtomTable table_;
  KnowledgeBase kb_;
  AtomId p_ = 0, q_ = 0, r_ = 0;
};

TEST_F(ArmstrongTest, ProofOfTransitiveConsequenceVerifies) {
  Implication target{AtomSet::Of({p_}), AtomSet::Of({r_})};
  EID_ASSERT_OK_AND_ASSIGN(Proof proof, BuildProof(kb_, target));
  EID_EXPECT_OK(VerifyProof(kb_, proof, target));
  EXPECT_EQ(proof.Conclusion(), target);
}

TEST_F(ArmstrongTest, ProofOfTrivialImplication) {
  Implication target{AtomSet::Of({p_, q_}), AtomSet::Of({q_})};
  EID_ASSERT_OK_AND_ASSIGN(Proof proof, BuildProof(kb_, target));
  EID_EXPECT_OK(VerifyProof(kb_, proof, target));
}

TEST_F(ArmstrongTest, UnprovableTargetFails) {
  Implication target{AtomSet::Of({r_}), AtomSet::Of({p_})};
  EXPECT_EQ(BuildProof(kb_, target).status().code(), StatusCode::kNotFound);
}

TEST_F(ArmstrongTest, TamperedProofRejected) {
  Implication target{AtomSet::Of({p_}), AtomSet::Of({r_})};
  EID_ASSERT_OK_AND_ASSIGN(Proof proof, BuildProof(kb_, target));
  // Corrupt the final conclusion.
  proof.steps.back().conclusion.head = AtomSet::Of({p_, q_, r_});
  EXPECT_FALSE(VerifyProof(kb_, proof, target).ok());
}

TEST_F(ArmstrongTest, ForwardReferenceRejected) {
  Proof proof;
  proof.steps.push_back(ProofStep{InferenceRule::kDecomposition,
                                  {1},
                                  0,
                                  Implication{AtomSet::Of({p_}),
                                              AtomSet::Of({p_})}});
  proof.steps.push_back(ProofStep{InferenceRule::kReflexivity,
                                  {},
                                  0,
                                  Implication{AtomSet::Of({p_}),
                                              AtomSet::Of({p_})}});
  EXPECT_FALSE(
      VerifyProof(kb_, proof, Implication{AtomSet::Of({p_}), AtomSet::Of({p_})})
          .ok());
}

TEST_F(ArmstrongTest, GivenStepMustMatchClause) {
  Proof proof;
  proof.steps.push_back(ProofStep{
      InferenceRule::kGiven, {}, 0,
      Implication{AtomSet::Of({p_}), AtomSet::Of({r_})}});  // not clause 0
  EXPECT_FALSE(
      VerifyProof(kb_, proof, Implication{AtomSet::Of({p_}), AtomSet::Of({r_})})
          .ok());
}

TEST_F(ArmstrongTest, ProofToStringMentionsRules) {
  Implication target{AtomSet::Of({p_}), AtomSet::Of({r_})};
  EID_ASSERT_OK_AND_ASSIGN(Proof proof, BuildProof(kb_, target));
  std::string text = proof.ToString(table_);
  EXPECT_NE(text.find("reflexivity"), std::string::npos);
  EXPECT_NE(text.find("transitivity"), std::string::npos);
}

TEST(ArmstrongRulesTest, UnionRule) {
  // {X->Y, X->Z} |= X->(Y^Z) (Lemma 2.1).
  Implication xy{AtomSet::Of({0}), AtomSet::Of({1})};
  Implication xz{AtomSet::Of({0}), AtomSet::Of({2})};
  EID_ASSERT_OK_AND_ASSIGN(Implication u, ApplyUnion(xy, xz));
  EXPECT_EQ(u, (Implication{AtomSet::Of({0}), AtomSet::Of({1, 2})}));
  EXPECT_FALSE(ApplyUnion(xy, Implication{AtomSet::Of({5}), AtomSet::Of({2})})
                   .ok());
}

TEST(ArmstrongRulesTest, PseudoTransitivityRule) {
  // {X->Y, (W^Y)->Z} |= (W^X)->Z (Lemma 2.2).
  Implication xy{AtomSet::Of({0}), AtomSet::Of({1})};
  Implication wyz{AtomSet::Of({1, 5}), AtomSet::Of({9})};
  EID_ASSERT_OK_AND_ASSIGN(Implication out, ApplyPseudoTransitivity(xy, wyz));
  EXPECT_EQ(out, (Implication{AtomSet::Of({0, 5}), AtomSet::Of({9})}));
  // Y not inside the second body -> error.
  EXPECT_FALSE(
      ApplyPseudoTransitivity(xy, Implication{AtomSet::Of({5}), AtomSet::Of({9})})
          .ok());
}

TEST(ArmstrongRulesTest, DecompositionRule) {
  Implication xyz{AtomSet::Of({0}), AtomSet::Of({1, 2})};
  EID_ASSERT_OK_AND_ASSIGN(Implication out,
                           ApplyDecomposition(xyz, AtomSet::Of({2})));
  EXPECT_EQ(out, (Implication{AtomSet::Of({0}), AtomSet::Of({2})}));
  EXPECT_FALSE(ApplyDecomposition(xyz, AtomSet::Of({3})).ok());
}

TEST(ArmstrongRulesTest, DerivedRulesAreSemanticallySound) {
  // Model-check the derived rules on their defining shapes.
  std::vector<Implication> premises = {
      Implication{AtomSet::Of({0}), AtomSet::Of({1})},
      Implication{AtomSet::Of({1, 2}), AtomSet::Of({3})}};
  EID_ASSERT_OK_AND_ASSIGN(
      Implication pseudo, ApplyPseudoTransitivity(premises[0], premises[1]));
  EXPECT_TRUE(EntailsByExhaustiveModels(premises, pseudo, 4));
}

/// Randomized soundness + completeness: closure-based derivability must
/// coincide with semantic entailment over all models (Theorem 1), and
/// every built proof must verify.
TEST(ArmstrongPropertyTest, SoundAndCompleteOnRandomKbs) {
  Rng rng(7);
  const size_t universe = 8;
  for (int trial = 0; trial < 200; ++trial) {
    KnowledgeBase kb;
    std::vector<Implication> clauses;
    size_t n_clauses = 1 + rng.Below(5);
    for (size_t c = 0; c < n_clauses; ++c) {
      std::vector<AtomId> body, head;
      size_t nb = 1 + rng.Below(3), nh = 1 + rng.Below(2);
      for (size_t i = 0; i < nb; ++i) {
        body.push_back(static_cast<AtomId>(rng.Below(universe)));
      }
      for (size_t i = 0; i < nh; ++i) {
        head.push_back(static_cast<AtomId>(rng.Below(universe)));
      }
      Implication imp{AtomSet(body), AtomSet(head)};
      clauses.push_back(imp);
      kb.Add(imp);
    }
    // Random target.
    std::vector<AtomId> tb, th;
    size_t ntb = 1 + rng.Below(3);
    for (size_t i = 0; i < ntb; ++i) {
      tb.push_back(static_cast<AtomId>(rng.Below(universe)));
    }
    th.push_back(static_cast<AtomId>(rng.Below(universe)));
    Implication target{AtomSet(tb), AtomSet(th)};

    bool derivable = kb.Implies(target);
    bool semantic = EntailsByExhaustiveModels(clauses, target, universe);
    EXPECT_EQ(derivable, semantic)
        << "trial " << trial << ": closure derivability disagrees with "
        << "semantic entailment";
    if (derivable) {
      EID_ASSERT_OK_AND_ASSIGN(Proof proof, BuildProof(kb, target));
      EID_EXPECT_OK(VerifyProof(kb, proof, target));
    }
  }
}

}  // namespace
}  // namespace eid
