#include "logic/model.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "logic/implication.h"

namespace eid {
namespace {

TEST(ModelTest, VacuouslySatisfiedWhenBodyFalse) {
  Implication imp{AtomSet::Of({0}), AtomSet::Of({1})};
  EXPECT_TRUE(Satisfies(AtomSet::Of({2}), imp));
  EXPECT_TRUE(Satisfies(AtomSet(), imp));
}

TEST(ModelTest, SatisfiedWhenHeadHolds) {
  Implication imp{AtomSet::Of({0}), AtomSet::Of({1})};
  EXPECT_TRUE(Satisfies(AtomSet::Of({0, 1}), imp));
}

TEST(ModelTest, ViolatedWhenBodyHoldsHeadDoesNot) {
  Implication imp{AtomSet::Of({0}), AtomSet::Of({1})};
  EXPECT_FALSE(Satisfies(AtomSet::Of({0}), imp));
}

TEST(ModelTest, SatisfiesAllShortCircuits) {
  std::vector<Implication> imps = {
      Implication{AtomSet::Of({0}), AtomSet::Of({1})},
      Implication{AtomSet::Of({1}), AtomSet::Of({2})}};
  EXPECT_TRUE(SatisfiesAll(AtomSet::Of({0, 1, 2}), imps));
  EXPECT_FALSE(SatisfiesAll(AtomSet::Of({0, 1}), imps));
}

TEST(ModelTest, ExhaustiveEntailmentAgreesOnChain) {
  std::vector<Implication> premises = {
      Implication{AtomSet::Of({0}), AtomSet::Of({1})},
      Implication{AtomSet::Of({1}), AtomSet::Of({2})}};
  EXPECT_TRUE(EntailsByExhaustiveModels(
      premises, Implication{AtomSet::Of({0}), AtomSet::Of({2})}, 3));
  EXPECT_FALSE(EntailsByExhaustiveModels(
      premises, Implication{AtomSet::Of({2}), AtomSet::Of({0})}, 3));
}

TEST(ModelTest, ReflexivityIsValid) {
  EXPECT_TRUE(EntailsByExhaustiveModels(
      {}, Implication{AtomSet::Of({0, 1}), AtomSet::Of({1})}, 2));
}

TEST(ModelTest, NoPremisesNontrivialTargetFails) {
  EXPECT_FALSE(EntailsByExhaustiveModels(
      {}, Implication{AtomSet::Of({0}), AtomSet::Of({1})}, 2));
}

TEST(ImplicationTest, TrivialDetection) {
  EXPECT_TRUE((Implication{AtomSet::Of({0, 1}), AtomSet::Of({1})}).IsTrivial());
  EXPECT_FALSE((Implication{AtomSet::Of({0}), AtomSet::Of({1})}).IsTrivial());
}

TEST(ImplicationTest, DecomposeSplitsHeads) {
  Implication imp{AtomSet::Of({0}), AtomSet::Of({1, 2})};
  std::vector<Implication> parts = Decompose(imp);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].head, AtomSet::Of({1}));
  EXPECT_EQ(parts[1].head, AtomSet::Of({2}));
}

TEST(ImplicationTest, CombineByBodyMergesHeads) {
  std::vector<Implication> imps = {
      Implication{AtomSet::Of({0}), AtomSet::Of({1})},
      Implication{AtomSet::Of({0}), AtomSet::Of({2})},
      Implication{AtomSet::Of({5}), AtomSet::Of({6})}};
  std::vector<Implication> combined = CombineByBody(imps);
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_EQ(combined[0], (Implication{AtomSet::Of({0}), AtomSet::Of({1, 2})}));
}

TEST(ImplicationTest, ToStringFormat) {
  AtomTable table;
  AtomId a = table.Intern("x", Value::Int(1));
  AtomId b = table.Intern("y", Value::Int(2));
  Implication imp{AtomSet::Of({a}), AtomSet::Of({b})};
  EXPECT_EQ(imp.ToString(table), "{x=1} -> {y=2}");
}

}  // namespace
}  // namespace eid
