#include "eid/explain.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

struct Example3Setup {
  IdentifierConfig config;
  IdentificationResult result;
};

Example3Setup RunExample3() {
  Example3Setup setup;
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  setup.config.correspondence = AttributeCorrespondence::Identity(r, s);
  setup.config.extended_key = fixtures::Example3ExtendedKey();
  setup.config.ilfds = fixtures::Example3Ilfds();
  EntityIdentifier identifier(setup.config);
  Result<IdentificationResult> result = identifier.Identify(r, s);
  EXPECT_TRUE(result.ok());
  setup.result = std::move(result).value();
  return setup;
}

TEST(ExplainTest, MatchCitesDerivationChain) {
  Example3Setup setup = RunExample3();
  // R2 (It'sGreek) ↔ S2: speciality derived through I7 then I8.
  EID_ASSERT_OK_AND_ASSIGN(
      std::string text,
      ExplainDecision(setup.result, setup.config, 2, 2));
  EXPECT_NE(text.find("decision: match"), std::string::npos);
  EXPECT_NE(text.find("extended key"), std::string::npos);
  EXPECT_NE(text.find("I7"), std::string::npos);
  EXPECT_NE(text.find("I8"), std::string::npos);
  EXPECT_NE(text.find("Gyros"), std::string::npos);
  EXPECT_NE(text.find("intermediate"), std::string::npos);  // county
}

TEST(ExplainTest, MatchWithDirectKeyHasNoSteps) {
  // Example 2-style: both sides carry the key after one derivation on S.
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example2ExtendedKey();
  config.ilfds = fixtures::Example2Ilfds();
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           EntityIdentifier(config).Identify(r, s));
  EID_ASSERT_OK_AND_ASSIGN(std::string text,
                           ExplainDecision(result, config, 1, 0));
  EXPECT_NE(text.find("decision: match"), std::string::npos);
  EXPECT_NE(text.find("I1"), std::string::npos);  // Mughalai -> Indian
}

TEST(ExplainTest, NonMatchCitesProposition1Rule) {
  Example3Setup setup = RunExample3();
  // R0 (TwinCities Chinese / Hunan) vs S1 (Sichuan) is certified distinct.
  ASSERT_EQ(setup.result.Decide(0, 1), MatchDecision::kNonMatch);
  EID_ASSERT_OK_AND_ASSIGN(
      std::string text,
      ExplainDecision(setup.result, setup.config, 0, 1));
  EXPECT_NE(text.find("decision: non-match"), std::string::npos);
  EXPECT_NE(text.find("Proposition-1 rule"), std::string::npos);
  EXPECT_NE(text.find("orientation"), std::string::npos);
}

TEST(ExplainTest, NonMatchCitesExplicitRuleByName) {
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.distinctness_from_ilfds = false;
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule r3,
      ParseDistinctnessRule(
          "r3", "e2.speciality = \"Mughalai\" & e1.cuisine != \"Indian\""));
  config.distinctness_rules.push_back(r3);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           EntityIdentifier(config).Identify(r, s));
  ASSERT_EQ(result.Decide(0, 0), MatchDecision::kNonMatch);
  EID_ASSERT_OK_AND_ASSIGN(std::string text,
                           ExplainDecision(result, config, 0, 0));
  EXPECT_NE(text.find("rule 'r3'"), std::string::npos);
}

TEST(ExplainTest, UndeterminedNamesTheMissingKnowledge) {
  Example3Setup setup = RunExample3();
  // R4 (VillageWok) vs S1 (Sichuan): R4's speciality is underivable.
  ASSERT_EQ(setup.result.Decide(4, 1), MatchDecision::kUndetermined);
  EID_ASSERT_OK_AND_ASSIGN(
      std::string text,
      ExplainDecision(setup.result, setup.config, 4, 1));
  EXPECT_NE(text.find("decision: undetermined"), std::string::npos);
  EXPECT_NE(text.find("speciality"), std::string::npos);
  EXPECT_NE(text.find("NULL"), std::string::npos);
  EXPECT_NE(text.find("more identity/distinctness knowledge"),
            std::string::npos);
}

TEST(ExplainTest, OutOfRangeRejected) {
  Example3Setup setup = RunExample3();
  EXPECT_FALSE(ExplainDecision(setup.result, setup.config, 99, 0).ok());
  EXPECT_FALSE(ExplainDecision(setup.result, setup.config, 0, 99).ok());
}

}  // namespace
}  // namespace eid
