#include "eid/session.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

PrototypeSession Example3Session() {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  return PrototypeSession(r, s, AttributeCorrespondence::Identity(r, s),
                          fixtures::Example3Ilfds());
}

TEST(SessionTest, CandidatesIncludeCommonAndDerivableAttributes) {
  PrototypeSession session = Example3Session();
  // name is common; cuisine (R-only) and speciality (S-only) are ILFD
  // consequents, so they are extended-key candidates; street/county are
  // neither common nor derivable — county IS derivable (I7) though.
  const std::vector<std::string>& c = session.candidates();
  EXPECT_NE(std::find(c.begin(), c.end(), "name"), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), "cuisine"), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), "speciality"), c.end());
  EXPECT_EQ(std::find(c.begin(), c.end(), "street"), c.end());
  std::string listing = session.ListCandidates();
  EXPECT_NE(listing.find("[0] "), std::string::npos);
  EXPECT_NE(listing.find("name"), std::string::npos);
}

TEST(SessionTest, FullKeyIsVerified) {
  PrototypeSession session = Example3Session();
  const std::vector<std::string>& c = session.candidates();
  std::vector<size_t> picks;
  for (const char* attr : {"name", "cuisine", "speciality"}) {
    picks.push_back(std::find(c.begin(), c.end(), attr) - c.begin());
  }
  EID_ASSERT_OK_AND_ASSIGN(std::string message,
                           session.SetupExtendedKey(picks));
  EXPECT_EQ(message, "Message: The extended key is verified.");
  EID_ASSERT_OK_AND_ASSIGN(bool verified, session.Verified());
  EXPECT_TRUE(verified);
}

TEST(SessionTest, NameOnlyKeyCausesUnsoundMatching) {
  // The prototype's second transcript: extended key {Name} alone matches
  // one tuple to several and is flagged unsound.
  PrototypeSession session = Example3Session();
  const std::vector<std::string>& c = session.candidates();
  size_t name_idx = std::find(c.begin(), c.end(), "name") - c.begin();
  EID_ASSERT_OK_AND_ASSIGN(std::string message,
                           session.SetupExtendedKey({name_idx}));
  EXPECT_EQ(message,
            "Message: The extended key causes unsound matching result.");
  EID_ASSERT_OK_AND_ASSIGN(bool verified, session.Verified());
  EXPECT_FALSE(verified);
}

TEST(SessionTest, PrintersRequireSetup) {
  PrototypeSession session = Example3Session();
  EXPECT_FALSE(session.PrintMatchingTable().ok());
  EXPECT_FALSE(session.PrintIntegratedTable().ok());
  EXPECT_FALSE(session.Verified().ok());
}

TEST(SessionTest, MatchingTablePrintsPrototypeLayout) {
  PrototypeSession session = Example3Session();
  const std::vector<std::string>& c = session.candidates();
  std::vector<size_t> picks;
  for (const char* attr : {"name", "cuisine", "speciality"}) {
    picks.push_back(std::find(c.begin(), c.end(), attr) - c.begin());
  }
  EXPECT_TRUE(session.SetupExtendedKey(picks).ok());
  EID_ASSERT_OK_AND_ASSIGN(std::string table, session.PrintMatchingTable());
  EXPECT_NE(table.find("matching table"), std::string::npos);
  EXPECT_NE(table.find("r_name"), std::string::npos);
  EXPECT_NE(table.find("s_speciality"), std::string::npos);
  // The three matches of the Appendix transcript.
  EXPECT_NE(table.find("Anjuman"), std::string::npos);
  EXPECT_NE(table.find("It'sGreek"), std::string::npos);
  EXPECT_NE(table.find("Hunan"), std::string::npos);
  EXPECT_EQ(table.find("VillageWok"), std::string::npos);
}

TEST(SessionTest, IntegratedTableHasNullsForUnmatched) {
  PrototypeSession session = Example3Session();
  const std::vector<std::string>& c = session.candidates();
  std::vector<size_t> picks;
  for (const char* attr : {"name", "cuisine", "speciality"}) {
    picks.push_back(std::find(c.begin(), c.end(), attr) - c.begin());
  }
  EXPECT_TRUE(session.SetupExtendedKey(picks).ok());
  EID_ASSERT_OK_AND_ASSIGN(std::string table, session.PrintIntegratedTable());
  EXPECT_NE(table.find("integrated table"), std::string::npos);
  EXPECT_NE(table.find("VillageWok"), std::string::npos);
  EXPECT_NE(table.find("null"), std::string::npos);
}

TEST(SessionTest, ExtendedTablePrintersShowDerivedValues) {
  PrototypeSession session = Example3Session();
  const std::vector<std::string>& c = session.candidates();
  std::vector<size_t> picks;
  for (const char* attr : {"name", "cuisine", "speciality"}) {
    picks.push_back(std::find(c.begin(), c.end(), attr) - c.begin());
  }
  EXPECT_TRUE(session.SetupExtendedKey(picks).ok());
  EID_ASSERT_OK_AND_ASSIGN(std::string r_table, session.PrintExtendedR());
  EXPECT_NE(r_table.find("Gyros"), std::string::npos);  // derived via I7+I8
  EID_ASSERT_OK_AND_ASSIGN(std::string s_table, session.PrintExtendedS());
  EXPECT_NE(s_table.find("Chinese"), std::string::npos);  // derived via I1
}

TEST(SessionTest, BadPicksRejected) {
  PrototypeSession session = Example3Session();
  EXPECT_FALSE(session.SetupExtendedKey({}).ok());
  EXPECT_FALSE(session.SetupExtendedKey({999}).ok());
}

}  // namespace
}  // namespace eid
