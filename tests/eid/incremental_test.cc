#include "eid/incremental.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"
#include "workload/generator.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

IdentifierConfig Example3Config() {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example3ExtendedKey();
  config.ilfds = fixtures::Example3Ilfds();
  return config;
}

Relation EmptyLike(const Relation& model) {
  Relation out(model.name(), model.schema());
  for (const KeyDef& k : model.keys()) {
    std::vector<std::string> names;
    for (size_t i : k.attribute_indices) {
      names.push_back(model.schema().attribute(i).name);
    }
    EXPECT_TRUE(out.DeclareKey(names).ok());
  }
  return out;
}

Result<IncrementalIdentifier> MakeExample3Incremental() {
  return IncrementalIdentifier::Create(Example3Config(),
                                       EmptyLike(fixtures::Example3R()),
                                       EmptyLike(fixtures::Example3S()));
}

TEST(IncrementalTest, ReplayingExample3MatchesBatch) {
  EID_ASSERT_OK_AND_ASSIGN(IncrementalIdentifier inc,
                           MakeExample3Incremental());
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  for (const Row& row : r.rows()) {
    EID_ASSERT_OK_AND_ASSIGN(size_t id, inc.InsertR(row));
    (void)id;
  }
  for (const Row& row : s.rows()) {
    EID_ASSERT_OK_AND_ASSIGN(size_t id, inc.InsertS(row));
    (void)id;
  }
  EXPECT_EQ(inc.r_size(), 5u);
  EXPECT_EQ(inc.s_size(), 4u);
  EID_EXPECT_OK(inc.Uniqueness());

  EntityIdentifier batch(Example3Config());
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult reference,
                           batch.Identify(r, s));
  EID_ASSERT_OK_AND_ASSIGN(Relation inc_mt, inc.MatchingRelation());
  EID_ASSERT_OK_AND_ASSIGN(Relation ref_mt, reference.MatchingRelation("MT"));
  EXPECT_TRUE(inc_mt.RowsEqualUnordered(ref_mt));
  EXPECT_EQ(inc.Partition().matched, reference.partition.matched);
  EXPECT_EQ(inc.Partition().non_matched, reference.partition.non_matched);
  EXPECT_EQ(inc.Partition().undetermined, reference.partition.undetermined);
}

TEST(IncrementalTest, InsertionOrderIndependent) {
  EID_ASSERT_OK_AND_ASSIGN(IncrementalIdentifier forward,
                           MakeExample3Incremental());
  EID_ASSERT_OK_AND_ASSIGN(IncrementalIdentifier backward,
                           MakeExample3Incremental());
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  for (const Row& row : s.rows()) EXPECT_TRUE(forward.InsertS(row).ok());
  for (const Row& row : r.rows()) EXPECT_TRUE(forward.InsertR(row).ok());
  for (size_t i = r.size(); i-- > 0;) {
    EXPECT_TRUE(backward.InsertR(r.row(i)).ok());
  }
  for (size_t i = s.size(); i-- > 0;) {
    EXPECT_TRUE(backward.InsertS(s.row(i)).ok());
  }
  EID_ASSERT_OK_AND_ASSIGN(Relation a, forward.MatchingRelation());
  EID_ASSERT_OK_AND_ASSIGN(Relation b, backward.MatchingRelation());
  EXPECT_TRUE(a.RowsEqualUnordered(b));
}

TEST(IncrementalTest, DeleteRetractsMatches) {
  EID_ASSERT_OK_AND_ASSIGN(IncrementalIdentifier inc,
                           MakeExample3Incremental());
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  std::vector<size_t> r_ids, s_ids;
  for (const Row& row : r.rows()) {
    EID_ASSERT_OK_AND_ASSIGN(size_t id, inc.InsertR(row));
    r_ids.push_back(id);
  }
  for (const Row& row : s.rows()) {
    EID_ASSERT_OK_AND_ASSIGN(size_t id, inc.InsertS(row));
    s_ids.push_back(id);
  }
  EXPECT_EQ(inc.Partition().matched, 3u);
  // Delete the Anjuman R tuple: its match disappears.
  EID_EXPECT_OK(inc.DeleteR(r_ids[3]));
  EXPECT_EQ(inc.Partition().matched, 2u);
  EXPECT_FALSE(inc.MatchOfS(s_ids[3]).has_value());
  // Deleting twice is NotFound.
  EXPECT_EQ(inc.DeleteR(r_ids[3]).code(), StatusCode::kNotFound);
  // Re-inserting restores the match (under a fresh id).
  EID_ASSERT_OK_AND_ASSIGN(size_t new_id, inc.InsertR(r.row(3)));
  EXPECT_EQ(inc.Partition().matched, 3u);
  EXPECT_EQ(inc.MatchOfR(new_id), s_ids[3]);
}

TEST(IncrementalTest, UniquenessViolationAndRecoveryOnDelete) {
  // Extended key {name} and two same-name S tuples: the second candidate
  // is shadowed; deleting the first S tuple lets it surface.
  Relation r_proto = MakeRelation("R", {"name", "street"}, {"name", "street"},
                                  {});
  Relation s_proto = MakeRelation("S", {"name", "city"}, {"name", "city"},
                                  {});
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r_proto, s_proto);
  config.extended_key = ExtendedKey({"name"});
  EID_ASSERT_OK_AND_ASSIGN(
      IncrementalIdentifier inc,
      IncrementalIdentifier::Create(config, r_proto, s_proto));
  EID_ASSERT_OK_AND_ASSIGN(size_t r0,
                           inc.InsertR(Row{Value::Str("Wok"), Value::Str("A")}));
  EID_ASSERT_OK_AND_ASSIGN(size_t s0,
                           inc.InsertS(Row{Value::Str("Wok"), Value::Str("X")}));
  EID_ASSERT_OK_AND_ASSIGN(size_t s1,
                           inc.InsertS(Row{Value::Str("Wok"), Value::Str("Y")}));
  EXPECT_EQ(inc.Uniqueness().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(inc.MatchOfR(r0), s0);  // greedy: first candidate kept
  EID_EXPECT_OK(inc.DeleteS(s0));
  EID_EXPECT_OK(inc.Uniqueness());
  EXPECT_EQ(inc.MatchOfR(r0), s1);  // shadowed candidate surfaced
}

TEST(IncrementalTest, KeyViolationsRejectedWithoutStateChange) {
  EID_ASSERT_OK_AND_ASSIGN(IncrementalIdentifier inc,
                           MakeExample3Incremental());
  Relation r = fixtures::Example3R();
  EXPECT_TRUE(inc.InsertR(r.row(0)).ok());
  // Same (name, cuisine) key again.
  Result<size_t> dup = inc.InsertR(
      Row{Value::Str("TwinCities"), Value::Str("Chinese"), Value::Str("Z")});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(inc.r_size(), 1u);
  // Key slot frees after deletion.
  EID_EXPECT_OK(inc.DeleteR(0));
  EXPECT_TRUE(inc.InsertR(Row{Value::Str("TwinCities"), Value::Str("Chinese"),
                              Value::Str("Z")})
                  .ok());
}

TEST(IncrementalTest, NegativePairsTrackDistinctnessRules) {
  EID_ASSERT_OK_AND_ASSIGN(IncrementalIdentifier inc,
                           MakeExample3Incremental());
  // R: TwinCities Chinese (derives speciality=Hunan via I5).
  EXPECT_TRUE(inc.InsertR(fixtures::Example3R().row(0)).ok());
  // S: the Sichuan tuple — certified distinct from the Hunan one.
  EXPECT_TRUE(inc.InsertS(fixtures::Example3S().row(1)).ok());
  EXPECT_EQ(inc.Decide(0, 0), MatchDecision::kNonMatch);
  EXPECT_EQ(inc.Partition().non_matched, 1u);
}

TEST(IncrementalTest, RandomReplayEquivalentToBatch) {
  // Insert all tuples of a generated world, delete a third, re-insert
  // some; final state must equal batch identification of the live rows.
  GeneratorConfig gen;
  gen.seed = 77;
  gen.overlap_entities = 24;
  gen.r_only_entities = 12;
  gen.s_only_entities = 12;
  gen.name_pool = 48;
  gen.street_pool = 120;
  gen.cities = 6;
  gen.speciality_pool = 16;
  gen.cuisines = 5;
  gen.ilfd_coverage = 1.0;
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(gen));

  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;

  EID_ASSERT_OK_AND_ASSIGN(
      IncrementalIdentifier inc,
      IncrementalIdentifier::Create(config, EmptyLike(world.r),
                                    EmptyLike(world.s)));
  std::vector<size_t> r_ids, s_ids;
  for (const Row& row : world.r.rows()) {
    EID_ASSERT_OK_AND_ASSIGN(size_t id, inc.InsertR(row));
    r_ids.push_back(id);
  }
  for (const Row& row : world.s.rows()) {
    EID_ASSERT_OK_AND_ASSIGN(size_t id, inc.InsertS(row));
    s_ids.push_back(id);
  }
  // Delete every third R tuple and every fourth S tuple.
  Relation live_r = EmptyLike(world.r);
  Relation live_s = EmptyLike(world.s);
  for (size_t i = 0; i < r_ids.size(); ++i) {
    if (i % 3 == 0) {
      EID_EXPECT_OK(inc.DeleteR(r_ids[i]));
    } else {
      EID_EXPECT_OK(live_r.Insert(world.r.row(i)));
    }
  }
  for (size_t i = 0; i < s_ids.size(); ++i) {
    if (i % 4 == 0) {
      EID_EXPECT_OK(inc.DeleteS(s_ids[i]));
    } else {
      EID_EXPECT_OK(live_s.Insert(world.s.row(i)));
    }
  }
  EntityIdentifier batch(config);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult reference,
                           batch.Identify(live_r, live_s));
  EID_ASSERT_OK_AND_ASSIGN(Relation inc_mt, inc.MatchingRelation());
  EID_ASSERT_OK_AND_ASSIGN(Relation ref_mt, reference.MatchingRelation("MT"));
  EXPECT_TRUE(inc_mt.RowsEqualUnordered(ref_mt))
      << "incremental MT (" << inc_mt.size() << ") != batch MT ("
      << ref_mt.size() << ")";
  EXPECT_EQ(inc.Partition().non_matched, reference.partition.non_matched);
}

}  // namespace
}  // namespace eid
