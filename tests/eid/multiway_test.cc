#include "eid/multiway.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

/// Three agency databases over the Example-3 restaurant world:
///   A(name, cuisine, street), B(name, speciality, county),
///   C(name, cuisine, speciality) — C overlaps both.
std::vector<Relation> ThreeSources() {
  Relation a = fixtures::Example3R();
  a.set_name("A");
  Relation b = fixtures::Example3S();
  b.set_name("B");
  Relation c = MakeRelation("C", {"name", "cuisine", "speciality"},
                            {"name", "cuisine"},
                            {{"TwinCities", "Chinese", "Hunan"},
                             {"VillageWok", "Chinese", "Cantonese"}});
  return {a, b, c};
}

MultiwayConfig Example3MultiwayConfig() {
  MultiwayConfig config;
  config.extended_key = fixtures::Example3ExtendedKey();
  config.ilfds = fixtures::Example3Ilfds();
  return config;
}

TEST(MultiwayTest, RequiresTwoSourcesAndSomeRule) {
  Relation one = fixtures::Example3R();
  EXPECT_FALSE(IdentifyAll({one}, Example3MultiwayConfig()).ok());
  MultiwayConfig empty;
  EXPECT_FALSE(IdentifyAll(ThreeSources(), empty).ok());
}

TEST(MultiwayTest, ThreeWayClustersAreTransitive) {
  EID_ASSERT_OK_AND_ASSIGN(
      MultiwayResult result,
      IdentifyAll(ThreeSources(), Example3MultiwayConfig()));
  EXPECT_TRUE(result.Sound()) << result.transitivity.ToString() << " / "
                              << result.consistency.ToString();
  // A0 (TwinCities Chinese, derives Hunan), B0 (TwinCities Hunan, derives
  // Chinese) and C0 (TwinCities Chinese Hunan) must form one 3-cluster.
  bool found_triple = false;
  for (const EntityCluster& c : result.clusters) {
    if (c.members.size() == 3) {
      found_triple = true;
      EXPECT_EQ(c.members[0], (MemberRef{0, 0}));
      EXPECT_EQ(c.members[1], (MemberRef{1, 0}));
      EXPECT_EQ(c.members[2], (MemberRef{2, 0}));
    }
  }
  EXPECT_TRUE(found_triple);
  // Every tuple is covered exactly once.
  size_t covered = 0;
  for (const EntityCluster& c : result.clusters) covered += c.members.size();
  EXPECT_EQ(covered, 5u + 4u + 2u);
}

TEST(MultiwayTest, PairwiseMatchesStillPresent) {
  EID_ASSERT_OK_AND_ASSIGN(
      MultiwayResult result,
      IdentifyAll(ThreeSources(), Example3MultiwayConfig()));
  // It'sGreek and Anjuman pair A with B only (C doesn't model them).
  size_t pairs = 0;
  for (const EntityCluster* c : result.MergedClusters()) {
    if (c->members.size() == 2) ++pairs;
  }
  EXPECT_EQ(pairs, 2u);
}

TEST(MultiwayTest, DistinctPairsRecorded) {
  EID_ASSERT_OK_AND_ASSIGN(
      MultiwayResult result,
      IdentifyAll(ThreeSources(), Example3MultiwayConfig()));
  EXPECT_FALSE(result.distinct_pairs.empty());
  // VillageWok-Cantonese in C is certified distinct from the Hunan tuple
  // in B (Cantonese entity vs Hunan entity): check some cross pair exists
  // touching relation 2.
  bool touches_c = false;
  for (const auto& [x, y] : result.distinct_pairs) {
    if (x.relation_index == 2 || y.relation_index == 2) touches_c = true;
  }
  EXPECT_TRUE(touches_c);
}

TEST(MultiwayTest, IntegratedTableCoalescesClusters) {
  std::vector<Relation> sources = ThreeSources();
  EID_ASSERT_OK_AND_ASSIGN(MultiwayResult result,
                           IdentifyAll(sources, Example3MultiwayConfig()));
  EID_ASSERT_OK_AND_ASSIGN(Relation table,
                           BuildMultiwayIntegratedTable(sources, result));
  EXPECT_EQ(table.size(), result.clusters.size());
  // The 3-cluster row carries street (from A), county (from B): fully
  // merged properties of one entity.
  bool found = false;
  for (size_t i = 0; i < table.size(); ++i) {
    TupleView t = table.tuple(i);
    if (t.GetOrNull("name").ToString() == "TwinCities" &&
        t.GetOrNull("speciality").ToString() == "Hunan") {
      found = true;
      EXPECT_EQ(t.GetOrNull("street").AsString(), "Co.B2");
      EXPECT_EQ(t.GetOrNull("county").AsString(), "Roseville");
      EXPECT_EQ(t.GetOrNull("cuisine").AsString(), "Chinese");
    }
  }
  EXPECT_TRUE(found);
}

TEST(MultiwayTest, TransitivityViolationDetected) {
  // A relation with two tuples that both chain-match tuples of the other
  // relations under a too-weak key.
  Relation a = MakeRelation("A", {"name", "street"}, {"name", "street"},
                            {{"Wok", "X"}, {"Wok", "Y"}});
  Relation b = MakeRelation("B", {"name", "city"}, {"name", "city"},
                            {{"Wok", "M"}});
  MultiwayConfig config;
  config.extended_key = ExtendedKey({"name"});
  EID_ASSERT_OK_AND_ASSIGN(MultiwayResult result, IdentifyAll({a, b}, config));
  EXPECT_FALSE(result.Sound());
  EXPECT_EQ(result.transitivity.code(), StatusCode::kUnsound);
}

TEST(MultiwayTest, ConsistencyViolationDetected) {
  Relation a = MakeRelation("A", {"name", "flag"}, {"name"},
                            {{"Wok", "p"}});
  Relation b = MakeRelation("B", {"name", "flag"}, {"name"},
                            {{"Wok", "q"}});
  MultiwayConfig config;
  config.extended_key = ExtendedKey({"name"});
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule rule,
      ParseDistinctnessRule("d", "e1.flag = \"p\" & e2.flag = \"q\""));
  config.distinctness_rules.push_back(rule);
  EID_ASSERT_OK_AND_ASSIGN(MultiwayResult result, IdentifyAll({a, b}, config));
  EXPECT_FALSE(result.consistency.ok());
}

TEST(MultiwayTest, ConflictingClusterValuesFailIntegration) {
  Relation a = MakeRelation("A", {"name", "city"}, {"name"},
                            {{"Wok", "Mpls"}});
  Relation b = MakeRelation("B", {"name", "city"}, {"name"},
                            {{"Wok", "St.Paul"}});
  MultiwayConfig config;
  config.extended_key = ExtendedKey({"name"});
  EID_ASSERT_OK_AND_ASSIGN(MultiwayResult result, IdentifyAll({a, b}, config));
  std::vector<Relation> sources = {a, b};
  Result<Relation> table = BuildMultiwayIntegratedTable(sources, result);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace eid
