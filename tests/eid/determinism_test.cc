// The engine's central parallel contract: `Identify` produces an
// identical IdentificationResult — extended relations, derivation
// traces, MT/NMT contents and order, evidence, soundness verdicts,
// partition counts, and every deterministic stage counter — for any
// thread count. Run on the workload generator's synthetic relations so
// the indexed rule sweeps, parallel extension and key-join probe all see
// nontrivial inputs. This test is the one the tsan CMake preset runs to
// prove the pool race-free.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "eid/identifier.h"
#include "workload/fixtures.h"
#include "workload/generator.h"

namespace eid {
namespace {

GeneratedWorld MakeWorld(double coverage, uint64_t seed) {
  GeneratorConfig gen;
  gen.seed = seed;
  gen.overlap_entities = 120;
  gen.r_only_entities = 60;
  gen.s_only_entities = 60;
  gen.name_pool = 96;
  gen.street_pool = 128;
  gen.cities = 16;
  gen.speciality_pool = 64;
  gen.cuisines = 8;
  gen.ilfd_coverage = coverage;
  Result<GeneratedWorld> world = GenerateWorld(gen);
  EID_CHECK(world.ok());
  return std::move(world).value();
}

IdentifierConfig WorldConfig(const GeneratedWorld& world, int threads) {
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  // An identity rule with an equality join (indexed path) and one with
  // only constant equalities (filtered-scan fallback path).
  config.identity_rules.push_back(
      IdentityRule::KeyEquivalence("key_eq", {"name", "speciality"}));
  EID_CHECK(config.identity_rules.back().Validate().ok());
  Result<IdentityRule> const_rule = ParseIdentityRule(
      "const_pair",
      "e1.speciality = \"Speciality0\" & e2.speciality = \"Speciality0\"");
  EID_CHECK(const_rule.ok());
  config.identity_rules.push_back(*const_rule);
  // An explicit distinctness rule on top of the Proposition 1 rules
  // induced from every generated ILFD.
  Result<DistinctnessRule> distinct = ParseDistinctnessRule(
      "cuisine_clash", "e1.cuisine = \"Cuisine0\" & e2.cuisine = \"Cuisine1\"");
  EID_CHECK(distinct.ok());
  config.distinctness_rules.push_back(*distinct);
  config.distinctness_from_ilfds = true;
  config.matcher_options.threads = threads;
  return config;
}

void ExpectDerivationsEqual(const std::vector<Derivation>& a,
                            const std::vector<Derivation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].derived, b[i].derived) << "tuple " << i;
    ASSERT_EQ(a[i].steps.size(), b[i].steps.size()) << "tuple " << i;
    for (size_t k = 0; k < a[i].steps.size(); ++k) {
      EXPECT_EQ(a[i].steps[k].attribute, b[i].steps[k].attribute);
      EXPECT_EQ(a[i].steps[k].value, b[i].steps[k].value);
      EXPECT_EQ(a[i].steps[k].ilfd_index, b[i].steps[k].ilfd_index);
    }
    EXPECT_EQ(a[i].conflicts.size(), b[i].conflicts.size()) << "tuple " << i;
  }
}

void ExpectIdentical(const IdentificationResult& a,
                     const IdentificationResult& b, int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  // Extended relations, row for row.
  EXPECT_EQ(a.r_extended.rows(), b.r_extended.rows());
  EXPECT_EQ(a.s_extended.rows(), b.s_extended.rows());
  ExpectDerivationsEqual(a.r_traces, b.r_traces);
  ExpectDerivationsEqual(a.s_traces, b.s_traces);
  // MT / NMT contents *and order*.
  EXPECT_EQ(a.matching.pairs(), b.matching.pairs());
  EXPECT_EQ(a.negative.table.pairs(), b.negative.table.pairs());
  ASSERT_EQ(a.negative.evidence.size(), b.negative.evidence.size());
  for (size_t i = 0; i < a.negative.evidence.size(); ++i) {
    EXPECT_EQ(a.negative.evidence[i].pair, b.negative.evidence[i].pair);
    EXPECT_EQ(a.negative.evidence[i].rule_index,
              b.negative.evidence[i].rule_index);
    EXPECT_EQ(a.negative.evidence[i].flipped, b.negative.evidence[i].flipped);
  }
  // Verdicts (messages included — they cite specific tuples, so any
  // ordering drift would show) and partition.
  EXPECT_EQ(a.uniqueness, b.uniqueness);
  EXPECT_EQ(a.consistency, b.consistency);
  EXPECT_EQ(a.partition.matched, b.partition.matched);
  EXPECT_EQ(a.partition.non_matched, b.partition.non_matched);
  EXPECT_EQ(a.partition.undetermined, b.partition.undetermined);
  EXPECT_EQ(a.partition.total, b.partition.total);
  // Deterministic stage counters (everything but wall_ms).
  ASSERT_EQ(a.stats.stages().size(), b.stats.stages().size());
  for (size_t i = 0; i < a.stats.stages().size(); ++i) {
    const exec::StageStats& sa = a.stats.stages()[i];
    const exec::StageStats& sb = b.stats.stages()[i];
    EXPECT_EQ(sa.stage, sb.stage);
    EXPECT_EQ(sa.items, sb.items) << sa.stage;
    EXPECT_EQ(sa.values_derived, sb.values_derived) << sa.stage;
    EXPECT_EQ(sa.candidate_pairs, sb.candidate_pairs) << sa.stage;
    EXPECT_EQ(sa.cross_product, sb.cross_product) << sa.stage;
    EXPECT_EQ(sa.rule_evals, sb.rule_evals) << sa.stage;
  }
}

class DeterminismTest : public ::testing::TestWithParam<double> {};

TEST_P(DeterminismTest, IdentifyIsThreadCountInvariant) {
  GeneratedWorld world = MakeWorld(GetParam(), /*seed=*/7);
  EntityIdentifier serial(WorldConfig(world, /*threads=*/1));
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult reference,
                           serial.Identify(world.r, world.s));
  // Sanity: the run exercises all three regions.
  EXPECT_GT(reference.matching.size(), 0u);
  EXPECT_GT(reference.negative.table.size(), 0u);
  for (int threads : {2, 8}) {
    EntityIdentifier parallel(WorldConfig(world, threads));
    EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                             parallel.Identify(world.r, world.s));
    ExpectIdentical(reference, result, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(Coverage, DeterminismTest,
                         ::testing::Values(1.0, 0.6),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return info.param == 1.0 ? "full_coverage"
                                                    : "partial_coverage";
                         });

TEST(DeterminismTest, PaperFixturesThreadCountInvariant) {
  // The paper's Example 3 restaurant fixtures: small, but every stage
  // (extension, key join, Prop-1 distinctness) participates.
  IdentifierConfig config;
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example3ExtendedKey();
  config.ilfds = fixtures::Example3Ilfds();
  config.matcher_options.threads = 1;
  EntityIdentifier serial(config);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult reference,
                           serial.Identify(r, s));
  for (int threads : {2, 8}) {
    config.matcher_options.threads = threads;
    EntityIdentifier parallel(config);
    EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                             parallel.Identify(r, s));
    ExpectIdentical(reference, result, threads);
  }
}

}  // namespace
}  // namespace eid
