#include "eid/extension.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

TEST(ExtensionTest, AddsMissingExtendedKeyColumnsAsNullByDefault) {
  Relation r = fixtures::Example2R();  // name, cuisine, street
  Relation s = fixtures::Example2S();  // name, speciality, city
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  ExtendedKey key({"name", "cuisine"});
  IlfdSet no_knowledge;
  EID_ASSERT_OK_AND_ASSIGN(
      ExtensionResult sx,
      ExtendRelation(s, Side::kS, corr, key, no_knowledge));
  EXPECT_EQ(sx.added_attributes, (std::vector<std::string>{"cuisine"}));
  ASSERT_TRUE(sx.extended.schema().Contains("cuisine"));
  EXPECT_TRUE(sx.extended.tuple(0).GetOrNull("cuisine").is_null());
}

TEST(ExtensionTest, DerivesMissingValuesViaIlfds) {
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  EID_ASSERT_OK_AND_ASSIGN(
      ExtensionResult sx,
      ExtendRelation(s, Side::kS, corr, fixtures::Example2ExtendedKey(),
                     fixtures::Example2Ilfds()));
  EXPECT_EQ(sx.extended.tuple(0).GetOrNull("cuisine").AsString(), "Indian");
  ASSERT_EQ(sx.traces.size(), 1u);
  EXPECT_EQ(sx.traces[0].steps.size(), 1u);
  EXPECT_EQ(sx.traces[0].steps[0].ilfd_index, 0u);
}

TEST(ExtensionTest, RowOrderAndOriginalValuesPreserved) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  EID_ASSERT_OK_AND_ASSIGN(
      ExtensionResult rx,
      ExtendRelation(r, Side::kR, corr, fixtures::Example3ExtendedKey(),
                     fixtures::Example3Ilfds()));
  ASSERT_EQ(rx.extended.size(), r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(rx.extended.tuple(i).GetOrNull("name"),
              r.tuple(i).GetOrNull("name"));
    EXPECT_EQ(rx.extended.tuple(i).GetOrNull("street"),
              r.tuple(i).GetOrNull("street"));
  }
}

TEST(ExtensionTest, KeysCarryOverToExtendedRelation) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  EID_ASSERT_OK_AND_ASSIGN(
      ExtensionResult rx,
      ExtendRelation(r, Side::kR, corr, fixtures::Example3ExtendedKey(),
                     fixtures::Example3Ilfds()));
  EXPECT_EQ(rx.extended.PrimaryKeyNames(),
            (std::vector<std::string>{"name", "cuisine"}));
}

TEST(ExtensionTest, IntermediateDerivedAttributesNotAddedByDefault) {
  // Deriving R's speciality for It'sGreek goes through county (I7, I8),
  // but county is not an extended-key attribute, so R' must not have it.
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  EID_ASSERT_OK_AND_ASSIGN(
      ExtensionResult rx,
      ExtendRelation(r, Side::kR, corr, fixtures::Example3ExtendedKey(),
                     fixtures::Example3Ilfds()));
  EXPECT_FALSE(rx.extended.schema().Contains("county"));
  EXPECT_EQ(rx.extended.tuple(2).GetOrNull("speciality").AsString(), "Gyros");
}

TEST(ExtensionTest, DeriveAllAddsEveryDerivableColumn) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  ExtensionOptions opts;
  opts.derive_all = true;
  EID_ASSERT_OK_AND_ASSIGN(
      ExtensionResult rx,
      ExtendRelation(r, Side::kR, corr, fixtures::Example3ExtendedKey(),
                     fixtures::Example3Ilfds(), opts));
  ASSERT_TRUE(rx.extended.schema().Contains("county"));
  EXPECT_EQ(rx.extended.tuple(2).GetOrNull("county").AsString(), "Ramsey");
}

TEST(ExtensionTest, FirstMatchModeMirrorsPrototype) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  ExtensionOptions opts;
  opts.derivation.mode = DerivationMode::kFirstMatch;
  EID_ASSERT_OK_AND_ASSIGN(
      ExtensionResult rx,
      ExtendRelation(r, Side::kR, corr, fixtures::Example3ExtendedKey(),
                     fixtures::Example3Ilfds(), opts));
  std::vector<std::string> expected = {"Hunan", "null", "Gyros", "Mughalai",
                                       "null"};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rx.extended.tuple(i).GetOrNull("speciality").ToString(),
              expected[i]);
  }
}

TEST(ExtensionTest, DirtyDataSurfacesAsConflictError) {
  // A base tuple contradicting an ILFD fails extension under kError.
  Relation s("S", Schema::OfStrings({"name", "speciality", "cuisine"}));
  EID_EXPECT_OK(s.DeclareKey({"name"}));
  EID_EXPECT_OK(s.InsertText({"X", "Mughalai", "Greek"}));
  Relation r = fixtures::Example2R();
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  Result<ExtensionResult> sx =
      ExtendRelation(s, Side::kS, corr, fixtures::Example2ExtendedKey(),
                     fixtures::Example2Ilfds());
  ASSERT_FALSE(sx.ok());
  EXPECT_EQ(sx.status().code(), StatusCode::kConstraintViolation);
}

}  // namespace
}  // namespace eid
