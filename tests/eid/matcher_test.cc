#include "eid/matcher.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "relational/printer.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(MatcherTest, Example2ProducesTable3) {
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  EID_ASSERT_OK_AND_ASSIGN(
      MatcherResult result,
      BuildMatchingTable(r, s, AttributeCorrespondence::Identity(r, s),
                         fixtures::Example2ExtendedKey(),
                         fixtures::Example2Ilfds()));
  EID_EXPECT_OK(result.uniqueness);
  ASSERT_EQ(result.matching.size(), 1u);
  // Table 3: (TwinCities, Indian) ↔ (TwinCities).
  TuplePair p = result.matching.pairs()[0];
  EXPECT_EQ(p.r_index, 1u);
  EXPECT_EQ(p.s_index, 0u);
  EID_ASSERT_OK_AND_ASSIGN(Relation mt, result.MatchingRelation());
  EXPECT_TRUE(mt.schema().Contains("R.name"));
  EXPECT_TRUE(mt.schema().Contains("R.cuisine"));
  EXPECT_TRUE(mt.schema().Contains("S.name"));
}

TEST(MatcherTest, Example3ProducesTable7) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  EID_ASSERT_OK_AND_ASSIGN(
      MatcherResult result,
      BuildMatchingTable(r, s, AttributeCorrespondence::Identity(r, s),
                         fixtures::Example3ExtendedKey(),
                         fixtures::Example3Ilfds()));
  EID_EXPECT_OK(result.uniqueness);
  // Table 7: TwinCities/Chinese↔Hunan, It'sGreek, Anjuman. The Sichuan
  // tuple and VillageWok stay unmatched.
  ASSERT_EQ(result.matching.size(), 3u);
  EXPECT_EQ(result.matching.MatchOfR(0), 0u);  // TwinCities Chinese ↔ Hunan
  EXPECT_EQ(result.matching.MatchOfR(2), 2u);  // It'sGreek
  EXPECT_EQ(result.matching.MatchOfR(3), 3u);  // Anjuman
  EXPECT_FALSE(result.matching.HasR(1));       // TwinCities Indian
  EXPECT_FALSE(result.matching.HasR(4));       // VillageWok
  EXPECT_FALSE(result.matching.HasS(1));       // TwinCities Sichuan
}

TEST(MatcherTest, NullExtendedKeyValuesNeverMatch) {
  // Two tuples with NULL-derived extended key columns must not join on
  // NULL = NULL (non_null_eq semantics).
  Relation r = MakeRelation("R", {"name", "cuisine"}, {"name"},
                            {{"A", "Chinese"}});
  Relation s = MakeRelation("S", {"name", "speciality"}, {"name"},
                            {{"A", "Mystery"}});
  IlfdSet no_knowledge;
  EID_ASSERT_OK_AND_ASSIGN(
      MatcherResult result,
      BuildMatchingTable(r, s, AttributeCorrespondence::Identity(r, s),
                         ExtendedKey({"name", "cuisine", "speciality"}),
                         no_knowledge));
  EXPECT_EQ(result.matching.size(), 0u);
}

TEST(MatcherTest, UniquenessViolationReportedNotFatalByDefault) {
  // Extended key {name} over relations where S has two same-name tuples
  // under a different key — one R tuple would match both.
  Relation r = MakeRelation("R", {"name", "street"}, {"name", "street"},
                            {{"Wok", "A"}});
  Relation s = MakeRelation("S", {"name", "city"}, {"name", "city"},
                            {{"Wok", "X"}, {"Wok", "Y"}});
  IlfdSet no_knowledge;
  EID_ASSERT_OK_AND_ASSIGN(
      MatcherResult result,
      BuildMatchingTable(r, s, AttributeCorrespondence::Identity(r, s),
                         ExtendedKey({"name"}), no_knowledge));
  EXPECT_EQ(result.uniqueness.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(result.matching.size(), 1u);  // first pair kept, second skipped
}

TEST(MatcherTest, UniquenessViolationFatalWhenRequested) {
  Relation r = MakeRelation("R", {"name", "street"}, {"name", "street"},
                            {{"Wok", "A"}});
  Relation s = MakeRelation("S", {"name", "city"}, {"name", "city"},
                            {{"Wok", "X"}, {"Wok", "Y"}});
  IlfdSet no_knowledge;
  MatcherOptions opts;
  opts.fail_on_uniqueness_violation = true;
  Result<MatcherResult> result =
      BuildMatchingTable(r, s, AttributeCorrespondence::Identity(r, s),
                         ExtendedKey({"name"}), no_knowledge, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConstraintViolation);
}

TEST(MatcherTest, EmptyExtendedKeyRejected) {
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  IlfdSet no_knowledge;
  EXPECT_FALSE(
      BuildMatchingTable(r, s, AttributeCorrespondence::Identity(r, s),
                         ExtendedKey(std::vector<std::string>{}), no_knowledge)
          .ok());
}

TEST(MatcherTest, UnknownExtendedKeyAttributeRejected) {
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  IlfdSet no_knowledge;
  EXPECT_EQ(
      BuildMatchingTable(r, s, AttributeCorrespondence::Identity(r, s),
                         ExtendedKey({"name", "nonexistent"}), no_knowledge)
          .status()
          .code(),
      StatusCode::kNotFound);
}

TEST(MatcherTest, JoinOnExtendedKeyMatchesPairwiseReference) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  ExtendedKey key = fixtures::Example3ExtendedKey();
  IlfdSet ilfds = fixtures::Example3Ilfds();
  EID_ASSERT_OK_AND_ASSIGN(ExtensionResult rx,
                           ExtendRelation(r, Side::kR, corr, key, ilfds));
  EID_ASSERT_OK_AND_ASSIGN(ExtensionResult sx,
                           ExtendRelation(s, Side::kS, corr, key, ilfds));
  EID_ASSERT_OK_AND_ASSIGN(
      std::vector<TuplePair> pairs,
      JoinOnExtendedKey(rx.extended, sx.extended, key));
  // Pairwise reference with non_null_eq on every key attribute.
  std::vector<TuplePair> reference;
  for (size_t i = 0; i < rx.extended.size(); ++i) {
    for (size_t j = 0; j < sx.extended.size(); ++j) {
      bool all = true;
      for (const std::string& a : key.attributes()) {
        if (!NonNullEq(rx.extended.tuple(i).GetOrNull(a),
                       sx.extended.tuple(j).GetOrNull(a))) {
          all = false;
          break;
        }
      }
      if (all) reference.push_back(TuplePair{i, j});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(pairs, reference);
}

}  // namespace
}  // namespace eid
