#include "eid/negative.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(NegativeTest, PaperTable4FromProposition1Rule) {
  // Example 2 + Proposition 1: the Mughalai ILFD's induced rule certifies
  // that S's (TwinCities, Mughalai) is distinct from R's
  // (TwinCities, Chinese) — the NMT of Table 4.
  EID_ASSERT_OK_AND_ASSIGN(Ilfd ilfd,
                           ParseIlfd("speciality=Mughalai -> cuisine=Indian"));
  EID_ASSERT_OK_AND_ASSIGN(DistinctnessRule induced,
                           DistinctnessRuleFromIlfd(ilfd));
  // The induced rule reads e1.speciality; for the R,S pair it fires in the
  // flipped orientation (e1 := S tuple), which the builder tries too.
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  EID_ASSERT_OK_AND_ASSIGN(NegativeResult out,
                           BuildNegativeMatchingTable(r, s, {induced}));
  ASSERT_EQ(out.table.size(), 1u);
  EXPECT_EQ(out.table.pairs()[0], (TuplePair{0, 0}));
  EXPECT_EQ(out.evidence[0].rule_index, 0u);
  EXPECT_TRUE(out.evidence[0].flipped);
}

TEST(NegativeTest, InvalidRuleFailsBuild) {
  Relation r = MakeRelation("R", {"a"}, {}, {{"1"}});
  Relation s = MakeRelation("S", {"a"}, {}, {{"1"}});
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule one_sided,
      ParseDistinctnessRule("bad", "e1.a = \"1\""));
  EXPECT_FALSE(BuildNegativeMatchingTable(r, s, {one_sided}).ok());
}

TEST(NegativeTest, MultiplePairsAndNoUniquenessConstraint) {
  // One R tuple may be distinct from many S tuples.
  Relation r = MakeRelation("R", {"cuisine"}, {}, {{"Greek"}});
  Relation s = MakeRelation("S", {"speciality"}, {},
                            {{"Mughalai"}, {"Mughalai2"}});
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule rule,
      ParseDistinctnessRule(
          "r", "e2.speciality != \"nothing\" & e1.cuisine = \"Greek\""));
  EID_ASSERT_OK_AND_ASSIGN(NegativeResult out,
                           BuildNegativeMatchingTable(r, s, {rule}));
  EXPECT_EQ(out.table.size(), 2u);
}

TEST(NegativeTest, FirstRuleGetsCredit) {
  Relation r = MakeRelation("R", {"a"}, {}, {{"1"}});
  Relation s = MakeRelation("S", {"b"}, {}, {{"2"}});
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule rule1,
      ParseDistinctnessRule("r1", "e1.a = \"1\" & e2.b = \"2\""));
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule rule2,
      ParseDistinctnessRule("r2", "e1.a != \"9\" & e2.b != \"9\""));
  EID_ASSERT_OK_AND_ASSIGN(NegativeResult out,
                           BuildNegativeMatchingTable(r, s, {rule1, rule2}));
  ASSERT_EQ(out.table.size(), 1u);
  ASSERT_EQ(out.evidence.size(), 1u);
  EXPECT_EQ(out.evidence[0].rule_index, 0u);
}

TEST(NegativeTest, UnknownPredicatesDoNotCertify) {
  Relation r = MakeRelation("R", {"a"}, {}, {{"1"}});
  Relation s("S", Schema::OfStrings({"b"}));
  EID_EXPECT_OK(s.Insert(Row{Value::Null()}));
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule rule,
      ParseDistinctnessRule("r", "e1.a = \"1\" & e2.b != \"2\""));
  EID_ASSERT_OK_AND_ASSIGN(NegativeResult out,
                           BuildNegativeMatchingTable(r, s, {rule}));
  EXPECT_EQ(out.table.size(), 0u);  // NULL → unknown → no certificate
}

}  // namespace
}  // namespace eid
