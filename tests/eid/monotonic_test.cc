#include "eid/monotonic.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

IdentifierConfig BareExample3Config() {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example3ExtendedKey();
  return config;  // no ILFDs yet
}

TEST(MonotonicTest, AddingIlfdsGrowsDecidedRegions) {
  MonotonicEngine engine(fixtures::Example3R(), fixtures::Example3S(),
                         BareExample3Config());
  EXPECT_EQ(engine.result().partition.matched, 0u);
  EXPECT_EQ(engine.result().partition.undetermined, 20u);

  IlfdSet knowledge = fixtures::Example3Ilfds();
  size_t last_matched = 0;
  size_t last_undetermined = 20;
  for (const Ilfd& f : knowledge.ilfds()) {
    EID_EXPECT_OK(engine.AddIlfd(f));
    const PairPartition& p = engine.result().partition;
    EXPECT_GE(p.matched, last_matched);
    EXPECT_LE(p.undetermined, last_undetermined);
    last_matched = p.matched;
    last_undetermined = p.undetermined;
  }
  EXPECT_EQ(engine.result().partition.matched, 3u);
  EXPECT_TRUE(engine.violations().empty());
  // History: initial + 8 additions.
  EXPECT_EQ(engine.history().size(), 9u);
}

TEST(MonotonicTest, HistoryRecordsDescriptionsAndSoundness) {
  MonotonicEngine engine(fixtures::Example3R(), fixtures::Example3S(),
                         BareExample3Config());
  EID_EXPECT_OK(engine.AddIlfdText("speciality=Hunan -> cuisine=Chinese"));
  ASSERT_EQ(engine.history().size(), 2u);
  EXPECT_EQ(engine.history()[0].description, "initial");
  EXPECT_NE(engine.history()[1].description.find("Hunan"), std::string::npos);
  EXPECT_TRUE(engine.history()[1].sound);
}

TEST(MonotonicTest, AddDistinctnessRuleShrinksUndetermined) {
  MonotonicEngine engine(fixtures::Example3R(), fixtures::Example3S(),
                         BareExample3Config());
  size_t before = engine.result().partition.undetermined;
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule rule,
      ParseDistinctnessRule(
          "r3", "e1.speciality = \"Mughalai\" & e2.cuisine != \"Indian\""));
  EID_EXPECT_OK(engine.AddDistinctnessRule(rule));
  EXPECT_LT(engine.result().partition.undetermined, before);
  EXPECT_TRUE(engine.violations().empty());
}

TEST(MonotonicTest, InvalidRuleRejectedWithoutStateChange) {
  MonotonicEngine engine(fixtures::Example3R(), fixtures::Example3S(),
                         BareExample3Config());
  size_t steps = engine.history().size();
  EID_ASSERT_OK_AND_ASSIGN(IdentityRule bad,
                           ParseIdentityRule("r2", "e1.cuisine = \"X\""));
  EXPECT_FALSE(engine.AddIdentityRule(bad).ok());
  EXPECT_EQ(engine.history().size(), steps);
}

TEST(MonotonicTest, ContradictoryRuleIsCaughtAsViolation) {
  // Match on name, then add a distinctness rule contradicting the match:
  // the engine reports both the consistency failure and the monotonicity
  // violation (the pair flips from match to non-match in Decide()'s
  // precedence or stays; either way the audit fires on any flip).
  Relation r = MakeRelation("R", {"name"}, {"name"}, {{"Wok"}});
  Relation s = MakeRelation("S", {"name"}, {"name"}, {{"Wok"}});
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.identity_rules.push_back(IdentityRule::KeyEquivalence("n", {"name"}));
  MonotonicEngine engine(r, s, config);
  EXPECT_EQ(engine.result().partition.matched, 1u);
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule contradiction,
      ParseDistinctnessRule("d", "e1.name = \"Wok\" & e2.name = \"Wok\""));
  EID_EXPECT_OK(engine.AddDistinctnessRule(contradiction));
  EXPECT_FALSE(engine.result().Sound());
}

TEST(MonotonicTest, SetExtendedKeyRerunsIdentification) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.ilfds = fixtures::Example3Ilfds();
  // No extended key initially: nothing matches.
  MonotonicEngine engine(r, s, config);
  EXPECT_EQ(engine.result().partition.matched, 0u);
  EID_EXPECT_OK(engine.SetExtendedKey(fixtures::Example3ExtendedKey()));
  EXPECT_EQ(engine.result().partition.matched, 3u);
}

TEST(MonotonicTest, CompletenessDetection) {
  // A 1x1 world where one distinctness rule decides the only pair.
  Relation r = MakeRelation("R", {"cuisine"}, {"cuisine"}, {{"Greek"}});
  Relation s = MakeRelation("S", {"speciality"}, {"speciality"},
                            {{"Mughalai"}});
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  MonotonicEngine engine(r, s, config);
  EXPECT_FALSE(engine.Complete());
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule rule,
      ParseDistinctnessRule(
          "r3", "e1.speciality = \"Mughalai\" & e2.cuisine != \"Indian\""));
  EID_EXPECT_OK(engine.AddDistinctnessRule(rule));
  EXPECT_TRUE(engine.Complete());
}

}  // namespace
}  // namespace eid
