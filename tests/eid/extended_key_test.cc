#include "eid/extended_key.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(ExtendedKeyTest, CanonicalisesAttributes) {
  ExtendedKey key({"b", "a", "b"});
  EXPECT_EQ(key.attributes(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(key.Contains("a"));
  EXPECT_FALSE(key.Contains("c"));
  EXPECT_EQ(key.ToString(), "{a, b}");
}

TEST(ExtendedKeyTest, EquivalenceRuleIsValidIdentityRule) {
  ExtendedKey key({"name", "cuisine"});
  IdentityRule rule = key.EquivalenceRule();
  EID_EXPECT_OK(rule.Validate());
  EXPECT_EQ(rule.predicates().size(), 2u);
}

TEST(ExtendedKeyTest, MissingOnComputesKExtMinusR) {
  Relation r = MakeRelation("R", {"name", "cuisine"}, {}, {});
  Relation s = MakeRelation("S", {"name", "speciality"}, {}, {});
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  ExtendedKey key({"name", "cuisine", "speciality"});
  EXPECT_EQ(key.MissingOn(corr, Side::kR),
            (std::vector<std::string>{"speciality"}));
  EXPECT_EQ(key.MissingOn(corr, Side::kS),
            (std::vector<std::string>{"cuisine"}));
}

TEST(ExtendedKeyTest, IsIdentifyingOverUniverse) {
  Relation universe = MakeRelation(
      "E", {"name", "street", "cuisine"}, {},
      {{"Wok", "A", "Chinese"}, {"Wok", "B", "Chinese"}, {"Ching", "A", "X"}});
  EID_ASSERT_OK_AND_ASSIGN(bool name_only, IsIdentifying(universe, {"name"}));
  EXPECT_FALSE(name_only);
  EID_ASSERT_OK_AND_ASSIGN(bool name_street,
                           IsIdentifying(universe, {"name", "street"}));
  EXPECT_TRUE(name_street);
}

TEST(ExtendedKeyTest, VerifyAgainstUniverseAcceptsMinimalKey) {
  Relation universe = MakeRelation(
      "E", {"name", "street", "cuisine"}, {},
      {{"Wok", "A", "Chinese"}, {"Wok", "B", "Chinese"}, {"Ching", "A", "X"}});
  EID_EXPECT_OK(
      ExtendedKey({"name", "street"}).VerifyAgainstUniverse(universe));
}

TEST(ExtendedKeyTest, VerifyRejectsNonIdentifyingKey) {
  Relation universe = MakeRelation("E", {"name", "cuisine"}, {},
                                   {{"Wok", "Chinese"}, {"Wok", "Chinese"}});
  EXPECT_EQ(ExtendedKey({"name", "cuisine"})
                .VerifyAgainstUniverse(universe)
                .code(),
            StatusCode::kConstraintViolation);
}

TEST(ExtendedKeyTest, VerifyRejectsNonMinimalKey) {
  Relation universe = MakeRelation(
      "E", {"name", "street", "cuisine"}, {},
      {{"Wok", "A", "Chinese"}, {"Ching", "B", "Greek"}});
  Status st =
      ExtendedKey({"name", "street", "cuisine"}).VerifyAgainstUniverse(universe);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(ExtendedKeyTest, EmptyKeyRejected) {
  Relation universe = MakeRelation("E", {"a"}, {}, {});
  EXPECT_FALSE(ExtendedKey(std::vector<std::string>{})
                   .VerifyAgainstUniverse(universe)
                   .ok());
}

TEST(ExtendedKeyTest, Figure2UniverseNeedsMoreThanNameCuisine) {
  // The Fig. 2 scenario: (name, cuisine) is not identifying — two distinct
  // VillageWok Chinese restaurants exist; (name, street, cuisine) is.
  Relation universe = fixtures::Figure2Universe();
  EID_ASSERT_OK_AND_ASSIGN(bool nc,
                           IsIdentifying(universe, {"name", "cuisine"}));
  EXPECT_FALSE(nc);
  EID_ASSERT_OK_AND_ASSIGN(
      bool nsc, IsIdentifying(universe, {"name", "street", "cuisine"}));
  EXPECT_TRUE(nsc);
}

}  // namespace
}  // namespace eid
