#include "eid/algebra_pipeline.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "eid/matcher.h"
#include "ilfd/ilfd_set.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

std::vector<IlfdTable> Example3Tables(bool include_derived_i9) {
  IlfdSet set = fixtures::Example3Ilfds();
  std::vector<Ilfd> ilfds = set.ilfds();
  if (include_derived_i9) ilfds.push_back(fixtures::Example3DerivedI9());
  Result<std::vector<IlfdTable>> tables = IlfdTable::Partition(ilfds);
  EXPECT_TRUE(tables.ok());
  return std::move(tables).value();
}

TEST(AlgebraPipelineTest, Example3SingleRoundWithDerivedI9) {
  // With I9 pre-composed (the paper's presentation), one round of IM-table
  // joins per side suffices.
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  EID_ASSERT_OK_AND_ASSIGN(
      AlgebraPipelineResult result,
      BuildMatchingTableAlgebraically(
          r, s, AttributeCorrespondence::Identity(r, s),
          fixtures::Example3ExtendedKey(), Example3Tables(true)));
  EXPECT_EQ(result.matching.size(), 3u);
  EXPECT_EQ(result.s_rounds, 1u);
}

TEST(AlgebraPipelineTest, Example3MultiRoundWithoutI9) {
  // Without I9 the It'sGreek speciality needs county first (I7 then I8):
  // the generalised pipeline takes an extra round but reaches the same MT.
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  EID_ASSERT_OK_AND_ASSIGN(
      AlgebraPipelineResult result,
      BuildMatchingTableAlgebraically(
          r, s, AttributeCorrespondence::Identity(r, s),
          fixtures::Example3ExtendedKey(), Example3Tables(false)));
  EXPECT_EQ(result.matching.size(), 3u);
}

TEST(AlgebraPipelineTest, AgreesWithDirectMatcherOnExample3) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  EID_ASSERT_OK_AND_ASSIGN(
      AlgebraPipelineResult algebraic,
      BuildMatchingTableAlgebraically(r, s, corr,
                                      fixtures::Example3ExtendedKey(),
                                      Example3Tables(false)));
  EID_ASSERT_OK_AND_ASSIGN(
      MatcherResult direct,
      BuildMatchingTable(r, s, corr, fixtures::Example3ExtendedKey(),
                         fixtures::Example3Ilfds()));
  EID_ASSERT_OK_AND_ASSIGN(Relation direct_mt, direct.MatchingRelation("MT"));
  EXPECT_TRUE(algebraic.matching.RowsEqualUnordered(direct_mt));
}

TEST(AlgebraPipelineTest, ExtendedRelationsMatchTable6) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  EID_ASSERT_OK_AND_ASSIGN(
      AlgebraPipelineResult result,
      BuildMatchingTableAlgebraically(
          r, s, AttributeCorrespondence::Identity(r, s),
          fixtures::Example3ExtendedKey(), Example3Tables(false)));
  // S' cuisines per Table 6.
  ASSERT_EQ(result.s_extended.size(), 4u);
  std::vector<std::string> expected = {"Chinese", "Chinese", "Greek",
                                       "Indian"};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.s_extended.tuple(i).GetOrNull("cuisine").ToString(),
              expected[i])
        << "row " << i;
  }
  // R' specialities per Table 6 (NULL for TwinCities-Indian, VillageWok).
  std::vector<std::string> expected_r = {"Hunan", "null", "Gyros", "Mughalai",
                                         "null"};
  for (size_t i = 0; i < expected_r.size(); ++i) {
    EXPECT_EQ(result.r_extended.tuple(i).GetOrNull("speciality").ToString(),
              expected_r[i])
        << "row " << i;
  }
}

TEST(AlgebraPipelineTest, UnderivableColumnsBecomeNull) {
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  // No IM tables at all: both missing columns stay NULL, MT empty.
  EID_ASSERT_OK_AND_ASSIGN(
      AlgebraPipelineResult result,
      BuildMatchingTableAlgebraically(
          r, s, AttributeCorrespondence::Identity(r, s),
          ExtendedKey({"name", "cuisine", "speciality"}), {}));
  EXPECT_EQ(result.matching.size(), 0u);
  EXPECT_TRUE(result.r_extended.schema().Contains("speciality"));
  EXPECT_TRUE(result.s_extended.schema().Contains("cuisine"));
}

TEST(AlgebraPipelineTest, ConflictingImEntriesSurfaceAsDuplicates) {
  // Two IM tables deriving different cuisines for one speciality produce
  // two extended rows for that tuple — the duplication the paper's
  // uniqueness verification would then flag.
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  IlfdTable t1({"speciality"}, "cuisine");
  EID_EXPECT_OK(t1.AddEntry({Value::Str("Mughalai")}, Value::Str("Indian")));
  IlfdTable t2({"name", "speciality"}, "cuisine");
  EID_EXPECT_OK(t2.AddEntry({Value::Str("TwinCities"), Value::Str("Mughalai")},
                            Value::Str("Punjabi")));
  EID_ASSERT_OK_AND_ASSIGN(
      AlgebraPipelineResult result,
      BuildMatchingTableAlgebraically(
          r, s, AttributeCorrespondence::Identity(r, s),
          ExtendedKey({"name", "cuisine"}), {t1, t2}));
  EXPECT_EQ(result.s_extended.size(), 2u);  // one source tuple, two rows
}

}  // namespace
}  // namespace eid
