#include "eid/correspondence.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(CorrespondenceTest, IdentityCoversBothSchemas) {
  Relation r = MakeRelation("R", {"name", "street"}, {}, {});
  Relation s = MakeRelation("S", {"name", "city"}, {}, {});
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  EXPECT_EQ(corr.CommonWorldAttributes(), (std::vector<std::string>{"name"}));
  EXPECT_EQ(corr.WorldAttributesOf(Side::kR),
            (std::vector<std::string>{"name", "street"}));
  EXPECT_EQ(corr.WorldAttributesOf(Side::kS),
            (std::vector<std::string>{"name", "city"}));
  EID_EXPECT_OK(corr.ValidateAgainst(r, s));
}

TEST(CorrespondenceTest, ExplicitMappingWithDifferentLocalNames) {
  // The prototype's r_name / s_name case.
  Relation r = MakeRelation("R", {"r_name", "r_cui"}, {}, {});
  Relation s = MakeRelation("S", {"s_name", "s_spec"}, {}, {});
  AttributeCorrespondence corr;
  EID_EXPECT_OK(corr.Add(AttributeMapping{"name", "r_name", "s_name"}));
  EID_EXPECT_OK(corr.Add(AttributeMapping{"cuisine", "r_cui", std::nullopt}));
  EID_EXPECT_OK(corr.Add(AttributeMapping{"speciality", std::nullopt,
                                          "s_spec"}));
  EID_EXPECT_OK(corr.ValidateAgainst(r, s));
  EXPECT_EQ(corr.CommonWorldAttributes(), (std::vector<std::string>{"name"}));
  EXPECT_EQ(corr.LocalName("cuisine", Side::kR), "r_cui");
  EXPECT_FALSE(corr.LocalName("cuisine", Side::kS).has_value());
  EXPECT_FALSE(corr.LocalName("unknown", Side::kR).has_value());
}

TEST(CorrespondenceTest, AddRejectsDuplicatesAndEmpties) {
  AttributeCorrespondence corr;
  EID_EXPECT_OK(corr.Add(AttributeMapping{"name", "n", std::nullopt}));
  EXPECT_EQ(corr.Add(AttributeMapping{"name", "m", std::nullopt}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(corr.Add(AttributeMapping{"", "x", std::nullopt}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      corr.Add(AttributeMapping{"w", std::nullopt, std::nullopt}).code(),
      StatusCode::kInvalidArgument);
}

TEST(CorrespondenceTest, ValidateAgainstDetectsMissingLocal) {
  Relation r = MakeRelation("R", {"a"}, {}, {});
  Relation s = MakeRelation("S", {"b"}, {}, {});
  AttributeCorrespondence corr;
  EID_EXPECT_OK(corr.Add(AttributeMapping{"w", "nope", std::nullopt}));
  EXPECT_EQ(corr.ValidateAgainst(r, s).code(), StatusCode::kNotFound);
}

TEST(CorrespondenceTest, ToWorldNamingRenamesMappedAttributes) {
  Relation r = MakeRelation("R", {"r_name", "r_cui", "street"}, {"r_name"},
                            {{"Wok", "Chinese", "Wash"}});
  Relation s = MakeRelation("S", {"s_name"}, {}, {});
  AttributeCorrespondence corr;
  EID_EXPECT_OK(corr.Add(AttributeMapping{"name", "r_name", "s_name"}));
  EID_EXPECT_OK(corr.Add(AttributeMapping{"cuisine", "r_cui", std::nullopt}));
  EID_ASSERT_OK_AND_ASSIGN(Relation world, corr.ToWorldNaming(r, Side::kR));
  EXPECT_TRUE(world.schema().Contains("name"));
  EXPECT_TRUE(world.schema().Contains("cuisine"));
  EXPECT_TRUE(world.schema().Contains("street"));  // unmapped: local name
  EXPECT_EQ(world.PrimaryKeyNames(), (std::vector<std::string>{"name"}));
  EXPECT_EQ(world.tuple(0).GetOrNull("name").AsString(), "Wok");
}

TEST(CorrespondenceTest, ToWorldNamingDetectsCollision) {
  // Unmapped local attribute 'name' collides with the world name that
  // r_name maps to.
  Relation r = MakeRelation("R", {"r_name", "name"}, {}, {});
  Relation s = MakeRelation("S", {"s_name"}, {}, {});
  AttributeCorrespondence corr;
  EID_EXPECT_OK(corr.Add(AttributeMapping{"name", "r_name", "s_name"}));
  EXPECT_FALSE(corr.ToWorldNaming(r, Side::kR).ok());
}

}  // namespace
}  // namespace eid
