#include "eid/virtual_view.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

VirtualIntegrator MakeExample2View() {
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example2ExtendedKey();
  config.ilfds = fixtures::Example2Ilfds();
  return VirtualIntegrator(std::move(config), std::move(r), std::move(s));
}

TEST(VirtualViewTest, IdentificationRunsLazilyAndOnce) {
  VirtualIntegrator view = MakeExample2View();
  EXPECT_EQ(view.stats().identifications, 0u);
  EID_ASSERT_OK_AND_ASSIGN(Relation t1, view.IntegratedView());
  EXPECT_EQ(view.stats().identifications, 1u);
  EID_ASSERT_OK_AND_ASSIGN(Relation t2, view.IntegratedView());
  EXPECT_EQ(view.stats().identifications, 1u);  // cached
  EXPECT_EQ(view.stats().queries, 2u);
  EXPECT_TRUE(t1.RowsEqualUnordered(t2));
}

TEST(VirtualViewTest, IntegratedViewMergesMatchedPair) {
  VirtualIntegrator view = MakeExample2View();
  EID_ASSERT_OK_AND_ASSIGN(Relation t, view.IntegratedView());
  // 2 R tuples, 1 S tuple, 1 match => 2 rows.
  EXPECT_EQ(t.size(), 2u);
  bool merged_row = false;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t.tuple(i).GetOrNull("speciality").ToString() == "Mughalai") {
      merged_row = true;
      EXPECT_EQ(t.tuple(i).GetOrNull("street").AsString(), "Univ.Ave.");
      EXPECT_EQ(t.tuple(i).GetOrNull("city").AsString(), "St.Paul");
    }
  }
  EXPECT_TRUE(merged_row);
}

TEST(VirtualViewTest, UpdatesInvalidateAndReflect) {
  VirtualIntegrator view = MakeExample2View();
  EID_ASSERT_OK_AND_ASSIGN(Relation before, view.IntegratedView());
  EXPECT_EQ(before.size(), 2u);
  // An autonomous insert into S: a Hunan restaurant + the knowledge is
  // not present, so it shows up unmatched.
  EID_EXPECT_OK(view.InsertS(Row{Value::Str("VillageWok"),
                                 Value::Str("Hunan"), Value::Str("Mpls")}));
  EXPECT_EQ(view.stats().invalidations, 1u);
  EID_ASSERT_OK_AND_ASSIGN(Relation after, view.IntegratedView());
  EXPECT_EQ(after.size(), 3u);
  EXPECT_EQ(view.stats().identifications, 2u);  // re-ran once
}

TEST(VirtualViewTest, QueryWithSelectionAndProjection) {
  VirtualIntegrator view = MakeExample2View();
  EID_ASSERT_OK_AND_ASSIGN(
      Relation out,
      view.Query(
          [](const TupleView& t) {
            return NonNullEq(t.GetOrNull("cuisine"), Value::Str("Indian"));
          },
          {"name", "city"}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.schema().size(), 2u);
  EXPECT_EQ(out.tuple(0).GetOrNull("city").AsString(), "St.Paul");
}

TEST(VirtualViewTest, LookupPointQuery) {
  VirtualIntegrator view = MakeExample2View();
  EID_ASSERT_OK_AND_ASSIGN(Relation hit,
                           view.Lookup("cuisine", Value::Str("Chinese")));
  EXPECT_EQ(hit.size(), 1u);
  EID_ASSERT_OK_AND_ASSIGN(Relation miss,
                           view.Lookup("cuisine", Value::Str("Thai")));
  EXPECT_EQ(miss.size(), 0u);
}

TEST(VirtualViewTest, BadInsertDoesNotInvalidate) {
  VirtualIntegrator view = MakeExample2View();
  EID_ASSERT_OK_AND_ASSIGN(Relation before, view.IntegratedView());
  // Candidate-key violation (duplicate (name, cuisine) in R).
  Status st = view.InsertR(Row{Value::Str("TwinCities"),
                               Value::Str("Chinese"), Value::Str("Elsewhere")});
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(view.stats().invalidations, 0u);
  EID_ASSERT_OK_AND_ASSIGN(Relation after, view.IntegratedView());
  EXPECT_EQ(view.stats().identifications, 1u);  // cache still valid
  EXPECT_TRUE(before.RowsEqualUnordered(after));
}

TEST(VirtualViewTest, CurrentIdentificationExposesSoundness) {
  VirtualIntegrator view = MakeExample2View();
  EID_ASSERT_OK_AND_ASSIGN(const IdentificationResult* result,
                           view.CurrentIdentification());
  EXPECT_TRUE(result->Sound());
  EXPECT_EQ(result->matching.size(), 1u);
}

}  // namespace
}  // namespace eid
