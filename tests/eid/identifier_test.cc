#include "eid/identifier.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

IdentifierConfig Example3Config() {
  IdentifierConfig config;
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example3ExtendedKey();
  config.ilfds = fixtures::Example3Ilfds();
  return config;
}

TEST(IdentifierTest, Example3EndToEnd) {
  EntityIdentifier identifier(Example3Config());
  EID_ASSERT_OK_AND_ASSIGN(
      IdentificationResult result,
      identifier.Identify(fixtures::Example3R(), fixtures::Example3S()));
  EXPECT_TRUE(result.Sound());
  EXPECT_EQ(result.matching.size(), 3u);
  EXPECT_EQ(result.partition.total, 20u);
  EXPECT_EQ(result.partition.matched, 3u);
  EXPECT_GT(result.partition.non_matched, 0u);
  EXPECT_EQ(result.partition.matched + result.partition.non_matched +
                result.partition.undetermined,
            result.partition.total);
}

TEST(IdentifierTest, DecisionsAreThreeValued) {
  EntityIdentifier identifier(Example3Config());
  EID_ASSERT_OK_AND_ASSIGN(
      IdentificationResult result,
      identifier.Identify(fixtures::Example3R(), fixtures::Example3S()));
  EXPECT_EQ(result.Decide(0, 0), MatchDecision::kMatch);
  // R's TwinCities-Chinese (speciality Hunan) vs S's Sichuan tuple:
  // distinct via the Prop-1 rule of I2 (Sichuan→Chinese? no —
  // via I1: e2 has speciality Hunan? evaluate: the flipped I1 rule uses
  // S-tuple speciality=Sichuan -> cuisine must be Chinese; R cuisine IS
  // Chinese, so not that one. I5's induced rule: e1.name=TwinCities &
  // e1.street=Co.B2 & e2.speciality != Hunan -> distinct. Fires directly.
  EXPECT_EQ(result.Decide(0, 1), MatchDecision::kNonMatch);
  // VillageWok has no knowledge at all against ExpressCafe-like tuples.
  EXPECT_EQ(result.Decide(4, 3), MatchDecision::kNonMatch);  // I6 induced
}

TEST(IdentifierTest, WithoutIlfdsEverythingUndetermined) {
  IdentifierConfig config = Example3Config();
  config.ilfds = IlfdSet();
  EntityIdentifier identifier(config);
  EID_ASSERT_OK_AND_ASSIGN(
      IdentificationResult result,
      identifier.Identify(fixtures::Example3R(), fixtures::Example3S()));
  // S lacks cuisine entirely; no tuple can complete the extended key.
  EXPECT_EQ(result.matching.size(), 0u);
  EXPECT_EQ(result.negative.table.size(), 0u);
  EXPECT_EQ(result.partition.undetermined, result.partition.total);
}

TEST(IdentifierTest, ExplicitIdentityRulesMatchWithoutExtendedKey) {
  Relation r = MakeRelation("R", {"name", "cuisine"}, {"name"},
                            {{"Wok", "Chinese"}});
  Relation s = MakeRelation("S", {"name", "cuisine"}, {"name"},
                            {{"Wok", "Chinese"}, {"Ching", "Chinese"}});
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.identity_rules.push_back(
      IdentityRule::KeyEquivalence("nc", {"name", "cuisine"}));
  EntityIdentifier identifier(config);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           identifier.Identify(r, s));
  ASSERT_EQ(result.matching.size(), 1u);
  EXPECT_EQ(result.matching.pairs()[0], (TuplePair{0, 0}));
}

TEST(IdentifierTest, InvalidIdentityRuleRejected) {
  Relation r = MakeRelation("R", {"cuisine"}, {}, {{"Chinese"}});
  Relation s = MakeRelation("S", {"cuisine"}, {}, {{"Chinese"}});
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  Result<IdentityRule> bad = ParseIdentityRule("r2", "e1.cuisine = \"Chinese\"");
  ASSERT_TRUE(bad.ok());
  config.identity_rules.push_back(std::move(bad).value());
  EntityIdentifier identifier(config);
  EXPECT_FALSE(identifier.Identify(r, s).ok());
}

TEST(IdentifierTest, ConsistencyViolationDetected) {
  // An identity rule and a distinctness rule that contradict each other on
  // the same pair must trip the consistency constraint.
  Relation r = MakeRelation("R", {"name"}, {"name"}, {{"Wok"}});
  Relation s = MakeRelation("S", {"name"}, {"name"}, {{"Wok"}});
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.identity_rules.push_back(IdentityRule::KeyEquivalence("n", {"name"}));
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule contradiction,
      ParseDistinctnessRule("d", "e1.name = \"Wok\" & e2.name = \"Wok\""));
  config.distinctness_rules.push_back(contradiction);
  EntityIdentifier identifier(config);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           identifier.Identify(r, s));
  EXPECT_FALSE(result.Sound());
  EXPECT_EQ(result.consistency.code(), StatusCode::kConstraintViolation);
}

TEST(IdentifierTest, DistinctnessFromIlfdsToggle) {
  IdentifierConfig config = Example3Config();
  config.distinctness_from_ilfds = false;
  EntityIdentifier identifier(config);
  EID_ASSERT_OK_AND_ASSIGN(
      IdentificationResult off,
      identifier.Identify(fixtures::Example3R(), fixtures::Example3S()));
  EXPECT_EQ(off.negative.table.size(), 0u);

  config.distinctness_from_ilfds = true;
  EntityIdentifier identifier_on(config);
  EID_ASSERT_OK_AND_ASSIGN(
      IdentificationResult on,
      identifier_on.Identify(fixtures::Example3R(), fixtures::Example3S()));
  EXPECT_GT(on.negative.table.size(), 0u);
  // Matching is unaffected by distinctness knowledge.
  EXPECT_EQ(on.matching.size(), off.matching.size());
}

TEST(IdentifierTest, MatchedPairsNeverContradictGroundTruthInExample3) {
  // Soundness on the worked example: every matched pair agrees on every
  // non-NULL extended-key attribute of the extended tuples.
  EntityIdentifier identifier(Example3Config());
  EID_ASSERT_OK_AND_ASSIGN(
      IdentificationResult result,
      identifier.Identify(fixtures::Example3R(), fixtures::Example3S()));
  ExtendedKey key = fixtures::Example3ExtendedKey();
  for (const TuplePair& p : result.matching.pairs()) {
    for (const std::string& a : key.attributes()) {
      Value rv = result.r_extended.tuple(p.r_index).GetOrNull(a);
      Value sv = result.s_extended.tuple(p.s_index).GetOrNull(a);
      EXPECT_TRUE(NonNullEq(rv, sv)) << a;
    }
  }
}

TEST(IdentifierTest, MatchingRelationAndNegativeRelationPrintable) {
  EntityIdentifier identifier(Example3Config());
  EID_ASSERT_OK_AND_ASSIGN(
      IdentificationResult result,
      identifier.Identify(fixtures::Example3R(), fixtures::Example3S()));
  EID_ASSERT_OK_AND_ASSIGN(Relation mt, result.MatchingRelation());
  EXPECT_EQ(mt.size(), result.matching.size());
  EID_ASSERT_OK_AND_ASSIGN(Relation nmt, result.NegativeRelation());
  EXPECT_EQ(nmt.size(), result.negative.table.size());
}

}  // namespace
}  // namespace eid
