#include "eid/integrate.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

IdentificationResult Example3Result() {
  IdentifierConfig config;
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example3ExtendedKey();
  config.ilfds = fixtures::Example3Ilfds();
  EntityIdentifier identifier(config);
  Result<IdentificationResult> result = identifier.Identify(r, s);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(IntegrateTest, SideBySideRowCount) {
  IdentificationResult result = Example3Result();
  EID_ASSERT_OK_AND_ASSIGN(Relation t, BuildIntegratedTable(result));
  // 3 matched + 2 unmatched R (TwinCities-Indian, VillageWok) + 1
  // unmatched S (Sichuan) = 6 rows, matching the §6.3 printed table shape.
  EXPECT_EQ(t.size(), 6u);
  EXPECT_TRUE(t.schema().Contains("R.name"));
  EXPECT_TRUE(t.schema().Contains("S.name"));
}

TEST(IntegrateTest, UnmatchedRowsCarryNulls) {
  IdentificationResult result = Example3Result();
  EID_ASSERT_OK_AND_ASSIGN(Relation t, BuildIntegratedTable(result));
  size_t r_padded = 0, s_padded = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    bool r_null = t.tuple(i).GetOrNull("R.name").is_null();
    bool s_null = t.tuple(i).GetOrNull("S.name").is_null();
    EXPECT_FALSE(r_null && s_null);
    if (r_null) ++s_padded;
    if (s_null) ++r_padded;
  }
  EXPECT_EQ(r_padded, 2u);
  EXPECT_EQ(s_padded, 1u);
}

TEST(IntegrateTest, MergedLayoutCoalescesWorldColumns) {
  IdentificationResult result = Example3Result();
  EID_ASSERT_OK_AND_ASSIGN(
      Relation t, BuildIntegratedTable(result, IntegrationLayout::kMerged));
  EXPECT_EQ(t.size(), 6u);
  // One column per world attribute.
  EXPECT_TRUE(t.schema().Contains("name"));
  EXPECT_TRUE(t.schema().Contains("cuisine"));
  EXPECT_TRUE(t.schema().Contains("speciality"));
  EXPECT_TRUE(t.schema().Contains("street"));
  EXPECT_TRUE(t.schema().Contains("county"));
  EXPECT_FALSE(t.schema().Contains("R.name"));
  // Matched rows pull values from both sides: the Anjuman row has street
  // (from R) and county (from S).
  bool found_anjuman = false;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t.tuple(i).GetOrNull("name").ToString() == "Anjuman") {
      found_anjuman = true;
      EXPECT_EQ(t.tuple(i).GetOrNull("street").AsString(), "LeSalleAve.");
      EXPECT_EQ(t.tuple(i).GetOrNull("county").AsString(), "Mpls.");
    }
  }
  EXPECT_TRUE(found_anjuman);
}

TEST(IntegrateTest, MergedLayoutSurfacesAttributeValueConflicts) {
  // Force a match whose shared non-key attribute disagrees.
  Relation r = MakeRelation("R", {"name", "city"}, {"name"},
                            {{"Wok", "Mpls"}});
  Relation s = MakeRelation("S", {"name", "city"}, {"name"},
                            {{"Wok", "St.Paul"}});
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.identity_rules.push_back(IdentityRule::KeyEquivalence("n", {"name"}));
  EntityIdentifier identifier(config);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           identifier.Identify(r, s));
  ASSERT_EQ(result.matching.size(), 1u);
  Result<Relation> merged =
      BuildIntegratedTable(result, IntegrationLayout::kMerged);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kFailedPrecondition);
  // Side-by-side integration still works (conflict left visible).
  EID_ASSERT_OK_AND_ASSIGN(Relation side, BuildIntegratedTable(result));
  EXPECT_EQ(side.size(), 1u);
}

TEST(IntegrateTest, PotentialIntraMatchesFindsResidualCandidates) {
  IdentificationResult result = Example3Result();
  EID_ASSERT_OK_AND_ASSIGN(
      std::vector<TuplePair> residual,
      PotentialIntraMatches(result, fixtures::Example3ExtendedKey()));
  // Unmatched: R1 (TwinCities, Indian, speciality NULL), R4 (VillageWok,
  // Chinese, NULL); S1 (TwinCities, Sichuan, cuisine Chinese).
  // R1 vs S1 conflicts on cuisine (Indian vs Chinese) and is also in the
  // NMT; R4 vs S1 conflicts on name. So no residual candidates here.
  EXPECT_TRUE(residual.empty());
}

TEST(IntegrateTest, PotentialIntraMatchesPositiveCase) {
  // Remove knowledge so TwinCities-Indian and the Sichuan tuple lack
  // derived values; with compatible non-NULL key parts they become
  // residual candidates.
  Relation r = MakeRelation("R", {"name", "cuisine"}, {"name", "cuisine"},
                            {{"TwinCities", "Chinese"}});
  Relation s = MakeRelation("S", {"name", "speciality"},
                            {"name", "speciality"},
                            {{"TwinCities", "Sichuan"}});
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = ExtendedKey({"name", "cuisine", "speciality"});
  EntityIdentifier identifier(config);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           identifier.Identify(r, s));
  EXPECT_EQ(result.matching.size(), 0u);
  EID_ASSERT_OK_AND_ASSIGN(
      std::vector<TuplePair> residual,
      PotentialIntraMatches(result, *config.extended_key));
  ASSERT_EQ(residual.size(), 1u);
  EXPECT_EQ(residual[0], (TuplePair{0, 0}));
}

}  // namespace
}  // namespace eid
