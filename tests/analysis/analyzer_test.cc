// The deliberately-defective-rule-program table: every diagnostic code the
// analyzer can emit has a minimal program that triggers exactly it, plus
// zero-diagnostics assertions over every shipped fixture and a generated
// workload, and pre-flight integration through the engine.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "eid.h"
#include "workload/fixtures.h"
#include "workload/generator.h"

namespace eid {
namespace {

using analysis::AnalysisReport;
using analysis::AnalyzerOptions;
using analysis::AnalyzeRuleProgram;
using analysis::Diagnostic;
using analysis::RuleKind;
using analysis::Severity;

IlfdSet ParseIlfds(const std::string& text) {
  IlfdSet set;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    auto added = set.AddText(line);
    EID_CHECK(added.ok());
  }
  return set;
}

/// The Example 1 schema pair — R(name, street, cuisine), S(name, city,
/// manager) — with an identity correspondence; the playground most
/// defective programs below are built on.
struct Playground {
  Relation r = fixtures::Table1R();
  Relation s = fixtures::Table1S();
  IdentifierConfig config;

  Playground() {
    config.correspondence = AttributeCorrespondence::Identity(r, s);
  }

  AnalysisReport Analyze(const AnalyzerOptions& options = {}) const {
    return AnalyzeRuleProgram(r, s, config, options);
  }
};

Predicate Pred(Operand lhs, CompareOp op, Operand rhs) {
  Predicate p;
  p.lhs = std::move(lhs);
  p.op = op;
  p.rhs = std::move(rhs);
  return p;
}

// ---------------------------------------------------------------------
// Zero diagnostics on everything the repo ships.
// ---------------------------------------------------------------------

TEST(AnalyzerCleanTest, Example1ProgramIsClean) {
  Playground pg;
  pg.config.extended_key = fixtures::Example1ExtendedKey();
  pg.config.ilfds = fixtures::Example1Ilfds();
  AnalysisReport report = pg.Analyze();
  EXPECT_TRUE(report.Clean()) << report.ToString();
}

TEST(AnalyzerCleanTest, Example2ProgramIsClean) {
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example2ExtendedKey();
  config.ilfds = fixtures::Example2Ilfds();
  AnalysisReport report = AnalyzeRuleProgram(r, s, config);
  EXPECT_TRUE(report.Clean()) << report.ToString();
}

TEST(AnalyzerCleanTest, Example3ProgramIsClean) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example3ExtendedKey();
  config.ilfds = fixtures::Example3Ilfds();
  AnalysisReport report = AnalyzeRuleProgram(r, s, config);
  EXPECT_TRUE(report.Clean()) << report.ToString();
}

TEST(AnalyzerCleanTest, GeneratedWorkloadIsClean) {
  GeneratorConfig gen;
  gen.overlap_entities = 24;
  gen.r_only_entities = 8;
  gen.s_only_entities = 8;
  gen.street_pool = 32;
  gen.speciality_pool = 16;
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(gen));
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  AnalysisReport report = AnalyzeRuleProgram(world.r, world.s, config);
  EXPECT_TRUE(report.Clean()) << report.ToString();
}

// ---------------------------------------------------------------------
// (a) Schema checks.
// ---------------------------------------------------------------------

TEST(AnalyzerSchemaTest, DanglingIlfdAttributeIsE001) {
  Playground pg;
  pg.config.ilfds = ParseIlfds("streeet=Wash.Ave. -> city=Mpls");
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-E001")) << report.ToString();
  const Diagnostic* d = report.WithCode("EID-E001")[0];
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->rule.kind, RuleKind::kIlfd);
  EXPECT_EQ(d->rule.index, 0u);
  EXPECT_NE(d->message.find("streeet"), std::string::npos);
  EXPECT_FALSE(d->hint.empty());
}

TEST(AnalyzerSchemaTest, DanglingCorrespondenceColumnIsE001) {
  Playground pg;
  AttributeMapping bogus;
  bogus.world = "phone";
  bogus.in_r = "phone_number";  // not a column of Table1R
  EID_ASSERT_OK(pg.config.correspondence.Add(bogus));
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-E001")) << report.ToString();
  EXPECT_EQ(report.WithCode("EID-E001")[0]->rule.kind,
            RuleKind::kCorrespondence);
}

TEST(AnalyzerSchemaTest, UnderivableExtendedKeyAttributeIsE001) {
  Playground pg;
  pg.config.extended_key = ExtendedKey({"name", "phone"});
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-E001")) << report.ToString();
  EXPECT_EQ(report.WithCode("EID-E001")[0]->rule.kind,
            RuleKind::kExtendedKey);
}

TEST(AnalyzerSchemaTest, TypeMismatchedIlfdConditionIsE002) {
  Playground pg;
  // `name` is a string column; an integer condition can never hold.
  pg.config.ilfds.Add(
      Ilfd::Implies({Atom{"name", Value::Int(7)}},
                    Atom{"city", Value::Str("Mpls")}));
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-E002")) << report.ToString();
  EXPECT_EQ(report.WithCode("EID-E002")[0]->rule.kind, RuleKind::kIlfd);
}

TEST(AnalyzerSchemaTest, TypeMismatchedPredicateIsE002) {
  Playground pg;
  pg.config.identity_rules.push_back(IdentityRule(
      "bad-type",
      {Pred(Operand::Attr(1, "name"), CompareOp::kEq,
            Operand::Attr(2, "name")),
       Pred(Operand::Attr(1, "name"), CompareOp::kEq,
            Operand::Const(Value::Int(7))),
       Pred(Operand::Attr(2, "name"), CompareOp::kEq,
            Operand::Const(Value::Int(7)))}));
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-E002")) << report.ToString();
  EXPECT_EQ(report.WithCode("EID-E002")[0]->rule.kind,
            RuleKind::kIdentityRule);
}

TEST(AnalyzerSchemaTest, NullComparingPredicateIsE002) {
  Playground pg;
  pg.config.distinctness_rules.push_back(DistinctnessRule(
      "null-compare",
      {Pred(Operand::Attr(1, "name"), CompareOp::kEq,
            Operand::Attr(2, "name")),
       Pred(Operand::Attr(1, "cuisine"), CompareOp::kNe,
            Operand::Const(Value::Null()))}));
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-E002")) << report.ToString();
}

TEST(AnalyzerSchemaTest, MalformedIdentityRuleIsE004) {
  Playground pg;
  // References `cuisine` on both entities without forcing them equal.
  pg.config.identity_rules.push_back(IdentityRule(
      "not-identity",
      {Pred(Operand::Attr(1, "name"), CompareOp::kEq,
            Operand::Attr(2, "name")),
       Pred(Operand::Attr(1, "cuisine"), CompareOp::kLt,
            Operand::Attr(2, "cuisine"))}));
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-E004")) << report.ToString();
  const Diagnostic* d = report.WithCode("EID-E004")[0];
  EXPECT_EQ(d->rule.kind, RuleKind::kIdentityRule);
  EXPECT_EQ(d->rule.display, "not-identity");
}

TEST(AnalyzerSchemaTest, MalformedDistinctnessRuleIsE005) {
  Playground pg;
  // Only entity 1 is referenced.
  pg.config.distinctness_rules.push_back(DistinctnessRule(
      "one-sided", {Pred(Operand::Attr(1, "cuisine"), CompareOp::kEq,
                         Operand::Const(Value::Str("Chinese")))}));
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-E005")) << report.ToString();
  EXPECT_EQ(report.WithCode("EID-E005")[0]->rule.kind,
            RuleKind::kDistinctnessRule);
}

// ---------------------------------------------------------------------
// (b) Closure checks.
// ---------------------------------------------------------------------

TEST(AnalyzerClosureTest, ContradictoryIlfdPairIsE003) {
  Playground pg;
  pg.config.ilfds = ParseIlfds(
      "street=Wash.Ave. -> city=Mpls\n"
      "manager=Hwang -> street=Wash.Ave.\n"
      "manager=Hwang -> city=St.Paul\n");
  AnalysisReport report = pg.Analyze();
  // Rule 2's antecedent closure holds city=Mpls (via rules 1+0) and
  // city=St.Paul (via itself).
  ASSERT_TRUE(report.HasCode("EID-E003")) << report.ToString();
  const Diagnostic* d = report.WithCode("EID-E003")[0];
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->rule.kind, RuleKind::kIlfd);
  EXPECT_NE(d->message.find("city"), std::string::npos);
}

TEST(AnalyzerClosureTest, RedundantIlfdIsW002) {
  Playground pg;
  pg.config.ilfds = ParseIlfds(
      "manager=Hwang -> street=Wash.Ave.\n"
      "street=Wash.Ave. -> city=Mpls\n"
      "manager=Hwang -> city=Mpls\n");
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-W002")) << report.ToString();
  const Diagnostic* d = report.WithCode("EID-W002")[0];
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->rule.index, 2u);  // the transitively-derivable rule
  EXPECT_FALSE(report.HasErrors());
}

TEST(AnalyzerClosureTest, TrivialIlfdIsW003) {
  Playground pg;
  pg.config.ilfds = ParseIlfds("street=Wash.Ave. -> street=Wash.Ave.");
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-W003")) << report.ToString();
  // Trivial rules are excluded from the redundancy sweep.
  EXPECT_FALSE(report.HasCode("EID-W002"));
}

TEST(AnalyzerClosureTest, RuleLimitSkipsClosureWithN001) {
  Playground pg;
  pg.config.ilfds = ParseIlfds(
      "street=Wash.Ave. -> city=Mpls\n"
      "street=Wash.Ave. -> city=St.Paul\n");
  AnalyzerOptions options;
  options.closure_rule_limit = 1;
  AnalysisReport report = pg.Analyze(options);
  EXPECT_FALSE(report.HasCode("EID-E003")) << report.ToString();
  ASSERT_TRUE(report.HasCode("EID-N001"));
  EXPECT_EQ(report.WithCode("EID-N001")[0]->severity, Severity::kNote);
  // Raising the limit restores the contradiction report.
  options.closure_rule_limit = 2048;
  EXPECT_TRUE(pg.Analyze(options).HasCode("EID-E003"));
}

// ---------------------------------------------------------------------
// (c) Order checks (first-applicable-wins).
// ---------------------------------------------------------------------

TEST(AnalyzerOrderTest, ShadowedIlfdIsW001) {
  Playground pg;
  pg.config.ilfds = ParseIlfds(
      "street=Wash.Ave. -> city=Mpls\n"
      "cuisine=Chinese & street=Wash.Ave. -> city=Mpls\n");
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-W001")) << report.ToString();
  const Diagnostic* d = report.WithCode("EID-W001")[0];
  EXPECT_EQ(d->rule.kind, RuleKind::kIlfd);
  EXPECT_EQ(d->rule.index, 1u);  // the later, more specific rule loses
  EXPECT_NE(d->message.find("ilfd#0"), std::string::npos);
}

TEST(AnalyzerOrderTest, UnconditionalIlfdIsW004) {
  Playground pg;
  pg.config.ilfds.Add(Ilfd({}, {Atom{"city", Value::Str("Mpls")}}));
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-W004")) << report.ToString();
  // An unconditional rule also shadows every later rule for the same
  // attribute.
  IlfdSet with_default;
  with_default.Add(Ilfd({}, {Atom{"city", Value::Str("Mpls")}}));
  with_default.Add(Ilfd::Implies({Atom{"street", Value::Str("Wash.Ave.")}},
                                 Atom{"city", Value::Str("St.Paul")}));
  pg.config.ilfds = with_default;
  AnalyzerOptions order_only;
  order_only.closure_checks = false;  // the pair is also contradictory
  report = pg.Analyze(order_only);
  EXPECT_TRUE(report.HasCode("EID-W004")) << report.ToString();
  EXPECT_TRUE(report.HasCode("EID-W001")) << report.ToString();
}

// ---------------------------------------------------------------------
// (d) Blocking checks.
// ---------------------------------------------------------------------

TEST(AnalyzerBlockingTest, NoEqualityConjunctIsW005) {
  Playground pg;
  pg.config.distinctness_rules.push_back(DistinctnessRule(
      "scan-everything", {Pred(Operand::Attr(1, "name"), CompareOp::kNe,
                               Operand::Attr(2, "name"))}));
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-W005")) << report.ToString();
  const Diagnostic* d = report.WithCode("EID-W005")[0];
  EXPECT_EQ(d->rule.kind, RuleKind::kDistinctnessRule);
  EXPECT_NE(d->message.find("tiled"), std::string::npos);
}

TEST(AnalyzerBlockingTest, EqualityJoinRuleHasNoW005) {
  Playground pg;
  pg.config.identity_rules.push_back(IdentityRule(
      "join-on-name", {Pred(Operand::Attr(1, "name"), CompareOp::kEq,
                            Operand::Attr(2, "name"))}));
  AnalysisReport report = pg.Analyze();
  EXPECT_TRUE(report.Clean()) << report.ToString();
}

TEST(AnalyzerBlockingTest, VacuousIdentityRuleIsW006) {
  Playground pg;
  pg.config.identity_rules.push_back(IdentityRule(
      "vacuous",
      {Pred(Operand::Attr(1, "name"), CompareOp::kEq,
            Operand::Attr(2, "name")),
       Pred(Operand::Attr(1, "name"), CompareOp::kEq,
            Operand::Const(Value::Str("VillageWok"))),
       Pred(Operand::Attr(2, "name"), CompareOp::kEq,
            Operand::Const(Value::Str("OldCountry")))}));
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-W006")) << report.ToString();
  EXPECT_EQ(report.WithCode("EID-W006")[0]->rule.kind,
            RuleKind::kIdentityRule);
}

TEST(AnalyzerBlockingTest, RuleDeadInBothOrientationsIsW006) {
  Playground pg;
  // cuisine exists only in R', manager only in S'; binding both to
  // entity 1 is impossible in either orientation.
  pg.config.distinctness_rules.push_back(DistinctnessRule(
      "never-fires",
      {Pred(Operand::Attr(1, "cuisine"), CompareOp::kEq,
            Operand::Const(Value::Str("Chinese"))),
       Pred(Operand::Attr(1, "manager"), CompareOp::kEq,
            Operand::Const(Value::Str("Hwang"))),
       Pred(Operand::Attr(1, "name"), CompareOp::kNe,
            Operand::Attr(2, "name"))}));
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-W006")) << report.ToString();
  EXPECT_EQ(report.WithCode("EID-W006")[0]->rule.kind,
            RuleKind::kDistinctnessRule);
}

TEST(AnalyzerBlockingTest, UnindexableRuleIsW009) {
  Playground pg;
  // No join and no constant filter in any orientation: the staged
  // generator has an empty blocking plan and degenerates to quadratic.
  pg.config.distinctness_rules.push_back(DistinctnessRule(
      "scan-everything", {Pred(Operand::Attr(1, "name"), CompareOp::kNe,
                               Operand::Attr(2, "name"))}));
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-W009")) << report.ToString();
  const Diagnostic* d = report.WithCode("EID-W009")[0];
  EXPECT_EQ(d->rule.kind, RuleKind::kProgram);
  EXPECT_NE(d->message.find("distinctness-rule#0"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("quadratic"), std::string::npos) << d->message;
  EXPECT_NE(d->hint.find("equality conjunct"), std::string::npos) << d->hint;
}

TEST(AnalyzerBlockingTest, ConstFilteredRuleHasNoW009) {
  Playground pg;
  // No cross-entity join (W005 still applies) but a constant-equality
  // conjunct seeds a bucket — the plan is not empty, so no W009.
  pg.config.distinctness_rules.push_back(DistinctnessRule(
      "const-pruned", {Pred(Operand::Attr(1, "name"), CompareOp::kNe,
                            Operand::Attr(2, "name")),
                       Pred(Operand::Attr(1, "cuisine"), CompareOp::kEq,
                            Operand::Const(Value::Str("Chinese")))}));
  AnalysisReport report = pg.Analyze();
  EXPECT_TRUE(report.HasCode("EID-W005")) << report.ToString();
  EXPECT_FALSE(report.HasCode("EID-W009")) << report.ToString();
}

TEST(AnalyzerBlockingTest, JoinRuleHasNoW009) {
  Playground pg;
  pg.config.identity_rules.push_back(IdentityRule(
      "join-on-name", {Pred(Operand::Attr(1, "name"), CompareOp::kEq,
                            Operand::Attr(2, "name"))}));
  AnalysisReport report = pg.Analyze();
  EXPECT_FALSE(report.HasCode("EID-W009")) << report.ToString();
}

TEST(AnalyzerBlockingTest, IlfdDeadOnBothSidesIsW007) {
  Playground pg;
  // street lives only in R, manager only in S; no side has both.
  pg.config.ilfds = ParseIlfds(
      "street=Wash.Ave. & manager=Hwang -> city=Mpls");
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-W007")) << report.ToString();
  EXPECT_FALSE(report.HasCode("EID-E001"));
}

TEST(AnalyzerBlockingTest, KeyAttributeMissingOnOneSideIsW008) {
  Playground pg;
  // manager is modeled only by S and no ILFD derives it: every R' tuple
  // has a NULL key column.
  pg.config.extended_key = ExtendedKey({"name", "manager"});
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-W008")) << report.ToString();
  EXPECT_EQ(report.WithCode("EID-W008")[0]->rule.kind,
            RuleKind::kExtendedKey);
  EXPECT_FALSE(report.HasErrors());
}

// ---------------------------------------------------------------------
// Report plumbing and the engine pre-flight.
// ---------------------------------------------------------------------

TEST(AnalyzerReportTest, ToStringCarriesCodeProvenanceAndSummary) {
  Playground pg;
  pg.config.ilfds = ParseIlfds("streeet=Wash.Ave. -> city=Mpls");
  AnalysisReport report = pg.Analyze();
  std::string text = report.ToString();
  EXPECT_NE(text.find("EID-E001"), std::string::npos) << text;
  EXPECT_NE(text.find("ilfd#0"), std::string::npos) << text;
  EXPECT_NE(text.find("error(s)"), std::string::npos) << text;
  EXPECT_EQ(report.ErrorCount(), 1u);
  EXPECT_EQ(report.WarningCount(), 0u);
}

// ---------------------------------------------------------------------
// SARIF export (the eid-lint --sarif surface).
// ---------------------------------------------------------------------

TEST(AnalyzerSarifTest, CleanReportIsAnEmptyValidRun) {
  Playground pg;
  pg.config.extended_key = fixtures::Example1ExtendedKey();
  pg.config.ilfds = fixtures::Example1Ilfds();
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.Clean()) << report.ToString();
  std::string sarif = analysis::ToSarif(report);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("\"name\": \"eid-lint\""), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("\"rules\": []"), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos) << sarif;
}

TEST(AnalyzerSarifTest, ErrorBecomesResultWithRuleAndProvenance) {
  Playground pg;
  pg.config.ilfds = ParseIlfds(
      "street=Wash.Ave. -> city=Mpls\n"
      "street=Wash.Ave. -> city=St.Paul\n");
  AnalysisReport report = pg.Analyze();
  ASSERT_TRUE(report.HasCode("EID-E003")) << report.ToString();
  std::string sarif = analysis::ToSarif(report, "9.9.9");
  // The code is declared once as a reportingDescriptor...
  EXPECT_NE(sarif.find("{\"id\": \"EID-E003\""), std::string::npos) << sarif;
  // ...and referenced by every result, with severity mapped to level.
  EXPECT_NE(sarif.find("\"ruleId\": \"EID-E003\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  // Rule provenance (ilfd#N plus display text) rides in logicalLocations.
  EXPECT_NE(sarif.find("\"fullyQualifiedName\": \"ilfd#"), std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"kind\": \"ilfd\""), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"9.9.9\""), std::string::npos);
}

TEST(AnalyzerSarifTest, RepeatedCodesShareOneReportingDescriptor) {
  AnalysisReport report;
  for (int i = 0; i < 2; ++i) {
    Diagnostic d;
    d.code = "EID-W001";
    d.severity = Severity::kWarning;
    d.rule.kind = RuleKind::kIlfd;
    d.rule.index = static_cast<size_t>(i);
    d.message = "shadowed";
    report.diagnostics.push_back(d);
  }
  Diagnostic other;
  other.code = "EID-W005";
  other.severity = Severity::kWarning;
  other.rule.kind = RuleKind::kIdentityRule;
  other.message = "no equality conjunct";
  report.diagnostics.push_back(other);
  std::string sarif = analysis::ToSarif(report);
  // Two distinct codes -> exactly two rule declarations.
  size_t first = sarif.find("{\"id\": \"EID-W001\"");
  ASSERT_NE(first, std::string::npos) << sarif;
  EXPECT_EQ(sarif.find("{\"id\": \"EID-W001\"", first + 1), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"EID-W005\""), std::string::npos);
  // Both W001 results reference descriptor 0; W005 references 1.
  EXPECT_NE(sarif.find("\"ruleIndex\": 0"), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\": 1"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
}

TEST(AnalyzerSarifTest, HintLandsInPropertiesAndStringsAreEscaped) {
  AnalysisReport report;
  Diagnostic d;
  d.code = "EID-E001";
  d.severity = Severity::kError;
  d.rule.kind = RuleKind::kIlfd;
  d.rule.display = "say \"hi\"";
  d.message = "line one\nline two";
  d.hint = "drop the \\ backslash";
  report.diagnostics.push_back(d);
  std::string sarif = analysis::ToSarif(report);
  EXPECT_NE(sarif.find("say \\\"hi\\\""), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("line one\\nline two"), std::string::npos);
  EXPECT_NE(sarif.find("\"properties\": {\"hint\": \"drop the \\\\ backslash\"}"),
            std::string::npos)
      << sarif;
}

TEST(AnalyzerPreflightTest, ErrorsFailIdentifyWhenAnalyzeIsSet) {
  Playground pg;
  pg.config.ilfds = ParseIlfds(
      "street=Wash.Ave. -> city=Mpls\n"
      "street=Wash.Ave. -> city=St.Paul\n");
  pg.config.matcher_options.analyze = true;
  EntityIdentifier identifier(pg.config);
  Result<IdentificationResult> result = identifier.Identify(pg.r, pg.s);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("EID-E003"), std::string::npos)
      << result.status().message();
}

TEST(AnalyzerPreflightTest, WarningsDoNotFailIdentify) {
  Playground pg;
  pg.config.ilfds = ParseIlfds(
      "street=Wash.Ave. -> city=Mpls\n"
      "cuisine=Chinese & street=Wash.Ave. -> city=Mpls\n");  // W001+W002 only
  pg.config.extended_key = fixtures::Example1ExtendedKey();
  pg.config.matcher_options.analyze = true;
  EntityIdentifier identifier(pg.config);
  EID_EXPECT_OK(identifier.Identify(pg.r, pg.s).status());
}

TEST(AnalyzerPreflightTest, CleanProgramIdentifiesIdentically) {
  Playground pg;
  pg.config.extended_key = fixtures::Example1ExtendedKey();
  pg.config.ilfds = fixtures::Example1Ilfds();
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult plain,
                           EntityIdentifier(pg.config).Identify(pg.r, pg.s));
  pg.config.matcher_options.analyze = true;
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult checked,
                           EntityIdentifier(pg.config).Identify(pg.r, pg.s));
  EXPECT_EQ(plain.matching.pairs(), checked.matching.pairs());
  EXPECT_EQ(plain.negative.table.pairs(), checked.negative.table.pairs());
}

TEST(AnalyzerPreflightTest, BuildMatchingTableHonorsAnalyze) {
  Playground pg;
  pg.config.ilfds = ParseIlfds(
      "street=Wash.Ave. -> city=Mpls\n"
      "street=Wash.Ave. -> city=St.Paul\n");
  MatcherOptions options;
  options.analyze = true;
  Result<MatcherResult> result = BuildMatchingTable(
      pg.r, pg.s, pg.config.correspondence, fixtures::Example1ExtendedKey(),
      pg.config.ilfds, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AnalyzerPreflightTest, SessionForwardsMatcherOptions) {
  PrototypeSession session(
      fixtures::Table1R(), fixtures::Table1S(),
      AttributeCorrespondence::Identity(fixtures::Table1R(),
                                        fixtures::Table1S()),
      ParseIlfds("street=Wash.Ave. -> city=Mpls\n"
                 "street=Wash.Ave. -> city=St.Paul\n"));
  session.matcher_options().analyze = true;
  // Candidate 0 is `name` (the only attribute common to both sides).
  Result<std::string> outcome = session.SetupExtendedKey({0});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AnalyzerOptionsTest, FamiliesCanBeDisabledIndependently) {
  Playground pg;
  pg.config.ilfds = ParseIlfds(
      "streeet=Wash.Ave. -> city=Mpls\n"      // E001 (schema)
      "street=Wash.Ave. -> city=Mpls\n"
      "street=Wash.Ave. -> city=St.Paul\n");  // E003 (closure), W001 (order)
  AnalyzerOptions only_schema;
  only_schema.closure_checks = false;
  only_schema.order_checks = false;
  only_schema.blocking_checks = false;
  AnalysisReport report = pg.Analyze(only_schema);
  EXPECT_TRUE(report.HasCode("EID-E001"));
  EXPECT_FALSE(report.HasCode("EID-E003"));
  EXPECT_FALSE(report.HasCode("EID-W001"));

  AnalyzerOptions no_schema;
  no_schema.schema_checks = false;
  report = pg.Analyze(no_schema);
  EXPECT_FALSE(report.HasCode("EID-E001"));
  EXPECT_TRUE(report.HasCode("EID-E003"));
  EXPECT_TRUE(report.HasCode("EID-W001"));
}

}  // namespace
}  // namespace eid
