#include "workload/generator.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "ilfd/violation.h"

namespace eid {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.seed = 123;
  config.overlap_entities = 20;
  config.r_only_entities = 10;
  config.s_only_entities = 10;
  config.name_pool = 30;
  config.street_pool = 60;
  config.cities = 5;
  config.speciality_pool = 12;
  config.cuisines = 4;
  return config;
}

TEST(GeneratorTest, SizesMatchConfig) {
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(SmallConfig()));
  EXPECT_EQ(world.universe.size(), 40u);
  EXPECT_EQ(world.r.size(), 30u);
  EXPECT_EQ(world.s.size(), 30u);
  EXPECT_EQ(world.truth.size(), 20u);
  EXPECT_EQ(world.covered.size(), 40u);
}

TEST(GeneratorTest, DeterministicForSeed) {
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld a, GenerateWorld(SmallConfig()));
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld b, GenerateWorld(SmallConfig()));
  EXPECT_TRUE(a.r.RowsEqualUnordered(b.r));
  EXPECT_TRUE(a.s.RowsEqualUnordered(b.s));
  EXPECT_EQ(a.truth, b.truth);
  GeneratorConfig other = SmallConfig();
  other.seed = 999;
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld c, GenerateWorld(other));
  EXPECT_FALSE(a.r.RowsEqualUnordered(c.r));
}

TEST(GeneratorTest, KeysHoldInAllRelations) {
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(SmallConfig()));
  EID_EXPECT_OK(world.universe.ValidateKeys());
  EID_EXPECT_OK(world.r.ValidateKeys());
  EID_EXPECT_OK(world.s.ValidateKeys());
}

TEST(GeneratorTest, ExtendedKeyIdentifiesUniverse) {
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(SmallConfig()));
  EID_ASSERT_OK_AND_ASSIGN(
      bool identifying,
      IsIdentifying(world.universe, world.extended_key.attributes()));
  EXPECT_TRUE(identifying);
}

TEST(GeneratorTest, UniverseSatisfiesItsIlfds) {
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(SmallConfig()));
  EXPECT_TRUE(CheckViolations(world.universe, world.ilfds).empty());
}

TEST(GeneratorTest, GroundTruthPairsShareNameAcrossRelations) {
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(SmallConfig()));
  for (const TuplePair& p : world.truth) {
    EXPECT_EQ(world.r.tuple(p.r_index).GetOrNull("name"),
              world.s.tuple(p.s_index).GetOrNull("name"));
  }
}

TEST(GeneratorTest, CoverageZeroMeansNoPerEntityIlfds) {
  GeneratorConfig config = SmallConfig();
  config.ilfd_coverage = 0.0;
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(config));
  // Only the two taxonomy families remain.
  EXPECT_EQ(world.ilfds.size(),
            config.speciality_pool + config.street_pool);
  for (bool c : world.covered) EXPECT_FALSE(c);
}

TEST(GeneratorTest, CoverageOneCoversEveryEntity) {
  GeneratorConfig config = SmallConfig();
  config.ilfd_coverage = 1.0;
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(config));
  for (bool c : world.covered) EXPECT_TRUE(c);
  EXPECT_EQ(world.ilfds.size(),
            config.speciality_pool + config.street_pool + 40u);
}

TEST(GeneratorTest, RejectsImpossibleDensity) {
  GeneratorConfig config;
  config.overlap_entities = 100;
  config.r_only_entities = 0;
  config.s_only_entities = 0;
  config.name_pool = 3;
  config.speciality_pool = 3;  // 9 < 100
  EXPECT_FALSE(GenerateWorld(config).ok());
}

TEST(GeneratorTest, ResampleSeedSharesTaxonomiesNotEntities) {
  GeneratorConfig base = SmallConfig();
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld a, GenerateWorld(base));
  GeneratorConfig resampled = base;
  resampled.resample_seed = 999;
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld b, GenerateWorld(resampled));
  // Different entities...
  EXPECT_FALSE(a.r.RowsEqualUnordered(b.r));
  // ...but identical taxonomy ILFDs (speciality→cuisine, street→city are
  // emitted before the per-entity rules, in pool order).
  size_t taxonomy = base.speciality_pool + base.street_pool;
  for (size_t i = 0; i < taxonomy; ++i) {
    EXPECT_EQ(a.ilfds.ilfd(i), b.ilfds.ilfd(i)) << "taxonomy rule " << i;
  }
  // Each world's universe satisfies the *other's* taxonomy rules.
  IlfdSet b_taxonomy;
  for (size_t i = 0; i < taxonomy; ++i) b_taxonomy.Add(b.ilfds.ilfd(i));
  EXPECT_TRUE(CheckViolations(a.universe, b_taxonomy).empty());
}

TEST(GeneratorTest, RejectsEmptyWorldAndPools) {
  GeneratorConfig config;
  config.overlap_entities = 0;
  config.r_only_entities = 0;
  config.s_only_entities = 0;
  EXPECT_FALSE(GenerateWorld(config).ok());
  GeneratorConfig zero_pool = SmallConfig();
  zero_pool.cities = 0;
  EXPECT_FALSE(GenerateWorld(zero_pool).ok());
}

}  // namespace
}  // namespace eid
