#include "relational/catalog.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(CatalogTest, AddAndGet) {
  Catalog db("DB1");
  EID_EXPECT_OK(db.Add(MakeRelation("R", {"a"}, {}, {{"1"}})));
  EXPECT_TRUE(db.Contains("R"));
  EID_ASSERT_OK_AND_ASSIGN(const Relation* r, db.Get("R"));
  EXPECT_EQ(r->size(), 1u);
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog db("DB1");
  EID_EXPECT_OK(db.Add(MakeRelation("R", {"a"}, {}, {})));
  EXPECT_EQ(db.Add(MakeRelation("R", {"b"}, {}, {})).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, UnnamedRelationRejected) {
  Catalog db("DB1");
  EXPECT_EQ(db.Add(Relation("", Schema::OfStrings({"a"}))).code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, MissingRelationNotFound) {
  Catalog db("DB1");
  EXPECT_EQ(db.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RelationNamesSorted) {
  Catalog db("DB1");
  EID_EXPECT_OK(db.Add(MakeRelation("Z", {"a"}, {}, {})));
  EID_EXPECT_OK(db.Add(MakeRelation("A", {"a"}, {}, {})));
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"A", "Z"}));
}

TEST(CatalogTest, DomainAttributeTagsEveryRow) {
  Catalog db("DB1");
  EID_EXPECT_OK(db.Add(MakeRelation("R", {"name"}, {}, {{"Wok"}, {"Ching"}})));
  EID_ASSERT_OK_AND_ASSIGN(Relation tagged, db.WithDomainAttribute("R"));
  ASSERT_TRUE(tagged.schema().Contains(kDomainAttribute));
  for (size_t i = 0; i < tagged.size(); ++i) {
    EXPECT_EQ(tagged.tuple(i).GetOrNull(kDomainAttribute).AsString(), "DB1");
  }
}

TEST(CatalogTest, DomainAttributeCollisionRejected) {
  Catalog db("DB1");
  EID_EXPECT_OK(db.Add(MakeRelation("R", {"name", "domain"}, {}, {})));
  EXPECT_EQ(db.WithDomainAttribute("R").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, GetMutableAllowsModification) {
  Catalog db("DB1");
  EID_EXPECT_OK(db.Add(MakeRelation("R", {"a"}, {}, {})));
  EID_ASSERT_OK_AND_ASSIGN(Relation* r, db.GetMutable("R"));
  EID_EXPECT_OK(r->InsertText({"1"}));
  EID_ASSERT_OK_AND_ASSIGN(const Relation* again, db.Get("R"));
  EXPECT_EQ(again->size(), 1u);
}

}  // namespace
}  // namespace eid
