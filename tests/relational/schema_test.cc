#include "relational/schema.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

TEST(SchemaTest, OfStringsBuildsStringAttributes) {
  Schema s = Schema::OfStrings({"a", "b", "c"});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.attribute(0).name, "a");
  EXPECT_EQ(s.attribute(1).type, ValueType::kString);
}

TEST(SchemaTest, IndexOfAndContains) {
  Schema s = Schema::OfStrings({"name", "city"});
  EXPECT_EQ(s.IndexOf("city"), 1u);
  EXPECT_FALSE(s.IndexOf("missing").has_value());
  EXPECT_TRUE(s.Contains("name"));
  EXPECT_FALSE(s.Contains("Name"));  // case-sensitive
}

TEST(SchemaTest, RequireIndexErrors) {
  Schema s = Schema::OfStrings({"a"});
  EXPECT_TRUE(s.RequireIndex("a").ok());
  Result<size_t> missing = s.RequireIndex("b");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, AppendRejectsDuplicates) {
  Schema s = Schema::OfStrings({"a"});
  EID_EXPECT_OK(s.Append(Attribute{"b", ValueType::kInt}));
  Status dup = s.Append(Attribute{"a", ValueType::kString});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(s.size(), 2u);
}

TEST(SchemaTest, ProjectReordersAndSelects) {
  Schema s = Schema::OfStrings({"a", "b", "c"});
  EID_ASSERT_OK_AND_ASSIGN(Schema p, s.Project({"c", "a"}));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.attribute(0).name, "c");
  EXPECT_EQ(p.attribute(1).name, "a");
  EXPECT_FALSE(s.Project({"z"}).ok());
}

TEST(SchemaTest, WithPrefix) {
  Schema s = Schema::OfStrings({"a", "b"});
  Schema p = s.WithPrefix("r_");
  EXPECT_EQ(p.attribute(0).name, "r_a");
  EXPECT_EQ(p.attribute(1).name, "r_b");
}

TEST(SchemaTest, ConcatDisjointOk) {
  Schema a = Schema::OfStrings({"x"});
  Schema b = Schema::OfStrings({"y"});
  EID_ASSERT_OK_AND_ASSIGN(Schema c, a.Concat(b));
  EXPECT_EQ(c.size(), 2u);
}

TEST(SchemaTest, ConcatCollisionFails) {
  Schema a = Schema::OfStrings({"x"});
  Schema b = Schema::OfStrings({"x"});
  EXPECT_EQ(a.Concat(b).status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, CommonAttributeNamesInLeftOrder) {
  Schema a = Schema::OfStrings({"p", "q", "r"});
  Schema b = Schema::OfStrings({"r", "p"});
  std::vector<std::string> common = a.CommonAttributeNames(b);
  ASSERT_EQ(common.size(), 2u);
  EXPECT_EQ(common[0], "p");
  EXPECT_EQ(common[1], "r");
}

TEST(SchemaTest, EqualityAndToString) {
  Schema a = Schema::OfStrings({"x", "y"});
  Schema b = Schema::OfStrings({"x", "y"});
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.ToString(), "x:string, y:string");
}

TEST(SchemaDeathTest, DuplicateNamesAbort) {
  EXPECT_DEATH(Schema::OfStrings({"a", "a"}), "duplicate attribute");
}

}  // namespace
}  // namespace eid
