#include "relational/printer.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(PrinterTest, HeaderAndRows) {
  Relation r = MakeRelation("R", {"name", "cuisine"}, {},
                            {{"Wok", "Chinese"}});
  std::string out = FormatTable(r);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("cuisine"), std::string::npos);
  EXPECT_NE(out.find("Wok"), std::string::npos);
  EXPECT_NE(out.find("-------"), std::string::npos);
}

TEST(PrinterTest, TitleIsCenteredAboveRule) {
  Relation r = MakeRelation("R", {"a", "b"}, {}, {{"1", "2"}});
  PrintOptions opts;
  opts.title = "matching table";
  std::string out = FormatTable(r, opts);
  EXPECT_EQ(out.find("matching table") != std::string::npos, true);
  // The title line comes before the header line.
  EXPECT_LT(out.find("matching table"), out.find("a "));
}

TEST(PrinterTest, NullPrintsAsNullLiteral) {
  Relation r("R", Schema::OfStrings({"a"}));
  EID_EXPECT_OK(r.Insert(Row{Value::Null()}));
  std::string out = FormatTable(r);
  EXPECT_NE(out.find("null"), std::string::npos);
}

TEST(PrinterTest, SortedOutputIsDeterministic) {
  Relation r = MakeRelation("R", {"a"}, {}, {{"b"}, {"a"}});
  std::string out = FormatTable(r);
  EXPECT_LT(out.find("\na "), out.find("\nb "));
}

TEST(PrinterTest, UnsortedRespectsInsertionOrder) {
  Relation r = MakeRelation("R", {"a"}, {}, {{"b"}, {"a"}});
  PrintOptions opts;
  opts.sort_rows = false;
  std::string out = FormatTable(r, opts);
  EXPECT_LT(out.find("\nb "), out.find("\na "));
}

TEST(PrinterTest, WideValuesWidenColumns) {
  Relation r = MakeRelation("R", {"a", "b"}, {},
                            {{"averyveryverylongvalueindeed", "x"}});
  std::string out = FormatTable(r);
  // The long value is not truncated.
  EXPECT_NE(out.find("averyveryverylongvalueindeed"), std::string::npos);
  // And the second column still appears after it on the same line.
  size_t line_start = out.find("averyveryverylongvalueindeed");
  size_t line_end = out.find('\n', line_start);
  EXPECT_NE(out.substr(line_start, line_end - line_start).find("x"),
            std::string::npos);
}

TEST(PrinterTest, EmptyRelationPrintsHeaderOnly) {
  Relation r("R", Schema::OfStrings({"col"}));
  std::string out = FormatTable(r);
  EXPECT_NE(out.find("col"), std::string::npos);
}

}  // namespace
}  // namespace eid
