#include "relational/relation.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

Relation Restaurants() {
  return MakeRelation("R", {"name", "street", "cuisine"}, {"name", "street"},
                      {{"VillageWok", "Wash.Ave.", "Chinese"},
                       {"Ching", "Co.B Rd.", "Chinese"}});
}

TEST(RelationTest, InsertAndAccess) {
  Relation r = Restaurants();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuple(0).GetOrNull("name").AsString(), "VillageWok");
  EXPECT_EQ(r.tuple(1).GetOrNull("cuisine").AsString(), "Chinese");
}

TEST(RelationTest, ArityMismatchRejected) {
  Relation r("R", Schema::OfStrings({"a", "b"}));
  Status st = r.Insert(Row{Value::Str("x")});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, TypeMismatchRejected) {
  Relation r("R", Schema({Attribute{"n", ValueType::kInt}}));
  Status st = r.Insert(Row{Value::Str("notanint")});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EID_EXPECT_OK(r.Insert(Row{Value::Int(3)}));
}

TEST(RelationTest, NullAllowedInNonKeyAttribute) {
  Relation r("R", Schema::OfStrings({"a", "b"}));
  EID_EXPECT_OK(r.DeclareKey({"a"}));
  EID_EXPECT_OK(r.Insert(Row{Value::Str("k"), Value::Null()}));
}

TEST(RelationTest, NullRejectedInKeyAttribute) {
  Relation r("R", Schema::OfStrings({"a", "b"}));
  EID_EXPECT_OK(r.DeclareKey({"a"}));
  Status st = r.Insert(Row{Value::Null(), Value::Str("x")});
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
}

TEST(RelationTest, CandidateKeyUniquenessEnforced) {
  Relation r = Restaurants();
  Status dup = r.InsertText({"VillageWok", "Wash.Ave.", "Szechuan"});
  EXPECT_EQ(dup.code(), StatusCode::kConstraintViolation);
  // Same name on a different street is fine (the key is composite).
  EID_EXPECT_OK(r.InsertText({"VillageWok", "Penn.Ave.", "Chinese"}));
}

TEST(RelationTest, MultipleCandidateKeys) {
  Relation r("R", Schema::OfStrings({"id", "email", "name"}));
  EID_EXPECT_OK(r.DeclareKey({"id"}));
  EID_EXPECT_OK(r.DeclareKey({"email"}));
  EID_EXPECT_OK(r.InsertText({"1", "a@x", "A"}));
  EXPECT_EQ(r.InsertText({"2", "a@x", "B"}).code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(r.InsertText({"1", "b@x", "B"}).code(),
            StatusCode::kConstraintViolation);
  EID_EXPECT_OK(r.InsertText({"2", "b@x", "B"}));
}

TEST(RelationTest, DeclareKeyAfterRowsFails) {
  Relation r = Restaurants();
  EXPECT_EQ(r.DeclareKey({"cuisine"}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RelationTest, DeclareKeyUnknownAttributeFails) {
  Relation r("R", Schema::OfStrings({"a"}));
  EXPECT_EQ(r.DeclareKey({"zzz"}).code(), StatusCode::kNotFound);
}

TEST(RelationTest, PrimaryKeyDefaultsToAllAttributes) {
  Relation r("R", Schema::OfStrings({"a", "b"}));
  EXPECT_EQ(r.PrimaryKeyNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(RelationTest, PrimaryKeyOfAndFindByKey) {
  Relation r = Restaurants();
  Row key = r.PrimaryKeyOf(0);
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].AsString(), "VillageWok");
  EXPECT_EQ(r.FindByKey(key), 0u);
  EXPECT_TRUE(r.ContainsKey(key));
  EXPECT_FALSE(r.ContainsKey(Row{Value::Str("X"), Value::Str("Y")}));
}

TEST(RelationTest, SortRowsIsDeterministic) {
  Relation r("R", Schema::OfStrings({"a"}));
  EID_EXPECT_OK(r.InsertText({"c"}));
  EID_EXPECT_OK(r.InsertText({"a"}));
  EID_EXPECT_OK(r.InsertText({"b"}));
  r.SortRows();
  EXPECT_EQ(r.row(0)[0].AsString(), "a");
  EXPECT_EQ(r.row(2)[0].AsString(), "c");
}

TEST(RelationTest, RowsEqualUnordered) {
  Relation a("R", Schema::OfStrings({"x"}));
  Relation b("R", Schema::OfStrings({"x"}));
  EID_EXPECT_OK(a.InsertText({"1"}));
  EID_EXPECT_OK(a.InsertText({"2"}));
  EID_EXPECT_OK(b.InsertText({"2"}));
  EID_EXPECT_OK(b.InsertText({"1"}));
  EXPECT_TRUE(a.RowsEqualUnordered(b));
  EID_EXPECT_OK(b.InsertText({"3"}));
  EXPECT_FALSE(a.RowsEqualUnordered(b));
}

TEST(RelationTest, ValidateKeysDetectsManualCorruption) {
  Relation r = Restaurants();
  EID_EXPECT_OK(r.ValidateKeys());
}

TEST(RelationTest, InsertTextParsesPerSchemaTypes) {
  Relation r("R", Schema({Attribute{"n", ValueType::kInt},
                          Attribute{"s", ValueType::kString}}));
  EID_EXPECT_OK(r.InsertText({"42", "hi"}));
  EXPECT_EQ(r.row(0)[0].AsInt(), 42);
}

}  // namespace
}  // namespace eid
