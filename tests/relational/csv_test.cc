#include "relational/csv.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

TEST(CsvTest, ParsesSimpleRecords) {
  EID_ASSERT_OK_AND_ASSIGN(auto records, ParseCsv("a,b\n1,2\n"));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, HandlesMissingTrailingNewline) {
  EID_ASSERT_OK_AND_ASSIGN(auto records, ParseCsv("a,b\n1,2"));
  ASSERT_EQ(records.size(), 2u);
}

TEST(CsvTest, QuotedFieldsWithSeparatorsAndQuotes) {
  EID_ASSERT_OK_AND_ASSIGN(auto records,
                           ParseCsv("name,notes\n\"Wok, The\",\"said \"\"hi\"\"\"\n"));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1][0], "Wok, The");
  EXPECT_EQ(records[1][1], "said \"hi\"");
}

TEST(CsvTest, QuotedNewlines) {
  EID_ASSERT_OK_AND_ASSIGN(auto records, ParseCsv("a\n\"x\ny\"\n"));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1][0], "x\ny");
}

TEST(CsvTest, CrlfEndings) {
  EID_ASSERT_OK_AND_ASSIGN(auto records, ParseCsv("a,b\r\n1,2\r\n"));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1][1], "2");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvTest, QuoteInsideUnquotedFieldFails) {
  EXPECT_FALSE(ParseCsv("a\nval\"ue\n").ok());
}

TEST(CsvTest, ReadCsvBuildsStringRelation) {
  EID_ASSERT_OK_AND_ASSIGN(Relation rel,
                           ReadCsv("name,city\nWok,Mpls\n", "R"));
  EXPECT_EQ(rel.name(), "R");
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.tuple(0).GetOrNull("city").AsString(), "Mpls");
}

TEST(CsvTest, EmptyAndNullFieldsBecomeNull) {
  EID_ASSERT_OK_AND_ASSIGN(Relation rel, ReadCsv("a,b\n,null\n", "R"));
  EXPECT_TRUE(rel.row(0)[0].is_null());
  EXPECT_TRUE(rel.row(0)[1].is_null());
}

TEST(CsvTest, ReadCsvTypedParsesAndValidatesHeader) {
  Schema schema({Attribute{"id", ValueType::kInt},
                 Attribute{"name", ValueType::kString}});
  EID_ASSERT_OK_AND_ASSIGN(Relation rel,
                           ReadCsvTyped("id,name\n7,Wok\n", "R", schema));
  EXPECT_EQ(rel.row(0)[0].AsInt(), 7);
  EXPECT_FALSE(ReadCsvTyped("name,id\nWok,7\n", "R", schema).ok());
}

TEST(CsvTest, FieldCountMismatchFails) {
  EXPECT_FALSE(ReadCsv("a,b\n1\n", "R").ok());
}

TEST(CsvTest, RoundTripsThroughWriteCsv) {
  EID_ASSERT_OK_AND_ASSIGN(
      Relation rel,
      ReadCsv("name,notes\n\"Wok, The\",plain\nnull,\"multi\nline\"\n", "R"));
  std::string text = WriteCsv(rel);
  EID_ASSERT_OK_AND_ASSIGN(Relation back, ReadCsv(text, "R"));
  EXPECT_TRUE(rel.RowsEqualUnordered(back));
}

TEST(CsvTest, CustomSeparator) {
  EID_ASSERT_OK_AND_ASSIGN(Relation rel, ReadCsv("a;b\n1;2\n", "R", ';'));
  EXPECT_EQ(rel.row(0)[1].AsString(), "2");
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/x.csv", "R").status().code(),
            StatusCode::kNotFound);
}

TEST(CsvTest, FileRoundTrip) {
  EID_ASSERT_OK_AND_ASSIGN(Relation rel, ReadCsv("a,b\n1,2\n", "R"));
  std::string path = ::testing::TempDir() + "/eid_csv_test.csv";
  EID_EXPECT_OK(WriteCsvFile(rel, path));
  EID_ASSERT_OK_AND_ASSIGN(Relation back, ReadCsvFile(path, "R"));
  EXPECT_TRUE(rel.RowsEqualUnordered(back));
}

}  // namespace
}  // namespace eid
