#include "relational/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "../test_util.h"

namespace eid {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, TypedConstructionAndAccess) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("abc").AsString(), "abc");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_FALSE(Value::Bool(false).AsBool());
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Int(1).type(), ValueType::kInt);
  EXPECT_EQ(Value::Double(1).type(), ValueType::kDouble);
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
}

TEST(ValueTest, StorageEqualityNullEqualsNull) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int(0));
  EXPECT_NE(Value::Null(), Value::Str(""));
}

TEST(ValueTest, EqualityIsTypeSensitive) {
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_NE(Value::Str("1"), Value::Int(1));
  EXPECT_EQ(Value::Int(7), Value::Int(7));
}

TEST(ValueTest, NonNullEqRejectsNulls) {
  EXPECT_FALSE(NonNullEq(Value::Null(), Value::Null()));
  EXPECT_FALSE(NonNullEq(Value::Null(), Value::Int(1)));
  EXPECT_FALSE(NonNullEq(Value::Int(1), Value::Null()));
  EXPECT_TRUE(NonNullEq(Value::Int(1), Value::Int(1)));
  EXPECT_FALSE(NonNullEq(Value::Int(1), Value::Int(2)));
}

TEST(ValueTest, OrderingAcrossTypes) {
  // NULL < bool < numeric < string.
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::Str(""));
}

TEST(ValueTest, NumericOrderingMixesIntAndDouble) {
  EXPECT_LT(Value::Int(1), Value::Double(1.5));
  EXPECT_LT(Value::Double(0.5), Value::Int(1));
  EXPECT_LT(Value::Int(1), Value::Double(1.0));  // tie-break: int < double
  EXPECT_FALSE(Value::Double(1.0) < Value::Int(1));
}

TEST(ValueTest, OrderingIsTotalAndConsistentWithEquality) {
  std::vector<Value> values = {
      Value::Null(),    Value::Bool(false), Value::Bool(true),
      Value::Int(-3),   Value::Int(7),      Value::Double(-3.0),
      Value::Double(7.5), Value::Str(""),   Value::Str("abc"),
      Value::Str("abd")};
  for (const Value& a : values) {
    EXPECT_FALSE(a < a) << a.ToString();
    for (const Value& b : values) {
      if (a == b) continue;
      EXPECT_TRUE((a < b) != (b < a))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
  // Distinct types hash apart even with "equal" payloads (not guaranteed in
  // general, but these specific pairs must differ for fingerprinting).
  EXPECT_NE(Value::Int(1).Hash(), Value::Bool(true).Hash());
  EXPECT_NE(Value::Str("1").Hash(), Value::Int(1).Hash());
}

TEST(ValueTest, HashSpreadsValues) {
  std::unordered_set<size_t> hashes;
  for (int i = 0; i < 1000; ++i) hashes.insert(Value::Int(i).Hash());
  EXPECT_GT(hashes.size(), 990u);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::Str("hello").ToString(), "hello");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

TEST(ValueTest, ParseInt) {
  EID_ASSERT_OK_AND_ASSIGN(Value v, Value::Parse("123", ValueType::kInt));
  EXPECT_EQ(v.AsInt(), 123);
  EXPECT_FALSE(Value::Parse("12x", ValueType::kInt).ok());
  EXPECT_FALSE(Value::Parse("", ValueType::kInt).ok());
}

TEST(ValueTest, ParseDouble) {
  EID_ASSERT_OK_AND_ASSIGN(Value v, Value::Parse("-2.5", ValueType::kDouble));
  EXPECT_EQ(v.AsDouble(), -2.5);
  EXPECT_FALSE(Value::Parse("abc", ValueType::kDouble).ok());
}

TEST(ValueTest, ParseBool) {
  EID_ASSERT_OK_AND_ASSIGN(Value t, Value::Parse("true", ValueType::kBool));
  EXPECT_TRUE(t.AsBool());
  EID_ASSERT_OK_AND_ASSIGN(Value f, Value::Parse("0", ValueType::kBool));
  EXPECT_FALSE(f.AsBool());
  EXPECT_FALSE(Value::Parse("yes", ValueType::kBool).ok());
}

TEST(ValueTest, ParseStringTreatsNullLiteral) {
  EID_ASSERT_OK_AND_ASSIGN(Value v, Value::Parse("null", ValueType::kString));
  EXPECT_TRUE(v.is_null());
  EID_ASSERT_OK_AND_ASSIGN(Value w, Value::Parse("abc", ValueType::kString));
  EXPECT_EQ(w.AsString(), "abc");
}

TEST(ValueTest, AsNumericPromotesInt) {
  EXPECT_EQ(Value::Int(3).AsNumeric(), 3.0);
  EXPECT_EQ(Value::Double(3.5).AsNumeric(), 3.5);
}

}  // namespace
}  // namespace eid
