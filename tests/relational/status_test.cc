#include "relational/status.h"

#include <gtest/gtest.h>

namespace eid {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::Unsound("x").code(), StatusCode::kUnsound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  Status st = Status::NotFound("attribute 'q'");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "attribute 'q'");
  EXPECT_EQ(st.ToString(), "NotFound: attribute 'q'");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsound), "Unsound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kConstraintViolation),
               "ConstraintViolation");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, ValueAndStatusAccess) {
  Result<int> ok = ParsePositive(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(*ok, 7);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> res = std::string("payload");
  std::string taken = std::move(res).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> res = std::string("abc");
  EXPECT_EQ(res->size(), 3u);
}

Status Chain(int x) {
  EID_RETURN_IF_ERROR(ParsePositive(x).status());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(3).ok());
  EXPECT_EQ(Chain(-3).code(), StatusCode::kInvalidArgument);
}

Result<int> Doubled(int x) {
  EID_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturn) {
  Result<int> ok = Doubled(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> err = Status::NotFound("gone");
  EXPECT_DEATH((void)err.value(), "Result::value\\(\\) on error");
}

TEST(ResultDeathTest, OkStatusIntoResultAborts) {
  EXPECT_DEATH(Result<int>(Status::Ok()), "OK status");
}

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(EID_CHECK(1 == 2), "CHECK failed");
}

}  // namespace
}  // namespace eid
