#include "relational/algebra.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

Relation Left() {
  return MakeRelation("L", {"k", "a"}, {},
                      {{"1", "x"}, {"2", "y"}, {"3", "z"}});
}

Relation Right() {
  return MakeRelation("Rt", {"k", "b"}, {},
                      {{"2", "p"}, {"3", "q"}, {"4", "r"}});
}

TEST(AlgebraTest, SelectFilters) {
  Relation out = Select(Left(), [](const TupleView& t) {
    return t.GetOrNull("k").AsString() != "2";
  });
  EXPECT_EQ(out.size(), 2u);
}

TEST(AlgebraTest, ProjectDeduplicates) {
  Relation r = MakeRelation("R", {"a", "b"}, {},
                            {{"1", "x"}, {"1", "y"}, {"2", "x"}});
  EID_ASSERT_OK_AND_ASSIGN(Relation out, Project(r, {"a"}));
  EXPECT_EQ(out.size(), 2u);
  EID_ASSERT_OK_AND_ASSIGN(Relation bag, ProjectBag(r, {"a"}));
  EXPECT_EQ(bag.size(), 3u);
}

TEST(AlgebraTest, ProjectUnknownAttributeFails) {
  EXPECT_FALSE(Project(Left(), {"zzz"}).ok());
}

TEST(AlgebraTest, RenamePreservesKeysAndData) {
  Relation r = MakeRelation("R", {"a", "b"}, {"a"}, {{"1", "x"}});
  EID_ASSERT_OK_AND_ASSIGN(Relation out, Rename(r, "b", "c"));
  EXPECT_TRUE(out.schema().Contains("c"));
  EXPECT_FALSE(out.schema().Contains("b"));
  EXPECT_EQ(out.PrimaryKeyNames(), (std::vector<std::string>{"a"}));
}

TEST(AlgebraTest, RenameToExistingNameFails) {
  EXPECT_EQ(Rename(Left(), "a", "k").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(AlgebraTest, RenameAllKeepsKeyPositions) {
  Relation r = MakeRelation("R", {"a", "b"}, {"b"}, {{"1", "x"}});
  EID_ASSERT_OK_AND_ASSIGN(Relation out, RenameAll(r, {"p", "q"}));
  EXPECT_EQ(out.PrimaryKeyNames(), (std::vector<std::string>{"q"}));
}

TEST(AlgebraTest, NaturalJoinOnCommonAttribute) {
  EID_ASSERT_OK_AND_ASSIGN(Relation out, NaturalJoin(Left(), Right()));
  EXPECT_EQ(out.size(), 2u);  // k=2, k=3
  ASSERT_EQ(out.schema().size(), 3u);
  EXPECT_TRUE(out.schema().Contains("k"));
  EXPECT_TRUE(out.schema().Contains("a"));
  EXPECT_TRUE(out.schema().Contains("b"));
}

TEST(AlgebraTest, NaturalJoinNoCommonAttributesIsProduct) {
  Relation a = MakeRelation("A", {"x"}, {}, {{"1"}, {"2"}});
  Relation b = MakeRelation("B", {"y"}, {}, {{"p"}});
  EID_ASSERT_OK_AND_ASSIGN(Relation out, NaturalJoin(a, b));
  EXPECT_EQ(out.size(), 2u);  // empty join key: every pair matches
}

TEST(AlgebraTest, EquiJoinPrefixesCollidingRightColumns) {
  Relation a = MakeRelation("A", {"k", "v"}, {}, {{"1", "x"}});
  Relation b = MakeRelation("B", {"k", "v"}, {}, {{"1", "y"}});
  EID_ASSERT_OK_AND_ASSIGN(Relation out,
                           EquiJoin(a, b, {JoinCondition{"k", "k"}}));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.schema().Contains("B.k"));
  EXPECT_TRUE(out.schema().Contains("B.v"));
}

TEST(AlgebraTest, JoinNullPolicyNullEqualsNull) {
  Relation a("A", Schema::OfStrings({"k", "v"}));
  EID_EXPECT_OK(a.Insert(Row{Value::Null(), Value::Str("x")}));
  Relation b("B", Schema::OfStrings({"k", "w"}));
  EID_EXPECT_OK(b.Insert(Row{Value::Null(), Value::Str("y")}));
  EID_ASSERT_OK_AND_ASSIGN(
      Relation match, NaturalJoin(a, b, NullPolicy::kNullEqualsNull));
  EXPECT_EQ(match.size(), 1u);
  EID_ASSERT_OK_AND_ASSIGN(
      Relation nomatch, NaturalJoin(a, b, NullPolicy::kNullNeverMatches));
  EXPECT_EQ(nomatch.size(), 0u);
}

TEST(AlgebraTest, LeftOuterJoinPadsUnmatched) {
  EID_ASSERT_OK_AND_ASSIGN(Relation out, LeftOuterJoin(Left(), Right()));
  EXPECT_EQ(out.size(), 3u);
  // The k=1 row has NULL b.
  bool found_padded = false;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.tuple(i).GetOrNull("k").AsString() == "1") {
      EXPECT_TRUE(out.tuple(i).GetOrNull("b").is_null());
      found_padded = true;
    }
  }
  EXPECT_TRUE(found_padded);
}

TEST(AlgebraTest, FullOuterJoinKeepsBothSides) {
  EID_ASSERT_OK_AND_ASSIGN(Relation out, FullOuterJoin(Left(), Right()));
  EXPECT_EQ(out.size(), 4u);  // 2 matched + k=1 + k=4
  // Unmatched right row k=4 carries its join value in the shared column.
  bool found_right = false;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.tuple(i).GetOrNull("k").AsString() == "4") {
      EXPECT_TRUE(out.tuple(i).GetOrNull("a").is_null());
      EXPECT_EQ(out.tuple(i).GetOrNull("b").AsString(), "r");
      found_right = true;
    }
  }
  EXPECT_TRUE(found_right);
}

TEST(AlgebraTest, UnionDeduplicates) {
  Relation a = MakeRelation("A", {"x"}, {}, {{"1"}, {"2"}});
  Relation b = MakeRelation("A", {"x"}, {}, {{"2"}, {"3"}});
  EID_ASSERT_OK_AND_ASSIGN(Relation out, Union(a, b));
  EXPECT_EQ(out.size(), 3u);
}

TEST(AlgebraTest, UnionSchemaMismatchFails) {
  Relation a = MakeRelation("A", {"x"}, {}, {});
  Relation b = MakeRelation("B", {"y"}, {}, {});
  EXPECT_FALSE(Union(a, b).ok());
}

TEST(AlgebraTest, DifferenceRemovesAndDeduplicates) {
  Relation a = MakeRelation("A", {"x"}, {}, {{"1"}, {"2"}, {"2"}, {"3"}});
  Relation b = MakeRelation("A", {"x"}, {}, {{"2"}});
  EID_ASSERT_OK_AND_ASSIGN(Relation out, Difference(a, b));
  EXPECT_EQ(out.size(), 2u);  // {1, 3}
}

TEST(AlgebraTest, CartesianProduct) {
  Relation a = MakeRelation("A", {"x"}, {}, {{"1"}, {"2"}});
  Relation b = MakeRelation("B", {"y"}, {}, {{"p"}, {"q"}, {"r"}});
  EID_ASSERT_OK_AND_ASSIGN(Relation out, CartesianProduct(a, b));
  EXPECT_EQ(out.size(), 6u);
}

TEST(AlgebraTest, DistinctRemovesStorageDuplicatesIncludingNulls) {
  Relation a("A", Schema::OfStrings({"x"}));
  EID_EXPECT_OK(a.Insert(Row{Value::Null()}));
  EID_EXPECT_OK(a.Insert(Row{Value::Null()}));
  EID_EXPECT_OK(a.Insert(Row{Value::Str("v")}));
  Relation out = Distinct(a);
  EXPECT_EQ(out.size(), 2u);
}

TEST(AlgebraTest, JoinMatchesNestedLoopReference) {
  // Cross-check the hash join against a naive nested loop on a bigger
  // input with duplicate join keys.
  Relation a("A", Schema::OfStrings({"k", "u"}));
  Relation b("B", Schema::OfStrings({"k", "w"}));
  for (int i = 0; i < 40; ++i) {
    EID_EXPECT_OK(a.InsertText({std::to_string(i % 7), "u" + std::to_string(i)}));
    EID_EXPECT_OK(b.InsertText({std::to_string(i % 5), "w" + std::to_string(i)}));
  }
  EID_ASSERT_OK_AND_ASSIGN(Relation joined, NaturalJoin(a, b));
  size_t expected = 0;
  for (const Row& ra : a.rows()) {
    for (const Row& rb : b.rows()) {
      if (ra[0] == rb[0]) ++expected;
    }
  }
  EXPECT_EQ(joined.size(), expected);
}

}  // namespace
}  // namespace eid
