#include "ilfd/ilfd_set.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

IlfdSet ChainSet() {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("a=1 -> b=2").ok());
  EXPECT_TRUE(set.AddText("b=2 -> c=3").ok());
  return set;
}

bool ContainsAtom(const std::vector<Atom>& atoms, const std::string& attr,
                  const Value& value) {
  for (const Atom& a : atoms) {
    if (a.attribute == attr && a.value == value) return true;
  }
  return false;
}

TEST(IlfdSetTest, ConditionClosureFollowsChains) {
  IlfdSet set = ChainSet();
  std::vector<Atom> closure =
      set.ConditionClosure({Atom{"a", Value::Int(1)}});
  EXPECT_EQ(closure.size(), 3u);
  EXPECT_TRUE(ContainsAtom(closure, "c", Value::Int(3)));
}

TEST(IlfdSetTest, ClosureOfUnknownConditionIsItself) {
  IlfdSet set = ChainSet();
  std::vector<Atom> closure =
      set.ConditionClosure({Atom{"z", Value::Int(9)}});
  EXPECT_EQ(closure.size(), 1u);
}

TEST(IlfdSetTest, ImpliesTransitiveConsequence) {
  IlfdSet set = ChainSet();
  EID_ASSERT_OK_AND_ASSIGN(Ilfd target, ParseIlfd("a=1 -> c=3"));
  EXPECT_TRUE(set.Implies(target));
  EID_ASSERT_OK_AND_ASSIGN(Ilfd wrong, ParseIlfd("c=3 -> a=1"));
  EXPECT_FALSE(set.Implies(wrong));
}

TEST(IlfdSetTest, ImpliesTrivialWithUnknownAtoms) {
  IlfdSet set = ChainSet();
  EID_ASSERT_OK_AND_ASSIGN(Ilfd trivial, ParseIlfd("z=5 & w=6 -> z=5"));
  EXPECT_TRUE(set.Implies(trivial));
  EID_ASSERT_OK_AND_ASSIGN(Ilfd unknown, ParseIlfd("z=5 -> w=6"));
  EXPECT_FALSE(set.Implies(unknown));
}

TEST(IlfdSetTest, ProveReturnsVerifiableProof) {
  IlfdSet set = ChainSet();
  EID_ASSERT_OK_AND_ASSIGN(Ilfd target, ParseIlfd("a=1 -> c=3"));
  EID_ASSERT_OK_AND_ASSIGN(Proof proof, set.Prove(target));
  EXPECT_GE(proof.steps.size(), 3u);
  EXPECT_FALSE(set.Prove(Ilfd::Implies({Atom{"c", Value::Int(3)}},
                                       Atom{"a", Value::Int(1)}))
                   .ok());
}

TEST(IlfdSetTest, EquivalentToIsMutualImplication) {
  IlfdSet a = ChainSet();
  IlfdSet b;
  EXPECT_TRUE(b.AddText("b=2 -> c=3").ok());
  EXPECT_TRUE(b.AddText("a=1 -> b=2").ok());
  // Same ILFDs, different order: equivalent.
  EXPECT_TRUE(a.EquivalentTo(b));
  // Adding a derived ILFD keeps equivalence.
  EXPECT_TRUE(b.AddText("a=1 -> c=3").ok());
  EXPECT_TRUE(a.EquivalentTo(b));
  // New non-derivable knowledge breaks it.
  EXPECT_TRUE(b.AddText("q=7 -> r=8").ok());
  EXPECT_FALSE(a.EquivalentTo(b));
}

TEST(IlfdSetTest, IsRedundantDetectsImpliedIlfd) {
  IlfdSet set = ChainSet();
  size_t derived = 0;
  EID_ASSERT_OK_AND_ASSIGN(derived, set.AddText("a=1 -> c=3"));
  EXPECT_TRUE(set.IsRedundant(derived));
  EXPECT_FALSE(set.IsRedundant(0));
  EXPECT_FALSE(set.IsRedundant(1));
}

TEST(IlfdSetTest, MinimalCoverDropsRedundantIlfds) {
  IlfdSet set = ChainSet();
  EXPECT_TRUE(set.AddText("a=1 -> c=3").ok());  // redundant
  IlfdSet cover = set.MinimalCover();
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_TRUE(cover.EquivalentTo(set));
}

TEST(IlfdSetTest, MinimalCoverRemovesExtraneousConditions) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("a=1 -> b=2").ok());
  // The x=9 conjunct is extraneous given a=1 -> b=2.
  EXPECT_TRUE(set.AddText("a=1 & x=9 -> b=2").ok());
  IlfdSet cover = set.MinimalCover();
  EXPECT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover.ilfd(0).antecedent().size(), 1u);
  EXPECT_TRUE(cover.EquivalentTo(set));
}

TEST(IlfdSetTest, MinimalCoverDecomposesMultiConsequents) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("a=1 -> b=2 & c=3").ok());
  IlfdSet cover = set.MinimalCover();
  EXPECT_EQ(cover.size(), 2u);
  for (const Ilfd& f : cover.ilfds()) {
    EXPECT_EQ(f.consequent().size(), 1u);
  }
  EXPECT_TRUE(cover.EquivalentTo(set));
}

TEST(IlfdSetTest, DerivedIlfdsFindsPaperI9) {
  // I7: street=FrontAve. -> county=Ramsey
  // I8: name=It'sGreek & county=Ramsey -> speciality=Gyros
  // derived I9: name=It'sGreek & street=FrontAve. -> speciality=Gyros
  IlfdSet set = fixtures::Example3Ilfds();
  std::vector<Ilfd> derived = set.DerivedIlfds(3);
  Ilfd i9 = fixtures::Example3DerivedI9();
  EXPECT_NE(std::find(derived.begin(), derived.end(), i9), derived.end())
      << "derived set missing I9; got " << derived.size() << " candidates";
}

TEST(IlfdSetTest, DerivedIlfdsAreAllImplied) {
  IlfdSet set = fixtures::Example3Ilfds();
  for (const Ilfd& f : set.DerivedIlfds(3)) {
    EXPECT_TRUE(set.Implies(f)) << f.ToString();
    EXPECT_FALSE(f.IsTrivial()) << f.ToString();
  }
}

TEST(IlfdSetTest, ToStringNumbersIlfds) {
  IlfdSet set = ChainSet();
  std::string text = set.ToString();
  EXPECT_NE(text.find("I1: "), std::string::npos);
  EXPECT_NE(text.find("I2: "), std::string::npos);
}

}  // namespace
}  // namespace eid
