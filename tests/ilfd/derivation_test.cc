#include "ilfd/derivation.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(DerivationTest, ExhaustiveDerivesChains) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("street=FrontAve. -> county=Ramsey").ok());
  EXPECT_TRUE(
      set.AddText("name=It'sGreek & county=Ramsey -> speciality=Gyros").ok());
  Relation r = MakeRelation("R", {"name", "street"}, {},
                            {{"It'sGreek", "FrontAve."}});
  EID_ASSERT_OK_AND_ASSIGN(Derivation d, DeriveTuple(r.tuple(0), set));
  EXPECT_EQ(d.derived.at("county").AsString(), "Ramsey");
  EXPECT_EQ(d.derived.at("speciality").AsString(), "Gyros");
  ASSERT_EQ(d.steps.size(), 2u);
  EXPECT_EQ(d.steps[0].ilfd_index, 0u);
  EXPECT_EQ(d.steps[1].ilfd_index, 1u);
}

TEST(DerivationTest, FirstMatchResolvesRecursively) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("street=FrontAve. -> county=Ramsey").ok());
  EXPECT_TRUE(
      set.AddText("name=It'sGreek & county=Ramsey -> speciality=Gyros").ok());
  Relation r = MakeRelation("R", {"name", "street"}, {},
                            {{"It'sGreek", "FrontAve."}});
  DerivationOptions opts;
  opts.mode = DerivationMode::kFirstMatch;
  opts.target_attributes = {"speciality"};
  EID_ASSERT_OK_AND_ASSIGN(Derivation d, DeriveTuple(r.tuple(0), set, opts));
  EXPECT_EQ(d.derived.at("speciality").AsString(), "Gyros");
}

TEST(DerivationTest, BaseValuesAreNeverOverwritten) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("a=1 -> b=2").ok());
  Relation r("R", Schema({Attribute{"a", ValueType::kInt},
                          Attribute{"b", ValueType::kInt}}));
  EID_EXPECT_OK(r.Insert(Row{Value::Int(1), Value::Int(2)}));
  EID_ASSERT_OK_AND_ASSIGN(Derivation d, DeriveTuple(r.tuple(0), set));
  EXPECT_TRUE(d.derived.empty());  // b already present
}

TEST(DerivationTest, ConflictWithBaseValueErrors) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("a=1 -> b=2").ok());
  Relation r("R", Schema({Attribute{"a", ValueType::kInt},
                          Attribute{"b", ValueType::kInt}}));
  EID_EXPECT_OK(r.Insert(Row{Value::Int(1), Value::Int(99)}));
  Result<Derivation> d = DeriveTuple(r.tuple(0), set);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kConstraintViolation);
}

TEST(DerivationTest, ConflictBetweenIlfdsPolicies) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("a=1 -> b=2").ok());
  EXPECT_TRUE(set.AddText("c=3 -> b=7").ok());
  Relation r("R", Schema({Attribute{"a", ValueType::kInt},
                          Attribute{"c", ValueType::kInt}}));
  EID_EXPECT_OK(r.Insert(Row{Value::Int(1), Value::Int(3)}));

  DerivationOptions opts;
  opts.conflict_policy = ConflictPolicy::kError;
  EXPECT_FALSE(DeriveTuple(r.tuple(0), set, opts).ok());

  opts.conflict_policy = ConflictPolicy::kKeepFirst;
  EID_ASSERT_OK_AND_ASSIGN(Derivation keep, DeriveTuple(r.tuple(0), set, opts));
  EXPECT_EQ(keep.derived.at("b").AsInt(), 2);
  ASSERT_EQ(keep.conflicts.size(), 1u);
  EXPECT_EQ(keep.conflicts[0].attribute, "b");

  opts.conflict_policy = ConflictPolicy::kNullOut;
  EID_ASSERT_OK_AND_ASSIGN(Derivation nullout,
                           DeriveTuple(r.tuple(0), set, opts));
  EXPECT_EQ(nullout.derived.count("b"), 0u);
  EXPECT_FALSE(nullout.conflicts.empty());
}

TEST(DerivationTest, FirstMatchTakesDeclarationOrder) {
  // The Prolog cut: the first rule for an attribute wins.
  IlfdSet set;
  EXPECT_TRUE(set.AddText("a=1 -> b=2").ok());
  EXPECT_TRUE(set.AddText("a=1 -> b=7").ok());
  Relation r("R", Schema({Attribute{"a", ValueType::kInt}}));
  EID_EXPECT_OK(r.Insert(Row{Value::Int(1)}));
  DerivationOptions opts;
  opts.mode = DerivationMode::kFirstMatch;
  EID_ASSERT_OK_AND_ASSIGN(Derivation d, DeriveTuple(r.tuple(0), set, opts));
  EXPECT_EQ(d.derived.at("b").AsInt(), 2);
  EXPECT_TRUE(d.conflicts.empty());  // first-match never sees the second
}

TEST(DerivationTest, ExhaustiveFlagsWhatFirstMatchHides) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("a=1 -> b=2").ok());
  EXPECT_TRUE(set.AddText("a=1 -> b=7").ok());
  Relation r("R", Schema({Attribute{"a", ValueType::kInt}}));
  EID_EXPECT_OK(r.Insert(Row{Value::Int(1)}));
  DerivationOptions opts;
  opts.conflict_policy = ConflictPolicy::kKeepFirst;
  EID_ASSERT_OK_AND_ASSIGN(Derivation d, DeriveTuple(r.tuple(0), set, opts));
  EXPECT_EQ(d.conflicts.size(), 1u);
}

TEST(DerivationTest, CyclicIlfdsTerminate) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("a=1 -> b=2").ok());
  EXPECT_TRUE(set.AddText("b=2 -> a=1").ok());
  Relation r("R", Schema({Attribute{"b", ValueType::kInt}}));
  EID_EXPECT_OK(r.Insert(Row{Value::Int(2)}));
  EID_ASSERT_OK_AND_ASSIGN(Derivation ex, DeriveTuple(r.tuple(0), set));
  EXPECT_EQ(ex.derived.at("a").AsInt(), 1);
  DerivationOptions opts;
  opts.mode = DerivationMode::kFirstMatch;
  EID_ASSERT_OK_AND_ASSIGN(Derivation fm, DeriveTuple(r.tuple(0), set, opts));
  EXPECT_EQ(fm.derived.at("a").AsInt(), 1);
}

TEST(DerivationTest, TargetAttributesFilterOutput) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("a=1 -> b=2").ok());
  EXPECT_TRUE(set.AddText("a=1 -> c=3").ok());
  Relation r("R", Schema({Attribute{"a", ValueType::kInt}}));
  EID_EXPECT_OK(r.Insert(Row{Value::Int(1)}));
  DerivationOptions opts;
  opts.target_attributes = {"c"};
  EID_ASSERT_OK_AND_ASSIGN(Derivation d, DeriveTuple(r.tuple(0), set, opts));
  EXPECT_EQ(d.derived.count("b"), 0u);
  EXPECT_EQ(d.derived.at("c").AsInt(), 3);
}

TEST(DerivationTest, PaperExample3Table6RPrime) {
  // Exhaustive derivation reproduces the R' column of Table 6.
  IlfdSet set = fixtures::Example3Ilfds();
  Relation r = fixtures::Example3R();
  std::vector<std::string> expected = {"Hunan", "null", "Gyros", "Mughalai",
                                       "null"};
  for (size_t i = 0; i < r.size(); ++i) {
    EID_ASSERT_OK_AND_ASSIGN(Derivation d, DeriveTuple(r.tuple(i), set));
    auto it = d.derived.find("speciality");
    std::string got = (it == d.derived.end()) ? "null"
                                              : it->second.ToString();
    EXPECT_EQ(got, expected[i]) << "row " << i;
  }
}

TEST(DerivationTest, PaperExample3Table6SPrime) {
  IlfdSet set = fixtures::Example3Ilfds();
  Relation s = fixtures::Example3S();
  std::vector<std::string> expected = {"Chinese", "Chinese", "Greek",
                                       "Indian"};
  for (size_t i = 0; i < s.size(); ++i) {
    EID_ASSERT_OK_AND_ASSIGN(Derivation d, DeriveTuple(s.tuple(i), set));
    EXPECT_EQ(d.derived.at("cuisine").ToString(), expected[i]) << "row " << i;
  }
}

TEST(DerivationTest, FirstMatchAgreesWithExhaustiveOnConsistentKnowledge) {
  // On conflict-free ILFDs the two modes must derive identical values.
  IlfdSet set = fixtures::Example3Ilfds();
  Relation r = fixtures::Example3R();
  for (size_t i = 0; i < r.size(); ++i) {
    EID_ASSERT_OK_AND_ASSIGN(Derivation ex, DeriveTuple(r.tuple(i), set));
    DerivationOptions opts;
    opts.mode = DerivationMode::kFirstMatch;
    EID_ASSERT_OK_AND_ASSIGN(Derivation fm, DeriveTuple(r.tuple(i), set, opts));
    EXPECT_EQ(ex.derived, fm.derived) << "row " << i;
  }
}

}  // namespace
}  // namespace eid
