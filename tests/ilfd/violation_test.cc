#include "ilfd/violation.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(ViolationTest, CleanRelationHasNoViolations) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("speciality=Hunan -> cuisine=Chinese").ok());
  Relation r = MakeRelation("R", {"speciality", "cuisine"}, {},
                            {{"Hunan", "Chinese"}, {"Gyros", "Greek"}});
  EXPECT_TRUE(RelationSatisfies(r, set.ilfd(0)));
  EXPECT_TRUE(CheckViolations(r, set).empty());
}

TEST(ViolationTest, DirectViolationReported) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("speciality=Hunan -> cuisine=Chinese").ok());
  Relation r = MakeRelation("R", {"speciality", "cuisine"}, {},
                            {{"Hunan", "Greek"}});
  EXPECT_FALSE(RelationSatisfies(r, set.ilfd(0)));
  std::vector<IlfdViolation> v = CheckViolations(r, set);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].row_index, 0u);
  EXPECT_EQ(v[0].ilfd_index, 0u);
}

TEST(ViolationTest, NullConsequentPolicy) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("speciality=Hunan -> cuisine=Chinese").ok());
  Relation r("R", Schema::OfStrings({"speciality", "cuisine"}));
  EID_EXPECT_OK(r.Insert(Row{Value::Str("Hunan"), Value::Null()}));
  ViolationOptions lax;
  EXPECT_TRUE(CheckViolations(r, set, lax).empty());
  ViolationOptions strict;
  strict.null_violates = true;
  EXPECT_EQ(CheckViolations(r, set, strict).size(), 1u);
}

TEST(ViolationTest, DerivedContradictionFoundViaClosure) {
  // street -> county -> region chain; the tuple's region contradicts what
  // its street implies transitively, though no single ILFD fires directly
  // against a non-NULL intermediate (county is NULL).
  IlfdSet set;
  EXPECT_TRUE(set.AddText("street=FrontAve. -> county=Ramsey").ok());
  EXPECT_TRUE(set.AddText("county=Ramsey -> region=Metro").ok());
  Relation r("R", Schema::OfStrings({"street", "county", "region"}));
  EID_EXPECT_OK(r.Insert(
      Row{Value::Str("FrontAve."), Value::Null(), Value::Str("Rural")}));
  ViolationOptions opts;
  std::vector<IlfdViolation> v = CheckViolations(r, set, opts);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].description.find("derived"), std::string::npos);
  // Without closure checking the contradiction goes unseen.
  opts.check_derived = false;
  EXPECT_TRUE(CheckViolations(r, set, opts).empty());
}

TEST(ViolationTest, MultipleRowsAndIlfds) {
  IlfdSet set;
  EXPECT_TRUE(set.AddText("a=\"1\" -> b=\"1\"").ok());
  EXPECT_TRUE(set.AddText("c=\"1\" -> d=\"1\"").ok());
  Relation r = MakeRelation("R", {"a", "b", "c", "d"}, {},
                            {{"1", "2", "1", "2"},   // violates both
                             {"1", "1", "1", "1"},   // clean
                             {"2", "2", "1", "2"}}); // violates second only
  std::vector<IlfdViolation> v = CheckViolations(r, set);
  EXPECT_EQ(v.size(), 3u);
}

}  // namespace
}  // namespace eid
