#include "ilfd/fd.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(FdTest, FdHoldsDetectsViolation) {
  Relation ok = MakeRelation("R", {"name", "cuisine"}, {},
                             {{"A", "Chinese"}, {"B", "Greek"}, {"A", "Chinese"}});
  Relation bad = MakeRelation("R", {"name", "cuisine"}, {},
                              {{"A", "Chinese"}, {"A", "Greek"}});
  Fd fd{{"name"}, {"cuisine"}};
  EID_ASSERT_OK_AND_ASSIGN(bool holds_ok, FdHolds(ok, fd));
  EXPECT_TRUE(holds_ok);
  EID_ASSERT_OK_AND_ASSIGN(bool holds_bad, FdHolds(bad, fd));
  EXPECT_FALSE(holds_bad);
}

TEST(FdTest, FdHoldsCompositeLhs) {
  Relation r = MakeRelation("R", {"a", "b", "c"}, {},
                            {{"1", "1", "x"}, {"1", "2", "y"}, {"1", "1", "x"}});
  EID_ASSERT_OK_AND_ASSIGN(bool holds, FdHolds(r, Fd{{"a", "b"}, {"c"}}));
  EXPECT_TRUE(holds);
  EID_ASSERT_OK_AND_ASSIGN(bool single, FdHolds(r, Fd{{"a"}, {"c"}}));
  EXPECT_FALSE(single);
}

TEST(FdTest, FdHoldsUnknownAttributeErrors) {
  Relation r = MakeRelation("R", {"a"}, {}, {});
  EXPECT_FALSE(FdHolds(r, Fd{{"z"}, {"a"}}).ok());
}

TEST(FdTest, NullsCompareAsEqualForFdChecking) {
  Relation r("R", Schema::OfStrings({"a", "b"}));
  EID_EXPECT_OK(r.Insert(Row{Value::Null(), Value::Str("x")}));
  EID_EXPECT_OK(r.Insert(Row{Value::Null(), Value::Str("y")}));
  EID_ASSERT_OK_AND_ASSIGN(bool holds, FdHolds(r, Fd{{"a"}, {"b"}}));
  EXPECT_FALSE(holds);  // the two NULL-lhs rows disagree on b
}

TEST(FdTest, AttributeClosureChains) {
  std::vector<Fd> fds = {Fd{{"a"}, {"b"}}, Fd{{"b"}, {"c"}},
                         Fd{{"c", "d"}, {"e"}}};
  std::set<std::string> closure = AttributeClosure({"a"}, fds);
  EXPECT_EQ(closure, (std::set<std::string>{"a", "b", "c"}));
  closure = AttributeClosure({"a", "d"}, fds);
  EXPECT_EQ(closure, (std::set<std::string>{"a", "b", "c", "d", "e"}));
}

TEST(FdTest, FdImplies) {
  std::vector<Fd> fds = {Fd{{"a"}, {"b"}}, Fd{{"b"}, {"c"}}};
  EXPECT_TRUE(FdImplies(fds, Fd{{"a"}, {"c"}}));
  EXPECT_TRUE(FdImplies(fds, Fd{{"a", "z"}, {"c", "z"}}));
  EXPECT_FALSE(FdImplies(fds, Fd{{"c"}, {"a"}}));
}

TEST(FdTest, Proposition2CoveredFamilyImpliesFd) {
  // ILFDs covering every speciality value in the active domain imply the
  // FD speciality -> cuisine (Proposition 2).
  IlfdSet ilfds;
  EXPECT_TRUE(ilfds.AddText("speciality=Hunan -> cuisine=Chinese").ok());
  EXPECT_TRUE(ilfds.AddText("speciality=Gyros -> cuisine=Greek").ok());
  Relation r = MakeRelation("R", {"speciality", "cuisine"}, {},
                            {{"Hunan", "Chinese"}, {"Gyros", "Greek"}});
  Fd fd{{"speciality"}, {"cuisine"}};
  EID_ASSERT_OK_AND_ASSIGN(bool covered, IlfdFamilyCoversFd(ilfds, r, fd));
  EXPECT_TRUE(covered);
  EID_ASSERT_OK_AND_ASSIGN(bool holds, FdHolds(r, fd));
  EXPECT_TRUE(holds);
}

TEST(FdTest, Proposition2UncoveredValueBreaksPremise) {
  IlfdSet ilfds;
  EXPECT_TRUE(ilfds.AddText("speciality=Hunan -> cuisine=Chinese").ok());
  Relation r = MakeRelation("R", {"speciality", "cuisine"}, {},
                            {{"Hunan", "Chinese"}, {"Gyros", "Greek"}});
  EID_ASSERT_OK_AND_ASSIGN(
      bool covered,
      IlfdFamilyCoversFd(ilfds, r, Fd{{"speciality"}, {"cuisine"}}));
  EXPECT_FALSE(covered);  // Gyros has no ILFD: Proposition 2 premise fails
}

TEST(FdTest, Proposition2ConverseFailsAsThePaperNotes) {
  // The FD holds in this instance, yet no ILFD family exists — FDs do not
  // suggest particular values (paper: the converse is not necessarily
  // true).
  IlfdSet empty;
  Relation r = MakeRelation("R", {"speciality", "cuisine"}, {},
                            {{"Hunan", "Chinese"}});
  EID_ASSERT_OK_AND_ASSIGN(bool holds,
                           FdHolds(r, Fd{{"speciality"}, {"cuisine"}}));
  EXPECT_TRUE(holds);
  EID_ASSERT_OK_AND_ASSIGN(
      bool covered,
      IlfdFamilyCoversFd(empty, r, Fd{{"speciality"}, {"cuisine"}}));
  EXPECT_FALSE(covered);
}

TEST(FdTest, Proposition2ViaDerivedClosure) {
  // Coverage may come from chained ILFDs, not just direct ones.
  IlfdSet ilfds;
  EXPECT_TRUE(ilfds.AddText("speciality=Hunan -> region=Sichuan").ok());
  EXPECT_TRUE(ilfds.AddText("region=Sichuan -> cuisine=Chinese").ok());
  Relation r = MakeRelation("R", {"speciality", "cuisine"}, {},
                            {{"Hunan", "Chinese"}});
  EID_ASSERT_OK_AND_ASSIGN(
      bool covered,
      IlfdFamilyCoversFd(ilfds, r, Fd{{"speciality"}, {"cuisine"}}));
  EXPECT_TRUE(covered);
}

TEST(FdTest, ToStringFormat) {
  Fd fd{{"b", "a"}, {"c"}};
  EXPECT_EQ(fd.ToString(), "{a,b} -> {c}");
}

}  // namespace
}  // namespace eid
