#include "ilfd/ilfd.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(IlfdParseTest, SimpleIlfd) {
  EID_ASSERT_OK_AND_ASSIGN(Ilfd f,
                           ParseIlfd("speciality=Mughalai -> cuisine=Indian"));
  ASSERT_EQ(f.antecedent().size(), 1u);
  EXPECT_EQ(f.antecedent()[0].attribute, "speciality");
  EXPECT_EQ(f.antecedent()[0].value.AsString(), "Mughalai");
  ASSERT_EQ(f.consequent().size(), 1u);
  EXPECT_EQ(f.consequent()[0].attribute, "cuisine");
}

TEST(IlfdParseTest, ConjunctiveAntecedent) {
  EID_ASSERT_OK_AND_ASSIGN(
      Ilfd f, ParseIlfd("name=TwinCities & street=Co.B2 -> speciality=Hunan"));
  EXPECT_EQ(f.antecedent().size(), 2u);
}

TEST(IlfdParseTest, QuotedValuesKeepSpacesAndAmpersands) {
  EID_ASSERT_OK_AND_ASSIGN(
      Ilfd f, ParseIlfd("name=\"Fish & Chips\" -> cuisine=\"British Food\""));
  EXPECT_EQ(f.antecedent()[0].value.AsString(), "Fish & Chips");
  EXPECT_EQ(f.consequent()[0].value.AsString(), "British Food");
}

TEST(IlfdParseTest, NumericValues) {
  EID_ASSERT_OK_AND_ASSIGN(Ilfd f, ParseIlfd("zip=55455 -> taxrate=7.5"));
  EXPECT_EQ(f.antecedent()[0].value.AsInt(), 55455);
  EXPECT_EQ(f.consequent()[0].value.AsDouble(), 7.5);
}

TEST(IlfdParseTest, ConjunctiveConsequent) {
  EID_ASSERT_OK_AND_ASSIGN(Ilfd f,
                           ParseIlfd("a=1 -> b=2 & c=3"));
  EXPECT_EQ(f.consequent().size(), 2u);
}

TEST(IlfdParseTest, Errors) {
  EXPECT_FALSE(ParseIlfd("no arrow here").ok());
  EXPECT_FALSE(ParseIlfd("a=1 -> ").ok());
  EXPECT_FALSE(ParseIlfd(" -> b=2").ok());
  EXPECT_FALSE(ParseIlfd("a -> b=2").ok());
  EXPECT_FALSE(ParseIlfd("a=1 & -> b=2").ok());
}

TEST(IlfdParseTest, ListSkipsCommentsAndBlanks) {
  EID_ASSERT_OK_AND_ASSIGN(std::vector<Ilfd> list, ParseIlfdList(R"(
# taxonomy
speciality=Hunan -> cuisine=Chinese

speciality=Gyros -> cuisine=Greek
)"));
  EXPECT_EQ(list.size(), 2u);
}

TEST(IlfdTest, CanonicalFormSortsAndDeduplicates) {
  EID_ASSERT_OK_AND_ASSIGN(Ilfd a, ParseIlfd("b=2 & a=1 -> c=3"));
  EID_ASSERT_OK_AND_ASSIGN(Ilfd b, ParseIlfd("a=1 & b=2 & a=1 -> c=3"));
  EXPECT_EQ(a, b);
}

TEST(IlfdTest, TrivialDetection) {
  EID_ASSERT_OK_AND_ASSIGN(Ilfd t, ParseIlfd("a=1 & b=2 -> a=1"));
  EXPECT_TRUE(t.IsTrivial());
  EID_ASSERT_OK_AND_ASSIGN(Ilfd n, ParseIlfd("a=1 -> b=2"));
  EXPECT_FALSE(n.IsTrivial());
}

TEST(IlfdTest, AntecedentHoldsRequiresNonNullEquality) {
  Relation r = MakeRelation("R", {"speciality", "cuisine"}, {},
                            {{"Mughalai", "Indian"}});
  Relation r2("R2", Schema::OfStrings({"speciality", "cuisine"}));
  EID_EXPECT_OK(r2.Insert(Row{Value::Null(), Value::Str("Indian")}));

  EID_ASSERT_OK_AND_ASSIGN(Ilfd f,
                           ParseIlfd("speciality=Mughalai -> cuisine=Indian"));
  EXPECT_TRUE(f.AntecedentHolds(r.tuple(0)));
  EXPECT_FALSE(f.AntecedentHolds(r2.tuple(0)));
}

TEST(IlfdTest, AntecedentOnMissingAttributeFails) {
  Relation r = MakeRelation("R", {"name"}, {}, {{"X"}});
  EID_ASSERT_OK_AND_ASSIGN(Ilfd f, ParseIlfd("speciality=Hunan -> cuisine=C"));
  EXPECT_FALSE(f.AntecedentHolds(r.tuple(0)));
}

TEST(IlfdTest, SatisfiedByChecksOneTuple) {
  EID_ASSERT_OK_AND_ASSIGN(Ilfd f,
                           ParseIlfd("speciality=Mughalai -> cuisine=Indian"));
  Relation good = MakeRelation("G", {"speciality", "cuisine"}, {},
                               {{"Mughalai", "Indian"}});
  Relation bad = MakeRelation("B", {"speciality", "cuisine"}, {},
                              {{"Mughalai", "Greek"}});
  Relation other = MakeRelation("O", {"speciality", "cuisine"}, {},
                                {{"Hunan", "Greek"}});
  EXPECT_TRUE(f.SatisfiedBy(good.tuple(0)));
  EXPECT_FALSE(f.SatisfiedBy(bad.tuple(0)));
  EXPECT_TRUE(f.SatisfiedBy(other.tuple(0)));  // antecedent false
}

TEST(IlfdTest, NullConsequentPolicy) {
  EID_ASSERT_OK_AND_ASSIGN(Ilfd f,
                           ParseIlfd("speciality=Mughalai -> cuisine=Indian"));
  Relation r("R", Schema::OfStrings({"speciality", "cuisine"}));
  EID_EXPECT_OK(r.Insert(Row{Value::Str("Mughalai"), Value::Null()}));
  EXPECT_TRUE(f.SatisfiedBy(r.tuple(0), /*null_violates=*/false));
  EXPECT_FALSE(f.SatisfiedBy(r.tuple(0), /*null_violates=*/true));
}

TEST(IlfdTest, ToStringRoundTripsThroughParser) {
  EID_ASSERT_OK_AND_ASSIGN(
      Ilfd f, ParseIlfd("name=TwinCities & street=Co.B2 -> speciality=Hunan"));
  EID_ASSERT_OK_AND_ASSIGN(Ilfd g, ParseIlfd(f.ToString()));
  EXPECT_EQ(f, g);
}

TEST(IlfdDeathTest, ContradictoryConsequentAborts) {
  EXPECT_DEATH(
      Ilfd::Implies({Atom{"a", Value::Int(1)}}, Atom{"a", Value::Int(2)}),
      "contradicts");
}

TEST(IlfdDeathTest, InconsistentAntecedentAborts) {
  EXPECT_DEATH(Ilfd({Atom{"a", Value::Int(1)}, Atom{"a", Value::Int(2)}},
                    {Atom{"b", Value::Int(3)}}),
               "binds an attribute twice");
}

}  // namespace
}  // namespace eid
