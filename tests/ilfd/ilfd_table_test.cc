#include "ilfd/ilfd_table.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

IlfdTable SpecialityTable() {
  // Paper Table 8: IM(speciality; cuisine).
  IlfdTable table({"speciality"}, "cuisine");
  EXPECT_TRUE(table.AddEntry({Value::Str("Hunan")}, Value::Str("Chinese")).ok());
  EXPECT_TRUE(
      table.AddEntry({Value::Str("Sichuan")}, Value::Str("Chinese")).ok());
  EXPECT_TRUE(table.AddEntry({Value::Str("Gyros")}, Value::Str("Greek")).ok());
  EXPECT_TRUE(
      table.AddEntry({Value::Str("Mughalai")}, Value::Str("Indian")).ok());
  return table;
}

TEST(IlfdTableTest, RelationFormMatchesTable8) {
  IlfdTable table = SpecialityTable();
  EXPECT_EQ(table.size(), 4u);
  EXPECT_TRUE(table.relation().schema().Contains("speciality"));
  EXPECT_TRUE(table.relation().schema().Contains("cuisine"));
  EXPECT_EQ(table.relation().PrimaryKeyNames(),
            (std::vector<std::string>{"speciality"}));
}

TEST(IlfdTableTest, ContradictoryEntriesRejectedByKey) {
  IlfdTable table = SpecialityTable();
  // Hunan cannot also map to Greek: IM is keyed on the antecedent.
  Status st = table.AddEntry({Value::Str("Hunan")}, Value::Str("Greek"));
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
}

TEST(IlfdTableTest, LookupDerivesValue) {
  IlfdTable table = SpecialityTable();
  Relation r = MakeRelation("R", {"name", "speciality"}, {},
                            {{"X", "Gyros"}, {"Y", "Unknown"}});
  EXPECT_EQ(table.Lookup(r.tuple(0)).AsString(), "Greek");
  EXPECT_TRUE(table.Lookup(r.tuple(1)).is_null());
}

TEST(IlfdTableTest, LookupWithNullOrMissingAntecedentIsNull) {
  IlfdTable table = SpecialityTable();
  Relation r("R", Schema::OfStrings({"speciality"}));
  EID_EXPECT_OK(r.Insert(Row{Value::Null()}));
  EXPECT_TRUE(table.Lookup(r.tuple(0)).is_null());
  Relation no_attr = MakeRelation("R2", {"name"}, {}, {{"X"}});
  EXPECT_TRUE(table.Lookup(no_attr.tuple(0)).is_null());
}

TEST(IlfdTableTest, AddIlfdValidatesFormat) {
  IlfdTable table({"speciality"}, "cuisine");
  EID_ASSERT_OK_AND_ASSIGN(Ilfd good,
                           ParseIlfd("speciality=Hunan -> cuisine=Chinese"));
  EID_EXPECT_OK(table.AddIlfd(good));
  EID_ASSERT_OK_AND_ASSIGN(Ilfd wrong_consequent,
                           ParseIlfd("speciality=Gyros -> county=Ramsey"));
  EXPECT_FALSE(table.AddIlfd(wrong_consequent).ok());
  EID_ASSERT_OK_AND_ASSIGN(
      Ilfd wrong_antecedent,
      ParseIlfd("name=X & speciality=Gyros -> cuisine=Greek"));
  EXPECT_FALSE(table.AddIlfd(wrong_antecedent).ok());
}

TEST(IlfdTableTest, ToIlfdsRoundTrips) {
  IlfdTable table = SpecialityTable();
  std::vector<Ilfd> ilfds = table.ToIlfds();
  ASSERT_EQ(ilfds.size(), 4u);
  EID_ASSERT_OK_AND_ASSIGN(IlfdTable back, IlfdTable::FromIlfds(ilfds));
  EXPECT_TRUE(back.relation().RowsEqualUnordered(table.relation()));
}

TEST(IlfdTableTest, PartitionGroupsByFormat) {
  IlfdSet set = fixtures::Example3Ilfds();
  EID_ASSERT_OK_AND_ASSIGN(std::vector<IlfdTable> tables,
                           IlfdTable::Partition(set.ilfds()));
  // Formats in I1..I8: (speciality->cuisine), (name,street->speciality),
  // (street->county), (name,county->speciality) = 4 tables.
  EXPECT_EQ(tables.size(), 4u);
  size_t total = 0;
  for (const IlfdTable& t : tables) total += t.size();
  EXPECT_EQ(total, 8u);
}

TEST(IlfdTableTest, PartitionRejectsMultiConsequent) {
  EID_ASSERT_OK_AND_ASSIGN(Ilfd multi, ParseIlfd("a=1 -> b=2 & c=3"));
  EXPECT_FALSE(IlfdTable::Partition({multi}).ok());
}

TEST(IlfdTableTest, FromIlfdsRejectsMixedFormats) {
  EID_ASSERT_OK_AND_ASSIGN(Ilfd a, ParseIlfd("x=1 -> y=2"));
  EID_ASSERT_OK_AND_ASSIGN(Ilfd b, ParseIlfd("z=1 -> y=2"));
  EXPECT_FALSE(IlfdTable::FromIlfds({a, b}).ok());
  EXPECT_FALSE(IlfdTable::FromIlfds({}).ok());
}

TEST(IlfdTableTest, MultiAttributeAntecedentLookup) {
  IlfdTable table({"name", "street"}, "speciality");
  EID_EXPECT_OK(table.AddEntry({Value::Str("TwinCities"), Value::Str("Co.B2")},
                               Value::Str("Hunan")));
  Relation r = MakeRelation("R", {"name", "street"}, {},
                            {{"TwinCities", "Co.B2"}, {"TwinCities", "Co.B3"}});
  EXPECT_EQ(table.Lookup(r.tuple(0)).AsString(), "Hunan");
  EXPECT_TRUE(table.Lookup(r.tuple(1)).is_null());
}

}  // namespace
}  // namespace eid
