// Cross-cutting invariants of the identification machinery, checked over
// the paper fixtures and generated worlds:
//   * extension idempotence — extending an already-extended relation adds
//     nothing and changes no value;
//   * identify symmetry — Identify(R, S) and Identify(S, R) produce
//     mirrored matching tables and partitions;
//   * decision totality/exclusivity — every pair gets exactly one of the
//     three decisions, consistent with the two tables;
//   * printable tables round-trip through CSV.

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "eid.h"
#include "workload/fixtures.h"
#include "workload/generator.h"

namespace eid {
namespace {

TEST(InvariantsTest, ExtensionIsIdempotent) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  ExtendedKey key = fixtures::Example3ExtendedKey();
  IlfdSet ilfds = fixtures::Example3Ilfds();
  EID_ASSERT_OK_AND_ASSIGN(ExtensionResult once,
                           ExtendRelation(r, Side::kR, corr, key, ilfds));
  // Re-extend the extension: identity correspondence over the extended
  // schema; nothing is missing anymore.
  AttributeCorrespondence corr2 =
      AttributeCorrespondence::Identity(once.extended, s);
  EID_ASSERT_OK_AND_ASSIGN(
      ExtensionResult twice,
      ExtendRelation(once.extended, Side::kR, corr2, key, ilfds));
  EXPECT_TRUE(twice.added_attributes.empty());
  EXPECT_TRUE(twice.extended.RowsEqualUnordered(once.extended));
}

TEST(InvariantsTest, IdentifySymmetryOnExample3) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  IdentifierConfig forward;
  forward.correspondence = AttributeCorrespondence::Identity(r, s);
  forward.extended_key = fixtures::Example3ExtendedKey();
  forward.ilfds = fixtures::Example3Ilfds();
  IdentifierConfig backward = forward;
  backward.correspondence = AttributeCorrespondence::Identity(s, r);

  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult fwd,
                           EntityIdentifier(forward).Identify(r, s));
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult bwd,
                           EntityIdentifier(backward).Identify(s, r));
  EXPECT_EQ(fwd.matching.size(), bwd.matching.size());
  EXPECT_EQ(fwd.negative.table.size(), bwd.negative.table.size());
  EXPECT_EQ(fwd.partition.undetermined, bwd.partition.undetermined);
  for (const TuplePair& p : fwd.matching.pairs()) {
    EXPECT_TRUE(bwd.matching.Contains(TuplePair{p.s_index, p.r_index}));
  }
  for (const TuplePair& p : fwd.negative.table.pairs()) {
    EXPECT_TRUE(bwd.negative.table.Contains(TuplePair{p.s_index, p.r_index}));
  }
}

TEST(InvariantsTest, IdentifySymmetryOnGeneratedWorld) {
  GeneratorConfig gen;
  gen.seed = 55;
  gen.overlap_entities = 25;
  gen.r_only_entities = 10;
  gen.s_only_entities = 10;
  gen.name_pool = 40;
  gen.street_pool = 90;
  gen.cities = 5;
  gen.speciality_pool = 12;
  gen.cuisines = 4;
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(gen));
  IdentifierConfig forward;
  forward.correspondence = world.correspondence;
  forward.extended_key = world.extended_key;
  forward.ilfds = world.ilfds;
  IdentifierConfig backward = forward;
  backward.correspondence =
      AttributeCorrespondence::Identity(world.s, world.r);
  EID_ASSERT_OK_AND_ASSIGN(
      IdentificationResult fwd,
      EntityIdentifier(forward).Identify(world.r, world.s));
  EID_ASSERT_OK_AND_ASSIGN(
      IdentificationResult bwd,
      EntityIdentifier(backward).Identify(world.s, world.r));
  ASSERT_EQ(fwd.matching.size(), bwd.matching.size());
  for (const TuplePair& p : fwd.matching.pairs()) {
    EXPECT_TRUE(bwd.matching.Contains(TuplePair{p.s_index, p.r_index}));
  }
}

TEST(InvariantsTest, DecisionsAreTotalAndExclusive) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example3ExtendedKey();
  config.ilfds = fixtures::Example3Ilfds();
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           EntityIdentifier(config).Identify(r, s));
  ASSERT_TRUE(result.Sound());
  size_t matched = 0, non_matched = 0, undetermined = 0;
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = 0; j < s.size(); ++j) {
      switch (result.Decide(i, j)) {
        case MatchDecision::kMatch: ++matched; break;
        case MatchDecision::kNonMatch: ++non_matched; break;
        case MatchDecision::kUndetermined: ++undetermined; break;
      }
      // Exclusivity: a sound result never has a pair in both tables.
      TuplePair p{i, j};
      EXPECT_FALSE(result.matching.Contains(p) &&
                   result.negative.table.Contains(p));
    }
  }
  EXPECT_EQ(matched, result.partition.matched);
  EXPECT_EQ(non_matched, result.partition.non_matched);
  EXPECT_EQ(undetermined, result.partition.undetermined);
}

TEST(InvariantsTest, TablesRoundTripThroughCsv) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example3ExtendedKey();
  config.ilfds = fixtures::Example3Ilfds();
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           EntityIdentifier(config).Identify(r, s));
  EID_ASSERT_OK_AND_ASSIGN(Relation mt, result.MatchingRelation());
  EID_ASSERT_OK_AND_ASSIGN(Relation back, ReadCsv(WriteCsv(mt), "MT"));
  EXPECT_TRUE(mt.RowsEqualUnordered(back));
  EID_ASSERT_OK_AND_ASSIGN(
      Relation integrated,
      BuildIntegratedTable(result, IntegrationLayout::kSideBySide));
  EID_ASSERT_OK_AND_ASSIGN(Relation integrated_back,
                           ReadCsv(WriteCsv(integrated), "T"));
  EXPECT_TRUE(integrated.RowsEqualUnordered(integrated_back));
}

TEST(InvariantsTest, MatchedPairsAgreeOnSharedWorldAttributes) {
  // For any sound result, matched extended tuples never hold conflicting
  // non-NULL values on any shared attribute (merged integration works).
  GeneratorConfig gen;
  gen.seed = 67;
  gen.overlap_entities = 30;
  gen.r_only_entities = 15;
  gen.s_only_entities = 15;
  gen.name_pool = 60;
  gen.street_pool = 120;
  gen.cities = 5;
  gen.speciality_pool = 15;
  gen.cuisines = 4;
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(gen));
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  EID_ASSERT_OK_AND_ASSIGN(
      IdentificationResult result,
      EntityIdentifier(config).Identify(world.r, world.s));
  EID_ASSERT_OK_AND_ASSIGN(
      Relation merged,
      BuildIntegratedTable(result, IntegrationLayout::kMerged));
  EXPECT_EQ(merged.size(), result.matching.size() +
                               (world.r.size() - result.matching.size()) +
                               (world.s.size() - result.matching.size()));
}

}  // namespace
}  // namespace eid
