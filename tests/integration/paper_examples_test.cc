// End-to-end reproduction of every worked example in the paper, wired
// through the public API exactly as the bench harness runs them.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "eid.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

// ---------------------------------------------------------------------
// Example 1 / Table 1: the motivating ambiguity.
// ---------------------------------------------------------------------

TEST(Example1Test, CommonAttributeMatchingBecomesAmbiguous) {
  Relation r = fixtures::Table1R();
  Relation s = fixtures::Table1S();
  // Matching on the common key *attribute* `name` alone: initially each
  // S tuple has at most one same-name R tuple...
  size_t ambiguous_before = 0;
  for (size_t j = 0; j < s.size(); ++j) {
    size_t hits = 0;
    for (size_t i = 0; i < r.size(); ++i) {
      if (r.tuple(i).GetOrNull("name") == s.tuple(j).GetOrNull("name")) {
        ++hits;
      }
    }
    if (hits > 1) ++ambiguous_before;
  }
  EXPECT_EQ(ambiguous_before, 0u);
  // ...but inserting (VillageWok, Penn.Ave., Chinese) makes VillageWok
  // ambiguous: one S tuple, two R candidates.
  EID_EXPECT_OK(r.Insert(fixtures::Table1AmbiguousInsert()));
  size_t ambiguous_after = 0;
  for (size_t j = 0; j < s.size(); ++j) {
    size_t hits = 0;
    for (size_t i = 0; i < r.size(); ++i) {
      if (r.tuple(i).GetOrNull("name") == s.tuple(j).GetOrNull("name")) {
        ++hits;
      }
    }
    if (hits > 1) ++ambiguous_after;
  }
  EXPECT_EQ(ambiguous_after, 1u);
}

TEST(Example1Test, KnowledgeResolvesTheAmbiguity) {
  // With the extended key {name, street, city} and Example 1's knowledge
  // ("Wash.Ave. is only in Mpls", "Hwang's restaurant is only on
  // Wash.Ave."), the first tuples match and the Penn.Ave. insertion causes
  // no problem.
  Relation r = fixtures::Table1R();
  EID_EXPECT_OK(r.Insert(fixtures::Table1AmbiguousInsert()));
  Relation s = fixtures::Table1S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example1ExtendedKey();
  config.ilfds = fixtures::Example1Ilfds();
  EntityIdentifier identifier(config);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           identifier.Identify(r, s));
  EID_EXPECT_OK(result.uniqueness);
  // VillageWok/Wash.Ave. (row 0) ↔ VillageWok/Mpls (row 0): the only match
  // the knowledge certifies; Penn.Ave. (row 3) stays unmatched.
  ASSERT_EQ(result.matching.size(), 1u);
  EXPECT_EQ(result.matching.pairs()[0], (TuplePair{0, 0}));
  EXPECT_FALSE(result.matching.HasR(3));
}

// ---------------------------------------------------------------------
// Figure 2: soundness breakdown and the domain attribute.
// ---------------------------------------------------------------------

TEST(Figure2Test, AttributeEquivalenceIsUnsoundAcrossDomains) {
  Relation r = fixtures::Figure2R();
  Relation s = fixtures::Figure2S();
  // Attribute-value equivalence concludes r1 ≡ s1...
  {
    IdentifierConfig config;
    config.correspondence = AttributeCorrespondence::Identity(r, s);
    config.identity_rules.push_back(
        IdentityRule::KeyEquivalence("all-attrs", {"name", "cuisine"}));
    EntityIdentifier identifier(config);
    EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                             identifier.Identify(r, s));
    EXPECT_EQ(result.matching.size(), 1u);
    // ...which violates soundness: the ground truth (Figure2Universe) has
    // two distinct entities. The extended key over the universe proves
    // (name, cuisine) is not even identifying.
    EXPECT_EQ(ExtendedKey({"name", "cuisine"})
                  .VerifyAgainstUniverse(fixtures::Figure2Universe())
                  .code(),
              StatusCode::kConstraintViolation);
  }
}

TEST(Figure2Test, DomainAttributeBlocksTheUnsoundMatch) {
  Relation r = fixtures::Figure2RWithDomain();
  Relation s = fixtures::Figure2SWithDomain();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.identity_rules.push_back(IdentityRule::KeyEquivalence(
      "all-attrs", {"name", "cuisine", "domain"}));
  // Domain knowledge: DB1 and DB2 model disjoint subsets here.
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule disjoint,
      ParseDistinctnessRule(
          "disjoint-domains", "e1.domain = \"DB1\" & e2.domain = \"DB2\""));
  config.distinctness_rules.push_back(disjoint);
  EntityIdentifier identifier(config);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           identifier.Identify(r, s));
  EXPECT_EQ(result.matching.size(), 0u);
  EXPECT_EQ(result.negative.table.size(), 1u);
  EXPECT_TRUE(result.Sound());
}

// ---------------------------------------------------------------------
// Example 2 / Tables 2-4.
// ---------------------------------------------------------------------

TEST(Example2Test, Table3MatchingTable) {
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example2ExtendedKey();
  config.ilfds = fixtures::Example2Ilfds();
  EntityIdentifier identifier(config);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           identifier.Identify(r, s));
  EID_ASSERT_OK_AND_ASSIGN(Relation mt, result.MatchingRelation());
  // Table 3: one row — TwinCities | Indian | TwinCities.
  ASSERT_EQ(mt.size(), 1u);
  EXPECT_EQ(mt.tuple(0).GetOrNull("R.name").AsString(), "TwinCities");
  EXPECT_EQ(mt.tuple(0).GetOrNull("R.cuisine").AsString(), "Indian");
  EXPECT_EQ(mt.tuple(0).GetOrNull("S.name").AsString(), "TwinCities");
}

TEST(Example2Test, Table4NegativeMatchingTable) {
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example2ExtendedKey();
  config.ilfds = fixtures::Example2Ilfds();
  EntityIdentifier identifier(config);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           identifier.Identify(r, s));
  // Table 4: (TwinCities, Chinese) vs (TwinCities) is a certified
  // non-match via Proposition 1 on the Mughalai ILFD.
  EXPECT_TRUE(result.negative.table.Contains(TuplePair{0, 0}));
  EXPECT_EQ(result.Decide(0, 0), MatchDecision::kNonMatch);
  EXPECT_EQ(result.Decide(1, 0), MatchDecision::kMatch);
  EID_EXPECT_OK(result.consistency);
}

// ---------------------------------------------------------------------
// Example 3 / Tables 5-8 (+ §5's derived I9).
// ---------------------------------------------------------------------

class Example3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = fixtures::Example3R();
    s_ = fixtures::Example3S();
    config_.correspondence = AttributeCorrespondence::Identity(r_, s_);
    config_.extended_key = fixtures::Example3ExtendedKey();
    config_.ilfds = fixtures::Example3Ilfds();
    EntityIdentifier identifier(config_);
    Result<IdentificationResult> result = identifier.Identify(r_, s_);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    result_ = std::move(result).value();
  }

  Relation r_, s_;
  IdentifierConfig config_;
  IdentificationResult result_;
};

TEST_F(Example3Test, Table6ExtendedRelations) {
  // R' speciality column.
  std::vector<std::string> r_spec = {"Hunan", "null", "Gyros", "Mughalai",
                                     "null"};
  for (size_t i = 0; i < r_spec.size(); ++i) {
    EXPECT_EQ(result_.r_extended.tuple(i).GetOrNull("speciality").ToString(),
              r_spec[i]);
  }
  // S' cuisine column.
  std::vector<std::string> s_cui = {"Chinese", "Chinese", "Greek", "Indian"};
  for (size_t i = 0; i < s_cui.size(); ++i) {
    EXPECT_EQ(result_.s_extended.tuple(i).GetOrNull("cuisine").ToString(),
              s_cui[i]);
  }
}

TEST_F(Example3Test, Table7MatchingTable) {
  EID_ASSERT_OK_AND_ASSIGN(Relation mt, result_.MatchingRelation());
  mt.SortRows();
  ASSERT_EQ(mt.size(), 3u);
  // Sorted rows: Anjuman, It'sGreek, TwinCities.
  EXPECT_EQ(mt.tuple(0).GetOrNull("R.name").AsString(), "Anjuman");
  EXPECT_EQ(mt.tuple(1).GetOrNull("R.name").AsString(), "It'sGreek");
  EXPECT_EQ(mt.tuple(2).GetOrNull("R.name").AsString(), "TwinCities");
  EXPECT_EQ(mt.tuple(2).GetOrNull("R.cuisine").AsString(), "Chinese");
  EXPECT_EQ(mt.tuple(2).GetOrNull("S.speciality").AsString(), "Hunan");
}

TEST_F(Example3Test, DerivedI9IsImpliedAndProvable) {
  Ilfd i9 = fixtures::Example3DerivedI9();
  EXPECT_TRUE(config_.ilfds.Implies(i9));
  EID_ASSERT_OK_AND_ASSIGN(Proof proof, config_.ilfds.Prove(i9));
  AtomTable scratch = config_.ilfds.atoms();
  Implication target = config_.ilfds.ToImplication(i9, &scratch);
  EID_EXPECT_OK(VerifyProof(config_.ilfds.kb(), proof, target));
}

TEST_F(Example3Test, SoundnessVerdictsHold) {
  EXPECT_TRUE(result_.Sound());
  EID_EXPECT_OK(result_.uniqueness);
  EID_EXPECT_OK(result_.consistency);
}

TEST_F(Example3Test, IntegratedTableMatchesPrototypeShape) {
  EID_ASSERT_OK_AND_ASSIGN(Relation t, BuildIntegratedTable(result_));
  EXPECT_EQ(t.size(), 6u);
}

}  // namespace
}  // namespace eid
