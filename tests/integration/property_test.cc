// Parameterised property suites over generated worlds: the soundness
// guarantee of the extended-key + ILFD technique, cross-checks between the
// two matching-table constructions, monotonicity, and the baselines'
// qualitative behaviour — the load-bearing claims of the paper, swept over
// seeds and coverage levels.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "../test_util.h"
#include "baselines/heuristic_rules.h"
#include "baselines/ilfd_technique.h"
#include "baselines/probabilistic_attr.h"
#include "eid.h"
#include "workload/generator.h"

namespace eid {
namespace {

struct WorldParam {
  uint64_t seed;
  double coverage;
  size_t name_pool;  // small pools → many homonym names
};

std::string ParamName(const ::testing::TestParamInfo<WorldParam>& info) {
  std::string coverage = std::to_string(static_cast<int>(
      info.param.coverage * 100));
  return "seed" + std::to_string(info.param.seed) + "_cov" + coverage +
         "_names" + std::to_string(info.param.name_pool);
}

GeneratorConfig ConfigFor(const WorldParam& p) {
  GeneratorConfig config;
  config.seed = p.seed;
  config.overlap_entities = 40;
  config.r_only_entities = 20;
  config.s_only_entities = 20;
  config.name_pool = p.name_pool;
  config.street_pool = 160;
  config.cities = 8;
  config.speciality_pool = 24;
  config.cuisines = 6;
  config.ilfd_coverage = p.coverage;
  return config;
}

IdentifierConfig IdentifierFor(const GeneratedWorld& world) {
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  return config;
}

class WorldPropertyTest : public ::testing::TestWithParam<WorldParam> {};

TEST_P(WorldPropertyTest, TechniqueIsSoundOnGeneratedWorlds) {
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world,
                           GenerateWorld(ConfigFor(GetParam())));
  EntityIdentifier identifier(IdentifierFor(world));
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           identifier.Identify(world.r, world.s));
  EXPECT_TRUE(result.Sound());
  std::set<TuplePair> truth(world.truth.begin(), world.truth.end());
  // SOUNDNESS: every claimed match is a true match; every claimed
  // non-match is truly distinct.
  for (const TuplePair& p : result.matching.pairs()) {
    EXPECT_EQ(truth.count(p), 1u)
        << "unsound match (R" << p.r_index << ", S" << p.s_index << ")";
  }
  for (const TuplePair& p : result.negative.table.pairs()) {
    EXPECT_EQ(truth.count(p), 0u)
        << "unsound non-match (R" << p.r_index << ", S" << p.s_index << ")";
  }
}

TEST_P(WorldPropertyTest, FullCoverageRecoversEveryTrueMatch) {
  WorldParam param = GetParam();
  if (param.coverage < 1.0) GTEST_SKIP() << "needs full ILFD coverage";
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world,
                           GenerateWorld(ConfigFor(param)));
  EntityIdentifier identifier(IdentifierFor(world));
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           identifier.Identify(world.r, world.s));
  EXPECT_EQ(result.matching.size(), world.truth.size());
}

TEST_P(WorldPropertyTest, MatchCountScalesWithCoverage) {
  WorldParam param = GetParam();
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world,
                           GenerateWorld(ConfigFor(param)));
  EntityIdentifier identifier(IdentifierFor(world));
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                           identifier.Identify(world.r, world.s));
  // Matches require the R-side entity's per-entity ILFD: counting the
  // covered overlap entities gives exactly the reachable matches.
  size_t reachable = 0;
  for (size_t i = 0; i < world.truth.size(); ++i) {
    // Overlap entities are universe rows [0, overlap); truth is in order.
    if (world.covered[i]) ++reachable;
  }
  EXPECT_EQ(result.matching.size(), reachable);
}

TEST_P(WorldPropertyTest, AlgebraPipelineAgreesWithDirectMatcher) {
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world,
                           GenerateWorld(ConfigFor(GetParam())));
  EID_ASSERT_OK_AND_ASSIGN(std::vector<IlfdTable> tables,
                           IlfdTable::Partition(world.ilfds.ilfds()));
  EID_ASSERT_OK_AND_ASSIGN(
      AlgebraPipelineResult algebraic,
      BuildMatchingTableAlgebraically(world.r, world.s, world.correspondence,
                                      world.extended_key, tables));
  EID_ASSERT_OK_AND_ASSIGN(
      MatcherResult direct,
      BuildMatchingTable(world.r, world.s, world.correspondence,
                         world.extended_key, world.ilfds));
  EID_EXPECT_OK(direct.uniqueness);
  EID_ASSERT_OK_AND_ASSIGN(Relation direct_mt, direct.MatchingRelation("MT"));
  EXPECT_TRUE(algebraic.matching.RowsEqualUnordered(direct_mt))
      << "algebra pipeline MT (" << algebraic.matching.size()
      << " rows) != direct MT (" << direct_mt.size() << " rows)";
}

TEST_P(WorldPropertyTest, FirstMatchAndExhaustiveAgreeOnConsistentWorlds) {
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world,
                           GenerateWorld(ConfigFor(GetParam())));
  IdentifierConfig config = IdentifierFor(world);
  EntityIdentifier exhaustive(config);
  config.matcher_options.extension.derivation.mode =
      DerivationMode::kFirstMatch;
  EntityIdentifier first_match(config);
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult a,
                           exhaustive.Identify(world.r, world.s));
  EID_ASSERT_OK_AND_ASSIGN(IdentificationResult b,
                           first_match.Identify(world.r, world.s));
  std::vector<TuplePair> pa = a.matching.pairs(), pb = b.matching.pairs();
  std::sort(pa.begin(), pa.end());
  std::sort(pb.begin(), pb.end());
  EXPECT_EQ(pa, pb);
}

TEST_P(WorldPropertyTest, MonotoneUnderIncrementalKnowledge) {
  WorldParam param = GetParam();
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world,
                           GenerateWorld(ConfigFor(param)));
  // Start with the taxonomy ILFDs only, then add the per-entity ILFDs in
  // chunks; matched must grow, undetermined must shrink, no violations.
  IdentifierConfig config = IdentifierFor(world);
  IlfdSet per_entity;
  IlfdSet base;
  for (const Ilfd& f : world.ilfds.ilfds()) {
    bool is_per_entity = f.ConsequentAttributes() ==
                         std::vector<std::string>{"speciality"};
    if (is_per_entity) per_entity.Add(f);
    else base.Add(f);
  }
  config.ilfds = base;
  MonotonicEngine engine(world.r, world.s, config);
  size_t last_matched = engine.result().partition.matched;
  size_t last_undet = engine.result().partition.undetermined;
  for (size_t i = 0; i < per_entity.size(); i += 7) {
    EID_EXPECT_OK(engine.AddIlfd(per_entity.ilfd(i)));
    EXPECT_GE(engine.result().partition.matched, last_matched);
    EXPECT_LE(engine.result().partition.undetermined, last_undet);
    last_matched = engine.result().partition.matched;
    last_undet = engine.result().partition.undetermined;
  }
  EXPECT_TRUE(engine.violations().empty());
}

TEST_P(WorldPropertyTest, HeuristicNameMatchingIsUnsoundWithHomonyms) {
  WorldParam param = GetParam();
  if (param.name_pool > 40) GTEST_SKIP() << "needs a homonym-rich pool";
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world,
                           GenerateWorld(ConfigFor(param)));
  HeuristicRuleMatcher heuristic(
      world.correspondence,
      {IdentityRule::KeyEquivalence("same-name", {"name"})});
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result,
                           heuristic.Match(world.r, world.s));
  MatchQuality q =
      Evaluate(result, world.truth, world.r.size(), world.s.size());
  // With 80 entities drawn from ≤40 names, same-name-different-entity
  // collisions are overwhelmingly likely across the two relations.
  EXPECT_GT(q.false_matches, 0u)
      << "expected homonym collisions at name_pool=" << param.name_pool;
  // The paper's technique on the same world is sound (see the soundness
  // test above); this contrast is experiment S3.
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, WorldPropertyTest,
    ::testing::Values(WorldParam{1, 1.0, 200}, WorldParam{2, 1.0, 40},
                      WorldParam{3, 0.5, 200}, WorldParam{4, 0.5, 40},
                      WorldParam{5, 0.0, 200}, WorldParam{7, 0.8, 30},
                      WorldParam{11, 0.3, 120}, WorldParam{13, 1.0, 30}),
    ParamName);

}  // namespace
}  // namespace eid
