#include "discovery/key_discovery.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "workload/fixtures.h"
#include "workload/generator.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

bool HasKey(const std::vector<ExtendedKey>& keys,
            const std::vector<std::string>& attrs) {
  ExtendedKey target(attrs);
  return std::find(keys.begin(), keys.end(), target) != keys.end();
}

TEST(KeyDiscoveryTest, FindsSingletonKey) {
  Relation universe = MakeRelation("E", {"id", "name"}, {},
                                   {{"1", "A"}, {"2", "A"}, {"3", "B"}});
  EID_ASSERT_OK_AND_ASSIGN(std::vector<ExtendedKey> keys,
                           DiscoverMinimalKeys(universe));
  EXPECT_TRUE(HasKey(keys, {"id"}));
  // {id, name} is identifying but not minimal: excluded.
  EXPECT_FALSE(HasKey(keys, {"id", "name"}));
  EXPECT_FALSE(HasKey(keys, {"name"}));
}

TEST(KeyDiscoveryTest, FindsCompositeKeys) {
  // Fig. 2's world: only (name, street) and supersets identify; the
  // minimal keys involving street alone also qualify.
  Relation universe = fixtures::Figure2Universe();
  EID_ASSERT_OK_AND_ASSIGN(std::vector<ExtendedKey> keys,
                           DiscoverMinimalKeys(universe));
  EXPECT_TRUE(HasKey(keys, {"street"}));  // streets unique in this sample
  EXPECT_FALSE(HasKey(keys, {"name"}));
  EXPECT_FALSE(HasKey(keys, {"cuisine"}));
  EXPECT_FALSE(HasKey(keys, {"name", "cuisine"}));
  // Every returned key verifies as a minimal extended key.
  for (const ExtendedKey& key : keys) {
    EID_EXPECT_OK(key.VerifyAgainstUniverse(universe));
  }
}

TEST(KeyDiscoveryTest, ExcludeList) {
  Relation universe = MakeRelation("E", {"id", "domain"}, {},
                                   {{"1", "DB1"}, {"2", "DB1"}});
  KeyDiscoveryOptions opts;
  opts.exclude = {"id"};
  EID_ASSERT_OK_AND_ASSIGN(std::vector<ExtendedKey> keys,
                           DiscoverMinimalKeys(universe, opts));
  EXPECT_FALSE(HasKey(keys, {"id"}));
  EXPECT_TRUE(keys.empty());  // domain alone does not identify
}

TEST(KeyDiscoveryTest, MaxSizeBounds) {
  // Only the pair identifies; with max_size=1 nothing is found.
  Relation universe = MakeRelation("E", {"a", "b"}, {},
                                   {{"1", "1"}, {"1", "2"}, {"2", "1"}});
  KeyDiscoveryOptions opts;
  opts.max_size = 1;
  EID_ASSERT_OK_AND_ASSIGN(std::vector<ExtendedKey> one,
                           DiscoverMinimalKeys(universe, opts));
  EXPECT_TRUE(one.empty());
  opts.max_size = 2;
  EID_ASSERT_OK_AND_ASSIGN(std::vector<ExtendedKey> two,
                           DiscoverMinimalKeys(universe, opts));
  EXPECT_TRUE(HasKey(two, {"a", "b"}));
}

TEST(KeyDiscoveryTest, EnumerationCap) {
  Relation universe = MakeRelation(
      "E", {"a", "b", "c", "d", "e", "f"}, {},
      {{"1", "1", "1", "1", "1", "1"}, {"2", "2", "2", "2", "2", "2"}});
  KeyDiscoveryOptions opts;
  opts.enumeration_cap = 3;
  opts.max_size = 6;
  Result<std::vector<ExtendedKey>> keys = DiscoverMinimalKeys(universe, opts);
  // Either finishes early thanks to pruning or reports the cap; with cap 3
  // and 6 singletons to examine it must report.
  EXPECT_FALSE(keys.ok());
}

TEST(KeyDiscoveryTest, GeneratedWorldRecoversDesignKeys) {
  GeneratorConfig gen;
  gen.seed = 21;
  gen.overlap_entities = 40;
  gen.r_only_entities = 20;
  gen.s_only_entities = 20;
  gen.name_pool = 30;  // force name collisions
  gen.street_pool = 200;
  gen.cities = 6;
  gen.speciality_pool = 20;
  gen.cuisines = 5;
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(gen));
  KeyDiscoveryOptions opts;
  opts.max_size = 2;
  EID_ASSERT_OK_AND_ASSIGN(std::vector<ExtendedKey> keys,
                           DiscoverMinimalKeys(world.universe, opts));
  // The design keys (name, speciality), (name, street), (name, city) are
  // unique by construction — they appear unless a 1-attribute subset
  // already identifies (possible for street with a big pool).
  EXPECT_FALSE(keys.empty());
  bool design_key_found = false;
  for (const ExtendedKey& key : keys) {
    if (key == world.extended_key) design_key_found = true;
  }
  bool street_alone = HasKey(keys, {"street"});
  bool name_spec_subsumed = street_alone;  // not possible: different attrs
  (void)name_spec_subsumed;
  EXPECT_TRUE(design_key_found || HasKey(keys, {"speciality"}))
      << "expected {name, speciality} (or a subsumed singleton) among keys";
}

TEST(KeyDiscoveryTest, RankKeysForPairPrefersCheapDerivation) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  AttributeCorrespondence corr = AttributeCorrespondence::Identity(r, s);
  IlfdSet ilfds = fixtures::Example3Ilfds();
  std::vector<ExtendedKey> candidates = {
      ExtendedKey({"name", "cuisine", "speciality"}),  // derivable both ways
      ExtendedKey({"name", "street"}),                 // street not in S, not
                                                       // derivable
      ExtendedKey({"name", "county"}),                 // county derivable (I7)
  };
  std::vector<RankedKey> ranked = RankKeysForPair(candidates, corr, ilfds);
  // {name, street} is unusable (street underivable on S).
  ASSERT_EQ(ranked.size(), 2u);
  // {name, county}: one derived column (R side) beats
  // {name, cuisine, speciality}: two derived columns.
  EXPECT_EQ(ranked[0].key, ExtendedKey({"name", "county"}));
  EXPECT_EQ(ranked[0].derived_on_r, 1u);
  EXPECT_EQ(ranked[1].key, ExtendedKey({"name", "cuisine", "speciality"}));
  EXPECT_EQ(ranked[1].derived_on_r + ranked[1].derived_on_s, 2u);
}

}  // namespace
}  // namespace eid
