#include "discovery/ilfd_miner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "workload/fixtures.h"
#include "workload/generator.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

bool ContainsIlfd(const std::vector<MinedIlfd>& mined, const std::string& text) {
  Result<Ilfd> target = ParseIlfd(text);
  EXPECT_TRUE(target.ok());
  for (const MinedIlfd& m : mined) {
    if (m.ilfd == *target) return true;
  }
  return false;
}

TEST(IlfdMinerTest, FindsTaxonomyRules) {
  Relation r = MakeRelation("R", {"speciality", "cuisine"}, {},
                            {{"Hunan", "Chinese"},
                             {"Hunan", "Chinese"},
                             {"Sichuan", "Chinese"},
                             {"Sichuan", "Chinese"},
                             {"Gyros", "Greek"},
                             {"Gyros", "Greek"}});
  std::vector<MinedIlfd> mined = MineIlfds(r);
  EXPECT_TRUE(ContainsIlfd(mined, "speciality=Hunan -> cuisine=Chinese"));
  EXPECT_TRUE(ContainsIlfd(mined, "speciality=Gyros -> cuisine=Greek"));
  // The reverse (cuisine=Chinese -> speciality=?) is contradicted.
  EXPECT_FALSE(ContainsIlfd(mined, "cuisine=Chinese -> speciality=Hunan"));
}

TEST(IlfdMinerTest, MinSupportFiltersNoise) {
  Relation r = MakeRelation("R", {"speciality", "cuisine"}, {},
                            {{"Hunan", "Chinese"},
                             {"Hunan", "Chinese"},
                             {"Gyros", "Greek"}});  // support 1
  MinerOptions opts;
  opts.min_support = 2;
  std::vector<MinedIlfd> mined = MineIlfds(r, opts);
  EXPECT_TRUE(ContainsIlfd(mined, "speciality=Hunan -> cuisine=Chinese"));
  EXPECT_FALSE(ContainsIlfd(mined, "speciality=Gyros -> cuisine=Greek"));
  opts.min_support = 1;
  mined = MineIlfds(r, opts);
  EXPECT_TRUE(ContainsIlfd(mined, "speciality=Gyros -> cuisine=Greek"));
}

TEST(IlfdMinerTest, SupportCountsAntecedentOccurrences) {
  Relation r = MakeRelation("R", {"a", "b"}, {},
                            {{"x", "1"}, {"x", "1"}, {"x", "1"}, {"y", "2"}});
  MinerOptions opts;
  opts.min_support = 1;
  std::vector<MinedIlfd> mined = MineIlfds(r, opts);
  bool found = false;
  for (const MinedIlfd& m : mined) {
    if (m.ilfd.ToString() == "a=x -> b=1") {
      found = true;
      EXPECT_EQ(m.support, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(IlfdMinerTest, NullsNeitherSupportNorRefute) {
  Relation r("R", Schema::OfStrings({"a", "b"}));
  EID_EXPECT_OK(r.InsertText({"x", "1"}));
  EID_EXPECT_OK(r.Insert(Row{Value::Str("x"), Value::Null()}));
  EID_EXPECT_OK(r.InsertText({"x", "1"}));
  MinerOptions opts;
  opts.min_support = 2;
  std::vector<MinedIlfd> mined = MineIlfds(r, opts);
  EXPECT_TRUE(ContainsIlfd(mined, "a=x -> b=\"1\""));
}

TEST(IlfdMinerTest, PairAntecedentsMineI5Shape) {
  // (name, street) -> speciality with name/street individually ambiguous.
  Relation r = MakeRelation("R", {"name", "street", "speciality"}, {},
                            {{"TwinCities", "Co.B2", "Hunan"},
                             {"TwinCities", "Co.B2", "Hunan"},
                             {"TwinCities", "Co.B3", "Sichuan"},
                             {"TwinCities", "Co.B3", "Sichuan"}});
  MinerOptions opts;
  opts.min_support = 2;
  opts.max_attribute_cardinality = 1;  // name/street too ambiguous alone
  std::vector<MinedIlfd> mined = MineIlfds(r, opts);
  EXPECT_TRUE(ContainsIlfd(
      mined, "name=TwinCities & street=Co.B2 -> speciality=Hunan"));
  // Single-attribute antecedents were suppressed by the cardinality cap
  // (and name=TwinCities -> speciality is contradicted anyway).
  for (const MinedIlfd& m : mined) {
    EXPECT_GE(m.ilfd.antecedent().size(), 1u);
  }
}

TEST(IlfdMinerTest, PruneImpliedRemovesRedundantPairRules) {
  Relation r = MakeRelation("R", {"speciality", "cuisine", "region"}, {},
                            {{"Hunan", "Chinese", "Asia"},
                             {"Hunan", "Chinese", "Asia"},
                             {"Gyros", "Greek", "Europe"},
                             {"Gyros", "Greek", "Europe"}});
  MinerOptions opts;
  opts.min_support = 2;
  opts.prune_implied = true;
  std::vector<MinedIlfd> pruned = MineIlfds(r, opts);
  opts.prune_implied = false;
  std::vector<MinedIlfd> raw = MineIlfds(r, opts);
  EXPECT_LT(pruned.size(), raw.size());
  // Everything raw is still implied by the pruned set.
  IlfdSet accepted;
  for (const MinedIlfd& m : pruned) accepted.Add(m.ilfd);
  for (const MinedIlfd& m : raw) {
    EXPECT_TRUE(accepted.Implies(m.ilfd)) << m.ilfd.ToString();
  }
}

TEST(IlfdMinerTest, ConsequentFilter) {
  Relation r = MakeRelation("R", {"a", "b", "c"}, {},
                            {{"x", "1", "p"}, {"x", "1", "p"}});
  MinerOptions opts;
  opts.min_support = 2;
  opts.consequent_attributes = {"b"};
  for (const MinedIlfd& m : MineIlfds(r, opts)) {
    EXPECT_EQ(m.ilfd.ConsequentAttributes(),
              (std::vector<std::string>{"b"}));
  }
}

TEST(IlfdMinerTest, ConfirmOnRejectsContradictedCandidates) {
  Relation train = MakeRelation("R", {"speciality", "cuisine"}, {},
                                {{"Hunan", "Chinese"}, {"Hunan", "Chinese"}});
  Relation witness_good = MakeRelation("W", {"speciality", "cuisine"}, {},
                                       {{"Hunan", "Chinese"}});
  Relation witness_bad = MakeRelation("W", {"speciality", "cuisine"}, {},
                                      {{"Hunan", "Thai"}});
  std::vector<MinedIlfd> mined = MineIlfds(train);
  EXPECT_FALSE(ConfirmOn(mined, witness_good).empty());
  EXPECT_TRUE(ContainsIlfd(ConfirmOn(mined, witness_good),
                           "speciality=Hunan -> cuisine=Chinese"));
  EXPECT_FALSE(ContainsIlfd(ConfirmOn(mined, witness_bad),
                            "speciality=Hunan -> cuisine=Chinese"));
}

TEST(IlfdMinerTest, MinedKnowledgeDrivesIdentification) {
  // End-to-end: mine the generator's taxonomy from the universe sample,
  // feed it to the identifier, and match as well as the true knowledge
  // allows for the taxonomy part.
  GeneratorConfig gen;
  gen.seed = 5;
  gen.overlap_entities = 30;
  gen.r_only_entities = 10;
  gen.s_only_entities = 10;
  gen.name_pool = 64;
  gen.street_pool = 100;
  gen.cities = 4;
  gen.speciality_pool = 6;
  gen.cuisines = 3;
  gen.ilfd_coverage = 1.0;
  EID_ASSERT_OK_AND_ASSIGN(GeneratedWorld world, GenerateWorld(gen));

  MinerOptions opts;
  opts.min_support = 2;
  opts.max_antecedent = 2;
  opts.max_attribute_cardinality = 12;
  std::vector<MinedIlfd> mined = MineIlfds(world.universe, opts);
  // The speciality -> cuisine taxonomy must be recovered for every
  // speciality with support >= 2.
  size_t taxonomy_rules = 0;
  for (const MinedIlfd& m : mined) {
    if (m.ilfd.AntecedentAttributes() ==
            std::vector<std::string>{"speciality"} &&
        m.ilfd.ConsequentAttributes() ==
            std::vector<std::string>{"cuisine"}) {
      ++taxonomy_rules;
      EXPECT_TRUE(world.ilfds.Implies(m.ilfd)) << m.ilfd.ToString();
    }
  }
  EXPECT_GT(taxonomy_rules, 0u);
}

}  // namespace
}  // namespace eid
