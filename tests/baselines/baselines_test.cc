#include "baselines/baseline.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "baselines/heuristic_rules.h"
#include "baselines/ilfd_technique.h"
#include "baselines/key_equivalence.h"
#include "baselines/probabilistic_attr.h"
#include "baselines/probabilistic_key.h"
#include "baselines/user_specified.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(KeyEquivalenceTest, NotApplicableWithoutCommonKey) {
  // Table 1: R keyed (name, street), S keyed (name, city) — Example 1's
  // point is that key equivalence cannot be used here.
  Relation r = fixtures::Table1R();
  Relation s = fixtures::Table1S();
  KeyEquivalenceMatcher matcher(AttributeCorrespondence::Identity(r, s));
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  EXPECT_EQ(result.applicability.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(result.matching.size(), 0u);
}

TEST(KeyEquivalenceTest, MatchesOnSharedKey) {
  Relation r = MakeRelation("R", {"id", "a"}, {"id"},
                            {{"1", "x"}, {"2", "y"}});
  Relation s = MakeRelation("S", {"id", "b"}, {"id"},
                            {{"2", "p"}, {"3", "q"}});
  KeyEquivalenceMatcher matcher(AttributeCorrespondence::Identity(r, s));
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  EID_EXPECT_OK(result.applicability);
  ASSERT_EQ(result.matching.size(), 1u);
  EXPECT_EQ(result.matching.pairs()[0], (TuplePair{1, 0}));
}

TEST(KeyEquivalenceTest, UnsoundOnHomonyms) {
  // Fig. 2: identical keys, different entities — key equivalence matches
  // them anyway. Scored against ground truth (no true pairs) it is
  // unsound.
  Relation r = fixtures::Figure2R();
  Relation s = fixtures::Figure2S();
  KeyEquivalenceMatcher matcher(AttributeCorrespondence::Identity(r, s));
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  EID_EXPECT_OK(result.applicability);
  EXPECT_EQ(result.matching.size(), 1u);
  MatchQuality q = Evaluate(result, /*ground_truth=*/{}, r.size(), s.size());
  EXPECT_FALSE(q.Sound());
  EXPECT_EQ(q.false_matches, 1u);
}

TEST(KeyEquivalenceTest, DeclareNonMatchesOption) {
  Relation r = MakeRelation("R", {"id"}, {"id"}, {{"1"}, {"2"}});
  Relation s = MakeRelation("S", {"id"}, {"id"}, {{"2"}});
  KeyEquivalenceOptions opts;
  opts.declare_non_matches = true;
  KeyEquivalenceMatcher matcher(AttributeCorrespondence::Identity(r, s), opts);
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  EXPECT_EQ(result.matching.size(), 1u);
  EXPECT_EQ(result.negative.size(), 1u);
}

TEST(UserSpecifiedTest, MatchesAssertedPairsOnly) {
  Relation r = fixtures::Table1R();
  Relation s = fixtures::Table1S();
  UserSpecifiedMatcher matcher(
      {UserEquivalence{{Value::Str("VillageWok"), Value::Str("Wash.Ave.")},
                       {Value::Str("VillageWok"), Value::Str("Mpls")}}});
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  ASSERT_EQ(result.matching.size(), 1u);
  EXPECT_EQ(result.matching.pairs()[0], (TuplePair{0, 0}));
}

TEST(UserSpecifiedTest, DanglingAssertionFails) {
  Relation r = fixtures::Table1R();
  Relation s = fixtures::Table1S();
  UserSpecifiedMatcher matcher(
      {UserEquivalence{{Value::Str("Ghost"), Value::Str("Nowhere")},
                       {Value::Str("VillageWok"), Value::Str("Mpls")}}});
  EXPECT_EQ(matcher.Match(r, s).status().code(), StatusCode::kNotFound);
}

TEST(SubfieldTest, SplitAndSimilarity) {
  std::vector<std::string> a = SplitSubfields("Village Wok Rest.", true);
  EXPECT_EQ(a, (std::vector<std::string>{"village", "wok", "rest"}));
  std::vector<std::string> b = SplitSubfields("village wok", true);
  EXPECT_NEAR(SubfieldSimilarity(a, b), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(SubfieldSimilarity(a, a), 1.0);
  EXPECT_EQ(SubfieldSimilarity({}, {}), 1.0);
  EXPECT_EQ(SubfieldSimilarity(a, {}), 0.0);
}

TEST(ProbabilisticKeyTest, MatchesApproximateNames) {
  Relation r = MakeRelation("R", {"name"}, {"name"},
                            {{"Village Wok Restaurant"}, {"Old Country"}});
  Relation s = MakeRelation("S", {"name"}, {"name"},
                            {{"village wok restaurant"}, {"Express Cafe"}});
  ProbabilisticKeyOptions opts;
  opts.match_threshold = 0.9;
  ProbabilisticKeyMatcher matcher(AttributeCorrespondence::Identity(r, s),
                                  opts);
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  EID_EXPECT_OK(result.applicability);
  ASSERT_EQ(result.matching.size(), 1u);
  EXPECT_EQ(result.matching.pairs()[0], (TuplePair{0, 0}));
  // Dissimilar pairs are declared non-matching.
  EXPECT_GT(result.negative.size(), 0u);
}

TEST(ProbabilisticKeyTest, RequiresCommonKey) {
  Relation r = fixtures::Table1R();
  Relation s = fixtures::Table1S();
  ProbabilisticKeyMatcher matcher(AttributeCorrespondence::Identity(r, s));
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  EXPECT_EQ(result.applicability.code(), StatusCode::kFailedPrecondition);
}

TEST(ProbabilisticKeyTest, CanProduceErroneousMatches) {
  // "The probabilistic nature of matching may also admit erroneous
  // matching": distinct restaurants with near-identical names.
  Relation r = MakeRelation("R", {"name"}, {"name"}, {{"Twin Cities Cafe"}});
  Relation s = MakeRelation("S", {"name"}, {"name"},
                            {{"Twin Cities Cafe No 2"}});
  ProbabilisticKeyOptions opts;
  opts.match_threshold = 0.5;
  ProbabilisticKeyMatcher matcher(AttributeCorrespondence::Identity(r, s),
                                  opts);
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  ASSERT_EQ(result.matching.size(), 1u);
  MatchQuality q = Evaluate(result, {}, 1, 1);
  EXPECT_EQ(q.false_matches, 1u);
}

TEST(ProbabilisticAttrTest, ComparisonValueWeighsCommonAttributes) {
  Relation r = MakeRelation("R", {"name", "cuisine"}, {"name"},
                            {{"Wok", "Chinese"}});
  Relation s = MakeRelation("S", {"name", "cuisine"}, {"name"},
                            {{"Wok", "Greek"}});
  ProbabilisticAttrMatcher matcher(AttributeCorrespondence::Identity(r, s));
  EID_ASSERT_OK_AND_ASSIGN(double value,
                           matcher.ComparisonValue(r.tuple(0), s.tuple(0)));
  EXPECT_NEAR(value, 0.5, 1e-9);
}

TEST(ProbabilisticAttrTest, ThresholdsSplitThreeWays) {
  Relation r = MakeRelation("R", {"a", "b"}, {"a", "b"},
                            {{"1", "1"}, {"2", "2"}, {"3", "3"}});
  Relation s = MakeRelation("S", {"a", "b"}, {"a", "b"},
                            {{"1", "1"}, {"2", "9"}, {"9", "9"}});
  ProbabilisticAttrOptions opts;
  opts.match_threshold = 1.0;
  opts.non_match_threshold = 0.5;
  ProbabilisticAttrMatcher matcher(AttributeCorrespondence::Identity(r, s),
                                   opts);
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  EXPECT_TRUE(result.matching.Contains(TuplePair{0, 0}));
  // (1,1): half agreement → undetermined (neither table).
  EXPECT_FALSE(result.matching.Contains(TuplePair{1, 1}));
  EXPECT_FALSE(result.negative.Contains(TuplePair{1, 1}));
  // (0,2): zero agreement → non-match.
  EXPECT_TRUE(result.negative.Contains(TuplePair{0, 2}));
}

TEST(ProbabilisticAttrTest, Figure2UnsoundMatch) {
  // The Fig. 2 failure: all common attributes agree, entities differ.
  Relation r = fixtures::Figure2R();
  Relation s = fixtures::Figure2S();
  ProbabilisticAttrMatcher matcher(AttributeCorrespondence::Identity(r, s));
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  EXPECT_EQ(result.matching.size(), 1u);
  MatchQuality q = Evaluate(result, {}, 1, 1);
  EXPECT_FALSE(q.Sound());
}

TEST(ProbabilisticAttrTest, DomainAttributeRestoresSoundnessHere) {
  // With the domain attribute appended (paper §3.2), the comparison value
  // drops below 1 and the unsound match disappears.
  Relation r = fixtures::Figure2RWithDomain();
  Relation s = fixtures::Figure2SWithDomain();
  ProbabilisticAttrMatcher matcher(AttributeCorrespondence::Identity(r, s));
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  EXPECT_EQ(result.matching.size(), 0u);
}

TEST(HeuristicRulesTest, UnvalidatedRuleMatchesAndCanBeUnsound) {
  // Heuristic "same name ⇒ same entity" — invalid as a §3.2 identity rule
  // (it is validated nowhere here) and unsound on homonyms.
  Relation r = MakeRelation("R", {"name", "street"}, {"name", "street"},
                            {{"Wok", "A"}});
  Relation s = MakeRelation("S", {"name", "city"}, {"name", "city"},
                            {{"Wok", "X"}});
  HeuristicRuleMatcher matcher(
      AttributeCorrespondence::Identity(r, s),
      {IdentityRule::KeyEquivalence("same-name", {"name"})});
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  EXPECT_EQ(result.matching.size(), 1u);
  // Against a ground truth where these are different entities:
  MatchQuality q = Evaluate(result, {}, 1, 1);
  EXPECT_FALSE(q.Sound());
}

TEST(HeuristicRulesTest, HeuristicDerivationFeedsRules) {
  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  HeuristicRuleOptions opts;
  opts.heuristics = fixtures::Example2Ilfds();
  HeuristicRuleMatcher matcher(
      AttributeCorrespondence::Identity(r, s),
      {IdentityRule::KeyEquivalence("nc", {"name", "cuisine"})}, opts);
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  ASSERT_EQ(result.matching.size(), 1u);
  EXPECT_EQ(result.matching.pairs()[0], (TuplePair{1, 0}));
}

TEST(IlfdTechniqueTest, AdapterMatchesIdentifier) {
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example3ExtendedKey();
  config.ilfds = fixtures::Example3Ilfds();
  IlfdTechniqueMatcher matcher(config);
  EID_ASSERT_OK_AND_ASSIGN(BaselineResult result, matcher.Match(r, s));
  EID_EXPECT_OK(result.applicability);
  EXPECT_EQ(result.matching.size(), 3u);
  EXPECT_GT(result.negative.size(), 0u);
}

TEST(EvaluateTest, CountsAllCategories) {
  BaselineResult result;
  EID_EXPECT_OK(result.matching.Add(TuplePair{0, 0}));  // true
  EID_EXPECT_OK(result.matching.Add(TuplePair{1, 1}));  // false
  EID_EXPECT_OK(result.negative.Add(TuplePair{0, 1}));  // true non-match
  EID_EXPECT_OK(result.negative.Add(TuplePair{2, 2}));  // false non-match
  std::vector<TuplePair> truth = {{0, 0}, {2, 2}};
  MatchQuality q = Evaluate(result, truth, 3, 3);
  EXPECT_EQ(q.true_matches, 1u);
  EXPECT_EQ(q.false_matches, 1u);
  EXPECT_EQ(q.missed_matches, 1u);
  EXPECT_EQ(q.true_non_matches, 1u);
  EXPECT_EQ(q.false_non_matches, 1u);
  EXPECT_EQ(q.total_pairs, 9u);
  EXPECT_EQ(q.undetermined, 5u);
  EXPECT_FALSE(q.Sound());
  EXPECT_NEAR(q.Precision(), 0.5, 1e-9);
  EXPECT_NEAR(q.Recall(), 0.5, 1e-9);
}

}  // namespace
}  // namespace eid
