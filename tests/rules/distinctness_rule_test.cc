#include "rules/distinctness_rule.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(DistinctnessRuleTest, PaperR3ValidatesAndApplies) {
  // r3: (e1.speciality="Mughalai") ∧ (e2.cuisine≠"Indian") → e1 ≢ e2.
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule r3,
      ParseDistinctnessRule(
          "r3", "e1.speciality = \"Mughalai\" & e2.cuisine != \"Indian\""));
  EID_EXPECT_OK(r3.Validate());

  Relation r = MakeRelation("R", {"speciality"}, {}, {{"Mughalai"}, {"Hunan"}});
  Relation s = MakeRelation("S", {"cuisine"}, {}, {{"Greek"}, {"Indian"}});
  EXPECT_EQ(r3.Applies(r.tuple(0), s.tuple(0)), Truth::kTrue);
  EXPECT_EQ(r3.Applies(r.tuple(0), s.tuple(1)), Truth::kFalse);
  EXPECT_EQ(r3.Applies(r.tuple(1), s.tuple(0)), Truth::kFalse);
}

TEST(DistinctnessRuleTest, MustInvolveBothEntities) {
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule one_sided,
      ParseDistinctnessRule("bad", "e1.speciality = \"Mughalai\""));
  EXPECT_EQ(one_sided.Validate().code(), StatusCode::kInvalidArgument);
  DistinctnessRule empty("empty", {});
  EXPECT_FALSE(empty.Validate().ok());
}

TEST(DistinctnessRuleTest, NullMakesApplicationUnknown) {
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule rule,
      ParseDistinctnessRule(
          "r", "e1.speciality = \"Mughalai\" & e2.cuisine != \"Indian\""));
  Relation r = MakeRelation("R", {"speciality"}, {}, {{"Mughalai"}});
  Relation s("S", Schema::OfStrings({"cuisine"}));
  EID_EXPECT_OK(s.Insert(Row{Value::Null()}));
  EXPECT_EQ(rule.Applies(r.tuple(0), s.tuple(0)), Truth::kUnknown);
}

TEST(Proposition1Test, IlfdToDistinctnessRule) {
  EID_ASSERT_OK_AND_ASSIGN(Ilfd ilfd,
                           ParseIlfd("speciality=Mughalai -> cuisine=Indian"));
  EID_ASSERT_OK_AND_ASSIGN(DistinctnessRule rule,
                           DistinctnessRuleFromIlfd(ilfd));
  EID_EXPECT_OK(rule.Validate());
  ASSERT_EQ(rule.predicates().size(), 2u);
  // Antecedent equality on e1, consequent inequality on e2.
  EXPECT_EQ(rule.predicates()[0].lhs.entity, 1);
  EXPECT_EQ(rule.predicates()[0].op, CompareOp::kEq);
  EXPECT_EQ(rule.predicates()[1].lhs.entity, 2);
  EXPECT_EQ(rule.predicates()[1].op, CompareOp::kNe);
}

TEST(Proposition1Test, RoundTripsBothDirections) {
  EID_ASSERT_OK_AND_ASSIGN(
      Ilfd ilfd, ParseIlfd("name=TwinCities & street=Co.B2 -> speciality=Hunan"));
  EID_ASSERT_OK_AND_ASSIGN(DistinctnessRule rule,
                           DistinctnessRuleFromIlfd(ilfd));
  EID_ASSERT_OK_AND_ASSIGN(Ilfd back, IlfdFromDistinctnessRule(rule));
  EXPECT_EQ(ilfd, back);
}

TEST(Proposition1Test, MultiConsequentIlfdRejected) {
  EID_ASSERT_OK_AND_ASSIGN(Ilfd multi, ParseIlfd("a=1 -> b=2 & c=3"));
  EXPECT_FALSE(DistinctnessRuleFromIlfd(multi).ok());
}

TEST(Proposition1Test, NonInducedShapesRejected) {
  // Attribute-attribute predicate: not ILFD-induced.
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule attr_attr,
      ParseDistinctnessRule("x", "e1.a = e2.a & e2.b != \"v\""));
  EXPECT_FALSE(IlfdFromDistinctnessRule(attr_attr).ok());
  // Two e2 inequalities.
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule two_ne,
      ParseDistinctnessRule(
          "y", "e1.a = \"1\" & e2.b != \"2\" & e2.c != \"3\""));
  EXPECT_FALSE(IlfdFromDistinctnessRule(two_ne).ok());
  // Missing the e2 inequality.
  EID_ASSERT_OK_AND_ASSIGN(DistinctnessRule no_ne,
                           ParseDistinctnessRule("z", "e1.a = \"1\""));
  EXPECT_FALSE(IlfdFromDistinctnessRule(no_ne).ok());
}

TEST(Proposition1Test, InducedRuleSemanticsMatchIlfd) {
  // Applying the induced rule to Example 2's data flags exactly the
  // Table 4 pair: R's (TwinCities, Chinese) vs S's (TwinCities, Mughalai).
  EID_ASSERT_OK_AND_ASSIGN(Ilfd ilfd,
                           ParseIlfd("speciality=Mughalai -> cuisine=Indian"));
  EID_ASSERT_OK_AND_ASSIGN(DistinctnessRule rule,
                           DistinctnessRuleFromIlfd(ilfd));
  // e1 = S tuple (has speciality), e2 = R tuple (has cuisine).
  Relation s = MakeRelation("S", {"name", "speciality"}, {},
                            {{"TwinCities", "Mughalai"}});
  Relation r = MakeRelation("R", {"name", "cuisine"}, {},
                            {{"TwinCities", "Chinese"},
                             {"TwinCities", "Indian"}});
  EXPECT_EQ(rule.Applies(s.tuple(0), r.tuple(0)), Truth::kTrue);
  EXPECT_EQ(rule.Applies(s.tuple(0), r.tuple(1)), Truth::kFalse);
}

TEST(DistinctnessRuleTest, ToStringShowsInequality) {
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule rule,
      ParseDistinctnessRule("r", "e1.a = \"1\" & e2.b != \"2\""));
  EXPECT_NE(rule.ToString().find("-> e1 != e2"), std::string::npos);
}

}  // namespace
}  // namespace eid
