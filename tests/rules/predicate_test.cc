#include "rules/predicate.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(TruthTest, KleeneConjunction) {
  EXPECT_EQ(And(Truth::kTrue, Truth::kTrue), Truth::kTrue);
  EXPECT_EQ(And(Truth::kTrue, Truth::kFalse), Truth::kFalse);
  EXPECT_EQ(And(Truth::kFalse, Truth::kUnknown), Truth::kFalse);
  EXPECT_EQ(And(Truth::kTrue, Truth::kUnknown), Truth::kUnknown);
  EXPECT_EQ(And(Truth::kUnknown, Truth::kUnknown), Truth::kUnknown);
}

TEST(TruthTest, KleeneNegation) {
  EXPECT_EQ(Not(Truth::kTrue), Truth::kFalse);
  EXPECT_EQ(Not(Truth::kFalse), Truth::kTrue);
  EXPECT_EQ(Not(Truth::kUnknown), Truth::kUnknown);
}

TEST(CompareValuesTest, NullIsUnknownForEveryOp) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kGt, CompareOp::kLe, CompareOp::kGe}) {
    EXPECT_EQ(CompareValues(Value::Null(), op, Value::Int(1)), Truth::kUnknown);
    EXPECT_EQ(CompareValues(Value::Int(1), op, Value::Null()), Truth::kUnknown);
    EXPECT_EQ(CompareValues(Value::Null(), op, Value::Null()), Truth::kUnknown);
  }
}

TEST(CompareValuesTest, NumericComparisonsMixIntAndDouble) {
  EXPECT_EQ(CompareValues(Value::Int(2), CompareOp::kLt, Value::Double(2.5)),
            Truth::kTrue);
  EXPECT_EQ(CompareValues(Value::Double(3.0), CompareOp::kGe, Value::Int(3)),
            Truth::kTrue);
  // Note: = between int and double uses storage equality (type-sensitive).
  EXPECT_EQ(CompareValues(Value::Int(3), CompareOp::kEq, Value::Double(3.0)),
            Truth::kFalse);
}

TEST(CompareValuesTest, StringOrdering) {
  EXPECT_EQ(CompareValues(Value::Str("abc"), CompareOp::kLt, Value::Str("abd")),
            Truth::kTrue);
  EXPECT_EQ(CompareValues(Value::Str("x"), CompareOp::kEq, Value::Str("x")),
            Truth::kTrue);
  EXPECT_EQ(CompareValues(Value::Str("x"), CompareOp::kNe, Value::Str("y")),
            Truth::kTrue);
}

TEST(CompareValuesTest, CrossKindComparison) {
  EXPECT_EQ(CompareValues(Value::Str("1"), CompareOp::kEq, Value::Int(1)),
            Truth::kFalse);
  EXPECT_EQ(CompareValues(Value::Str("1"), CompareOp::kNe, Value::Int(1)),
            Truth::kTrue);
  EXPECT_EQ(CompareValues(Value::Str("1"), CompareOp::kLt, Value::Int(2)),
            Truth::kUnknown);
}

TEST(PredicateTest, EntityAttributeVsConstant) {
  Relation r = MakeRelation("R", {"cuisine"}, {}, {{"Chinese"}});
  Relation s = MakeRelation("S", {"cuisine"}, {}, {{"Greek"}});
  Predicate p{Operand::Attr(1, "cuisine"), CompareOp::kEq,
              Operand::Const(Value::Str("Chinese"))};
  EXPECT_EQ(p.Evaluate(r.tuple(0), s.tuple(0)), Truth::kTrue);
  Predicate q{Operand::Attr(2, "cuisine"), CompareOp::kEq,
              Operand::Const(Value::Str("Chinese"))};
  EXPECT_EQ(q.Evaluate(r.tuple(0), s.tuple(0)), Truth::kFalse);
}

TEST(PredicateTest, AttributeVsAttributeAcrossEntities) {
  Relation r = MakeRelation("R", {"name"}, {}, {{"Wok"}});
  Relation s = MakeRelation("S", {"name"}, {}, {{"Wok"}});
  Predicate p{Operand::Attr(1, "name"), CompareOp::kEq,
              Operand::Attr(2, "name")};
  EXPECT_EQ(p.Evaluate(r.tuple(0), s.tuple(0)), Truth::kTrue);
}

TEST(PredicateTest, MissingAttributeIsUnknown) {
  Relation r = MakeRelation("R", {"name"}, {}, {{"Wok"}});
  Relation s = MakeRelation("S", {"name"}, {}, {{"Wok"}});
  Predicate p{Operand::Attr(1, "cuisine"), CompareOp::kEq,
              Operand::Const(Value::Str("Chinese"))};
  EXPECT_EQ(p.Evaluate(r.tuple(0), s.tuple(0)), Truth::kUnknown);
}

TEST(PredicateTest, ConjunctionShortCircuitsOnFalse) {
  Relation r = MakeRelation("R", {"a", "b"}, {}, {{"1", "2"}});
  Relation s = MakeRelation("S", {"a"}, {}, {{"1"}});
  std::vector<Predicate> conj = {
      // False:
      Predicate{Operand::Attr(1, "a"), CompareOp::kEq,
                Operand::Const(Value::Str("9"))},
      // Would be unknown:
      Predicate{Operand::Attr(2, "zzz"), CompareOp::kEq,
                Operand::Const(Value::Str("1"))}};
  EXPECT_EQ(EvaluateConjunction(conj, r.tuple(0), s.tuple(0)), Truth::kFalse);
}

TEST(PredicateTest, ConjunctionUnknownPropagates) {
  Relation r = MakeRelation("R", {"a"}, {}, {{"1"}});
  Relation s = MakeRelation("S", {"a"}, {}, {{"1"}});
  std::vector<Predicate> conj = {
      Predicate{Operand::Attr(1, "a"), CompareOp::kEq, Operand::Attr(2, "a")},
      Predicate{Operand::Attr(1, "missing"), CompareOp::kEq,
                Operand::Attr(2, "a")}};
  EXPECT_EQ(EvaluateConjunction(conj, r.tuple(0), s.tuple(0)),
            Truth::kUnknown);
}

TEST(PredicateTest, ToStringForms) {
  Predicate p{Operand::Attr(1, "cuisine"), CompareOp::kNe,
              Operand::Const(Value::Str("Indian"))};
  EXPECT_EQ(p.ToString(), "e1.cuisine != \"Indian\"");
  Predicate q{Operand::Attr(2, "n"), CompareOp::kLe,
              Operand::Const(Value::Int(5))};
  EXPECT_EQ(q.ToString(), "e2.n <= 5");
}

}  // namespace
}  // namespace eid
