#include "rules/identity_rule.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace eid {
namespace {

using ::eid::testing::MakeRelation;

TEST(IdentityRuleTest, PaperR1IsValid) {
  // r1: (e1.cuisine="Chinese") ∧ (e2.cuisine="Chinese") → e1 ≡ e2.
  EID_ASSERT_OK_AND_ASSIGN(
      IdentityRule r1,
      ParseIdentityRule(
          "r1", "e1.cuisine = \"Chinese\" & e2.cuisine = \"Chinese\""));
  EID_EXPECT_OK(r1.Validate());
}

TEST(IdentityRuleTest, PaperR2IsInvalid) {
  // r2: (e1.cuisine="Chinese") → e1 ≡ e2 — does not imply
  // e2.cuisine = e1.cuisine.
  EID_ASSERT_OK_AND_ASSIGN(
      IdentityRule r2, ParseIdentityRule("r2", "e1.cuisine = \"Chinese\""));
  Status st = r2.Validate();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("e2.cuisine"), std::string::npos);
}

TEST(IdentityRuleTest, KeyEquivalenceFactoryValidates) {
  IdentityRule rule =
      IdentityRule::KeyEquivalence("ext", {"name", "cuisine", "speciality"});
  EID_EXPECT_OK(rule.Validate());
  EXPECT_EQ(rule.predicates().size(), 3u);
}

TEST(IdentityRuleTest, TransitiveEqualityThroughSharedConstant) {
  // e1.a = "X" and e2.a = "X" forces e1.a = e2.a transitively.
  EID_ASSERT_OK_AND_ASSIGN(
      IdentityRule rule,
      ParseIdentityRule("t", "e1.a = \"X\" & e2.a = \"X\""));
  EID_EXPECT_OK(rule.Validate());
}

TEST(IdentityRuleTest, TransitiveEqualityThroughAttributeChain) {
  // e1.a = e1.b & e1.b = e2.a & e2.a = e2.b — forces a and b equal across.
  EID_ASSERT_OK_AND_ASSIGN(
      IdentityRule rule,
      ParseIdentityRule("chain",
                        "e1.a = e1.b & e1.b = e2.a & e2.a = e2.b"));
  EID_EXPECT_OK(rule.Validate());
}

TEST(IdentityRuleTest, InequalityPredicatesDoNotEstablishEquality) {
  EID_ASSERT_OK_AND_ASSIGN(
      IdentityRule rule,
      ParseIdentityRule("bad", "e1.n <= e2.n & e2.n <= e1.n"));
  // Semantically this implies equality, but the syntactic congruence
  // check (deliberately conservative) rejects it.
  EXPECT_FALSE(rule.Validate().ok());
}

TEST(IdentityRuleTest, UnsatisfiableAntecedentIsVacuouslyValid) {
  EID_ASSERT_OK_AND_ASSIGN(
      IdentityRule rule,
      ParseIdentityRule("vac", "e1.a = \"X\" & e1.a = \"Y\" & e2.b = \"Z\""));
  EXPECT_TRUE(rule.IsVacuous());
  EID_EXPECT_OK(rule.Validate());
}

TEST(IdentityRuleTest, EmptyRuleInvalid) {
  IdentityRule rule("empty", {});
  EXPECT_FALSE(rule.Validate().ok());
}

TEST(IdentityRuleTest, MatchesEvaluatesThreeValued) {
  IdentityRule rule = IdentityRule::KeyEquivalence("k", {"name", "cuisine"});
  Relation r = MakeRelation("R", {"name", "cuisine"}, {},
                            {{"Wok", "Chinese"}});
  Relation s = MakeRelation("S", {"name", "cuisine"}, {},
                            {{"Wok", "Chinese"}, {"Wok", "Greek"}});
  Relation s_null("S2", Schema::OfStrings({"name", "cuisine"}));
  EID_EXPECT_OK(s_null.Insert(Row{Value::Str("Wok"), Value::Null()}));

  EXPECT_EQ(rule.Matches(r.tuple(0), s.tuple(0)), Truth::kTrue);
  EXPECT_EQ(rule.Matches(r.tuple(0), s.tuple(1)), Truth::kFalse);
  EXPECT_EQ(rule.Matches(r.tuple(0), s_null.tuple(0)), Truth::kUnknown);
}

TEST(IdentityRuleTest, ReferencedAttributesSortedUnique) {
  EID_ASSERT_OK_AND_ASSIGN(
      IdentityRule rule,
      ParseIdentityRule("t", "e1.b = e2.b & e1.a = e2.a & e1.b = e2.b"));
  EXPECT_EQ(rule.ReferencedAttributes(),
            (std::vector<std::string>{"a", "b"}));
}

TEST(IdentityRuleParserTest, OperatorsAndConstants) {
  EID_ASSERT_OK_AND_ASSIGN(
      IdentityRule rule,
      ParseIdentityRule("ops", "e1.n >= 3 & e2.x != \"a b\" & e1.d = 2.5"));
  ASSERT_EQ(rule.predicates().size(), 3u);
  EXPECT_EQ(rule.predicates()[0].op, CompareOp::kGe);
  EXPECT_EQ(rule.predicates()[0].rhs.constant.AsInt(), 3);
  EXPECT_EQ(rule.predicates()[1].op, CompareOp::kNe);
  EXPECT_EQ(rule.predicates()[1].rhs.constant.AsString(), "a b");
  EXPECT_EQ(rule.predicates()[2].rhs.constant.AsDouble(), 2.5);
}

TEST(IdentityRuleParserTest, Errors) {
  EXPECT_FALSE(ParseIdentityRule("x", "").ok());
  EXPECT_FALSE(ParseIdentityRule("x", "e1.a e2.a").ok());
  EXPECT_FALSE(ParseIdentityRule("x", "e1.a = e2.a &").ok());
}

TEST(IdentityRuleTest, ToStringShowsImplication) {
  IdentityRule rule = IdentityRule::KeyEquivalence("k", {"name"});
  EXPECT_EQ(rule.ToString(), "(e1.name = e2.name) -> e1 == e2");
}

}  // namespace
}  // namespace eid
