// Differential property test for the compiled execution path: with
// `MatcherOptions::compile` on, `Identify` must produce an
// IdentificationResult bit-identical to the per-tuple interpreter —
// extended rows, derivation traces with provenance, MT/NMT contents and
// order, evidence, verdicts, partition and every deterministic stage
// counter — across DerivationMode × ConflictPolicy × thread counts, on
// generated worlds and on worlds with injected ILFD conflicts. The same
// contract is checked for IncrementalIdentifier under inserts and
// deletes. This test runs under the tsan/asan presets (scripts/check.sh).

#include <gtest/gtest.h>

#include "../test_util.h"
#include "eid/identifier.h"
#include "eid/incremental.h"
#include "workload/generator.h"

namespace eid {
namespace {

GeneratedWorld MakeWorld(double coverage, uint64_t seed) {
  GeneratorConfig gen;
  gen.seed = seed;
  gen.overlap_entities = 120;
  gen.r_only_entities = 60;
  gen.s_only_entities = 60;
  gen.name_pool = 96;
  gen.street_pool = 128;
  gen.cities = 16;
  gen.speciality_pool = 64;
  gen.cuisines = 8;
  gen.ilfd_coverage = coverage;
  Result<GeneratedWorld> world = GenerateWorld(gen);
  EID_CHECK(world.ok());
  return std::move(world).value();
}

/// The determinism_test rule program: an indexed identity rule, a
/// constant-only identity rule, an explicit distinctness rule and the
/// Proposition 1 rules, so every compiled artifact kind participates.
IdentifierConfig WorldConfig(const GeneratedWorld& world, int threads,
                             bool compile) {
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  config.identity_rules.push_back(
      IdentityRule::KeyEquivalence("key_eq", {"name", "speciality"}));
  EID_CHECK(config.identity_rules.back().Validate().ok());
  Result<IdentityRule> const_rule = ParseIdentityRule(
      "const_pair",
      "e1.speciality = \"Speciality0\" & e2.speciality = \"Speciality0\"");
  EID_CHECK(const_rule.ok());
  config.identity_rules.push_back(*const_rule);
  Result<DistinctnessRule> distinct = ParseDistinctnessRule(
      "cuisine_clash", "e1.cuisine = \"Cuisine0\" & e2.cuisine = \"Cuisine1\"");
  EID_CHECK(distinct.ok());
  config.distinctness_rules.push_back(*distinct);
  config.distinctness_from_ilfds = true;
  config.matcher_options.threads = threads;
  config.matcher_options.compile = compile;
  return config;
}

void ExpectDerivationsEqual(const std::vector<Derivation>& a,
                            const std::vector<Derivation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].derived, b[i].derived) << "tuple " << i;
    ASSERT_EQ(a[i].steps.size(), b[i].steps.size()) << "tuple " << i;
    for (size_t k = 0; k < a[i].steps.size(); ++k) {
      EXPECT_EQ(a[i].steps[k].attribute, b[i].steps[k].attribute);
      EXPECT_EQ(a[i].steps[k].value, b[i].steps[k].value);
      EXPECT_EQ(a[i].steps[k].ilfd_index, b[i].steps[k].ilfd_index);
    }
    ASSERT_EQ(a[i].conflicts.size(), b[i].conflicts.size()) << "tuple " << i;
    for (size_t k = 0; k < a[i].conflicts.size(); ++k) {
      EXPECT_EQ(a[i].conflicts[k].attribute, b[i].conflicts[k].attribute);
      EXPECT_EQ(a[i].conflicts[k].first_value, b[i].conflicts[k].first_value);
      EXPECT_EQ(a[i].conflicts[k].second_value,
                b[i].conflicts[k].second_value);
      EXPECT_EQ(a[i].conflicts[k].first_ilfd, b[i].conflicts[k].first_ilfd);
      EXPECT_EQ(a[i].conflicts[k].second_ilfd, b[i].conflicts[k].second_ilfd);
    }
  }
}

/// `a` is the interpreter run, `b` the compiled run.
void ExpectIdentical(const IdentificationResult& a,
                     const IdentificationResult& b) {
  EXPECT_EQ(a.r_extended.rows(), b.r_extended.rows());
  EXPECT_EQ(a.s_extended.rows(), b.s_extended.rows());
  ExpectDerivationsEqual(a.r_traces, b.r_traces);
  ExpectDerivationsEqual(a.s_traces, b.s_traces);
  EXPECT_EQ(a.matching.pairs(), b.matching.pairs());
  EXPECT_EQ(a.negative.table.pairs(), b.negative.table.pairs());
  ASSERT_EQ(a.negative.evidence.size(), b.negative.evidence.size());
  for (size_t i = 0; i < a.negative.evidence.size(); ++i) {
    EXPECT_EQ(a.negative.evidence[i].pair, b.negative.evidence[i].pair);
    EXPECT_EQ(a.negative.evidence[i].rule_index,
              b.negative.evidence[i].rule_index);
    EXPECT_EQ(a.negative.evidence[i].flipped, b.negative.evidence[i].flipped);
  }
  EXPECT_EQ(a.uniqueness, b.uniqueness);
  EXPECT_EQ(a.consistency, b.consistency);
  EXPECT_EQ(a.partition.matched, b.partition.matched);
  EXPECT_EQ(a.partition.non_matched, b.partition.non_matched);
  EXPECT_EQ(a.partition.undetermined, b.partition.undetermined);
  EXPECT_EQ(a.partition.total, b.partition.total);
  // Deterministic stage counters must agree between the two engines (the
  // compiled-only compile_ms / memo_* / interner fields and wall_ms are
  // the only intentional differences).
  ASSERT_EQ(a.stats.stages().size(), b.stats.stages().size());
  for (size_t i = 0; i < a.stats.stages().size(); ++i) {
    const exec::StageStats& sa = a.stats.stages()[i];
    const exec::StageStats& sb = b.stats.stages()[i];
    EXPECT_EQ(sa.stage, sb.stage);
    EXPECT_EQ(sa.items, sb.items) << sa.stage;
    EXPECT_EQ(sa.values_derived, sb.values_derived) << sa.stage;
    EXPECT_EQ(sa.candidate_pairs, sb.candidate_pairs) << sa.stage;
    EXPECT_EQ(sa.cross_product, sb.cross_product) << sa.stage;
    EXPECT_EQ(sa.rule_evals, sb.rule_evals) << sa.stage;
  }
}

/// Like ExpectIdentical minus the stage-counter block: the staged and
/// exhaustive engines must agree on every result bit while intentionally
/// differing in candidate_pairs / rule_evals — that gap *is* the
/// optimization being verified.
void ExpectSameOutcome(const IdentificationResult& a,
                       const IdentificationResult& b) {
  EXPECT_EQ(a.r_extended.rows(), b.r_extended.rows());
  EXPECT_EQ(a.s_extended.rows(), b.s_extended.rows());
  ExpectDerivationsEqual(a.r_traces, b.r_traces);
  ExpectDerivationsEqual(a.s_traces, b.s_traces);
  EXPECT_EQ(a.matching.pairs(), b.matching.pairs());
  EXPECT_EQ(a.negative.table.pairs(), b.negative.table.pairs());
  ASSERT_EQ(a.negative.evidence.size(), b.negative.evidence.size());
  for (size_t i = 0; i < a.negative.evidence.size(); ++i) {
    EXPECT_EQ(a.negative.evidence[i].pair, b.negative.evidence[i].pair);
    EXPECT_EQ(a.negative.evidence[i].rule_index,
              b.negative.evidence[i].rule_index);
    EXPECT_EQ(a.negative.evidence[i].flipped, b.negative.evidence[i].flipped);
  }
  EXPECT_EQ(a.uniqueness, b.uniqueness);
  EXPECT_EQ(a.consistency, b.consistency);
  EXPECT_EQ(a.partition.matched, b.partition.matched);
  EXPECT_EQ(a.partition.non_matched, b.partition.non_matched);
  EXPECT_EQ(a.partition.undetermined, b.partition.undetermined);
  EXPECT_EQ(a.partition.total, b.partition.total);
}

void SetDerivation(IdentifierConfig* config, DerivationMode mode,
                   ConflictPolicy policy) {
  config->matcher_options.extension.derivation.mode = mode;
  config->matcher_options.extension.derivation.conflict_policy = policy;
}

class DifferentialTest : public ::testing::TestWithParam<double> {};

TEST_P(DifferentialTest, CompiledIdentifyMatchesInterpreter) {
  GeneratedWorld world = MakeWorld(GetParam(), /*seed=*/11);
  for (DerivationMode mode :
       {DerivationMode::kExhaustive, DerivationMode::kFirstMatch}) {
    for (int threads : {1, 8}) {
      SCOPED_TRACE(std::string(mode == DerivationMode::kExhaustive
                                   ? "exhaustive"
                                   : "first_match") +
                   " threads=" + std::to_string(threads));
      IdentifierConfig interp = WorldConfig(world, threads, /*compile=*/false);
      IdentifierConfig comp = WorldConfig(world, threads, /*compile=*/true);
      SetDerivation(&interp, mode, ConflictPolicy::kError);
      SetDerivation(&comp, mode, ConflictPolicy::kError);
      EntityIdentifier interpreter(interp);
      EID_ASSERT_OK_AND_ASSIGN(IdentificationResult reference,
                               interpreter.Identify(world.r, world.s));
      // Sanity: the run exercises all three regions.
      EXPECT_GT(reference.matching.size(), 0u);
      EXPECT_GT(reference.negative.table.size(), 0u);
      EntityIdentifier compiled(comp);
      EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                               compiled.Identify(world.r, world.s));
      ExpectIdentical(reference, result);
    }
  }
}

TEST_P(DifferentialTest, StagedIdentifyMatchesExhaustiveOracle) {
  GeneratedWorld world = MakeWorld(GetParam(), /*seed=*/13);
  for (bool compile : {false, true}) {
    for (DerivationMode mode :
         {DerivationMode::kExhaustive, DerivationMode::kFirstMatch}) {
      for (int threads : {1, 8}) {
        SCOPED_TRACE(std::string(compile ? "compiled" : "interpreted") +
                     (mode == DerivationMode::kExhaustive ? " exhaustive"
                                                          : " first_match") +
                     " threads=" + std::to_string(threads));
        IdentifierConfig oracle_cfg = WorldConfig(world, threads, compile);
        IdentifierConfig staged_cfg = WorldConfig(world, threads, compile);
        oracle_cfg.matcher_options.staged = false;
        staged_cfg.matcher_options.staged = true;
        SetDerivation(&oracle_cfg, mode, ConflictPolicy::kError);
        SetDerivation(&staged_cfg, mode, ConflictPolicy::kError);
        EntityIdentifier oracle(oracle_cfg);
        EID_ASSERT_OK_AND_ASSIGN(IdentificationResult reference,
                                 oracle.Identify(world.r, world.s));
        EXPECT_GT(reference.matching.size(), 0u);
        EXPECT_GT(reference.negative.table.size(), 0u);
        EntityIdentifier staged(staged_cfg);
        EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                                 staged.Identify(world.r, world.s));
        ExpectSameOutcome(reference, result);
        // The point of the staged pipeline: on this blocked world it must
        // evaluate strictly fewer identity candidates than the cross
        // product the oracle sweeps.
        for (const exec::StageStats& stage : result.stats.stages()) {
          if (stage.stage == "identity_rules") {
            EXPECT_LT(stage.candidate_pairs, stage.cross_product);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Coverage, DifferentialTest,
                         ::testing::Values(1.0, 0.6),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return info.param == 1.0 ? "full_coverage"
                                                    : "partial_coverage";
                         });

/// Injects an ILFD contradicting the generated street -> city rules, so
/// exhaustive derivation hits real conflicts on the R side (R carries
/// street; full coverage guarantees a competing city rule for the chosen
/// street value).
IlfdSet InjectConflict(const GeneratedWorld& world) {
  std::optional<size_t> street = world.r.schema().IndexOf("street");
  EID_CHECK(street.has_value());
  Value v;
  for (const Row& row : world.r.rows()) {
    if (!row[*street].is_null()) {
      v = row[*street];
      break;
    }
  }
  EID_CHECK(!v.is_null());
  IlfdSet ilfds = world.ilfds;
  ilfds.Add(Ilfd::Implies({Atom{"street", v}},
                          Atom{"city", Value::String("Nowhere")}));
  return ilfds;
}

TEST(DifferentialConflictTest, PoliciesMatchInterpreter) {
  GeneratedWorld world = MakeWorld(/*coverage=*/1.0, /*seed=*/23);
  IlfdSet conflicting = InjectConflict(world);
  for (ConflictPolicy policy :
       {ConflictPolicy::kKeepFirst, ConflictPolicy::kNullOut}) {
    for (int threads : {1, 8}) {
      SCOPED_TRACE(std::string(policy == ConflictPolicy::kKeepFirst
                                   ? "keep_first"
                                   : "null_out") +
                   " threads=" + std::to_string(threads));
      IdentifierConfig interp = WorldConfig(world, threads, /*compile=*/false);
      IdentifierConfig comp = WorldConfig(world, threads, /*compile=*/true);
      interp.ilfds = conflicting;
      comp.ilfds = conflicting;
      SetDerivation(&interp, DerivationMode::kExhaustive, policy);
      SetDerivation(&comp, DerivationMode::kExhaustive, policy);
      EntityIdentifier interpreter(interp);
      EID_ASSERT_OK_AND_ASSIGN(IdentificationResult reference,
                               interpreter.Identify(world.r, world.s));
      // The injected rule must actually conflict somewhere.
      size_t conflicts = 0;
      for (const Derivation& d : reference.r_traces) {
        conflicts += d.conflicts.size();
      }
      EXPECT_GT(conflicts, 0u);
      EntityIdentifier compiled(comp);
      EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                               compiled.Identify(world.r, world.s));
      ExpectIdentical(reference, result);
    }
  }
}

TEST(DifferentialConflictTest, ErrorPolicyProducesIdenticalStatus) {
  GeneratedWorld world = MakeWorld(/*coverage=*/1.0, /*seed=*/23);
  IlfdSet conflicting = InjectConflict(world);
  for (int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    IdentifierConfig interp = WorldConfig(world, threads, /*compile=*/false);
    IdentifierConfig comp = WorldConfig(world, threads, /*compile=*/true);
    interp.ilfds = conflicting;
    comp.ilfds = conflicting;
    SetDerivation(&interp, DerivationMode::kExhaustive,
                  ConflictPolicy::kError);
    SetDerivation(&comp, DerivationMode::kExhaustive, ConflictPolicy::kError);
    EntityIdentifier interpreter(interp);
    Result<IdentificationResult> reference =
        interpreter.Identify(world.r, world.s);
    ASSERT_FALSE(reference.ok());
    EntityIdentifier compiled(comp);
    Result<IdentificationResult> result = compiled.Identify(world.r, world.s);
    ASSERT_FALSE(result.ok());
    // Same error, byte for byte — the message cites the conflicting
    // attribute, both values, both provenances and the tuple display.
    EXPECT_EQ(reference.status().ToString(), result.status().ToString());
  }
}

TEST(DifferentialConflictTest, FirstMatchCutOrderMatchesInterpreter) {
  // Under kFirstMatch the injected rule exercises the Prolog-cut rule
  // order instead of conflicting: declaration order decides, identically
  // in both engines.
  GeneratedWorld world = MakeWorld(/*coverage=*/1.0, /*seed=*/23);
  IlfdSet conflicting = InjectConflict(world);
  for (int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    IdentifierConfig interp = WorldConfig(world, threads, /*compile=*/false);
    IdentifierConfig comp = WorldConfig(world, threads, /*compile=*/true);
    interp.ilfds = conflicting;
    comp.ilfds = conflicting;
    SetDerivation(&interp, DerivationMode::kFirstMatch,
                  ConflictPolicy::kError);
    SetDerivation(&comp, DerivationMode::kFirstMatch, ConflictPolicy::kError);
    EntityIdentifier interpreter(interp);
    EID_ASSERT_OK_AND_ASSIGN(IdentificationResult reference,
                             interpreter.Identify(world.r, world.s));
    EntityIdentifier compiled(comp);
    EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                             compiled.Identify(world.r, world.s));
    ExpectIdentical(reference, result);
  }
}

TEST(DifferentialConflictTest, StagedPoliciesMatchExhaustiveOracle) {
  GeneratedWorld world = MakeWorld(/*coverage=*/1.0, /*seed=*/23);
  IlfdSet conflicting = InjectConflict(world);
  for (ConflictPolicy policy :
       {ConflictPolicy::kKeepFirst, ConflictPolicy::kNullOut}) {
    for (int threads : {1, 8}) {
      SCOPED_TRACE(std::string(policy == ConflictPolicy::kKeepFirst
                                   ? "keep_first"
                                   : "null_out") +
                   " threads=" + std::to_string(threads));
      IdentifierConfig oracle_cfg =
          WorldConfig(world, threads, /*compile=*/true);
      IdentifierConfig staged_cfg =
          WorldConfig(world, threads, /*compile=*/true);
      oracle_cfg.ilfds = conflicting;
      staged_cfg.ilfds = conflicting;
      oracle_cfg.matcher_options.staged = false;
      staged_cfg.matcher_options.staged = true;
      SetDerivation(&oracle_cfg, DerivationMode::kExhaustive, policy);
      SetDerivation(&staged_cfg, DerivationMode::kExhaustive, policy);
      EntityIdentifier oracle(oracle_cfg);
      EID_ASSERT_OK_AND_ASSIGN(IdentificationResult reference,
                               oracle.Identify(world.r, world.s));
      EntityIdentifier staged(staged_cfg);
      EID_ASSERT_OK_AND_ASSIGN(IdentificationResult result,
                               staged.Identify(world.r, world.s));
      ExpectSameOutcome(reference, result);
    }
  }
}

Relation EmptyLike(const Relation& model) {
  Relation out(model.name(), model.schema());
  for (const KeyDef& k : model.keys()) {
    std::vector<std::string> names;
    for (size_t i : k.attribute_indices) {
      names.push_back(model.schema().attribute(i).name);
    }
    EXPECT_TRUE(out.DeclareKey(names).ok());
  }
  return out;
}

TEST(DifferentialIncrementalTest, CompiledMatchesInterpreterUnderUpdates) {
  GeneratedWorld world = MakeWorld(/*coverage=*/0.6, /*seed=*/31);
  IdentifierConfig interp = WorldConfig(world, /*threads=*/1,
                                        /*compile=*/false);
  IdentifierConfig comp = WorldConfig(world, /*threads=*/1, /*compile=*/true);
  EID_ASSERT_OK_AND_ASSIGN(
      IncrementalIdentifier a,
      IncrementalIdentifier::Create(interp, EmptyLike(world.r),
                                    EmptyLike(world.s)));
  EID_ASSERT_OK_AND_ASSIGN(
      IncrementalIdentifier b,
      IncrementalIdentifier::Create(comp, EmptyLike(world.r),
                                    EmptyLike(world.s)));
  std::vector<size_t> r_ids, s_ids;
  for (const Row& row : world.r.rows()) {
    EID_ASSERT_OK_AND_ASSIGN(size_t id_a, a.InsertR(row));
    EID_ASSERT_OK_AND_ASSIGN(size_t id_b, b.InsertR(row));
    EXPECT_EQ(id_a, id_b);
    r_ids.push_back(id_a);
  }
  for (const Row& row : world.s.rows()) {
    EID_ASSERT_OK_AND_ASSIGN(size_t id_a, a.InsertS(row));
    EID_ASSERT_OK_AND_ASSIGN(size_t id_b, b.InsertS(row));
    EXPECT_EQ(id_a, id_b);
    s_ids.push_back(id_a);
  }
  // Churn: delete a spread of tuples from both sides.
  for (size_t i = 0; i < r_ids.size(); i += 7) {
    EID_EXPECT_OK(a.DeleteR(r_ids[i]));
    EID_EXPECT_OK(b.DeleteR(r_ids[i]));
  }
  for (size_t i = 0; i < s_ids.size(); i += 5) {
    EID_EXPECT_OK(a.DeleteS(s_ids[i]));
    EID_EXPECT_OK(b.DeleteS(s_ids[i]));
  }
  EXPECT_EQ(a.r_size(), b.r_size());
  EXPECT_EQ(a.s_size(), b.s_size());
  // Extended state, matching table (contents and order), partition,
  // verdicts and per-pair decisions all agree.
  EXPECT_EQ(a.LiveR().rows(), b.LiveR().rows());
  EXPECT_EQ(a.LiveS().rows(), b.LiveS().rows());
  EID_ASSERT_OK_AND_ASSIGN(Relation mt_a, a.MatchingRelation());
  EID_ASSERT_OK_AND_ASSIGN(Relation mt_b, b.MatchingRelation());
  EXPECT_EQ(mt_a.rows(), mt_b.rows());
  EXPECT_GT(mt_a.size(), 0u);
  EXPECT_EQ(a.Partition().matched, b.Partition().matched);
  EXPECT_EQ(a.Partition().non_matched, b.Partition().non_matched);
  EXPECT_EQ(a.Partition().undetermined, b.Partition().undetermined);
  EXPECT_EQ(a.Partition().total, b.Partition().total);
  EXPECT_EQ(a.Uniqueness(), b.Uniqueness());
  for (size_t r_id : r_ids) {
    EXPECT_EQ(a.MatchOfR(r_id), b.MatchOfR(r_id)) << "r_id " << r_id;
  }
  for (size_t s_id : s_ids) {
    EXPECT_EQ(a.MatchOfS(s_id), b.MatchOfS(s_id)) << "s_id " << s_id;
  }
  for (size_t r_id : {r_ids[1], r_ids[2], r_ids[3]}) {
    for (size_t s_id : {s_ids[1], s_ids[2], s_ids[3]}) {
      EXPECT_EQ(a.Decide(r_id, s_id), b.Decide(r_id, s_id));
    }
  }
}

TEST(DifferentialIncrementalTest, StagedMatchesExhaustiveUnderUpdates) {
  // The staged per-insert sweep (value indexes + AMQ over the other
  // side) against the scan-everything oracle, under both residual
  // engines, through inserts and deletes.
  GeneratedWorld world = MakeWorld(/*coverage=*/0.6, /*seed=*/37);
  for (bool compile : {false, true}) {
    SCOPED_TRACE(compile ? "compiled" : "interpreted");
    IdentifierConfig oracle_cfg = WorldConfig(world, /*threads=*/1, compile);
    IdentifierConfig staged_cfg = WorldConfig(world, /*threads=*/1, compile);
    oracle_cfg.matcher_options.staged = false;
    staged_cfg.matcher_options.staged = true;
    EID_ASSERT_OK_AND_ASSIGN(
        IncrementalIdentifier a,
        IncrementalIdentifier::Create(oracle_cfg, EmptyLike(world.r),
                                      EmptyLike(world.s)));
    EID_ASSERT_OK_AND_ASSIGN(
        IncrementalIdentifier b,
        IncrementalIdentifier::Create(staged_cfg, EmptyLike(world.r),
                                      EmptyLike(world.s)));
    std::vector<size_t> r_ids, s_ids;
    for (const Row& row : world.r.rows()) {
      EID_ASSERT_OK_AND_ASSIGN(size_t id_a, a.InsertR(row));
      EID_ASSERT_OK_AND_ASSIGN(size_t id_b, b.InsertR(row));
      EXPECT_EQ(id_a, id_b);
      r_ids.push_back(id_a);
    }
    for (const Row& row : world.s.rows()) {
      EID_ASSERT_OK_AND_ASSIGN(size_t id_a, a.InsertS(row));
      EID_ASSERT_OK_AND_ASSIGN(size_t id_b, b.InsertS(row));
      EXPECT_EQ(id_a, id_b);
      s_ids.push_back(id_a);
    }
    for (size_t i = 0; i < r_ids.size(); i += 5) {
      EID_EXPECT_OK(a.DeleteR(r_ids[i]));
      EID_EXPECT_OK(b.DeleteR(r_ids[i]));
    }
    for (size_t i = 0; i < s_ids.size(); i += 7) {
      EID_EXPECT_OK(a.DeleteS(s_ids[i]));
      EID_EXPECT_OK(b.DeleteS(s_ids[i]));
    }
    EXPECT_EQ(a.r_size(), b.r_size());
    EXPECT_EQ(a.s_size(), b.s_size());
    EXPECT_EQ(a.LiveR().rows(), b.LiveR().rows());
    EXPECT_EQ(a.LiveS().rows(), b.LiveS().rows());
    EID_ASSERT_OK_AND_ASSIGN(Relation mt_a, a.MatchingRelation());
    EID_ASSERT_OK_AND_ASSIGN(Relation mt_b, b.MatchingRelation());
    EXPECT_EQ(mt_a.rows(), mt_b.rows());
    EXPECT_GT(mt_a.size(), 0u);
    EXPECT_EQ(a.Partition().matched, b.Partition().matched);
    EXPECT_EQ(a.Partition().non_matched, b.Partition().non_matched);
    EXPECT_EQ(a.Partition().undetermined, b.Partition().undetermined);
    EXPECT_EQ(a.Partition().total, b.Partition().total);
    EXPECT_EQ(a.Uniqueness(), b.Uniqueness());
    for (size_t r_id : r_ids) {
      EXPECT_EQ(a.MatchOfR(r_id), b.MatchOfR(r_id)) << "r_id " << r_id;
    }
    for (size_t s_id : s_ids) {
      EXPECT_EQ(a.MatchOfS(s_id), b.MatchOfS(s_id)) << "s_id " << s_id;
    }
  }
}

}  // namespace
}  // namespace eid
