// Differential property test for the block-vectorized residual
// evaluator (ISSUE 10 / DESIGN.md §4h): for every residual engine,
// PairTruthBlock must agree with the scalar PairTruth lane for lane —
// across all three Kleene truth values, NULL-id lanes, full and partial
// blocks, all-kUnknown blocks, and value-fallback (ordering) conjuncts
// that run scalar after the op-major id pass. Also pins the block
// counters: pure-id programs never fall back, ordering conjuncts always
// do, and a first op that kills every lane early-exits the block.
// This test runs under the tsan/asan presets (scripts/check.sh).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../test_util.h"
#include "compile/pair_program.h"
#include "exec/blocking_index.h"
#include "exec/candidate_generator.h"
#include "rules/identity_rule.h"

namespace eid {
namespace compile {
namespace {

using ::eid::exec::kPairBlockLanes;
using ::eid::exec::PairBlockStats;
using ::eid::testing::MakeRelation;

std::vector<Predicate> Preds(const std::string& text) {
  Result<std::vector<Predicate>> parsed = ParsePredicateConjunction(text);
  EID_CHECK(parsed.ok());
  return *parsed;
}

/// Both residual engines for one rule orientation, compiled exactly the
/// way the identifier's staged path builds them (the interpreted engine
/// exercises the StagedEvaluator base-class block default).
struct Engines {
  std::unique_ptr<PairFeatureCache> features;
  std::unique_ptr<exec::StagedEvaluator> compiled;
  std::unique_ptr<exec::StagedEvaluator> interpreted;
};

Engines BuildEngines(const Relation& r, const Relation& s,
                     const std::string& rule, bool flipped) {
  std::vector<Predicate> preds = Preds(rule);
  exec::BlockingPlan plan =
      exec::PlanBlocking(preds, r.schema(), s.schema(), flipped);
  EID_CHECK(!plan.impossible);
  Engines e;
  e.features = std::make_unique<PairFeatureCache>(&r, &s);
  e.compiled = std::make_unique<StagedConjunction>(StagedConjunction::Compile(
      preds, plan.coverage, r, s, flipped, e.features.get()));
  e.interpreted = std::make_unique<exec::InterpretedResidual>(
      preds, plan.coverage, &r, &s, flipped);
  return e;
}

/// Feeds every (r, s) pair row-major through PairTruthBlock in blocks of
/// `lanes_per_block` and asserts each lane equals the scalar PairTruth.
/// Returns the accumulated block stats of the run.
PairBlockStats ExpectBlocksMatchScalar(const exec::StagedEvaluator& eval,
                                       const Relation& r, const Relation& s,
                                       size_t lanes_per_block) {
  EID_CHECK(lanes_per_block <= kPairBlockLanes);
  std::vector<size_t> r_rows;
  std::vector<size_t> s_rows;
  PairBlockStats total;
  Truth out[kPairBlockLanes];
  auto drain = [&] {
    PairBlockStats bs;
    eval.PairTruthBlock(r_rows.data(), s_rows.data(), r_rows.size(), out,
                        &bs);
    total.early_exits += bs.early_exits;
    total.scalar_fallbacks += bs.scalar_fallbacks;
    for (size_t i = 0; i < r_rows.size(); ++i) {
      EXPECT_EQ(out[i], eval.PairTruth(r_rows[i], s_rows[i]))
          << "lane " << i << " pair (" << r_rows[i] << ", " << s_rows[i]
          << ")";
    }
    r_rows.clear();
    s_rows.clear();
  };
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = 0; j < s.size(); ++j) {
      r_rows.push_back(i);
      s_rows.push_back(j);
      if (r_rows.size() == lanes_per_block) drain();
    }
  }
  if (!r_rows.empty()) drain();  // partial final block
  return total;
}

/// 20 rows per side so a full sweep is one complete 256-lane block plus
/// a partial one. Rows 16..19 carry NULL city (kUnknown id lanes) and
/// the phone column is NULL throughout R (all-kUnknown programs).
Relation SideR() {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({"n" + std::to_string(i % 4),
                    i < 16 ? "c" + std::to_string(i % 3) : "null",
                    std::to_string(i), "null"});
  }
  return MakeRelation("R", {"name", "city", "score", "phone"}, {}, rows);
}

Relation SideS() {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({"n" + std::to_string(i % 5),
                    i < 16 ? "c" + std::to_string(i % 4) : "null",
                    std::to_string(19 - i), "p" + std::to_string(i)});
  }
  return MakeRelation("S", {"name", "city", "score", "phone"}, {}, rows);
}

const char* const kRules[] = {
    // Pure id residual (kNe is never a blocking join, so nothing is
    // covered): kTrue/kFalse/kUnknown all occur over the NULL city rows.
    "e1.city != e2.city",
    // Multi-op id residual — op-major over two id conjuncts.
    "e1.city != e2.city & e1.name != e2.name",
    // Join-covered equality plus an id residual conjunct.
    "e1.name = e2.name & e1.city = e2.city",
    // Ordering conjunct: id pass first, scalar value fallback after.
    "e1.name = e2.name & e1.score < e2.score",
    // Value fallback only.
    "e1.score < e2.score",
    // All-kUnknown residual: phone is NULL on every R row (the = form
    // is join-covered and leaves an empty — vacuously kTrue — residual).
    "e1.phone = e2.phone",
    "e1.phone != e2.phone",
};

TEST(BlockEvaluatorTest, BlockMatchesScalarLaneByLane) {
  const Relation r = SideR();
  const Relation s = SideS();
  for (const char* rule : kRules) {
    for (bool flipped : {false, true}) {
      SCOPED_TRACE(std::string(rule) + (flipped ? " (flipped)" : ""));
      Engines e = BuildEngines(r, s, rule, flipped);
      ExpectBlocksMatchScalar(*e.compiled, r, s, kPairBlockLanes);
      ExpectBlocksMatchScalar(*e.interpreted, r, s, kPairBlockLanes);
    }
  }
}

TEST(BlockEvaluatorTest, PartialAndSingleLaneBlocks) {
  const Relation r = SideR();
  const Relation s = SideS();
  for (const char* rule : kRules) {
    SCOPED_TRACE(rule);
    Engines e = BuildEngines(r, s, rule, /*flipped=*/false);
    for (size_t lanes : {size_t{1}, size_t{7}, size_t{100}}) {
      ExpectBlocksMatchScalar(*e.compiled, r, s, lanes);
      ExpectBlocksMatchScalar(*e.interpreted, r, s, lanes);
    }
  }
}

TEST(BlockEvaluatorTest, PureIdProgramNeverFallsBack) {
  const Relation r = SideR();
  const Relation s = SideS();
  Engines e = BuildEngines(r, s, "e1.city != e2.city", /*flipped=*/false);
  PairBlockStats stats =
      ExpectBlocksMatchScalar(*e.compiled, r, s, kPairBlockLanes);
  EXPECT_EQ(stats.scalar_fallbacks, 0u);
}

TEST(BlockEvaluatorTest, OrderingConjunctFallsBackOnSurvivingLanes) {
  const Relation r = SideR();
  const Relation s = SideS();
  Engines e = BuildEngines(r, s, "e1.score < e2.score", /*flipped=*/false);
  PairBlockStats stats =
      ExpectBlocksMatchScalar(*e.compiled, r, s, kPairBlockLanes);
  // No id conjunct precedes it, so every lane of every block reaches the
  // scalar value pass.
  EXPECT_EQ(stats.scalar_fallbacks,
            static_cast<size_t>(r.size() * s.size()));
}

TEST(BlockEvaluatorTest, DeadFirstOpShortCircuitsTheBlock) {
  // Every row shares one city, so `city != city` kills all lanes at the
  // first op and the remaining conjunct must not be gathered at all.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 8; ++i) {
    rows.push_back({"n" + std::to_string(i), "same"});
  }
  const Relation r = MakeRelation("R", {"name", "city"}, {}, rows);
  const Relation s = MakeRelation("S", {"name", "city"}, {}, rows);
  Engines e = BuildEngines(r, s, "e1.city != e2.city & e1.name != e2.name",
                           /*flipped=*/false);
  PairBlockStats stats =
      ExpectBlocksMatchScalar(*e.compiled, r, s, kPairBlockLanes);
  EXPECT_GE(stats.early_exits, 1u);
  EXPECT_EQ(stats.scalar_fallbacks, 0u);
}

TEST(BlockEvaluatorTest, AllUnknownBlock) {
  // kNe stays residual (never a blocking join), and phone is NULL on
  // every R row, so each lane's id compare sees a NULL operand.
  const Relation r = SideR();
  const Relation s = SideS();
  Engines e = BuildEngines(r, s, "e1.phone != e2.phone", /*flipped=*/false);
  std::vector<size_t> r_rows(kPairBlockLanes, 0);
  std::vector<size_t> s_rows(kPairBlockLanes);
  for (size_t i = 0; i < kPairBlockLanes; ++i) s_rows[i] = i % s.size();
  Truth out[kPairBlockLanes];
  PairBlockStats bs;
  e.compiled->PairTruthBlock(r_rows.data(), s_rows.data(), kPairBlockLanes,
                             out, &bs);
  for (size_t i = 0; i < kPairBlockLanes; ++i) {
    EXPECT_EQ(out[i], Truth::kUnknown) << "lane " << i;
  }
}

}  // namespace
}  // namespace compile
}  // namespace eid
