// Unit tests for the compiled execution layer (src/compile/): compiled
// pair programs against the predicate interpreter, compiled derivation
// programs against DeriveTuple, and the derivation memo cache (hit/miss
// accounting, provenance identity of cached traces, error non-caching,
// and isolation between relations).

#include <gtest/gtest.h>

#include "../test_util.h"
#include "compile/derivation_program.h"
#include "compile/pair_program.h"
#include "workload/fixtures.h"

namespace eid {
namespace {

Schema TwoColumnSchema(const std::string& a, const std::string& b) {
  return Schema(std::vector<Attribute>{Attribute{a, ValueType::kString},
                                       Attribute{b, ValueType::kString}});
}

TEST(CompiledConjunctionTest, MatchesInterpreterIncludingNullsAndAbsent) {
  Schema r_schema = TwoColumnSchema("name", "street");
  Schema s_schema = TwoColumnSchema("name", "city");
  std::vector<Predicate> preds;
  preds.push_back(Predicate{Operand::Attr(1, "name"), CompareOp::kEq,
                            Operand::Attr(2, "name")});
  preds.push_back(Predicate{Operand::Attr(1, "street"), CompareOp::kNe,
                            Operand::Const(Value::String("Main St."))});
  // "city" is absent from the R schema: resolves to NULL in the direct
  // orientation, exactly as TupleView::GetOrNull does.
  preds.push_back(Predicate{Operand::Attr(1, "city"), CompareOp::kEq,
                            Operand::Attr(2, "city")});

  std::vector<Row> r_rows = {
      {Value::String("Kwan's"), Value::String("Wash. Ave.")},
      {Value::String("Kwan's"), Value::String("Main St.")},
      {Value::Null(), Value::String("Wash. Ave.")},
      {Value::String("Hunan"), Value::Null()},
  };
  std::vector<Row> s_rows = {
      {Value::String("Kwan's"), Value::String("Mpls.")},
      {Value::String("Hunan"), Value::Null()},
      {Value::Null(), Value::Null()},
  };

  for (bool flipped : {false, true}) {
    SCOPED_TRACE(flipped ? "flipped" : "direct");
    compile::CompiledConjunction program = compile::CompiledConjunction::
        Compile(preds, r_schema, s_schema, flipped);
    EXPECT_EQ(program.size(), preds.size());
    for (const Row& r_row : r_rows) {
      for (const Row& s_row : s_rows) {
        TupleView r_view(&r_schema, &r_row);
        TupleView s_view(&s_schema, &s_row);
        const TupleView& e1 = flipped ? s_view : r_view;
        const TupleView& e2 = flipped ? r_view : s_view;
        EXPECT_EQ(program.Evaluate(r_row, s_row),
                  EvaluateConjunction(preds, e1, e2));
      }
    }
  }
}

/// A small program with a derivation chain: street determines city,
/// city+name determines speciality (so kExhaustive has a two-step
/// closure and kFirstMatch has a recursive subgoal).
IlfdSet ChainIlfds() {
  IlfdSet ilfds;
  ilfds.Add(Ilfd::Implies({Atom{"street", Value::String("Wash. Ave.")}},
                          Atom{"city", Value::String("Mpls.")}));
  ilfds.Add(Ilfd::Implies({Atom{"city", Value::String("Mpls.")},
                           Atom{"name", Value::String("Kwan's")}},
                          Atom{"speciality", Value::String("Mughalai")}));
  return ilfds;
}

Schema ChainSchema() {
  return Schema(std::vector<Attribute>{
      Attribute{"name", ValueType::kString},
      Attribute{"street", ValueType::kString},
      Attribute{"city", ValueType::kString},
      Attribute{"speciality", ValueType::kString}});
}

TEST(DerivationProgramTest, MatchesDeriveTupleBothModes) {
  Schema schema = ChainSchema();
  IlfdSet ilfds = ChainIlfds();
  std::vector<Row> rows = {
      {Value::String("Kwan's"), Value::String("Wash. Ave."), Value::Null(),
       Value::Null()},
      {Value::String("Hunan"), Value::String("Wash. Ave."), Value::Null(),
       Value::Null()},
      {Value::String("Kwan's"), Value::Null(), Value::String("Mpls."),
       Value::Null()},
      {Value::Null(), Value::Null(), Value::Null(), Value::Null()},
      // Base value present: never overwritten, never a conflict source.
      {Value::String("Kwan's"), Value::String("Wash. Ave."),
       Value::String("St. Paul"), Value::Null()},
  };
  for (DerivationMode mode :
       {DerivationMode::kExhaustive, DerivationMode::kFirstMatch}) {
    SCOPED_TRACE(mode == DerivationMode::kExhaustive ? "exhaustive"
                                                     : "first_match");
    DerivationOptions options;
    options.mode = mode;
    compile::DerivationProgram program =
        compile::DerivationProgram::Compile(schema, ilfds, options);
    ClosureEvaluator evaluator(&program.kb());
    compile::DerivationMemo memo;
    std::vector<compile::DerivationWrite> writes;
    for (const Row& row : rows) {
      Result<Derivation> compiled_result =
          program.Derive(row, &evaluator, &memo, &writes);
      TupleView view(&schema, &row);
      Result<Derivation> interpreted_result = DeriveTuple(view, ilfds, options);
      // The last row's base city conflicts with ILFD 0 under kExhaustive +
      // kError: both engines must report the identical error.
      ASSERT_EQ(compiled_result.ok(), interpreted_result.ok());
      if (!interpreted_result.ok()) {
        EXPECT_EQ(compiled_result.status().ToString(),
                  interpreted_result.status().ToString());
        continue;
      }
      Derivation compiled = std::move(compiled_result).value();
      Derivation interpreted = std::move(interpreted_result).value();
      EXPECT_EQ(compiled.derived, interpreted.derived);
      ASSERT_EQ(compiled.steps.size(), interpreted.steps.size());
      for (size_t i = 0; i < compiled.steps.size(); ++i) {
        EXPECT_EQ(compiled.steps[i].attribute, interpreted.steps[i].attribute);
        EXPECT_EQ(compiled.steps[i].value, interpreted.steps[i].value);
        EXPECT_EQ(compiled.steps[i].ilfd_index,
                  interpreted.steps[i].ilfd_index);
      }
      // Writes land exactly where the interpreter's by-name application
      // would put them.
      for (const compile::DerivationWrite& w : writes) {
        auto it = interpreted.derived.find(schema.attribute(w.column).name);
        ASSERT_NE(it, interpreted.derived.end());
        EXPECT_EQ(it->second, w.value);
      }
    }
  }
}

TEST(DerivationMemoTest, HitAndMissCounts) {
  Schema schema = ChainSchema();
  IlfdSet ilfds = ChainIlfds();
  compile::DerivationProgram program =
      compile::DerivationProgram::Compile(schema, ilfds, DerivationOptions{});
  ClosureEvaluator evaluator(&program.kb());
  compile::DerivationMemo memo;
  std::vector<compile::DerivationWrite> writes;

  Row row_a = {Value::String("Kwan's"), Value::String("Wash. Ave."),
               Value::Null(), Value::Null()};
  EID_ASSERT_OK_AND_ASSIGN(Derivation first,
                           program.Derive(row_a, &evaluator, &memo, &writes));
  EXPECT_EQ(memo.hits(), 0u);
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(memo.size(), 1u);
  std::vector<compile::DerivationWrite> first_writes = writes;

  // Same projection: a hit returning the identical trace and writes —
  // provenance (step ILFD indices) included.
  EID_ASSERT_OK_AND_ASSIGN(Derivation again,
                           program.Derive(row_a, &evaluator, &memo, &writes));
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(again.derived, first.derived);
  ASSERT_EQ(again.steps.size(), first.steps.size());
  for (size_t i = 0; i < again.steps.size(); ++i) {
    EXPECT_EQ(again.steps[i].ilfd_index, first.steps[i].ilfd_index);
    EXPECT_EQ(again.steps[i].attribute, first.steps[i].attribute);
    EXPECT_EQ(again.steps[i].value, first.steps[i].value);
  }
  ASSERT_EQ(writes.size(), first_writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    EXPECT_EQ(writes[i].column, first_writes[i].column);
    EXPECT_EQ(writes[i].value, first_writes[i].value);
  }

  // Different projection: a fresh miss.
  Row row_b = {Value::String("Hunan"), Value::String("Wash. Ave."),
               Value::Null(), Value::Null()};
  EID_EXPECT_OK(program.Derive(row_b, &evaluator, &memo, &writes).status());
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.misses(), 2u);
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_GT(memo.interner_size(), 0u);
}

TEST(DerivationMemoTest, ErrorsAreNeverCached) {
  Schema schema = ChainSchema();
  IlfdSet ilfds = ChainIlfds();
  // Conflicting second rule for city under the same antecedent.
  ilfds.Add(Ilfd::Implies({Atom{"street", Value::String("Wash. Ave.")}},
                          Atom{"city", Value::String("St. Paul")}));
  DerivationOptions options;  // kExhaustive + kError
  compile::DerivationProgram program =
      compile::DerivationProgram::Compile(schema, ilfds, options);
  ClosureEvaluator evaluator(&program.kb());
  compile::DerivationMemo memo;
  std::vector<compile::DerivationWrite> writes;

  Row row = {Value::String("Kwan's"), Value::String("Wash. Ave."),
             Value::Null(), Value::Null()};
  Result<Derivation> first = program.Derive(row, &evaluator, &memo, &writes);
  ASSERT_FALSE(first.ok());
  Result<Derivation> second = program.Derive(row, &evaluator, &memo, &writes);
  ASSERT_FALSE(second.ok());
  // Identical error (the interpreter's message, full tuple display
  // included) and no cache pollution.
  EXPECT_EQ(first.status().ToString(), second.status().ToString());
  TupleView view(&schema, &row);
  Result<Derivation> oracle = DeriveTuple(view, ilfds, options);
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(first.status().ToString(), oracle.status().ToString());
  EXPECT_EQ(memo.hits(), 0u);
  EXPECT_EQ(memo.misses(), 0u);
  EXPECT_EQ(memo.size(), 0u);
}

TEST(DerivationMemoTest, NoCrossRelationLeakage) {
  // Two programs over different schemas (as the engine builds per side),
  // each with its own memo: deriving through one never changes the
  // other's cache, even for rows agreeing on the shared projection.
  IlfdSet ilfds = ChainIlfds();
  Schema r_schema = ChainSchema();
  Schema s_schema = Schema(std::vector<Attribute>{
      Attribute{"name", ValueType::kString},
      Attribute{"city", ValueType::kString},
      Attribute{"speciality", ValueType::kString}});
  compile::DerivationProgram r_program =
      compile::DerivationProgram::Compile(r_schema, ilfds,
                                          DerivationOptions{});
  compile::DerivationProgram s_program =
      compile::DerivationProgram::Compile(s_schema, ilfds,
                                          DerivationOptions{});
  ClosureEvaluator r_eval(&r_program.kb());
  ClosureEvaluator s_eval(&s_program.kb());
  compile::DerivationMemo r_memo, s_memo;
  std::vector<compile::DerivationWrite> writes;

  Row r_row = {Value::String("Kwan's"), Value::String("Wash. Ave."),
               Value::Null(), Value::Null()};
  EID_EXPECT_OK(
      r_program.Derive(r_row, &r_eval, &r_memo, &writes).status());
  EXPECT_EQ(r_memo.size(), 1u);
  EXPECT_EQ(s_memo.size(), 0u);
  EXPECT_EQ(s_memo.hits(), 0u);
  EXPECT_EQ(s_memo.interner_size(), 0u);

  Row s_row = {Value::String("Kwan's"), Value::String("Mpls."),
               Value::Null()};
  EID_EXPECT_OK(
      s_program.Derive(s_row, &s_eval, &s_memo, &writes).status());
  EXPECT_EQ(s_memo.misses(), 1u);
  EXPECT_EQ(r_memo.size(), 1u);
  EXPECT_EQ(r_memo.hits(), 0u);
}

TEST(DerivationProgramTest, MemoColumnsCoverReadSet) {
  // The memo key projects onto every column the program can read; for the
  // chain program over the R schema that is street (antecedent), city
  // (antecedent + consequent), name (antecedent) and speciality
  // (consequent).
  Schema schema = ChainSchema();
  compile::DerivationProgram program = compile::DerivationProgram::Compile(
      schema, ChainIlfds(), DerivationOptions{});
  EXPECT_EQ(program.memo_columns(),
            (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(DerivationProgramTest, FixtureRelationsDeriveIdentically) {
  // Paper Example 3: every tuple of both fixture relations, both modes,
  // memo on — compiled output equals the interpreter tuple for tuple.
  IlfdSet ilfds = fixtures::Example3Ilfds();
  for (const Relation& rel : {fixtures::Example3R(), fixtures::Example3S()}) {
    for (DerivationMode mode :
         {DerivationMode::kExhaustive, DerivationMode::kFirstMatch}) {
      DerivationOptions options;
      options.mode = mode;
      compile::DerivationProgram program =
          compile::DerivationProgram::Compile(rel.schema(), ilfds, options);
      ClosureEvaluator evaluator(&program.kb());
      compile::DerivationMemo memo;
      std::vector<compile::DerivationWrite> writes;
      for (size_t i = 0; i < rel.size(); ++i) {
        EID_ASSERT_OK_AND_ASSIGN(
            Derivation compiled,
            program.Derive(rel.row(i), &evaluator, &memo, &writes));
        EID_ASSERT_OK_AND_ASSIGN(Derivation interpreted,
                                 DeriveTuple(rel.tuple(i), ilfds, options));
        EXPECT_EQ(compiled.derived, interpreted.derived) << rel.name() << i;
      }
    }
  }
}

}  // namespace
}  // namespace eid
