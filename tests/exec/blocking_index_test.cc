// Indexed rule evaluation must agree, pair for pair and in order, with
// the exhaustive cross-product sweep it replaces — for rules with an
// equality join conjunct, rules with only constant-equality conjuncts,
// and rules with no equality at all (tiled fallback).

#include "exec/blocking_index.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "rules/distinctness_rule.h"
#include "rules/identity_rule.h"

namespace eid {
namespace exec {
namespace {

using ::eid::testing::MakeRelation;

/// Reference implementation: the serial nested loop over the full cross
/// product, row-major.
std::vector<TuplePair> ExhaustiveTruePairs(
    const Relation& r, const Relation& s,
    const std::vector<Predicate>& predicates, bool flipped) {
  std::vector<TuplePair> out;
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = 0; j < s.size(); ++j) {
      TupleView rv = r.tuple(i);
      TupleView sv = s.tuple(j);
      Truth t = flipped ? EvaluateConjunction(predicates, sv, rv)
                        : EvaluateConjunction(predicates, rv, sv);
      if (t == Truth::kTrue) out.push_back(TuplePair{i, j});
    }
  }
  return out;
}

/// Asserts indexed == exhaustive for both orientations and every pool
/// size, and returns the direct-orientation scan stats.
PairScanStats ExpectMatchesExhaustive(const Relation& r, const Relation& s,
                                      const std::vector<Predicate>& preds) {
  PairScanStats direct_stats;
  for (bool flipped : {false, true}) {
    std::vector<TuplePair> expected =
        ExhaustiveTruePairs(r, s, preds, flipped);
    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      ColumnIndexCache r_index(&r);
      ColumnIndexCache s_index(&s);
      PairScanStats stats;
      std::vector<TuplePair> got =
          CollectTruePairs(r, s, preds, flipped, r_index, s_index,
                           threads > 1 ? &pool : nullptr, &stats);
      EXPECT_EQ(got, expected)
          << "flipped=" << flipped << " threads=" << threads;
      if (!flipped && threads == 1) direct_stats = stats;
    }
  }
  return direct_stats;
}

Relation TestR() {
  return MakeRelation("R", {"name", "city", "score"}, {},
                      {{"anna", "Oslo", "1"},
                       {"bob", "Pune", "2"},
                       {"carl", "Oslo", "3"},
                       {"anna", "Pune", "4"},
                       {"dana", "Lima", "2"}});
}

Relation TestS() {
  return MakeRelation("S", {"name", "town", "rank"}, {},
                      {{"anna", "Oslo", "1"},
                       {"bob", "Lima", "3"},
                       {"anna", "Pune", "2"},
                       {"erik", "Oslo", "2"}});
}

TEST(ColumnIndexTest, BucketsSkipNullsAndStayAscending) {
  Relation r("R", Schema::OfStrings({"a"}));
  EID_ASSERT_OK(r.Insert(Row{Value::Str("x")}));
  EID_ASSERT_OK(r.Insert(Row{Value::Null()}));
  EID_ASSERT_OK(r.Insert(Row{Value::Str("x")}));
  EID_ASSERT_OK(r.Insert(Row{Value::Str("y")}));
  ColumnIndex index = ColumnIndex::Build(r, 0);
  const std::vector<size_t>* x = index.Find(Value::Str("x"));
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(*x, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(index.Find(Value::Null()), nullptr);  // NULL never indexed
  EXPECT_EQ(index.Find(Value::Str("z")), nullptr);
}

TEST(PlanBlockingTest, ExtractsJoinInBothOperandOrders) {
  Schema r = Schema::OfStrings({"name"});
  Schema s = Schema::OfStrings({"town"});
  for (const std::string& text :
       {std::string("e1.name = e2.town"), std::string("e2.town = e1.name")}) {
    EID_ASSERT_OK_AND_ASSIGN(std::vector<Predicate> preds,
                             ParsePredicateConjunction(text));
    BlockingPlan plan = PlanBlocking(preds, r, s, /*flipped=*/false);
    EXPECT_FALSE(plan.impossible);
    ASSERT_TRUE(plan.has_join);
    EXPECT_EQ(plan.r_attr, "name");
    EXPECT_EQ(plan.s_attr, "town");
  }
}

TEST(PlanBlockingTest, FlippedOrientationSwapsSides) {
  Schema r = Schema::OfStrings({"name"});
  Schema s = Schema::OfStrings({"town"});
  EID_ASSERT_OK_AND_ASSIGN(std::vector<Predicate> preds,
                           ParsePredicateConjunction("e1.town = e2.name"));
  BlockingPlan plan = PlanBlocking(preds, r, s, /*flipped=*/true);
  ASSERT_TRUE(plan.has_join);
  EXPECT_EQ(plan.r_attr, "name");  // e2 binds to the r side when flipped
  EXPECT_EQ(plan.s_attr, "town");
}

TEST(PlanBlockingTest, AbsentAttributeIsImpossible) {
  Schema r = Schema::OfStrings({"name"});
  Schema s = Schema::OfStrings({"town"});
  EID_ASSERT_OK_AND_ASSIGN(std::vector<Predicate> preds,
                           ParsePredicateConjunction("e1.no_such != \"x\""));
  BlockingPlan plan = PlanBlocking(preds, r, s, /*flipped=*/false);
  EXPECT_TRUE(plan.impossible);
}

TEST(CollectTruePairsTest, EqualityJoinRuleUsesIndex) {
  EID_ASSERT_OK_AND_ASSIGN(
      std::vector<Predicate> preds,
      ParsePredicateConjunction("e1.name = e2.name & e1.city = e2.town"));
  PairScanStats stats = ExpectMatchesExhaustive(TestR(), TestS(), preds);
  EXPECT_TRUE(stats.indexed);
  // 5x4 cross product, but only same-name pairs were ever evaluated.
  EXPECT_LT(stats.candidate_pairs, TestR().size() * TestS().size());
}

TEST(CollectTruePairsTest, ConstantOnlyRuleFallsBackToFilteredScan) {
  EID_ASSERT_OK_AND_ASSIGN(
      std::vector<Predicate> preds,
      ParsePredicateConjunction(
          "e1.city = \"Oslo\" & e2.rank != \"1\""));
  PairScanStats stats = ExpectMatchesExhaustive(TestR(), TestS(), preds);
  EXPECT_FALSE(stats.indexed);
  // The e1.city = "Oslo" filter pruned the scan below the cross product.
  EXPECT_LT(stats.candidate_pairs, TestR().size() * TestS().size());
}

TEST(CollectTruePairsTest, NoEqualityRuleScansFullCrossProduct) {
  EID_ASSERT_OK_AND_ASSIGN(std::vector<Predicate> preds,
                           ParsePredicateConjunction("e1.score < e2.rank"));
  PairScanStats stats = ExpectMatchesExhaustive(TestR(), TestS(), preds);
  EXPECT_FALSE(stats.indexed);
  EXPECT_EQ(stats.candidate_pairs, TestR().size() * TestS().size());
}

TEST(CollectTruePairsTest, NullsNeverJoin) {
  Relation r("R", Schema::OfStrings({"name"}));
  EID_ASSERT_OK(r.Insert(Row{Value::Str("anna")}));
  EID_ASSERT_OK(r.Insert(Row{Value::Null()}));
  Relation s("S", Schema::OfStrings({"name"}));
  EID_ASSERT_OK(s.Insert(Row{Value::Null()}));
  EID_ASSERT_OK(s.Insert(Row{Value::Str("anna")}));
  EID_ASSERT_OK_AND_ASSIGN(std::vector<Predicate> preds,
                           ParsePredicateConjunction("e1.name = e2.name"));
  ExpectMatchesExhaustive(r, s, preds);
}

TEST(CollectTruePairsTest, RealRuleShapesAgree) {
  // The paper's r1/r3 shapes, via the public rule parsers.
  EID_ASSERT_OK_AND_ASSIGN(
      IdentityRule r1,
      ParseIdentityRule("r1",
                        "e1.name = e2.name & e1.city = \"Oslo\" & "
                        "e2.town = \"Oslo\""));
  ExpectMatchesExhaustive(TestR(), TestS(), r1.predicates());
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule r3,
      ParseDistinctnessRule("r3",
                            "e1.city = \"Lima\" & e2.rank != \"3\""));
  ExpectMatchesExhaustive(TestR(), TestS(), r3.predicates());
}

}  // namespace
}  // namespace exec
}  // namespace eid
