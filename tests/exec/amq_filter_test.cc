// The AMQ pre-filter carries one load-bearing guarantee: no false
// negatives — a key currently inserted is always reported as possibly
// present, through level growth, eviction dead-ends and deletions of
// other copies. These tests shrink the levels and kick budget far below
// the defaults to force the chained-level growth path on every few
// inserts, where a lost fingerprint (e.g. an unwound eviction chain bug)
// would surface immediately.

#include "exec/amq_filter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace eid {
namespace exec {
namespace {

/// Deterministic well-mixed keys in the shape the engine stores:
/// (column, value-hash) fingerprints.
uint64_t Key(size_t i) {
  return FingerprintKey(i % 13, i * 0x9E3779B97F4A7C15ull + 1);
}

TEST(AmqFilterTest, InsertContainsErase) {
  AmqFilter filter;
  EXPECT_FALSE(filter.Contains(Key(1)));
  filter.Insert(Key(1));
  EXPECT_TRUE(filter.Contains(Key(1)));
  EXPECT_EQ(filter.size(), 1u);
  EXPECT_TRUE(filter.Erase(Key(1)));
  EXPECT_EQ(filter.size(), 0u);
  // The filter is empty again, so even "may be present" must say no.
  EXPECT_FALSE(filter.Contains(Key(1)));
  EXPECT_FALSE(filter.Erase(Key(1)));
}

TEST(AmqFilterTest, NoFalseNegativesUnderGrowth) {
  AmqOptions tiny;
  tiny.fingerprint_bits = 4;
  tiny.initial_buckets_log2 = 1;
  tiny.max_level_buckets_log2 = 3;
  tiny.max_kicks = 2;
  AmqFilter filter(tiny);
  const size_t n = 4096;
  for (size_t i = 0; i < n; ++i) filter.Insert(Key(i));
  EXPECT_EQ(filter.size(), n);
  // 8-slot levels capped at 32 slots: thousands of keys means the filter
  // grew through many chained levels rather than rebuilding.
  EXPECT_GT(filter.levels(), 8u);
  EXPECT_GE(filter.capacity(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(filter.Contains(Key(i))) << "lost key " << i;
  }
}

TEST(AmqFilterTest, EvictionDeadEndsNeverLoseKeys) {
  // Two-bit fingerprints collide constantly and a kick budget of 3 makes
  // almost every insert hit an eviction dead-end; the displaced
  // fingerprint must be restored before the original moves to a fresh
  // level, so every previously inserted key stays visible after every
  // single insert.
  AmqOptions tiny;
  tiny.fingerprint_bits = 2;
  tiny.initial_buckets_log2 = 1;
  tiny.max_level_buckets_log2 = 2;
  tiny.max_kicks = 3;
  AmqFilter filter(tiny);
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < 512; ++i) {
    keys.push_back(Key(i));
    filter.Insert(keys.back());
    for (size_t k = 0; k < keys.size(); ++k) {
      ASSERT_TRUE(filter.Contains(keys[k]))
          << "insert " << i << " lost key " << k;
    }
  }
}

TEST(AmqFilterTest, DuplicateCopiesSurviveOneErase) {
  AmqFilter filter;
  filter.Insert(Key(7));
  filter.Insert(Key(7));
  EXPECT_EQ(filter.size(), 2u);
  // Erasing one copy must not erase the evidence of the other — this is
  // what lets the incremental engine delete one row's fingerprint while
  // another row carries the same value.
  EXPECT_TRUE(filter.Erase(Key(7)));
  EXPECT_TRUE(filter.Contains(Key(7)));
  EXPECT_TRUE(filter.Erase(Key(7)));
  EXPECT_EQ(filter.size(), 0u);
  EXPECT_FALSE(filter.Contains(Key(7)));
}

TEST(AmqFilterTest, EraseAfterGrowthFindsSpilledCopies) {
  // Duplicates of one hot key spill across levels; erasing them one by
  // one must find every copy wherever it landed.
  AmqOptions tiny;
  tiny.fingerprint_bits = 8;
  tiny.initial_buckets_log2 = 1;
  tiny.max_level_buckets_log2 = 1;
  tiny.max_kicks = 1;
  AmqFilter filter(tiny);
  const size_t copies = 64;
  for (size_t i = 0; i < copies; ++i) filter.Insert(Key(3));
  EXPECT_GT(filter.levels(), 1u);
  for (size_t i = 0; i < copies; ++i) {
    EXPECT_TRUE(filter.Contains(Key(3)));
    EXPECT_TRUE(filter.Erase(Key(3))) << "copy " << i;
  }
  EXPECT_EQ(filter.size(), 0u);
  EXPECT_FALSE(filter.Contains(Key(3)));
}

TEST(AmqFilterTest, CapacityGrowsWithoutInvalidatingOldKeys) {
  AmqOptions tiny;
  tiny.initial_buckets_log2 = 2;
  tiny.max_level_buckets_log2 = 4;
  AmqFilter filter(tiny);
  const size_t initial_capacity = filter.capacity();
  size_t last_levels = filter.levels();
  for (size_t i = 0; i < 2048; ++i) {
    filter.Insert(Key(i));
    // Levels only ever accrete; a shrink would mean a rebuild happened.
    ASSERT_GE(filter.levels(), last_levels);
    last_levels = filter.levels();
  }
  EXPECT_GT(filter.capacity(), initial_capacity);
  for (size_t i = 0; i < 2048; ++i) {
    EXPECT_TRUE(filter.Contains(Key(i))) << i;
  }
}

}  // namespace
}  // namespace exec
}  // namespace eid
