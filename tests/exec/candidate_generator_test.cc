// The staged candidate generator must agree — pair for pair, priority
// for priority, in row-major order — with the exhaustive
// first-(rule,orientation)-wins fold it replaces: for join rules,
// const-only rules, unindexable rules, NULL join keys, multi-rule
// programs with overlapping fire sets, dead orientations, compiled and
// interpreted residuals, and every thread count. An adversarial run with
// one-bit fingerprints proves AMQ false positives never change results.

#include "exec/candidate_generator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../test_util.h"
#include "compile/pair_program.h"
#include "rules/distinctness_rule.h"
#include "rules/identity_rule.h"

namespace eid {
namespace exec {
namespace {

using ::eid::testing::MakeRelation;

using RuleSet = std::vector<std::vector<Predicate>>;

std::vector<Predicate> Preds(const std::string& text) {
  Result<std::vector<Predicate>> parsed = ParsePredicateConjunction(text);
  EID_CHECK(parsed.ok());
  return *parsed;
}

/// Reference fold: row-major pairs, each recording the lowest
/// (rule, orientation) priority whose full antecedent is kTrue. Absent
/// attributes resolve to NULL (kUnknown), so dead orientations simply
/// never fire here.
std::vector<FiredPair> OracleFold(const Relation& r, const Relation& s,
                                  const RuleSet& rules) {
  std::vector<FiredPair> out;
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = 0; j < s.size(); ++j) {
      for (uint32_t p = 0; p < rules.size() * 2; ++p) {
        const std::vector<Predicate>& preds = rules[p / 2];
        const bool flipped = (p & 1) != 0;
        TupleView rv = r.tuple(i);
        TupleView sv = s.tuple(j);
        Truth t = flipped ? EvaluateConjunction(preds, sv, rv)
                          : EvaluateConjunction(preds, rv, sv);
        if (t == Truth::kTrue) {
          out.push_back(FiredPair{TuplePair{i, j}, p});
          break;
        }
      }
    }
  }
  return out;
}

struct StagedRun {
  std::vector<FiredPair> fired;
  StagedScanStats stats;
};

/// Builds plans and residual evaluators exactly the way the identifier
/// does and sweeps once.
StagedRun RunStaged(const Relation& r, const Relation& s, const RuleSet& rules,
                    bool compiled, int threads, AmqOptions amq = {}) {
  std::vector<BlockingPlan> plans;
  plans.reserve(rules.size() * 2);
  for (const std::vector<Predicate>& preds : rules) {
    for (bool flipped : {false, true}) {
      plans.push_back(PlanBlocking(preds, r.schema(), s.schema(), flipped));
    }
  }
  std::vector<std::unique_ptr<StagedEvaluator>> evaluators(plans.size());
  std::unique_ptr<compile::PairFeatureCache> features;
  if (compiled) {
    features = std::make_unique<compile::PairFeatureCache>(&r, &s);
  }
  for (size_t k = 0; k < rules.size(); ++k) {
    for (bool flipped : {false, true}) {
      const size_t i = k * 2 + (flipped ? 1 : 0);
      if (plans[i].impossible) continue;
      if (compiled) {
        evaluators[i] = std::make_unique<compile::StagedConjunction>(
            compile::StagedConjunction::Compile(rules[k], plans[i].coverage,
                                                r, s, flipped,
                                                features.get()));
      } else {
        evaluators[i] = std::make_unique<InterpretedResidual>(
            rules[k], plans[i].coverage, &r, &s, flipped);
      }
    }
  }
  ColumnIndexCache r_index(&r);
  ColumnIndexCache s_index(&s);
  CandidateGenerator gen(&r, &s, &r_index, &s_index, /*seeds=*/nullptr, amq);
  for (size_t i = 0; i < plans.size(); ++i) {
    gen.AddRule(plans[i], evaluators[i].get());
  }
  ThreadPool pool(threads);
  StagedRun out;
  out.fired = gen.Run(threads > 1 ? &pool : nullptr, &out.stats);
  return out;
}

void ExpectSameFired(const std::vector<FiredPair>& got,
                     const std::vector<FiredPair>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].pair, want[i].pair) << "fired pair " << i;
    EXPECT_EQ(got[i].priority, want[i].priority) << "fired pair " << i;
  }
}

/// Asserts staged == oracle for both residual engines and every pool
/// size, and that every counter is engine- and thread-count-invariant.
/// Returns the invariant stats.
StagedScanStats ExpectMatchesOracle(const Relation& r, const Relation& s,
                                    const RuleSet& rules) {
  std::vector<FiredPair> expected = OracleFold(r, s, rules);
  StagedScanStats first;
  bool have_first = false;
  for (bool compiled : {false, true}) {
    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE(std::string(compiled ? "compiled" : "interpreted") +
                   " threads=" + std::to_string(threads));
      StagedRun run = RunStaged(r, s, rules, compiled, threads);
      ExpectSameFired(run.fired, expected);
      if (!have_first) {
        first = run.stats;
        have_first = true;
        continue;
      }
      EXPECT_EQ(run.stats.candidate_pairs, first.candidate_pairs);
      EXPECT_EQ(run.stats.rule_evals, first.rule_evals);
      EXPECT_EQ(run.stats.amq_rejects, first.amq_rejects);
      EXPECT_EQ(run.stats.feature_cache_hits, first.feature_cache_hits);
      EXPECT_EQ(run.stats.indexed, first.indexed);
    }
  }
  return first;
}

Relation TestR() {
  return MakeRelation("R", {"name", "city", "score"}, {},
                      {{"anna", "Oslo", "1"},
                       {"bob", "Pune", "2"},
                       {"carl", "Oslo", "3"},
                       {"anna", "Pune", "4"},
                       {"dana", "Lima", "2"}});
}

Relation TestS() {
  return MakeRelation("S", {"name", "town", "rank"}, {},
                      {{"anna", "Oslo", "1"},
                       {"bob", "Lima", "3"},
                       {"anna", "Pune", "2"},
                       {"erik", "Oslo", "2"}});
}

TEST(CandidateGeneratorTest, JoinRuleMatchesOracle) {
  RuleSet rules = {Preds("e1.name = e2.name & e1.city = e2.town")};
  StagedScanStats stats = ExpectMatchesOracle(TestR(), TestS(), rules);
  EXPECT_TRUE(stats.indexed);
  EXPECT_LT(stats.candidate_pairs, TestR().size() * TestS().size());
}

TEST(CandidateGeneratorTest, ConstOnlyRuleMatchesOracle) {
  // Direct orientation: an r const filter plus a residual. Flipped
  // orientation is dead (S has no "city"), and must silently consume
  // its priority slot.
  RuleSet rules = {Preds("e1.city = \"Oslo\" & e2.rank != \"1\"")};
  StagedScanStats stats = ExpectMatchesOracle(TestR(), TestS(), rules);
  EXPECT_FALSE(stats.indexed);
  EXPECT_LT(stats.candidate_pairs, TestR().size() * TestS().size());
}

TEST(CandidateGeneratorTest, UnindexableRuleScansEveryPair) {
  RuleSet rules = {Preds("e1.score < e2.rank")};
  StagedScanStats stats = ExpectMatchesOracle(TestR(), TestS(), rules);
  EXPECT_FALSE(stats.indexed);
  // Only the direct orientation is live (flipped binds absent
  // attributes), and nothing bounds it: the forced-quadratic case the
  // analyzer warns about (EID-W009).
  EXPECT_EQ(stats.candidate_pairs, TestR().size() * TestS().size());
}

TEST(CandidateGeneratorTest, OverlappingRulesRecordLowestPriority) {
  RuleSet rules = {Preds("e1.name = e2.name"), Preds("e1.city = e2.town")};
  std::vector<FiredPair> expected = OracleFold(TestR(), TestS(), rules);
  // The fixture makes priorities interesting: some pairs fire under both
  // rules (rule 0 must win), some only under the city/town rule.
  bool saw_rule0 = false, saw_rule1 = false;
  for (const FiredPair& f : expected) {
    if (f.priority == 0) saw_rule0 = true;
    if (f.priority == 2) saw_rule1 = true;
  }
  ASSERT_TRUE(saw_rule0);
  ASSERT_TRUE(saw_rule1);
  ExpectMatchesOracle(TestR(), TestS(), rules);
}

TEST(CandidateGeneratorTest, RowOnlyConjunctsHoistAcrossCandidates) {
  // e1.score != "2" reads only the r row: it must be evaluated once per
  // row and reused across that row's join candidates.
  RuleSet rules = {Preds("e1.name = e2.name & e1.score != \"2\"")};
  StagedScanStats stats = ExpectMatchesOracle(TestR(), TestS(), rules);
  EXPECT_GT(stats.feature_cache_hits, 0u);
}

TEST(CandidateGeneratorTest, NullJoinKeysNeverFire) {
  Relation r("R", Schema::OfStrings({"name"}));
  EID_ASSERT_OK(r.Insert(Row{Value::Str("anna")}));
  EID_ASSERT_OK(r.Insert(Row{Value::Null()}));
  Relation s("S", Schema::OfStrings({"name"}));
  EID_ASSERT_OK(s.Insert(Row{Value::Null()}));
  EID_ASSERT_OK(s.Insert(Row{Value::Str("anna")}));
  RuleSet rules = {Preds("e1.name = e2.name")};
  ExpectMatchesOracle(r, s, rules);
}

TEST(CandidateGeneratorTest, AmqMissesKillProbesWithoutChangingResults) {
  // Most r names are absent from s: the s-side filter must reject those
  // probes before any bucket is touched, and the fired set is still
  // exactly the oracle's.
  Relation r = MakeRelation("R", {"name"}, {},
                            {{"anna"}, {"bob"}, {"carl"}, {"dana"}, {"erik"}});
  Relation s = MakeRelation("S", {"name"}, {}, {{"anna"}, {"xu"}, {"yi"}});
  RuleSet rules = {Preds("e1.name = e2.name")};
  StagedScanStats stats = ExpectMatchesOracle(r, s, rules);
  EXPECT_GT(stats.amq_rejects, 0u);
  EXPECT_LT(stats.candidate_pairs, r.size() * s.size());
}

TEST(CandidateGeneratorTest, DeadConstantKillsWholeOrientation) {
  // No r row has city = "Atlantis": the orientation dies at AddRule time
  // (rule-level AMQ kill or empty filter list) with zero candidates.
  RuleSet rules = {Preds("e1.city = \"Atlantis\" & e1.name = e2.name")};
  StagedScanStats stats = ExpectMatchesOracle(TestR(), TestS(), rules);
  EXPECT_EQ(stats.candidate_pairs, 0u);
}

TEST(CandidateGeneratorTest, AdversarialCollisionsNeverChangeResults) {
  // One-bit fingerprints in tiny levels: nearly every probe collides, so
  // the filters approach "always maybe". Results must be bit-identical
  // to the oracle anyway — only amq_rejects may differ from a
  // default-options run.
  AmqOptions adversarial;
  adversarial.fingerprint_bits = 1;
  adversarial.initial_buckets_log2 = 1;
  adversarial.max_level_buckets_log2 = 2;
  adversarial.max_kicks = 2;
  Relation r = TestR();
  Relation s = TestS();
  RuleSet rules = {Preds("e1.name = e2.name & e1.city = e2.town"),
                   Preds("e1.city = \"Lima\" & e2.rank != \"3\""),
                   Preds("e1.score < e2.rank")};
  std::vector<FiredPair> expected = OracleFold(r, s, rules);
  ASSERT_FALSE(expected.empty());
  for (bool compiled : {false, true}) {
    for (int threads : {1, 8}) {
      SCOPED_TRACE(std::string(compiled ? "compiled" : "interpreted") +
                   " threads=" + std::to_string(threads));
      StagedRun run = RunStaged(r, s, rules, compiled, threads, adversarial);
      ExpectSameFired(run.fired, expected);
    }
  }
}

TEST(CandidateGeneratorTest, RealRuleShapesAgree) {
  // The paper's r1/r3 shapes through the public rule parsers, mixed into
  // one program so priorities span identity- and distinctness-style
  // antecedents.
  EID_ASSERT_OK_AND_ASSIGN(
      IdentityRule r1,
      ParseIdentityRule("r1",
                        "e1.name = e2.name & e1.city = \"Oslo\" & "
                        "e2.town = \"Oslo\""));
  EID_ASSERT_OK_AND_ASSIGN(
      DistinctnessRule r3,
      ParseDistinctnessRule("r3", "e1.city = \"Lima\" & e2.rank != \"3\""));
  RuleSet rules = {r1.predicates(), r3.predicates()};
  ExpectMatchesOracle(TestR(), TestS(), rules);
}

}  // namespace
}  // namespace exec
}  // namespace eid
