#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace eid {
namespace exec {
namespace {

TEST(ResolveThreadsTest, ExplicitRequestWins) {
  EXPECT_EQ(ResolveThreads(3), 3);
  EXPECT_EQ(ResolveThreads(1), 1);
}

TEST(ResolveThreadsTest, EnvironmentFallback) {
  ::setenv("EID_THREADS", "5", 1);
  EXPECT_EQ(ResolveThreads(0), 5);
  EXPECT_EQ(ResolveThreads(2), 2);  // explicit still wins
  ::setenv("EID_THREADS", "not-a-number", 1);
  EXPECT_GE(ResolveThreads(0), 1);  // junk ignored, hardware fallback
  ::setenv("EID_THREADS", "0", 1);
  EXPECT_GE(ResolveThreads(0), 1);
  ::unsetenv("EID_THREADS");
  EXPECT_GE(ResolveThreads(0), 1);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(n, /*grain=*/0, [&](size_t begin, size_t end, int w) {
        EXPECT_GE(w, 0);
        EXPECT_LT(w, threads);
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1);
        }
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
      }
    }
  }
}

TEST(ThreadPoolTest, SlotWritesAreDeterministicAcrossThreadCounts) {
  const size_t n = 4096;
  std::vector<uint64_t> reference(n);
  for (size_t i = 0; i < n; ++i) reference[i] = i * 2654435761u;
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(n, 0);
    pool.ParallelFor(n, /*grain=*/64, [&](size_t begin, size_t end, int) {
      for (size_t i = begin; i < end; ++i) out[i] = i * 2654435761u;
    });
    EXPECT_EQ(out, reference) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(100, /*grain=*/7, [&](size_t begin, size_t end, int) {
      total.fetch_add(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 5000u);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100, /*grain=*/1,
                       [&](size_t begin, size_t, int) {
                         if (begin == 42) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must still schedule correctly after an exception.
  std::atomic<size_t> count{0};
  pool.ParallelFor(10, /*grain=*/1,
                   [&](size_t begin, size_t end, int) {
                     count.fetch_add(end - begin);
                   });
  EXPECT_EQ(count.load(), 10u);
}

TEST(ThreadPoolTest, ZeroIterationJobTakesThePoolPathAndReturns) {
  // n == 0 must not deadlock the generation handshake: the job still
  // publishes, workers still wake, nobody claims a chunk, and the pool
  // stays usable. Loop to stress the wake/finish rendezvous.
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  for (int round = 0; round < 100; ++round) {
    pool.ParallelFor(0, /*grain=*/8,
                     [&](size_t, size_t, int) { calls.fetch_add(1); });
  }
  EXPECT_EQ(calls.load(), 0);
  std::atomic<size_t> count{0};
  pool.ParallelFor(3, /*grain=*/1, [&](size_t begin, size_t end, int) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 3u);
}

TEST(ThreadPoolTest, GrainLargerThanNRunsOneChunkOnce) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  std::vector<std::atomic<int>> hits(5);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(5, /*grain=*/1000,
                   [&](size_t begin, size_t end, int) {
                     chunks.fetch_add(1);
                     EXPECT_EQ(begin, 0u);
                     EXPECT_EQ(end, 5u);
                     for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
                   });
  EXPECT_EQ(chunks.load(), 1);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, DestructionWithNoJobEverRunJoinsCleanly) {
  // Workers park in the start wait the moment they are spawned; the
  // destructor's shutdown broadcast must reach them even though no
  // generation was ever published.
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
  }
}

TEST(ThreadPoolTest, ExceptionOnEveryChunkStillReportsOnceAndPoolReuses) {
  // Harsher than one bad chunk: every chunk throws, so every worker
  // races to record first_error_. Exactly one exception must surface
  // per loop, and the pool must keep scheduling across repeats.
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(pool.ParallelFor(64, /*grain=*/1,
                                  [&](size_t, size_t, int) {
                                    throw std::runtime_error("every chunk");
                                  }),
                 std::runtime_error);
    std::atomic<size_t> count{0};
    pool.ParallelFor(17, /*grain=*/2, [&](size_t begin, size_t end, int) {
      count.fetch_add(end - begin);
    });
    EXPECT_EQ(count.load(), 17u) << "round " << round;
  }
}

TEST(ParallelForHelperTest, CutoffBoundaryIsDeterministic) {
  // The adaptive serial cutoff flips the schedule at
  // n == threads * kParallelForMinChunkIterations: below it the body
  // runs inline as one chunk, at and above it the pool claims chunks.
  // Slot-write output must be identical on both sides of the flip, for
  // the serial and the 8-worker pool alike.
  for (int threads : {1, 8}) {
    ThreadPool pool(threads);
    const size_t boundary =
        static_cast<size_t>(threads) * kParallelForMinChunkIterations;
    for (size_t n : {boundary - 1, boundary, boundary + 1}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " n=" + std::to_string(n));
      std::vector<size_t> expect(n);
      for (size_t i = 0; i < n; ++i) expect[i] = i * 31 + 7;
      std::vector<size_t> got(n, 0);
      std::atomic<int> max_worker{0};
      ParallelFor(&pool, n, /*grain=*/8,
                  [&](size_t begin, size_t end, int w) {
                    int seen = max_worker.load();
                    while (w > seen &&
                           !max_worker.compare_exchange_weak(seen, w)) {
                    }
                    for (size_t i = begin; i < end; ++i) got[i] = i * 31 + 7;
                  });
      EXPECT_EQ(got, expect);
      if (n < boundary) {
        // Below the cutoff the helper must have stayed inline: only
        // worker 0 ever ran.
        EXPECT_EQ(max_worker.load(), 0);
      }
    }
  }
}

TEST(ParallelForHelperTest, NullPoolRunsInline) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, 0, [&](size_t begin, size_t end, int w) {
    EXPECT_EQ(w, 0);
    for (size_t i = begin; i < end; ++i) order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace exec
}  // namespace eid
