// Differential and id-space equivalence tests for the shared columnar
// interned world (exec/columnar_world.h, DESIGN.md §4g).
//
// ColumnarDifferentialTest: BuildMatchingTable with the columnar compiled
// engine must be bit-identical to the per-tuple interpreter oracle —
// extended rows, derivation traces, MT contents and order, uniqueness —
// across staged on/off × DerivationMode × threads {1, 8}. This is the
// matcher-level companion of tests/compile/differential_test.cc and runs
// under the tsan/asan presets (scripts/check.sh).
//
// ColumnarInternerTest: the pipeline's three interners — the AtomTable
// behind derivation closures, the ColumnarWorld dictionary, and a
// snapshot's saved dictionary — must agree on value identity: equal
// Values get equal ids, distinct Values distinct ids, and a
// snapshot-seeded world reproduces the exact ids (and column bytes) a
// fresh encode would assign.

#include "exec/columnar_world.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.h"
#include "eid/identifier.h"
#include "eid/matcher.h"
#include "logic/proposition.h"
#include "storage/snapshot.h"
#include "workload/generator.h"

namespace eid {
namespace {

GeneratedWorld MakeWorld(uint64_t seed) {
  GeneratorConfig gen;
  gen.seed = seed;
  gen.overlap_entities = 120;
  gen.r_only_entities = 60;
  gen.s_only_entities = 60;
  gen.name_pool = 96;
  gen.street_pool = 128;
  gen.cities = 16;
  gen.speciality_pool = 64;
  gen.cuisines = 8;
  gen.ilfd_coverage = 0.8;
  Result<GeneratedWorld> world = GenerateWorld(gen);
  EID_CHECK(world.ok());
  return std::move(world).value();
}

void ExpectTracesEqual(const std::vector<Derivation>& a,
                       const std::vector<Derivation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].derived, b[i].derived) << "tuple " << i;
    ASSERT_EQ(a[i].steps.size(), b[i].steps.size()) << "tuple " << i;
    for (size_t k = 0; k < a[i].steps.size(); ++k) {
      EXPECT_EQ(a[i].steps[k].attribute, b[i].steps[k].attribute);
      EXPECT_EQ(a[i].steps[k].value, b[i].steps[k].value);
      EXPECT_EQ(a[i].steps[k].ilfd_index, b[i].steps[k].ilfd_index);
    }
  }
}

/// `a` is the interpreter oracle, `b` the columnar compiled run.
void ExpectIdentical(const MatcherResult& a, const MatcherResult& b) {
  EXPECT_EQ(a.r_extension.extended.rows(), b.r_extension.extended.rows());
  EXPECT_EQ(a.s_extension.extended.rows(), b.s_extension.extended.rows());
  EXPECT_EQ(a.r_extension.added_attributes, b.r_extension.added_attributes);
  EXPECT_EQ(a.s_extension.added_attributes, b.s_extension.added_attributes);
  ExpectTracesEqual(a.r_extension.traces, b.r_extension.traces);
  ExpectTracesEqual(a.s_extension.traces, b.s_extension.traces);
  EXPECT_EQ(a.matching.pairs(), b.matching.pairs());
  EXPECT_EQ(a.uniqueness, b.uniqueness);
}

class ColumnarDifferentialTest : public ::testing::TestWithParam<bool> {};

TEST_P(ColumnarDifferentialTest, MatchesInterpreterOracle) {
  const bool staged = GetParam();
  GeneratedWorld world = MakeWorld(/*seed=*/41);
  for (DerivationMode mode :
       {DerivationMode::kExhaustive, DerivationMode::kFirstMatch}) {
    for (int threads : {1, 8}) {
      SCOPED_TRACE(std::string(mode == DerivationMode::kExhaustive
                                   ? "exhaustive"
                                   : "first_match") +
                   " threads=" + std::to_string(threads));
      MatcherOptions interp;
      interp.compile = false;
      interp.staged = staged;
      interp.threads = threads;
      interp.extension.derivation.mode = mode;
      MatcherOptions columnar = interp;
      columnar.compile = true;
      EID_ASSERT_OK_AND_ASSIGN(
          MatcherResult reference,
          BuildMatchingTable(world.r, world.s, world.correspondence,
                             world.extended_key, world.ilfds, interp));
      // Sanity: the world actually joins and derives.
      EXPECT_GT(reference.matching.size(), 0u);
      EID_ASSERT_OK_AND_ASSIGN(
          MatcherResult result,
          BuildMatchingTable(world.r, world.s, world.correspondence,
                             world.extended_key, world.ilfds, columnar));
      ExpectIdentical(reference, result);
      // The compiled run must actually have gone through the columnar
      // engine: batched probes and at least one non-trivial encode.
      size_t probe_batches = 0;
      size_t reuse_hits = 0;
      for (const exec::StageStats& stage : result.stats.stages()) {
        probe_batches += stage.probe_batches;
        reuse_hits += stage.interner_reuse_hits;
      }
      EXPECT_GT(probe_batches, 0u);
      EXPECT_GT(reuse_hits, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Staged, ColumnarDifferentialTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "staged" : "exhaustive_sweep";
                         });

// --- Interner equivalence ------------------------------------------------

/// Equal Values <=> equal ids, for both the ColumnarWorld dictionary and
/// the AtomTable's per-attribute value map, over every cell of R.
TEST(ColumnarInternerTest, DictionaryAgreesWithAtomTable) {
  GeneratedWorld world = MakeWorld(/*seed=*/43);
  exec::ColumnarWorld cw;
  AtomTable atoms;
  const Schema& schema = world.r.schema();
  for (size_t c = 0; c < schema.size(); ++c) {
    const std::string& attr = schema.attribute(c).name;
    const std::vector<uint32_t>& ids = cw.Column(exec::WorldRel::kR, world.r, c);
    ASSERT_EQ(ids.size(), world.r.size());
    for (size_t row = 0; row < world.r.size(); ++row) {
      const Value& v = world.r.rows()[row][c];
      if (v.is_null()) {
        EXPECT_EQ(ids[row], exec::ColumnarWorld::kNullId);
        continue;
      }
      ASSERT_NE(ids[row], exec::ColumnarWorld::kNullId);
      // Dictionary id round-trips to the cell value.
      EXPECT_EQ(cw.dict().value(ids[row]), v);
      // The AtomTable assigns one id per (attribute, value); two cells of
      // the column share an atom id exactly when they share a dictionary
      // id — the mapping BindColumns relies on.
      AtomId atom = atoms.Intern(attr, v);
      EXPECT_EQ(atoms.Find(attr, v), std::optional<AtomId>(atom));
      EXPECT_EQ(atom, atoms.Intern(attr, cw.dict().value(ids[row])));
    }
  }
  // Distinct dictionary ids hold distinct Values (injectivity).
  for (uint32_t id = 1; id < cw.dict().size(); ++id) {
    EXPECT_NE(cw.dict().value(id), cw.dict().value(id - 1));
  }
}

/// A world seeded from a snapshot's ColumnarSeeds must be a faithful
/// interner: every adopted id decodes to the relation's cell value, ids
/// agree exactly when Values do (across both relations — one id-space),
/// and seeding performs zero encodes while counting every cell as reuse.
/// Byte-equality with a column-major re-encode is NOT expected — the
/// snapshot interns in its own first-seen order; only the id <-> Value
/// bijection is the contract.
TEST(ColumnarInternerTest, SnapshotSeedReproducesFreshIds) {
  GeneratedWorld world = MakeWorld(/*seed=*/47);
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  config.distinctness_from_ilfds = true;
  Result<IdentificationResult> fresh_run =
      EntityIdentifier(config).Identify(world.r, world.s);
  ASSERT_TRUE(fresh_run.ok()) << fresh_run.status().ToString();
  const std::string path = ::testing::TempDir() + "/columnar_interner.eidsnap";
  Status written = storage::WriteSnapshot(
      storage::ImageOf(world.r, world.s, config, *fresh_run), path);
  ASSERT_TRUE(written.ok()) << written.ToString();
  Result<storage::LoadedWorld> loaded = storage::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_NE(loaded->columnar_seeds, nullptr);

  exec::ColumnarWorld seeded;
  seeded.Seed(*loaded->columnar_seeds);
  const size_t r_cols = world.r.schema().size();
  const size_t s_cols = world.s.schema().size();
  auto check_columns = [&](exec::WorldRel slot, const Relation& rel,
                           size_t cols, const char* side) {
    for (size_t c = 0; c < cols; ++c) {
      const std::vector<uint32_t>* adopted = seeded.FindColumn(slot, c);
      ASSERT_NE(adopted, nullptr) << side << " column " << c;
      ASSERT_EQ(adopted->size(), rel.size()) << side << " column " << c;
      for (size_t row = 0; row < rel.size(); ++row) {
        const Value& v = rel.rows()[row][c];
        const uint32_t id = (*adopted)[row];
        if (v.is_null()) {
          EXPECT_EQ(id, exec::ColumnarWorld::kNullId)
              << side << " column " << c << " row " << row;
        } else {
          ASSERT_NE(id, exec::ColumnarWorld::kNullId)
              << side << " column " << c << " row " << row;
          // The adopted id decodes to the cell value, and probing the
          // value finds the same id — the bijection both directions.
          EXPECT_EQ(seeded.dict().value(id), v);
          EXPECT_EQ(seeded.dict().Find(v), id);
        }
      }
    }
  };
  check_columns(exec::WorldRel::kR, loaded->r, r_cols, "r");
  check_columns(exec::WorldRel::kS, loaded->s, s_cols, "s");
  // One id-space: distinct ids hold distinct Values (injectivity), so an
  // id comparison anywhere in the pipeline is a Value comparison.
  for (uint32_t id = 1; id < seeded.dict().size(); ++id) {
    EXPECT_NE(seeded.dict().value(id), seeded.dict().value(id - 1));
  }
  // Seeding counted the dictionary and both id matrices as reuse.
  EXPECT_GE(seeded.reuse_hits(),
            loaded->dictionary.size() +
                world.r.size() * r_cols + world.s.size() * s_cols);
  EXPECT_EQ(seeded.encode_ms(), 0.0);
}

/// Seeding must also leave the matcher bit-identical: a session handed
/// snapshot ColumnarSeeds produces the same MT as one that encodes from
/// scratch.
TEST(ColumnarInternerTest, SeededMatcherMatchesFresh) {
  GeneratedWorld world = MakeWorld(/*seed=*/53);
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  config.distinctness_from_ilfds = true;
  Result<IdentificationResult> fresh_run =
      EntityIdentifier(config).Identify(world.r, world.s);
  ASSERT_TRUE(fresh_run.ok()) << fresh_run.status().ToString();
  const std::string path = ::testing::TempDir() + "/columnar_seeded.eidsnap";
  Status written = storage::WriteSnapshot(
      storage::ImageOf(world.r, world.s, config, *fresh_run), path);
  ASSERT_TRUE(written.ok()) << written.ToString();
  Result<storage::LoadedWorld> loaded = storage::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_NE(loaded->columnar_seeds, nullptr);

  for (int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MatcherOptions plain;
    plain.threads = threads;
    MatcherOptions with_seeds = plain;
    with_seeds.columnar_seeds = loaded->columnar_seeds;
    EID_ASSERT_OK_AND_ASSIGN(
        MatcherResult reference,
        BuildMatchingTable(loaded->r, loaded->s, loaded->correspondence,
                           *loaded->extended_key, loaded->ilfds, plain));
    EID_ASSERT_OK_AND_ASSIGN(
        MatcherResult result,
        BuildMatchingTable(loaded->r, loaded->s, loaded->correspondence,
                           *loaded->extended_key, loaded->ilfds, with_seeds));
    EXPECT_GT(reference.matching.size(), 0u);
    ExpectIdentical(reference, result);
  }
}

}  // namespace
}  // namespace eid
