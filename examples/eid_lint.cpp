// eid-lint — static verification of ILFD rule programs.
//
// Checks a rule program (ILFDs, identity/distinctness rules, extended
// key, attribute correspondence) against a schema pair without executing
// it, and prints one diagnostic per line (see DESIGN.md §4b for the code
// catalogue).
//
// Usage:
//   eid-lint --r R.csv --s S.csv [--key a,b] [--ilfds FILE]
//            [--identity FILE] [--distinct FILE] [options]
//   eid-lint --fixture example1|example2|example3
//
// Options:
//   --r FILE          left relation (CSV, header row = attribute names);
//                     only the header is consulted — linting is static
//   --s FILE          right relation
//   --key a,b         extended key (world attribute names)
//   --ilfds FILE      ILFDs, one per line:  street=Wash.Ave. -> city=Mpls
//   --identity FILE   identity rules, one conjunction per line:
//                       e1.name = e2.name & e1.cuisine = e2.cuisine
//   --distinct FILE   distinctness rules, one conjunction per line
//   --fixture NAME    lint a built-in paper fixture instead of files
//   --no-schema / --no-closure / --no-order / --no-blocking
//                     disable a check family
//   --closure-limit N  skip closure checks above N ILFDs (default 2048)
//   --quiet           suppress the summary line (diagnostics only)
//   --json            emit one JSON object per diagnostic (JSON Lines) and
//                     no summary; exit codes are unchanged
//   --sarif           emit one SARIF 2.1.0 document (static-analysis
//                     interchange; upload as a CI code-scanning artifact)
//                     and no summary; exit codes are unchanged. Mutually
//                     exclusive with --json.
//
// Exit codes (machine-readable):
//   0  no diagnostics (notes allowed)
//   1  warnings, no errors
//   2  errors
//   3  usage or input error
//
// Scripting example:
//   eid-lint --r r.csv --s s.csv --ilfds rules.txt || echo "program dirty"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "eid.h"
#include "workload/fixtures.h"

using namespace eid;

namespace {

constexpr int kExitClean = 0;
constexpr int kExitWarnings = 1;
constexpr int kExitErrors = 2;
constexpr int kExitUsage = 3;

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

Result<std::string> Slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int Fail(const Status& status) {
  std::cerr << "eid-lint: " << status.ToString() << "\n";
  return kExitUsage;
}

void Usage() {
  std::cout <<
      "usage: eid-lint --r R.csv --s S.csv [--key a,b] [--ilfds FILE]\n"
      "                [--identity FILE] [--distinct FILE]\n"
      "                [--no-schema] [--no-closure] [--no-order]\n"
      "                [--no-blocking] [--closure-limit N] [--quiet]\n"
      "                [--json | --sarif]\n"
      "       eid-lint --fixture example1|example2|example3\n"
      "--json prints one JSON object per diagnostic (JSON Lines), no\n"
      "summary line; pipe to a JSONL consumer (e.g. jq -s).\n"
      "--sarif prints one SARIF 2.1.0 document for the whole report\n"
      "(CI code-scanning upload, SARIF viewers).\n"
      "exit codes (stable, machine-readable):\n"
      "  0  no diagnostics (notes allowed)\n"
      "  1  warnings, no errors\n"
      "  2  errors\n"
      "  3  usage or input error\n";
}

/// Non-empty lines of `text`, so rule files may use blank separators.
std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

struct LintInput {
  Relation r{"R", Schema(std::vector<Attribute>{})};
  Relation s{"S", Schema(std::vector<Attribute>{})};
  IdentifierConfig config;
};

Result<LintInput> FixtureInput(const std::string& name) {
  LintInput in;
  if (name == "example1") {
    in.r = fixtures::Table1R();
    in.s = fixtures::Table1S();
    in.config.extended_key = fixtures::Example1ExtendedKey();
    in.config.ilfds = fixtures::Example1Ilfds();
  } else if (name == "example2") {
    in.r = fixtures::Example2R();
    in.s = fixtures::Example2S();
    in.config.extended_key = fixtures::Example2ExtendedKey();
    in.config.ilfds = fixtures::Example2Ilfds();
  } else if (name == "example3") {
    in.r = fixtures::Example3R();
    in.s = fixtures::Example3S();
    in.config.extended_key = fixtures::Example3ExtendedKey();
    in.config.ilfds = fixtures::Example3Ilfds();
  } else {
    return Status::InvalidArgument("unknown fixture '" + name +
                                   "' (try example1|example2|example3)");
  }
  in.config.correspondence = AttributeCorrespondence::Identity(in.r, in.s);
  return in;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  std::vector<std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      Usage();
      return kExitUsage;
    }
    if (arg == "--no-schema" || arg == "--no-closure" || arg == "--no-order" ||
        arg == "--no-blocking" || arg == "--quiet" || arg == "--json" ||
        arg == "--sarif") {
      flags.push_back(arg);
      continue;
    }
    if (i + 1 >= argc) {
      Usage();
      return kExitUsage;
    }
    args[arg] = argv[++i];
  }
  auto has_flag = [&](const std::string& f) {
    return std::find(flags.begin(), flags.end(), f) != flags.end();
  };
  if (argc == 1) {
    Usage();
    return kExitUsage;
  }

  LintInput in;
  if (args.count("--fixture")) {
    Result<LintInput> fixture = FixtureInput(args["--fixture"]);
    if (!fixture.ok()) return Fail(fixture.status());
    in = std::move(fixture).value();
  } else {
    if (args.count("--r") == 0 || args.count("--s") == 0) {
      Usage();
      return kExitUsage;
    }
    Result<std::string> r_text = Slurp(args["--r"]);
    if (!r_text.ok()) return Fail(r_text.status());
    Result<Relation> r_parsed = ReadCsv(*r_text, "R");
    if (!r_parsed.ok()) return Fail(r_parsed.status());
    in.r = std::move(r_parsed).value();
    Result<std::string> s_text = Slurp(args["--s"]);
    if (!s_text.ok()) return Fail(s_text.status());
    Result<Relation> s_parsed = ReadCsv(*s_text, "S");
    if (!s_parsed.ok()) return Fail(s_parsed.status());
    in.s = std::move(s_parsed).value();
    in.config.correspondence = AttributeCorrespondence::Identity(in.r, in.s);
    if (args.count("--key")) {
      in.config.extended_key = ExtendedKey(SplitCommas(args["--key"]));
    }
    if (args.count("--ilfds")) {
      Result<std::string> text = Slurp(args["--ilfds"]);
      if (!text.ok()) return Fail(text.status());
      Result<std::vector<Ilfd>> ilfds = ParseIlfdList(*text);
      if (!ilfds.ok()) return Fail(ilfds.status());
      in.config.ilfds = IlfdSet(std::move(ilfds).value());
    }
    if (args.count("--identity")) {
      Result<std::string> text = Slurp(args["--identity"]);
      if (!text.ok()) return Fail(text.status());
      size_t n = 0;
      for (const std::string& line : Lines(*text)) {
        Result<IdentityRule> rule =
            ParseIdentityRule("identity" + std::to_string(n++), line);
        if (!rule.ok()) return Fail(rule.status());
        in.config.identity_rules.push_back(std::move(rule).value());
      }
    }
    if (args.count("--distinct")) {
      Result<std::string> text = Slurp(args["--distinct"]);
      if (!text.ok()) return Fail(text.status());
      size_t n = 0;
      for (const std::string& line : Lines(*text)) {
        Result<DistinctnessRule> rule =
            ParseDistinctnessRule("distinct" + std::to_string(n++), line);
        if (!rule.ok()) return Fail(rule.status());
        in.config.distinctness_rules.push_back(std::move(rule).value());
      }
    }
  }

  analysis::AnalyzerOptions options;
  options.schema_checks = !has_flag("--no-schema");
  options.closure_checks = !has_flag("--no-closure");
  options.order_checks = !has_flag("--no-order");
  options.blocking_checks = !has_flag("--no-blocking");
  if (args.count("--closure-limit")) {
    try {
      options.closure_rule_limit = std::stoul(args["--closure-limit"]);
    } catch (const std::exception&) {
      return Fail(Status::InvalidArgument("--closure-limit expects a number"));
    }
  }

  const bool json = has_flag("--json");
  const bool sarif = has_flag("--sarif");
  if (json && sarif) {
    return Fail(Status::InvalidArgument(
        "--json and --sarif are mutually exclusive"));
  }

  analysis::AnalysisReport report =
      analysis::AnalyzeRuleProgram(in.r, in.s, in.config, options);
  if (sarif) {
    std::cout << analysis::ToSarif(report);
  } else {
    for (const analysis::Diagnostic& d : report.diagnostics) {
      std::cout << (json ? d.ToJson() : d.ToString()) << "\n";
    }
    if (!json && !has_flag("--quiet")) {
      std::cout << report.ErrorCount() << " error(s), "
                << report.WarningCount() << " warning(s)\n";
    }
  }
  if (report.ErrorCount() > 0) return kExitErrors;
  if (report.WarningCount() > 0) return kExitWarnings;
  return kExitClean;
}
