// Full reproduction of the paper's Example 3 and §6 prototype session.
//
// Walks the interactive flow of the Prolog prototype: list candidate
// extended-key attributes, select a sound key, print the matching and
// integrated tables; then deliberately select the unsound single-attribute
// key to trigger the prototype's warning; finally show the Armstrong-axiom
// proof of the derived ILFD I9 (§5).
//
// Build & run:  ./build/examples/restaurant_integration

#include <algorithm>
#include <iostream>

#include "eid.h"
#include "workload/fixtures.h"

namespace {

std::vector<size_t> PickByName(const std::vector<std::string>& candidates,
                               const std::vector<std::string>& wanted) {
  std::vector<size_t> picks;
  for (const std::string& w : wanted) {
    auto it = std::find(candidates.begin(), candidates.end(), w);
    EID_CHECK(it != candidates.end());
    picks.push_back(static_cast<size_t>(it - candidates.begin()));
  }
  return picks;
}

}  // namespace

int main() {
  using namespace eid;

  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  IlfdSet ilfds = fixtures::Example3Ilfds();

  std::cout << "=== Source relations (paper Table 5) ===\n";
  PrintOptions opts;
  opts.title = "R";
  opts.sort_rows = false;
  PrintTable(std::cout, r, opts);
  std::cout << "\n";
  opts.title = "S";
  PrintTable(std::cout, s, opts);

  std::cout << "\n=== ILFDs I1..I8 ===\n" << ilfds.ToString();

  PrototypeSession session(r, s, AttributeCorrespondence::Identity(r, s),
                           ilfds);

  std::cout << "\n| ?- setup_extkey.\n" << session.ListCandidates();
  std::vector<size_t> picks =
      PickByName(session.candidates(), {"name", "cuisine", "speciality"});
  std::cout << "(selecting name, cuisine, speciality)\n";
  std::cout << session.SetupExtendedKey(picks).value() << "\n";

  std::cout << "\n| ?- print_matchtable.\n";
  std::cout << session.PrintMatchingTable().value();
  std::cout << "\n| ?- print_integ_table.\n";
  std::cout << session.PrintIntegratedTable().value();

  std::cout << "\n=== Extended relations (paper Table 6) ===\n";
  std::cout << session.PrintExtendedR().value() << "\n";
  std::cout << session.PrintExtendedS().value();

  // Explanations: why a pair matched / stayed undetermined.
  {
    IdentifierConfig config;
    config.correspondence = AttributeCorrespondence::Identity(r, s);
    config.extended_key = fixtures::Example3ExtendedKey();
    config.ilfds = ilfds;
    IdentificationResult full =
        EntityIdentifier(config).Identify(r, s).value();
    std::cout << "\n=== Why did It'sGreek match? ===\n"
              << ExplainDecision(full, config, 2, 2).value();
    std::cout << "\n=== Why is VillageWok vs Sichuan undecided? ===\n"
              << ExplainDecision(full, config, 4, 1).value();
  }

  // The unsound key of the second prototype transcript.
  std::cout << "\n| ?- setup_extkey.   (selecting name only)\n";
  std::cout << session.SetupExtendedKey(PickByName(session.candidates(),
                                                   {"name"}))
                   .value()
            << "\n";

  // §5: the derived ILFD I9 and its Armstrong-axiom proof.
  Ilfd i9 = fixtures::Example3DerivedI9();
  std::cout << "\n=== Derived ILFD (paper I9) ===\n"
            << "I9: " << i9.ToString() << "\n"
            << "implied by I1..I8: " << (ilfds.Implies(i9) ? "yes" : "no")
            << "\n\nArmstrong-axiom proof:\n";
  AtomTable proof_atoms;
  Proof proof = ilfds.Prove(i9, &proof_atoms).value();
  std::cout << proof.ToString(proof_atoms);
  return 0;
}
