// Monotonic incremental identification in a federated setting (§3.3).
//
// In a federation the component databases keep operating autonomously, and
// the DBA supplies identity knowledge over time. This example drives
// MonotonicEngine over a generated two-database world: ILFDs arrive in
// batches, and after every batch the three regions of Fig. 3 (matching /
// non-matching / undetermined pairs) are reported. Matching and
// non-matching only grow; undetermined only shrinks; soundness holds
// throughout.
//
// Build & run:  ./build/examples/federated_sync

#include <cstdio>
#include <iostream>

#include "eid.h"
#include "workload/generator.h"

int main() {
  using namespace eid;

  GeneratorConfig gen;
  gen.seed = 2024;
  gen.overlap_entities = 30;
  gen.r_only_entities = 15;
  gen.s_only_entities = 15;
  gen.name_pool = 40;
  gen.street_pool = 120;
  gen.cities = 6;
  gen.speciality_pool = 18;
  gen.cuisines = 5;
  gen.ilfd_coverage = 1.0;
  GeneratedWorld world = GenerateWorld(gen).value();

  std::cout << "federated world: |R| = " << world.r.size()
            << ", |S| = " << world.s.size() << ", true matches = "
            << world.truth.size() << "\n\n";

  // Split the knowledge: taxonomy ILFDs are known up front; the
  // per-entity ILFDs trickle in (the DBA documents one territory at a
  // time).
  IlfdSet base, incoming;
  for (const Ilfd& f : world.ilfds.ilfds()) {
    if (f.ConsequentAttributes() == std::vector<std::string>{"speciality"}) {
      incoming.Add(f);
    } else {
      base.Add(f);
    }
  }

  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = base;

  MonotonicEngine engine(world.r, world.s, config);
  std::printf("%-28s %9s %12s %13s %6s\n", "knowledge", "matching",
              "non-matching", "undetermined", "sound");
  auto report = [&](const std::string& label) {
    const PairPartition& p = engine.result().partition;
    std::printf("%-28s %9zu %12zu %13zu %6s\n", label.c_str(), p.matched,
                p.non_matched, p.undetermined,
                engine.result().Sound() ? "yes" : "no");
  };
  report("taxonomies only");

  const size_t batch = 6;
  for (size_t start = 0; start < incoming.size(); start += batch) {
    for (size_t i = start; i < std::min(start + batch, incoming.size());
         ++i) {
      Status st = engine.AddIlfd(incoming.ilfd(i));
      EID_CHECK(st.ok());
    }
    report("+ " + std::to_string(std::min(start + batch, incoming.size())) +
           " territory ILFDs");
  }

  std::cout << "\nmonotonicity violations: " << engine.violations().size()
            << "\ncomplete (no undetermined pairs): "
            << (engine.Complete() ? "yes" : "no") << "\n";
  std::cout << "recovered " << engine.result().partition.matched << " of "
            << world.truth.size() << " true matches, all sound\n";
  return 0;
}
