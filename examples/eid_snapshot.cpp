// Snapshot CLI: save, load, inspect and verify world snapshot files
// (src/storage/snapshot.h).
//
//   eid_snapshot save <path> [n]     build a world (paper Example 3, or a
//                                    generated one with n entities per
//                                    side), identify, write the snapshot
//   eid_snapshot load <path>         load + print world summary and stats
//   eid_snapshot inspect <path>      print header fields + section table
//   eid_snapshot verify <path>       validate checksums and fully decode;
//                                    exit 1 with the corruption message
//   eid_snapshot roundtrip [n]       save to a temp file, load it back,
//                                    re-identify, and require bit-identical
//                                    MT/NMT/partition (staged on and off)
//
// Build & run:  ./build/examples/eid_snapshot roundtrip

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "eid.h"
#include "storage/snapshot.h"
#include "workload/fixtures.h"
#include "workload/generator.h"

namespace {

using namespace eid;
using storage::LoadedWorld;
using storage::SnapshotReader;

struct World {
  Relation r, s;
  IdentifierConfig config;
};

World BuildWorld(size_t per_side) {
  World world;
  if (per_side == 0) {
    world.r = fixtures::Example3R();
    world.s = fixtures::Example3S();
    world.config.correspondence =
        AttributeCorrespondence::Identity(world.r, world.s);
    world.config.extended_key = fixtures::Example3ExtendedKey();
    world.config.ilfds = fixtures::Example3Ilfds();
  } else {
    GeneratorConfig gen;
    gen.seed = 1234;
    gen.overlap_entities = per_side / 2;
    gen.r_only_entities = per_side / 2;
    gen.s_only_entities = per_side / 2;
    gen.name_pool = per_side * 2;
    gen.street_pool = per_side * 3;
    gen.cities = 32;
    gen.speciality_pool = 128;
    gen.cuisines = 16;
    GeneratedWorld generated = GenerateWorld(gen).value();
    world.r = std::move(generated.r);
    world.s = std::move(generated.s);
    world.config.correspondence = std::move(generated.correspondence);
    world.config.extended_key = std::move(generated.extended_key);
    world.config.ilfds = std::move(generated.ilfds);
  }
  world.config.distinctness_from_ilfds = true;
  return world;
}

int Fail(const Status& status) {
  std::cerr << "error: " << status.message() << "\n";
  return 1;
}

int Save(const std::string& path, size_t per_side) {
  World world = BuildWorld(per_side);
  Result<IdentificationResult> result =
      EntityIdentifier(world.config).Identify(world.r, world.s);
  if (!result.ok()) return Fail(result.status());
  Status st = storage::WriteSnapshot(
      storage::ImageOf(world.r, world.s, world.config, *result), path);
  if (!st.ok()) return Fail(st);
  Result<SnapshotReader> reader = SnapshotReader::Open(path);
  if (!reader.ok()) return Fail(reader.status());
  std::cout << "saved " << path << " (" << reader->file_size() << " bytes, "
            << reader->sections().size() << " sections)\n"
            << "  R " << world.r.size() << " rows, S " << world.s.size()
            << " rows, MT " << result->matching.size() << ", NMT "
            << result->negative.table.size() << "\n";
  return 0;
}

void PrintWorld(const LoadedWorld& world) {
  std::cout << "  R  " << world.r.name() << ": " << world.r.size()
            << " rows | S  " << world.s.name() << ": " << world.s.size()
            << " rows\n"
            << "  R' " << world.r_extended.size() << " rows | S' "
            << world.s_extended.size() << " rows\n"
            << "  MT " << world.matching.size() << " pairs, NMT "
            << world.negative.size() << " pairs\n"
            << "  ILFDs " << world.ilfds.size() << ", dictionary "
            << world.dictionary.size() << " values\n"
            << "  traces R " << world.r_traces.size() << ", S "
            << world.s_traces.size() << "\n"
            << "  stats: " << world.load_stats.ToString() << "\n";
}

int Load(const std::string& path) {
  Result<LoadedWorld> world = storage::LoadSnapshot(path);
  if (!world.ok()) return Fail(world.status());
  std::cout << "loaded " << path << "\n";
  PrintWorld(*world);
  return 0;
}

int Inspect(const std::string& path) {
  Result<SnapshotReader> reader = SnapshotReader::Open(path);
  if (!reader.ok()) return Fail(reader.status());
  std::cout << path << ": version " << storage::kSnapshotVersion << ", "
            << reader->file_size() << " bytes"
            << (reader->mapped() ? " (mmap)" : " (read)") << ", "
            << reader->sections().size() << " sections\n";
  std::printf("  %-14s %-10s %10s %10s  %s\n", "kind", "role", "offset",
              "bytes", "checksum");
  for (const storage::SectionEntry& e : reader->sections()) {
    std::printf("  %-14s %-10s %10llu %10llu  %016llx\n",
                storage::SectionKindName(
                    static_cast<storage::SectionKind>(e.kind)),
                e.kind == static_cast<uint32_t>(storage::SectionKind::kRelation) ||
                        e.kind ==
                            static_cast<uint32_t>(storage::SectionKind::kPostings) ||
                        e.kind == static_cast<uint32_t>(
                                      storage::SectionKind::kFingerprints)
                    ? storage::RelationRoleName(
                          static_cast<storage::RelationRole>(e.role))
                    : "-",
                static_cast<unsigned long long>(e.offset),
                static_cast<unsigned long long>(e.length),
                static_cast<unsigned long long>(e.checksum));
  }
  return 0;
}

int Verify(const std::string& path) {
  // Open validates magic/version/endianness and every checksum;
  // LoadSnapshot additionally proves each section decodes.
  Result<LoadedWorld> world = storage::LoadSnapshot(path);
  if (!world.ok()) return Fail(world.status());
  std::cout << path << ": ok\n";
  PrintWorld(*world);
  return 0;
}

bool SamePairs(const MatchTable& a, const MatchTable& b) {
  return a.pairs() == b.pairs();
}

int RoundTrip(size_t per_side) {
  const std::string path = "/tmp/eid_snapshot_roundtrip.eidsnap";
  World world = BuildWorld(per_side);
  Result<IdentificationResult> fresh =
      EntityIdentifier(world.config).Identify(world.r, world.s);
  if (!fresh.ok()) return Fail(fresh.status());
  Status st = storage::WriteSnapshot(
      storage::ImageOf(world.r, world.s, world.config, *fresh), path);
  if (!st.ok()) return Fail(st);
  Result<LoadedWorld> loaded = storage::LoadSnapshot(path);
  if (!loaded.ok()) return Fail(loaded.status());

  if (!SamePairs(loaded->matching, fresh->matching) ||
      !SamePairs(loaded->negative, fresh->negative.table)) {
    std::cerr << "FAIL: loaded tables differ from the saved run\n";
    return 1;
  }
  // Re-identify from the loaded sources, with the loaded rule program,
  // under both engines: must reproduce the saved tables bit-identically.
  for (bool staged : {true, false}) {
    IdentifierConfig config = loaded->ToConfig();
    config.distinctness_from_ilfds = true;
    config.matcher_options.staged = staged;
    Result<IdentificationResult> again =
        EntityIdentifier(config).Identify(loaded->r, loaded->s);
    if (!again.ok()) return Fail(again.status());
    if (!SamePairs(again->matching, fresh->matching) ||
        !SamePairs(again->negative.table, fresh->negative.table)) {
      std::cerr << "FAIL: re-identify (staged=" << staged
                << ") diverged from the saved run\n";
      return 1;
    }
  }
  std::cout << "roundtrip ok: " << loaded->matching.size() << " MT / "
            << loaded->negative.size() << " NMT pairs reproduced "
            << "bit-identically (staged on/off)\n"
            << "  " << loaded->load_stats.ToString() << "\n";
  std::remove(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr
        << "usage: eid_snapshot save <path> [n] | load <path> | "
           "inspect <path> | verify <path> | roundtrip [n]\n"
           "  n: entities per side for a generated world (default: the\n"
           "     paper's Example 3 fixture)\n";
    return 1;
  }
  const std::string& command = args[0];
  if (command == "save" && (args.size() == 2 || args.size() == 3)) {
    return Save(args[1], args.size() == 3 ? std::stoul(args[2]) : 0);
  }
  if (command == "load" && args.size() == 2) return Load(args[1]);
  if (command == "inspect" && args.size() == 2) return Inspect(args[1]);
  if (command == "verify" && args.size() == 2) return Verify(args[1]);
  if (command == "roundtrip" && args.size() <= 2) {
    return RoundTrip(args.size() == 2 ? std::stoul(args[1]) : 0);
  }
  std::cerr << "eid_snapshot: bad arguments for '" << command << "'\n";
  return 1;
}
