// Soundness-critical matching: the paper's §4 motivation.
//
// "A company wanting to dismiss employees with sales performance below
// expectation requires matching between the employee records in one
// database and their performance records in another database. It is
// crucial that the set of matched records be correct; otherwise, some
// people may be wrongly fired."
//
// Two HR databases: Employees(name, badge, office) and
// Performance(name, region, rating). The relations share only `name`, and
// two different people are both called "J. Smith". A heuristic same-name
// matcher picks one of them arbitrarily; the extended-key + ILFD technique
// derives the missing badge from sales-territory knowledge, matches the
// right J. Smith, and *certifies* the other one distinct.
//
// Build & run:  ./build/examples/payroll_merge

#include <iostream>

#include "baselines/heuristic_rules.h"
#include "eid.h"

int main() {
  using namespace eid;

  Relation employees("Employees",
                     Schema::OfStrings({"name", "badge", "office"}));
  EID_CHECK(employees.DeclareKey({"name", "badge"}).ok());
  EID_CHECK(employees.InsertText({"J.Smith", "B-101", "Mpls"}).ok());
  EID_CHECK(employees.InsertText({"J.Smith", "B-202", "St.Paul"}).ok());
  EID_CHECK(employees.InsertText({"A.Chen", "B-303", "Mpls"}).ok());

  Relation performance("Performance",
                       Schema::OfStrings({"name", "region", "rating"}));
  EID_CHECK(performance.DeclareKey({"name", "region"}).ok());
  EID_CHECK(performance.InsertText({"J.Smith", "North", "below"}).ok());
  EID_CHECK(performance.InsertText({"A.Chen", "South", "above"}).ok());

  AttributeCorrespondence corr =
      AttributeCorrespondence::Identity(employees, performance);

  // ------------------------------------------------------------------
  // The unsound way: heuristic "same name ⇒ same person".
  // ------------------------------------------------------------------
  HeuristicRuleMatcher heuristic(
      corr, {IdentityRule::KeyEquivalence("same-name", {"name"})});
  BaselineResult by_name = heuristic.Match(employees, performance).value();
  std::cout << "heuristic same-name matcher claims " << by_name.matching.size()
            << " matches:\n";
  for (const TuplePair& p : by_name.matching.pairs()) {
    std::cout << "  " << employees.tuple(p.r_index).ToString() << "  <->  "
              << performance.tuple(p.s_index).ToString() << "\n";
  }
  std::cout << "  -> badge B-101 J.Smith gets the \"below\" rating by "
               "accident of iteration order; B-202 J.Smith could equally "
               "be the one. Someone may be wrongly fired.\n\n";

  // ------------------------------------------------------------------
  // The sound way: extended key {name, badge} + knowledge mapping the
  // performance DB's region to badges ("the North region is covered by
  // badge B-202", says the sales org chart).
  // ------------------------------------------------------------------
  IdentifierConfig config;
  config.correspondence = corr;
  config.extended_key = ExtendedKey({"name", "badge"});
  config.ilfds.AddText("region=North -> badge=B-202").value();
  config.ilfds.AddText("region=South -> badge=B-303").value();

  EntityIdentifier identifier(config);
  IdentificationResult result =
      identifier.Identify(employees, performance).value();

  std::cout << "extended-key + ILFD matcher (sound = "
            << (result.Sound() ? "yes" : "no") << "):\n";
  for (const TuplePair& p : result.matching.pairs()) {
    std::cout << "  " << employees.tuple(p.r_index).ToString() << "  <->  "
              << performance.tuple(p.s_index).ToString() << "\n";
  }
  std::cout << "  certified distinct: " << result.negative.table.size()
            << " pair(s); undetermined: " << result.partition.undetermined
            << "\n\n";

  std::cout << "decision for (B-101 J.Smith, North J.Smith): "
            << MatchDecisionName(result.Decide(0, 0)) << "\n";
  std::cout << "decision for (B-202 J.Smith, North J.Smith): "
            << MatchDecisionName(result.Decide(1, 0)) << "\n";
  std::cout << "decision for (A.Chen, South A.Chen):         "
            << MatchDecisionName(result.Decide(2, 1)) << "\n";
  return 0;
}
