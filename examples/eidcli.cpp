// eidcli — command-line entity identification over CSV files.
//
// Usage:
//   eidcli --r R.csv --s S.csv --key name,cuisine [options]
//
// Options:
//   --r FILE          left relation (CSV, header row = attribute names)
//   --s FILE          right relation
//   --rkey a,b        candidate key of R (default: all attributes)
//   --skey a,b        candidate key of S
//   --key a,b,c       extended key (world attribute names)
//   --ilfds FILE      ILFDs, one per line:  speciality=Mughalai -> cuisine=Indian
//   --distinct FILE   distinctness rules, one per line:
//                       e1.speciality = "Mughalai" & e2.cuisine != "Indian"
//   --first-match     prototype (Prolog-cut) derivation order
//   --print WHAT      mt | nmt | extended | integrated | partition (default:
//                     mt,partition; comma-separated)
//   --mine            instead of matching, mine candidate ILFDs from R and
//                     confirm them on S
//   --suggest-keys    discover minimal extended keys from R ∪-compatible
//                     sample (uses R as the universe sample)
//   --demo            write demo CSV/rule files beside the binary and run
//                     the paper's Example 3 on them
//
// Attribute names shared by the two CSVs are treated as semantically
// equivalent (identity correspondence) — resolve schema heterogeneity
// before this tool, as the paper assumes.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "eid.h"
#include "workload/fixtures.h"

using namespace eid;

namespace {

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

Result<std::string> Slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int Fail(const Status& status) {
  std::cerr << "eidcli: " << status.ToString() << "\n";
  return 1;
}

void Usage() {
  std::cout <<
      "usage: eidcli --r R.csv --s S.csv --key a,b [--ilfds FILE]\n"
      "              [--distinct FILE] [--rkey a,b] [--skey a,b]\n"
      "              [--first-match] [--print mt,nmt,extended,integrated,"
      "partition]\n"
      "       eidcli --r R.csv --s S.csv --mine\n"
      "       eidcli --r R.csv --suggest-keys\n"
      "       eidcli --demo\n";
}

int RunDemo();

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  std::vector<std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      Usage();
      return 1;
    }
    if (arg == "--first-match" || arg == "--mine" || arg == "--demo" ||
        arg == "--suggest-keys") {
      flags.push_back(arg);
      continue;
    }
    if (i + 1 >= argc) {
      Usage();
      return 1;
    }
    args[arg] = argv[++i];
  }
  auto has_flag = [&](const std::string& f) {
    return std::find(flags.begin(), flags.end(), f) != flags.end();
  };
  if (argc == 1) {
    Usage();
    return 1;
  }
  if (has_flag("--demo")) return RunDemo();

  if (args.count("--r") == 0) {
    Usage();
    return 1;
  }
  Result<std::string> r_text = Slurp(args["--r"]);
  if (!r_text.ok()) return Fail(r_text.status());
  Result<Relation> r_parsed = ReadCsv(*r_text, "R");
  if (!r_parsed.ok()) return Fail(r_parsed.status());
  Relation r = std::move(r_parsed).value();

  if (has_flag("--suggest-keys")) {
    KeyDiscoveryOptions opts;
    Result<std::vector<ExtendedKey>> keys = DiscoverMinimalKeys(r, opts);
    if (!keys.ok()) return Fail(keys.status());
    std::cout << "minimal identifying attribute sets of " << args["--r"]
              << " (extended-key candidates):\n";
    for (const ExtendedKey& key : *keys) {
      std::cout << "  " << key.ToString() << "\n";
    }
    return 0;
  }

  if (args.count("--s") == 0) {
    Usage();
    return 1;
  }
  Result<std::string> s_text = Slurp(args["--s"]);
  if (!s_text.ok()) return Fail(s_text.status());
  Result<Relation> s_parsed = ReadCsv(*s_text, "S");
  if (!s_parsed.ok()) return Fail(s_parsed.status());
  Relation s = std::move(s_parsed).value();

  // Candidate keys need to be declared before rows exist, so rebuild.
  auto with_key = [](Relation rel,
                     const std::vector<std::string>& key) -> Result<Relation> {
    if (key.empty()) return rel;
    Relation out(rel.name(), rel.schema());
    EID_RETURN_IF_ERROR(out.DeclareKey(key));
    for (const Row& row : rel.rows()) EID_RETURN_IF_ERROR(out.Insert(row));
    return out;
  };
  if (args.count("--rkey")) {
    Result<Relation> rk = with_key(std::move(r), SplitCommas(args["--rkey"]));
    if (!rk.ok()) return Fail(rk.status());
    r = std::move(rk).value();
  }
  if (args.count("--skey")) {
    Result<Relation> sk = with_key(std::move(s), SplitCommas(args["--skey"]));
    if (!sk.ok()) return Fail(sk.status());
    s = std::move(sk).value();
  }

  if (has_flag("--mine")) {
    MinerOptions opts;
    opts.min_support = 2;
    std::vector<MinedIlfd> mined = MineIlfds(r, opts);
    std::vector<MinedIlfd> confirmed = ConfirmOn(mined, s);
    std::cout << "mined " << mined.size() << " candidate ILFDs from R; "
              << confirmed.size() << " also hold on S:\n";
    for (const MinedIlfd& m : confirmed) {
      std::cout << "  [support " << m.support << "] " << m.ilfd.ToString()
                << "\n";
    }
    std::cout << "(candidates are instance regularities — confirm with a "
                 "domain expert before use)\n";
    return 0;
  }

  if (args.count("--key") == 0) {
    Usage();
    return 1;
  }
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = ExtendedKey(SplitCommas(args["--key"]));
  if (args.count("--ilfds")) {
    Result<std::string> text = Slurp(args["--ilfds"]);
    if (!text.ok()) return Fail(text.status());
    Result<std::vector<Ilfd>> ilfds = ParseIlfdList(*text);
    if (!ilfds.ok()) return Fail(ilfds.status());
    for (Ilfd& f : *ilfds) config.ilfds.Add(std::move(f));
  }
  if (args.count("--distinct")) {
    Result<std::string> text = Slurp(args["--distinct"]);
    if (!text.ok()) return Fail(text.status());
    std::istringstream lines(*text);
    std::string line;
    size_t n = 0;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      Result<DistinctnessRule> rule =
          ParseDistinctnessRule("user" + std::to_string(++n), line);
      if (!rule.ok()) return Fail(rule.status());
      config.distinctness_rules.push_back(std::move(rule).value());
    }
  }
  if (has_flag("--first-match")) {
    config.matcher_options.extension.derivation.mode =
        DerivationMode::kFirstMatch;
  }

  EntityIdentifier identifier(config);
  Result<IdentificationResult> result = identifier.Identify(r, s);
  if (!result.ok()) return Fail(result.status());

  std::vector<std::string> prints =
      SplitCommas(args.count("--print") ? args["--print"] : "mt,partition");
  for (const std::string& what : prints) {
    PrintOptions opts;
    if (what == "mt") {
      opts.title = "matching table MT_RS";
      Result<Relation> mt = result->MatchingRelation();
      if (!mt.ok()) return Fail(mt.status());
      PrintTable(std::cout, *mt, opts);
    } else if (what == "nmt") {
      opts.title = "negative matching table NMT_RS";
      Result<Relation> nmt = result->NegativeRelation();
      if (!nmt.ok()) return Fail(nmt.status());
      PrintTable(std::cout, *nmt, opts);
    } else if (what == "extended") {
      opts.title = "R'";
      PrintTable(std::cout, result->r_extended, opts);
      opts.title = "S'";
      PrintTable(std::cout, result->s_extended, opts);
    } else if (what == "integrated") {
      Result<Relation> t =
          BuildIntegratedTable(*result, IntegrationLayout::kSideBySide);
      if (!t.ok()) return Fail(t.status());
      opts.title = "integrated table T_RS";
      PrintTable(std::cout, *t, opts);
    } else if (what == "partition") {
      std::cout << "matched: " << result->partition.matched
                << "  non-matched: " << result->partition.non_matched
                << "  undetermined: " << result->partition.undetermined
                << "  sound: " << (result->Sound() ? "yes" : "NO") << "\n";
      if (!result->uniqueness.ok()) {
        std::cout << "  uniqueness: " << result->uniqueness.ToString() << "\n";
      }
      if (!result->consistency.ok()) {
        std::cout << "  consistency: " << result->consistency.ToString()
                  << "\n";
      }
    } else {
      std::cerr << "eidcli: unknown --print item '" << what << "'\n";
      return 1;
    }
    std::cout << "\n";
  }
  return 0;
}

namespace {

int RunDemo() {
  const std::string dir = "eidcli_demo";
  // Write Example 3 as CSV + rule files for replaying through the CLI.
  if (WriteCsvFile(fixtures::Example3R(), dir + "_R.csv").ok() &&
      WriteCsvFile(fixtures::Example3S(), dir + "_S.csv").ok()) {
    std::ofstream ilfds(dir + "_ilfds.txt");
    IlfdSet knowledge = fixtures::Example3Ilfds();
    for (const Ilfd& f : knowledge.ilfds()) {
      ilfds << f.ToString() << "\n";
    }
  }
  // And run the same configuration in-process.
  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example3ExtendedKey();
  config.ilfds = fixtures::Example3Ilfds();
  EntityIdentifier identifier(config);
  Result<IdentificationResult> result = identifier.Identify(r, s);
  if (!result.ok()) return Fail(result.status());
  PrintOptions opts;
  opts.title = "matching table MT_RS (paper Example 3)";
  Result<Relation> mt = result->MatchingRelation();
  if (!mt.ok()) return Fail(mt.status());
  PrintTable(std::cout, *mt, opts);
  std::cout << "\nwrote " << dir << "_R.csv, " << dir << "_S.csv, " << dir
            << "_ilfds.txt — try:\n  eidcli --r " << dir << "_R.csv --s "
            << dir << "_S.csv --rkey name,cuisine --skey name,speciality "
            << "--key name,cuisine,speciality --ilfds " << dir
            << "_ilfds.txt --print mt,nmt,integrated,partition\n";
  return 0;
}

}  // namespace
