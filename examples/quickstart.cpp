// Quickstart: entity identification with an extended key and one ILFD.
//
// Reproduces the paper's Example 2 end-to-end: two restaurant relations
// with no common candidate key are matched through the extended key
// {name, cuisine}, using the instance-level functional dependency
// "speciality=Mughalai → cuisine=Indian" to derive S's missing cuisine.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "eid.h"

int main() {
  using namespace eid;

  // --- Source relations from two autonomous databases ------------------
  Relation r("R", Schema::OfStrings({"name", "cuisine", "street"}));
  EID_CHECK(r.DeclareKey({"name", "cuisine"}).ok());
  EID_CHECK(r.InsertText({"TwinCities", "Chinese", "Wash.Ave."}).ok());
  EID_CHECK(r.InsertText({"TwinCities", "Indian", "Univ.Ave."}).ok());

  Relation s("S", Schema::OfStrings({"name", "speciality", "city"}));
  EID_CHECK(s.DeclareKey({"name"}).ok());
  EID_CHECK(s.InsertText({"TwinCities", "Mughalai", "St.Paul"}).ok());

  // --- Configuration -----------------------------------------------------
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = ExtendedKey({"name", "cuisine"});
  config.ilfds.AddText("speciality=Mughalai -> cuisine=Indian").value();

  // --- Identify -----------------------------------------------------------
  EntityIdentifier identifier(config);
  Result<IdentificationResult> result = identifier.Identify(r, s);
  if (!result.ok()) {
    std::cerr << "identification failed: " << result.status().ToString()
              << "\n";
    return 1;
  }

  std::cout << "sound: " << (result->Sound() ? "yes" : "no") << "\n";
  std::cout << "matched " << result->partition.matched << " pair(s), "
            << result->partition.non_matched << " certified distinct, "
            << result->partition.undetermined << " undetermined\n\n";

  PrintOptions opts;
  opts.title = "matching table (paper Table 3)";
  PrintTable(std::cout, result->MatchingRelation().value(), opts);
  std::cout << "\n";
  opts.title = "negative matching table (paper Table 4)";
  PrintTable(std::cout, result->NegativeRelation().value(), opts);
  std::cout << "\n";
  opts.title = "integrated table T_RS";
  PrintTable(std::cout,
             BuildIntegratedTable(*result, IntegrationLayout::kMerged).value(),
             opts);
  return 0;
}
