file(REMOVE_RECURSE
  "CMakeFiles/ilfd_table_test.dir/ilfd/ilfd_table_test.cc.o"
  "CMakeFiles/ilfd_table_test.dir/ilfd/ilfd_table_test.cc.o.d"
  "ilfd_table_test"
  "ilfd_table_test.pdb"
  "ilfd_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilfd_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
