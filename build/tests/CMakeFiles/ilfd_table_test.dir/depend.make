# Empty dependencies file for ilfd_table_test.
# This may be replaced when dependencies are built.
