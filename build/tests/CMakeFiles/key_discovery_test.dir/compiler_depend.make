# Empty compiler generated dependencies file for key_discovery_test.
# This may be replaced when dependencies are built.
