file(REMOVE_RECURSE
  "CMakeFiles/key_discovery_test.dir/discovery/key_discovery_test.cc.o"
  "CMakeFiles/key_discovery_test.dir/discovery/key_discovery_test.cc.o.d"
  "key_discovery_test"
  "key_discovery_test.pdb"
  "key_discovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
