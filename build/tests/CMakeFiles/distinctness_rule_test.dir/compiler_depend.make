# Empty compiler generated dependencies file for distinctness_rule_test.
# This may be replaced when dependencies are built.
