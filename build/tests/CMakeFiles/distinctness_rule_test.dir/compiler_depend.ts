# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for distinctness_rule_test.
