file(REMOVE_RECURSE
  "CMakeFiles/distinctness_rule_test.dir/rules/distinctness_rule_test.cc.o"
  "CMakeFiles/distinctness_rule_test.dir/rules/distinctness_rule_test.cc.o.d"
  "distinctness_rule_test"
  "distinctness_rule_test.pdb"
  "distinctness_rule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinctness_rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
