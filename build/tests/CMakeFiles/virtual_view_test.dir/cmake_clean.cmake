file(REMOVE_RECURSE
  "CMakeFiles/virtual_view_test.dir/eid/virtual_view_test.cc.o"
  "CMakeFiles/virtual_view_test.dir/eid/virtual_view_test.cc.o.d"
  "virtual_view_test"
  "virtual_view_test.pdb"
  "virtual_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
