# Empty dependencies file for virtual_view_test.
# This may be replaced when dependencies are built.
