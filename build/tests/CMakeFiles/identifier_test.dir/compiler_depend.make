# Empty compiler generated dependencies file for identifier_test.
# This may be replaced when dependencies are built.
