file(REMOVE_RECURSE
  "CMakeFiles/identifier_test.dir/eid/identifier_test.cc.o"
  "CMakeFiles/identifier_test.dir/eid/identifier_test.cc.o.d"
  "identifier_test"
  "identifier_test.pdb"
  "identifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
