file(REMOVE_RECURSE
  "CMakeFiles/ilfd_set_test.dir/ilfd/ilfd_set_test.cc.o"
  "CMakeFiles/ilfd_set_test.dir/ilfd/ilfd_set_test.cc.o.d"
  "ilfd_set_test"
  "ilfd_set_test.pdb"
  "ilfd_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilfd_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
