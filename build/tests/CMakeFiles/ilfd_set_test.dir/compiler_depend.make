# Empty compiler generated dependencies file for ilfd_set_test.
# This may be replaced when dependencies are built.
