file(REMOVE_RECURSE
  "CMakeFiles/algebra_pipeline_test.dir/eid/algebra_pipeline_test.cc.o"
  "CMakeFiles/algebra_pipeline_test.dir/eid/algebra_pipeline_test.cc.o.d"
  "algebra_pipeline_test"
  "algebra_pipeline_test.pdb"
  "algebra_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
