# Empty dependencies file for algebra_pipeline_test.
# This may be replaced when dependencies are built.
