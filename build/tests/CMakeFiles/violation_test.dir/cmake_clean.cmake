file(REMOVE_RECURSE
  "CMakeFiles/violation_test.dir/ilfd/violation_test.cc.o"
  "CMakeFiles/violation_test.dir/ilfd/violation_test.cc.o.d"
  "violation_test"
  "violation_test.pdb"
  "violation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/violation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
