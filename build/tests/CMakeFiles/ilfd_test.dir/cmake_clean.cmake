file(REMOVE_RECURSE
  "CMakeFiles/ilfd_test.dir/ilfd/ilfd_test.cc.o"
  "CMakeFiles/ilfd_test.dir/ilfd/ilfd_test.cc.o.d"
  "ilfd_test"
  "ilfd_test.pdb"
  "ilfd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilfd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
