file(REMOVE_RECURSE
  "CMakeFiles/extended_key_test.dir/eid/extended_key_test.cc.o"
  "CMakeFiles/extended_key_test.dir/eid/extended_key_test.cc.o.d"
  "extended_key_test"
  "extended_key_test.pdb"
  "extended_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
