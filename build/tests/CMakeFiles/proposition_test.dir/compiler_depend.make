# Empty compiler generated dependencies file for proposition_test.
# This may be replaced when dependencies are built.
