file(REMOVE_RECURSE
  "CMakeFiles/proposition_test.dir/logic/proposition_test.cc.o"
  "CMakeFiles/proposition_test.dir/logic/proposition_test.cc.o.d"
  "proposition_test"
  "proposition_test.pdb"
  "proposition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proposition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
