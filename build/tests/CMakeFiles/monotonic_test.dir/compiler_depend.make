# Empty compiler generated dependencies file for monotonic_test.
# This may be replaced when dependencies are built.
