
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/logic/kb_test.cc" "tests/CMakeFiles/kb_test.dir/logic/kb_test.cc.o" "gcc" "tests/CMakeFiles/kb_test.dir/logic/kb_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/eid_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/eid_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/eid_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/eid/CMakeFiles/eid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/eid_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/ilfd/CMakeFiles/eid_ilfd.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/eid_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/eid_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
