# Empty compiler generated dependencies file for ilfd_miner_test.
# This may be replaced when dependencies are built.
