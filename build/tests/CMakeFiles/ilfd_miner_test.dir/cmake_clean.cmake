file(REMOVE_RECURSE
  "CMakeFiles/ilfd_miner_test.dir/discovery/ilfd_miner_test.cc.o"
  "CMakeFiles/ilfd_miner_test.dir/discovery/ilfd_miner_test.cc.o.d"
  "ilfd_miner_test"
  "ilfd_miner_test.pdb"
  "ilfd_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilfd_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
