file(REMOVE_RECURSE
  "CMakeFiles/identity_rule_test.dir/rules/identity_rule_test.cc.o"
  "CMakeFiles/identity_rule_test.dir/rules/identity_rule_test.cc.o.d"
  "identity_rule_test"
  "identity_rule_test.pdb"
  "identity_rule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identity_rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
