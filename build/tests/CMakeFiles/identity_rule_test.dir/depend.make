# Empty dependencies file for identity_rule_test.
# This may be replaced when dependencies are built.
