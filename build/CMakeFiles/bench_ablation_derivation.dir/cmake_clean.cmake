file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_derivation.dir/bench/bench_ablation_derivation.cpp.o"
  "CMakeFiles/bench_ablation_derivation.dir/bench/bench_ablation_derivation.cpp.o.d"
  "bench/bench_ablation_derivation"
  "bench/bench_ablation_derivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_derivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
