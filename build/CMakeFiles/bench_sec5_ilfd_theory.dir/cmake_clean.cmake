file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_ilfd_theory.dir/bench/bench_sec5_ilfd_theory.cpp.o"
  "CMakeFiles/bench_sec5_ilfd_theory.dir/bench/bench_sec5_ilfd_theory.cpp.o.d"
  "bench/bench_sec5_ilfd_theory"
  "bench/bench_sec5_ilfd_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_ilfd_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
