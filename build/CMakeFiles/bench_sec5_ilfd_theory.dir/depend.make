# Empty dependencies file for bench_sec5_ilfd_theory.
# This may be replaced when dependencies are built.
