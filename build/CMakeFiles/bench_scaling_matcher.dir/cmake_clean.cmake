file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_matcher.dir/bench/bench_scaling_matcher.cpp.o"
  "CMakeFiles/bench_scaling_matcher.dir/bench/bench_scaling_matcher.cpp.o.d"
  "bench/bench_scaling_matcher"
  "bench/bench_scaling_matcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
