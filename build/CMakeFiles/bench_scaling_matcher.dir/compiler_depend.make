# Empty compiler generated dependencies file for bench_scaling_matcher.
# This may be replaced when dependencies are built.
