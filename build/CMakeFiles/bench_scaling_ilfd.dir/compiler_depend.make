# Empty compiler generated dependencies file for bench_scaling_ilfd.
# This may be replaced when dependencies are built.
