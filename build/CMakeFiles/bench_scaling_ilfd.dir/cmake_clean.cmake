file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_ilfd.dir/bench/bench_scaling_ilfd.cpp.o"
  "CMakeFiles/bench_scaling_ilfd.dir/bench/bench_scaling_ilfd.cpp.o.d"
  "bench/bench_scaling_ilfd"
  "bench/bench_scaling_ilfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_ilfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
