file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_monotonicity.dir/bench/bench_fig3_monotonicity.cpp.o"
  "CMakeFiles/bench_fig3_monotonicity.dir/bench/bench_fig3_monotonicity.cpp.o.d"
  "bench/bench_fig3_monotonicity"
  "bench/bench_fig3_monotonicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
