# Empty dependencies file for bench_fig1_correspondence.
# This may be replaced when dependencies are built.
