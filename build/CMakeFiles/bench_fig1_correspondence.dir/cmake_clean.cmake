file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_correspondence.dir/bench/bench_fig1_correspondence.cpp.o"
  "CMakeFiles/bench_fig1_correspondence.dir/bench/bench_fig1_correspondence.cpp.o.d"
  "bench/bench_fig1_correspondence"
  "bench/bench_fig1_correspondence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_correspondence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
