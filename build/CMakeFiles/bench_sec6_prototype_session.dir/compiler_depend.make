# Empty compiler generated dependencies file for bench_sec6_prototype_session.
# This may be replaced when dependencies are built.
