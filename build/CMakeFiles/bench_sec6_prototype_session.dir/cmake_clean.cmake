file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_prototype_session.dir/bench/bench_sec6_prototype_session.cpp.o"
  "CMakeFiles/bench_sec6_prototype_session.dir/bench/bench_sec6_prototype_session.cpp.o.d"
  "bench/bench_sec6_prototype_session"
  "bench/bench_sec6_prototype_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_prototype_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
