# Empty dependencies file for bench_example3_pipeline.
# This may be replaced when dependencies are built.
