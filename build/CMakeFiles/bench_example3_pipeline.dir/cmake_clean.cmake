file(REMOVE_RECURSE
  "CMakeFiles/bench_example3_pipeline.dir/bench/bench_example3_pipeline.cpp.o"
  "CMakeFiles/bench_example3_pipeline.dir/bench/bench_example3_pipeline.cpp.o.d"
  "bench/bench_example3_pipeline"
  "bench/bench_example3_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example3_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
