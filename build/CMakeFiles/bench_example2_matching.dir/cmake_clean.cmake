file(REMOVE_RECURSE
  "CMakeFiles/bench_example2_matching.dir/bench/bench_example2_matching.cpp.o"
  "CMakeFiles/bench_example2_matching.dir/bench/bench_example2_matching.cpp.o.d"
  "bench/bench_example2_matching"
  "bench/bench_example2_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example2_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
