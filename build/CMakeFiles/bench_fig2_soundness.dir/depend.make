# Empty dependencies file for bench_fig2_soundness.
# This may be replaced when dependencies are built.
