file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_soundness.dir/bench/bench_fig2_soundness.cpp.o"
  "CMakeFiles/bench_fig2_soundness.dir/bench/bench_fig2_soundness.cpp.o.d"
  "bench/bench_fig2_soundness"
  "bench/bench_fig2_soundness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
