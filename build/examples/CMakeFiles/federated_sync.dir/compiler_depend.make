# Empty compiler generated dependencies file for federated_sync.
# This may be replaced when dependencies are built.
