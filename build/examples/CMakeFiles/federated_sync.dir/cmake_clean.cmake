file(REMOVE_RECURSE
  "CMakeFiles/federated_sync.dir/federated_sync.cpp.o"
  "CMakeFiles/federated_sync.dir/federated_sync.cpp.o.d"
  "federated_sync"
  "federated_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
