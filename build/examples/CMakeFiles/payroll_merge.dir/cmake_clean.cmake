file(REMOVE_RECURSE
  "CMakeFiles/payroll_merge.dir/payroll_merge.cpp.o"
  "CMakeFiles/payroll_merge.dir/payroll_merge.cpp.o.d"
  "payroll_merge"
  "payroll_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payroll_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
