# Empty dependencies file for payroll_merge.
# This may be replaced when dependencies are built.
