file(REMOVE_RECURSE
  "CMakeFiles/restaurant_integration.dir/restaurant_integration.cpp.o"
  "CMakeFiles/restaurant_integration.dir/restaurant_integration.cpp.o.d"
  "restaurant_integration"
  "restaurant_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restaurant_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
