# Empty compiler generated dependencies file for restaurant_integration.
# This may be replaced when dependencies are built.
