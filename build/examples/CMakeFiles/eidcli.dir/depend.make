# Empty dependencies file for eidcli.
# This may be replaced when dependencies are built.
