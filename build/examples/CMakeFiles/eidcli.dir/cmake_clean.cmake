file(REMOVE_RECURSE
  "CMakeFiles/eidcli.dir/eidcli.cpp.o"
  "CMakeFiles/eidcli.dir/eidcli.cpp.o.d"
  "eidcli"
  "eidcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eidcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
