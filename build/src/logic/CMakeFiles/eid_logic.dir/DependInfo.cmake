
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/armstrong.cc" "src/logic/CMakeFiles/eid_logic.dir/armstrong.cc.o" "gcc" "src/logic/CMakeFiles/eid_logic.dir/armstrong.cc.o.d"
  "/root/repo/src/logic/implication.cc" "src/logic/CMakeFiles/eid_logic.dir/implication.cc.o" "gcc" "src/logic/CMakeFiles/eid_logic.dir/implication.cc.o.d"
  "/root/repo/src/logic/kb.cc" "src/logic/CMakeFiles/eid_logic.dir/kb.cc.o" "gcc" "src/logic/CMakeFiles/eid_logic.dir/kb.cc.o.d"
  "/root/repo/src/logic/model.cc" "src/logic/CMakeFiles/eid_logic.dir/model.cc.o" "gcc" "src/logic/CMakeFiles/eid_logic.dir/model.cc.o.d"
  "/root/repo/src/logic/proposition.cc" "src/logic/CMakeFiles/eid_logic.dir/proposition.cc.o" "gcc" "src/logic/CMakeFiles/eid_logic.dir/proposition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/eid_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
