file(REMOVE_RECURSE
  "libeid_logic.a"
)
