file(REMOVE_RECURSE
  "CMakeFiles/eid_logic.dir/armstrong.cc.o"
  "CMakeFiles/eid_logic.dir/armstrong.cc.o.d"
  "CMakeFiles/eid_logic.dir/implication.cc.o"
  "CMakeFiles/eid_logic.dir/implication.cc.o.d"
  "CMakeFiles/eid_logic.dir/kb.cc.o"
  "CMakeFiles/eid_logic.dir/kb.cc.o.d"
  "CMakeFiles/eid_logic.dir/model.cc.o"
  "CMakeFiles/eid_logic.dir/model.cc.o.d"
  "CMakeFiles/eid_logic.dir/proposition.cc.o"
  "CMakeFiles/eid_logic.dir/proposition.cc.o.d"
  "libeid_logic.a"
  "libeid_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eid_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
