# Empty dependencies file for eid_logic.
# This may be replaced when dependencies are built.
