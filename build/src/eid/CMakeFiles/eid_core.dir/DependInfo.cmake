
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eid/algebra_pipeline.cc" "src/eid/CMakeFiles/eid_core.dir/algebra_pipeline.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/algebra_pipeline.cc.o.d"
  "/root/repo/src/eid/correspondence.cc" "src/eid/CMakeFiles/eid_core.dir/correspondence.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/correspondence.cc.o.d"
  "/root/repo/src/eid/explain.cc" "src/eid/CMakeFiles/eid_core.dir/explain.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/explain.cc.o.d"
  "/root/repo/src/eid/extended_key.cc" "src/eid/CMakeFiles/eid_core.dir/extended_key.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/extended_key.cc.o.d"
  "/root/repo/src/eid/extension.cc" "src/eid/CMakeFiles/eid_core.dir/extension.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/extension.cc.o.d"
  "/root/repo/src/eid/identifier.cc" "src/eid/CMakeFiles/eid_core.dir/identifier.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/identifier.cc.o.d"
  "/root/repo/src/eid/incremental.cc" "src/eid/CMakeFiles/eid_core.dir/incremental.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/incremental.cc.o.d"
  "/root/repo/src/eid/integrate.cc" "src/eid/CMakeFiles/eid_core.dir/integrate.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/integrate.cc.o.d"
  "/root/repo/src/eid/match_tables.cc" "src/eid/CMakeFiles/eid_core.dir/match_tables.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/match_tables.cc.o.d"
  "/root/repo/src/eid/matcher.cc" "src/eid/CMakeFiles/eid_core.dir/matcher.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/matcher.cc.o.d"
  "/root/repo/src/eid/monotonic.cc" "src/eid/CMakeFiles/eid_core.dir/monotonic.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/monotonic.cc.o.d"
  "/root/repo/src/eid/multiway.cc" "src/eid/CMakeFiles/eid_core.dir/multiway.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/multiway.cc.o.d"
  "/root/repo/src/eid/negative.cc" "src/eid/CMakeFiles/eid_core.dir/negative.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/negative.cc.o.d"
  "/root/repo/src/eid/session.cc" "src/eid/CMakeFiles/eid_core.dir/session.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/session.cc.o.d"
  "/root/repo/src/eid/virtual_view.cc" "src/eid/CMakeFiles/eid_core.dir/virtual_view.cc.o" "gcc" "src/eid/CMakeFiles/eid_core.dir/virtual_view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rules/CMakeFiles/eid_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/ilfd/CMakeFiles/eid_ilfd.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/eid_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/eid_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
