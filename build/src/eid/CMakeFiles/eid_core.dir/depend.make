# Empty dependencies file for eid_core.
# This may be replaced when dependencies are built.
