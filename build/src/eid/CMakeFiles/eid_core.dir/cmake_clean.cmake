file(REMOVE_RECURSE
  "CMakeFiles/eid_core.dir/algebra_pipeline.cc.o"
  "CMakeFiles/eid_core.dir/algebra_pipeline.cc.o.d"
  "CMakeFiles/eid_core.dir/correspondence.cc.o"
  "CMakeFiles/eid_core.dir/correspondence.cc.o.d"
  "CMakeFiles/eid_core.dir/explain.cc.o"
  "CMakeFiles/eid_core.dir/explain.cc.o.d"
  "CMakeFiles/eid_core.dir/extended_key.cc.o"
  "CMakeFiles/eid_core.dir/extended_key.cc.o.d"
  "CMakeFiles/eid_core.dir/extension.cc.o"
  "CMakeFiles/eid_core.dir/extension.cc.o.d"
  "CMakeFiles/eid_core.dir/identifier.cc.o"
  "CMakeFiles/eid_core.dir/identifier.cc.o.d"
  "CMakeFiles/eid_core.dir/incremental.cc.o"
  "CMakeFiles/eid_core.dir/incremental.cc.o.d"
  "CMakeFiles/eid_core.dir/integrate.cc.o"
  "CMakeFiles/eid_core.dir/integrate.cc.o.d"
  "CMakeFiles/eid_core.dir/match_tables.cc.o"
  "CMakeFiles/eid_core.dir/match_tables.cc.o.d"
  "CMakeFiles/eid_core.dir/matcher.cc.o"
  "CMakeFiles/eid_core.dir/matcher.cc.o.d"
  "CMakeFiles/eid_core.dir/monotonic.cc.o"
  "CMakeFiles/eid_core.dir/monotonic.cc.o.d"
  "CMakeFiles/eid_core.dir/multiway.cc.o"
  "CMakeFiles/eid_core.dir/multiway.cc.o.d"
  "CMakeFiles/eid_core.dir/negative.cc.o"
  "CMakeFiles/eid_core.dir/negative.cc.o.d"
  "CMakeFiles/eid_core.dir/session.cc.o"
  "CMakeFiles/eid_core.dir/session.cc.o.d"
  "CMakeFiles/eid_core.dir/virtual_view.cc.o"
  "CMakeFiles/eid_core.dir/virtual_view.cc.o.d"
  "libeid_core.a"
  "libeid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
