file(REMOVE_RECURSE
  "libeid_core.a"
)
