# Empty dependencies file for eid_discovery.
# This may be replaced when dependencies are built.
