file(REMOVE_RECURSE
  "libeid_discovery.a"
)
