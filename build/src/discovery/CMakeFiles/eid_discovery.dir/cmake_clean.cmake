file(REMOVE_RECURSE
  "CMakeFiles/eid_discovery.dir/ilfd_miner.cc.o"
  "CMakeFiles/eid_discovery.dir/ilfd_miner.cc.o.d"
  "CMakeFiles/eid_discovery.dir/key_discovery.cc.o"
  "CMakeFiles/eid_discovery.dir/key_discovery.cc.o.d"
  "libeid_discovery.a"
  "libeid_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eid_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
