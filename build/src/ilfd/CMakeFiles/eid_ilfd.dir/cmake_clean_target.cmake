file(REMOVE_RECURSE
  "libeid_ilfd.a"
)
