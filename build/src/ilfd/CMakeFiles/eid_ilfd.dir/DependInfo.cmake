
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ilfd/derivation.cc" "src/ilfd/CMakeFiles/eid_ilfd.dir/derivation.cc.o" "gcc" "src/ilfd/CMakeFiles/eid_ilfd.dir/derivation.cc.o.d"
  "/root/repo/src/ilfd/fd.cc" "src/ilfd/CMakeFiles/eid_ilfd.dir/fd.cc.o" "gcc" "src/ilfd/CMakeFiles/eid_ilfd.dir/fd.cc.o.d"
  "/root/repo/src/ilfd/ilfd.cc" "src/ilfd/CMakeFiles/eid_ilfd.dir/ilfd.cc.o" "gcc" "src/ilfd/CMakeFiles/eid_ilfd.dir/ilfd.cc.o.d"
  "/root/repo/src/ilfd/ilfd_set.cc" "src/ilfd/CMakeFiles/eid_ilfd.dir/ilfd_set.cc.o" "gcc" "src/ilfd/CMakeFiles/eid_ilfd.dir/ilfd_set.cc.o.d"
  "/root/repo/src/ilfd/ilfd_table.cc" "src/ilfd/CMakeFiles/eid_ilfd.dir/ilfd_table.cc.o" "gcc" "src/ilfd/CMakeFiles/eid_ilfd.dir/ilfd_table.cc.o.d"
  "/root/repo/src/ilfd/violation.cc" "src/ilfd/CMakeFiles/eid_ilfd.dir/violation.cc.o" "gcc" "src/ilfd/CMakeFiles/eid_ilfd.dir/violation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/eid_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/eid_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
