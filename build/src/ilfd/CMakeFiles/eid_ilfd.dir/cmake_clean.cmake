file(REMOVE_RECURSE
  "CMakeFiles/eid_ilfd.dir/derivation.cc.o"
  "CMakeFiles/eid_ilfd.dir/derivation.cc.o.d"
  "CMakeFiles/eid_ilfd.dir/fd.cc.o"
  "CMakeFiles/eid_ilfd.dir/fd.cc.o.d"
  "CMakeFiles/eid_ilfd.dir/ilfd.cc.o"
  "CMakeFiles/eid_ilfd.dir/ilfd.cc.o.d"
  "CMakeFiles/eid_ilfd.dir/ilfd_set.cc.o"
  "CMakeFiles/eid_ilfd.dir/ilfd_set.cc.o.d"
  "CMakeFiles/eid_ilfd.dir/ilfd_table.cc.o"
  "CMakeFiles/eid_ilfd.dir/ilfd_table.cc.o.d"
  "CMakeFiles/eid_ilfd.dir/violation.cc.o"
  "CMakeFiles/eid_ilfd.dir/violation.cc.o.d"
  "libeid_ilfd.a"
  "libeid_ilfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eid_ilfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
