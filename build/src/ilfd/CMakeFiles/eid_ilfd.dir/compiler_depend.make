# Empty compiler generated dependencies file for eid_ilfd.
# This may be replaced when dependencies are built.
