file(REMOVE_RECURSE
  "libeid_rules.a"
)
