
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/distinctness_rule.cc" "src/rules/CMakeFiles/eid_rules.dir/distinctness_rule.cc.o" "gcc" "src/rules/CMakeFiles/eid_rules.dir/distinctness_rule.cc.o.d"
  "/root/repo/src/rules/identity_rule.cc" "src/rules/CMakeFiles/eid_rules.dir/identity_rule.cc.o" "gcc" "src/rules/CMakeFiles/eid_rules.dir/identity_rule.cc.o.d"
  "/root/repo/src/rules/predicate.cc" "src/rules/CMakeFiles/eid_rules.dir/predicate.cc.o" "gcc" "src/rules/CMakeFiles/eid_rules.dir/predicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ilfd/CMakeFiles/eid_ilfd.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/eid_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/eid_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
