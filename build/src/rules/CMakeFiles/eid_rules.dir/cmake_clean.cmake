file(REMOVE_RECURSE
  "CMakeFiles/eid_rules.dir/distinctness_rule.cc.o"
  "CMakeFiles/eid_rules.dir/distinctness_rule.cc.o.d"
  "CMakeFiles/eid_rules.dir/identity_rule.cc.o"
  "CMakeFiles/eid_rules.dir/identity_rule.cc.o.d"
  "CMakeFiles/eid_rules.dir/predicate.cc.o"
  "CMakeFiles/eid_rules.dir/predicate.cc.o.d"
  "libeid_rules.a"
  "libeid_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eid_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
