# Empty compiler generated dependencies file for eid_rules.
# This may be replaced when dependencies are built.
