file(REMOVE_RECURSE
  "CMakeFiles/eid_baselines.dir/baseline.cc.o"
  "CMakeFiles/eid_baselines.dir/baseline.cc.o.d"
  "CMakeFiles/eid_baselines.dir/heuristic_rules.cc.o"
  "CMakeFiles/eid_baselines.dir/heuristic_rules.cc.o.d"
  "CMakeFiles/eid_baselines.dir/ilfd_technique.cc.o"
  "CMakeFiles/eid_baselines.dir/ilfd_technique.cc.o.d"
  "CMakeFiles/eid_baselines.dir/key_equivalence.cc.o"
  "CMakeFiles/eid_baselines.dir/key_equivalence.cc.o.d"
  "CMakeFiles/eid_baselines.dir/probabilistic_attr.cc.o"
  "CMakeFiles/eid_baselines.dir/probabilistic_attr.cc.o.d"
  "CMakeFiles/eid_baselines.dir/probabilistic_key.cc.o"
  "CMakeFiles/eid_baselines.dir/probabilistic_key.cc.o.d"
  "CMakeFiles/eid_baselines.dir/user_specified.cc.o"
  "CMakeFiles/eid_baselines.dir/user_specified.cc.o.d"
  "libeid_baselines.a"
  "libeid_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eid_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
