file(REMOVE_RECURSE
  "libeid_baselines.a"
)
