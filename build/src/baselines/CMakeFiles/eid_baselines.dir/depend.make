# Empty dependencies file for eid_baselines.
# This may be replaced when dependencies are built.
