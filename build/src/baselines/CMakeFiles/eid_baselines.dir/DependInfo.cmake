
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline.cc" "src/baselines/CMakeFiles/eid_baselines.dir/baseline.cc.o" "gcc" "src/baselines/CMakeFiles/eid_baselines.dir/baseline.cc.o.d"
  "/root/repo/src/baselines/heuristic_rules.cc" "src/baselines/CMakeFiles/eid_baselines.dir/heuristic_rules.cc.o" "gcc" "src/baselines/CMakeFiles/eid_baselines.dir/heuristic_rules.cc.o.d"
  "/root/repo/src/baselines/ilfd_technique.cc" "src/baselines/CMakeFiles/eid_baselines.dir/ilfd_technique.cc.o" "gcc" "src/baselines/CMakeFiles/eid_baselines.dir/ilfd_technique.cc.o.d"
  "/root/repo/src/baselines/key_equivalence.cc" "src/baselines/CMakeFiles/eid_baselines.dir/key_equivalence.cc.o" "gcc" "src/baselines/CMakeFiles/eid_baselines.dir/key_equivalence.cc.o.d"
  "/root/repo/src/baselines/probabilistic_attr.cc" "src/baselines/CMakeFiles/eid_baselines.dir/probabilistic_attr.cc.o" "gcc" "src/baselines/CMakeFiles/eid_baselines.dir/probabilistic_attr.cc.o.d"
  "/root/repo/src/baselines/probabilistic_key.cc" "src/baselines/CMakeFiles/eid_baselines.dir/probabilistic_key.cc.o" "gcc" "src/baselines/CMakeFiles/eid_baselines.dir/probabilistic_key.cc.o.d"
  "/root/repo/src/baselines/user_specified.cc" "src/baselines/CMakeFiles/eid_baselines.dir/user_specified.cc.o" "gcc" "src/baselines/CMakeFiles/eid_baselines.dir/user_specified.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eid/CMakeFiles/eid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/eid_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/ilfd/CMakeFiles/eid_ilfd.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/eid_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/eid_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
