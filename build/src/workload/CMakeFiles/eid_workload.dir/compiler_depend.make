# Empty compiler generated dependencies file for eid_workload.
# This may be replaced when dependencies are built.
