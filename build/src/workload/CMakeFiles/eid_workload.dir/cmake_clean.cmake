file(REMOVE_RECURSE
  "CMakeFiles/eid_workload.dir/fixtures.cc.o"
  "CMakeFiles/eid_workload.dir/fixtures.cc.o.d"
  "CMakeFiles/eid_workload.dir/generator.cc.o"
  "CMakeFiles/eid_workload.dir/generator.cc.o.d"
  "libeid_workload.a"
  "libeid_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eid_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
