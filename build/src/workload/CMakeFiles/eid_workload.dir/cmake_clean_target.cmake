file(REMOVE_RECURSE
  "libeid_workload.a"
)
