file(REMOVE_RECURSE
  "libeid_relational.a"
)
