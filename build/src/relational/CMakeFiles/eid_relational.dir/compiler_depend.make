# Empty compiler generated dependencies file for eid_relational.
# This may be replaced when dependencies are built.
