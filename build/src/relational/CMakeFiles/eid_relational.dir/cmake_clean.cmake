file(REMOVE_RECURSE
  "CMakeFiles/eid_relational.dir/algebra.cc.o"
  "CMakeFiles/eid_relational.dir/algebra.cc.o.d"
  "CMakeFiles/eid_relational.dir/catalog.cc.o"
  "CMakeFiles/eid_relational.dir/catalog.cc.o.d"
  "CMakeFiles/eid_relational.dir/csv.cc.o"
  "CMakeFiles/eid_relational.dir/csv.cc.o.d"
  "CMakeFiles/eid_relational.dir/printer.cc.o"
  "CMakeFiles/eid_relational.dir/printer.cc.o.d"
  "CMakeFiles/eid_relational.dir/relation.cc.o"
  "CMakeFiles/eid_relational.dir/relation.cc.o.d"
  "CMakeFiles/eid_relational.dir/schema.cc.o"
  "CMakeFiles/eid_relational.dir/schema.cc.o.d"
  "CMakeFiles/eid_relational.dir/status.cc.o"
  "CMakeFiles/eid_relational.dir/status.cc.o.d"
  "CMakeFiles/eid_relational.dir/value.cc.o"
  "CMakeFiles/eid_relational.dir/value.cc.o.d"
  "libeid_relational.a"
  "libeid_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eid_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
