// Fingerprint index: (attribute, value) fingerprints -> row buckets.
//
// For each column of an extended relation the snapshot keeps a sorted
// array of 64-bit fingerprints — exec::FingerprintKey(column,
// Value::Hash()), the exact key the staged matcher's AMQ filter stores —
// each pointing at the ascending row ids carrying that value. Two uses:
//
//  * AMQ seeding: a loaded world hands the per-column fingerprint arrays
//    straight to the candidate generator, which inserts them into its
//    cuckoo filter instead of re-hashing every row. The filter's *content*
//    (the fingerprint set) is identical to a fresh build, so the
//    no-false-negative contract holds and identify output is unchanged.
//  * Point lookup: `eid_snapshot inspect`/`verify` can answer "which rows
//    carry this value?" from the file without rebuilding hash indexes.
//
// Distinct Values whose hashes collide share a fingerprint; their row
// buckets are merged sorted-unique (a superset bucket is harmless for
// both uses — exact residual evaluation filters candidates anyway).

#ifndef EID_STORAGE_FINGERPRINT_INDEX_H_
#define EID_STORAGE_FINGERPRINT_INDEX_H_

#include <cstdint>
#include <vector>

#include "relational/relation.h"
#include "storage/format.h"

namespace eid {
namespace storage {

/// Per-column fingerprint -> row-bucket mapping for one relation.
class FingerprintIndex {
 public:
  /// One column's buckets: `fps` sorted ascending; bucket i spans
  /// rows[offsets[i] .. offsets[i+1]) with row ids ascending.
  struct Column {
    std::vector<uint64_t> fps;
    std::vector<uint32_t> offsets;  // fps.size() + 1 entries
    std::vector<uint32_t> rows;
  };

  /// Builds from a relation: one bucket per distinct non-NULL value
  /// fingerprint per column.
  static FingerprintIndex Build(const Relation& relation);

  /// Same index, built against a row-major interned-id matrix of the
  /// relation (0xFFFFFFFF marks NULL cells; ids < dict_size): each
  /// distinct id per column hashes its Value once instead of once per
  /// cell, which is what the snapshot save path wants on low-cardinality
  /// columns. Bit-identical to Build(relation).
  static FingerprintIndex Build(const Relation& relation,
                                const std::vector<uint32_t>& ids,
                                size_t dict_size);

  size_t column_count() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Ascending row ids carrying fingerprint `fp` in `column`; empty when
  /// absent.
  std::vector<uint32_t> Lookup(size_t column, uint64_t fp) const;

  /// All distinct fingerprints of a column — the AMQ seed array.
  const std::vector<uint64_t>& ColumnFingerprints(size_t column) const {
    return columns_[column].fps;
  }

  /// In-memory footprint in bytes (bench accounting).
  size_t ByteSize() const;

  /// Section payload: column count u32; per column bucket count u32,
  /// total rows u32, fps u64[], offsets u32[count+1], rows u32[].
  void AppendTo(ByteWriter* out) const;

  /// Decodes a fingerprints section; validates sortedness and offsets.
  static Status Parse(ByteReader* in, FingerprintIndex* out);

 private:
  std::vector<Column> columns_;
};

}  // namespace storage
}  // namespace eid

#endif  // EID_STORAGE_FINGERPRINT_INDEX_H_
