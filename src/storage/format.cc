#include "storage/format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace eid {
namespace storage {

const char* SectionKindName(SectionKind kind) {
  switch (kind) {
    case SectionKind::kDictionary: return "dictionary";
    case SectionKind::kRelation: return "relation";
    case SectionKind::kPostings: return "postings";
    case SectionKind::kFingerprints: return "fingerprints";
    case SectionKind::kMatchTables: return "match_tables";
    case SectionKind::kProvenance: return "provenance";
    case SectionKind::kRuleProgram: return "rule_program";
  }
  return "?";
}

const char* RelationRoleName(RelationRole role) {
  switch (role) {
    case RelationRole::kSourceR: return "R";
    case RelationRole::kSourceS: return "S";
    case RelationRole::kExtendedR: return "R_extended";
    case RelationRole::kExtendedS: return "S_extended";
  }
  return "?";
}

uint64_t Fnv64(const void* data, size_t len) {
  // Four interleaved FNV-1a streams over 32-byte blocks, folded into one
  // state for the tail. A multi-megabyte snapshot pays this once per
  // section at Open, and a single FNV chain is limited by the latency of
  // its serial xor-multiply dependency (~one multiply per 8 bytes);
  // four independent chains keep the multiplier pipeline full. Any single
  // bit flip perturbs exactly one lane, and the fold (xor then multiply
  // per lane) diffuses it into the result, so the any-single-bit-flip
  // detection of the word-wise variant is preserved. Reads go through
  // memcpy: `data` is an arbitrary mmap offset, so direct uint64_t loads
  // would be UB.
  constexpr uint64_t kBasis = 1469598103934665603ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h0 = kBasis, h1 = kBasis + 1, h2 = kBasis + 2, h3 = kBasis + 3;
  while (len >= 32) {
    uint64_t w[4];
    std::memcpy(w, p, sizeof(w));
    h0 = (h0 ^ w[0]) * kPrime;
    h1 = (h1 ^ w[1]) * kPrime;
    h2 = (h2 ^ w[2]) * kPrime;
    h3 = (h3 ^ w[3]) * kPrime;
    p += 32;
    len -= 32;
  }
  uint64_t h = h0;
  h = (h ^ h1) * kPrime;
  h = (h ^ h2) * kPrime;
  h = (h ^ h3) * kPrime;
  while (len >= sizeof(uint64_t)) {
    uint64_t word = 0;
    std::memcpy(&word, p, sizeof(word));
    h = (h ^ word) * kPrime;
    p += sizeof(word);
    len -= sizeof(word);
  }
  for (size_t i = 0; i < len; ++i) {
    h = (h ^ p[i]) * kPrime;
  }
  return h;
}

Status CorruptError(const std::string& what) {
  return Status::InvalidArgument("snapshot corrupt: " + what);
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ == nullptr) return;
  if (mapped_) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  } else {
    delete[] data_;
  }
  data_ = nullptr;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("snapshot file not found: " + path);
    }
    return Status::InvalidArgument("cannot open snapshot '" + path +
                                   "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot stat snapshot '" + path + "'");
  }
  MappedFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ == 0) {
    ::close(fd);
    return CorruptError("empty file '" + path + "'");
  }
  void* map = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    out.data_ = static_cast<const uint8_t*>(map);
    out.mapped_ = true;
    ::close(fd);
    return out;
  }
  // Fallback: read into an owned buffer (e.g. filesystems without mmap).
  uint8_t* buf = new uint8_t[out.size_];
  size_t done = 0;
  while (done < out.size_) {
    ssize_t n = ::read(fd, buf + done, out.size_ - done);
    if (n <= 0) {
      delete[] buf;
      ::close(fd);
      return Status::InvalidArgument("cannot read snapshot '" + path + "'");
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  out.data_ = buf;
  out.mapped_ = false;
  return out;
}

}  // namespace storage
}  // namespace eid
