// Elias-Fano encoding of sorted row-id lists (DESIGN.md §4e).
//
// A posting list — the ascending row ids carrying one attribute value —
// is a strictly increasing sequence over a known universe (the relation's
// row count). Elias-Fano stores each id's low `l = ~log2(universe/count)`
// bits verbatim and the high bits as a unary-coded bitvector, costing
// about `2 + log2(universe/count)` bits per id: near the information-
// theoretic optimum whether the list is dense (every row) or sparse (one
// row). This is the scfind-style encoding, rebuilt here over byte
// buffers so lists embed directly in a snapshot section.
//
// Only sequential decode is needed (cold-start rebuilds whole bucket
// vectors); no rank/select structures are kept. Decode validates shape —
// strictly increasing, below the universe, exact count — so a truncated
// or bit-flipped list fails with a Status instead of producing garbage
// row ids.

#ifndef EID_STORAGE_ELIAS_FANO_H_
#define EID_STORAGE_ELIAS_FANO_H_

#include <cstdint>
#include <vector>

#include "relational/status.h"
#include "storage/format.h"

namespace eid {
namespace storage {

/// One encoded list: parameters plus the two packed bit arrays.
struct EliasFano {
  uint32_t count = 0;     // elements encoded
  uint32_t universe = 0;  // every element is < universe
  uint8_t low_bits = 0;   // l: low bits stored verbatim per element
  std::vector<uint8_t> lower;  // count * l bits, LSB-first
  std::vector<uint8_t> upper;  // unary high-bit stream

  /// Encoded payload size in bytes (diagnostics / bench accounting).
  size_t ByteSize() const { return lower.size() + upper.size(); }
};

/// Encodes a strictly increasing sequence with elements < universe.
/// Precondition (checked): sorted strictly ascending, below universe.
EliasFano EliasFanoEncode(const std::vector<uint32_t>& sorted_ids,
                          uint32_t universe);

/// Decodes into `out` (cleared first). Errors on malformed shape: wrong
/// set-bit count, elements >= universe, or non-increasing order.
Status EliasFanoDecode(const EliasFano& ef, std::vector<uint32_t>* out);

/// Appends the decoded elements to `out` (not cleared), widening to
/// size_t — the posting-arena path, which decodes straight into the
/// per-column row arena instead of through a scratch vector.
Status EliasFanoDecodeAppend(const EliasFano& ef, std::vector<size_t>* out);

/// Serializes: count u32, universe u32, low_bits u8, lower len u32,
/// upper len u32, lower bytes, upper bytes.
void EliasFanoAppend(const EliasFano& ef, ByteWriter* out);

/// Parses one serialized list; false on overrun or impossible sizes.
bool EliasFanoParse(ByteReader* in, EliasFano* out);

}  // namespace storage
}  // namespace eid

#endif  // EID_STORAGE_ELIAS_FANO_H_
