// World snapshots: save/load a full integration world in one file.
//
// A snapshot persists everything an identification run consumed and
// produced — source R and S, the extended R' and S', derivation
// provenance, MT/NMT, and the rule program (ILFDs, correspondence,
// extended key) — plus the cold-start accelerators: an interned-value
// dictionary (storage/dictionary.h), per-attribute Elias-Fano posting
// lists (storage/elias_fano.h), and a fingerprint index
// (storage/fingerprint_index.h). Loading therefore rebuilds blocking
// indexes from decoded posting lists and seeds AMQ filters and the value
// interner straight from the file, instead of re-scanning, re-hashing
// and re-interning every row.
//
// File layout and integrity rules are in storage/format.h; every decode
// failure (truncation, bit flip, wrong magic/version/endianness) is a
// clean Status with the "snapshot corrupt:" prefix, never UB.

#ifndef EID_STORAGE_SNAPSHOT_H_
#define EID_STORAGE_SNAPSHOT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compile/interner.h"
#include "eid/identifier.h"
#include "exec/amq_filter.h"
#include "exec/blocking_index.h"
#include "storage/fingerprint_index.h"
#include "storage/format.h"

namespace eid {
namespace storage {

/// Borrowed views of everything WriteSnapshot persists. The four
/// relations are required; tables, traces and the rule program may be
/// null/empty (saved as empty sections).
struct WorldImage {
  const Relation* r = nullptr;
  const Relation* s = nullptr;
  const Relation* r_extended = nullptr;
  const Relation* s_extended = nullptr;
  const std::vector<Derivation>* r_traces = nullptr;
  const std::vector<Derivation>* s_traces = nullptr;
  const MatchTable* matching = nullptr;
  const MatchTable* negative = nullptr;
  const IlfdSet* ilfds = nullptr;
  const AttributeCorrespondence* correspondence = nullptr;
  const ExtendedKey* extended_key = nullptr;
};

/// Convenience image over an identification run and its inputs.
WorldImage ImageOf(const Relation& r, const Relation& s,
                   const IdentifierConfig& config,
                   const IdentificationResult& result);

/// Serializes `image` to `path` (single pass, whole file buffered then
/// written). Errors: null required relations, unwritable path.
Status WriteSnapshot(const WorldImage& image, const std::string& path);

/// Validated access to a snapshot file: header, section table and every
/// section checksum are verified in Open, so section payloads handed out
/// afterwards are exactly the bytes that were written.
class SnapshotReader {
 public:
  /// Maps and validates. NotFound for a missing file; otherwise any
  /// malformed structure yields a "snapshot corrupt:" InvalidArgument.
  static Result<SnapshotReader> Open(const std::string& path);

  const std::vector<SectionEntry>& sections() const { return sections_; }
  size_t file_size() const { return file_.size(); }
  bool mapped() const { return file_.mapped(); }

  /// Reader over the payload of the first section matching (kind, role);
  /// NotFound when the snapshot has no such section.
  Result<ByteReader> Section(SectionKind kind, uint32_t role = 0) const;

 private:
  SnapshotReader() = default;

  MappedFile file_;
  std::vector<SectionEntry> sections_;
};

/// Decoded posting lists of one relation: columns[c] holds ascending
/// (value id, ascending row ids) buckets. Row ids live in one arena per
/// column — a bucket is a [begin, begin+count) window into it — so a
/// column decodes with two allocations regardless of how many distinct
/// values it has (tens of thousands of per-bucket vectors was the
/// dominant cost of the postings section at large n).
struct PostingColumns {
  struct Bucket {
    uint32_t value_id = 0;
    uint32_t begin = 0;
    uint32_t count = 0;
  };
  struct Column {
    std::vector<Bucket> buckets;
    std::vector<size_t> rows;  // arena: bucket b owns rows[b.begin ..)

    /// The row-id window of one bucket.
    const size_t* rows_of(const Bucket& b) const { return rows.data() + b.begin; }
  };
  std::vector<Column> columns;
};

/// A fully decoded world plus the cold-start accelerators.
struct LoadedWorld {
  Relation r, s, r_extended, s_extended;
  std::vector<Derivation> r_traces, s_traces;
  MatchTable matching{/*negative=*/false};
  MatchTable negative{/*negative=*/true};
  IlfdSet ilfds;
  AttributeCorrespondence correspondence;
  std::optional<ExtendedKey> extended_key;

  /// Interned values in id order (dictionary section).
  std::vector<Value> dictionary;
  /// Per-column distinct fingerprints of R'/S' (fingerprints section),
  /// ready to hand to MatcherOptions::amq_seeds. EID_SHARED_IMMUTABLE:
  /// decoded once at load, then read-only by every engine run seeded
  /// from this world (the shared_ptr is aliased, never mutated through).
  EID_SHARED_IMMUTABLE std::shared_ptr<exec::AmqSeeds> amq_seeds;
  /// Columnar-world seed (exec/columnar_world.h): the dictionary plus the
  /// source R/S id matrices captured during relation decode (NULL cells
  /// mapped to ColumnarWorld::kNullId), ready to hand to
  /// MatcherOptions::columnar_seeds — a snapshot-loaded session then
  /// starts with every base column encoded and re-interns nothing.
  /// EID_SHARED_IMMUTABLE like amq_seeds: decoded once, then read-only.
  EID_SHARED_IMMUTABLE std::shared_ptr<exec::ColumnarSeeds> columnar_seeds;
  /// Decoded Elias-Fano postings of R'/S' (postings sections).
  PostingColumns r_postings, s_postings;
  /// stage="snapshot_load": wall_ms/snapshot_load_ms = map + decode +
  /// checksum time, dict_values = dictionary size, items = rows decoded.
  exec::StageStats load_stats;

  /// Identification config over the loaded rule program, with amq_seeds
  /// wired into the matcher options. Identify on the loaded sources is
  /// bit-identical to a fresh build (tests/storage/ enforce this).
  IdentifierConfig ToConfig() const;

  /// Installs blocking indexes for every column of R' and S' into the
  /// caches, rebuilt from the decoded posting lists — the cold-start
  /// path that avoids re-scanning and re-hashing the relations.
  /// Serial-only, like every ColumnIndexCache mutation: call before any
  /// ParallelFor that probes the caches (EID_SHARED_IMMUTABLE from then
  /// on — see exec/blocking_index.h).
  void PreloadIndexes(exec::ColumnIndexCache* r_cache,
                      exec::ColumnIndexCache* s_cache) const;

  /// Preloads `interner` with the dictionary in id order, reproducing
  /// the saved dense ids (compile::ValueInterner handoff).
  void SeedInterner(compile::ValueInterner* interner) const {
    interner->Preload(dictionary);
  }
};

/// Opens, validates and decodes a whole snapshot.
Result<LoadedWorld> LoadSnapshot(const std::string& path);

/// Rebuilds one column's blocking index from decoded postings.
/// `dictionary` maps the bucket value ids back to Values.
exec::ColumnIndex IndexFromPostings(const PostingColumns::Column& column,
                                    const std::vector<Value>& dictionary);

}  // namespace storage
}  // namespace eid

#endif  // EID_STORAGE_SNAPSHOT_H_
