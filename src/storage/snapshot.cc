#include "storage/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "exec/stage_stats.h"
#include "storage/dictionary.h"
#include "storage/elias_fano.h"

namespace eid {
namespace storage {

namespace {

// ---------------------------------------------------------------------------
// Section encoders (layouts documented in DESIGN.md §4e)
// ---------------------------------------------------------------------------

// Sentinel for NULL cells in the row-major id matrices AppendRelation
// hands to the postings and fingerprint encoders (the dictionary interns
// NULL under a regular id, but those encoders skip NULL cells).
constexpr uint32_t kNoCell = 0xFFFFFFFFu;

void AppendRelation(const Relation& rel, DictionaryBuilder* dict,
                    ByteWriter* out,
                    std::vector<uint32_t>* ids_out = nullptr) {
  out->PutString(rel.name());
  out->PutU32(static_cast<uint32_t>(rel.schema().size()));
  for (const Attribute& a : rel.schema().attributes()) {
    out->PutString(a.name);
    out->PutU8(static_cast<uint8_t>(a.type));
  }
  out->PutU32(static_cast<uint32_t>(rel.keys().size()));
  for (const KeyDef& key : rel.keys()) {
    out->PutU32(static_cast<uint32_t>(key.attribute_indices.size()));
    for (size_t i : key.attribute_indices) {
      out->PutU32(static_cast<uint32_t>(i));
    }
  }
  out->PutU32(static_cast<uint32_t>(rel.size()));
  if (ids_out != nullptr) ids_out->reserve(rel.size() * rel.schema().size());
  for (const Row& row : rel.rows()) {
    for (const Value& v : row) {
      const uint32_t id = dict->Intern(v);
      out->PutU32(id);
      if (ids_out != nullptr) ids_out->push_back(v.is_null() ? kNoCell : id);
    }
  }
}

void AppendPostings(const Relation& rel, const std::vector<uint32_t>& ids,
                    ByteWriter* out) {
  const uint32_t universe = static_cast<uint32_t>(rel.size());
  const size_t cols = rel.schema().size();
  out->PutU32(static_cast<uint32_t>(cols));
  out->PutU32(universe);
  std::vector<uint64_t> cells;
  std::vector<uint32_t> rows;
  for (size_t c = 0; c < cols; ++c) {
    // value id -> ascending row ids; NULL cells are not posted (mirrors
    // ColumnIndex::Build, whose buckets these lists reconstruct). One
    // flat (value id << 32 | row) array sorted once gives the same
    // sorted-bucket walk as a std::map, without a node allocation and
    // rebalance per cell — the map build dominated snapshot saves. Ids
    // come from the matrix AppendRelation built, so no cell is hashed
    // or interned a second time.
    cells.clear();
    for (size_t r = 0; r < rel.size(); ++r) {
      const uint32_t id = ids[r * cols + c];
      if (id == kNoCell) continue;
      cells.push_back((static_cast<uint64_t>(id) << 32) | r);
    }
    std::sort(cells.begin(), cells.end());
    size_t distinct = 0;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i == 0 || (cells[i] >> 32) != (cells[i - 1] >> 32)) ++distinct;
    }
    out->PutU32(static_cast<uint32_t>(distinct));
    for (size_t i = 0; i < cells.size();) {
      const uint32_t value_id = static_cast<uint32_t>(cells[i] >> 32);
      rows.clear();
      for (; i < cells.size() && (cells[i] >> 32) == value_id; ++i) {
        rows.push_back(static_cast<uint32_t>(cells[i]));
      }
      out->PutU32(value_id);
      EliasFanoAppend(EliasFanoEncode(rows, universe), out);
    }
  }
}

void AppendPairs(const MatchTable* table, ByteWriter* out) {
  if (table == nullptr) {
    out->PutU32(0);
    return;
  }
  out->PutU32(static_cast<uint32_t>(table->size()));
  for (const TuplePair& p : table->pairs()) {
    out->PutU64(static_cast<uint64_t>(p.r_index));
    out->PutU64(static_cast<uint64_t>(p.s_index));
  }
}

void AppendTraces(const std::vector<Derivation>* traces,
                  DictionaryBuilder* dict, ByteWriter* out) {
  if (traces == nullptr) {
    out->PutU32(0);
    return;
  }
  out->PutU32(static_cast<uint32_t>(traces->size()));
  for (const Derivation& d : *traces) {
    out->PutU32(static_cast<uint32_t>(d.derived.size()));
    for (const auto& [attribute, value] : d.derived) {
      out->PutString(attribute);
      out->PutU32(dict->Intern(value));
    }
    out->PutU32(static_cast<uint32_t>(d.steps.size()));
    for (const DerivationStep& step : d.steps) {
      out->PutString(step.attribute);
      out->PutU32(dict->Intern(step.value));
      out->PutU64(static_cast<uint64_t>(step.ilfd_index));
    }
    out->PutU32(static_cast<uint32_t>(d.conflicts.size()));
    for (const DerivationConflict& c : d.conflicts) {
      out->PutString(c.attribute);
      out->PutU32(dict->Intern(c.first_value));
      out->PutU32(dict->Intern(c.second_value));
      // kDerivationBaseProvenance == size_t(-1) survives as u64.
      out->PutU64(static_cast<uint64_t>(c.first_ilfd));
      out->PutU64(static_cast<uint64_t>(c.second_ilfd));
    }
  }
}

void AppendAtoms(const std::vector<Atom>& atoms, DictionaryBuilder* dict,
                 ByteWriter* out) {
  out->PutU32(static_cast<uint32_t>(atoms.size()));
  for (const Atom& a : atoms) {
    out->PutString(a.attribute);
    out->PutU32(dict->Intern(a.value));
  }
}

void AppendRuleProgram(const WorldImage& image, DictionaryBuilder* dict,
                       ByteWriter* out) {
  // ILFDs are stored structurally (atoms over dictionary value ids), not
  // as display text — Value::ToString round-trips are lossy for strings
  // that look numeric, the structural form is not.
  if (image.ilfds == nullptr) {
    out->PutU32(0);
  } else {
    out->PutU32(static_cast<uint32_t>(image.ilfds->size()));
    for (const Ilfd& f : image.ilfds->ilfds()) {
      AppendAtoms(f.antecedent(), dict, out);
      AppendAtoms(f.consequent(), dict, out);
    }
  }
  if (image.correspondence == nullptr) {
    out->PutU32(0);
  } else {
    const std::vector<AttributeMapping>& mappings =
        image.correspondence->mappings();
    out->PutU32(static_cast<uint32_t>(mappings.size()));
    for (const AttributeMapping& m : mappings) {
      out->PutString(m.world);
      uint8_t flags = 0;
      if (m.in_r.has_value()) flags |= 1;
      if (m.in_s.has_value()) flags |= 2;
      out->PutU8(flags);
      if (m.in_r.has_value()) out->PutString(*m.in_r);
      if (m.in_s.has_value()) out->PutString(*m.in_s);
    }
  }
  out->PutU8(image.extended_key != nullptr ? 1 : 0);
  if (image.extended_key != nullptr) {
    out->PutU32(static_cast<uint32_t>(image.extended_key->size()));
    for (const std::string& a : image.extended_key->attributes()) {
      out->PutString(a);
    }
  }
}

// ---------------------------------------------------------------------------
// Section decoders
// ---------------------------------------------------------------------------

Status ParseRelation(ByteReader* in, const std::vector<Value>& dict,
                     Relation* out, size_t* rows_loaded,
                     std::vector<std::vector<uint32_t>>* columnar = nullptr) {
  std::string name;
  uint32_t attr_count = 0;
  if (!in->GetString(&name) || !in->GetU32(&attr_count)) {
    return CorruptError("relation header truncated");
  }
  if (attr_count > in->remaining()) {
    return CorruptError("relation attribute count exceeds section");
  }
  std::vector<Attribute> attrs;
  attrs.reserve(attr_count);
  std::unordered_set<std::string> seen_names;
  for (uint32_t i = 0; i < attr_count; ++i) {
    Attribute a;
    uint8_t type = 0;
    if (!in->GetString(&a.name) || !in->GetU8(&type)) {
      return CorruptError("relation attribute truncated");
    }
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return CorruptError("relation attribute has unknown type tag");
    }
    if (!seen_names.insert(a.name).second) {
      return CorruptError("relation schema repeats attribute '" + a.name +
                          "'");
    }
    a.type = static_cast<ValueType>(type);
    attrs.push_back(std::move(a));
  }
  Schema schema(std::move(attrs));

  uint32_t key_count = 0;
  if (!in->GetU32(&key_count)) return CorruptError("relation keys truncated");
  std::vector<std::vector<std::string>> keys;
  for (uint32_t k = 0; k < key_count; ++k) {
    uint32_t index_count = 0;
    if (!in->GetU32(&index_count) || index_count > in->remaining()) {
      return CorruptError("relation key truncated");
    }
    std::vector<std::string> names;
    names.reserve(index_count);
    for (uint32_t i = 0; i < index_count; ++i) {
      uint32_t idx = 0;
      if (!in->GetU32(&idx)) return CorruptError("relation key truncated");
      if (idx >= schema.size()) {
        return CorruptError("relation key index out of range");
      }
      names.push_back(schema.attribute(idx).name);
    }
    keys.push_back(std::move(names));
  }

  uint32_t row_count = 0;
  if (!in->GetU32(&row_count)) return CorruptError("relation rows truncated");
  const uint64_t cells =
      static_cast<uint64_t>(row_count) * static_cast<uint64_t>(schema.size());
  if (cells * 4 > in->remaining()) {
    return CorruptError("relation row matrix truncated");
  }

  *out = Relation(std::move(name), schema);
  for (const std::vector<std::string>& key : keys) {
    Status st = out->DeclareKey(key);
    if (!st.ok()) {
      return CorruptError("relation key invalid: " + st.message());
    }
  }
  // Bulk cell decode: the count was validated against the section above,
  // so take the whole id matrix in one bounds check and read ids with raw
  // unaligned loads — a per-cell GetU32 branch was a visible fraction of
  // large-world load time. Dictionary range checks stay per cell; they are
  // the corruption guard, not the cost.
  const uint8_t* cell_bytes = in->GetBytes(static_cast<size_t>(cells) * 4);
  if (cell_bytes == nullptr && cells > 0) {
    return CorruptError("relation row matrix truncated");
  }
  const size_t width = schema.size();
  const size_t dict_size = dict.size();
  // Columnar capture: the cell ids already are the dictionary's dense
  // ids, so the columnar-world seed falls out of the decode for free —
  // only NULL cells are remapped (the snapshot interns NULL as a regular
  // value; the columnar id layer keeps it out and uses the sentinel).
  if (columnar != nullptr) {
    columnar->assign(width, std::vector<uint32_t>(row_count, 0));
  }
  std::vector<Row> rows(row_count);
  for (uint32_t r = 0; r < row_count; ++r) {
    Row& row = rows[r];
    row.reserve(width);
    const uint8_t* at = cell_bytes + static_cast<size_t>(r) * width * 4;
    for (size_t c = 0; c < width; ++c) {
      uint32_t id = 0;
      std::memcpy(&id, at + c * 4, sizeof(id));
      if (id >= dict_size) {
        return CorruptError("relation cell references value id " +
                            std::to_string(id) + " beyond dictionary");
      }
      const Value& v = dict[id];
      if (columnar != nullptr) {
        (*columnar)[c][r] =
            v.is_null() ? exec::ColumnarWorld::kNullId : id;
      }
      row.push_back(v);
    }
  }
  *rows_loaded += rows.size();
  out->AdoptRows(std::move(rows));
  return Status::Ok();
}

Status ParsePostings(ByteReader* in, const Relation& rel,
                     const std::vector<Value>& dict, PostingColumns* out) {
  uint32_t column_count = 0;
  uint32_t universe = 0;
  if (!in->GetU32(&column_count) || !in->GetU32(&universe)) {
    return CorruptError("postings header truncated");
  }
  if (column_count != rel.schema().size()) {
    return CorruptError("postings column count does not match relation");
  }
  if (universe != rel.size()) {
    return CorruptError("postings universe does not match relation size");
  }
  out->columns.assign(column_count, {});
  for (uint32_t c = 0; c < column_count; ++c) {
    uint32_t bucket_count = 0;
    if (!in->GetU32(&bucket_count)) {
      return CorruptError("postings column truncated");
    }
    if (bucket_count > in->remaining()) {
      return CorruptError("postings bucket count exceeds section");
    }
    PostingColumns::Column& column = out->columns[c];
    column.buckets.reserve(bucket_count);
    // Each row appears in at most one bucket per column, so the arena
    // never exceeds the relation's row count.
    column.rows.reserve(universe);
    uint32_t prev_id = 0;
    for (uint32_t b = 0; b < bucket_count; ++b) {
      PostingColumns::Bucket bucket;
      if (!in->GetU32(&bucket.value_id)) {
        return CorruptError("posting list truncated");
      }
      if (bucket.value_id >= dict.size()) {
        return CorruptError("posting list references value id beyond "
                            "dictionary");
      }
      if (b > 0 && bucket.value_id <= prev_id) {
        return CorruptError("posting value ids not strictly increasing");
      }
      prev_id = bucket.value_id;
      EliasFano ef;
      if (!EliasFanoParse(in, &ef)) {
        return CorruptError("posting list truncated");
      }
      if (ef.universe != universe) {
        return CorruptError("posting list universe mismatch");
      }
      bucket.begin = static_cast<uint32_t>(column.rows.size());
      EID_RETURN_IF_ERROR(EliasFanoDecodeAppend(ef, &column.rows));
      bucket.count = static_cast<uint32_t>(column.rows.size() - bucket.begin);
      column.buckets.push_back(bucket);
    }
  }
  return Status::Ok();
}

Status ParsePairs(ByteReader* in, const Relation& r_ext,
                  const Relation& s_ext, std::vector<TuplePair>* out) {
  uint32_t count = 0;
  if (!in->GetU32(&count)) return CorruptError("match table truncated");
  if (static_cast<uint64_t>(count) * 16 > in->remaining()) {
    return CorruptError("match table pair list truncated");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t r = 0, s = 0;
    if (!in->GetU64(&r) || !in->GetU64(&s)) {
      return CorruptError("match table pair truncated");
    }
    if (r >= r_ext.size() || s >= s_ext.size()) {
      return CorruptError("match table pair indexes beyond relations");
    }
    out->push_back(TuplePair{static_cast<size_t>(r), static_cast<size_t>(s)});
  }
  return Status::Ok();
}

Status ParseTraces(ByteReader* in, const std::vector<Value>& dict,
                   std::vector<Derivation>* out) {
  uint32_t count = 0;
  if (!in->GetU32(&count)) return CorruptError("provenance truncated");
  if (count > in->remaining()) {
    return CorruptError("provenance trace count exceeds section");
  }
  auto get_value = [&](Value* v) -> bool {
    uint32_t id = 0;
    if (!in->GetU32(&id) || id >= dict.size()) return false;
    *v = dict[id];
    return true;
  };
  out->clear();
  out->reserve(count);
  for (uint32_t t = 0; t < count; ++t) {
    Derivation d;
    uint32_t derived_count = 0;
    if (!in->GetU32(&derived_count) || derived_count > in->remaining()) {
      return CorruptError("derivation map truncated");
    }
    for (uint32_t i = 0; i < derived_count; ++i) {
      std::string attribute;
      Value value;
      if (!in->GetString(&attribute) || !get_value(&value)) {
        return CorruptError("derivation entry truncated");
      }
      d.derived.emplace(std::move(attribute), std::move(value));
    }
    uint32_t step_count = 0;
    if (!in->GetU32(&step_count) || step_count > in->remaining()) {
      return CorruptError("derivation steps truncated");
    }
    d.steps.reserve(step_count);
    for (uint32_t i = 0; i < step_count; ++i) {
      DerivationStep step;
      uint64_t ilfd_index = 0;
      if (!in->GetString(&step.attribute) || !get_value(&step.value) ||
          !in->GetU64(&ilfd_index)) {
        return CorruptError("derivation step truncated");
      }
      step.ilfd_index = static_cast<size_t>(ilfd_index);
      d.steps.push_back(std::move(step));
    }
    uint32_t conflict_count = 0;
    if (!in->GetU32(&conflict_count) || conflict_count > in->remaining()) {
      return CorruptError("derivation conflicts truncated");
    }
    for (uint32_t i = 0; i < conflict_count; ++i) {
      DerivationConflict c;
      uint64_t first_ilfd = 0, second_ilfd = 0;
      if (!in->GetString(&c.attribute) || !get_value(&c.first_value) ||
          !get_value(&c.second_value) || !in->GetU64(&first_ilfd) ||
          !in->GetU64(&second_ilfd)) {
        return CorruptError("derivation conflict truncated");
      }
      c.first_ilfd = static_cast<size_t>(first_ilfd);
      c.second_ilfd = static_cast<size_t>(second_ilfd);
      d.conflicts.push_back(std::move(c));
    }
    out->push_back(std::move(d));
  }
  return Status::Ok();
}

Status ParseAtoms(ByteReader* in, const std::vector<Value>& dict,
                  std::vector<Atom>* out) {
  uint32_t count = 0;
  if (!in->GetU32(&count) || count > in->remaining()) {
    return CorruptError("atom list truncated");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Atom a;
    uint32_t id = 0;
    if (!in->GetString(&a.attribute) || !in->GetU32(&id) ||
        id >= dict.size()) {
      return CorruptError("atom truncated or value id beyond dictionary");
    }
    a.value = dict[id];
    out->push_back(std::move(a));
  }
  return Status::Ok();
}

/// The Ilfd constructor enforces its invariants with EID_CHECK (abort);
/// re-validate here so a forged-but-checksummed file yields a Status.
Status ValidateIlfdAtoms(const std::vector<Atom>& antecedent,
                         const std::vector<Atom>& consequent) {
  if (consequent.empty()) {
    return CorruptError("ILFD without consequent");
  }
  auto consistent = [](const std::vector<Atom>& atoms) {
    for (size_t i = 0; i < atoms.size(); ++i) {
      for (size_t j = i + 1; j < atoms.size(); ++j) {
        if (atoms[i].attribute == atoms[j].attribute &&
            !(atoms[i].value == atoms[j].value)) {
          return false;
        }
      }
    }
    return true;
  };
  if (!consistent(antecedent) || !consistent(consequent)) {
    return CorruptError("ILFD binds an attribute to two values");
  }
  for (const Atom& c : consequent) {
    for (const Atom& a : antecedent) {
      if (a.attribute == c.attribute && !(a.value == c.value)) {
        return CorruptError("ILFD consequent contradicts its antecedent");
      }
    }
  }
  return Status::Ok();
}

Status ParseRuleProgram(ByteReader* in, const std::vector<Value>& dict,
                        LoadedWorld* world) {
  uint32_t ilfd_count = 0;
  if (!in->GetU32(&ilfd_count) || ilfd_count > in->remaining()) {
    return CorruptError("rule program ILFD count truncated");
  }
  std::vector<Ilfd> ilfds;
  ilfds.reserve(ilfd_count);
  for (uint32_t i = 0; i < ilfd_count; ++i) {
    std::vector<Atom> antecedent, consequent;
    EID_RETURN_IF_ERROR(ParseAtoms(in, dict, &antecedent));
    EID_RETURN_IF_ERROR(ParseAtoms(in, dict, &consequent));
    EID_RETURN_IF_ERROR(ValidateIlfdAtoms(antecedent, consequent));
    ilfds.emplace_back(std::move(antecedent), std::move(consequent));
  }
  world->ilfds = IlfdSet(std::move(ilfds));

  uint32_t mapping_count = 0;
  if (!in->GetU32(&mapping_count) || mapping_count > in->remaining()) {
    return CorruptError("correspondence truncated");
  }
  for (uint32_t i = 0; i < mapping_count; ++i) {
    AttributeMapping m;
    uint8_t flags = 0;
    if (!in->GetString(&m.world) || !in->GetU8(&flags) || flags > 3) {
      return CorruptError("correspondence mapping truncated");
    }
    if ((flags & 1) != 0) {
      std::string local;
      if (!in->GetString(&local)) {
        return CorruptError("correspondence mapping truncated");
      }
      m.in_r = std::move(local);
    }
    if ((flags & 2) != 0) {
      std::string local;
      if (!in->GetString(&local)) {
        return CorruptError("correspondence mapping truncated");
      }
      m.in_s = std::move(local);
    }
    Status st = world->correspondence.Add(std::move(m));
    if (!st.ok()) {
      return CorruptError("correspondence invalid: " + st.message());
    }
  }

  uint8_t has_key = 0;
  if (!in->GetU8(&has_key) || has_key > 1) {
    return CorruptError("extended key flag truncated");
  }
  if (has_key == 1) {
    uint32_t attr_count = 0;
    if (!in->GetU32(&attr_count) || attr_count > in->remaining()) {
      return CorruptError("extended key truncated");
    }
    std::vector<std::string> attrs;
    attrs.reserve(attr_count);
    for (uint32_t i = 0; i < attr_count; ++i) {
      std::string a;
      if (!in->GetString(&a)) return CorruptError("extended key truncated");
      attrs.push_back(std::move(a));
    }
    world->extended_key = ExtendedKey(std::move(attrs));
  }
  return Status::Ok();
}

}  // namespace

WorldImage ImageOf(const Relation& r, const Relation& s,
                   const IdentifierConfig& config,
                   const IdentificationResult& result) {
  WorldImage image;
  image.r = &r;
  image.s = &s;
  image.r_extended = &result.r_extended;
  image.s_extended = &result.s_extended;
  image.r_traces = &result.r_traces;
  image.s_traces = &result.s_traces;
  image.matching = &result.matching;
  image.negative = &result.negative.table;
  image.ilfds = &config.ilfds;
  image.correspondence = &config.correspondence;
  image.extended_key =
      config.extended_key.has_value() ? &*config.extended_key : nullptr;
  return image;
}

Status WriteSnapshot(const WorldImage& image, const std::string& path) {
  if (image.r == nullptr || image.s == nullptr ||
      image.r_extended == nullptr || image.s_extended == nullptr) {
    return Status::InvalidArgument(
        "snapshot requires R, S and both extended relations");
  }

  // Interning order — R, S, R', S' rows, then provenance, then rule
  // program — fixes the dictionary ids; a reader preloading the decoded
  // dictionary reproduces them exactly.
  DictionaryBuilder dict;
  struct Pending {
    SectionKind kind;
    uint32_t role;
    std::string payload;
  };
  std::vector<Pending> pending;
  auto add = [&](SectionKind kind, uint32_t role, ByteWriter&& w) {
    pending.push_back(Pending{kind, role, std::move(w).Take()});
  };

  {
    using R = RelationRole;
    const std::pair<R, const Relation*> relations[] = {
        {R::kSourceR, image.r},
        {R::kSourceS, image.s},
        {R::kExtendedR, image.r_extended},
        {R::kExtendedS, image.s_extended},
    };
    size_t cell_estimate = 0;
    for (const auto& [role, rel] : relations) {
      cell_estimate += rel->size() * rel->schema().size();
    }
    dict.Reserve(cell_estimate / 2);
    // The extended relations' id matrices are captured once here and
    // reused by the postings and fingerprint encoders below, so each
    // R'/S' cell is hashed and interned exactly once per save.
    std::vector<uint32_t> extended_ids[2];
    for (const auto& [role, rel] : relations) {
      ByteWriter w;
      std::vector<uint32_t>* ids =
          role == R::kExtendedR   ? &extended_ids[0]
          : role == R::kExtendedS ? &extended_ids[1]
                                  : nullptr;
      AppendRelation(*rel, &dict, &w, ids);
      add(SectionKind::kRelation, static_cast<uint32_t>(role), std::move(w));
    }
    // Blocking accelerators only for the extended relations: every pair
    // sweep (key join, identity, distinctness) runs over R'/S'.
    for (const auto& [i, role, rel] :
         {std::tuple<size_t, R, const Relation*>{0, R::kExtendedR,
                                                 image.r_extended},
          std::tuple<size_t, R, const Relation*>{1, R::kExtendedS,
                                                 image.s_extended}}) {
      ByteWriter w;
      AppendPostings(*rel, extended_ids[i], &w);
      add(SectionKind::kPostings, static_cast<uint32_t>(role), std::move(w));
    }
    for (const auto& [i, role, rel] :
         {std::tuple<size_t, R, const Relation*>{0, R::kExtendedR,
                                                 image.r_extended},
          std::tuple<size_t, R, const Relation*>{1, R::kExtendedS,
                                                 image.s_extended}}) {
      ByteWriter w;
      FingerprintIndex::Build(*rel, extended_ids[i], dict.size())
          .AppendTo(&w);
      add(SectionKind::kFingerprints, static_cast<uint32_t>(role),
          std::move(w));
    }
  }
  {
    ByteWriter w;
    AppendPairs(image.matching, &w);
    AppendPairs(image.negative, &w);
    add(SectionKind::kMatchTables, 0, std::move(w));
  }
  {
    ByteWriter w;
    AppendTraces(image.r_traces, &dict, &w);
    AppendTraces(image.s_traces, &dict, &w);
    add(SectionKind::kProvenance, 0, std::move(w));
  }
  {
    ByteWriter w;
    AppendRuleProgram(image, &dict, &w);
    add(SectionKind::kRuleProgram, 0, std::move(w));
  }
  // The dictionary is interned by now; emit it as the first section.
  {
    ByteWriter w;
    dict.AppendTo(&w);
    pending.insert(pending.begin(),
                   Pending{SectionKind::kDictionary, 0, std::move(w).Take()});
  }

  // Assemble: header, section table, 8-aligned payloads.
  const size_t table_bytes = pending.size() * kSectionEntrySize;
  uint64_t offset = kHeaderSize + table_bytes;  // both 8-multiples
  ByteWriter table;
  for (const Pending& p : pending) {
    table.PutU32(static_cast<uint32_t>(p.kind));
    table.PutU32(p.role);
    table.PutU64(offset);
    table.PutU64(p.payload.size());
    table.PutU64(Fnv64(p.payload.data(), p.payload.size()));
    offset += (p.payload.size() + 7) / 8 * 8;
  }
  const uint64_t file_size = offset;

  ByteWriter header;
  header.PutBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  header.PutU32(kSnapshotVersion);
  header.PutU32(kEndianSentinel);
  header.PutU64(file_size);
  header.PutU32(static_cast<uint32_t>(pending.size()));
  header.PutU32(0);  // flags
  header.PutU64(Fnv64(table.buffer().data(), table.buffer().size()));
  header.PutU64(Fnv64(header.buffer().data(), header.buffer().size()));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot create snapshot '" + path + "'");
  }
  auto write_all = [&](const std::string& bytes) {
    return bytes.empty() ||
           std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  };
  bool ok = write_all(header.buffer()) && write_all(table.buffer());
  for (const Pending& p : pending) {
    if (!ok) break;
    ok = write_all(p.payload);
    const size_t pad = (8 - p.payload.size() % 8) % 8;
    if (ok && pad > 0) ok = write_all(std::string(pad, '\0'));
  }
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(path.c_str());
    return Status::InvalidArgument("cannot write snapshot '" + path + "'");
  }
  return Status::Ok();
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  SnapshotReader reader;
  EID_ASSIGN_OR_RETURN(reader.file_, MappedFile::Open(path));
  const uint8_t* data = reader.file_.data();
  const size_t size = reader.file_.size();
  if (size < kHeaderSize) {
    return CorruptError("file smaller than the snapshot header");
  }
  if (std::memcmp(data, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return CorruptError("bad magic (not a snapshot file)");
  }
  ByteReader hr(data, kHeaderSize);
  const uint8_t* magic = hr.GetBytes(sizeof(kSnapshotMagic));
  uint32_t version = 0, endian = 0, section_count = 0, flags = 0;
  uint64_t file_size = 0, toc_checksum = 0, header_checksum = 0;
  if (magic == nullptr || !hr.GetU32(&version) || !hr.GetU32(&endian) ||
      !hr.GetU64(&file_size) || !hr.GetU32(&section_count) ||
      !hr.GetU32(&flags) || !hr.GetU64(&toc_checksum) ||
      !hr.GetU64(&header_checksum)) {
    return CorruptError("header truncated");
  }
  if (Fnv64(data, kHeaderSize - sizeof(uint64_t)) != header_checksum) {
    return CorruptError("header checksum mismatch");
  }
  if (endian != kEndianSentinel) {
    return CorruptError("foreign byte order (endian sentinel mismatch)");
  }
  if (version != kSnapshotVersion) {
    return CorruptError("unsupported snapshot version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kSnapshotVersion) + ")");
  }
  if (file_size != size) {
    return CorruptError("file size mismatch: header says " +
                        std::to_string(file_size) + " bytes, file has " +
                        std::to_string(size));
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(section_count) * kSectionEntrySize;
  if (kHeaderSize + table_bytes > size) {
    return CorruptError("section table extends beyond the file");
  }
  if (Fnv64(data + kHeaderSize, table_bytes) != toc_checksum) {
    return CorruptError("section table checksum mismatch");
  }
  ByteReader tr(data + kHeaderSize, table_bytes);
  reader.sections_.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    SectionEntry e;
    if (!tr.GetU32(&e.kind) || !tr.GetU32(&e.role) || !tr.GetU64(&e.offset) ||
        !tr.GetU64(&e.length) || !tr.GetU64(&e.checksum)) {
      return CorruptError("section table truncated");
    }
    if (e.offset < kHeaderSize + table_bytes || e.offset > size ||
        e.length > size - e.offset) {
      return CorruptError("section " + std::to_string(i) +
                          " extends beyond the file");
    }
    if (Fnv64(data + e.offset, e.length) != e.checksum) {
      return CorruptError(
          "section " + std::to_string(i) + " (" +
          SectionKindName(static_cast<SectionKind>(e.kind)) +
          ") checksum mismatch");
    }
    reader.sections_.push_back(e);
  }
  return reader;
}

Result<ByteReader> SnapshotReader::Section(SectionKind kind,
                                           uint32_t role) const {
  for (const SectionEntry& e : sections_) {
    if (e.kind == static_cast<uint32_t>(kind) && e.role == role) {
      return ByteReader(file_.data() + e.offset, e.length);
    }
  }
  return Status::NotFound(std::string("snapshot has no ") +
                          SectionKindName(kind) + " section for role " +
                          std::to_string(role));
}

IdentifierConfig LoadedWorld::ToConfig() const {
  IdentifierConfig config;
  config.correspondence = correspondence;
  config.extended_key = extended_key;
  config.ilfds = ilfds;
  config.matcher_options.amq_seeds = amq_seeds;
  config.matcher_options.columnar_seeds = columnar_seeds;
  return config;
}

exec::ColumnIndex IndexFromPostings(const PostingColumns::Column& column,
                                    const std::vector<Value>& dictionary) {
  std::unordered_map<Value, std::vector<size_t>, ValueHash> map;
  map.reserve(column.buckets.size());
  for (const PostingColumns::Bucket& b : column.buckets) {
    const size_t* rows = column.rows_of(b);
    map.emplace(dictionary[b.value_id],
                std::vector<size_t>(rows, rows + b.count));
  }
  return exec::ColumnIndex::FromBuckets(std::move(map));
}

void LoadedWorld::PreloadIndexes(exec::ColumnIndexCache* r_cache,
                                 exec::ColumnIndexCache* s_cache) const {
  for (size_t c = 0; c < r_extended.schema().size(); ++c) {
    r_cache->Preload(r_extended.schema().attribute(c).name,
                     IndexFromPostings(r_postings.columns[c], dictionary));
  }
  for (size_t c = 0; c < s_extended.schema().size(); ++c) {
    s_cache->Preload(s_extended.schema().attribute(c).name,
                     IndexFromPostings(s_postings.columns[c], dictionary));
  }
}

Result<LoadedWorld> LoadSnapshot(const std::string& path) {
  exec::StageTimer timer;
  // EID_SNAPSHOT_TRACE=1 prints a per-stage decode breakdown to stderr —
  // the first tool to reach for when load times regress.
  const bool trace = std::getenv("EID_SNAPSHOT_TRACE") != nullptr;
  double last_ms = 0.0;
  auto mark = [&](const char* what) {
    if (!trace) return;
    double now = timer.ElapsedMs();
    std::fprintf(stderr, "  %-14s %.3f ms\n", what, now - last_ms);
    last_ms = now;
  };
  EID_ASSIGN_OR_RETURN(SnapshotReader reader, SnapshotReader::Open(path));
  mark("open");
  LoadedWorld world;
  size_t rows_loaded = 0;

  {
    EID_ASSIGN_OR_RETURN(ByteReader in,
                         reader.Section(SectionKind::kDictionary));
    EID_RETURN_IF_ERROR(ParseDictionary(&in, &world.dictionary));
  }
  mark("dictionary");
  {
    world.columnar_seeds = std::make_shared<exec::ColumnarSeeds>();
    using R = RelationRole;
    struct Target {
      R role;
      Relation* rel;
      std::vector<std::vector<uint32_t>>* columnar;
    };
    const Target targets[] = {
        {R::kSourceR, &world.r, &world.columnar_seeds->r_columns},
        {R::kSourceS, &world.s, &world.columnar_seeds->s_columns},
        {R::kExtendedR, &world.r_extended, nullptr},
        {R::kExtendedS, &world.s_extended, nullptr},
    };
    for (const auto& [role, rel, columnar] : targets) {
      EID_ASSIGN_OR_RETURN(
          ByteReader in,
          reader.Section(SectionKind::kRelation, static_cast<uint32_t>(role)));
      EID_RETURN_IF_ERROR(
          ParseRelation(&in, world.dictionary, rel, &rows_loaded, columnar));
    }
    world.columnar_seeds->dictionary = world.dictionary;
  }
  mark("relations");
  {
    EID_ASSIGN_OR_RETURN(
        ByteReader in,
        reader.Section(SectionKind::kPostings,
                       static_cast<uint32_t>(RelationRole::kExtendedR)));
    EID_RETURN_IF_ERROR(ParsePostings(&in, world.r_extended, world.dictionary,
                                      &world.r_postings));
  }
  {
    EID_ASSIGN_OR_RETURN(
        ByteReader in,
        reader.Section(SectionKind::kPostings,
                       static_cast<uint32_t>(RelationRole::kExtendedS)));
    EID_RETURN_IF_ERROR(ParsePostings(&in, world.s_extended, world.dictionary,
                                      &world.s_postings));
  }
  mark("postings");
  {
    world.amq_seeds = std::make_shared<exec::AmqSeeds>();
    const std::pair<uint32_t, std::vector<std::vector<uint64_t>>*> sides[] = {
        {static_cast<uint32_t>(RelationRole::kExtendedR),
         &world.amq_seeds->r_columns},
        {static_cast<uint32_t>(RelationRole::kExtendedS),
         &world.amq_seeds->s_columns},
    };
    for (const auto& [role, columns] : sides) {
      EID_ASSIGN_OR_RETURN(
          ByteReader in, reader.Section(SectionKind::kFingerprints, role));
      FingerprintIndex index;
      EID_RETURN_IF_ERROR(FingerprintIndex::Parse(&in, &index));
      const Relation& rel =
          role == static_cast<uint32_t>(RelationRole::kExtendedR)
              ? world.r_extended
              : world.s_extended;
      if (index.column_count() != rel.schema().size()) {
        return CorruptError(
            "fingerprint index column count does not match relation");
      }
      columns->reserve(index.column_count());
      for (size_t c = 0; c < index.column_count(); ++c) {
        columns->push_back(index.ColumnFingerprints(c));
      }
    }
  }
  mark("fingerprints");
  {
    EID_ASSIGN_OR_RETURN(ByteReader in,
                         reader.Section(SectionKind::kMatchTables));
    std::vector<TuplePair> pairs;
    EID_RETURN_IF_ERROR(
        ParsePairs(&in, world.r_extended, world.s_extended, &pairs));
    Result<MatchTable> mt = MatchTable::FromPairs(/*negative=*/false, pairs);
    if (!mt.ok()) {
      return CorruptError("matching table invalid: " + mt.status().message());
    }
    world.matching = std::move(mt).value();
    EID_RETURN_IF_ERROR(
        ParsePairs(&in, world.r_extended, world.s_extended, &pairs));
    Result<MatchTable> nmt = MatchTable::FromPairs(/*negative=*/true, pairs);
    if (!nmt.ok()) {
      return CorruptError("negative table invalid: " + nmt.status().message());
    }
    world.negative = std::move(nmt).value();
  }
  mark("match_tables");
  {
    EID_ASSIGN_OR_RETURN(ByteReader in,
                         reader.Section(SectionKind::kProvenance));
    EID_RETURN_IF_ERROR(ParseTraces(&in, world.dictionary, &world.r_traces));
    EID_RETURN_IF_ERROR(ParseTraces(&in, world.dictionary, &world.s_traces));
  }
  mark("provenance");
  {
    EID_ASSIGN_OR_RETURN(ByteReader in,
                         reader.Section(SectionKind::kRuleProgram));
    EID_RETURN_IF_ERROR(ParseRuleProgram(&in, world.dictionary, &world));
  }
  mark("rule_program");

  world.load_stats.stage = "snapshot_load";
  world.load_stats.items = rows_loaded;
  world.load_stats.dict_values = world.dictionary.size();
  world.load_stats.wall_ms = timer.ElapsedMs();
  world.load_stats.snapshot_load_ms = world.load_stats.wall_ms;
  return world;
}

}  // namespace storage
}  // namespace eid
