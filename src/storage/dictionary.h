// Append-only interned-value dictionary (DESIGN.md §4e).
//
// The snapshot stores every distinct Value once and every relation row as
// a vector of dense uint32_t value ids — the same id discipline as
// compile::ValueInterner (first-intern order, storage equality, NULL is a
// regular internable value). Because ids are assigned in first-seen
// order, a ValueInterner preloaded from the decoded dictionary reproduces
// byte-identical ids, so compiled programs over a loaded world join on
// the same dense keys a fresh build would (the interner handoff).

#ifndef EID_STORAGE_DICTIONARY_H_
#define EID_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "relational/value.h"
#include "storage/format.h"

namespace eid {
namespace storage {

/// Builds the dictionary at save time: interns Values to dense ids in
/// first-seen order (ValueInterner semantics) and serializes the table.
class DictionaryBuilder {
 public:
  /// Id of `v`, interning on first use. Ids are dense from 0.
  uint32_t Intern(const Value& v) {
    auto [it, inserted] =
        ids_.emplace(v, static_cast<uint32_t>(values_.size()));
    if (inserted) values_.push_back(v);
    return it->second;
  }

  /// Pre-sizes the intern table; the save path passes a bound derived
  /// from the relation cell counts so interning never rehashes mid-save.
  void Reserve(size_t n) {
    ids_.reserve(n);
    values_.reserve(n);
  }

  size_t size() const { return values_.size(); }
  const std::vector<Value>& values() const { return values_; }

  /// Section payload: count u32; per value a type tag byte + payload
  /// (bool 1 B; int/double 8 B little-endian; string u32 len + bytes;
  /// null none).
  void AppendTo(ByteWriter* out) const;

 private:
  std::unordered_map<Value, uint32_t, ValueHash> ids_;
  std::vector<Value> values_;
};

/// Decodes a dictionary section into id -> Value. Errors on unknown type
/// tags or truncation.
Status ParseDictionary(ByteReader* in, std::vector<Value>* out);

}  // namespace storage
}  // namespace eid

#endif  // EID_STORAGE_DICTIONARY_H_
