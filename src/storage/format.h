// On-disk snapshot format primitives (DESIGN.md §4e).
//
// A snapshot is one file holding a whole integration world — interned
// value dictionary, relations as dense value-id matrices, Elias-Fano
// posting lists for blocking keys, a fingerprint index, MT/NMT and
// derivation provenance — laid out so a reader can mmap it and hand out
// views without parsing row text. Layout:
//
//   [header 48 B][section table][section payloads ...]
//
// All integers are little-endian fixed-width; the header carries an
// endianness sentinel and readers reject foreign byte order instead of
// swapping (the serving fleet is homogeneous; a portable swap pass can
// come later without a format break). Every section records an FNV-1a
// checksum of its payload, and the header checksums itself and the
// section table, so truncation and bit flips surface as clean Status
// errors — never UB — before any payload is interpreted.
//
// Versioning policy: `kSnapshotVersion` bumps on any layout change;
// readers reject other versions outright (no in-place migration —
// snapshots are rebuildable artifacts, not databases of record).

#ifndef EID_STORAGE_FORMAT_H_
#define EID_STORAGE_FORMAT_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "relational/status.h"

namespace eid {
namespace storage {

inline constexpr char kSnapshotMagic[8] = {'E', 'I', 'D', 'S',
                                           'N', 'A', 'P', '\0'};
inline constexpr uint32_t kSnapshotVersion = 1;
/// Written as the literal 0x01020304; a reader on a foreign-endian host
/// sees the bytes reversed and rejects the file.
inline constexpr uint32_t kEndianSentinel = 0x01020304u;

/// What one section payload holds.
enum class SectionKind : uint32_t {
  kDictionary = 1,    // interned Value table (dense ids, append order)
  kRelation = 2,      // one relation: schema, keys, value-id row matrix
  kPostings = 3,      // per-column Elias-Fano posting lists (one relation)
  kFingerprints = 4,  // (column, value)-fingerprint -> row buckets
  kMatchTables = 5,   // MT and NMT row-index pairs
  kProvenance = 6,    // per-row derivation traces for R' and S'
  kRuleProgram = 7,   // ILFDs, correspondence, extended key
};

/// "dictionary", "relation", ... (diagnostics, `eid_snapshot inspect`).
const char* SectionKindName(SectionKind kind);

/// Which persisted relation a kRelation/kPostings/kFingerprints section
/// describes.
enum class RelationRole : uint32_t {
  kSourceR = 0,
  kSourceS = 1,
  kExtendedR = 2,
  kExtendedS = 3,
};

const char* RelationRoleName(RelationRole role);

/// One entry of the section table.
struct SectionEntry {
  uint32_t kind = 0;
  uint32_t role = 0;  // RelationRole for relation-scoped kinds, else 0
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;  // Fnv64 of the payload bytes
};

/// Fixed-size header at file offset 0. The section table (section_count ×
/// 32-byte entries) follows immediately at offset kHeaderSize.
struct SnapshotHeader {
  char magic[8];
  uint32_t version = 0;
  uint32_t endian = 0;
  uint64_t file_size = 0;
  uint32_t section_count = 0;
  uint32_t flags = 0;
  uint64_t toc_checksum = 0;     // Fnv64 over the section-table bytes
  uint64_t header_checksum = 0;  // Fnv64 over the 40 bytes before this field
};

inline constexpr size_t kHeaderSize = 48;
inline constexpr size_t kSectionEntrySize = 32;

static_assert(sizeof(SnapshotHeader) == kHeaderSize,
              "header must serialize without padding");
static_assert(sizeof(SectionEntry) == kSectionEntrySize,
              "section entry must serialize without padding");

/// The snapshot checksum: four interleaved FNV-1a streams over 32-byte
/// blocks, folded into one state for the tail (see format.cc for why).
/// Word loads are host-order, so the value is shared only between
/// same-endian hosts — exactly the set the endianness sentinel already
/// restricts the format to. Not plain FNV-1a; the value is only
/// meaningful to this format.
uint64_t Fnv64(const void* data, size_t len);

/// Append-only little-endian byte sink backing SnapshotWriter. Cheap to
/// move; the final buffer is written to disk in one pass.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutLe(v); }
  void PutU64(uint64_t v) { PutLe(v); }
  void PutBytes(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }
  /// u32 length prefix + raw bytes.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }
  /// Pads with zero bytes to the next 8-byte boundary.
  void Align8() {
    while (buf_.size() % 8 != 0) buf_.push_back('\0');
  }

  size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string&& Take() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLe(T v) {
    // Snapshot sections put one integer per relation cell; the byte-loop
    // form paid a capacity check per byte. On a little-endian host the
    // in-memory representation already is the wire form.
    if constexpr (std::endian::native == std::endian::little) {
      char tmp[sizeof(T)];
      std::memcpy(tmp, &v, sizeof(T));
      buf_.append(tmp, sizeof(T));
    } else {
      for (size_t i = 0; i < sizeof(T); ++i) {
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
      }
    }
  }

  std::string buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte range (the
/// mmap'd section payload). Every Get returns false on overrun instead of
/// reading past the mapping — the caller converts that into a corrupt-file
/// Status with context. The success flags are [[nodiscard]]: ignoring one
/// and using the output anyway is exactly the decode-past-truncation bug
/// the reader exists to prevent, so the compiler rejects it.
class ByteReader {
 public:
  ByteReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data)), len_(len) {}

  [[nodiscard]] bool GetU8(uint8_t* out) {
    if (pos_ + 1 > len_) return false;
    *out = data_[pos_++];
    return true;
  }
  [[nodiscard]] bool GetU32(uint32_t* out) { return GetLe(out); }
  [[nodiscard]] bool GetU64(uint64_t* out) { return GetLe(out); }
  [[nodiscard]] bool GetString(std::string* out) {
    uint32_t n = 0;
    if (!GetU32(&n) || pos_ + n > len_) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  /// Borrows `len` raw bytes without copying; nullptr on overrun.
  [[nodiscard]] const uint8_t* GetBytes(size_t len) {
    if (pos_ + len > len_) return nullptr;
    const uint8_t* p = data_ + pos_;
    pos_ += len;
    return p;
  }
  [[nodiscard]] bool SkipAlign8() {
    while (pos_ % 8 != 0) {
      if (pos_ >= len_) return false;
      ++pos_;
    }
    return true;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  template <typename T>
  [[nodiscard]] bool GetLe(T* out) {
    if (pos_ + sizeof(T) > len_) return false;
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    *out = v;
    return true;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// The standard corrupt-snapshot error: InvalidArgument with a stable
/// "snapshot corrupt:" prefix the tests and CLI match on.
Status CorruptError(const std::string& what);

/// A read-only byte view of a snapshot file: mmap'd when the platform
/// allows, else read into an owned buffer (same interface either way).
/// Move-only; unmaps/frees on destruction.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// Maps `path` read-only. NotFound when the file does not exist,
  /// InvalidArgument on open/map failures.
  static Result<MappedFile> Open(const std::string& path);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool mapped() const { return mapped_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;       // true: munmap on destroy; false: delete[]
};

}  // namespace storage
}  // namespace eid

#endif  // EID_STORAGE_FORMAT_H_
