#include "storage/fingerprint_index.h"

#include <algorithm>
#include <utility>

#include "exec/amq_filter.h"

namespace eid {
namespace storage {

FingerprintIndex FingerprintIndex::Build(const Relation& relation) {
  FingerprintIndex index;
  index.columns_.resize(relation.schema().size());
  std::vector<std::pair<uint64_t, uint32_t>> cells;
  for (size_t c = 0; c < relation.schema().size(); ++c) {
    // One flat (fingerprint, row) array sorted once yields the same
    // sorted-bucket walk a std::map produced, without a node allocation
    // and rebalance per cell — the map build dominated snapshot saves.
    // The sort is stable on equal pairs by construction (rows ascend),
    // and adjacent duplicates — one row's column hashing to one
    // fingerprint twice — collapse during the run walk.
    cells.clear();
    for (size_t r = 0; r < relation.size(); ++r) {
      const Value& v = relation.row(r)[c];
      if (v.is_null()) continue;
      cells.emplace_back(exec::FingerprintKey(c, ValueHash{}(v)),
                         static_cast<uint32_t>(r));
    }
    std::sort(cells.begin(), cells.end());
    Column& col = index.columns_[c];
    col.offsets.push_back(0);
    for (size_t i = 0; i < cells.size();) {
      const uint64_t fp = cells[i].first;
      col.fps.push_back(fp);
      uint32_t last_row = UINT32_MAX;
      for (; i < cells.size() && cells[i].first == fp; ++i) {
        if (cells[i].second != last_row) col.rows.push_back(cells[i].second);
        last_row = cells[i].second;
      }
      col.offsets.push_back(static_cast<uint32_t>(col.rows.size()));
    }
  }
  return index;
}

FingerprintIndex FingerprintIndex::Build(const Relation& relation,
                                         const std::vector<uint32_t>& ids,
                                         size_t dict_size) {
  constexpr uint32_t kNoCell = 0xFFFFFFFFu;
  FingerprintIndex index;
  const size_t cols = relation.schema().size();
  index.columns_.resize(cols);
  // Value-id -> fingerprint memo, valid per column via the epoch stamp
  // (fingerprints mix the column index, so they cannot be shared across
  // columns even for one dictionary id).
  std::vector<uint64_t> fp_memo(dict_size);
  std::vector<uint32_t> fp_epoch(dict_size, 0);
  std::vector<std::pair<uint64_t, uint32_t>> cells;
  for (size_t c = 0; c < cols; ++c) {
    const uint32_t epoch = static_cast<uint32_t>(c) + 1;
    cells.clear();
    for (size_t r = 0; r < relation.size(); ++r) {
      const uint32_t id = ids[r * cols + c];
      if (id == kNoCell) continue;
      if (fp_epoch[id] != epoch) {
        fp_epoch[id] = epoch;
        fp_memo[id] =
            exec::FingerprintKey(c, ValueHash{}(relation.row(r)[c]));
      }
      cells.emplace_back(fp_memo[id], static_cast<uint32_t>(r));
    }
    std::sort(cells.begin(), cells.end());
    Column& col = index.columns_[c];
    col.offsets.push_back(0);
    for (size_t i = 0; i < cells.size();) {
      const uint64_t fp = cells[i].first;
      col.fps.push_back(fp);
      uint32_t last_row = UINT32_MAX;
      for (; i < cells.size() && cells[i].first == fp; ++i) {
        if (cells[i].second != last_row) col.rows.push_back(cells[i].second);
        last_row = cells[i].second;
      }
      col.offsets.push_back(static_cast<uint32_t>(col.rows.size()));
    }
  }
  return index;
}

std::vector<uint32_t> FingerprintIndex::Lookup(size_t column,
                                               uint64_t fp) const {
  const Column& col = columns_[column];
  auto it = std::lower_bound(col.fps.begin(), col.fps.end(), fp);
  if (it == col.fps.end() || *it != fp) return {};
  const size_t i = static_cast<size_t>(it - col.fps.begin());
  return std::vector<uint32_t>(col.rows.begin() + col.offsets[i],
                               col.rows.begin() + col.offsets[i + 1]);
}

size_t FingerprintIndex::ByteSize() const {
  size_t total = 0;
  for (const Column& col : columns_) {
    total += col.fps.size() * sizeof(uint64_t) +
             col.offsets.size() * sizeof(uint32_t) +
             col.rows.size() * sizeof(uint32_t);
  }
  return total;
}

void FingerprintIndex::AppendTo(ByteWriter* out) const {
  out->PutU32(static_cast<uint32_t>(columns_.size()));
  for (const Column& col : columns_) {
    out->PutU32(static_cast<uint32_t>(col.fps.size()));
    out->PutU32(static_cast<uint32_t>(col.rows.size()));
    for (uint64_t fp : col.fps) out->PutU64(fp);
    for (uint32_t off : col.offsets) out->PutU32(off);
    for (uint32_t row : col.rows) out->PutU32(row);
  }
}

Status FingerprintIndex::Parse(ByteReader* in, FingerprintIndex* out) {
  uint32_t column_count = 0;
  if (!in->GetU32(&column_count)) {
    return CorruptError("fingerprint index column count truncated");
  }
  if (column_count > in->remaining()) {
    return CorruptError("fingerprint index column count exceeds section");
  }
  out->columns_.clear();
  out->columns_.resize(column_count);
  for (uint32_t c = 0; c < column_count; ++c) {
    Column& col = out->columns_[c];
    uint32_t bucket_count = 0;
    uint32_t row_count = 0;
    if (!in->GetU32(&bucket_count) || !in->GetU32(&row_count)) {
      return CorruptError("fingerprint column header truncated");
    }
    const uint64_t need = static_cast<uint64_t>(bucket_count) * 8 +
                          (static_cast<uint64_t>(bucket_count) + 1) * 4 +
                          static_cast<uint64_t>(row_count) * 4;
    if (need > in->remaining()) {
      return CorruptError("fingerprint column payload truncated");
    }
    col.fps.resize(bucket_count);
    col.offsets.resize(bucket_count + 1);
    col.rows.resize(row_count);
    for (uint32_t i = 0; i < bucket_count; ++i) {
      if (!in->GetU64(&col.fps[i])) {
        return CorruptError("fingerprint array truncated");
      }
      if (i > 0 && col.fps[i] <= col.fps[i - 1]) {
        return CorruptError("fingerprint array not strictly increasing");
      }
    }
    for (uint32_t i = 0; i <= bucket_count; ++i) {
      if (!in->GetU32(&col.offsets[i])) {
        return CorruptError("fingerprint offsets truncated");
      }
      if (i == 0 ? col.offsets[0] != 0 : col.offsets[i] < col.offsets[i - 1]) {
        return CorruptError("fingerprint offsets not monotone from zero");
      }
    }
    if (col.offsets[bucket_count] != row_count) {
      return CorruptError("fingerprint offsets do not cover row array");
    }
    for (uint32_t i = 0; i < row_count; ++i) {
      if (!in->GetU32(&col.rows[i])) {
        return CorruptError("fingerprint row array truncated");
      }
    }
  }
  return Status::Ok();
}

}  // namespace storage
}  // namespace eid
