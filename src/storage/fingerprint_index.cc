#include "storage/fingerprint_index.h"

#include <algorithm>
#include <map>

#include "exec/amq_filter.h"

namespace eid {
namespace storage {

FingerprintIndex FingerprintIndex::Build(const Relation& relation) {
  FingerprintIndex index;
  index.columns_.resize(relation.schema().size());
  for (size_t c = 0; c < relation.schema().size(); ++c) {
    // std::map keeps fingerprints sorted as buckets fill; row ids arrive
    // in ascending order by construction.
    std::map<uint64_t, std::vector<uint32_t>> buckets;
    for (size_t r = 0; r < relation.size(); ++r) {
      const Value& v = relation.row(r)[c];
      if (v.is_null()) continue;
      const uint64_t fp = exec::FingerprintKey(c, ValueHash{}(v));
      std::vector<uint32_t>& bucket = buckets[fp];
      const uint32_t row = static_cast<uint32_t>(r);
      // Repeated values of one row's column and hash collisions both land
      // here; keep each row id once.
      if (bucket.empty() || bucket.back() != row) bucket.push_back(row);
    }
    Column& col = index.columns_[c];
    col.fps.reserve(buckets.size());
    col.offsets.reserve(buckets.size() + 1);
    col.offsets.push_back(0);
    for (const auto& [fp, rows] : buckets) {
      col.fps.push_back(fp);
      col.rows.insert(col.rows.end(), rows.begin(), rows.end());
      col.offsets.push_back(static_cast<uint32_t>(col.rows.size()));
    }
  }
  return index;
}

std::vector<uint32_t> FingerprintIndex::Lookup(size_t column,
                                               uint64_t fp) const {
  const Column& col = columns_[column];
  auto it = std::lower_bound(col.fps.begin(), col.fps.end(), fp);
  if (it == col.fps.end() || *it != fp) return {};
  const size_t i = static_cast<size_t>(it - col.fps.begin());
  return std::vector<uint32_t>(col.rows.begin() + col.offsets[i],
                               col.rows.begin() + col.offsets[i + 1]);
}

size_t FingerprintIndex::ByteSize() const {
  size_t total = 0;
  for (const Column& col : columns_) {
    total += col.fps.size() * sizeof(uint64_t) +
             col.offsets.size() * sizeof(uint32_t) +
             col.rows.size() * sizeof(uint32_t);
  }
  return total;
}

void FingerprintIndex::AppendTo(ByteWriter* out) const {
  out->PutU32(static_cast<uint32_t>(columns_.size()));
  for (const Column& col : columns_) {
    out->PutU32(static_cast<uint32_t>(col.fps.size()));
    out->PutU32(static_cast<uint32_t>(col.rows.size()));
    for (uint64_t fp : col.fps) out->PutU64(fp);
    for (uint32_t off : col.offsets) out->PutU32(off);
    for (uint32_t row : col.rows) out->PutU32(row);
  }
}

Status FingerprintIndex::Parse(ByteReader* in, FingerprintIndex* out) {
  uint32_t column_count = 0;
  if (!in->GetU32(&column_count)) {
    return CorruptError("fingerprint index column count truncated");
  }
  if (column_count > in->remaining()) {
    return CorruptError("fingerprint index column count exceeds section");
  }
  out->columns_.clear();
  out->columns_.resize(column_count);
  for (uint32_t c = 0; c < column_count; ++c) {
    Column& col = out->columns_[c];
    uint32_t bucket_count = 0;
    uint32_t row_count = 0;
    if (!in->GetU32(&bucket_count) || !in->GetU32(&row_count)) {
      return CorruptError("fingerprint column header truncated");
    }
    const uint64_t need = static_cast<uint64_t>(bucket_count) * 8 +
                          (static_cast<uint64_t>(bucket_count) + 1) * 4 +
                          static_cast<uint64_t>(row_count) * 4;
    if (need > in->remaining()) {
      return CorruptError("fingerprint column payload truncated");
    }
    col.fps.resize(bucket_count);
    col.offsets.resize(bucket_count + 1);
    col.rows.resize(row_count);
    for (uint32_t i = 0; i < bucket_count; ++i) {
      if (!in->GetU64(&col.fps[i])) {
        return CorruptError("fingerprint array truncated");
      }
      if (i > 0 && col.fps[i] <= col.fps[i - 1]) {
        return CorruptError("fingerprint array not strictly increasing");
      }
    }
    for (uint32_t i = 0; i <= bucket_count; ++i) {
      if (!in->GetU32(&col.offsets[i])) {
        return CorruptError("fingerprint offsets truncated");
      }
      if (i == 0 ? col.offsets[0] != 0 : col.offsets[i] < col.offsets[i - 1]) {
        return CorruptError("fingerprint offsets not monotone from zero");
      }
    }
    if (col.offsets[bucket_count] != row_count) {
      return CorruptError("fingerprint offsets do not cover row array");
    }
    for (uint32_t i = 0; i < row_count; ++i) {
      if (!in->GetU32(&col.rows[i])) {
        return CorruptError("fingerprint row array truncated");
      }
    }
  }
  return Status::Ok();
}

}  // namespace storage
}  // namespace eid
