#include "storage/elias_fano.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace eid {
namespace storage {

namespace {

/// Sets bit `pos` (LSB-first within bytes) in `bits`.
inline void SetBit(std::vector<uint8_t>* bits, size_t pos) {
  (*bits)[pos >> 3] |= static_cast<uint8_t>(1u << (pos & 7));
}

/// Appends the low `width` bits of `v` at bit offset `pos`.
inline void PackLow(std::vector<uint8_t>* bits, size_t pos, uint32_t v,
                    int width) {
  for (int b = 0; b < width; ++b) {
    if ((v >> b) & 1u) SetBit(bits, pos + static_cast<size_t>(b));
  }
}

}  // namespace

EliasFano EliasFanoEncode(const std::vector<uint32_t>& sorted_ids,
                          uint32_t universe) {
  EliasFano ef;
  ef.count = static_cast<uint32_t>(sorted_ids.size());
  ef.universe = universe;
  if (sorted_ids.empty()) return ef;

  // l ≈ floor(log2(universe / count)), the classic parameter choice: the
  // upper unary stream then holds about one zero bit per element.
  int l = 0;
  while (l < 31 &&
         (static_cast<uint64_t>(sorted_ids.size()) << (l + 1)) <= universe) {
    ++l;
  }
  ef.low_bits = static_cast<uint8_t>(l);

  const size_t lower_bits = sorted_ids.size() * static_cast<size_t>(l);
  ef.lower.assign((lower_bits + 7) / 8, 0);
  const uint32_t last_high = sorted_ids.back() >> l;
  const size_t upper_bits = sorted_ids.size() + last_high + 1;
  ef.upper.assign((upper_bits + 7) / 8, 0);

  uint32_t prev = 0;
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    const uint32_t v = sorted_ids[i];
    EID_CHECK(v < universe);
    EID_CHECK(i == 0 || v > prev);
    prev = v;
    if (l > 0) PackLow(&ef.lower, i * static_cast<size_t>(l), v, l);
    SetBit(&ef.upper, (v >> l) + i);
  }
  return ef;
}

namespace {

/// Shared decode body; Push receives each element in ascending order.
template <typename Push>
Status DecodeImpl(const EliasFano& ef, Push&& push) {
  if (ef.count == 0) return Status::Ok();
  const int l = ef.low_bits;
  if (l > 31) return CorruptError("elias-fano low_bits > 31");
  const size_t lower_need =
      (static_cast<size_t>(ef.count) * static_cast<size_t>(l) + 7) / 8;
  if (ef.lower.size() < lower_need) {
    return CorruptError("elias-fano lower array truncated");
  }

  // Word-at-a-time scan: the cold-start path decodes one list per
  // distinct blocking value, so a per-bit loop over the upper vector (and
  // a per-bit UnpackLow) dominated snapshot loads. Bits are LSB-first
  // within each byte, so a little-endian 64-bit load preserves bit order
  // (the snapshot format is little-endian by declaration — the header's
  // endianness sentinel rejects foreign files before decode runs).
  const auto low_at = [&](size_t i) -> uint64_t {
    if (l == 0) return 0;
    const size_t bit = i * static_cast<size_t>(l);
    const size_t byte = bit >> 3;
    uint64_t word = 0;
    std::memcpy(&word, ef.lower.data() + byte,
                std::min<size_t>(sizeof(word), ef.lower.size() - byte));
    return (word >> (bit & 7)) & ((uint64_t{1} << l) - 1);
  };
  size_t i = 0;  // set bits consumed = elements decoded
  uint64_t prev = 0;
  const size_t word_count = (ef.upper.size() + 7) / 8;
  for (size_t w = 0; w < word_count && i < ef.count; ++w) {
    uint64_t word = 0;
    std::memcpy(&word, ef.upper.data() + w * 8,
                std::min<size_t>(sizeof(word), ef.upper.size() - w * 8));
    while (word != 0 && i < ef.count) {
      const size_t pos = w * 64 + static_cast<size_t>(std::countr_zero(word));
      word &= word - 1;
      const uint64_t high = pos - i;
      const uint64_t v = (high << l) | low_at(i);
      if (v >= ef.universe) {
        return CorruptError("elias-fano element beyond universe");
      }
      if (i > 0 && v <= prev) {
        return CorruptError("elias-fano elements not strictly increasing");
      }
      prev = v;
      push(static_cast<uint32_t>(v));
      ++i;
    }
  }
  if (i != ef.count) {
    return CorruptError("elias-fano upper array holds too few elements");
  }
  return Status::Ok();
}

}  // namespace

Status EliasFanoDecode(const EliasFano& ef, std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(ef.count);
  return DecodeImpl(ef, [out](uint32_t v) { out->push_back(v); });
}

Status EliasFanoDecodeAppend(const EliasFano& ef, std::vector<size_t>* out) {
  out->reserve(out->size() + ef.count);
  return DecodeImpl(ef, [out](uint32_t v) { out->push_back(v); });
}

void EliasFanoAppend(const EliasFano& ef, ByteWriter* out) {
  out->PutU32(ef.count);
  out->PutU32(ef.universe);
  out->PutU8(ef.low_bits);
  out->PutU32(static_cast<uint32_t>(ef.lower.size()));
  out->PutU32(static_cast<uint32_t>(ef.upper.size()));
  if (!ef.lower.empty()) out->PutBytes(ef.lower.data(), ef.lower.size());
  if (!ef.upper.empty()) out->PutBytes(ef.upper.data(), ef.upper.size());
}

bool EliasFanoParse(ByteReader* in, EliasFano* out) {
  uint32_t lower_len = 0;
  uint32_t upper_len = 0;
  if (!in->GetU32(&out->count) || !in->GetU32(&out->universe) ||
      !in->GetU8(&out->low_bits) || !in->GetU32(&lower_len) ||
      !in->GetU32(&upper_len)) {
    return false;
  }
  const uint8_t* lower = in->GetBytes(lower_len);
  if (lower == nullptr && lower_len > 0) return false;
  const uint8_t* upper = in->GetBytes(upper_len);
  if (upper == nullptr && upper_len > 0) return false;
  out->lower.assign(lower, lower + lower_len);
  out->upper.assign(upper, upper + upper_len);
  return true;
}

}  // namespace storage
}  // namespace eid
