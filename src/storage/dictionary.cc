#include "storage/dictionary.h"

#include <cstring>

namespace eid {
namespace storage {

namespace {

uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d = 0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

void DictionaryBuilder::AppendTo(ByteWriter* out) const {
  out->PutU32(static_cast<uint32_t>(values_.size()));
  for (const Value& v : values_) {
    out->PutU8(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kBool:
        out->PutU8(v.AsBool() ? 1 : 0);
        break;
      case ValueType::kInt:
        out->PutU64(static_cast<uint64_t>(v.AsInt()));
        break;
      case ValueType::kDouble:
        out->PutU64(DoubleBits(v.AsDouble()));
        break;
      case ValueType::kString:
        out->PutString(v.AsString());
        break;
    }
  }
}

Status ParseDictionary(ByteReader* in, std::vector<Value>* out) {
  uint32_t count = 0;
  if (!in->GetU32(&count)) return CorruptError("dictionary count truncated");
  // A value costs at least one tag byte; an impossible count fails here
  // instead of attempting a multi-gigabyte reserve.
  if (count > in->remaining()) {
    return CorruptError("dictionary count exceeds section size");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t tag = 0;
    if (!in->GetU8(&tag)) return CorruptError("dictionary value truncated");
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kNull:
        out->push_back(Value::Null());
        break;
      case ValueType::kBool: {
        uint8_t b = 0;
        if (!in->GetU8(&b)) return CorruptError("dictionary bool truncated");
        out->push_back(Value::Bool(b != 0));
        break;
      }
      case ValueType::kInt: {
        uint64_t v = 0;
        if (!in->GetU64(&v)) return CorruptError("dictionary int truncated");
        out->push_back(Value::Int(static_cast<int64_t>(v)));
        break;
      }
      case ValueType::kDouble: {
        uint64_t bits = 0;
        if (!in->GetU64(&bits)) {
          return CorruptError("dictionary double truncated");
        }
        out->push_back(Value::Double(BitsToDouble(bits)));
        break;
      }
      case ValueType::kString: {
        std::string s;
        if (!in->GetString(&s)) {
          return CorruptError("dictionary string truncated");
        }
        out->push_back(Value::String(std::move(s)));
        break;
      }
      default:
        return CorruptError("dictionary value has unknown type tag " +
                            std::to_string(tag));
    }
  }
  return Status::Ok();
}

}  // namespace storage
}  // namespace eid
