// Predicate-driven blocking for pairwise rule evaluation.
//
// Identity and distinctness rules (paper §3.2) are conjunctions of
// predicates over an entity pair, and the engine needs every (r, s) pair
// whose antecedent evaluates to kTrue. Enumerating the cross product is
// O(|R|·|S|) per rule; almost every practical rule, however, contains an
// equality conjunct that bounds its match set:
//
//   e1.A = e2.B   — a pair can only satisfy the rule when the r-side A
//                   equals the s-side B, both non-NULL (Kleene kTrue
//                   requires non-NULL operands). Hash-index the s-side
//                   column and candidates come from bucket lookups.
//   e_i.A = c     — the i-side row must carry exactly c; prune that
//                   side's scan list before pairing.
//
// Both reductions are *complete* for kTrue: a conjunction is kTrue only
// if every conjunct is, so no qualifying pair can fall outside the
// candidate set. Candidates are then re-evaluated with the full
// three-valued conjunction, making blocking purely an optimisation —
// rules with no usable equality conjunct fall back to a tiled parallel
// scan over the (filtered) cross product.
//
// Determinism: buckets store row indices in ascending order and the scan
// emits pairs r-major, so CollectTruePairs returns the same row-major
// sequence the serial nested loop would visit, for any thread count.

#ifndef EID_EXEC_BLOCKING_INDEX_H_
#define EID_EXEC_BLOCKING_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/thread_annotations.h"
#include "eid/match_tables.h"
#include "exec/pair_evaluator.h"
#include "exec/thread_pool.h"
#include "relational/relation.h"
#include "rules/predicate.h"

namespace eid {
namespace exec {

/// Hash index over one column of a relation. NULL cells are not indexed
/// (non_null_eq semantics: NULL equals nothing). Buckets hold row
/// indices in ascending order. EID_SHARED_IMMUTABLE: built serially,
/// probed (Find, const) from every worker.
class EID_SHARED_IMMUTABLE ColumnIndex {
 public:
  static ColumnIndex Build(const Relation& relation, size_t column);

  /// Wraps pre-built buckets — the snapshot cold-start path, which
  /// reconstructs (value, ascending row list) pairs from decoded posting
  /// lists instead of re-scanning and re-hashing the relation. Buckets
  /// must follow the Build contract: no NULL keys, rows ascending.
  static ColumnIndex FromBuckets(
      std::unordered_map<Value, std::vector<size_t>, ValueHash> buckets);

  /// Rows whose cell storage-equals `v`; nullptr when none.
  const std::vector<size_t>* Find(const Value& v) const;

  size_t bucket_count() const { return buckets_.size(); }

 private:
  std::unordered_map<Value, std::vector<size_t>, ValueHash> buckets_;
};

/// Lazily-built per-relation collection of column indexes, shared across
/// the rules of one engine run so each referenced column is indexed at
/// most once. EID_SHARED_IMMUTABLE: ForAttribute/Preload (the mutating
/// calls) run only serially, before the parallel probe of a rule starts;
/// during the sweep workers only dereference the ColumnIndex pointers
/// handed out earlier.
class EID_SHARED_IMMUTABLE ColumnIndexCache {
 public:
  explicit ColumnIndexCache(const Relation* relation)
      : relation_(relation) {}

  /// Index for the named attribute; nullptr when the relation has no
  /// such attribute.
  const ColumnIndex* ForAttribute(const std::string& attribute);

  /// Installs a pre-built index for the named attribute (snapshot
  /// cold-start: indexes rebuilt from posting lists). Later ForAttribute
  /// calls return it instead of scanning the relation.
  void Preload(const std::string& attribute, ColumnIndex index);

  const Relation& relation() const { return *relation_; }

 private:
  const Relation* relation_;
  // nullptr entry = attribute absent (negative cache).
  std::unordered_map<std::string, std::unique_ptr<ColumnIndex>> indexes_;
};

/// How the candidate enumeration of a blocking plan treats one conjunct
/// of the rule antecedent. The split is exact for kTrue detection: a
/// Kleene conjunction is kTrue iff every conjunct is, so a conjunct
/// guaranteed kTrue on every enumerated candidate (kCovered) need not be
/// re-evaluated, and the rest splits into parts evaluable from the r-side
/// row alone (hoistable out of the inner pair loop) versus parts needing
/// both rows.
enum class PredicateCoverage : uint8_t {
  kCovered,       // enforced by the enumeration (join / const filter)
  kResidualRow,   // every entity operand binds the r-side row
  kResidualPair,  // needs both rows
};

/// How one rule antecedent will be evaluated against an (R, S) pair
/// space, for one orientation. `flipped` orientations bind e1 to the
/// s-side tuple and e2 to the r-side (rules quantify over all entity
/// pairs, so the engine tries both instantiation orders).
struct BlockingPlan {
  /// A conjunct forces equality between these columns (r-side attribute
  /// name / s-side attribute name); empty names when no such conjunct.
  bool has_join = false;
  std::string r_attr;
  std::string s_attr;
  /// Conjuncts of the form side.attr = constant.
  std::vector<std::pair<std::string, Value>> r_const_eq;
  std::vector<std::pair<std::string, Value>> s_const_eq;
  /// True when some conjunct can never evaluate kTrue against these
  /// schemas (references an absent attribute, or an unsatisfiable
  /// constant pair) — the rule matches nothing.
  bool impossible = false;
  /// Per-predicate coverage, parallel to the planned predicate list.
  /// Empty when `impossible` (planning stops at the fatal conjunct).
  /// s-side const filters count as covered only when there is no join:
  /// the join probe path enumerates bucket rows without applying them.
  std::vector<PredicateCoverage> coverage;
};

/// Analyses the equality conjuncts of `predicates` for the given
/// orientation against the two (extended) schemas.
BlockingPlan PlanBlocking(const std::vector<Predicate>& predicates,
                          const Schema& r_schema, const Schema& s_schema,
                          bool flipped);

/// Rows of the cached relation passing every (attribute == constant)
/// filter, ascending. Uses the column index of the first filter to seed
/// the list; no filters means every row. Complete for kTrue: a row
/// failing a filter (NULL or not storage-equal) cannot satisfy the
/// corresponding equality conjunct.
std::vector<size_t> FilteredRows(
    ColumnIndexCache& cache,
    const std::vector<std::pair<std::string, Value>>& filters);

/// Counters from one CollectTruePairs call.
struct PairScanStats {
  size_t candidate_pairs = 0;  // pairs the conjunction was evaluated on
  size_t rule_evals = 0;       // same as candidate_pairs today
  bool indexed = false;        // an equality join bounded the scan
};

/// All pairs (i over `r_ext` rows, j over `s_ext` rows) whose antecedent
/// conjunction evaluates to kTrue with (e1, e2) = (r_i, s_j), or
/// (s_j, r_i) when `flipped`. Returned in row-major (i, then j) order —
/// exactly the visit order of the serial nested loop — for any pool
/// size. `r_index`/`s_index` must cache the respective relations.
///
/// When `compiled` is non-null it must be `predicates` compiled for the
/// same schemas/orientation; candidates are then evaluated through it
/// instead of the interpreter (same Truth for every pair — the compiled
/// engine's contract, enforced by tests/compile/).
std::vector<TuplePair> CollectTruePairs(
    const Relation& r_ext, const Relation& s_ext,
    const std::vector<Predicate>& predicates, bool flipped,
    ColumnIndexCache& r_index, ColumnIndexCache& s_index, ThreadPool* pool,
    PairScanStats* stats, const PairEvaluator* compiled = nullptr);

}  // namespace exec
}  // namespace eid

#endif  // EID_EXEC_BLOCKING_INDEX_H_
