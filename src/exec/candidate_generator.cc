#include "exec/candidate_generator.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace eid {
namespace exec {

InterpretedResidual::InterpretedResidual(
    const std::vector<Predicate>& predicates,
    const std::vector<PredicateCoverage>& coverage, const Relation* r_ext,
    const Relation* s_ext, bool flipped)
    : r_(r_ext), s_(s_ext), flipped_(flipped) {
  EID_CHECK(coverage.size() == predicates.size());
  for (size_t i = 0; i < predicates.size(); ++i) {
    switch (coverage[i]) {
      case PredicateCoverage::kCovered:
        break;
      case PredicateCoverage::kResidualRow:
        row_.push_back(predicates[i]);
        break;
      case PredicateCoverage::kResidualPair:
        pair_.push_back(predicates[i]);
        break;
    }
  }
}

Truth InterpretedResidual::RowTruth(size_t r_row) const {
  TupleView rv = r_->tuple(r_row);
  // Every entity operand of a row conjunct binds the r side, so both
  // entity views may resolve to the same tuple.
  return EvaluateConjunction(row_, rv, rv);
}

Truth InterpretedResidual::PairTruth(size_t r_row, size_t s_row) const {
  TupleView rv = r_->tuple(r_row);
  TupleView sv = s_->tuple(s_row);
  return flipped_ ? EvaluateConjunction(pair_, sv, rv)
                  : EvaluateConjunction(pair_, rv, sv);
}

CandidateGenerator::CandidateGenerator(const Relation* r_ext,
                                       const Relation* s_ext,
                                       ColumnIndexCache* r_index,
                                       ColumnIndexCache* s_index,
                                       const AmqSeeds* seeds,
                                       AmqOptions amq_options,
                                       ColumnarWorld* world, bool block_eval)
    : r_(r_ext), s_(s_ext), r_index_(r_index), s_index_(s_index),
      seeds_(seeds), world_(world), block_eval_(block_eval),
      r_amq_(amq_options), s_amq_(amq_options),
      r_amq_cols_(r_ext->schema().size(), false),
      s_amq_cols_(s_ext->schema().size(), false) {}

size_t CandidateGenerator::amq_size() const {
  return r_amq_.size() + s_amq_.size();
}

void CandidateGenerator::EnsureAmqColumn(bool r_side, size_t column) {
  std::vector<bool>& done = r_side ? r_amq_cols_ : s_amq_cols_;
  if (done[column]) return;
  done[column] = true;
  AmqFilter& amq = r_side ? r_amq_ : s_amq_;
  if (seeds_ != nullptr) {
    // Snapshot fast path: the precomputed distinct fingerprints of this
    // column, no row scan and no Value re-hashing. Same fingerprint set
    // as the scan below — contents are interchangeable.
    const std::vector<std::vector<uint64_t>>& cols =
        r_side ? seeds_->r_columns : seeds_->s_columns;
    if (column < cols.size()) {
      for (uint64_t key : cols[column]) amq.Insert(key);
      return;
    }
  }
  const Relation& rel = r_side ? *r_ : *s_;
  if (world_ != nullptr) {
    // Columnar path: the shared id column gives distinctness by id and
    // the dictionary's cached hash — no Value is re-hashed here even
    // when the column was not encoded yet (the encode hashes it once).
    const WorldRel slot = r_side ? WorldRel::kRExtended : WorldRel::kSExtended;
    const std::vector<uint32_t>& ids = world_->Column(slot, rel, column);
    std::unordered_set<uint32_t> seen;
    for (uint32_t id : ids) {
      if (id == ColumnarWorld::kNullId) continue;
      if (seen.insert(id).second) {
        amq.Insert(FingerprintKey(column, world_->dict().hash(id)));
      }
    }
    return;
  }
  // One copy per *distinct* value: the batch sweep never erases, so
  // duplicate copies would only inflate the filter (a 16-value column
  // over 64k rows must not become 64k fingerprints).
  std::unordered_set<uint64_t> seen;
  for (size_t i = 0; i < rel.size(); ++i) {
    const Value& v = rel.row(i)[column];
    if (v.is_null()) continue;
    uint64_t key = FingerprintKey(column, ValueHash{}(v));
    if (seen.insert(key).second) amq.Insert(key);
  }
}

const std::vector<uint64_t>& CandidateGenerator::RColumnHashes(
    size_t column) {
  auto it = r_col_hashes_.find(column);
  if (it != r_col_hashes_.end()) return it->second;
  std::vector<uint64_t> hashes(r_->size(), 0);
  if (world_ != nullptr) {
    // Gather from the dictionary's per-id hash cache over the shared id
    // column; identical values to the scan below (the dictionary caches
    // exactly ValueHash of each interned value).
    const std::vector<uint32_t>& ids =
        world_->Column(WorldRel::kRExtended, *r_, column);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] != ColumnarWorld::kNullId) {
        hashes[i] = world_->dict().hash(ids[i]);
      }
    }
  } else {
    for (size_t i = 0; i < r_->size(); ++i) {
      const Value& v = r_->row(i)[column];
      if (!v.is_null()) hashes[i] = ValueHash{}(v);
    }
  }
  return r_col_hashes_.emplace(column, std::move(hashes)).first->second;
}

void CandidateGenerator::AddRule(const BlockingPlan& plan,
                                 const StagedEvaluator* residual) {
  // Every call consumes one priority slot, dead rules included, so
  // priority / 2 and priority & 1 always recover (rule, orientation).
  const uint32_t priority = next_priority_++;
  if (plan.impossible || r_->empty() || s_->empty()) return;
  EID_CHECK(residual != nullptr);

  // Stage 2 at rule granularity: a const-eq conjunct whose (column,
  // constant) fingerprint misses the side's filter can never be kTrue on
  // any row — the whole orientation dies in O(1). This covers s-side
  // consts under a join too (they are pair residuals there, but a value
  // absent from the whole column still kills every pair).
  auto amq_dead = [&](bool r_side,
                      const std::vector<std::pair<std::string, Value>>&
                          filters) {
    const Relation& rel = r_side ? *r_ : *s_;
    AmqFilter& amq = r_side ? r_amq_ : s_amq_;
    for (const auto& [attribute, constant] : filters) {
      std::optional<size_t> col = rel.schema().IndexOf(attribute);
      if (!col.has_value()) return true;  // absent: nothing passes
      EnsureAmqColumn(r_side, *col);
      if (!amq.Contains(FingerprintKey(*col, ValueHash{}(constant)))) {
        ++amq_rejects_;
        return true;
      }
    }
    return false;
  };
  if (amq_dead(/*r_side=*/true, plan.r_const_eq)) return;
  if (amq_dead(/*r_side=*/false, plan.s_const_eq)) return;

  Entry entry;
  entry.priority = priority;
  entry.residual = residual;

  // Stage 1, r side: const filters prune the rows this entry is
  // consulted for (exact: kEq is storage equality on non-NULL).
  const bool r_all = plan.r_const_eq.empty();
  std::vector<size_t> r_rows;
  if (!r_all) {
    r_rows = FilteredRows(*r_index_, plan.r_const_eq);
    if (r_rows.empty()) return;
  }

  if (plan.has_join) {
    std::optional<size_t> r_col = r_->schema().IndexOf(plan.r_attr);
    std::optional<size_t> s_col = s_->schema().IndexOf(plan.s_attr);
    EID_CHECK(r_col.has_value() && s_col.has_value());
    entry.has_join = true;
    entry.r_col = *r_col;
    entry.s_col = *s_col;
    entry.s_join = s_index_->ForAttribute(plan.s_attr);
    EID_CHECK(entry.s_join != nullptr);
    EnsureAmqColumn(/*r_side=*/false, *s_col);
    entry.r_hashes = &RColumnHashes(*r_col);  // Run reads it per worker
  } else if (plan.s_const_eq.empty()) {
    entry.s_all = true;
  } else {
    entry.s_rows_storage = FilteredRows(*s_index_, plan.s_const_eq);
    if (entry.s_rows_storage.empty()) return;
  }

  const uint32_t index = static_cast<uint32_t>(entries_.size());
  entries_.push_back(std::move(entry));
  if (r_all) {
    global_.push_back(index);
  } else {
    if (per_row_.empty()) per_row_.resize(r_->size());
    for (size_t row : r_rows) per_row_[row].push_back(index);
  }
}

std::vector<FiredPair> CandidateGenerator::Run(ThreadPool* pool,
                                               StagedScanStats* stats) {
  EID_CHECK(!ran_);
  ran_ = true;
  StagedScanStats local;
  local.amq_rejects = amq_rejects_;
  std::vector<FiredPair> out;
  const size_t n = r_->size();
  const size_t s_n = s_->size();
  if (entries_.empty() || n == 0 || s_n == 0) {
    if (stats != nullptr) *stats = local;
    return out;
  }

  bool need_all_s = false;
  for (const Entry& e : entries_) {
    if (e.has_join) local.indexed = true;
    if (!e.has_join && e.s_all) need_all_s = true;
  }
  if (need_all_s) {
    all_s_rows_.resize(s_n);
    std::iota(all_s_rows_.begin(), all_s_rows_.end(), size_t{0});
  }

  // Stage 3a vectorized: global entries are consulted for every r row,
  // so their row parts evaluate once here, op-major over the cached id
  // slices, instead of per (row, entry) inside the sweep. Per-row
  // entries keep the lazy path — they are consulted for few rows, and a
  // full-length pass would evaluate rows the entry never sees.
  std::vector<std::vector<Truth>> global_row_truth(entries_.size());
  for (uint32_t ei : global_) {
    const Entry& e = entries_[ei];
    if (e.residual->has_row_part()) {
      global_row_truth[ei] = e.residual->RowTruthAll(n);
    }
  }

  const int threads = pool != nullptr ? pool->threads() : 1;
  const size_t grain =
      std::max<size_t>(1, n / (static_cast<size_t>(threads) * 4));
  const size_t num_chunks = (n + grain - 1) / grain;
  // Per-chunk output and counters, merged in chunk order: deterministic
  // row-major output and thread-count-invariant counts.
  std::vector<std::vector<FiredPair>> found(num_chunks);
  struct ChunkCounts {
    size_t candidate_pairs = 0;
    size_t rule_evals = 0;
    size_t amq_rejects = 0;
    size_t feature_cache_hits = 0;
    size_t pair_blocks = 0;
    size_t block_early_exits = 0;
    size_t block_scalar_fallbacks = 0;
  };
  std::vector<ChunkCounts> counts(num_chunks);

  // Per-worker scratch: a worker processes chunks sequentially, and the
  // stamp is keyed on the r row, so stale entries from earlier rows never
  // alias (each r is swept exactly once).
  struct Scratch {
    std::vector<size_t> stamp;   // s -> last r row that fired (r, s)
    std::vector<uint32_t> best;  // s -> lowest firing priority for that r
    std::vector<size_t> touched;
    // Block-path lane buffers (filled per probe, drained per block).
    size_t lane_r[kPairBlockLanes];
    size_t lane_s[kPairBlockLanes];
    Truth lane_out[kPairBlockLanes];
  };
  std::vector<Scratch> scratch(static_cast<size_t>(std::max(threads, 1)));
  for (Scratch& sc : scratch) {
    sc.stamp.assign(s_n, SIZE_MAX);
    sc.best.resize(s_n);
  }

  static const std::vector<uint32_t> kNoEntries;
  ParallelFor(pool, n, grain, [&](size_t begin, size_t end, int worker) {
    const size_t chunk = begin / grain;
    ChunkCounts& cc = counts[chunk];
    Scratch& sc = scratch[static_cast<size_t>(worker)];
    for (size_t r = begin; r < end; ++r) {
      const std::vector<uint32_t>& row_list =
          per_row_.empty() ? kNoEntries : per_row_[r];
      // Two-pointer merge of the row-filtered and global entry lists —
      // both ascending by entry index, which is ascending priority.
      size_t a = 0, b = 0;
      while (a < row_list.size() || b < global_.size()) {
        uint32_t ei;
        if (b >= global_.size() ||
            (a < row_list.size() && row_list[a] < global_[b])) {
          ei = row_list[a++];
        } else {
          ei = global_[b++];
        }
        const Entry& e = entries_[ei];
        // Stage 3a: hoist the row-only conjuncts out of the pair loop
        // (already precomputed op-major for global entries).
        size_t pair_evals_here = 0;
        if (e.residual->has_row_part()) {
          ++cc.rule_evals;
          const std::vector<Truth>& pre = global_row_truth[ei];
          const Truth t = pre.empty() ? e.residual->RowTruth(r) : pre[r];
          if (t != Truth::kTrue) continue;
        }
        auto probe = [&](const std::vector<size_t>& candidates) {
          // Small probes skip the lane buffering outright: with fewer
          // candidates than kMinVectorLanes even a full drain would take
          // the evaluator's scalar fallback, so staging lanes and reading
          // the out array back is pure overhead on top of the same
          // PairTruth calls. Inline scalar here is bit-identical
          // (PairTruthBlock == PairTruth lane-by-lane by contract).
          if (!block_eval_ || candidates.size() < kMinVectorLanes) {
            // Scalar oracle path: one PairTruth call per candidate.
            for (size_t s : candidates) {
              // Already fired at a lower priority: the first-wins fold
              // could not change, so skip the evaluation entirely.
              if (sc.stamp[s] == r) continue;
              ++cc.candidate_pairs;
              ++cc.rule_evals;
              ++pair_evals_here;
              if (e.residual->PairTruth(r, s) == Truth::kTrue) {
                sc.stamp[s] = r;
                sc.best[s] = e.priority;
                sc.touched.push_back(s);
              }
            }
            return;
          }
          // Block path: surviving candidates accumulate into fixed-size
          // lane blocks, drained through PairTruthBlock. Stamps are read
          // at accumulation and written at drain — equivalent to the
          // scalar interleaving because one probe's candidate list holds
          // distinct s rows, and every drain completes before the next
          // entry of this r row consults the stamps, so the
          // first-(rule,orientation)-wins fold is unchanged.
          size_t lanes = 0;
          auto drain = [&] {
            ++cc.pair_blocks;
            PairBlockStats bs;
            e.residual->PairTruthBlock(sc.lane_r, sc.lane_s, lanes,
                                       sc.lane_out, &bs);
            cc.block_early_exits += bs.early_exits;
            cc.block_scalar_fallbacks += bs.scalar_fallbacks;
            for (size_t i = 0; i < lanes; ++i) {
              if (sc.lane_out[i] == Truth::kTrue) {
                const size_t s = sc.lane_s[i];
                sc.stamp[s] = r;
                sc.best[s] = e.priority;
                sc.touched.push_back(s);
              }
            }
            lanes = 0;
          };
          for (size_t s : candidates) {
            if (sc.stamp[s] == r) continue;
            ++cc.candidate_pairs;
            ++cc.rule_evals;
            ++pair_evals_here;
            sc.lane_r[lanes] = r;
            sc.lane_s[lanes] = s;
            if (++lanes == kPairBlockLanes) drain();
          }
          if (lanes > 0) drain();
        };
        if (e.has_join) {
          const Value& v = r_->row(r)[e.r_col];
          if (v.is_null()) continue;  // non_null_eq: never joins
          const uint64_t h = (*e.r_hashes)[r];
          // Stage 2: cheap integer-hash membership before the exact
          // (Value-hashing) bucket probe.
          if (!s_amq_.Contains(FingerprintKey(e.s_col, h))) {
            ++cc.amq_rejects;
            continue;
          }
          const std::vector<size_t>* bucket = e.s_join->Find(v);
          if (bucket != nullptr) probe(*bucket);
        } else {
          probe(e.s_all ? all_s_rows_ : e.s_rows_storage);
        }
        if (e.residual->has_row_part()) {
          cc.feature_cache_hits += pair_evals_here;
        }
      }
      // Emit this row's firings in ascending s order. `touched` is
      // duplicate-free (the stamp gates every push) but unsorted across
      // entries. Dense rows — a Prop-1 NMT touches nearly every s — are
      // emitted by scanning the stamp array in order, which is linear and
      // branch-predictable; sorting ~|S| indices per row was the second
      // hottest site in dense `identify` profiles. Sparse rows keep the
      // sort: a full stamp scan would dwarf their few touches.
      if (sc.touched.size() * 8 >= s_n) {
        for (size_t s = 0; s < s_n; ++s) {
          if (sc.stamp[s] == r) {
            found[chunk].push_back(FiredPair{TuplePair{r, s}, sc.best[s]});
          }
        }
      } else {
        std::sort(sc.touched.begin(), sc.touched.end());
        for (size_t s : sc.touched) {
          found[chunk].push_back(FiredPair{TuplePair{r, s}, sc.best[s]});
        }
      }
      sc.touched.clear();
    }
  });

  size_t total = 0;
  for (const std::vector<FiredPair>& f : found) total += f.size();
  out.reserve(total);
  for (std::vector<FiredPair>& f : found) {
    out.insert(out.end(), f.begin(), f.end());
  }
  for (const ChunkCounts& cc : counts) {
    local.candidate_pairs += cc.candidate_pairs;
    local.rule_evals += cc.rule_evals;
    local.amq_rejects += cc.amq_rejects;
    local.feature_cache_hits += cc.feature_cache_hits;
    local.pair_blocks += cc.pair_blocks;
    local.block_early_exits += cc.block_early_exits;
    local.block_scalar_fallbacks += cc.block_scalar_fallbacks;
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace exec
}  // namespace eid
