// Dynamic approximate-membership (AMQ) filter for candidate pruning.
//
// The staged candidate generator (exec/candidate_generator.h) wants a
// constant-time "could this attribute-value fingerprint possibly occur in
// that relation?" check that is cheaper than probing a hash index — one
// multiply and two cache lines instead of a bucket chain with Value
// equality compares — and that a long-lived incremental session can keep
// growing without ever rebuilding. This is a partial-key cuckoo filter in
// the dynamic-flat-filter style: fixed-size cuckoo sub-tables chained into
// levels, a full level admitting a fresh one instead of rehashing, so
// Insert/Query/Delete stay O(levels) with no stop-the-world growth.
//
// Contract (what correctness rests on): Contains() may return true for a
// key never inserted (false positive — the exact rule evaluation behind
// the filter absorbs those), but never returns false for a key currently
// inserted (no false negatives). Duplicate inserts are kept as copies —
// possibly spilling into later levels — so Erase() of one copy cannot
// erase the evidence of another row carrying the same fingerprint.
//
// Determinism: the structure is built serially and probed read-only from
// the parallel sweep, so every reject count derived from it is identical
// for any thread count. Eviction order is driven by a seeded xorshift —
// runs are reproducible.

#ifndef EID_EXEC_AMQ_FILTER_H_
#define EID_EXEC_AMQ_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/thread_annotations.h"

namespace eid {
namespace exec {

/// Tuning knobs. Defaults give a ~3% per-level false-positive rate at a
/// few hundred nanoseconds per op; tests shrink `fingerprint_bits` to
/// force collisions and prove false positives are harmless.
struct AmqOptions {
  /// Bits kept per stored fingerprint, in [1, 16]. Fewer bits = more
  /// false positives, never false negatives.
  int fingerprint_bits = 12;
  /// log2 of the bucket count of the first level; each new level doubles
  /// until `max_level_buckets_log2`.
  int initial_buckets_log2 = 6;
  int max_level_buckets_log2 = 20;
  /// Eviction chain length before giving up and opening a new level.
  int max_kicks = 256;
};

/// A growable cuckoo filter over 64-bit keys (callers pre-hash whatever
/// they store; see FingerprintKey below for the attribute-value form).
/// EID_SHARED_IMMUTABLE: Insert/Erase run only serially (AddRule time in
/// the batch sweep; the single-threaded incremental session); Contains
/// (const) is what the parallel sweep probes.
class EID_SHARED_IMMUTABLE AmqFilter {
 public:
  explicit AmqFilter(AmqOptions options = {});

  /// Inserts one copy of `key`. Never fails: a level that cannot place
  /// the key after max_kicks evictions pushes the displaced fingerprint
  /// into a fresh level.
  void Insert(uint64_t key);

  /// True when some copy of `key` *may* be present (false positives
  /// possible); false only when no copy was ever inserted-and-kept.
  [[nodiscard]] bool Contains(uint64_t key) const;

  /// Removes one copy of `key` if present; returns whether a copy was
  /// found. Only call for keys actually inserted (the usual cuckoo-filter
  /// deletion contract; erasing a colliding never-inserted key could
  /// remove another key's copy — callers here only erase what they add).
  bool Erase(uint64_t key);

  size_t size() const { return size_; }
  size_t levels() const { return levels_.size(); }
  /// Total slots across levels (capacity diagnostics for stats/tests).
  size_t capacity() const;

 private:
  static constexpr int kBucketWidth = 4;  // slots per bucket

  struct Level {
    explicit Level(int buckets_log2);
    uint32_t bucket_mask;                // buckets - 1
    std::vector<uint16_t> slots;         // buckets * kBucketWidth, 0 = empty
    size_t occupied = 0;
  };

  uint16_t FingerprintOf(uint64_t key) const;
  static uint32_t IndexHash(uint64_t key);
  static uint32_t AltIndex(uint32_t index, uint16_t fp, uint32_t mask);

  bool TryInsert(Level& level, uint32_t index, uint16_t fp);
  void AddLevel();

  AmqOptions options_;
  std::vector<Level> levels_;
  size_t size_ = 0;
  uint64_t kick_state_;  // seeded xorshift for eviction choices
};

/// Precomputed AMQ filter contents for the two sides of a pair sweep:
/// per column, the distinct (column, value) fingerprints of the extended
/// relation — exactly what EnsureAmqColumn would compute by scanning the
/// rows. A snapshot ships these (storage/fingerprint_index.h), so a
/// loaded world seeds its filters without re-hashing every Value. The
/// seeded filter holds the same fingerprint *set* as a scan-built one
/// (insertion placement may differ; the no-false-negative contract and
/// therefore the identify output do not).
struct AmqSeeds {
  std::vector<std::vector<uint64_t>> r_columns;
  std::vector<std::vector<uint64_t>> s_columns;
};

/// Fingerprint of an (attribute column, value hash) pair — the key the
/// engine stores per distinct attribute value of a relation. A column is
/// identified by its schema position; `value_hash` is Value::Hash().
inline uint64_t FingerprintKey(size_t column, size_t value_hash) {
  uint64_t h = static_cast<uint64_t>(value_hash) ^
               (0x9E3779B97F4A7C15ull * static_cast<uint64_t>(column + 1));
  // splitmix64 finalizer: decorrelates column and value bits.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

}  // namespace exec
}  // namespace eid

#endif  // EID_EXEC_AMQ_FILTER_H_
