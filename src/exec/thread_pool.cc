#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace eid {
namespace exec {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("EID_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 4096) {
      return static_cast<int>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(threads, 1)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    base::MutexLock lock(&mu_);
    shutdown_ = true;
  }
  start_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(int worker, const Job& job) {
  for (;;) {
    size_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    size_t begin = chunk * job.grain;
    if (begin >= job.n) return;
    size_t end = std::min(job.n, begin + job.grain);
    try {
      (*job.body)(begin, end, worker);
    } catch (...) {
      base::MutexLock lock(&mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Keep draining chunks: every iteration must still run so callers
      // may rely on "all slots written" even when one chunk threw.
    }
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  for (;;) {
    Job job;
    {
      base::MutexLock lock(&mu_);
      while (!shutdown_ && generation_ == seen) start_cv_.Wait(&mu_);
      if (shutdown_) return;
      seen = generation_;
      job = Job{body_, n_, grain_};
    }
    RunChunks(worker, job);
    {
      base::MutexLock lock(&mu_);
      if (--unfinished_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain, const ChunkBody& body) {
  if (n == 0) return;
  if (threads_ == 1) {
    body(0, n, 0);
    return;
  }
  if (grain == 0) {
    // A few chunks per worker smooths imbalance without shrinking chunks
    // so far that the claim counter becomes the bottleneck.
    grain = std::max<size_t>(1, n / (static_cast<size_t>(threads_) * 4));
  }
  const Job job{&body, n, grain};
  {
    base::MutexLock lock(&mu_);
    body_ = job.body;
    n_ = job.n;
    grain_ = job.grain;
    next_chunk_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    unfinished_ = threads_ - 1;
    ++generation_;
  }
  start_cv_.NotifyAll();
  RunChunks(0, job);
  std::exception_ptr error;
  {
    base::MutexLock lock(&mu_);
    while (unfinished_ != 0) done_cv_.Wait(&mu_);
    body_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const ChunkBody& body) {
  // Serial cutoff: tiny loops pay more for the dispatch (worker wake,
  // chunk claims, join barrier) than for the iterations — at n=4096 the
  // identify bench's threads=8 run was slower than threads=1 purely on
  // this overhead across its many small stage loops. Inline execution
  // is the single-chunk schedule the serial engine uses, so callers'
  // position-addressed chunk buffers (chunk = begin / grain) and merged
  // output are unchanged.
  if (pool != nullptr && pool->threads() > 1 &&
      n >= static_cast<size_t>(pool->threads()) *
               kParallelForMinChunkIterations) {
    pool->ParallelFor(n, grain, body);
  } else if (n > 0) {
    body(0, n, 0);
  }
}

}  // namespace exec
}  // namespace eid
