// Shared columnar interned world (DESIGN.md §4g).
//
// The matcher pipeline historically re-encoded the same string-backed
// rows three times per session: the AtomTable for staged candidates, a
// compile::ValueInterner per derivation memo, and PairFeatureCache column
// projections per rule family — so most "compiled" time was interning,
// not evaluation. A ColumnarWorld is the single id-space those consumers
// now share: one append-only Value -> dense uint32_t dictionary plus one
// dense id vector per (relation slot, column), encoded at most once per
// session. NULL cells encode as kNullId (== ValueDictionary::kNotInterned)
// so the id layer keeps NULLs explicit: non_null_eq in a hot loop is the
// branch-free pair `valid &= (id != kNullId); eq = (id_r == id_s)` over
// contiguous uint32_t columns, and 3-valued semantics are decided by the
// caller from the precomputed mask, never by re-reading the Value.
//
// Threading contract: the dictionary and columns grow only during the
// serial sections of a stage (compile/bind/build-side). Parallel workers
// see a fully built structure and only read (EID_SHARED_IMMUTABLE).

#ifndef EID_EXEC_COLUMNAR_WORLD_H_
#define EID_EXEC_COLUMNAR_WORLD_H_

#include <array>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "base/thread_annotations.h"
#include "relational/relation.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace eid {
namespace exec {

/// Append-only Value -> dense id map with id -> Value and id -> hash
/// reverse lookups. GetOrIntern mutates; Find/value/hash do not, so a
/// fully built dictionary may be probed from many threads concurrently
/// (serial build side, parallel probe side). Ids are assigned in
/// first-seen order, so preloading a snapshot dictionary (saved in
/// first-intern order) reproduces the ids a fresh build would assign.
///
/// NULL is a regular internable value (storage equality); consumers that
/// need non_null_eq semantics keep NULL out of the dictionary and use
/// kNotInterned as their NULL sentinel instead (ColumnarWorld::kNullId).
class ValueDictionary {
 public:
  /// Returned by Find for values never interned. A probe-side value that
  /// was never interned cannot equal any build-side value.
  static constexpr uint32_t kNotInterned =
      std::numeric_limits<uint32_t>::max();

  /// Id of `v`, interning it on first use. try_emplace, not emplace: the
  /// common case is a hit, and emplace would allocate a node and copy the
  /// Value before discovering the key exists.
  uint32_t GetOrIntern(const Value& v) {
    auto [it, inserted] =
        ids_.try_emplace(v, static_cast<uint32_t>(ids_.size()));
    if (inserted) {
      values_.push_back(&it->first);
      hashes_.push_back(ValueHash{}(it->first));
    }
    return it->second;
  }

  /// Id of `v` if already interned, else kNotInterned.
  uint32_t Find(const Value& v) const {
    auto it = ids_.find(v);
    return it == ids_.end() ? kNotInterned : it->second;
  }

  /// Interns `values` in order (the id-stable snapshot handoff).
  void Preload(const std::vector<Value>& values) {
    ids_.reserve(ids_.size() + values.size());
    for (const Value& v : values) GetOrIntern(v);
  }

  /// The value behind an interned id. `id` must be < size().
  const Value& value(uint32_t id) const { return *values_[id]; }

  /// ValueHash of value(id), cached at intern time — id columns can be
  /// turned into fingerprint streams without touching string payloads.
  uint64_t hash(uint32_t id) const { return hashes_[id]; }

  /// Number of distinct values interned.
  size_t size() const { return ids_.size(); }

 private:
  std::unordered_map<Value, uint32_t, ValueHash> ids_;
  // Pointers into ids_ keys — stable across rehash (node-based map).
  std::vector<const Value*> values_;
  std::vector<uint64_t> hashes_;
};

/// Borrowed contiguous view of one encoded id column — the gather
/// source for block-vectorized evaluation: a lane load is data[row]
/// with no vector-header indirection. The underlying buffer's data()
/// stays valid for the session (ColumnarWorld::Column's contract), so
/// views captured at compile time are safe to read from every worker.
struct IdColumnView {
  const uint32_t* data = nullptr;
  size_t size = 0;
  uint32_t operator[](size_t row) const { return data[row]; }
};

/// The four relation slots of one matcher session. Slots are fixed by
/// pipeline role rather than keyed by Relation* because relations move
/// between stages (ExtensionResult / MatcherResult moves change
/// addresses while the rows persist).
enum class WorldRel : size_t { kR = 0, kS = 1, kRExtended = 2, kSExtended = 3 };

inline constexpr size_t kWorldRelCount = 4;

/// Snapshot handoff payload: the saved dictionary in first-intern order
/// plus the source relations as dense id matrices (column-major, one id
/// vector per attribute, NULL cells already mapped to kNullId). Seeding a
/// ColumnarWorld from this makes a snapshot cold start pay zero
/// re-interning before Identify.
struct ColumnarSeeds {
  std::vector<Value> dictionary;
  std::vector<std::vector<uint32_t>> r_columns;
  std::vector<std::vector<uint32_t>> s_columns;
};

/// One id-space for the whole matcher pipeline: the shared dictionary
/// plus lazily encoded per-column id vectors for the session's four
/// relation slots. Encode-once is observable: serving an already-encoded
/// column bumps reuse_hits by its row count instead of re-hashing rows,
/// and every encode's wall time lands in encode_ms.
class ColumnarWorld {
 public:
  /// NULL sentinel in id columns. Equal to ValueDictionary::kNotInterned,
  /// so "never interned" and "NULL" coincide: neither can satisfy
  /// non_null_eq against anything.
  static constexpr uint32_t kNullId = ValueDictionary::kNotInterned;

  ValueDictionary& dict() { return dict_; }
  const ValueDictionary& dict() const { return dict_; }

  /// Ids for column `c` of `rel`, which must be the relation currently
  /// bound to `slot`. Encodes on first request (NULL -> kNullId), serves
  /// the cached column afterwards. Serial sections only. The returned
  /// reference's data() stays valid for the session (inner buffers move
  /// intact when the column table grows).
  const std::vector<uint32_t>& Column(WorldRel slot, const Relation& rel,
                                      size_t c);

  /// Contiguous view of Column(slot, rel, c) — either orientation slot;
  /// encodes on first request like Column. The view's data stays valid
  /// for the session.
  IdColumnView ColumnView(WorldRel slot, const Relation& rel, size_t c) {
    const std::vector<uint32_t>& ids = Column(slot, rel, c);
    return IdColumnView{ids.data(), ids.size()};
  }

  /// Already-encoded ids for (slot, c), or nullptr. Const — safe from
  /// parallel readers once the serial build phase is over.
  const std::vector<uint32_t>* FindColumn(WorldRel slot, size_t c) const;

  /// Installs externally built ids for (slot, c) — how extension output
  /// hands its columns to the join without re-encoding. Replaces any
  /// previous encoding of the column.
  void Adopt(WorldRel slot, size_t c, std::vector<uint32_t> ids);

  /// Drops every encoded column of `slot` (its relation was replaced).
  void Reset(WorldRel slot);

  /// Seeds the session from a snapshot: preloads the dictionary (ids
  /// stay byte-identical to the saved world) and adopts the source
  /// relation id matrices into the kR / kS slots. Every seeded id counts
  /// as a reuse hit — it is an encode this session never performs.
  void Seed(const ColumnarSeeds& seeds);

  /// Total wall time spent encoding Values into ids, in ms.
  double encode_ms() const { return encode_ms_; }

  /// Ids served without encoding: cached-column rows re-served plus
  /// snapshot-seeded dictionary entries and column cells.
  size_t reuse_hits() const { return reuse_hits_; }

 private:
  struct Slot {
    // One entry per attribute once touched; empty vector + present=false
    // means "not encoded yet".
    std::vector<std::vector<uint32_t>> columns;
    std::vector<bool> present;
  };

  // Grown only in serial sections; read-only for parallel workers.
  ValueDictionary dict_;
  std::array<Slot, kWorldRelCount> slots_;
  double encode_ms_ = 0;
  size_t reuse_hits_ = 0;
};

}  // namespace exec
}  // namespace eid

#endif  // EID_EXEC_COLUMNAR_WORLD_H_
