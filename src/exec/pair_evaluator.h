// Column-resolved pair-rule execution interface.
//
// CollectTruePairs re-evaluates every candidate pair with the full
// three-valued conjunction. The interpreted form (rules/predicate.h)
// resolves operand attribute names through Schema::IndexOf for every
// pair; a PairEvaluator is the compiled alternative — operands are bound
// to column indices once per rule/orientation (src/compile/pair_program.h)
// and evaluation is a flat pass over the two rows. The exec layer only
// sees this interface, so it never depends on the compile subsystem.

#ifndef EID_EXEC_PAIR_EVALUATOR_H_
#define EID_EXEC_PAIR_EVALUATOR_H_

#include "relational/tuple.h"
#include "rules/predicate.h"

namespace eid {
namespace exec {

/// One rule-antecedent conjunction bound to a fixed (R schema, S schema,
/// orientation) triple. Evaluate always takes rows in relation space —
/// the r-side row first — the orientation (which entity each side binds
/// to) is baked in when the conjunction is compiled.
class PairEvaluator {
 public:
  virtual ~PairEvaluator() = default;

  /// Truth of the conjunction for the pair; identical to
  /// EvaluateConjunction over the bound orientation.
  virtual Truth Evaluate(const Row& r_row, const Row& s_row) const = 0;
};

}  // namespace exec
}  // namespace eid

#endif  // EID_EXEC_PAIR_EVALUATOR_H_
