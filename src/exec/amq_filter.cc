#include "exec/amq_filter.h"

#include <algorithm>
#include <cassert>

namespace eid {
namespace exec {

namespace {

uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

AmqFilter::Level::Level(int buckets_log2)
    : bucket_mask((1u << buckets_log2) - 1),
      slots(static_cast<size_t>(1u << buckets_log2) * 4, 0) {}

AmqFilter::AmqFilter(AmqOptions options)
    : options_(options), kick_state_(0x853C49E6748FEA9Bull) {
  if (options_.fingerprint_bits < 1) options_.fingerprint_bits = 1;
  if (options_.fingerprint_bits > 16) options_.fingerprint_bits = 16;
  if (options_.initial_buckets_log2 < 1) options_.initial_buckets_log2 = 1;
  if (options_.max_level_buckets_log2 < options_.initial_buckets_log2) {
    options_.max_level_buckets_log2 = options_.initial_buckets_log2;
  }
  AddLevel();
}

uint16_t AmqFilter::FingerprintOf(uint64_t key) const {
  // Fingerprint bits are drawn from the top of the mix so they stay
  // independent of the low bits used for bucket indexing.
  uint64_t mixed = Mix64(key * 0x2545F4914F6CDD1Dull + 0x9E3779B97F4A7C15ull);
  uint16_t fp = static_cast<uint16_t>(
      mixed >> (64 - options_.fingerprint_bits));
  // 0 marks an empty slot; remap to keep the no-false-negative contract.
  if (fp == 0) fp = 1;
  return fp;
}

uint32_t AmqFilter::IndexHash(uint64_t key) {
  return static_cast<uint32_t>(Mix64(key));
}

uint32_t AmqFilter::AltIndex(uint32_t index, uint16_t fp, uint32_t mask) {
  // Partial-key cuckoo displacement: the pair {index, index ^ h(fp)} is
  // recoverable from either member, so eviction never needs the full key.
  return (index ^ IndexHash(fp)) & mask;
}

size_t AmqFilter::capacity() const {
  size_t total = 0;
  for (const Level& level : levels_) total += level.slots.size();
  return total;
}

void AmqFilter::AddLevel() {
  int log2 = options_.initial_buckets_log2 + static_cast<int>(levels_.size());
  log2 = std::min(log2, options_.max_level_buckets_log2);
  levels_.emplace_back(log2);
}

bool AmqFilter::TryInsert(Level& level, uint32_t index, uint16_t fp) {
  uint32_t i1 = index & level.bucket_mask;
  uint32_t i2 = AltIndex(i1, fp, level.bucket_mask);
  for (uint32_t bucket : {i1, i2}) {
    uint16_t* b = &level.slots[static_cast<size_t>(bucket) * kBucketWidth];
    for (int s = 0; s < kBucketWidth; ++s) {
      if (b[s] == 0) {
        b[s] = fp;
        ++level.occupied;
        return true;
      }
    }
  }
  // Both buckets full: evict along a bounded chain, remembering every hop.
  // A fingerprint displaced mid-chain belongs to some *other* key whose
  // legal buckets are only known in this level's geometry, so a dead end
  // must unwind the chain rather than carry a foreign fingerprint into a
  // level with a different mask (which would break no-false-negatives).
  struct Hop {
    uint32_t bucket;
    int slot;
  };
  std::vector<Hop> path;
  path.reserve(static_cast<size_t>(options_.max_kicks));
  uint32_t bucket = i1;
  uint16_t carry = fp;
  for (int kick = 0; kick < options_.max_kicks; ++kick) {
    kick_state_ ^= kick_state_ << 13;
    kick_state_ ^= kick_state_ >> 7;
    kick_state_ ^= kick_state_ << 17;
    int victim = static_cast<int>(kick_state_ % kBucketWidth);
    uint16_t* b = &level.slots[static_cast<size_t>(bucket) * kBucketWidth];
    path.push_back(Hop{bucket, victim});
    std::swap(carry, b[victim]);
    bucket = AltIndex(bucket, carry, level.bucket_mask);
    b = &level.slots[static_cast<size_t>(bucket) * kBucketWidth];
    for (int s = 0; s < kBucketWidth; ++s) {
      if (b[s] == 0) {
        b[s] = carry;
        ++level.occupied;
        return true;
      }
    }
  }
  // Dead end: restore every displaced fingerprint to its original slot.
  // `carry` is the original `fp` again afterwards, and the caller places
  // it in a fresh level using the full index hash it still holds.
  for (size_t h = path.size(); h-- > 0;) {
    std::swap(carry,
              level.slots[static_cast<size_t>(path[h].bucket) * kBucketWidth +
                          path[h].slot]);
  }
  assert(carry == fp);
  return false;
}

void AmqFilter::Insert(uint64_t key) {
  uint16_t fp = FingerprintOf(key);
  uint32_t index = IndexHash(key);
  // Prefer the last (largest) level: earlier levels are the ones that
  // already overflowed.
  if (!TryInsert(levels_.back(), index, fp)) {
    AddLevel();
    // A fresh level has both candidate buckets empty, so this cannot fail.
    bool placed = TryInsert(levels_.back(), index, fp);
    assert(placed);
    (void)placed;
  }
  ++size_;
}

bool AmqFilter::Contains(uint64_t key) const {
  uint16_t fp = FingerprintOf(key);
  uint32_t index = IndexHash(key);
  for (const Level& level : levels_) {
    if (level.occupied == 0) continue;
    uint32_t i1 = index & level.bucket_mask;
    uint32_t i2 = AltIndex(i1, fp, level.bucket_mask);
    const uint16_t* b1 = &level.slots[static_cast<size_t>(i1) * kBucketWidth];
    const uint16_t* b2 = &level.slots[static_cast<size_t>(i2) * kBucketWidth];
    for (int s = 0; s < kBucketWidth; ++s) {
      if (b1[s] == fp || b2[s] == fp) return true;
    }
  }
  return false;
}

bool AmqFilter::Erase(uint64_t key) {
  uint16_t fp = FingerprintOf(key);
  uint32_t index = IndexHash(key);
  for (Level& level : levels_) {
    if (level.occupied == 0) continue;
    uint32_t i1 = index & level.bucket_mask;
    uint32_t i2 = AltIndex(i1, fp, level.bucket_mask);
    for (uint32_t bucket : {i1, i2}) {
      uint16_t* b = &level.slots[static_cast<size_t>(bucket) * kBucketWidth];
      for (int s = 0; s < kBucketWidth; ++s) {
        if (b[s] == fp) {
          b[s] = 0;
          --level.occupied;
          --size_;
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace exec
}  // namespace eid
