// Per-stage instrumentation of the identification engine.
//
// Every stage of an identification run (extension, key join, identity
// rules, distinctness rules) records what it actually did: tuples
// derived, candidate pairs generated versus the full cross product,
// rule-antecedent evaluations, wall time, thread count. The counters are
// the engine's perf contract — the scaling benches serialise them into
// BENCH_scaling.json, and `candidate_pairs / cross_product` is the
// blocking-index selectivity that explains *why* a run was fast, not
// just how fast it was.
//
// Counters are aggregated per index chunk and summed, so every count is
// deterministic across thread counts; only wall_ms (and compile_ms) vary
// run to run, and the memo hit/miss split depends on how rows shard
// across the per-worker caches (their sum per worker chunk does not).

#ifndef EID_EXEC_STAGE_STATS_H_
#define EID_EXEC_STAGE_STATS_H_

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "base/thread_annotations.h"

namespace eid {
namespace exec {

/// Counters for one engine stage. EID_PER_WORKER while a stage runs:
/// each worker (or chunk) accumulates into its own instance or slot, and
/// the stage folds them serially after the ParallelFor joins — counters
/// are never shared mutable state, which is why every count is
/// deterministic across thread counts.
struct EID_PER_WORKER StageStats {
  std::string stage;    // "extend_r", "key_join", "identity_rules", ...
  double wall_ms = 0.0; // wall-clock time of the stage
  int threads = 1;      // parallelism the stage ran with

  size_t items = 0;            // stage unit: tuples processed / pairs added
  size_t values_derived = 0;   // attribute values filled in via ILFDs
  size_t candidate_pairs = 0;  // pairs actually evaluated
  size_t cross_product = 0;    // |R'| * |S'| baseline for candidate_pairs
  size_t rule_evals = 0;       // antecedent-conjunction evaluations

  // Staged candidate-generation counters (exec/candidate_generator.h),
  // zero on exhaustive-oracle runs.
  size_t amq_rejects = 0;         // probes killed by the AMQ pre-filter
  size_t feature_cache_hits = 0;  // pair evals reusing a hoisted row part

  // Block-vectorized residual counters (StagedEvaluator::PairTruthBlock,
  // DESIGN.md §4h), zero on the scalar residual path. The block_* pair
  // is evaluator-dependent (the interpreter has no vectorized override);
  // pair_blocks is thread- and engine-invariant like the stage counters.
  size_t pair_blocks = 0;             // residual blocks drained
  size_t block_early_exits = 0;       // blocks whose op loop cut short
  size_t block_scalar_fallbacks = 0;  // lanes through the value path

  // Compiled-execution counters (src/compile/), zero on interpreted runs.
  double compile_ms = 0.0;     // rule-program compilation time (in wall_ms)
  size_t memo_hits = 0;        // derivation memo cache hits
  size_t memo_misses = 0;      // derivation memo cache misses
  size_t interner_values = 0;  // distinct values interned by the stage

  // Snapshot counters (src/storage/), zero on worlds built from rows.
  double snapshot_load_ms = 0.0;  // mmap + decode + index rebuild time
  size_t dict_values = 0;         // dictionary entries decoded

  // Columnar-world counters (exec/columnar_world.h), zero off the
  // columnar path. These make the encode-once claim observable: reuse
  // hits are ids served without hashing a Value (cached columns,
  // snapshot-seeded dictionary/cells), encode_ms is the total time this
  // stage spent turning Values into ids, and probe_batches counts the
  // vectorized key-join probe blocks.
  size_t probe_batches = 0;         // batched join-probe blocks run
  size_t interner_reuse_hits = 0;   // ids served without re-encoding
  double columnar_encode_ms = 0.0;  // Value -> id encode time (in wall_ms)

  /// One-line human-readable form.
  std::string ToString() const;
  /// JSON object form (stable key order).
  std::string ToJson() const;
};

/// An ordered collection of stage counters for one run.
class StageStatsSet {
 public:
  void Add(StageStats stats) { stages_.push_back(std::move(stats)); }
  /// Appends every stage of `other` (used to fold sub-results into the
  /// full identification result). Serial-only, like Add: stats merging
  /// always happens after the stage's ParallelFor has joined.
  void Merge(const StageStatsSet& other);

  const std::vector<StageStats>& stages() const { return stages_; }
  bool empty() const { return stages_.empty(); }

  /// The named stage, or nullptr.
  const StageStats* Find(const std::string& stage) const;

  /// Sum of a counter across stages.
  size_t TotalRuleEvals() const;
  size_t TotalCandidatePairs() const;
  double TotalWallMs() const;

  /// JSON array of stage objects.
  std::string ToJson() const;
  /// Multi-line human-readable table.
  std::string ToString() const;

 private:
  std::vector<StageStats> stages_;
};

/// Scoped wall timer: construct at stage start, call ElapsedMs() when
/// filling in the stage's StageStats.
class StageTimer {
 public:
  StageTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace exec
}  // namespace eid

#endif  // EID_EXEC_STAGE_STATS_H_
