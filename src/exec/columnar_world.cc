#include "exec/columnar_world.h"

#include <utility>

#include "exec/stage_stats.h"

namespace eid {
namespace exec {

const std::vector<uint32_t>& ColumnarWorld::Column(WorldRel slot_id,
                                                   const Relation& rel,
                                                   size_t c) {
  Slot& slot = slots_[static_cast<size_t>(slot_id)];
  size_t arity = rel.schema().size();
  if (slot.columns.size() < arity) {
    slot.columns.resize(arity);
    slot.present.resize(arity, false);
  }
  if (slot.present[c]) {
    reuse_hits_ += slot.columns[c].size();
    return slot.columns[c];
  }
  StageTimer timer;
  const std::vector<Row>& rows = rel.rows();
  std::vector<uint32_t>& ids = slot.columns[c];
  ids.resize(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    const Value& v = rows[r][c];
    ids[r] = v.is_null() ? kNullId : dict_.GetOrIntern(v);
  }
  slot.present[c] = true;
  encode_ms_ += timer.ElapsedMs();
  return ids;
}

const std::vector<uint32_t>* ColumnarWorld::FindColumn(WorldRel slot_id,
                                                       size_t c) const {
  const Slot& slot = slots_[static_cast<size_t>(slot_id)];
  if (c >= slot.columns.size() || !slot.present[c]) return nullptr;
  return &slot.columns[c];
}

void ColumnarWorld::Adopt(WorldRel slot_id, size_t c,
                          std::vector<uint32_t> ids) {
  Slot& slot = slots_[static_cast<size_t>(slot_id)];
  if (slot.columns.size() <= c) {
    slot.columns.resize(c + 1);
    slot.present.resize(c + 1, false);
  }
  slot.columns[c] = std::move(ids);
  slot.present[c] = true;
}

void ColumnarWorld::Reset(WorldRel slot_id) {
  Slot& slot = slots_[static_cast<size_t>(slot_id)];
  slot.columns.clear();
  slot.present.clear();
}

void ColumnarWorld::Seed(const ColumnarSeeds& seeds) {
  dict_.Preload(seeds.dictionary);
  reuse_hits_ += seeds.dictionary.size();
  for (size_t c = 0; c < seeds.r_columns.size(); ++c) {
    reuse_hits_ += seeds.r_columns[c].size();
    Adopt(WorldRel::kR, c, std::vector<uint32_t>(seeds.r_columns[c]));
  }
  for (size_t c = 0; c < seeds.s_columns.size(); ++c) {
    reuse_hits_ += seeds.s_columns[c].size();
    Adopt(WorldRel::kS, c, std::vector<uint32_t>(seeds.s_columns[c]));
  }
}

}  // namespace exec
}  // namespace eid
