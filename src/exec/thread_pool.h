// Deterministic parallel execution substrate.
//
// The engine's hot paths (per-tuple ILFD derivation, pairwise rule
// sweeps, key-join probes) are all loops over index ranges whose
// iterations are independent. ThreadPool::ParallelFor schedules such a
// loop over a fixed set of persistent workers in contiguous chunks.
// There is deliberately *no work stealing* and no shared mutable
// accumulator: each iteration writes only to its own index slot (or each
// chunk to its own buffer), so results are position-addressed and the
// merged output is identical for every thread count — the determinism
// guarantee the identification engine's `threads=1 ≡ threads=N` contract
// rests on.
//
// Thread-count resolution (ResolveThreads): an explicit positive request
// wins; otherwise the EID_THREADS environment variable; otherwise the
// hardware concurrency. `threads == 1` never spawns and runs the body
// inline on the caller's thread — byte-identical to the pre-parallel
// engine by construction.

#ifndef EID_EXEC_THREAD_POOL_H_
#define EID_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eid {
namespace exec {

/// Resolves a requested thread count: `requested > 0` is taken verbatim;
/// `0` falls back to the EID_THREADS environment variable, then to
/// std::thread::hardware_concurrency(). Always returns >= 1.
int ResolveThreads(int requested);

/// Loop body: [begin, end) is a contiguous chunk of the iteration space,
/// `worker` a stable id in [0, threads) usable to index per-worker
/// scratch state (e.g. one ClosureEvaluator per worker).
using ChunkBody = std::function<void(size_t begin, size_t end, int worker)>;

/// A fixed-size pool of persistent workers. The constructing thread
/// participates in every ParallelFor as worker 0, so `threads` is the
/// total parallelism, not the number of spawned threads.
class ThreadPool {
 public:
  /// `threads <= 1` creates no workers; ParallelFor then runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs `body` over [0, n) split into chunks of `grain` iterations
  /// (grain == 0 picks a default that gives each worker several chunks).
  /// Chunks are claimed dynamically but identified by position, so any
  /// iteration-to-output mapping keyed on the index is deterministic.
  /// Blocks until every iteration has run. Exceptions thrown by `body`
  /// are rethrown here (first one wins).
  void ParallelFor(size_t n, size_t grain, const ChunkBody& body);

 private:
  void WorkerLoop(int worker);
  void RunChunks(int worker);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;  // bumped per ParallelFor; guarded by mu_
  int unfinished_ = 0;       // workers still on the current job
  bool shutdown_ = false;

  // Current job (valid while unfinished_ > 0 for the latest generation).
  const ChunkBody* body_ = nullptr;
  size_t n_ = 0;
  size_t grain_ = 1;
  std::atomic<size_t> next_chunk_{0};
  std::exception_ptr first_error_;  // guarded by mu_
};

/// Runs `body` over [0, n): on the pool when `pool` is non-null and has
/// more than one thread, inline otherwise. The common entry point for
/// engine stages, so every call site handles the serial mode uniformly.
void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const ChunkBody& body);

}  // namespace exec
}  // namespace eid

#endif  // EID_EXEC_THREAD_POOL_H_
