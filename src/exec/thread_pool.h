// Deterministic parallel execution substrate.
//
// The engine's hot paths (per-tuple ILFD derivation, pairwise rule
// sweeps, key-join probes) are all loops over index ranges whose
// iterations are independent. ThreadPool::ParallelFor schedules such a
// loop over a fixed set of persistent workers in contiguous chunks.
// There is deliberately *no work stealing* and no shared mutable
// accumulator: each iteration writes only to its own index slot (or each
// chunk to its own buffer), so results are position-addressed and the
// merged output is identical for every thread count — the determinism
// guarantee the identification engine's `threads=1 ≡ threads=N` contract
// rests on.
//
// Thread-count resolution (ResolveThreads): an explicit positive request
// wins; otherwise the EID_THREADS environment variable; otherwise the
// hardware concurrency. `threads == 1` never spawns and runs the body
// inline on the caller's thread — byte-identical to the pre-parallel
// engine by construction.
//
// Locking contracts are capability annotations (base/thread_annotations.h),
// not comments: every member guarded by mu_ declares EID_GUARDED_BY(mu_),
// and clang's `-Wthread-safety` (the thread-safety preset / CI gate)
// rejects any access path that forgets the lock. See DESIGN.md §4f.

#ifndef EID_EXEC_THREAD_POOL_H_
#define EID_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace eid {
namespace exec {

/// Resolves a requested thread count: `requested > 0` is taken verbatim;
/// `0` falls back to the EID_THREADS environment variable, then to
/// std::thread::hardware_concurrency(). Always returns >= 1.
int ResolveThreads(int requested);

/// Loop body: [begin, end) is a contiguous chunk of the iteration space,
/// `worker` a stable id in [0, threads) usable to index per-worker
/// scratch state (e.g. one ClosureEvaluator per worker).
using ChunkBody = std::function<void(size_t begin, size_t end, int worker)>;

/// A fixed-size pool of persistent workers. The constructing thread
/// participates in every ParallelFor as worker 0, so `threads` is the
/// total parallelism, not the number of spawned threads.
class ThreadPool {
 public:
  /// `threads <= 1` creates no workers; ParallelFor then runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs `body` over [0, n) split into chunks of `grain` iterations
  /// (grain == 0 picks a default that gives each worker several chunks).
  /// Chunks are claimed dynamically but identified by position, so any
  /// iteration-to-output mapping keyed on the index is deterministic.
  /// Blocks until every iteration has run. Exceptions thrown by `body`
  /// are rethrown here (first one wins).
  void ParallelFor(size_t n, size_t grain, const ChunkBody& body)
      EID_EXCLUDES(mu_);

 private:
  /// One dispatched job, copied out of the guarded members under mu_ at
  /// claim time so RunChunks never touches guarded state lock-free.
  struct Job {
    const ChunkBody* body = nullptr;
    size_t n = 0;
    size_t grain = 1;
  };

  void WorkerLoop(int worker) EID_EXCLUDES(mu_);
  void RunChunks(int worker, const Job& job) EID_EXCLUDES(mu_);

  const int threads_;
  std::vector<std::thread> workers_;  // written in ctor, joined in dtor

  base::Mutex mu_;
  base::CondVar start_cv_;
  base::CondVar done_cv_;
  uint64_t generation_ EID_GUARDED_BY(mu_) = 0;  // bumped per ParallelFor
  int unfinished_ EID_GUARDED_BY(mu_) = 0;  // workers still on current job
  bool shutdown_ EID_GUARDED_BY(mu_) = false;

  // Current job. Workers copy these three into a local Job while holding
  // mu_ (observing the new generation_), so the sweep itself reads only
  // the copy — every guarded member really is lock-protected on every
  // access, which is what lets clang verify this class.
  const ChunkBody* body_ EID_GUARDED_BY(mu_) = nullptr;
  size_t n_ EID_GUARDED_BY(mu_) = 0;
  size_t grain_ EID_GUARDED_BY(mu_) = 1;
  // Chunk claim counter: deliberately atomic, not guarded — claiming a
  // chunk is the sweep's hottest shared operation and needs no other
  // state, so it bypasses mu_ by design.
  std::atomic<size_t> next_chunk_{0};
  std::exception_ptr first_error_ EID_GUARDED_BY(mu_);
};

/// Adaptive serial cutoff of the free ParallelFor below: a loop is only
/// dispatched to the pool when every worker can get at least this many
/// iterations (n >= threads * kParallelForMinChunkIterations). Below the
/// cutoff the wake/claim/join overhead exceeds the loop itself, so the
/// body runs inline as one chunk — the exact schedule threads=1 uses,
/// which the engine's determinism contract already covers. Exposed so
/// tests can exercise the boundary.
inline constexpr size_t kParallelForMinChunkIterations = 32;

/// Runs `body` over [0, n): on the pool when `pool` is non-null, has
/// more than one thread, and n clears the serial cutoff above; inline
/// otherwise. The common entry point for engine stages, so every call
/// site handles the serial mode uniformly. (ThreadPool::ParallelFor
/// itself stays cutoff-free: pool edge-case tests and callers that want
/// the raw schedule keep full semantics.)
void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const ChunkBody& body);

}  // namespace exec
}  // namespace eid

#endif  // EID_EXEC_THREAD_POOL_H_
