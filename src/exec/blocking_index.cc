#include "exec/blocking_index.h"

#include <algorithm>
#include <numeric>

namespace eid {
namespace exec {

ColumnIndex ColumnIndex::Build(const Relation& relation, size_t column) {
  ColumnIndex index;
  index.buckets_.reserve(relation.size());
  for (size_t i = 0; i < relation.size(); ++i) {
    const Value& v = relation.row(i)[column];
    if (v.is_null()) continue;
    index.buckets_[v].push_back(i);  // ascending: i is monotone
  }
  return index;
}

ColumnIndex ColumnIndex::FromBuckets(
    std::unordered_map<Value, std::vector<size_t>, ValueHash> buckets) {
  ColumnIndex index;
  index.buckets_ = std::move(buckets);
  return index;
}

const std::vector<size_t>* ColumnIndex::Find(const Value& v) const {
  auto it = buckets_.find(v);
  if (it == buckets_.end()) return nullptr;
  return &it->second;
}

const ColumnIndex* ColumnIndexCache::ForAttribute(
    const std::string& attribute) {
  auto it = indexes_.find(attribute);
  if (it != indexes_.end()) return it->second.get();
  std::optional<size_t> col = relation_->schema().IndexOf(attribute);
  std::unique_ptr<ColumnIndex> built;
  if (col.has_value()) {
    built = std::make_unique<ColumnIndex>(
        ColumnIndex::Build(*relation_, *col));
  }
  return indexes_.emplace(attribute, std::move(built))
      .first->second.get();
}

void ColumnIndexCache::Preload(const std::string& attribute,
                               ColumnIndex index) {
  indexes_[attribute] = std::make_unique<ColumnIndex>(std::move(index));
}

BlockingPlan PlanBlocking(const std::vector<Predicate>& predicates,
                          const Schema& r_schema, const Schema& s_schema,
                          bool flipped) {
  BlockingPlan plan;
  // Which relation an entity's attributes live in under this orientation.
  auto schema_of = [&](int entity) -> const Schema& {
    bool r_side = (entity == 1) != flipped;
    return r_side ? r_schema : s_schema;
  };
  auto is_r_side = [&](int entity) { return (entity == 1) != flipped; };
  // Coverage of a conjunct the enumeration does not enforce: hoistable to
  // the r-side row loop when every entity operand binds the r side.
  auto residual_of = [&](const Predicate& p) {
    for (const Operand* o : {&p.lhs, &p.rhs}) {
      if (o->kind == Operand::Kind::kEntityAttribute &&
          !is_r_side(o->entity)) {
        return PredicateCoverage::kResidualPair;
      }
    }
    return PredicateCoverage::kResidualRow;
  };
  // Indices (into `coverage`) of s-side const filters, provisionally
  // covered; demoted below when a join ends up driving the enumeration.
  std::vector<size_t> s_covered;

  for (const Predicate& p : predicates) {
    // Any conjunct referencing an attribute absent from its bound schema
    // evaluates on a NULL operand — kUnknown for every op — so the
    // conjunction can never reach kTrue.
    for (const Operand* o : {&p.lhs, &p.rhs}) {
      if (o->kind == Operand::Kind::kEntityAttribute &&
          !schema_of(o->entity).Contains(o->attribute)) {
        plan.impossible = true;
        plan.coverage.clear();
        return plan;
      }
      if (o->kind == Operand::Kind::kConstant && o->constant.is_null()) {
        plan.impossible = true;  // NULL operand: kUnknown forever
        plan.coverage.clear();
        return plan;
      }
    }
    // Row-independent conjunct (constant vs constant): evaluate now.
    if (p.lhs.kind == Operand::Kind::kConstant &&
        p.rhs.kind == Operand::Kind::kConstant) {
      if (CompareValues(p.lhs.constant, p.op, p.rhs.constant) !=
          Truth::kTrue) {
        plan.impossible = true;
        plan.coverage.clear();
        return plan;
      }
      plan.coverage.push_back(PredicateCoverage::kCovered);
      continue;
    }
    if (p.op != CompareOp::kEq) {
      plan.coverage.push_back(residual_of(p));
      continue;
    }
    const bool lhs_attr = p.lhs.kind == Operand::Kind::kEntityAttribute;
    const bool rhs_attr = p.rhs.kind == Operand::Kind::kEntityAttribute;
    if (lhs_attr && rhs_attr) {
      if (p.lhs.entity == p.rhs.entity) {  // same-side: not a join
        plan.coverage.push_back(residual_of(p));
        continue;
      }
      if (!plan.has_join) {
        plan.has_join = true;
        if (is_r_side(p.lhs.entity)) {
          plan.r_attr = p.lhs.attribute;
          plan.s_attr = p.rhs.attribute;
        } else {
          plan.r_attr = p.rhs.attribute;
          plan.s_attr = p.lhs.attribute;
        }
        plan.coverage.push_back(PredicateCoverage::kCovered);
      } else {
        // Only the first cross-entity equality drives the probe.
        plan.coverage.push_back(PredicateCoverage::kResidualPair);
      }
      continue;
    }
    if (lhs_attr != rhs_attr) {
      const Operand& attr_op = lhs_attr ? p.lhs : p.rhs;
      const Operand& const_op = lhs_attr ? p.rhs : p.lhs;
      const bool r_side = is_r_side(attr_op.entity);
      auto& filters = r_side ? plan.r_const_eq : plan.s_const_eq;
      filters.emplace_back(attr_op.attribute, const_op.constant);
      if (!r_side) s_covered.push_back(plan.coverage.size());
      plan.coverage.push_back(PredicateCoverage::kCovered);
      continue;
    }
    plan.coverage.push_back(residual_of(p));
  }
  if (plan.has_join) {
    // The join path probes s-side buckets directly; s const filters are
    // not applied to bucket rows, so they stay part of the residual.
    for (size_t i : s_covered) {
      plan.coverage[i] = PredicateCoverage::kResidualPair;
    }
  }
  return plan;
}

std::vector<size_t> FilteredRows(
    ColumnIndexCache& cache,
    const std::vector<std::pair<std::string, Value>>& filters) {
  const Relation& rel = cache.relation();
  std::vector<size_t> rows;
  if (filters.empty()) {
    rows.resize(rel.size());
    std::iota(rows.begin(), rows.end(), size_t{0});
    return rows;
  }
  const ColumnIndex* index = cache.ForAttribute(filters[0].first);
  if (index == nullptr) return rows;  // attribute absent: nothing passes
  const std::vector<size_t>* bucket = index->Find(filters[0].second);
  if (bucket == nullptr) return rows;
  std::vector<size_t> cols;
  for (size_t f = 1; f < filters.size(); ++f) {
    std::optional<size_t> c = rel.schema().IndexOf(filters[f].first);
    if (!c.has_value()) return rows;
    cols.push_back(*c);
  }
  for (size_t i : *bucket) {
    bool pass = true;
    for (size_t f = 1; f < filters.size(); ++f) {
      const Value& v = rel.row(i)[cols[f - 1]];
      if (v.is_null() || !(v == filters[f].second)) {
        pass = false;
        break;
      }
    }
    if (pass) rows.push_back(i);
  }
  return rows;
}

std::vector<TuplePair> CollectTruePairs(
    const Relation& r_ext, const Relation& s_ext,
    const std::vector<Predicate>& predicates, bool flipped,
    ColumnIndexCache& r_index, ColumnIndexCache& s_index, ThreadPool* pool,
    PairScanStats* stats, const PairEvaluator* compiled) {
  PairScanStats local;
  std::vector<TuplePair> out;
  BlockingPlan plan =
      PlanBlocking(predicates, r_ext.schema(), s_ext.schema(), flipped);
  if (plan.impossible || r_ext.empty() || s_ext.empty()) {
    if (stats != nullptr) *stats = local;
    return out;
  }
  local.indexed = plan.has_join;

  std::vector<size_t> r_rows = FilteredRows(r_index, plan.r_const_eq);

  // Evaluate the *full* conjunction on a candidate — blocking only
  // bounds the candidate set, it never decides a pair. The compiled
  // evaluator takes rows in relation space; orientation is baked in.
  auto evaluate = [&](size_t i, size_t j) {
    if (compiled != nullptr) {
      return compiled->Evaluate(r_ext.row(i), s_ext.row(j));
    }
    TupleView rv = r_ext.tuple(i);
    TupleView sv = s_ext.tuple(j);
    return flipped ? EvaluateConjunction(predicates, sv, rv)
                   : EvaluateConjunction(predicates, rv, sv);
  };

  const int threads = pool != nullptr ? pool->threads() : 1;
  const size_t n = r_rows.size();
  if (n == 0) {
    if (stats != nullptr) *stats = local;
    return out;
  }
  const size_t grain =
      std::max<size_t>(1, n / (static_cast<size_t>(threads) * 4));
  const size_t num_chunks = (n + grain - 1) / grain;
  // Per-chunk buffers merged in chunk order: the output is row-major for
  // any thread count because chunks cover ascending r ranges.
  std::vector<std::vector<TuplePair>> found(num_chunks);
  std::vector<size_t> evals(num_chunks, 0);

  if (plan.has_join) {
    const ColumnIndex* s_idx = s_index.ForAttribute(plan.s_attr);
    EID_CHECK(s_idx != nullptr);  // schema checked in PlanBlocking
    std::optional<size_t> r_col = r_ext.schema().IndexOf(plan.r_attr);
    EID_CHECK(r_col.has_value());
    ParallelFor(pool, n, grain, [&](size_t begin, size_t end, int) {
      const size_t chunk = begin / grain;
      for (size_t k = begin; k < end; ++k) {
        size_t i = r_rows[k];
        const Value& v = r_ext.row(i)[*r_col];
        if (v.is_null()) continue;
        const std::vector<size_t>* bucket = s_idx->Find(v);
        if (bucket == nullptr) continue;
        for (size_t j : *bucket) {
          ++evals[chunk];
          if (evaluate(i, j) == Truth::kTrue) {
            found[chunk].push_back(TuplePair{i, j});
          }
        }
      }
    });
  } else {
    std::vector<size_t> s_rows = FilteredRows(s_index, plan.s_const_eq);
    if (!s_rows.empty()) {
      ParallelFor(pool, n, grain, [&](size_t begin, size_t end, int) {
        const size_t chunk = begin / grain;
        for (size_t k = begin; k < end; ++k) {
          size_t i = r_rows[k];
          for (size_t j : s_rows) {
            ++evals[chunk];
            if (evaluate(i, j) == Truth::kTrue) {
              found[chunk].push_back(TuplePair{i, j});
            }
          }
        }
      });
    }
  }

  size_t total = 0;
  for (const auto& f : found) total += f.size();
  out.reserve(total);
  for (auto& f : found) {
    out.insert(out.end(), f.begin(), f.end());
  }
  for (size_t e : evals) {
    local.candidate_pairs += e;
    local.rule_evals += e;
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace exec
}  // namespace eid
