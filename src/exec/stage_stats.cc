#include "exec/stage_stats.h"

#include <cstdio>

namespace eid {
namespace exec {

namespace {

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::string StageStats::ToString() const {
  std::string out = stage + ": " + FormatMs(wall_ms) + " ms, threads=" +
                    std::to_string(threads) +
                    ", items=" + std::to_string(items);
  if (values_derived > 0) {
    out += ", values_derived=" + std::to_string(values_derived);
  }
  if (cross_product > 0) {
    out += ", candidate_pairs=" + std::to_string(candidate_pairs) + "/" +
           std::to_string(cross_product);
  }
  if (rule_evals > 0) out += ", rule_evals=" + std::to_string(rule_evals);
  if (amq_rejects > 0) {
    out += ", amq_rejects=" + std::to_string(amq_rejects);
  }
  if (feature_cache_hits > 0) {
    out += ", feature_cache_hits=" + std::to_string(feature_cache_hits);
  }
  if (pair_blocks > 0) {
    out += ", pair_blocks=" + std::to_string(pair_blocks);
  }
  if (block_early_exits > 0) {
    out += ", block_early_exits=" + std::to_string(block_early_exits);
  }
  if (block_scalar_fallbacks > 0) {
    out += ", block_scalar_fallbacks=" + std::to_string(block_scalar_fallbacks);
  }
  if (compile_ms > 0.0) out += ", compile_ms=" + FormatMs(compile_ms);
  if (memo_hits > 0 || memo_misses > 0) {
    out += ", memo=" + std::to_string(memo_hits) + "/" +
           std::to_string(memo_hits + memo_misses);
  }
  if (interner_values > 0) {
    out += ", interner_values=" + std::to_string(interner_values);
  }
  if (snapshot_load_ms > 0.0) {
    out += ", snapshot_load_ms=" + FormatMs(snapshot_load_ms);
  }
  if (dict_values > 0) {
    out += ", dict_values=" + std::to_string(dict_values);
  }
  if (probe_batches > 0) {
    out += ", probe_batches=" + std::to_string(probe_batches);
  }
  if (interner_reuse_hits > 0) {
    out += ", interner_reuse_hits=" + std::to_string(interner_reuse_hits);
  }
  if (columnar_encode_ms > 0.0) {
    out += ", columnar_encode_ms=" + FormatMs(columnar_encode_ms);
  }
  return out;
}

std::string StageStats::ToJson() const {
  std::string out = "{\"stage\":\"" + stage + "\"";
  out += ",\"wall_ms\":" + FormatMs(wall_ms);
  out += ",\"threads\":" + std::to_string(threads);
  out += ",\"items\":" + std::to_string(items);
  out += ",\"values_derived\":" + std::to_string(values_derived);
  out += ",\"candidate_pairs\":" + std::to_string(candidate_pairs);
  out += ",\"cross_product\":" + std::to_string(cross_product);
  out += ",\"rule_evals\":" + std::to_string(rule_evals);
  out += ",\"amq_rejects\":" + std::to_string(amq_rejects);
  out += ",\"feature_cache_hits\":" + std::to_string(feature_cache_hits);
  out += ",\"pair_blocks\":" + std::to_string(pair_blocks);
  out += ",\"block_early_exits\":" + std::to_string(block_early_exits);
  out += ",\"block_scalar_fallbacks\":" + std::to_string(block_scalar_fallbacks);
  out += ",\"compile_ms\":" + FormatMs(compile_ms);
  out += ",\"memo_hits\":" + std::to_string(memo_hits);
  out += ",\"memo_misses\":" + std::to_string(memo_misses);
  out += ",\"interner_values\":" + std::to_string(interner_values);
  out += ",\"snapshot_load_ms\":" + FormatMs(snapshot_load_ms);
  out += ",\"dict_values\":" + std::to_string(dict_values);
  out += ",\"probe_batches\":" + std::to_string(probe_batches);
  out += ",\"interner_reuse_hits\":" + std::to_string(interner_reuse_hits);
  out += ",\"columnar_encode_ms\":" + FormatMs(columnar_encode_ms);
  out += "}";
  return out;
}

void StageStatsSet::Merge(const StageStatsSet& other) {
  for (const StageStats& s : other.stages_) stages_.push_back(s);
}

const StageStats* StageStatsSet::Find(const std::string& stage) const {
  for (const StageStats& s : stages_) {
    if (s.stage == stage) return &s;
  }
  return nullptr;
}

size_t StageStatsSet::TotalRuleEvals() const {
  size_t total = 0;
  for (const StageStats& s : stages_) total += s.rule_evals;
  return total;
}

size_t StageStatsSet::TotalCandidatePairs() const {
  size_t total = 0;
  for (const StageStats& s : stages_) total += s.candidate_pairs;
  return total;
}

double StageStatsSet::TotalWallMs() const {
  double total = 0;
  for (const StageStats& s : stages_) total += s.wall_ms;
  return total;
}

std::string StageStatsSet::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) out += ",";
    out += stages_[i].ToJson();
  }
  out += "]";
  return out;
}

std::string StageStatsSet::ToString() const {
  std::string out;
  for (const StageStats& s : stages_) {
    out += s.ToString() + "\n";
  }
  return out;
}

}  // namespace exec
}  // namespace eid
