// Staged candidate generation for pairwise rule sweeps.
//
// The exhaustive engine evaluates every rule's full antecedent over a
// (filtered) cross product per orientation — O(|R|·|S|) conjunction
// evaluations even when blocking bounds one rule, because each rule scans
// independently. CandidateGenerator replaces that with one r-major sweep
// through three stages:
//
//   1. *Blocking intersection.* Each (rule, orientation) contributes a
//      BlockingPlan (exec/blocking_index.h); its const-eq filters prune
//      the r rows an entry is consulted for (the per-row entry lists
//      below are that intersection), and its join conjunct turns the
//      inner loop into an index-bucket probe. Rules with no indexable
//      conjunct fall back to a scan list — principled, not silent:
//      the analyzer flags them (EID-W009).
//   2. *AMQ pre-filtering.* Before any bucket is probed, an
//      (attribute column, value fingerprint) is checked against a
//      dynamic cuckoo filter over the opposite side (exec/amq_filter.h).
//      A miss kills the probe in O(1) without hashing the Value again.
//      False positives fall through to the exact stages; false negatives
//      cannot happen, so the filter never drops a qualifying pair.
//   3. *Residual evaluation with feature hoisting.* The conjuncts the
//      enumeration already enforces (PredicateCoverage::kCovered) are
//      skipped; conjuncts reading only the r-side row are evaluated once
//      per row and reused across every candidate pair of that row
//      (counted as feature_cache_hits); only the true pair residual runs
//      in the inner loop, through a StagedEvaluator the caller supplies
//      (compiled or interpreted — candidate enumeration and all counters
//      are identical either way).
//
// Exactness: a conjunction is kTrue iff every conjunct is kTrue, covered
// conjuncts are kTrue on every enumerated candidate by construction, and
// the enumeration is complete for kTrue (storage equality is exactly
// CompareValues-kEq on non-NULL operands). Stages may over-approximate
// the candidate set, never under-approximate it.
//
// Determinism and ordering: rows are swept r-major in position-addressed
// chunks with per-chunk output buffers; per row, entries are consulted in
// ascending (rule, orientation) priority and each fired pair records the
// *lowest* priority that fired it. The merged output is therefore the
// row-major sorted pair list with first-(rule,orientation)-wins evidence —
// bit-identical to the exhaustive oracle's fold — for any thread count.

#ifndef EID_EXEC_CANDIDATE_GENERATOR_H_
#define EID_EXEC_CANDIDATE_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/thread_annotations.h"
#include "exec/amq_filter.h"
#include "exec/blocking_index.h"
#include "exec/columnar_world.h"
#include "exec/thread_pool.h"

namespace eid {
namespace exec {

/// Lanes per residual pair block. Surviving candidates accumulate into
/// fixed-size (r_row, s_row) blocks and the residual conjunction is
/// evaluated op-major over the whole block (PairTruthBlock below). 256
/// lanes keep the per-block scratch (two id lanes + two mask bytes per
/// lane) inside L1 while amortizing the per-op slot resolution.
inline constexpr size_t kPairBlockLanes = 256;

/// Below this many lanes the fixed per-block setup (slot lowering, mask
/// init, lane compaction bookkeeping) outweighs the op-major win — dense
/// sweeps drain mostly-partial blocks of a few dozen lanes. Both the
/// evaluator's PairTruthBlock and the generator's probe loop route
/// batches under this size through the scalar PairTruth path, which is
/// bit-identical lane-by-lane.
inline constexpr size_t kMinVectorLanes = 64;

/// Counters of one PairTruthBlock call, folded into StagedScanStats by
/// the generator. Evaluators without a vectorized path leave them zero.
struct PairBlockStats {
  size_t early_exits = 0;       // op loops cut short: no lane still true
  size_t scalar_fallbacks = 0;  // lanes routed through the value path
};

/// Evaluates the residual (non-covered) conjuncts of one rule antecedent
/// for one orientation. Implementations must be EID_SHARED_IMMUTABLE:
/// constructed serially, then safe for concurrent read-only use (the
/// sweep calls RowTruth/PairTruth from every worker).
class EID_SHARED_IMMUTABLE StagedEvaluator {
 public:
  virtual ~StagedEvaluator() = default;

  /// True when some conjunct is evaluable from the r-side row alone.
  virtual bool has_row_part() const = 0;
  /// Kleene conjunction of the row-only conjuncts for r row `r_row`.
  /// Only called when has_row_part().
  virtual Truth RowTruth(size_t r_row) const = 0;
  /// Vectorized form of RowTruth over every r row in [0, n):
  /// out[r] == RowTruth(r). The default is the per-row loop; compiled
  /// evaluators override it with an op-major pass over their cached id
  /// slices. Only called when has_row_part().
  virtual std::vector<Truth> RowTruthAll(size_t n) const {
    std::vector<Truth> out(n, Truth::kTrue);
    for (size_t r = 0; r < n; ++r) out[r] = RowTruth(r);
    return out;
  }
  /// Kleene conjunction of the remaining (pair) conjuncts.
  virtual Truth PairTruth(size_t r_row, size_t s_row) const = 0;
  /// Vectorized form of PairTruth over `lanes` candidate pairs:
  /// out[i] == PairTruth(r_rows[i], s_rows[i]) for every lane, with
  /// `lanes` <= kPairBlockLanes. The default is the per-lane scalar
  /// loop; compiled evaluators override it with an op-major pass over
  /// contiguous id columns (branch-free Kleene masks, early exit when
  /// no lane can still be kTrue). Overrides must be bit-identical to
  /// the scalar loop — conjunction truth is order-independent, so
  /// reordering ops inside the block is safe, dropping lanes is not.
  virtual void PairTruthBlock(const size_t* r_rows, const size_t* s_rows,
                              size_t lanes, Truth* out,
                              PairBlockStats* stats) const {
    (void)stats;
    for (size_t i = 0; i < lanes; ++i) out[i] = PairTruth(r_rows[i], s_rows[i]);
  }
};

/// Interpreter-backed StagedEvaluator: splits the predicate list by the
/// plan's coverage and evaluates each part with EvaluateConjunction.
/// The row part binds both entity views to the r row — safe because
/// every entity operand of a kResidualRow conjunct binds the r side.
class InterpretedResidual final : public StagedEvaluator {
 public:
  InterpretedResidual(const std::vector<Predicate>& predicates,
                      const std::vector<PredicateCoverage>& coverage,
                      const Relation* r_ext, const Relation* s_ext,
                      bool flipped);

  bool has_row_part() const override { return !row_.empty(); }
  Truth RowTruth(size_t r_row) const override;
  Truth PairTruth(size_t r_row, size_t s_row) const override;

 private:
  std::vector<Predicate> row_;
  std::vector<Predicate> pair_;
  const Relation* r_;
  const Relation* s_;
  bool flipped_;
};

/// Counters of one staged sweep. All thread-count-invariant; the
/// block_* pair is evaluator-dependent (zero on the interpreted path,
/// which has no vectorized override), the rest engine-invariant too.
struct StagedScanStats {
  size_t candidate_pairs = 0;      // pairs a residual was evaluated on
  size_t rule_evals = 0;           // row-part + pair-part evaluations
  size_t amq_rejects = 0;          // AMQ probe misses (killed in stage 2)
  size_t feature_cache_hits = 0;   // pair evals reusing a hoisted row part
  size_t pair_blocks = 0;          // PairTruthBlock drains (block path)
  size_t block_early_exits = 0;    // blocks whose op loop exited early
  size_t block_scalar_fallbacks = 0;  // lanes through the value path
  bool indexed = false;            // some live entry probes a join index
};

/// One fired pair with the lowest (rule, orientation) priority that
/// certified it: priority = rule_index * 2 + (flipped ? 1 : 0).
struct FiredPair {
  TuplePair pair;
  uint32_t priority = 0;
};

/// One sweep over an (R, S) pair space for a set of rule orientations.
/// Add every (rule, orientation) via AddRule in evaluation-priority
/// order, then Run once. Not reusable.
class CandidateGenerator {
 public:
  /// The relations and index caches must outlive the generator; the
  /// caches are consulted (and lazily extended) serially in AddRule.
  /// `seeds`, when non-null (and outliving the generator), supplies
  /// per-column fingerprint arrays — e.g. from a loaded snapshot — and
  /// EnsureAmqColumn inserts those instead of scanning the relation.
  /// `world`, when non-null (and outliving the generator), is the
  /// session's columnar world with `r_ext`/`s_ext` under the
  /// kRExtended/kSExtended slots: AMQ seeding and join-probe hashes are
  /// then gathered from the shared id columns (dedup by id, hashes from
  /// the dictionary's cache) instead of re-hashing Values row by row.
  /// The world is mutated (lazy column encodes) only during serial
  /// AddRule registration. `block_eval` drains residual candidates in
  /// kPairBlockLanes-sized PairTruthBlock batches; off calls the scalar
  /// PairTruth per pair (the differential oracle for the block path —
  /// fired pairs, evidence and the engine-invariant counters are
  /// identical either way).
  CandidateGenerator(const Relation* r_ext, const Relation* s_ext,
                     ColumnIndexCache* r_index, ColumnIndexCache* s_index,
                     const AmqSeeds* seeds = nullptr,
                     AmqOptions amq_options = {},
                     ColumnarWorld* world = nullptr, bool block_eval = true);

  /// Registers the next (rule, orientation). `plan` must be the
  /// PlanBlocking result for the same predicates/orientation and
  /// `residual` (maybe null only for impossible plans) must outlive
  /// Run. Every call consumes one priority slot — dead rules included —
  /// so callers can always recover (rule, orientation) from a priority.
  void AddRule(const BlockingPlan& plan, const StagedEvaluator* residual);

  /// Sweeps all registered rules. Returns fired pairs row-major sorted
  /// with min-priority evidence; identical for any pool size.
  std::vector<FiredPair> Run(ThreadPool* pool, StagedScanStats* stats);

  /// Total distinct (column, value) fingerprints inserted into the two
  /// AMQ pre-filters (diagnostics).
  size_t amq_size() const;

 private:
  struct Entry {
    uint32_t priority = 0;
    const StagedEvaluator* residual = nullptr;
    // Join probe (stage 1+2), when the plan has a cross-entity equality.
    bool has_join = false;
    size_t r_col = 0;                     // r-side join column
    size_t s_col = 0;                     // s-side join column (schema pos)
    const ColumnIndex* s_join = nullptr;  // bucket index over s_col
    // Cached r-column value hashes (owned by r_col_hashes_, whose mapped
    // vectors are pointer-stable under rehash).
    const std::vector<uint64_t>* r_hashes = nullptr;
    // Scan fallback: the s rows this entry pairs against — every s row
    // (s_all) or the const-filtered list below. Resolved to a pointer in
    // Run, after entries_ stops reallocating.
    bool s_all = false;
    std::vector<size_t> s_rows_storage;
  };

  /// Lazily inserts every non-NULL (column, value) of the given side's
  /// column into that side's AMQ filter.
  void EnsureAmqColumn(bool r_side, size_t column);
  /// Lazily caches the 64-bit value hashes of an r column (join-probe
  /// fingerprints are computed from these, not by re-hashing Values).
  const std::vector<uint64_t>& RColumnHashes(size_t column);

  // Everything below is written only during serial AddRule registration
  // and then EID_SHARED_IMMUTABLE for the parallel sweep in Run: workers
  // read entries_/per_row_/global_/the filters const-only and write
  // exclusively to their own chunk's output buffer (EID_PER_WORKER).
  const Relation* r_;
  const Relation* s_;
  ColumnIndexCache* r_index_;
  ColumnIndexCache* s_index_;
  const AmqSeeds* seeds_;
  ColumnarWorld* world_;
  bool block_eval_;

  EID_SHARED_IMMUTABLE AmqFilter r_amq_;
  EID_SHARED_IMMUTABLE AmqFilter s_amq_;
  std::vector<bool> r_amq_cols_;  // column -> already inserted
  std::vector<bool> s_amq_cols_;
  std::unordered_map<size_t, std::vector<uint64_t>> r_col_hashes_;

  uint32_t next_priority_ = 0;
  EID_SHARED_IMMUTABLE std::vector<Entry> entries_;
  // Entries whose r rows are pruned by const filters, inverted to
  // per-row lists (ascending priority); entries consulted for every row
  // stay in `global_` (ascending priority).
  EID_SHARED_IMMUTABLE std::vector<std::vector<uint32_t>> per_row_;
  EID_SHARED_IMMUTABLE std::vector<uint32_t> global_;
  std::vector<size_t> all_s_rows_;  // shared iota scan list
  size_t amq_rejects_ = 0;          // rejects during AddRule (serial)
  bool ran_ = false;
};

}  // namespace exec
}  // namespace eid

#endif  // EID_EXEC_CANDIDATE_GENERATOR_H_
