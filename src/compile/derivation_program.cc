#include "compile/derivation_program.h"

#include <algorithm>
#include <set>

namespace eid {
namespace compile {

DerivationProgram DerivationProgram::Compile(const Schema& schema,
                                             const IlfdSet& ilfds,
                                             const DerivationOptions& options) {
  return CompileImpl(schema, ilfds, options, /*borrow_kb=*/false);
}

DerivationProgram DerivationProgram::CompileBorrowed(
    const Schema& schema, const IlfdSet& ilfds,
    const DerivationOptions& options) {
  return CompileImpl(schema, ilfds, options, /*borrow_kb=*/true);
}

DerivationProgram DerivationProgram::CompileImpl(
    const Schema& schema, const IlfdSet& ilfds,
    const DerivationOptions& options, bool borrow_kb) {
  DerivationProgram p;
  p.schema_ = schema;
  p.mode_ = options.mode;
  p.conflict_policy_ = options.conflict_policy;

  if (options.mode == DerivationMode::kExhaustive) {
    const AtomTable& atoms = ilfds.atoms();
    if (borrow_kb) {
      // Borrow everything the AtomTable already maintains: the knowledge
      // base, the per-atom values and the per-attribute seed maps. This
      // drops the dominant lowering cost (hashing thousands of atom
      // values per call) for the batch engine, which re-lowers per sweep.
      p.kb_view_ = &ilfds.kb();
      p.atoms_view_ = &atoms;
    } else {
      p.kb_ = ilfds.kb();
      p.value_of_atom_.reserve(atoms.size());
      for (size_t id = 0; id < atoms.size(); ++id) {
        p.value_of_atom_.push_back(atoms.atom(static_cast<AtomId>(id)).value);
      }
    }
    p.slot_of_atom_.assign(atoms.size(), kNoSlot);
    // Seed columns in ascending schema order — the interpreter's seed
    // scan order.
    for (size_t c = 0; c < schema.size(); ++c) {
      const AtomTable::AttributeAtoms* attr =
          atoms.AttributeIndex(schema.attribute(c).name);
      if (attr == nullptr || attr->ids.empty()) continue;
      SeedColumn sc;
      sc.column = c;
      if (borrow_kb) {
        sc.atoms = &attr->by_value;
      } else {
        sc.owned = std::make_shared<
            std::unordered_map<Value, AtomId, ValueHash>>(attr->by_value);
        sc.atoms = sc.owned.get();
      }
      p.seed_columns_.push_back(std::move(sc));
      // Every attribute the exhaustive run can read is interned (the
      // consequent atoms are, too), so the seed columns are exactly the
      // memo key projection.
      p.memo_columns_.push_back(c);
    }
    // One slot per clause-head attribute, first-appearance order.
    std::unordered_map<std::string, uint32_t> slot_of_attr;
    for (const Implication& clause : p.kb().clauses()) {
      for (AtomId h : clause.head.ids()) {
        const Atom& atom = atoms.atom(h);
        auto [it, inserted] = slot_of_attr.emplace(
            atom.attribute, static_cast<uint32_t>(p.cons_slots_.size()));
        if (inserted) {
          ConsSlot slot;
          slot.attribute = atom.attribute;
          slot.column = schema.IndexOf(atom.attribute);
          slot.wanted =
              options.target_attributes.empty() ||
              std::find(options.target_attributes.begin(),
                        options.target_attributes.end(),
                        atom.attribute) != options.target_attributes.end();
          p.cons_slots_.push_back(std::move(slot));
        }
        p.slot_of_atom_[h] = it->second;
      }
    }
    return p;
  }

  // kFirstMatch. The attribute universe is every antecedent, consequent
  // and target attribute; slots are assigned on first appearance.
  std::unordered_map<std::string, uint32_t> slot_index;
  auto intern_attr = [&](const std::string& name) {
    auto [it, inserted] =
        slot_index.emplace(name, static_cast<uint32_t>(p.fm_attrs_.size()));
    if (inserted) {
      FmAttr attr;
      attr.name = name;
      attr.column = p.schema_.IndexOf(name);
      p.fm_attrs_.push_back(std::move(attr));
    }
    return it->second;
  };
  p.fm_rules_.reserve(ilfds.size());
  for (size_t fi = 0; fi < ilfds.size(); ++fi) {
    const Ilfd& f = ilfds.ilfd(fi);
    FmRule rule;
    rule.antecedent.reserve(f.antecedent().size());
    for (const Atom& a : f.antecedent()) {
      rule.antecedent.push_back(FmCond{intern_attr(a.attribute), a.value});
    }
    rule.consequent.reserve(f.consequent().size());
    for (const Atom& c : f.consequent()) {
      rule.consequent.push_back(FmCond{intern_attr(c.attribute), c.value});
    }
    p.fm_rules_.push_back(std::move(rule));
  }
  // Per-attribute rule lists in declaration order; the head value is the
  // first consequent atom for the attribute (the interpreter's scan).
  for (size_t fi = 0; fi < p.fm_rules_.size(); ++fi) {
    const std::vector<FmCond>& consequent = p.fm_rules_[fi].consequent;
    for (size_t i = 0; i < consequent.size(); ++i) {
      bool first = true;
      for (size_t j = 0; j < i; ++j) {
        if (consequent[j].slot == consequent[i].slot) {
          first = false;
          break;
        }
      }
      if (!first) continue;
      p.fm_attrs_[consequent[i].slot].rules.push_back(
          FmAttrRule{static_cast<uint32_t>(fi), consequent[i].value});
    }
  }
  std::vector<std::string> targets = options.target_attributes;
  if (targets.empty()) {
    std::set<std::string> all;
    for (const Ilfd& f : ilfds.ilfds()) {
      for (const std::string& a : f.ConsequentAttributes()) all.insert(a);
    }
    targets.assign(all.begin(), all.end());
  }
  p.fm_targets_.reserve(targets.size());
  for (const std::string& t : targets) p.fm_targets_.push_back(intern_attr(t));
  for (const FmAttr& attr : p.fm_attrs_) {
    if (attr.column.has_value()) p.memo_columns_.push_back(*attr.column);
  }
  std::sort(p.memo_columns_.begin(), p.memo_columns_.end());
  return p;
}

Result<Derivation> DerivationProgram::Derive(
    const Row& row, ClosureEvaluator* evaluator, DerivationMemo* memo,
    std::vector<DerivationWrite>* writes) const {
  EID_CHECK(row.size() == schema_.size());
  writes->clear();
  if (memo == nullptr || memo->abandoned_) {
    return RunUncached(row, evaluator, writes);
  }
  EID_CHECK(memo->key_space_ != DerivationMemo::KeySpace::kColumnar);
  memo->key_space_ = DerivationMemo::KeySpace::kRow;
  std::vector<uint32_t>& key = memo->key_scratch_;
  key.clear();
  for (size_t c : memo_columns_) {
    key.push_back(memo->interner_.GetOrIntern(row[c]));
  }
  auto it = memo->entries_.find(key);
  if (it != memo->entries_.end()) {
    ++memo->hits_;
    *writes = it->second.writes;
    return it->second.trace;
  }
  Result<Derivation> derived = RunUncached(row, evaluator, writes);
  // Errors are not cached: the kError message cites the whole tuple,
  // which the key projection does not cover.
  if (!derived.ok()) return derived;
  ++memo->misses_;
  const bool hopeless =
      memo->misses_ >= DerivationMemo::kEarlyAbandonMissLimit &&
      memo->hits_ == 0;
  if (hopeless || (memo->misses_ >= DerivationMemo::kAbandonMissLimit &&
                   memo->hits_ < memo->misses_ / 8)) {
    memo->abandoned_ = true;
    memo->entries_ = {};  // free, not just clear
    return derived;
  }
  memo->entries_.emplace(key, DerivationMemo::Entry{*derived, *writes});
  return derived;
}

ColumnarBinding DerivationProgram::BindColumns(exec::ColumnarWorld* world,
                                               exec::WorldRel slot,
                                               const Relation& rel) const {
  ColumnarBinding binding;
  binding.rows = rel.rows().size();
  const size_t arity = rel.schema().size();
  binding.memo_ids.reserve(memo_columns_.size());
  for (size_t c : memo_columns_) {
    binding.memo_ids.push_back(
        c < arity ? world->Column(slot, rel, c).data() : nullptr);
  }
  if (mode_ != DerivationMode::kExhaustive) return binding;
  binding.seed_ids.reserve(seed_columns_.size());
  binding.atom_of_id.resize(seed_columns_.size());
  // Encode every seed column first: the dictionary stops growing for this
  // binding once the atom tables are sized below.
  for (const SeedColumn& sc : seed_columns_) {
    binding.seed_ids.push_back(
        sc.column < arity ? world->Column(slot, rel, sc.column).data()
                          : nullptr);
  }
  // A "not looked up yet" marker distinct from kNoAtom: table cells left
  // at it belong to ids that never occur in this column, which the sweep
  // never reads (it only indexes by the column's own ids).
  constexpr AtomId kUnprobed = ColumnarBinding::kNoAtom - 1;
  const exec::ValueDictionary& dict = world->dict();
  for (size_t i = 0; i < seed_columns_.size(); ++i) {
    const uint32_t* ids = binding.seed_ids[i];
    if (ids == nullptr) continue;
    std::vector<AtomId>& table = binding.atom_of_id[i];
    table.assign(dict.size(), kUnprobed);
    // Probe the atoms map once per distinct id occurring in the column —
    // atom pools are a superset of a column's values, so walking the map
    // and re-hashing every atom (the old direction) does strictly more
    // Value hashing than the column has distinct cells.
    const auto& atoms = *seed_columns_[i].atoms;
    for (size_t r = 0; r < binding.rows; ++r) {
      const uint32_t id = ids[r];
      if (id == exec::ColumnarWorld::kNullId || table[id] != kUnprobed) {
        continue;
      }
      auto it = atoms.find(dict.value(id));
      table[id] = it == atoms.end() ? ColumnarBinding::kNoAtom : it->second;
    }
  }
  return binding;
}

Result<Derivation> DerivationProgram::Derive(
    const Row& row, size_t row_index, const ColumnarBinding& binding,
    ClosureEvaluator* evaluator, DerivationMemo* memo,
    std::vector<DerivationWrite>* writes) const {
  EID_CHECK(row.size() == schema_.size());
  writes->clear();
  if (memo == nullptr || memo->abandoned_) {
    return RunUncachedColumnar(row, row_index, binding, evaluator, writes);
  }
  EID_CHECK(memo->key_space_ != DerivationMemo::KeySpace::kRow);
  memo->key_space_ = DerivationMemo::KeySpace::kColumnar;
  // Same key partition as the row path — kNullId stands in for the
  // interned NULL, and equal values share a dictionary id — so hit/miss
  // sequences (and therefore results) are identical.
  std::vector<uint32_t>& key = memo->key_scratch_;
  key.clear();
  for (size_t i = 0; i < memo_columns_.size(); ++i) {
    const uint32_t* ids = binding.memo_ids[i];
    key.push_back(ids != nullptr ? ids[row_index]
                                 : exec::ColumnarWorld::kNullId);
  }
  auto it = memo->entries_.find(key);
  if (it != memo->entries_.end()) {
    ++memo->hits_;
    *writes = it->second.writes;
    return it->second.trace;
  }
  Result<Derivation> derived =
      RunUncachedColumnar(row, row_index, binding, evaluator, writes);
  if (!derived.ok()) return derived;
  ++memo->misses_;
  const bool hopeless =
      memo->misses_ >= DerivationMemo::kEarlyAbandonMissLimit &&
      memo->hits_ == 0;
  if (hopeless || (memo->misses_ >= DerivationMemo::kAbandonMissLimit &&
                   memo->hits_ < memo->misses_ / 8)) {
    memo->abandoned_ = true;
    memo->entries_ = {};  // free, not just clear
    return derived;
  }
  memo->entries_.emplace(key, DerivationMemo::Entry{*derived, *writes});
  return derived;
}

Result<Derivation> DerivationProgram::RunUncachedColumnar(
    const Row& row, size_t row_index, const ColumnarBinding& binding,
    ClosureEvaluator* evaluator, std::vector<DerivationWrite>* writes) const {
  if (mode_ != DerivationMode::kExhaustive) {
    return RunUncached(row, evaluator, writes);
  }
  // The columnar seed: two array loads per seed column instead of a
  // Value hash probe. Gathered into a stack buffer, then normalised to
  // AtomSet's sorted-unique invariant so the closure queue seeds in
  // exactly the order the row path's AtomSet would.
  constexpr size_t kInlineSeed = 32;
  AtomId inline_seed[kInlineSeed];
  std::vector<AtomId> heap_seed;
  AtomId* seed = inline_seed;
  if (seed_columns_.size() > kInlineSeed) {
    heap_seed.resize(seed_columns_.size());
    seed = heap_seed.data();
  }
  size_t count = 0;
  for (size_t i = 0; i < seed_columns_.size(); ++i) {
    const uint32_t* ids = binding.seed_ids[i];
    if (ids == nullptr) continue;
    const uint32_t id = ids[row_index];
    if (id == exec::ColumnarWorld::kNullId) continue;
    const AtomId atom = binding.atom_of_id[i][id];
    if (atom != ColumnarBinding::kNoAtom) seed[count++] = atom;
  }
  std::sort(seed, seed + count);
  count = static_cast<size_t>(std::unique(seed, seed + count) - seed);
  if (evaluator != nullptr) {
    return ApplyDerived(row, evaluator->RunDerived(seed, count), writes);
  }
  return RunExhaustiveSeeded(
      row, AtomSet(std::vector<AtomId>(seed, seed + count)), evaluator,
      writes);
}

Result<Derivation> DerivationProgram::RunUncached(
    const Row& row, ClosureEvaluator* evaluator,
    std::vector<DerivationWrite>* writes) const {
  switch (mode_) {
    case DerivationMode::kExhaustive:
      return RunExhaustive(row, evaluator, writes);
    case DerivationMode::kFirstMatch:
      return RunFirstMatch(row, writes);
  }
  return Status::Internal("unknown derivation mode");
}

Result<Derivation> DerivationProgram::RunExhaustive(
    const Row& row, ClosureEvaluator* evaluator,
    std::vector<DerivationWrite>* writes) const {
  std::vector<AtomId> seed;
  seed.reserve(seed_columns_.size());
  for (const SeedColumn& sc : seed_columns_) {
    const Value& v = row[sc.column];
    if (v.is_null()) continue;
    auto it = sc.atoms->find(v);
    if (it != sc.atoms->end()) seed.push_back(it->second);
  }
  return RunExhaustiveSeeded(row, AtomSet(std::move(seed)), evaluator, writes);
}

Result<Derivation> DerivationProgram::RunExhaustiveSeeded(
    const Row& row, AtomSet seed_set, ClosureEvaluator* evaluator,
    std::vector<DerivationWrite>* writes) const {
  if (evaluator != nullptr) {
    // Lean closure: the evaluator hands back exactly the events
    // ApplyDerived consumes, skipping the AtomSet/provenance-map/
    // firing-order materialisation of ForwardClosure — the per-tuple
    // allocations that dominated the sweep.
    return ApplyDerived(row, evaluator->RunDerived(seed_set.ids()), writes);
  }
  ClosureResult closure = kb().ForwardClosure(seed_set);
  std::vector<DerivedAtom> events;
  for (size_t clause_index : closure.firing_order) {
    const Implication& clause = kb().clause(clause_index);
    for (AtomId h : clause.head.ids()) {
      auto prov = closure.provenance.find(h);
      if (prov == closure.provenance.end() || prov->second != clause_index) {
        continue;  // atom was in the seed or derived by an earlier clause
      }
      events.push_back(DerivedAtom{clause_index, h});
    }
  }
  return ApplyDerived(row, events, writes);
}

Result<Derivation> DerivationProgram::ApplyDerived(
    const Row& row, const std::vector<DerivedAtom>& events,
    std::vector<DerivationWrite>* writes) const {
  Derivation out;

  // Dense mirror of the interpreter's bound/conflicted maps: a slot is
  // bound while `value` is non-null. Slot counts are small (one per
  // consequent attribute), so the per-row state lives on the stack.
  struct SlotState {
    const Value* value = nullptr;
    size_t source = kDerivationBaseProvenance;
    bool conflicted = false;
  };
  constexpr size_t kInlineSlots = 32;
  SlotState inline_state[kInlineSlots];
  std::vector<SlotState> heap_state;
  SlotState* state = inline_state;
  if (cons_slots_.size() > kInlineSlots) {
    heap_state.resize(cons_slots_.size());
    state = heap_state.data();
  } else {
    for (size_t i = 0; i < cons_slots_.size(); ++i) state[i] = SlotState{};
  }

  // Events arrive in the interpreter's order: clauses in firing order,
  // newly derived head atoms in id order within a clause.
  for (const DerivedAtom& e : events) {
    const AtomId h = e.atom;
    const uint32_t slot = slot_of_atom_[h];
    const ConsSlot& cs = cons_slots_[slot];
    const Value& atom_value = AtomValue(h);
    const size_t fi = e.clause;  // clause index == ILFD index

    const Value* first_value = nullptr;
    size_t first_source = kDerivationBaseProvenance;
    if (cs.column.has_value() && !row[*cs.column].is_null()) {
      first_value = &row[*cs.column];
    } else if (state[slot].value != nullptr) {
      first_value = state[slot].value;
      first_source = state[slot].source;
    }
    if (first_value == nullptr) {
      if (state[slot].conflicted) continue;
      state[slot].value = &atom_value;
      state[slot].source = fi;
      out.steps.push_back(DerivationStep{cs.attribute, atom_value, fi});
      continue;
    }
    if (*first_value == atom_value) continue;
    DerivationConflict conflict{cs.attribute, *first_value, atom_value,
                                first_source, fi};
    if (conflict_policy_ == ConflictPolicy::kError) {
      return DerivationConflictError(conflict,
                                     TupleView(&schema_, &row).ToString());
    }
    out.conflicts.push_back(conflict);
    if (conflict_policy_ == ConflictPolicy::kNullOut &&
        first_source != kDerivationBaseProvenance) {
      state[slot].value = nullptr;
      state[slot].conflicted = true;
    }
    // kKeepFirst (and conflicts against base values): first value stands.
  }

  for (size_t slot = 0; slot < cons_slots_.size(); ++slot) {
    if (state[slot].value == nullptr || !cons_slots_[slot].wanted) continue;
    const ConsSlot& cs = cons_slots_[slot];
    out.derived[cs.attribute] = *state[slot].value;
    if (cs.column.has_value()) {
      writes->push_back(DerivationWrite{*cs.column, *state[slot].value});
    }
  }
  return out;
}

struct DerivationProgram::FmState {
  std::vector<Value> memo;
  std::vector<uint8_t> memo_set;
  std::vector<uint8_t> in_progress;
};

Value DerivationProgram::ResolveFirstMatch(uint32_t slot, const Row& row,
                                           FmState* state,
                                           Derivation* out) const {
  const FmAttr& attr = fm_attrs_[slot];
  if (attr.column.has_value()) {
    const Value& base = row[*attr.column];
    if (!base.is_null()) return base;
  }
  if (state->memo_set[slot] != 0) return state->memo[slot];
  if (state->in_progress[slot] != 0) {
    return Value::Null();  // cycle: fail the subgoal, as the interpreter does
  }
  state->in_progress[slot] = 1;
  Value result = Value::Null();
  for (const FmAttrRule& candidate : attr.rules) {
    if (!result.is_null()) break;
    const FmRule& rule = fm_rules_[candidate.rule];
    bool holds = true;
    for (const FmCond& a : rule.antecedent) {
      if (!NonNullEq(ResolveFirstMatch(a.slot, row, state, out), a.value)) {
        holds = false;
        break;
      }
    }
    if (!holds) continue;
    // Cut: commit this rule's conclusions.
    result = candidate.head_value;
    out->steps.push_back(
        DerivationStep{attr.name, candidate.head_value, candidate.rule});
    for (const FmCond& c : rule.consequent) {
      if (c.slot == slot) continue;
      const FmAttr& cattr = fm_attrs_[c.slot];
      if (cattr.column.has_value() && !row[*cattr.column].is_null()) continue;
      if (state->memo_set[c.slot] != 0 && !state->memo[c.slot].is_null()) {
        continue;
      }
      state->memo[c.slot] = c.value;
      state->memo_set[c.slot] = 1;
      out->steps.push_back(DerivationStep{cattr.name, c.value,
                                          candidate.rule});
    }
  }
  state->memo[slot] = result;
  state->memo_set[slot] = 1;
  state->in_progress[slot] = 0;
  return result;
}

Result<Derivation> DerivationProgram::RunFirstMatch(
    const Row& row, std::vector<DerivationWrite>* writes) const {
  Derivation out;
  FmState state;
  state.memo.resize(fm_attrs_.size());
  state.memo_set.assign(fm_attrs_.size(), 0);
  state.in_progress.assign(fm_attrs_.size(), 0);
  for (uint32_t t : fm_targets_) {
    const FmAttr& attr = fm_attrs_[t];
    if (attr.column.has_value() && !row[*attr.column].is_null()) {
      continue;  // base value stands
    }
    Value v = ResolveFirstMatch(t, row, &state, &out);
    if (v.is_null()) continue;
    out.derived[attr.name] = v;
    if (attr.column.has_value()) {
      writes->push_back(DerivationWrite{*attr.column, v});
    }
  }
  return out;
}

}  // namespace compile
}  // namespace eid
