// Compiled pairwise rule antecedents.
//
// Identity and distinctness rules are conjunctions of predicates over an
// entity pair (rules/predicate.h). The interpreter resolves each operand's
// attribute name through Schema::IndexOf on every evaluation; a
// CompiledConjunction binds every operand once per (rule, orientation) to
// one of {r-side column, s-side column, constant, absent}, so evaluating a
// candidate pair is a flat pass over the two rows with no map lookups.
//
// Binding is total: an attribute absent from its bound schema becomes an
// operand that resolves to NULL — exactly TupleView::GetOrNull — so
// compilation cannot fail anywhere eid-lint passes (it only warns/errors;
// it never changes evaluation semantics). The compiled truth value equals
// the interpreter's for every pair (tests/compile/ enforces this).

#ifndef EID_COMPILE_PAIR_PROGRAM_H_
#define EID_COMPILE_PAIR_PROGRAM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/thread_annotations.h"
#include "compile/interner.h"
#include "eid/match_tables.h"
#include "exec/candidate_generator.h"
#include "exec/pair_evaluator.h"
#include "exec/thread_pool.h"
#include "relational/schema.h"
#include "rules/predicate.h"

namespace eid {
namespace compile {

/// One rule antecedent compiled for one orientation. Self-contained (owns
/// its opcode list and constants). EID_SHARED_IMMUTABLE: compiled
/// serially, then Evaluate (const) runs from every worker of the sweep.
class EID_SHARED_IMMUTABLE CompiledConjunction final
    : public exec::PairEvaluator {
 public:
  /// Binds `predicates` against the two extended schemas. Entity 1 reads
  /// the r-side row and entity 2 the s-side row, unless `flipped` — the
  /// same orientation convention as exec::PlanBlocking and
  /// CollectTruePairs.
  static CompiledConjunction Compile(const std::vector<Predicate>& predicates,
                                     const Schema& r_schema,
                                     const Schema& s_schema, bool flipped);

  /// Kleene conjunction over the pair; bit-identical to
  /// EvaluateConjunction(predicates, e1, e2) with the bound orientation.
  Truth Evaluate(const Row& r_row, const Row& s_row) const override;

  size_t size() const { return ops_.size(); }

 private:
  enum class Src : uint8_t {
    kRColumn,   // read r_row[column]
    kSColumn,   // read s_row[column]
    kConstant,  // read the stored constant
    kAbsent,    // attribute not in its schema: always NULL
  };
  struct Slot {
    Src src = Src::kAbsent;
    size_t column = 0;
    Value constant;
  };
  struct Op {
    Slot lhs;
    CompareOp op = CompareOp::kEq;
    Slot rhs;
  };

  std::vector<Op> ops_;
};

/// Per-tuple rule-feature projections shared across one engine stage: the
/// columns rule conjuncts touch, re-encoded once as dense interned-id
/// vectors (one shared ValueInterner for both relations, so id equality
/// is storage equality across sides). NULL cells become kNullId and are
/// never interned — non_null_eq semantics stay explicit at the id layer.
///
/// Build is serial and lazy (first rule touching a column pays for it);
/// reads after build are const and safe from every worker. The point: a
/// sweep over millions of candidate pairs re-projects no tuple and hashes
/// no Value — equality is one uint32_t compare against a cached slice.
///
/// EID_SHARED_IMMUTABLE: the non-const members (RColumn/SColumn/
/// InternConstant) run only during serial rule registration, before the
/// parallel sweep starts; during the sweep every worker reads the cached
/// slices through const pointers captured at compile time.
class EID_SHARED_IMMUTABLE PairFeatureCache {
 public:
  static constexpr uint32_t kNullId = ValueInterner::kNotInterned;

  /// Private-encoding form: owns its interner and column slices.
  PairFeatureCache(const Relation* r_ext, const Relation* s_ext)
      : r_(r_ext), s_(s_ext) {}

  /// World-backed form (DESIGN.md §4g): column slices and constant ids
  /// come from the session's columnar world under the given slots, so a
  /// column the extension or the join already encoded is served as a
  /// reuse hit instead of being rebuilt. `world` must outlive the cache
  /// and is mutated (lazy encodes) only during serial rule registration.
  PairFeatureCache(const Relation* r_ext, const Relation* s_ext,
                   exec::ColumnarWorld* world, exec::WorldRel r_slot,
                   exec::WorldRel s_slot)
      : r_(r_ext), s_(s_ext), world_(world), r_slot_(r_slot),
        s_slot_(s_slot) {}

  /// Interned-id projection of one column (index per that relation's
  /// schema); built on first request.
  const std::vector<uint32_t>& RColumn(size_t column);
  const std::vector<uint32_t>& SColumn(size_t column);

  /// Contiguous views of the same projections — the block evaluator's
  /// gather sources for either orientation. Stable for the session
  /// (world-backed and private slices both keep data() valid).
  exec::IdColumnView RColumnView(size_t column) {
    const std::vector<uint32_t>& ids = RColumn(column);
    return exec::IdColumnView{ids.data(), ids.size()};
  }
  exec::IdColumnView SColumnView(size_t column) {
    const std::vector<uint32_t>& ids = SColumn(column);
    return exec::IdColumnView{ids.data(), ids.size()};
  }

  /// Id of a rule constant under the same interner; kNullId for NULL.
  uint32_t InternConstant(const Value& v);

  /// Whether the column's id slice contains the NULL sentinel. Scanned
  /// once per column and memoized; StagedConjunction::Compile asks so
  /// the block evaluator can strip NULL handling from provably
  /// non-NULL ops.
  bool RColumnMayNull(size_t column);
  bool SColumnMayNull(size_t column);

  /// Distinct non-NULL values interned privately so far (stats); zero on
  /// the world-backed form, whose encode/reuse totals live on the world.
  size_t distinct_values() const { return interner_.size(); }

 private:
  std::vector<uint32_t> BuildColumn(const Relation& rel, size_t column);

  const Relation* r_;
  const Relation* s_;
  exec::ColumnarWorld* world_ = nullptr;
  exec::WorldRel r_slot_ = exec::WorldRel::kRExtended;
  exec::WorldRel s_slot_ = exec::WorldRel::kSExtended;
  ValueInterner interner_;
  std::unordered_map<size_t, std::vector<uint32_t>> r_columns_;
  std::unordered_map<size_t, std::vector<uint32_t>> s_columns_;
  std::unordered_map<size_t, bool> r_may_null_;
  std::unordered_map<size_t, bool> s_may_null_;
};

/// One rule antecedent compiled for the staged candidate generator: the
/// covered conjuncts are dropped (the enumeration enforces them), the
/// rest split into a row part (every operand binds the r side — hoisted
/// out of the pair loop by the generator) and a pair part. kEq/kNe
/// conjuncts run on cached interned-id slices (exact: id equality is
/// storage equality, which is precisely CompareValues-kEq/kNe on
/// non-NULL operands; either side NULL yields kUnknown); ordering
/// conjuncts fall back to CompareValues on the raw rows, which compares
/// numerics cross-type.
/// EID_SHARED_IMMUTABLE: compiled serially (AddRule time), evaluated
/// const from every worker of the staged sweep.
class EID_SHARED_IMMUTABLE StagedConjunction final
    : public exec::StagedEvaluator {
 public:
  static StagedConjunction Compile(
      const std::vector<Predicate>& predicates,
      const std::vector<exec::PredicateCoverage>& coverage,
      const Relation& r_ext, const Relation& s_ext, bool flipped,
      PairFeatureCache* features);

  bool has_row_part() const override { return !row_ops_.empty(); }
  Truth RowTruth(size_t r_row) const override;
  /// Vectorized row pass: evaluates the flat row opcodes op-major over
  /// the cached id slices (value-fallback ops per row), skipping rows
  /// already decided kFalse. out[r] == RowTruth(r) for every r.
  std::vector<Truth> RowTruthAll(size_t n) const override;
  Truth PairTruth(size_t r_row, size_t s_row) const override;
  /// Vectorized pair pass over one candidate block (ISSUE 10 /
  /// DESIGN.md §4h): id_fast ops run op-major — gather the two id lanes
  /// for the whole block, fold a branch-free Kleene mask into the
  /// per-lane accumulator, stop once no lane can still be kTrue — and
  /// value-fallback ops run scalar on the lanes still alive after the
  /// id pass. out[i] == PairTruth(r_rows[i], s_rows[i]) on every lane.
  void PairTruthBlock(const size_t* r_rows, const size_t* s_rows,
                      size_t lanes, Truth* out,
                      exec::PairBlockStats* stats) const override;

 private:
  enum class Src : uint8_t { kRColumn, kSColumn, kConstant, kAbsent };
  struct Slot {
    Src src = Src::kAbsent;
    size_t column = 0;
    Value constant;
    // Interned fast path: the column's id slice (kRColumn/kSColumn) or
    // the constant's id; unused for value-fallback ops. `view` is the
    // contiguous form of `ids` (the block evaluator's gather source).
    const std::vector<uint32_t>* ids = nullptr;
    exec::IdColumnView view;
    uint32_t const_id = PairFeatureCache::kNullId;
  };
  struct Op {
    Slot lhs;
    CompareOp op = CompareOp::kEq;
    Slot rhs;
    bool id_fast = false;  // kEq/kNe over interned ids
    // Whether any operand can be the NULL sentinel (kAbsent slot, NULL
    // constant, or a column slice holding a NULL id — checked against
    // the feature cache at Compile). When false the block evaluator
    // runs this op's lanes with the kUnknown plumbing stripped out.
    bool may_null = true;
  };

  Truth EvaluateOps(const std::vector<Op>& ops, size_t r_row,
                    size_t s_row) const;

  std::vector<Op> row_ops_;
  std::vector<Op> pair_ops_;
  const Relation* r_ = nullptr;
  const Relation* s_ = nullptr;
};

/// Counters of one InternedKeyJoin call.
struct KeyJoinStats {
  size_t interner_values = 0;  // distinct values privately encoded
  size_t probe_batches = 0;    // vectorized probe blocks executed
  size_t reuse_hits = 0;       // ids served from the world, not encoded
  double encode_ms = 0.0;      // world-path column encode time
};

/// Hash-joins two extended relations on parallel key-column lists using
/// columnar interned ids. With a non-null `world`, the key columns are
/// the session's shared id slices (encoded at most once across extension
/// / join / rule stages); otherwise a private per-call cache encodes
/// them. Probes run in batches over the contiguous id columns: a first
/// pass packs keys and accumulates the branch-free NULL mask
/// (`valid &= id != kNullId`), a second pass probes only the valid lanes.
/// Build keys of width <= 2 pack into one uint64_t so a probe is a
/// single integer-hash lookup; wider keys combine per-column id hashes
/// columnar (FNV over the id lanes) and verify candidates id-exactly.
/// Returns pairs in the serial probe's row-major order for any pool
/// size. Pair semantics are identical to the fingerprint join: rows
/// agree non-NULL on every key column.
std::vector<TuplePair> InternedKeyJoin(const Relation& r_ext,
                                       const Relation& s_ext,
                                       const std::vector<size_t>& r_idx,
                                       const std::vector<size_t>& s_idx,
                                       exec::ThreadPool* pool,
                                       exec::ColumnarWorld* world,
                                       KeyJoinStats* stats);

}  // namespace compile
}  // namespace eid

#endif  // EID_COMPILE_PAIR_PROGRAM_H_
