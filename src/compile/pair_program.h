// Compiled pairwise rule antecedents.
//
// Identity and distinctness rules are conjunctions of predicates over an
// entity pair (rules/predicate.h). The interpreter resolves each operand's
// attribute name through Schema::IndexOf on every evaluation; a
// CompiledConjunction binds every operand once per (rule, orientation) to
// one of {r-side column, s-side column, constant, absent}, so evaluating a
// candidate pair is a flat pass over the two rows with no map lookups.
//
// Binding is total: an attribute absent from its bound schema becomes an
// operand that resolves to NULL — exactly TupleView::GetOrNull — so
// compilation cannot fail anywhere eid-lint passes (it only warns/errors;
// it never changes evaluation semantics). The compiled truth value equals
// the interpreter's for every pair (tests/compile/ enforces this).

#ifndef EID_COMPILE_PAIR_PROGRAM_H_
#define EID_COMPILE_PAIR_PROGRAM_H_

#include <vector>

#include "exec/pair_evaluator.h"
#include "relational/schema.h"
#include "rules/predicate.h"

namespace eid {
namespace compile {

/// One rule antecedent compiled for one orientation. Self-contained (owns
/// its opcode list and constants): safe to move and to share, read-only,
/// across threads.
class CompiledConjunction final : public exec::PairEvaluator {
 public:
  /// Binds `predicates` against the two extended schemas. Entity 1 reads
  /// the r-side row and entity 2 the s-side row, unless `flipped` — the
  /// same orientation convention as exec::PlanBlocking and
  /// CollectTruePairs.
  static CompiledConjunction Compile(const std::vector<Predicate>& predicates,
                                     const Schema& r_schema,
                                     const Schema& s_schema, bool flipped);

  /// Kleene conjunction over the pair; bit-identical to
  /// EvaluateConjunction(predicates, e1, e2) with the bound orientation.
  Truth Evaluate(const Row& r_row, const Row& s_row) const override;

  size_t size() const { return ops_.size(); }

 private:
  enum class Src : uint8_t {
    kRColumn,   // read r_row[column]
    kSColumn,   // read s_row[column]
    kConstant,  // read the stored constant
    kAbsent,    // attribute not in its schema: always NULL
  };
  struct Slot {
    Src src = Src::kAbsent;
    size_t column = 0;
    Value constant;
  };
  struct Op {
    Slot lhs;
    CompareOp op = CompareOp::kEq;
    Slot rhs;
  };

  std::vector<Op> ops_;
};

}  // namespace compile
}  // namespace eid

#endif  // EID_COMPILE_PAIR_PROGRAM_H_
