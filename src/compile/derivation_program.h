// Compiled ILFD derivation with a projection-keyed memo cache.
//
// DeriveTuple (ilfd/derivation.h) re-binds attribute names against the
// schema and rebuilds AtomTable string keys for every tuple. A
// DerivationProgram performs that binding once per (schema, IlfdSet,
// options) triple — once per Identify / IncrementalIdentifier session:
//
//   * seed columns — the schema positions whose attribute has interned
//     atoms, each with a Value -> AtomId map, so seeding the forward
//     closure is one hash probe per non-NULL cell;
//   * consequent slots — every clause-head attribute resolved to a dense
//     slot carrying its (optional) schema column and target-filter flag,
//     so the firing loop and base-conflict checks are array accesses;
//   * first-match rules — antecedent/consequent atoms bound to dense
//     attribute slots with per-attribute rule lists, preserving the
//     Prolog-cut rule order the prototype semantics require.
//
// Binding is total: attributes absent from the schema get empty columns
// that behave exactly like TupleView::GetOrNull returning NULL, so
// compilation cannot fail anywhere eid-lint passes.
//
// The program copies the schema, knowledge base and the per-atom data it
// needs — it is self-contained, so sessions can store it by value and
// move freely. Execution semantics (derived values, step/provenance
// order, conflict handling, error text) are bit-identical to DeriveTuple;
// tests/compile/ enforces this differentially.
//
// DerivationMemo adds the cache: rows are keyed by their projection onto
// the columns the ILFD program can read (antecedent sources, consequent
// columns, targets), as interned ids. Rows agreeing on that projection
// derive identically — same values, same provenance — under both
// kExhaustive and kFirstMatch, so low-cardinality workloads derive each
// distinct projection once. Failed derivations are never cached (their
// error text cites the full tuple, which the key does not cover).

#ifndef EID_COMPILE_DERIVATION_PROGRAM_H_
#define EID_COMPILE_DERIVATION_PROGRAM_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/thread_annotations.h"
#include "compile/interner.h"
#include "exec/columnar_world.h"
#include "ilfd/derivation.h"
#include "ilfd/ilfd_set.h"
#include "logic/kb.h"

namespace eid {
namespace compile {

/// One column-resolved derived value, ready to apply to a row without a
/// by-name schema lookup.
struct DerivationWrite {
  size_t column = 0;
  Value value;
};

/// Per-worker derivation cache (EID_PER_WORKER: one instance per
/// ParallelFor worker, like ClosureEvaluator — never shared, never
/// locked; the determinism contract rests on that ownership, see
/// DESIGN.md §4f). Owns its interner, so caches never leak entries
/// across relations or sessions.
///
/// The cache is adaptive: when the projection key space turns out to be
/// as large as the input (e.g. rule sets carrying per-entity ILFDs, where
/// every row projects uniquely), key building and entry insertion are
/// pure overhead — so after kAbandonMissLimit misses with a hit rate
/// below 1/8 (or kEarlyAbandonMissLimit consecutive misses without a
/// single hit) the memo switches itself off, frees its entries, and
/// every later Derive runs uncached. Derivation results are identical
/// either way; only the hit/miss counters stop advancing.
class EID_PER_WORKER DerivationMemo {
 public:
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  /// Distinct values interned while building keys.
  size_t interner_size() const { return interner_.size(); }
  size_t size() const { return entries_.size(); }

 private:
  friend class DerivationProgram;
  struct Entry {
    Derivation trace;
    std::vector<DerivationWrite> writes;
  };
  static constexpr size_t kAbandonMissLimit = 512;
  static constexpr size_t kEarlyAbandonMissLimit = 128;

  // Which key encoding this memo has seen: row keys intern Values into
  // the private interner_; columnar keys gather pre-encoded session ids.
  // The two id-spaces are incompatible, so one memo must never mix them.
  enum class KeySpace : uint8_t { kUnset, kRow, kColumnar };

  ValueInterner interner_;
  std::unordered_map<std::vector<uint32_t>, Entry, InternedKeyHash> entries_;
  std::vector<uint32_t> key_scratch_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  bool abandoned_ = false;
  KeySpace key_space_ = KeySpace::kUnset;
};

/// A DerivationProgram's memo/seed projection bound to the session's
/// columnar world (DESIGN.md §4g): per-column pre-encoded id slices plus
/// dict-id -> AtomId seed tables, built once per (program, relation) and
/// shared read-only by every sweep worker (EID_SHARED_IMMUTABLE). With a
/// binding, the per-row derivation hot path touches no Value at all until
/// a memo miss actually runs the closure: memo keys are gathered from id
/// slices and closure seeds are two array loads per column.
struct EID_SHARED_IMMUTABLE ColumnarBinding {
  /// Parallel to DerivationProgram::memo_columns(): the column's id slice
  /// (rows entries), or nullptr for columns beyond the source relation's
  /// arity — extension-appended columns whose cells are all NULL at
  /// derive time (gathered as ColumnarWorld::kNullId).
  std::vector<const uint32_t*> memo_ids;
  /// kExhaustive only, parallel to the program's seed columns: id slice
  /// or nullptr (same convention as memo_ids).
  std::vector<const uint32_t*> seed_ids;
  /// kExhaustive only, parallel to seed columns: dictionary id -> AtomId,
  /// kNoAtom where the value is not an atom of that attribute.
  std::vector<std::vector<AtomId>> atom_of_id;
  size_t rows = 0;

  static constexpr AtomId kNoAtom = 0xffffffffu;
};

/// An IlfdSet + DerivationOptions lowered onto one extended schema.
/// EID_SHARED_IMMUTABLE: compiled serially once per session, then read
/// concurrently by every worker of the derivation sweep (Derive is
/// const; all mutable sweep state lives in the per-worker evaluator,
/// memo and `writes` the caller passes in).
class EID_SHARED_IMMUTABLE DerivationProgram {
 public:
  /// Lowers `ilfds` under `options` onto `schema`. Total: never fails.
  /// The program copies the knowledge base — self-contained, movable.
  static DerivationProgram Compile(const Schema& schema, const IlfdSet& ilfds,
                                   const DerivationOptions& options);

  /// Like Compile, but borrows `ilfds`' knowledge base instead of copying
  /// it — the copy is the dominant lowering cost for large rule sets
  /// (per-entity ILFD families scale with the relation). The program must
  /// not outlive `ilfds`. The batch engine uses this (the IlfdSet outlives
  /// the ExtendRelation call); sessions that store the program across
  /// moves (IncrementalIdentifier) use Compile.
  static DerivationProgram CompileBorrowed(const Schema& schema,
                                           const IlfdSet& ilfds,
                                           const DerivationOptions& options);

  /// Derives the missing values of `row` (which must match the compiled
  /// schema). Identical to DeriveTuple(TupleView(schema, row), ilfds,
  /// options). `writes` receives the derived values that land in schema
  /// columns (cleared first) — apply each to a NULL cell, as the
  /// interpreter's callers do by name.
  ///
  /// `evaluator` (kExhaustive only) must be constructed over this
  /// program's kb(); null falls back to a one-shot closure. `memo` may be
  /// null to disable caching; a memo must not be shared across programs.
  Result<Derivation> Derive(const Row& row, ClosureEvaluator* evaluator,
                            DerivationMemo* memo,
                            std::vector<DerivationWrite>* writes) const;

  /// Binds the program's memo/seed projection to `rel`'s id columns in
  /// `world` under `slot`, encoding any column not yet encoded. Columns
  /// at schema positions beyond `rel`'s arity (appended by extension,
  /// all-NULL at derive time) bind as nullptr slices. Serial — call once
  /// per sweep before the workers start.
  ColumnarBinding BindColumns(exec::ColumnarWorld* world, exec::WorldRel slot,
                              const Relation& rel) const;

  /// Columnar Derive: identical results to Derive(row, ...) when
  /// `binding` was built over the relation `row` came from and
  /// `row_index` is its position — memo keys and closure seeds are
  /// gathered from the binding's id slices instead of hashing Values.
  /// A memo must stick to one keying (row or columnar) for its lifetime.
  Result<Derivation> Derive(const Row& row, size_t row_index,
                            const ColumnarBinding& binding,
                            ClosureEvaluator* evaluator, DerivationMemo* memo,
                            std::vector<DerivationWrite>* writes) const;

  /// The program's knowledge base — its private copy (Compile) or the
  /// borrowed source (CompileBorrowed); clause indices equal the source
  /// IlfdSet's ILFD indices. Build per-worker ClosureEvaluators over this.
  const KnowledgeBase& kb() const {
    return kb_view_ != nullptr ? *kb_view_ : kb_;
  }
  const Schema& schema() const { return schema_; }
  /// Ascending schema columns forming the memo key projection.
  const std::vector<size_t>& memo_columns() const { return memo_columns_; }

 private:
  /// A schema column whose attribute has interned atoms, with the
  /// value -> atom map used to seed the closure. CompileBorrowed points
  /// `atoms` straight at the AtomTable's per-attribute index; Compile
  /// keeps a private copy alive via `owned` (shared_ptr so the program
  /// stays copyable and the pointer survives moves).
  struct SeedColumn {
    size_t column = 0;
    const std::unordered_map<Value, AtomId, ValueHash>* atoms = nullptr;
    std::shared_ptr<const std::unordered_map<Value, AtomId, ValueHash>> owned;
  };
  /// One consequent attribute (kExhaustive).
  struct ConsSlot {
    std::string attribute;
    std::optional<size_t> column;  // in the schema; nullopt = unmodeled
    bool wanted = true;            // passes the target filter
  };
  /// One condition bound to a dense attribute slot (kFirstMatch).
  struct FmCond {
    uint32_t slot = 0;
    Value value;
  };
  /// One ILFD in first-match form; its index is the ILFD's index.
  struct FmRule {
    std::vector<FmCond> antecedent;
    std::vector<FmCond> consequent;
  };
  /// An ILFD able to head `attribute` with `head_value` (first consequent
  /// atom for the attribute, matching the interpreter's scan).
  struct FmAttrRule {
    uint32_t rule = 0;  // index into fm_rules_ == ILFD index
    Value head_value;
  };
  /// One attribute of the first-match universe (antecedents, consequents
  /// and targets).
  struct FmAttr {
    std::string name;
    std::optional<size_t> column;
    std::vector<FmAttrRule> rules;  // in ILFD declaration order
  };
  struct FmState;

  static constexpr uint32_t kNoSlot = 0xffffffffu;

  static DerivationProgram CompileImpl(const Schema& schema,
                                       const IlfdSet& ilfds,
                                       const DerivationOptions& options,
                                       bool borrow_kb);

  const Value& AtomValue(AtomId id) const {
    return atoms_view_ != nullptr ? atoms_view_->atom(id).value
                                  : value_of_atom_[id];
  }

  Result<Derivation> RunUncached(const Row& row, ClosureEvaluator* evaluator,
                                 std::vector<DerivationWrite>* writes) const;
  Result<Derivation> RunUncachedColumnar(
      const Row& row, size_t row_index, const ColumnarBinding& binding,
      ClosureEvaluator* evaluator, std::vector<DerivationWrite>* writes) const;
  Result<Derivation> RunExhaustive(const Row& row,
                                   ClosureEvaluator* evaluator,
                                   std::vector<DerivationWrite>* writes) const;
  Result<Derivation> RunExhaustiveSeeded(
      const Row& row, AtomSet seed_set, ClosureEvaluator* evaluator,
      std::vector<DerivationWrite>* writes) const;
  Result<Derivation> ApplyDerived(const Row& row,
                                  const std::vector<DerivedAtom>& events,
                                  std::vector<DerivationWrite>* writes) const;
  Result<Derivation> RunFirstMatch(
      const Row& row, std::vector<DerivationWrite>* writes) const;
  Value ResolveFirstMatch(uint32_t slot, const Row& row, FmState* state,
                          Derivation* out) const;

  Schema schema_;
  DerivationMode mode_ = DerivationMode::kExhaustive;
  ConflictPolicy conflict_policy_ = ConflictPolicy::kError;
  std::vector<size_t> memo_columns_;

  // kExhaustive state. Exactly one of kb_ / kb_view_ is live: Compile
  // fills kb_; CompileBorrowed points kb_view_ at the caller's base and
  // atoms_view_ at its atom table (skipping the per-atom value copy).
  KnowledgeBase kb_;
  const KnowledgeBase* kb_view_ = nullptr;
  const AtomTable* atoms_view_ = nullptr;
  std::vector<SeedColumn> seed_columns_;       // ascending columns
  std::vector<uint32_t> slot_of_atom_;         // AtomId -> slot / kNoSlot
  std::vector<Value> value_of_atom_;           // AtomId -> value (owned mode)
  std::vector<ConsSlot> cons_slots_;

  // kFirstMatch state.
  std::vector<FmAttr> fm_attrs_;
  std::vector<FmRule> fm_rules_;
  std::vector<uint32_t> fm_targets_;  // slots, in interpreter target order
};

}  // namespace compile
}  // namespace eid

#endif  // EID_COMPILE_DERIVATION_PROGRAM_H_
