#include "compile/pair_program.h"

#include <algorithm>
#include <utility>

namespace eid {
namespace compile {

CompiledConjunction CompiledConjunction::Compile(
    const std::vector<Predicate>& predicates, const Schema& r_schema,
    const Schema& s_schema, bool flipped) {
  CompiledConjunction out;
  out.ops_.reserve(predicates.size());
  auto bind = [&](const Operand& o) {
    Slot slot;
    if (o.kind == Operand::Kind::kConstant) {
      slot.src = Src::kConstant;
      slot.constant = o.constant;
      return slot;
    }
    const bool r_side = (o.entity == 1) != flipped;
    const Schema& schema = r_side ? r_schema : s_schema;
    std::optional<size_t> column = schema.IndexOf(o.attribute);
    if (!column.has_value()) return slot;  // kAbsent: resolves to NULL
    slot.src = r_side ? Src::kRColumn : Src::kSColumn;
    slot.column = *column;
    return slot;
  };
  for (const Predicate& p : predicates) {
    out.ops_.push_back(Op{bind(p.lhs), p.op, bind(p.rhs)});
  }
  return out;
}

Truth CompiledConjunction::Evaluate(const Row& r_row,
                                    const Row& s_row) const {
  static const Value kNullValue;
  auto resolve = [&](const Slot& slot) -> const Value& {
    switch (slot.src) {
      case Src::kRColumn: return r_row[slot.column];
      case Src::kSColumn: return s_row[slot.column];
      case Src::kConstant: return slot.constant;
      case Src::kAbsent: return kNullValue;
    }
    return kNullValue;
  };
  // Mirrors EvaluateConjunction: Kleene And with an early kFalse exit.
  Truth result = Truth::kTrue;
  for (const Op& op : ops_) {
    result = And(result, CompareValues(resolve(op.lhs), op.op,
                                       resolve(op.rhs)));
    if (result == Truth::kFalse) return result;
  }
  return result;
}

const std::vector<uint32_t>& PairFeatureCache::RColumn(size_t column) {
  auto it = r_columns_.find(column);
  if (it != r_columns_.end()) return it->second;
  return r_columns_.emplace(column, BuildColumn(*r_, column)).first->second;
}

const std::vector<uint32_t>& PairFeatureCache::SColumn(size_t column) {
  auto it = s_columns_.find(column);
  if (it != s_columns_.end()) return it->second;
  return s_columns_.emplace(column, BuildColumn(*s_, column)).first->second;
}

uint32_t PairFeatureCache::InternConstant(const Value& v) {
  if (v.is_null()) return kNullId;
  return interner_.GetOrIntern(v);
}

std::vector<uint32_t> PairFeatureCache::BuildColumn(const Relation& rel,
                                                    size_t column) {
  std::vector<uint32_t> ids(rel.size(), kNullId);
  for (size_t i = 0; i < rel.size(); ++i) {
    const Value& v = rel.row(i)[column];
    if (!v.is_null()) ids[i] = interner_.GetOrIntern(v);
  }
  return ids;
}

StagedConjunction StagedConjunction::Compile(
    const std::vector<Predicate>& predicates,
    const std::vector<exec::PredicateCoverage>& coverage,
    const Relation& r_ext, const Relation& s_ext, bool flipped,
    PairFeatureCache* features) {
  StagedConjunction out;
  out.r_ = &r_ext;
  out.s_ = &s_ext;
  EID_CHECK(coverage.size() == predicates.size());
  EID_CHECK(features != nullptr);
  auto bind = [&](const Operand& o) {
    Slot slot;
    if (o.kind == Operand::Kind::kConstant) {
      slot.src = Src::kConstant;
      slot.constant = o.constant;
      slot.const_id = features->InternConstant(o.constant);
      return slot;
    }
    const bool r_side = (o.entity == 1) != flipped;
    const Schema& schema = r_side ? r_ext.schema() : s_ext.schema();
    std::optional<size_t> column = schema.IndexOf(o.attribute);
    if (!column.has_value()) return slot;  // kAbsent: resolves to NULL
    slot.src = r_side ? Src::kRColumn : Src::kSColumn;
    slot.column = *column;
    return slot;
  };
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (coverage[i] == exec::PredicateCoverage::kCovered) continue;
    const Predicate& p = predicates[i];
    Op op;
    op.lhs = bind(p.lhs);
    op.op = p.op;
    op.rhs = bind(p.rhs);
    // kEq/kNe are exactly storage (in)equality on non-NULL operands, so
    // they run on the cached id slices; ordering ops need the Values.
    op.id_fast = p.op == CompareOp::kEq || p.op == CompareOp::kNe;
    if (op.id_fast) {
      for (Slot* slot : {&op.lhs, &op.rhs}) {
        if (slot->src == Src::kRColumn) {
          slot->ids = &features->RColumn(slot->column);
        } else if (slot->src == Src::kSColumn) {
          slot->ids = &features->SColumn(slot->column);
        }
      }
    }
    const bool row_only =
        coverage[i] == exec::PredicateCoverage::kResidualRow;
    (row_only ? out.row_ops_ : out.pair_ops_).push_back(std::move(op));
  }
  return out;
}

Truth StagedConjunction::EvaluateOps(const std::vector<Op>& ops,
                                     size_t r_row, size_t s_row) const {
  static const Value kNullValue;
  Truth result = Truth::kTrue;
  for (const Op& op : ops) {
    Truth t;
    if (op.id_fast) {
      auto id_of = [&](const Slot& slot) -> uint32_t {
        switch (slot.src) {
          case Src::kRColumn: return (*slot.ids)[r_row];
          case Src::kSColumn: return (*slot.ids)[s_row];
          case Src::kConstant: return slot.const_id;
          case Src::kAbsent: return PairFeatureCache::kNullId;
        }
        return PairFeatureCache::kNullId;
      };
      const uint32_t lhs = id_of(op.lhs);
      const uint32_t rhs = id_of(op.rhs);
      if (lhs == PairFeatureCache::kNullId ||
          rhs == PairFeatureCache::kNullId) {
        t = Truth::kUnknown;  // NULL operand
      } else if (op.op == CompareOp::kEq) {
        t = lhs == rhs ? Truth::kTrue : Truth::kFalse;
      } else {
        t = lhs == rhs ? Truth::kFalse : Truth::kTrue;
      }
    } else {
      auto resolve = [&](const Slot& slot) -> const Value& {
        switch (slot.src) {
          case Src::kRColumn: return r_->row(r_row)[slot.column];
          case Src::kSColumn: return s_->row(s_row)[slot.column];
          case Src::kConstant: return slot.constant;
          case Src::kAbsent: return kNullValue;
        }
        return kNullValue;
      };
      t = CompareValues(resolve(op.lhs), op.op, resolve(op.rhs));
    }
    result = And(result, t);
    if (result == Truth::kFalse) return result;
  }
  return result;
}

Truth StagedConjunction::RowTruth(size_t r_row) const {
  // Row ops never carry an s-side slot (PredicateCoverage::kResidualRow
  // requires every entity operand to bind the r side), so the s row
  // index is irrelevant.
  return EvaluateOps(row_ops_, r_row, r_row);
}

Truth StagedConjunction::PairTruth(size_t r_row, size_t s_row) const {
  return EvaluateOps(pair_ops_, r_row, s_row);
}

std::vector<TuplePair> InternedKeyJoin(const Relation& r_ext,
                                       const Relation& s_ext,
                                       const std::vector<size_t>& r_idx,
                                       const std::vector<size_t>& s_idx,
                                       exec::ThreadPool* pool,
                                       size_t* interner_values) {
  const size_t k = r_idx.size();
  EID_CHECK(s_idx.size() == k);
  PairFeatureCache features(&r_ext, &s_ext);
  // Columnar id projections, built serially: per-row NULL checks and
  // Value hashing happen here once, never in the probe loop.
  std::vector<const std::vector<uint32_t>*> r_cols, s_cols;
  r_cols.reserve(k);
  s_cols.reserve(k);
  for (size_t i : r_idx) r_cols.push_back(&features.RColumn(i));
  for (size_t i : s_idx) s_cols.push_back(&features.SColumn(i));

  const size_t n = r_ext.size();
  const int threads = pool != nullptr ? pool->threads() : 1;
  const size_t grain =
      std::max<size_t>(1, n / (static_cast<size_t>(threads) * 4));
  const size_t num_chunks = n == 0 ? 0 : (n + grain - 1) / grain;
  std::vector<std::vector<TuplePair>> found(num_chunks);

  if (k <= 2) {
    // Narrow keys (the common case: extended keys of one or two
    // attributes) pack into one uint64_t — a probe is a single integer
    // hash, no vector hashing, no per-column map lookups.
    auto key_of = [&](const std::vector<const std::vector<uint32_t>*>& cols,
                      size_t row, bool* has_null) -> uint64_t {
      uint64_t key = 0;
      for (size_t c = 0; c < k; ++c) {
        const uint32_t id = (*cols[c])[row];
        if (id == PairFeatureCache::kNullId) {
          *has_null = true;  // non_null_eq: NULL keys never match
          return 0;
        }
        key = (key << 32) | id;
      }
      *has_null = false;
      return key;
    };
    std::unordered_map<uint64_t, std::vector<size_t>> build;
    build.reserve(s_ext.size() * 2);
    for (size_t s = 0; s < s_ext.size(); ++s) {
      bool has_null = false;
      const uint64_t key = key_of(s_cols, s, &has_null);
      if (!has_null) build[key].push_back(s);
    }
    exec::ParallelFor(pool, n, grain, [&](size_t begin, size_t end, int) {
      const size_t chunk = begin / grain;
      for (size_t r = begin; r < end; ++r) {
        bool has_null = false;
        const uint64_t key = key_of(r_cols, r, &has_null);
        if (has_null) continue;
        auto it = build.find(key);
        if (it == build.end()) continue;
        for (size_t s : it->second) {
          found[chunk].push_back(TuplePair{r, s});
        }
      }
    });
  } else {
    auto key_of = [&](const std::vector<const std::vector<uint32_t>*>& cols,
                      size_t row, std::vector<uint32_t>* key) {
      key->clear();
      for (size_t c = 0; c < k; ++c) {
        const uint32_t id = (*cols[c])[row];
        if (id == PairFeatureCache::kNullId) return false;
        key->push_back(id);
      }
      return true;
    };
    std::unordered_map<std::vector<uint32_t>, std::vector<size_t>,
                       InternedKeyHash>
        build;
    build.reserve(s_ext.size() * 2);
    std::vector<uint32_t> key;
    key.reserve(k);
    for (size_t s = 0; s < s_ext.size(); ++s) {
      if (key_of(s_cols, s, &key)) build[key].push_back(s);
    }
    exec::ParallelFor(pool, n, grain, [&](size_t begin, size_t end, int) {
      const size_t chunk = begin / grain;
      std::vector<uint32_t> probe;
      probe.reserve(k);
      for (size_t r = begin; r < end; ++r) {
        if (!key_of(r_cols, r, &probe)) continue;
        auto it = build.find(probe);
        if (it == build.end()) continue;
        for (size_t s : it->second) {
          found[chunk].push_back(TuplePair{r, s});
        }
      }
    });
  }

  std::vector<TuplePair> pairs;
  size_t total = 0;
  for (const std::vector<TuplePair>& f : found) total += f.size();
  pairs.reserve(total);
  for (std::vector<TuplePair>& f : found) {
    pairs.insert(pairs.end(), f.begin(), f.end());
  }
  if (interner_values != nullptr) *interner_values = features.distinct_values();
  return pairs;
}

}  // namespace compile
}  // namespace eid
