#include "compile/pair_program.h"

namespace eid {
namespace compile {

CompiledConjunction CompiledConjunction::Compile(
    const std::vector<Predicate>& predicates, const Schema& r_schema,
    const Schema& s_schema, bool flipped) {
  CompiledConjunction out;
  out.ops_.reserve(predicates.size());
  auto bind = [&](const Operand& o) {
    Slot slot;
    if (o.kind == Operand::Kind::kConstant) {
      slot.src = Src::kConstant;
      slot.constant = o.constant;
      return slot;
    }
    const bool r_side = (o.entity == 1) != flipped;
    const Schema& schema = r_side ? r_schema : s_schema;
    std::optional<size_t> column = schema.IndexOf(o.attribute);
    if (!column.has_value()) return slot;  // kAbsent: resolves to NULL
    slot.src = r_side ? Src::kRColumn : Src::kSColumn;
    slot.column = *column;
    return slot;
  };
  for (const Predicate& p : predicates) {
    out.ops_.push_back(Op{bind(p.lhs), p.op, bind(p.rhs)});
  }
  return out;
}

Truth CompiledConjunction::Evaluate(const Row& r_row,
                                    const Row& s_row) const {
  static const Value kNullValue;
  auto resolve = [&](const Slot& slot) -> const Value& {
    switch (slot.src) {
      case Src::kRColumn: return r_row[slot.column];
      case Src::kSColumn: return s_row[slot.column];
      case Src::kConstant: return slot.constant;
      case Src::kAbsent: return kNullValue;
    }
    return kNullValue;
  };
  // Mirrors EvaluateConjunction: Kleene And with an early kFalse exit.
  Truth result = Truth::kTrue;
  for (const Op& op : ops_) {
    result = And(result, CompareValues(resolve(op.lhs), op.op,
                                       resolve(op.rhs)));
    if (result == Truth::kFalse) return result;
  }
  return result;
}

}  // namespace compile
}  // namespace eid
