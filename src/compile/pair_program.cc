#include "compile/pair_program.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace eid {
namespace compile {

CompiledConjunction CompiledConjunction::Compile(
    const std::vector<Predicate>& predicates, const Schema& r_schema,
    const Schema& s_schema, bool flipped) {
  CompiledConjunction out;
  out.ops_.reserve(predicates.size());
  auto bind = [&](const Operand& o) {
    Slot slot;
    if (o.kind == Operand::Kind::kConstant) {
      slot.src = Src::kConstant;
      slot.constant = o.constant;
      return slot;
    }
    const bool r_side = (o.entity == 1) != flipped;
    const Schema& schema = r_side ? r_schema : s_schema;
    std::optional<size_t> column = schema.IndexOf(o.attribute);
    if (!column.has_value()) return slot;  // kAbsent: resolves to NULL
    slot.src = r_side ? Src::kRColumn : Src::kSColumn;
    slot.column = *column;
    return slot;
  };
  for (const Predicate& p : predicates) {
    out.ops_.push_back(Op{bind(p.lhs), p.op, bind(p.rhs)});
  }
  return out;
}

Truth CompiledConjunction::Evaluate(const Row& r_row,
                                    const Row& s_row) const {
  static const Value kNullValue;
  auto resolve = [&](const Slot& slot) -> const Value& {
    switch (slot.src) {
      case Src::kRColumn: return r_row[slot.column];
      case Src::kSColumn: return s_row[slot.column];
      case Src::kConstant: return slot.constant;
      case Src::kAbsent: return kNullValue;
    }
    return kNullValue;
  };
  // Mirrors EvaluateConjunction: Kleene And with an early kFalse exit.
  Truth result = Truth::kTrue;
  for (const Op& op : ops_) {
    result = And(result, CompareValues(resolve(op.lhs), op.op,
                                       resolve(op.rhs)));
    if (result == Truth::kFalse) return result;
  }
  return result;
}

const std::vector<uint32_t>& PairFeatureCache::RColumn(size_t column) {
  if (world_ != nullptr) return world_->Column(r_slot_, *r_, column);
  auto it = r_columns_.find(column);
  if (it != r_columns_.end()) return it->second;
  return r_columns_.emplace(column, BuildColumn(*r_, column)).first->second;
}

const std::vector<uint32_t>& PairFeatureCache::SColumn(size_t column) {
  if (world_ != nullptr) return world_->Column(s_slot_, *s_, column);
  auto it = s_columns_.find(column);
  if (it != s_columns_.end()) return it->second;
  return s_columns_.emplace(column, BuildColumn(*s_, column)).first->second;
}

uint32_t PairFeatureCache::InternConstant(const Value& v) {
  if (v.is_null()) return kNullId;
  if (world_ != nullptr) return world_->dict().GetOrIntern(v);
  return interner_.GetOrIntern(v);
}

bool PairFeatureCache::RColumnMayNull(size_t column) {
  auto it = r_may_null_.find(column);
  if (it != r_may_null_.end()) return it->second;
  const std::vector<uint32_t>& ids = RColumn(column);
  const bool may =
      std::find(ids.begin(), ids.end(), kNullId) != ids.end();
  return r_may_null_.emplace(column, may).first->second;
}

bool PairFeatureCache::SColumnMayNull(size_t column) {
  auto it = s_may_null_.find(column);
  if (it != s_may_null_.end()) return it->second;
  const std::vector<uint32_t>& ids = SColumn(column);
  const bool may =
      std::find(ids.begin(), ids.end(), kNullId) != ids.end();
  return s_may_null_.emplace(column, may).first->second;
}

std::vector<uint32_t> PairFeatureCache::BuildColumn(const Relation& rel,
                                                    size_t column) {
  std::vector<uint32_t> ids(rel.size(), kNullId);
  for (size_t i = 0; i < rel.size(); ++i) {
    const Value& v = rel.row(i)[column];
    if (!v.is_null()) ids[i] = interner_.GetOrIntern(v);
  }
  return ids;
}

StagedConjunction StagedConjunction::Compile(
    const std::vector<Predicate>& predicates,
    const std::vector<exec::PredicateCoverage>& coverage,
    const Relation& r_ext, const Relation& s_ext, bool flipped,
    PairFeatureCache* features) {
  StagedConjunction out;
  out.r_ = &r_ext;
  out.s_ = &s_ext;
  EID_CHECK(coverage.size() == predicates.size());
  EID_CHECK(features != nullptr);
  auto bind = [&](const Operand& o) {
    Slot slot;
    if (o.kind == Operand::Kind::kConstant) {
      slot.src = Src::kConstant;
      slot.constant = o.constant;
      slot.const_id = features->InternConstant(o.constant);
      return slot;
    }
    const bool r_side = (o.entity == 1) != flipped;
    const Schema& schema = r_side ? r_ext.schema() : s_ext.schema();
    std::optional<size_t> column = schema.IndexOf(o.attribute);
    if (!column.has_value()) return slot;  // kAbsent: resolves to NULL
    slot.src = r_side ? Src::kRColumn : Src::kSColumn;
    slot.column = *column;
    return slot;
  };
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (coverage[i] == exec::PredicateCoverage::kCovered) continue;
    const Predicate& p = predicates[i];
    Op op;
    op.lhs = bind(p.lhs);
    op.op = p.op;
    op.rhs = bind(p.rhs);
    // kEq/kNe are exactly storage (in)equality on non-NULL operands, so
    // they run on the cached id slices; ordering ops need the Values.
    op.id_fast = p.op == CompareOp::kEq || p.op == CompareOp::kNe;
    if (op.id_fast) {
      op.may_null = false;
      for (Slot* slot : {&op.lhs, &op.rhs}) {
        if (slot->src == Src::kRColumn) {
          slot->ids = &features->RColumn(slot->column);
          slot->view = features->RColumnView(slot->column);
          op.may_null |= features->RColumnMayNull(slot->column);
        } else if (slot->src == Src::kSColumn) {
          slot->ids = &features->SColumn(slot->column);
          slot->view = features->SColumnView(slot->column);
          op.may_null |= features->SColumnMayNull(slot->column);
        } else if (slot->src == Src::kConstant) {
          op.may_null |= slot->const_id == PairFeatureCache::kNullId;
        } else {
          op.may_null = true;  // kAbsent resolves to NULL on every lane
        }
      }
    }
    const bool row_only =
        coverage[i] == exec::PredicateCoverage::kResidualRow;
    (row_only ? out.row_ops_ : out.pair_ops_).push_back(std::move(op));
  }
  return out;
}

Truth StagedConjunction::EvaluateOps(const std::vector<Op>& ops,
                                     size_t r_row, size_t s_row) const {
  static const Value kNullValue;
  Truth result = Truth::kTrue;
  for (const Op& op : ops) {
    Truth t;
    if (op.id_fast) {
      auto id_of = [&](const Slot& slot) -> uint32_t {
        switch (slot.src) {
          case Src::kRColumn: return (*slot.ids)[r_row];
          case Src::kSColumn: return (*slot.ids)[s_row];
          case Src::kConstant: return slot.const_id;
          case Src::kAbsent: return PairFeatureCache::kNullId;
        }
        return PairFeatureCache::kNullId;
      };
      const uint32_t lhs = id_of(op.lhs);
      const uint32_t rhs = id_of(op.rhs);
      if (lhs == PairFeatureCache::kNullId ||
          rhs == PairFeatureCache::kNullId) {
        t = Truth::kUnknown;  // NULL operand
      } else if (op.op == CompareOp::kEq) {
        t = lhs == rhs ? Truth::kTrue : Truth::kFalse;
      } else {
        t = lhs == rhs ? Truth::kFalse : Truth::kTrue;
      }
    } else {
      auto resolve = [&](const Slot& slot) -> const Value& {
        switch (slot.src) {
          case Src::kRColumn: return r_->row(r_row)[slot.column];
          case Src::kSColumn: return s_->row(s_row)[slot.column];
          case Src::kConstant: return slot.constant;
          case Src::kAbsent: return kNullValue;
        }
        return kNullValue;
      };
      t = CompareValues(resolve(op.lhs), op.op, resolve(op.rhs));
    }
    result = And(result, t);
    if (result == Truth::kFalse) return result;
  }
  return result;
}

Truth StagedConjunction::RowTruth(size_t r_row) const {
  // Row ops never carry an s-side slot (PredicateCoverage::kResidualRow
  // requires every entity operand to bind the r side), so the s row
  // index is irrelevant.
  return EvaluateOps(row_ops_, r_row, r_row);
}

std::vector<Truth> StagedConjunction::RowTruthAll(size_t n) const {
  std::vector<Truth> out(n, Truth::kTrue);
  // Op-major over the id slices: each id_fast opcode streams two
  // contiguous uint32_t lanes (or a lane against a constant id) instead
  // of chasing Slot pointers per row. Skipping rows already kFalse
  // reproduces EvaluateOps' early exit, so out[r] == RowTruth(r).
  for (const Op& op : row_ops_) {
    if (op.id_fast) {
      // Row ops bind the r side only, so a slot is a kRColumn slice, a
      // constant id, or the NULL sentinel (kAbsent).
      const uint32_t* lhs_ids =
          op.lhs.src == Src::kRColumn ? op.lhs.ids->data() : nullptr;
      const uint32_t* rhs_ids =
          op.rhs.src == Src::kRColumn ? op.rhs.ids->data() : nullptr;
      const uint32_t lhs_const = op.lhs.src == Src::kConstant
                                     ? op.lhs.const_id
                                     : PairFeatureCache::kNullId;
      const uint32_t rhs_const = op.rhs.src == Src::kConstant
                                     ? op.rhs.const_id
                                     : PairFeatureCache::kNullId;
      const bool is_eq = op.op == CompareOp::kEq;
      for (size_t r = 0; r < n; ++r) {
        if (out[r] == Truth::kFalse) continue;
        const uint32_t lhs = lhs_ids != nullptr ? lhs_ids[r] : lhs_const;
        const uint32_t rhs = rhs_ids != nullptr ? rhs_ids[r] : rhs_const;
        Truth t;
        if (lhs == PairFeatureCache::kNullId ||
            rhs == PairFeatureCache::kNullId) {
          t = Truth::kUnknown;
        } else {
          t = ((lhs == rhs) == is_eq) ? Truth::kTrue : Truth::kFalse;
        }
        out[r] = And(out[r], t);
      }
    } else {
      static const Value kNullValue;
      for (size_t r = 0; r < n; ++r) {
        if (out[r] == Truth::kFalse) continue;
        auto resolve = [&](const Slot& slot) -> const Value& {
          switch (slot.src) {
            case Src::kRColumn: return r_->row(r)[slot.column];
            case Src::kSColumn: return s_->row(r)[slot.column];
            case Src::kConstant: return slot.constant;
            case Src::kAbsent: return kNullValue;
          }
          return kNullValue;
        };
        out[r] = And(out[r],
                     CompareValues(resolve(op.lhs), op.op, resolve(op.rhs)));
      }
    }
  }
  return out;
}

Truth StagedConjunction::PairTruth(size_t r_row, size_t s_row) const {
  return EvaluateOps(pair_ops_, r_row, s_row);
}

void StagedConjunction::PairTruthBlock(const size_t* r_rows,
                                       const size_t* s_rows, size_t lanes,
                                       Truth* out,
                                       exec::PairBlockStats* stats) const {
  EID_CHECK(lanes <= exec::kPairBlockLanes);
  // Small drains lose to the scalar loop's zero setup cost: below the
  // shared kMinVectorLanes threshold the per-block fixed work (survivor
  // list init, op lowering, final writeback) dominates the per-lane win.
  // The dense generator's per-probe drains average ~34 lanes, so this
  // keeps the partial-drain regime at scalar speed while full
  // accumulator blocks vectorize.
  if (lanes < exec::kMinVectorLanes) {
    for (size_t i = 0; i < lanes; ++i) {
      out[i] = PairTruth(r_rows[i], s_rows[i]);
    }
    return;
  }
  constexpr uint32_t kNull = PairFeatureCache::kNullId;
  // Op-major with lane compaction: each id_fast op gathers and masks
  // only the lanes still alive after the previous ops, so the total
  // work is proportional to what the scalar early-exit loop does — a
  // block where every lane dies on the first op touches each lane once.
  // Conjunction truth is order-independent (And is commutative and ops
  // have no side effects), so running the id_fast ops first and the
  // value-fallback ops after on the survivors is bit-identical to the
  // scalar loop: final = alive ? (unknown ? kUnknown : kTrue) : kFalse
  // either way.
  uint16_t idx[exec::kPairBlockLanes];      // still-alive lane indices
  uint8_t unknown[exec::kPairBlockLanes];   // lane saw a NULL operand
  for (size_t i = 0; i < lanes; ++i) idx[i] = static_cast<uint16_t>(i);
  std::memset(unknown, 0, lanes);

  size_t value_ops = 0;
  size_t id_ops = 0;
  for (const Op& op : pair_ops_) (op.id_fast ? id_ops : value_ops) += 1;

  // One slot of an id op, lowered for lane fetches: a gather through
  // the candidate row array (column slices) or a broadcast id
  // (constants; kAbsent broadcasts the NULL sentinel).
  struct LaneSrc {
    const uint32_t* view = nullptr;  // nullptr => broadcast cval
    const size_t* rows = nullptr;
    uint32_t cval = kNull;
  };
  auto lower = [&](const Slot& slot) {
    LaneSrc f;
    switch (slot.src) {
      case Src::kRColumn: f.view = slot.view.data; f.rows = r_rows; break;
      case Src::kSColumn: f.view = slot.view.data; f.rows = s_rows; break;
      case Src::kConstant: f.cval = slot.const_id; break;
      case Src::kAbsent: break;
    }
    return f;
  };

  size_t live = lanes;
  size_t id_done = 0;
  for (const Op& op : pair_ops_) {
    if (!op.id_fast) continue;
    const LaneSrc lf = lower(op.lhs);
    const LaneSrc rf = lower(op.rhs);
    const uint8_t want_eq = op.op == CompareOp::kEq ? 1 : 0;
    size_t w = 0;
    if (!op.may_null) {
      // Compile proved no operand can be NULL (column slices scanned,
      // constants checked), so no lane can go kUnknown here: fused
      // gather + mask + compact with the Kleene NULL plumbing stripped.
      // may_null == false implies both slots are column slices or
      // non-NULL constants; broadcast constants keep view == nullptr
      // and fall through to the general loop below, so both views are
      // non-null in practice — but guard anyway for the constant case.
      const uint32_t* lv = lf.view;
      const uint32_t* rv = rf.view;
      if (lv != nullptr && rv != nullptr) {
        const size_t* lr = lf.rows;
        const size_t* rr = rf.rows;
        for (size_t j = 0; j < live; ++j) {
          const uint16_t i = idx[j];
          idx[w] = i;
          w += static_cast<size_t>(
              static_cast<uint8_t>(lv[lr[i]] == rv[rr[i]]) ^ want_eq ^ 1u);
        }
        live = w;
        ++id_done;
        if (live == 0) break;
        continue;
      }
    }
    // General form: broadcast slots and NULL ids feed the branch-free
    // Kleene mask. A lane survives unless the op is definitively
    // kFalse on it (non-NULL operands disagreeing with the op's
    // polarity); NULL operands mark kUnknown and keep the lane.
    for (size_t j = 0; j < live; ++j) {
      const uint16_t i = idx[j];
      const uint32_t l = lf.view != nullptr ? lf.view[lf.rows[i]] : lf.cval;
      const uint32_t r = rf.view != nullptr ? rf.view[rf.rows[i]] : rf.cval;
      const uint8_t is_null =
          static_cast<uint8_t>(l == kNull) | static_cast<uint8_t>(r == kNull);
      const uint8_t is_false = static_cast<uint8_t>(1 - is_null) &
                               (static_cast<uint8_t>(l == r) ^ want_eq);
      unknown[i] |= is_null;
      idx[w] = i;
      w += static_cast<size_t>(1 - is_false);
    }
    live = w;
    ++id_done;
    if (live == 0) break;
  }

  if (live == 0 && stats != nullptr && (id_done < id_ops || value_ops > 0)) {
    // Every lane is already kFalse; the remaining ops cannot change
    // that (And(kFalse, t) == kFalse) — the block-level analogue of the
    // scalar early exit. Counted only when ops were actually skipped.
    ++stats->early_exits;
  }
  if (live > 0 && value_ops > 0) {
    // Ordering / cross-type conjuncts need the Values (the raw rows the
    // derivation closure filled): scalar per surviving lane, with the
    // same per-lane early kFalse exit as EvaluateOps.
    static const Value kNullValue;
    if (stats != nullptr) stats->scalar_fallbacks += live;
    size_t w = 0;
    for (size_t j = 0; j < live; ++j) {
      const uint16_t i = idx[j];
      const size_t r_row = r_rows[i];
      const size_t s_row = s_rows[i];
      auto resolve = [&](const Slot& slot) -> const Value& {
        switch (slot.src) {
          case Src::kRColumn: return r_->row(r_row)[slot.column];
          case Src::kSColumn: return s_->row(s_row)[slot.column];
          case Src::kConstant: return slot.constant;
          case Src::kAbsent: return kNullValue;
        }
        return kNullValue;
      };
      bool lane_alive = true;
      for (const Op& op : pair_ops_) {
        if (op.id_fast) continue;
        const Truth t =
            CompareValues(resolve(op.lhs), op.op, resolve(op.rhs));
        if (t == Truth::kFalse) {
          lane_alive = false;
          break;
        }
        if (t == Truth::kUnknown) unknown[i] = 1;
      }
      if (lane_alive) idx[w++] = i;
    }
    live = w;
  }

  // Lanes dropped from idx are kFalse; survivors split on the
  // accumulated NULL flag.
  for (size_t i = 0; i < lanes; ++i) out[i] = Truth::kFalse;
  for (size_t j = 0; j < live; ++j) {
    const uint16_t i = idx[j];
    out[i] = unknown[i] != 0 ? Truth::kUnknown : Truth::kTrue;
  }
}

namespace {

// Rows per vectorized probe block: the pack/mask pass streams this many
// contiguous lanes per key column before any hash-table access.
constexpr size_t kProbeBatch = 256;

}  // namespace

std::vector<TuplePair> InternedKeyJoin(const Relation& r_ext,
                                       const Relation& s_ext,
                                       const std::vector<size_t>& r_idx,
                                       const std::vector<size_t>& s_idx,
                                       exec::ThreadPool* pool,
                                       exec::ColumnarWorld* world,
                                       KeyJoinStats* stats) {
  const size_t k = r_idx.size();
  EID_CHECK(s_idx.size() == k);
  const double encode_ms_before = world != nullptr ? world->encode_ms() : 0.0;
  const size_t reuse_before = world != nullptr ? world->reuse_hits() : 0;
  PairFeatureCache features(&r_ext, &s_ext);
  // Columnar id projections, built serially: per-row NULL checks and
  // Value hashing happen at most once — and not at all when the world
  // already encoded the column for the extension stage — never in the
  // probe loop.
  std::vector<const uint32_t*> r_cols, s_cols;
  r_cols.reserve(k);
  s_cols.reserve(k);
  for (size_t i : r_idx) {
    r_cols.push_back(
        world != nullptr
            ? world->Column(exec::WorldRel::kRExtended, r_ext, i).data()
            : features.RColumn(i).data());
  }
  for (size_t i : s_idx) {
    s_cols.push_back(
        world != nullptr
            ? world->Column(exec::WorldRel::kSExtended, s_ext, i).data()
            : features.SColumn(i).data());
  }

  const size_t n = r_ext.size();
  const int threads = pool != nullptr ? pool->threads() : 1;
  // Adaptive serial cutoff (same rationale as ParallelFor's): a chunk
  // below a few probe batches fragments the 256-lane packing into
  // partial blocks and pays per-chunk buffer overhead that exceeds the
  // probes themselves. Clamping the grain makes small joins run as a
  // handful of full-batch chunks — n <= 4·kProbeBatch is one serial
  // chunk — while large joins keep threads·4 chunks for stealing.
  const size_t grain = std::max<size_t>(
      kProbeBatch * 4, n / (static_cast<size_t>(threads) * 4));
  const size_t num_chunks = n == 0 ? 0 : (n + grain - 1) / grain;
  std::vector<std::vector<TuplePair>> found(num_chunks);
  std::vector<size_t> batches(num_chunks, 0);

  if (k <= 2) {
    // Narrow keys (the common case: extended keys of one or two
    // attributes) pack into one uint64_t — a probe is a single integer
    // hash, no vector hashing, no per-column map lookups.
    std::unordered_map<uint64_t, std::vector<size_t>> build;
    build.reserve(s_ext.size() * 2);
    for (size_t s = 0; s < s_ext.size(); ++s) {
      uint64_t key = 0;
      bool valid = true;
      for (size_t c = 0; c < k; ++c) {
        const uint32_t id = s_cols[c][s];
        valid &= id != PairFeatureCache::kNullId;  // non_null_eq
        key = (key << 32) | id;
      }
      if (valid) build[key].push_back(s);
    }
    exec::ParallelFor(pool, n, grain, [&](size_t begin, size_t end, int) {
      const size_t chunk = begin / grain;
      uint64_t keys[kProbeBatch];
      uint8_t valid[kProbeBatch];
      for (size_t b = begin; b < end; b += kProbeBatch) {
        const size_t m = std::min(kProbeBatch, end - b);
        ++batches[chunk];
        // Pass 1: pack keys column-major and accumulate the NULL mask
        // branch-free over each contiguous id lane.
        for (size_t i = 0; i < m; ++i) {
          keys[i] = 0;
          valid[i] = 1;
        }
        for (size_t c = 0; c < k; ++c) {
          const uint32_t* ids = r_cols[c];
          for (size_t i = 0; i < m; ++i) {
            const uint32_t id = ids[b + i];
            valid[i] &=
                static_cast<uint8_t>(id != PairFeatureCache::kNullId);
            keys[i] = (keys[i] << 32) | id;
          }
        }
        // Pass 2: probe only the valid lanes, row-major.
        for (size_t i = 0; i < m; ++i) {
          if (valid[i] == 0) continue;
          auto it = build.find(keys[i]);
          if (it == build.end()) continue;
          for (size_t s : it->second) {
            found[chunk].push_back(TuplePair{b + i, s});
          }
        }
      }
    });
  } else {
    // Wide keys: FNV-combine the per-column ids columnar into a 64-bit
    // bucket hash; candidates in the bucket are verified id-exactly per
    // column, so hash collisions never produce a false pair.
    constexpr uint64_t kFnvBasis = 1469598103934665603ull;
    constexpr uint64_t kFnvPrime = 1099511628211ull;
    std::unordered_map<uint64_t, std::vector<size_t>> build;
    build.reserve(s_ext.size() * 2);
    for (size_t s = 0; s < s_ext.size(); ++s) {
      uint64_t h = kFnvBasis;
      bool valid = true;
      for (size_t c = 0; c < k; ++c) {
        const uint32_t id = s_cols[c][s];
        valid &= id != PairFeatureCache::kNullId;
        h ^= id;
        h *= kFnvPrime;
      }
      if (valid) build[h].push_back(s);
    }
    exec::ParallelFor(pool, n, grain, [&](size_t begin, size_t end, int) {
      const size_t chunk = begin / grain;
      uint64_t hashes[kProbeBatch];
      uint8_t valid[kProbeBatch];
      for (size_t b = begin; b < end; b += kProbeBatch) {
        const size_t m = std::min(kProbeBatch, end - b);
        ++batches[chunk];
        for (size_t i = 0; i < m; ++i) {
          hashes[i] = kFnvBasis;
          valid[i] = 1;
        }
        for (size_t c = 0; c < k; ++c) {
          const uint32_t* ids = r_cols[c];
          for (size_t i = 0; i < m; ++i) {
            const uint32_t id = ids[b + i];
            valid[i] &=
                static_cast<uint8_t>(id != PairFeatureCache::kNullId);
            hashes[i] ^= id;
            hashes[i] *= kFnvPrime;
          }
        }
        for (size_t i = 0; i < m; ++i) {
          if (valid[i] == 0) continue;
          auto it = build.find(hashes[i]);
          if (it == build.end()) continue;
          const size_t r = b + i;
          for (size_t s : it->second) {
            bool match = true;
            for (size_t c = 0; c < k; ++c) {
              if (r_cols[c][r] != s_cols[c][s]) {
                match = false;
                break;
              }
            }
            if (match) found[chunk].push_back(TuplePair{r, s});
          }
        }
      }
    });
  }

  std::vector<TuplePair> pairs;
  size_t total = 0;
  for (const std::vector<TuplePair>& f : found) total += f.size();
  pairs.reserve(total);
  for (std::vector<TuplePair>& f : found) {
    pairs.insert(pairs.end(), f.begin(), f.end());
  }
  if (stats != nullptr) {
    for (size_t b : batches) stats->probe_batches += b;
    if (world != nullptr) {
      stats->encode_ms = world->encode_ms() - encode_ms_before;
      stats->reuse_hits = world->reuse_hits() - reuse_before;
    } else {
      stats->interner_values = features.distinct_values();
    }
  }
  return pairs;
}

}  // namespace compile
}  // namespace eid
