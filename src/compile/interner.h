// Dense value interning for the compiled execution path.
//
// The interpreter compares string payloads wherever values meet — rule
// conditions, extended-key joins, derivation memo keys. A ValueInterner
// maps each distinct Value (under storage equality, so NULL is a regular
// internable value) to a dense uint32_t id once; from then on equality on
// the hot path is an integer compare and composite keys are small id
// vectors instead of re-serialised strings.

#ifndef EID_COMPILE_INTERNER_H_
#define EID_COMPILE_INTERNER_H_

#include <cstdint>
#include <limits>
#include <unordered_map>

#include "relational/tuple.h"
#include "relational/value.h"

namespace eid {
namespace compile {

/// Append-only Value -> dense id map. GetOrIntern mutates; Find does not,
/// so a fully built interner may be probed from many threads concurrently
/// (the pattern the interned key join uses: serial build side, parallel
/// probe side).
class ValueInterner {
 public:
  /// Returned by Find for values never interned. A probe-side value that
  /// was never interned cannot equal any build-side value.
  static constexpr uint32_t kNotInterned =
      std::numeric_limits<uint32_t>::max();

  /// Id of `v`, interning it on first use.
  uint32_t GetOrIntern(const Value& v) {
    auto [it, inserted] =
        ids_.emplace(v, static_cast<uint32_t>(ids_.size()));
    return it->second;
  }

  /// Id of `v` if already interned, else kNotInterned.
  uint32_t Find(const Value& v) const {
    auto it = ids_.find(v);
    return it == ids_.end() ? kNotInterned : it->second;
  }

  /// Interns `values` in order. Ids are assigned first-seen dense, so
  /// preloading a snapshot dictionary (saved in first-intern order)
  /// reproduces the ids a fresh build would assign — the id-stable
  /// handoff the loaded world's compiled programs rely on.
  void Preload(const std::vector<Value>& values) {
    ids_.reserve(ids_.size() + values.size());
    for (const Value& v : values) GetOrIntern(v);
  }

  /// Number of distinct values interned.
  size_t size() const { return ids_.size(); }

 private:
  std::unordered_map<Value, uint32_t, ValueHash> ids_;
};

/// FNV-1a over a dense-id vector — the hash for interned composite keys
/// (extended keys, derivation memo keys).
struct InternedKeyHash {
  size_t operator()(const std::vector<uint32_t>& key) const {
    size_t h = 1469598103934665603ull;
    for (uint32_t id : key) {
      h ^= id;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace compile
}  // namespace eid

#endif  // EID_COMPILE_INTERNER_H_
