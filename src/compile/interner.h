// Dense value interning for the compiled execution path.
//
// The interpreter compares string payloads wherever values meet — rule
// conditions, extended-key joins, derivation memo keys. The interner maps
// each distinct Value (under storage equality, so NULL is a regular
// internable value) to a dense uint32_t id once; from then on equality on
// the hot path is an integer compare and composite keys are small id
// vectors instead of re-serialised strings.
//
// Since the columnar world landed (DESIGN.md §4g) the interner IS the
// session dictionary: ValueInterner is an alias for exec::ValueDictionary,
// so derivation memos, pair-feature columns, the extended-key join and
// the snapshot handoff all draw ids from one id-space instead of three
// private encodings.

#ifndef EID_COMPILE_INTERNER_H_
#define EID_COMPILE_INTERNER_H_

#include <cstdint>
#include <vector>

#include "exec/columnar_world.h"

namespace eid {
namespace compile {

/// One id-space for every compiled consumer (see exec::ValueDictionary).
/// GetOrIntern mutates; Find does not, so a fully built interner may be
/// probed from many threads concurrently (the pattern the interned key
/// join uses: serial build side, parallel probe side).
using ValueInterner = exec::ValueDictionary;

/// FNV-1a over a dense-id vector — the hash for interned composite keys
/// (extended keys, derivation memo keys).
struct InternedKeyHash {
  size_t operator()(const std::vector<uint32_t>& key) const {
    size_t h = 1469598103934665603ull;
    for (uint32_t id : key) {
      h ^= id;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace compile
}  // namespace eid

#endif  // EID_COMPILE_INTERNER_H_
