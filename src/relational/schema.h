// Relation schemas: ordered, named, typed attribute lists.
//
// Attribute names are case-sensitive. Because the paper assumes schema-level
// heterogeneity has been resolved a priori (§1), semantically equivalent
// attributes in different relations may still carry *different names*
// (r_name vs s_name in the prototype); the mapping between them is recorded
// separately by eid::AttributeCorrespondence in the core library.

#ifndef EID_RELATIONAL_SCHEMA_H_
#define EID_RELATIONAL_SCHEMA_H_

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "relational/status.h"
#include "relational/value.h"

namespace eid {

/// A single named, typed attribute.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of attributes with unique names.
class Schema {
 public:
  Schema() = default;
  /// Precondition: attribute names are distinct.
  explicit Schema(std::vector<Attribute> attributes);
  Schema(std::initializer_list<Attribute> attributes)
      : Schema(std::vector<Attribute>(attributes)) {}

  /// All-string schema from attribute names (the common case in the paper,
  /// whose example attributes are all symbolic).
  static Schema OfStrings(const std::vector<std::string>& names);

  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Position of `name`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return IndexOf(name).has_value();
  }
  /// Position of `name`; error status when absent.
  Result<size_t> RequireIndex(const std::string& name) const;

  /// Appends an attribute. Error if the name already exists.
  Status Append(Attribute attribute);

  /// New schema containing the named attributes, in the given order.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// New schema with every attribute name prefixed ("r_" + name).
  Schema WithPrefix(const std::string& prefix) const;

  /// New schema = this ++ other. Error on duplicate names.
  Result<Schema> Concat(const Schema& other) const;

  /// Attribute names present in both schemas (in this schema's order).
  std::vector<std::string> CommonAttributeNames(const Schema& other) const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

  /// "name:string, cuisine:string" form, for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace eid

#endif  // EID_RELATIONAL_SCHEMA_H_
