#include "relational/catalog.h"

namespace eid {

Status Catalog::Add(Relation relation) {
  const std::string key = relation.name();
  if (key.empty()) {
    return Status::InvalidArgument("relation must be named");
  }
  if (relations_.count(key) > 0) {
    return Status::AlreadyExists("relation '" + key + "' already in catalog '" +
                                 name_ + "'");
  }
  relations_.emplace(key, std::move(relation));
  return Status::Ok();
}

Result<const Relation*> Catalog::Get(const std::string& relation_name) const {
  auto it = relations_.find(relation_name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + relation_name +
                            "' not in catalog '" + name_ + "'");
  }
  return &it->second;
}

Result<Relation*> Catalog::GetMutable(const std::string& relation_name) {
  auto it = relations_.find(relation_name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + relation_name +
                            "' not in catalog '" + name_ + "'");
  }
  return &it->second;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

Result<Relation> Catalog::WithDomainAttribute(
    const std::string& relation_name) const {
  EID_ASSIGN_OR_RETURN(const Relation* rel, Get(relation_name));
  std::vector<Attribute> attrs = rel->schema().attributes();
  for (const Attribute& a : attrs) {
    if (a.name == kDomainAttribute) {
      return Status::AlreadyExists("relation already has a domain attribute");
    }
  }
  attrs.push_back(Attribute{kDomainAttribute, ValueType::kString});
  Relation out(rel->name(), Schema(std::move(attrs)));
  for (const Row& row : rel->rows()) {
    Row extended = row;
    extended.push_back(Value::String(name_));
    EID_RETURN_IF_ERROR(out.Insert(std::move(extended)));
  }
  return out;
}

}  // namespace eid
