// ASCII table printing in the style of the paper's Prolog prototype
// (Appendix: 15-character left-aligned columns, dashed underlines, a
// centered title). Used by the bench harness to regenerate the paper's
// printed tables.

#ifndef EID_RELATIONAL_PRINTER_H_
#define EID_RELATIONAL_PRINTER_H_

#include <ostream>
#include <string>

#include "relational/relation.h"

namespace eid {

/// Formatting options for PrintTable.
struct PrintOptions {
  /// Minimum column width; columns widen to fit their longest cell.
  size_t min_column_width = 15;
  /// Title printed above the table ("matching table", ...). Empty: none.
  std::string title;
  /// Sort rows before printing for deterministic output.
  bool sort_rows = true;
};

/// Renders `relation` as the prototype-style ASCII table.
std::string FormatTable(const Relation& relation,
                        const PrintOptions& options = {});

/// FormatTable + stream write.
void PrintTable(std::ostream& os, const Relation& relation,
                const PrintOptions& options = {});

}  // namespace eid

#endif  // EID_RELATIONAL_PRINTER_H_
