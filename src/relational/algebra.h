// Relational algebra over eid::Relation.
//
// Implements the operators the paper's §4.2 matching-table construction is
// written in: projection Π, selection σ, natural join ⋈, equi-join, union ∪,
// and the outer joins (the paper's ⟗ full outer join builds both the
// extended relations and the integrated table T_RS).
//
// Join NULL semantics: join attributes compare with *storage* equality by
// default (NULL == NULL) but every joining routine takes a NullPolicy;
// matching-table construction uses kNullNeverMatches, the prototype's
// `non_null_eq`.

#ifndef EID_RELATIONAL_ALGEBRA_H_
#define EID_RELATIONAL_ALGEBRA_H_

#include <functional>
#include <string>
#include <vector>

#include "relational/relation.h"

namespace eid {

/// How NULLs behave in join/equality comparisons.
enum class NullPolicy {
  kNullEqualsNull,     // storage equality: NULL == NULL
  kNullNeverMatches,   // `non_null_eq`: NULL matches nothing
};

/// Row predicate used by Select.
using RowPredicate = std::function<bool(const TupleView&)>;

/// σ: rows of `input` satisfying `predicate`.
Relation Select(const Relation& input, const RowPredicate& predicate);

/// Π: the named attributes, duplicate rows removed (set semantics).
Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attributes);

/// Π without duplicate elimination (bag semantics).
Result<Relation> ProjectBag(const Relation& input,
                            const std::vector<std::string>& attributes);

/// ρ: renames attribute `from` to `to`.
Result<Relation> Rename(const Relation& input, const std::string& from,
                        const std::string& to);

/// Renames every attribute by position. `names.size()` must equal arity.
Result<Relation> RenameAll(const Relation& input,
                           const std::vector<std::string>& names);

/// One equality condition of an equi-join: left.attr == right.attr.
struct JoinCondition {
  std::string left_attribute;
  std::string right_attribute;
};

/// Equi-join: rows pairing left and right rows that agree on every
/// condition under `nulls`. Output schema = left ++ right attributes;
/// right-side attributes that collide with a left name are prefixed with
/// `right.name() + "."`.
Result<Relation> EquiJoin(const Relation& left, const Relation& right,
                          const std::vector<JoinCondition>& conditions,
                          NullPolicy nulls = NullPolicy::kNullEqualsNull);

/// ⋈: natural join on all common attribute names. Output keeps one copy of
/// each common attribute.
Result<Relation> NaturalJoin(const Relation& left, const Relation& right,
                             NullPolicy nulls = NullPolicy::kNullEqualsNull);

/// Left outer join on common attributes (natural); unmatched left rows are
/// padded with NULLs.
Result<Relation> LeftOuterJoin(const Relation& left, const Relation& right,
                               NullPolicy nulls = NullPolicy::kNullEqualsNull);

/// ⟗: full outer natural join; unmatched rows of either side padded with
/// NULLs (paper §4.1: T_RS = MT_RS ⋈ R ⟗ S).
Result<Relation> FullOuterJoin(const Relation& left, const Relation& right,
                               NullPolicy nulls = NullPolicy::kNullEqualsNull);

/// ∪: set union. Schemas must be identical.
Result<Relation> Union(const Relation& a, const Relation& b);

/// −: set difference (rows of a not in b). Schemas must be identical.
Result<Relation> Difference(const Relation& a, const Relation& b);

/// ×: Cartesian product.
Result<Relation> CartesianProduct(const Relation& left,
                                  const Relation& right);

/// Removes duplicate rows (storage equality).
Relation Distinct(const Relation& input);

}  // namespace eid

#endif  // EID_RELATIONAL_ALGEBRA_H_
