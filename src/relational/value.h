// Typed attribute values with SQL-style NULL.
//
// The entity-identification pipeline of Lim et al. manipulates attribute
// values from autonomous databases; missing extended-key attributes are
// represented as NULL (paper §6.2). Two equality notions coexist:
//
//  * Value::operator== — *storage* equality: NULL == NULL. Used for
//    deduplication, hashing and set semantics inside the relational
//    substrate.
//  * NonNullEq()       — *matching* equality: NULL equals nothing, not even
//    NULL. This is the prototype's `non_null_eq` predicate and the equality
//    used when joining extended keys to build the matching table.

#ifndef EID_RELATIONAL_VALUE_H_
#define EID_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "relational/status.h"

namespace eid {

/// Runtime type tag of a Value.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
};

/// Name of a ValueType ("null", "bool", "int", "double", "string").
const char* ValueTypeName(ValueType type);

/// A dynamically typed attribute value. Small, copyable, hashable.
class Value {
 public:
  /// Constructs NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Data(b)); }
  static Value Int(int64_t i) { return Value(Data(i)); }
  static Value Double(double d) { return Value(Data(d)); }
  static Value String(std::string s) { return Value(Data(std::move(s))); }
  /// Convenience: string value from a C literal.
  static Value Str(const char* s) { return String(std::string(s)); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors. Precondition: the Value holds that type.
  bool AsBool() const { return Get<bool>(); }
  int64_t AsInt() const { return Get<int64_t>(); }
  double AsDouble() const { return Get<double>(); }
  const std::string& AsString() const { return Get<std::string>(); }

  /// Numeric view: int promoted to double. Precondition: kInt or kDouble.
  double AsNumeric() const;

  /// Storage equality: same type and same payload; NULL == NULL.
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for sorting: NULL < bool < int/double (numeric order,
  /// cross-type) < string. Deterministic across runs.
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// Stable hash (FNV-1a based), consistent with operator==.
  size_t Hash() const;

  /// Display form: NULL prints as "null" (matching the prototype output);
  /// strings print verbatim (no quotes).
  std::string ToString() const;

  /// Appends the display form to `out` without materialising a temporary
  /// string per value — use when rendering many values into one buffer
  /// (TupleView::ToString, fingerprints).
  void AppendTo(std::string* out) const;

  /// Parses a display-form string back into a Value of the requested type.
  static Result<Value> Parse(const std::string& text, ValueType type);

 private:
  using Data = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Data data) : data_(std::move(data)) {}

  template <typename T>
  const T& Get() const {
    const T* p = std::get_if<T>(&data_);
    EID_CHECK(p != nullptr && "Value type mismatch");
    return *p;
  }

  Data data_;
};

/// Matching equality (the prototype's `non_null_eq`): true iff both values
/// are non-NULL and storage-equal. NULL never matches anything.
inline bool NonNullEq(const Value& a, const Value& b) {
  return !a.is_null() && !b.is_null() && a == b;
}

/// Hasher for use in unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace eid

#endif  // EID_RELATIONAL_VALUE_H_
