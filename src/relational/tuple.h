// Rows and schema-aware tuple views.

#ifndef EID_RELATIONAL_TUPLE_H_
#define EID_RELATIONAL_TUPLE_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace eid {

/// A row is a positional list of values; its interpretation is given by a
/// Schema held alongside it (normally by the owning Relation).
using Row = std::vector<Value>;

/// Storage-equality hash over a whole row.
struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x9e3779b97f4a7c15ull;
    for (const Value& v : row) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// A non-owning (schema, row) pair with by-name access. The referenced
/// schema and row must outlive the view.
class TupleView {
 public:
  TupleView(const Schema* schema, const Row* row)
      : schema_(schema), row_(row) {
    EID_CHECK(schema != nullptr && row != nullptr);
    EID_CHECK(schema->size() == row->size());
  }

  const Schema& schema() const { return *schema_; }
  const Row& row() const { return *row_; }
  size_t size() const { return row_->size(); }

  const Value& at(size_t i) const { return (*row_)[i]; }

  /// Value of the named attribute; error when absent.
  Result<Value> Get(const std::string& attribute) const {
    EID_ASSIGN_OR_RETURN(size_t i, schema_->RequireIndex(attribute));
    return (*row_)[i];
  }

  /// Value of the named attribute; NULL when the attribute is absent.
  /// Matches the prototype semantics where an unmodeled property simply
  /// fails to unify and defaults to null.
  Value GetOrNull(const std::string& attribute) const {
    std::optional<size_t> i = schema_->IndexOf(attribute);
    if (!i.has_value()) return Value::Null();
    return (*row_)[*i];
  }

  /// "(a, b, c)" display form. Renders into one buffer: each value
  /// appends in place (Value::AppendTo), so wide rows cost one
  /// amortised-linear build instead of a temporary string per column.
  std::string ToString() const {
    std::string out;
    out.reserve(2 + row_->size() * 8);
    out += '(';
    for (size_t i = 0; i < row_->size(); ++i) {
      if (i > 0) out += ", ";
      (*row_)[i].AppendTo(&out);
    }
    out += ')';
    return out;
  }

 private:
  const Schema* schema_;
  const Row* row_;
};

/// Projects `row` (described by `schema`) onto attribute positions `idx`.
inline Row ProjectRow(const Row& row, const std::vector<size_t>& idx) {
  Row out;
  out.reserve(idx.size());
  for (size_t i : idx) out.push_back(row[i]);
  return out;
}

}  // namespace eid

#endif  // EID_RELATIONAL_TUPLE_H_
