#include "relational/csv.h"

#include <fstream>
#include <sstream>

namespace eid {

Result<std::vector<std::vector<std::string>>> ParseCsv(const std::string& text,
                                                       char separator) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  const size_t n = text.size();

  auto end_field = [&]() {
    fields.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(fields);
    fields.clear();
  };

  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
      continue;
    }
    if (c == '"') {
      return Status::InvalidArgument(
          "CSV: quote inside unquoted field at offset " + std::to_string(i));
    }
    if (c == separator) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\r') {
      if (i + 1 < n && text[i + 1] == '\n') {
        end_record();
        i += 2;
        continue;
      }
      end_record();
      ++i;
      continue;
    }
    if (c == '\n') {
      end_record();
      ++i;
      continue;
    }
    field += c;
    field_started = true;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV: unterminated quoted field");
  }
  // Trailing record without final newline.
  if (field_started || !field.empty() || !fields.empty()) {
    end_record();
  }
  return records;
}

namespace {

Result<Relation> BuildFromRecords(
    const std::vector<std::vector<std::string>>& records,
    const std::string& name, const Schema* typed_schema) {
  if (records.empty()) {
    return Status::InvalidArgument("CSV: no header record");
  }
  const std::vector<std::string>& header = records.front();
  Schema schema;
  if (typed_schema != nullptr) {
    if (typed_schema->size() != header.size()) {
      return Status::InvalidArgument("CSV: header arity != schema arity");
    }
    for (size_t i = 0; i < header.size(); ++i) {
      if (typed_schema->attribute(i).name != header[i]) {
        return Status::InvalidArgument("CSV: header name '" + header[i] +
                                       "' != schema name '" +
                                       typed_schema->attribute(i).name + "'");
      }
    }
    schema = *typed_schema;
  } else {
    schema = Schema::OfStrings(header);
  }
  Relation out(name, schema);
  for (size_t r = 1; r < records.size(); ++r) {
    const std::vector<std::string>& rec = records[r];
    if (rec.size() != schema.size()) {
      return Status::InvalidArgument(
          "CSV: record " + std::to_string(r) + " has " +
          std::to_string(rec.size()) + " fields, expected " +
          std::to_string(schema.size()));
    }
    Row row;
    row.reserve(rec.size());
    for (size_t i = 0; i < rec.size(); ++i) {
      if (rec[i].empty() || rec[i] == "null") {
        row.push_back(Value::Null());
        continue;
      }
      EID_ASSIGN_OR_RETURN(Value v,
                           Value::Parse(rec[i], schema.attribute(i).type));
      row.push_back(std::move(v));
    }
    EID_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

std::string EscapeField(const std::string& field, char separator) {
  bool needs_quotes = field.find(separator) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos ||
                      field.find('\r') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Relation> ReadCsv(const std::string& text, const std::string& name,
                         char separator) {
  EID_ASSIGN_OR_RETURN(auto records, ParseCsv(text, separator));
  return BuildFromRecords(records, name, nullptr);
}

Result<Relation> ReadCsvTyped(const std::string& text, const std::string& name,
                              const Schema& schema, char separator) {
  EID_ASSIGN_OR_RETURN(auto records, ParseCsv(text, separator));
  return BuildFromRecords(records, name, &schema);
}

std::string WriteCsv(const Relation& relation, char separator) {
  std::string out;
  const Schema& schema = relation.schema();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out += separator;
    out += EscapeField(schema.attribute(i).name, separator);
  }
  out += '\n';
  for (const Row& row : relation.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += separator;
      out += EscapeField(row[i].ToString(), separator);
    }
    out += '\n';
  }
  return out;
}

Result<Relation> ReadCsvFile(const std::string& path, const std::string& name,
                             char separator) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return ReadCsv(buf.str(), name, separator);
}

Status WriteCsvFile(const Relation& relation, const std::string& path,
                    char separator) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << WriteCsv(relation, separator);
  return Status::Ok();
}

}  // namespace eid
