// Relations: named, schema-typed row collections with candidate keys.
//
// Per the paper (§3.1): each relation has one or more candidate keys; each
// tuple models some properties of a unique real-world entity; no two tuples
// of the same relation model the same entity. Candidate-key uniqueness is
// enforced on insertion when keys are declared. If no key is declared, the
// entire attribute set acts as the key (paper, footnote 1).

#ifndef EID_RELATIONAL_RELATION_H_
#define EID_RELATIONAL_RELATION_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"

namespace eid {

/// A candidate key: attribute positions within the owning relation's schema.
struct KeyDef {
  std::vector<size_t> attribute_indices;

  bool operator==(const KeyDef& other) const {
    return attribute_indices == other.attribute_indices;
  }
};

/// An in-memory relation instance.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const Row& row(size_t i) const { return rows_[i]; }
  TupleView tuple(size_t i) const { return TupleView(&schema_, &rows_[i]); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Declares a candidate key by attribute names. Keys must be declared
  /// before rows are added (so uniqueness can be enforced incrementally).
  Status DeclareKey(const std::vector<std::string>& attribute_names);

  const std::vector<KeyDef>& keys() const { return keys_; }
  bool has_keys() const { return !keys_.empty(); }

  /// Attribute names of the primary (first-declared) candidate key; the
  /// whole attribute set when no key is declared.
  std::vector<std::string> PrimaryKeyNames() const;
  /// Positions of the primary candidate key.
  std::vector<size_t> PrimaryKeyIndices() const;

  /// Pre-allocates storage for `n` rows (bulk loads, projection loops).
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Inserts a row. Errors: arity/type mismatch, NULL in a key attribute,
  /// or candidate-key uniqueness violation.
  Status Insert(Row row);

  /// Bulk-installs rows from a trusted source (snapshot load: the rows
  /// were validated on the Insert path before being saved, and the file
  /// is checksummed). Skips per-row type and key checks; key fingerprint
  /// sets are rebuilt lazily on the next Insert, so a load-then-read
  /// world never pays for them. Replaces any existing rows.
  void AdoptRows(std::vector<Row> rows);

  /// Inserts a row built from display-form strings, parsed per the schema.
  Status InsertText(const std::vector<std::string>& fields);

  /// Key values of row `i` under the primary key.
  Row PrimaryKeyOf(size_t i) const;

  /// True if some row has exactly these values under the primary key.
  bool ContainsKey(const Row& key_values) const;

  /// Index of the row with these primary-key values, if any.
  std::optional<size_t> FindByKey(const Row& key_values) const;

  /// Deterministically sorts rows (lexicographic by value order). Useful
  /// before printing or comparing relations as sets.
  void SortRows();

  /// Set-equality with another relation (same schema, same row multiset).
  bool RowsEqualUnordered(const Relation& other) const;

  /// Verifies every declared candidate key is unique over current rows.
  Status ValidateKeys() const;

 private:
  /// Hash-set entry for enforcing one candidate key.
  std::string KeyFingerprint(const Row& row, const KeyDef& key) const;

  /// Rebuilds key_sets_ from rows_ when AdoptRows marked them stale.
  void EnsureKeySets();

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<KeyDef> keys_;
  // One fingerprint set per declared key, parallel to keys_. Stale after
  // AdoptRows until the next Insert rebuilds them.
  std::vector<std::unordered_set<std::string>> key_sets_;
  bool key_sets_stale_ = false;
};

}  // namespace eid

#endif  // EID_RELATIONAL_RELATION_H_
