#include "relational/value.h"

#include <cctype>
#include <charconv>
#include <cstring>

namespace eid {
namespace {

constexpr size_t kFnvOffset = 1469598103934665603ull;
constexpr size_t kFnvPrime = 1099511628211ull;

size_t FnvBytes(const void* data, size_t n, size_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  size_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Rank used by the cross-type total order.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull: return 0;
    case ValueType::kBool: return 1;
    case ValueType::kInt: return 2;     // ints and doubles compare
    case ValueType::kDouble: return 2;  // numerically in the same rank
    case ValueType::kString: return 3;
  }
  return 4;
}

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "unknown";
}

double Value::AsNumeric() const {
  if (type() == ValueType::kInt) return static_cast<double>(AsInt());
  return AsDouble();
}

bool Value::operator<(const Value& other) const {
  int ra = TypeRank(type()), rb = TypeRank(other.type());
  if (ra != rb) return ra < rb;
  switch (type()) {
    case ValueType::kNull:
      return false;  // NULL == NULL in storage order
    case ValueType::kBool:
      return !AsBool() && other.AsBool();
    case ValueType::kInt:
    case ValueType::kDouble: {
      double a = AsNumeric(), b = other.AsNumeric();
      if (a != b) return a < b;
      // Tie-break int < double so the order is total w.r.t. operator==.
      return type() == ValueType::kInt &&
             other.type() == ValueType::kDouble;
    }
    case ValueType::kString:
      return AsString() < other.AsString();
  }
  return false;
}

size_t Value::Hash() const {
  size_t h = FnvBytes(&data_, 0, kFnvOffset);  // seed only
  uint8_t tag = static_cast<uint8_t>(type());
  h = FnvBytes(&tag, 1, h);
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool: {
      uint8_t b = AsBool() ? 1 : 0;
      h = FnvBytes(&b, 1, h);
      break;
    }
    case ValueType::kInt: {
      int64_t i = AsInt();
      h = FnvBytes(&i, sizeof(i), h);
      break;
    }
    case ValueType::kDouble: {
      double d = AsDouble();
      h = FnvBytes(&d, sizeof(d), h);
      break;
    }
    case ValueType::kString: {
      const std::string& s = AsString();
      h = FnvBytes(s.data(), s.size(), h);
      break;
    }
  }
  return h;
}

std::string Value::ToString() const {
  if (type() == ValueType::kString) return AsString();
  std::string out;
  AppendTo(&out);
  return out;
}

void Value::AppendTo(std::string* out) const {
  switch (type()) {
    case ValueType::kNull:
      out->append("null");
      return;
    case ValueType::kBool:
      out->append(AsBool() ? "true" : "false");
      return;
    case ValueType::kInt: {
      char buf[24];
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), AsInt());
      out->append(buf, static_cast<size_t>(ptr - buf));
      return;
    }
    case ValueType::kDouble: {
      char buf[64];
      int n = std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      out->append(buf, static_cast<size_t>(n));
      return;
    }
    case ValueType::kString:
      out->append(AsString());
      return;
  }
  out->append("?");
}

Result<Value> Value::Parse(const std::string& text, ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool:
      if (text == "true" || text == "1") return Value::Bool(true);
      if (text == "false" || text == "0") return Value::Bool(false);
      return Status::InvalidArgument("cannot parse bool from '" + text + "'");
    case ValueType::kInt: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::InvalidArgument("cannot parse int from '" + text + "'");
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      if (text.empty()) {
        return Status::InvalidArgument("cannot parse double from ''");
      }
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) {
        return Status::InvalidArgument("cannot parse double from '" + text +
                                       "'");
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      if (text == "null") return Value::Null();
      return Value::String(text);
  }
  return Status::InvalidArgument("unknown value type");
}

}  // namespace eid
