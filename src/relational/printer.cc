#include "relational/printer.h"

#include <algorithm>
#include <vector>

namespace eid {
namespace {

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s + " ";
  return s + std::string(width - s.size(), ' ');
}

}  // namespace

std::string FormatTable(const Relation& relation, const PrintOptions& options) {
  const Schema& schema = relation.schema();
  size_t n = schema.size();
  std::vector<size_t> widths(n, options.min_column_width);
  for (size_t i = 0; i < n; ++i) {
    widths[i] = std::max(widths[i], schema.attribute(i).name.size() + 1);
  }
  Relation sorted = relation;
  if (options.sort_rows) sorted.SortRows();
  for (const Row& row : sorted.rows()) {
    for (size_t i = 0; i < n; ++i) {
      widths[i] = std::max(widths[i], row[i].ToString().size() + 1);
    }
  }

  size_t total = 0;
  for (size_t w : widths) total += w;

  std::string out;
  if (!options.title.empty()) {
    size_t pad = total > options.title.size()
                     ? (total - options.title.size()) / 2
                     : 0;
    out += std::string(pad, ' ') + options.title + "\n";
    out += std::string(total, '-') + "\n";
  }
  for (size_t i = 0; i < n; ++i) {
    out += PadRight(schema.attribute(i).name, widths[i] - 1);
  }
  out += "\n";
  for (size_t i = 0; i < n; ++i) {
    out += PadRight(std::string(std::min<size_t>(7, widths[i] - 1), '-'),
                    widths[i] - 1);
  }
  out += "\n";
  for (const Row& row : sorted.rows()) {
    for (size_t i = 0; i < n; ++i) {
      out += PadRight(row[i].ToString(), widths[i] - 1);
    }
    out += "\n";
  }
  return out;
}

void PrintTable(std::ostream& os, const Relation& relation,
                const PrintOptions& options) {
  os << FormatTable(relation, options);
}

}  // namespace eid
