// Lightweight Status / Result error-handling primitives.
//
// The library reports recoverable errors (bad user input, constraint
// violations, malformed rule text) through Status and Result<T> rather than
// exceptions, following the convention of production database codebases.
// Programming errors (violated preconditions) abort via EID_CHECK.

#ifndef EID_RELATIONAL_STATUS_H_
#define EID_RELATIONAL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace eid {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input: bad rule text, unknown attribute...
  kNotFound,          // lookup miss: attribute, relation, tuple id
  kAlreadyExists,     // duplicate insertion where uniqueness is required
  kFailedPrecondition,// operation not applicable in the current state
  kConstraintViolation, // key / uniqueness / consistency constraint broken
  kUnsound,           // an entity-identification result violates soundness
  kInternal,          // invariant broken inside the library
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Success-or-error outcome of an operation. Cheap to copy on success.
///
/// [[nodiscard]] at class level: any call returning a Status by value
/// must consume it (propagate, check, or explicitly (void)-cast with a
/// comment saying why dropping it is sound). A silently dropped Status
/// is how constraint violations and corrupt inputs turn into wrong
/// answers instead of errors — the compiler rejects it build-wide.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Unsound(std::string msg) {
    return Status(StatusCode::kUnsound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Mirrors absl::StatusOr.
/// [[nodiscard]] like Status: a discarded Result drops both the value
/// and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; must not be OK.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      std::fprintf(stderr, "eid: Result constructed from OK status\n");
      std::abort();
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  /// Error status; OK when the Result holds a value.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  /// Precondition: ok().
  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "eid: Result::value() on error: %s\n",
                   std::get<Status>(data_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

/// Aborts with a diagnostic when `cond` is false. For invariants, not for
/// recoverable errors.
#define EID_CHECK(cond)                                       \
  do {                                                        \
    if (!(cond)) {                                            \
      ::eid::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                         \
  } while (0)

/// Propagates a non-OK Status out of the enclosing function.
#define EID_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::eid::Status _eid_st = (expr);        \
    if (!_eid_st.ok()) return _eid_st;     \
  } while (0)

/// Evaluates a Result<T> expression, assigns its value to `lhs` or
/// propagates its error.
#define EID_ASSIGN_OR_RETURN(lhs, rexpr)              \
  auto EID_CONCAT_(_eid_res, __LINE__) = (rexpr);     \
  if (!EID_CONCAT_(_eid_res, __LINE__).ok())          \
    return EID_CONCAT_(_eid_res, __LINE__).status();  \
  lhs = std::move(EID_CONCAT_(_eid_res, __LINE__)).value()

#define EID_CONCAT_INNER_(a, b) a##b
#define EID_CONCAT_(a, b) EID_CONCAT_INNER_(a, b)

}  // namespace eid

#endif  // EID_RELATIONAL_STATUS_H_
