// A catalog groups the relations of one autonomous database.
//
// The paper's setting is two (or more) independently developed databases
// DB1, DB2 each holding relations over overlapping real-world domains. A
// Catalog also carries the optional *domain attribute* (paper, Fig. 2
// discussion): a synthetic column naming the source database, which lets
// distinctness rules refer to where a tuple came from.

#ifndef EID_RELATIONAL_CATALOG_H_
#define EID_RELATIONAL_CATALOG_H_

#include <map>
#include <string>

#include "relational/relation.h"

namespace eid {

/// Name of the synthetic source-database attribute added by
/// Catalog::WithDomainAttribute.
inline constexpr const char kDomainAttribute[] = "domain";

/// A named collection of relations (one autonomous database).
class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return relations_.size(); }

  /// Adds a relation; error if one with the same name exists.
  Status Add(Relation relation);

  bool Contains(const std::string& relation_name) const {
    return relations_.count(relation_name) > 0;
  }

  Result<const Relation*> Get(const std::string& relation_name) const;
  Result<Relation*> GetMutable(const std::string& relation_name);

  /// Relation names in deterministic (sorted) order.
  std::vector<std::string> RelationNames() const;

  /// Copy of `relation_name` extended with the `domain` attribute holding
  /// this catalog's name in every row (paper §3.2: disambiguating entities
  /// from databases that model different subsets of the real world).
  Result<Relation> WithDomainAttribute(const std::string& relation_name) const;

 private:
  std::string name_;
  std::map<std::string, Relation> relations_;
};

}  // namespace eid

#endif  // EID_RELATIONAL_CATALOG_H_
