#include "relational/algebra.h"

#include <unordered_map>
#include <unordered_set>

namespace eid {
namespace {

/// Unambiguous fingerprint of selected row positions, for hash joins and
/// set operations.
std::string Fingerprint(const Row& row, const std::vector<size_t>& idx) {
  std::string fp;
  for (size_t i : idx) {
    std::string v = row[i].ToString();
    fp += std::to_string(v.size());
    fp += ':';
    fp += v;
    fp += '|';
    fp += static_cast<char>('0' + static_cast<int>(row[i].type()));
  }
  return fp;
}

std::string FingerprintAll(const Row& row) {
  std::vector<size_t> idx(row.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return Fingerprint(row, idx);
}

bool AnyNull(const Row& row, const std::vector<size_t>& idx) {
  for (size_t i : idx) {
    if (row[i].is_null()) return true;
  }
  return false;
}

/// Output schema of a join: left attributes verbatim; right attributes,
/// minus `drop_right` positions, with collision-avoiding prefix.
Schema JoinedSchema(const Relation& left, const Relation& right,
                    const std::vector<bool>& drop_right) {
  std::vector<Attribute> attrs = left.schema().attributes();
  for (size_t j = 0; j < right.schema().size(); ++j) {
    if (drop_right[j]) continue;
    Attribute a = right.schema().attribute(j);
    bool collides = false;
    for (const Attribute& l : attrs) {
      if (l.name == a.name) {
        collides = true;
        break;
      }
    }
    if (collides) {
      std::string base = right.name().empty() ? "right" : right.name();
      a.name = base + "." + a.name;
    }
    attrs.push_back(std::move(a));
  }
  return Schema(std::move(attrs));
}

struct JoinPlan {
  std::vector<size_t> left_idx;
  std::vector<size_t> right_idx;
  std::vector<bool> drop_right;  // right positions merged into left columns
};

Result<JoinPlan> PlanEquiJoin(const Relation& left, const Relation& right,
                              const std::vector<JoinCondition>& conditions,
                              bool natural) {
  JoinPlan plan;
  plan.drop_right.assign(right.schema().size(), false);
  for (const JoinCondition& c : conditions) {
    EID_ASSIGN_OR_RETURN(size_t li,
                         left.schema().RequireIndex(c.left_attribute));
    EID_ASSIGN_OR_RETURN(size_t ri,
                         right.schema().RequireIndex(c.right_attribute));
    plan.left_idx.push_back(li);
    plan.right_idx.push_back(ri);
    if (natural) plan.drop_right[ri] = true;
  }
  return plan;
}

/// Core hash join; optionally emits unmatched-left / unmatched-right rows
/// padded with NULLs (outer joins). In natural mode, a NULL-padded right
/// row still carries the left row's values in the shared columns; a
/// NULL-padded *left* row carries the right row's join values in the shared
/// columns (standard outer natural join semantics).
Result<Relation> HashJoin(const Relation& left, const Relation& right,
                          const std::vector<JoinCondition>& conditions,
                          NullPolicy nulls, bool natural, bool keep_left,
                          bool keep_right, const std::string& out_name) {
  EID_ASSIGN_OR_RETURN(JoinPlan plan,
                       PlanEquiJoin(left, right, conditions, natural));
  Schema out_schema = JoinedSchema(left, right, plan.drop_right);
  Relation out(out_name, out_schema);

  // Build side: right rows keyed by join fingerprint.
  std::unordered_map<std::string, std::vector<size_t>> build;
  build.reserve(right.size() * 2);
  for (size_t r = 0; r < right.size(); ++r) {
    if (nulls == NullPolicy::kNullNeverMatches &&
        AnyNull(right.row(r), plan.right_idx)) {
      continue;  // unmatched; may still be emitted by keep_right below
    }
    build[Fingerprint(right.row(r), plan.right_idx)].push_back(r);
  }

  std::vector<bool> right_matched(right.size(), false);
  auto emit = [&](const Row& lrow, const Row* rrow) -> Status {
    Row out_row = lrow;
    if (rrow == nullptr && natural) {
      // keep left: shared columns already hold left values; nothing to fix.
    }
    for (size_t j = 0; j < right.schema().size(); ++j) {
      if (plan.drop_right[j]) continue;
      out_row.push_back(rrow ? (*rrow)[j] : Value::Null());
    }
    return out.Insert(std::move(out_row));
  };

  for (size_t l = 0; l < left.size(); ++l) {
    const Row& lrow = left.row(l);
    bool matched = false;
    if (!(nulls == NullPolicy::kNullNeverMatches &&
          AnyNull(lrow, plan.left_idx))) {
      auto it = build.find(Fingerprint(lrow, plan.left_idx));
      if (it != build.end()) {
        for (size_t r : it->second) {
          matched = true;
          right_matched[r] = true;
          EID_RETURN_IF_ERROR(emit(lrow, &right.row(r)));
        }
      }
    }
    if (!matched && keep_left) {
      EID_RETURN_IF_ERROR(emit(lrow, nullptr));
    }
  }

  if (keep_right) {
    for (size_t r = 0; r < right.size(); ++r) {
      if (right_matched[r]) continue;
      // Left part all NULL, except natural-join shared columns which take
      // the right row's values.
      Row out_row(left.schema().size(), Value::Null());
      if (natural) {
        for (size_t c = 0; c < plan.left_idx.size(); ++c) {
          out_row[plan.left_idx[c]] = right.row(r)[plan.right_idx[c]];
        }
      }
      for (size_t j = 0; j < right.schema().size(); ++j) {
        if (plan.drop_right[j]) continue;
        out_row.push_back(right.row(r)[j]);
      }
      EID_RETURN_IF_ERROR(out.Insert(std::move(out_row)));
    }
  }
  return out;
}

std::vector<JoinCondition> NaturalConditions(const Relation& left,
                                             const Relation& right) {
  std::vector<JoinCondition> conditions;
  for (const std::string& name :
       left.schema().CommonAttributeNames(right.schema())) {
    conditions.push_back(JoinCondition{name, name});
  }
  return conditions;
}

}  // namespace

Relation Select(const Relation& input, const RowPredicate& predicate) {
  Relation out(input.name(), input.schema());
  for (size_t i = 0; i < input.size(); ++i) {
    if (predicate(input.tuple(i))) {
      Status st = out.Insert(input.row(i));
      EID_CHECK(st.ok());
    }
  }
  return out;
}

Result<Relation> ProjectBag(const Relation& input,
                            const std::vector<std::string>& attributes) {
  EID_ASSIGN_OR_RETURN(Schema schema, input.schema().Project(attributes));
  std::vector<size_t> idx;
  idx.reserve(attributes.size());
  for (const std::string& a : attributes) {
    EID_ASSIGN_OR_RETURN(size_t i, input.schema().RequireIndex(a));
    idx.push_back(i);
  }
  Relation out(input.name(), schema);
  out.Reserve(input.size());
  for (const Row& row : input.rows()) {
    EID_RETURN_IF_ERROR(out.Insert(ProjectRow(row, idx)));
  }
  return out;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attributes) {
  EID_ASSIGN_OR_RETURN(Relation bag, ProjectBag(input, attributes));
  return Distinct(bag);
}

namespace {

/// Builds the renamed relation, re-declaring the input's candidate keys
/// (key positions are unaffected by renaming).
Result<Relation> RebuildRenamed(const Relation& input,
                                std::vector<Attribute> attrs) {
  Schema schema(std::move(attrs));
  Relation out(input.name(), schema);
  for (const KeyDef& key : input.keys()) {
    std::vector<std::string> names;
    for (size_t i : key.attribute_indices) {
      names.push_back(schema.attribute(i).name);
    }
    EID_RETURN_IF_ERROR(out.DeclareKey(names));
  }
  for (const Row& row : input.rows()) {
    EID_RETURN_IF_ERROR(out.Insert(row));
  }
  return out;
}

}  // namespace

Result<Relation> Rename(const Relation& input, const std::string& from,
                        const std::string& to) {
  EID_ASSIGN_OR_RETURN(size_t i, input.schema().RequireIndex(from));
  std::vector<Attribute> attrs = input.schema().attributes();
  if (from != to && input.schema().Contains(to)) {
    return Status::AlreadyExists("attribute '" + to + "' already exists");
  }
  attrs[i].name = to;
  return RebuildRenamed(input, std::move(attrs));
}

Result<Relation> RenameAll(const Relation& input,
                           const std::vector<std::string>& names) {
  if (names.size() != input.schema().size()) {
    return Status::InvalidArgument("RenameAll: arity mismatch");
  }
  std::vector<Attribute> attrs = input.schema().attributes();
  for (size_t i = 0; i < attrs.size(); ++i) attrs[i].name = names[i];
  return RebuildRenamed(input, std::move(attrs));
}

Result<Relation> EquiJoin(const Relation& left, const Relation& right,
                          const std::vector<JoinCondition>& conditions,
                          NullPolicy nulls) {
  return HashJoin(left, right, conditions, nulls, /*natural=*/false,
                  /*keep_left=*/false, /*keep_right=*/false,
                  left.name() + "_join_" + right.name());
}

Result<Relation> NaturalJoin(const Relation& left, const Relation& right,
                             NullPolicy nulls) {
  return HashJoin(left, right, NaturalConditions(left, right), nulls,
                  /*natural=*/true, /*keep_left=*/false,
                  /*keep_right=*/false, left.name() + "_join_" + right.name());
}

Result<Relation> LeftOuterJoin(const Relation& left, const Relation& right,
                               NullPolicy nulls) {
  return HashJoin(left, right, NaturalConditions(left, right), nulls,
                  /*natural=*/true, /*keep_left=*/true,
                  /*keep_right=*/false,
                  left.name() + "_lojoin_" + right.name());
}

Result<Relation> FullOuterJoin(const Relation& left, const Relation& right,
                               NullPolicy nulls) {
  return HashJoin(left, right, NaturalConditions(left, right), nulls,
                  /*natural=*/true, /*keep_left=*/true, /*keep_right=*/true,
                  left.name() + "_fojoin_" + right.name());
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("Union: schema mismatch: [" +
                                   a.schema().ToString() + "] vs [" +
                                   b.schema().ToString() + "]");
  }
  Relation out(a.name(), a.schema());
  std::unordered_set<std::string> seen;
  auto add = [&](const Row& row) -> Status {
    if (seen.insert(FingerprintAll(row)).second) {
      return out.Insert(row);
    }
    return Status::Ok();
  };
  for (const Row& row : a.rows()) EID_RETURN_IF_ERROR(add(row));
  for (const Row& row : b.rows()) EID_RETURN_IF_ERROR(add(row));
  return out;
}

Result<Relation> Difference(const Relation& a, const Relation& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("Difference: schema mismatch");
  }
  std::unordered_set<std::string> exclude;
  for (const Row& row : b.rows()) exclude.insert(FingerprintAll(row));
  Relation out(a.name(), a.schema());
  std::unordered_set<std::string> seen;
  for (const Row& row : a.rows()) {
    std::string fp = FingerprintAll(row);
    if (exclude.count(fp) == 0 && seen.insert(fp).second) {
      EID_RETURN_IF_ERROR(out.Insert(row));
    }
  }
  return out;
}

Result<Relation> CartesianProduct(const Relation& left,
                                  const Relation& right) {
  std::vector<bool> drop(right.schema().size(), false);
  Schema schema = JoinedSchema(left, right, drop);
  Relation out(left.name() + "_x_" + right.name(), schema);
  for (const Row& l : left.rows()) {
    for (const Row& r : right.rows()) {
      Row row = l;
      row.insert(row.end(), r.begin(), r.end());
      EID_RETURN_IF_ERROR(out.Insert(std::move(row)));
    }
  }
  return out;
}

Relation Distinct(const Relation& input) {
  Relation out(input.name(), input.schema());
  std::unordered_set<std::string> seen;
  for (const Row& row : input.rows()) {
    if (seen.insert(FingerprintAll(row)).second) {
      Status st = out.Insert(row);
      EID_CHECK(st.ok());
    }
  }
  return out;
}

}  // namespace eid
