#include "relational/relation.h"

#include <algorithm>
#include <map>

namespace eid {

Status Relation::DeclareKey(const std::vector<std::string>& attribute_names) {
  if (!rows_.empty()) {
    return Status::FailedPrecondition(
        "keys must be declared before rows are inserted");
  }
  if (attribute_names.empty()) {
    return Status::InvalidArgument("candidate key must be non-empty");
  }
  KeyDef key;
  for (const std::string& n : attribute_names) {
    EID_ASSIGN_OR_RETURN(size_t i, schema_.RequireIndex(n));
    key.attribute_indices.push_back(i);
  }
  for (const KeyDef& existing : keys_) {
    if (existing == key) {
      return Status::AlreadyExists("candidate key already declared");
    }
  }
  keys_.push_back(std::move(key));
  key_sets_.emplace_back();
  return Status::Ok();
}

std::vector<std::string> Relation::PrimaryKeyNames() const {
  std::vector<std::string> out;
  if (keys_.empty()) {
    for (const Attribute& a : schema_.attributes()) out.push_back(a.name);
    return out;
  }
  for (size_t i : keys_.front().attribute_indices) {
    out.push_back(schema_.attribute(i).name);
  }
  return out;
}

std::vector<size_t> Relation::PrimaryKeyIndices() const {
  if (keys_.empty()) {
    std::vector<size_t> all(schema_.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }
  return keys_.front().attribute_indices;
}

std::string Relation::KeyFingerprint(const Row& row, const KeyDef& key) const {
  // Length-prefixed concatenation: unambiguous across value boundaries.
  std::string fp;
  for (size_t i : key.attribute_indices) {
    std::string v = row[i].ToString();
    fp += std::to_string(v.size());
    fp += ':';
    fp += v;
    fp += '|';
    fp += static_cast<char>('0' + static_cast<int>(row[i].type()));
  }
  return fp;
}

void Relation::AdoptRows(std::vector<Row> rows) {
  rows_ = std::move(rows);
  for (auto& set : key_sets_) set.clear();
  key_sets_stale_ = !keys_.empty();
}

void Relation::EnsureKeySets() {
  if (!key_sets_stale_) return;
  key_sets_stale_ = false;
  for (size_t k = 0; k < keys_.size(); ++k) {
    key_sets_[k].clear();
    key_sets_[k].reserve(rows_.size());
    for (const Row& row : rows_) {
      key_sets_[k].insert(KeyFingerprint(row, keys_[k]));
    }
  }
}

Status Relation::Insert(Row row) {
  EnsureKeySets();
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.size()) + " for relation '" + name_ + "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;  // NULL allowed in non-key attributes
    if (row[i].type() != schema_.attribute(i).type) {
      return Status::InvalidArgument(
          "type mismatch at attribute '" + schema_.attribute(i).name +
          "': expected " + ValueTypeName(schema_.attribute(i).type) +
          ", got " + ValueTypeName(row[i].type()));
    }
  }
  for (const KeyDef& key : keys_) {
    for (size_t i : key.attribute_indices) {
      if (row[i].is_null()) {
        return Status::ConstraintViolation(
            "NULL in key attribute '" + schema_.attribute(i).name +
            "' of relation '" + name_ + "'");
      }
    }
  }
  for (size_t k = 0; k < keys_.size(); ++k) {
    std::string fp = KeyFingerprint(row, keys_[k]);
    if (key_sets_[k].count(fp) > 0) {
      return Status::ConstraintViolation(
          "candidate-key violation in relation '" + name_ +
          "': duplicate key " + TupleView(&schema_, &row).ToString());
    }
  }
  for (size_t k = 0; k < keys_.size(); ++k) {
    key_sets_[k].insert(KeyFingerprint(row, keys_[k]));
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

Status Relation::InsertText(const std::vector<std::string>& fields) {
  if (fields.size() != schema_.size()) {
    return Status::InvalidArgument("field count mismatch");
  }
  Row row;
  row.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    EID_ASSIGN_OR_RETURN(Value v,
                         Value::Parse(fields[i], schema_.attribute(i).type));
    row.push_back(std::move(v));
  }
  return Insert(std::move(row));
}

Row Relation::PrimaryKeyOf(size_t i) const {
  return ProjectRow(rows_[i], PrimaryKeyIndices());
}

bool Relation::ContainsKey(const Row& key_values) const {
  return FindByKey(key_values).has_value();
}

std::optional<size_t> Relation::FindByKey(const Row& key_values) const {
  std::vector<size_t> key = PrimaryKeyIndices();
  if (key.size() != key_values.size()) return std::nullopt;
  for (size_t r = 0; r < rows_.size(); ++r) {
    bool match = true;
    for (size_t j = 0; j < key.size(); ++j) {
      if (!(rows_[r][key[j]] == key_values[j])) {
        match = false;
        break;
      }
    }
    if (match) return r;
  }
  return std::nullopt;
}

void Relation::SortRows() {
  std::sort(rows_.begin(), rows_.end(), [](const Row& a, const Row& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  });
}

bool Relation::RowsEqualUnordered(const Relation& other) const {
  if (!(schema_ == other.schema_)) return false;
  if (rows_.size() != other.rows_.size()) return false;
  std::unordered_map<std::string, int> counts;
  RowHash hasher;
  (void)hasher;
  auto fingerprint = [this](const Row& row) {
    KeyDef all;
    for (size_t i = 0; i < schema_.size(); ++i) {
      all.attribute_indices.push_back(i);
    }
    return KeyFingerprint(row, all);
  };
  for (const Row& r : rows_) counts[fingerprint(r)]++;
  for (const Row& r : other.rows_) {
    auto it = counts.find(fingerprint(r));
    if (it == counts.end() || it->second == 0) return false;
    it->second--;
  }
  return true;
}

Status Relation::ValidateKeys() const {
  for (const KeyDef& key : keys_) {
    std::unordered_set<std::string> seen;
    for (const Row& row : rows_) {
      if (!seen.insert(KeyFingerprint(row, key)).second) {
        return Status::ConstraintViolation(
            "relation '" + name_ + "' violates a declared candidate key");
      }
    }
  }
  return Status::Ok();
}

}  // namespace eid
