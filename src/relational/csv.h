// CSV import/export for relations.
//
// The paper's data-wrangling step (loading autonomous source relations) is
// reproduced with a small RFC-4180-style reader/writer: quoted fields,
// embedded commas/quotes/newlines, header row carrying attribute names.

#ifndef EID_RELATIONAL_CSV_H_
#define EID_RELATIONAL_CSV_H_

#include <string>
#include <vector>

#include "relational/relation.h"

namespace eid {

/// Parses CSV text into rows of string fields. Handles quoted fields with
/// embedded separators, escaped quotes ("") and both \n and \r\n endings.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text, char separator = ',');

/// Reads a relation from CSV text. The first record is the header; every
/// attribute takes the corresponding type from `schema` when given,
/// otherwise all attributes are strings. The literal field `null` (and an
/// empty field) parse as NULL.
Result<Relation> ReadCsv(const std::string& text, const std::string& name,
                         char separator = ',');
Result<Relation> ReadCsvTyped(const std::string& text, const std::string& name,
                              const Schema& schema, char separator = ',');

/// Serialises a relation to CSV (header + rows). NULL writes as `null`.
std::string WriteCsv(const Relation& relation, char separator = ',');

/// File convenience wrappers.
Result<Relation> ReadCsvFile(const std::string& path, const std::string& name,
                             char separator = ',');
Status WriteCsvFile(const Relation& relation, const std::string& path,
                    char separator = ',');

}  // namespace eid

#endif  // EID_RELATIONAL_CSV_H_
