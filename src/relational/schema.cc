#include "relational/schema.h"

#include <unordered_set>

namespace eid {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  std::unordered_set<std::string> seen;
  for (const Attribute& a : attributes_) {
    EID_CHECK(seen.insert(a.name).second && "duplicate attribute name");
  }
}

Schema Schema::OfStrings(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const std::string& n : names) {
    attrs.push_back(Attribute{n, ValueType::kString});
  }
  return Schema(std::move(attrs));
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::RequireIndex(const std::string& name) const {
  std::optional<size_t> i = IndexOf(name);
  if (!i.has_value()) {
    return Status::NotFound("attribute '" + name + "' not in schema [" +
                            ToString() + "]");
  }
  return *i;
}

Status Schema::Append(Attribute attribute) {
  if (Contains(attribute.name)) {
    return Status::AlreadyExists("attribute '" + attribute.name +
                                 "' already in schema");
  }
  attributes_.push_back(std::move(attribute));
  return Status::Ok();
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const std::string& n : names) {
    EID_ASSIGN_OR_RETURN(size_t i, RequireIndex(n));
    attrs.push_back(attributes_[i]);
  }
  return Schema(std::move(attrs));
}

Schema Schema::WithPrefix(const std::string& prefix) const {
  std::vector<Attribute> attrs = attributes_;
  for (Attribute& a : attrs) a.name = prefix + a.name;
  return Schema(std::move(attrs));
}

Result<Schema> Schema::Concat(const Schema& other) const {
  std::vector<Attribute> attrs = attributes_;
  for (const Attribute& a : other.attributes_) {
    for (const Attribute& mine : attributes_) {
      if (mine.name == a.name) {
        return Status::AlreadyExists("attribute '" + a.name +
                                     "' present in both schemas");
      }
    }
    attrs.push_back(a);
  }
  return Schema(std::move(attrs));
}

std::vector<std::string> Schema::CommonAttributeNames(
    const Schema& other) const {
  std::vector<std::string> out;
  for (const Attribute& a : attributes_) {
    if (other.Contains(a.name)) out.push_back(a.name);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ':';
    out += ValueTypeName(attributes_[i].type);
  }
  return out;
}

}  // namespace eid
