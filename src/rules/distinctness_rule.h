// Distinctness rules (paper §3.2) and the Proposition 1 bridge to ILFDs.
//
// A distinctness rule has the form
//
//   ∀e1,e2 ∈ E:  P(e1.A1,…,e1.Am, e2.B1,…,e2.Bn) → (e1 ≢ e2)
//
// Well-formedness: P must involve some attribute from each of e1 and e2.
// Example (the paper's r3): e1.speciality = "Mughalai" ∧ e2.cuisine ≠
// "Indian" → e1 ≠ e2.
//
// Proposition 1: `(E.A1=a1) ∧…∧ (E.An=an) → (E.B=b)` is an ILFD iff
// `∀e1,e2: (e1.A1=a1) ∧…∧ (e1.An=an) ∧ (e2.B≠b) → e1 ≠ e2` is a
// distinctness rule. The converters below realise both directions.

#ifndef EID_RULES_DISTINCTNESS_RULE_H_
#define EID_RULES_DISTINCTNESS_RULE_H_

#include <string>
#include <vector>

#include "ilfd/ilfd.h"
#include "rules/predicate.h"

namespace eid {

/// A rule asserting two entities are distinct.
class DistinctnessRule {
 public:
  DistinctnessRule() = default;
  DistinctnessRule(std::string name, std::vector<Predicate> predicates)
      : name_(std::move(name)), predicates_(std::move(predicates)) {}

  const std::string& name() const { return name_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  /// Well-formedness: P involves at least one attribute of e1 and one of e2.
  Status Validate() const;

  /// Sorted, deduplicated attribute names the predicates mention (either
  /// entity). Mirrors IdentityRule::ReferencedAttributes.
  std::vector<std::string> ReferencedAttributes() const;

  /// Three-valued antecedent evaluation. kTrue asserts e1 ≢ e2.
  Truth Applies(const TupleView& e1, const TupleView& e2) const;

  /// "... -> e1 != e2" display form.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Predicate> predicates_;
};

/// Proposition 1, forward direction: the distinctness rule induced by an
/// ILFD. Requires a single-consequent ILFD (decompose first).
Result<DistinctnessRule> DistinctnessRuleFromIlfd(const Ilfd& ilfd);

/// Proposition 1, reverse direction: recovers the ILFD from a distinctness
/// rule of the induced shape — every predicate an e1-attribute/constant
/// equality except exactly one `e2.B != b`. Error for other shapes (not
/// every distinctness rule corresponds to an ILFD).
Result<Ilfd> IlfdFromDistinctnessRule(const DistinctnessRule& rule);

/// Parses a distinctness rule from conjunction syntax, e.g.
///   `e1.speciality = "Mughalai" & e2.cuisine != "Indian"`.
Result<DistinctnessRule> ParseDistinctnessRule(const std::string& name,
                                               const std::string& text);

}  // namespace eid

#endif  // EID_RULES_DISTINCTNESS_RULE_H_
