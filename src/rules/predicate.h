// The predicate language of identity and distinctness rules (paper §3.2).
//
// Rules quantify over two entities e1, e2 ∈ E and take a conjunction of
// predicates, each of the form
//
//     e_i.attribute  op  e_j.attribute      (attribute–attribute)
//     e_i.attribute  op  constant           (attribute–constant)
//
// with op ∈ {=, <, >, <=, >=, !=}. Predicates evaluate over a *pair* of
// tuples; NULL operands make a predicate undetermined, so the conjunction
// evaluates in three-valued logic {true, false, unknown}.

#ifndef EID_RULES_PREDICATE_H_
#define EID_RULES_PREDICATE_H_

#include <string>
#include <vector>

#include "relational/tuple.h"

namespace eid {

/// Comparison operator of a rule predicate.
enum class CompareOp { kEq, kLt, kGt, kLe, kGe, kNe };

const char* CompareOpName(CompareOp op);  // "=", "<", ...

/// Three-valued logic value.
enum class Truth { kFalse = 0, kTrue = 1, kUnknown = 2 };

/// Kleene conjunction.
Truth And(Truth a, Truth b);
/// Kleene negation.
Truth Not(Truth t);

/// One side of a predicate: either entity i's attribute, or a constant.
struct Operand {
  enum class Kind { kEntityAttribute, kConstant } kind = Kind::kConstant;
  /// 1 or 2 — which entity of the rule (kEntityAttribute only).
  int entity = 1;
  std::string attribute;  // kEntityAttribute only
  Value constant;         // kConstant only

  static Operand Attr(int entity, std::string attribute) {
    Operand o;
    o.kind = Kind::kEntityAttribute;
    o.entity = entity;
    o.attribute = std::move(attribute);
    return o;
  }
  static Operand Const(Value v) {
    Operand o;
    o.kind = Kind::kConstant;
    o.constant = std::move(v);
    return o;
  }

  bool operator==(const Operand& other) const {
    return kind == other.kind && entity == other.entity &&
           attribute == other.attribute && constant == other.constant;
  }

  /// "e1.cuisine" or "Chinese" display form.
  std::string ToString() const;
};

/// One predicate: lhs op rhs.
struct Predicate {
  Operand lhs;
  CompareOp op = CompareOp::kEq;
  Operand rhs;

  bool operator==(const Predicate& other) const {
    return lhs == other.lhs && op == other.op && rhs == other.rhs;
  }

  /// Evaluates over the pair (e1, e2). NULL or missing attribute values
  /// yield kUnknown (no predicate holds of a value we don't know).
  Truth Evaluate(const TupleView& e1, const TupleView& e2) const;

  /// "e1.cuisine = e2.cuisine" display form.
  std::string ToString() const;
};

/// Evaluates a conjunction of predicates in Kleene logic.
Truth EvaluateConjunction(const std::vector<Predicate>& predicates,
                          const TupleView& e1, const TupleView& e2);

/// Compares two non-NULL values under `op`. Numeric operands compare
/// numerically (int/double mixed); strings lexicographically; mixed
/// incomparable kinds are equal only never (kEq false, kNe true) and
/// undetermined for the ordering operators.
Truth CompareValues(const Value& a, CompareOp op, const Value& b);

}  // namespace eid

#endif  // EID_RULES_PREDICATE_H_
