#include "rules/identity_rule.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace eid {
namespace {

/// Union–find over operand nodes for congruence closure.
class UnionFind {
 public:
  int NodeOf(const std::string& key) {
    auto [it, inserted] = index_.emplace(key, static_cast<int>(parent_.size()));
    if (inserted) parent_.push_back(it->second);
    return it->second;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(int a, int b) { parent_[Find(a)] = Find(b); }
  bool Same(int a, int b) { return Find(a) == Find(b); }

 private:
  std::map<std::string, int> index_;
  std::vector<int> parent_;
};

std::string AttrNode(int entity, const std::string& attribute) {
  return "e" + std::to_string(entity) + "." + attribute;
}

std::string ConstNode(const Value& v) {
  return "c:" + std::string(ValueTypeName(v.type())) + ":" + v.ToString();
}

}  // namespace

IdentityRule IdentityRule::KeyEquivalence(
    const std::string& name, const std::vector<std::string>& attrs) {
  std::vector<Predicate> predicates;
  predicates.reserve(attrs.size());
  for (const std::string& a : attrs) {
    predicates.push_back(
        Predicate{Operand::Attr(1, a), CompareOp::kEq, Operand::Attr(2, a)});
  }
  return IdentityRule(name, std::move(predicates));
}

std::vector<std::string> IdentityRule::ReferencedAttributes() const {
  std::set<std::string> attrs;
  for (const Predicate& p : predicates_) {
    if (p.lhs.kind == Operand::Kind::kEntityAttribute) {
      attrs.insert(p.lhs.attribute);
    }
    if (p.rhs.kind == Operand::Kind::kEntityAttribute) {
      attrs.insert(p.rhs.attribute);
    }
  }
  return std::vector<std::string>(attrs.begin(), attrs.end());
}

namespace {

/// Builds the congruence closure of the rule's equality predicates.
/// Returns (union-find, unsatisfiable?) — unsatisfiable when a class holds
/// two distinct constants or an equality contradicts a != on constants.
std::pair<UnionFind, bool> CloseEqualities(
    const std::vector<Predicate>& predicates) {
  UnionFind uf;
  std::map<int, Value> constants;  // representative -> constant value
  bool unsat = false;

  auto node = [&](const Operand& o) {
    if (o.kind == Operand::Kind::kEntityAttribute) {
      return uf.NodeOf(AttrNode(o.entity, o.attribute));
    }
    return uf.NodeOf(ConstNode(o.constant));
  };

  // Register constants before merging so values can be tracked.
  for (const Predicate& p : predicates) {
    for (const Operand* o : {&p.lhs, &p.rhs}) {
      if (o->kind == Operand::Kind::kConstant) {
        constants.emplace(node(*o), o->constant);
      }
    }
  }
  for (const Predicate& p : predicates) {
    if (p.op != CompareOp::kEq) continue;
    int a = node(p.lhs), b = node(p.rhs);
    int ra = uf.Find(a), rb = uf.Find(b);
    if (ra == rb) continue;
    auto ca = constants.find(ra), cb = constants.find(rb);
    if (ca != constants.end() && cb != constants.end() &&
        !(ca->second == cb->second)) {
      unsat = true;  // two distinct constants forced equal
    }
    uf.Merge(ra, rb);
    int root = uf.Find(ra);
    if (ca != constants.end()) constants.emplace(root, ca->second);
    else if (cb != constants.end()) constants.emplace(root, cb->second);
  }
  return {std::move(uf), unsat};
}

}  // namespace

bool IdentityRule::IsVacuous() const {
  return CloseEqualities(predicates_).second;
}

Status IdentityRule::Validate() const {
  if (predicates_.empty()) {
    return Status::InvalidArgument("identity rule '" + name_ +
                                   "' has no predicates");
  }
  auto [uf, unsat] = CloseEqualities(predicates_);
  if (unsat) return Status::Ok();  // vacuously well-formed
  for (const std::string& attr : ReferencedAttributes()) {
    int n1 = uf.NodeOf(AttrNode(1, attr));
    int n2 = uf.NodeOf(AttrNode(2, attr));
    if (!uf.Same(n1, n2)) {
      return Status::InvalidArgument(
          "identity rule '" + name_ + "': predicates do not imply e1." + attr +
          " = e2." + attr +
          " (paper §3.2 requires P to imply equality on every referenced "
          "attribute)");
    }
  }
  return Status::Ok();
}

Truth IdentityRule::Matches(const TupleView& e1, const TupleView& e2) const {
  return EvaluateConjunction(predicates_, e1, e2);
}

std::string IdentityRule::ToString() const {
  std::string out;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) out += " & ";
    out += "(" + predicates_[i].ToString() + ")";
  }
  out += " -> e1 == e2";
  return out;
}

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitTop(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::string cur;
  bool in_quotes = false;
  for (char c : s) {
    if (c == '"') in_quotes = !in_quotes;
    if (c == delim && !in_quotes) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

Result<Operand> ParseOperand(const std::string& raw) {
  std::string token = Trim(raw);
  if (token.empty()) {
    return Status::InvalidArgument("empty operand in rule predicate");
  }
  if ((token.rfind("e1.", 0) == 0 || token.rfind("e2.", 0) == 0) &&
      token.size() > 3) {
    int entity = token[1] - '0';
    return Operand::Attr(entity, token.substr(3));
  }
  if (token.front() == '"') {
    if (token.size() < 2 || token.back() != '"') {
      return Status::InvalidArgument("unterminated quoted constant: " + token);
    }
    return Operand::Const(Value::String(token.substr(1, token.size() - 2)));
  }
  // Numeric constant?
  bool numeric = !token.empty(), has_dot = false;
  for (size_t i = 0; i < token.size(); ++i) {
    char c = token[i];
    if (c == '-' && i == 0) continue;
    if (c == '.' && !has_dot) {
      has_dot = true;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) numeric = false;
  }
  if (numeric && token != "-" && token != ".") {
    Result<Value> v = Value::Parse(
        token, has_dot ? ValueType::kDouble : ValueType::kInt);
    if (v.ok()) return Operand::Const(std::move(v).value());
  }
  return Operand::Const(Value::String(token));
}

Result<Predicate> ParsePredicateText(const std::string& text) {
  // Find the operator, longest-first, outside quotes.
  static const std::pair<const char*, CompareOp> kOps[] = {
      {"<=", CompareOp::kLe}, {">=", CompareOp::kGe}, {"!=", CompareOp::kNe},
      {"=", CompareOp::kEq},  {"<", CompareOp::kLt},  {">", CompareOp::kGt},
  };
  bool in_quotes = false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '"') {
      in_quotes = !in_quotes;
      continue;
    }
    if (in_quotes) continue;
    for (const auto& [symbol, op] : kOps) {
      size_t len = std::char_traits<char>::length(symbol);
      if (text.compare(i, len, symbol) == 0) {
        EID_ASSIGN_OR_RETURN(Operand lhs, ParseOperand(text.substr(0, i)));
        EID_ASSIGN_OR_RETURN(Operand rhs, ParseOperand(text.substr(i + len)));
        return Predicate{std::move(lhs), op, std::move(rhs)};
      }
    }
  }
  return Status::InvalidArgument("no comparison operator in predicate: '" +
                                 text + "'");
}

}  // namespace

Result<std::vector<Predicate>> ParsePredicateConjunction(
    const std::string& text) {
  std::vector<Predicate> predicates;
  for (const std::string& piece : SplitTop(text, '&')) {
    std::string p = Trim(piece);
    if (p.empty()) {
      return Status::InvalidArgument("empty conjunct in rule: '" + text + "'");
    }
    EID_ASSIGN_OR_RETURN(Predicate pred, ParsePredicateText(p));
    predicates.push_back(std::move(pred));
  }
  return predicates;
}

Result<IdentityRule> ParseIdentityRule(const std::string& name,
                                       const std::string& text) {
  EID_ASSIGN_OR_RETURN(std::vector<Predicate> predicates,
                       ParsePredicateConjunction(text));
  return IdentityRule(name, std::move(predicates));
}

}  // namespace eid
