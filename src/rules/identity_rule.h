// Identity rules (paper §3.2).
//
// An identity rule for entity set E has the form
//
//   ∀e1,e2 ∈ E:  P(e1.A1,…,e1.Am, e2.B1,…,e2.Bn) → (e1 ≡ e2)
//
// where P is a conjunction of predicates and — the well-formedness
// condition — for each attribute A appearing in P on either entity, P must
// imply e1.A = e2.A. (The paper's r1 with cuisine="Chinese" on both
// entities is an identity rule; r2, constraining only e1, is not.)
//
// Validation implements the implication check by congruence closure
// (union–find) over the rule's equality predicates: e1.A ~ e2.B for
// attribute–attribute equalities, e_i.A ~ const for attribute–constant
// equalities. A rule whose antecedent is unsatisfiable (two distinct
// constants forced equal) is vacuously well-formed and is reported as such.

#ifndef EID_RULES_IDENTITY_RULE_H_
#define EID_RULES_IDENTITY_RULE_H_

#include <string>
#include <vector>

#include "rules/predicate.h"

namespace eid {

/// A validated-on-demand identity rule.
class IdentityRule {
 public:
  IdentityRule() = default;
  IdentityRule(std::string name, std::vector<Predicate> predicates)
      : name_(std::move(name)), predicates_(std::move(predicates)) {}

  const std::string& name() const { return name_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  /// The extended-key equivalence rule for attributes {A1..Ak} (paper
  /// §4.1): ∀e1,e2: (e1.A1=e2.A1) ∧ … ∧ (e1.Ak=e2.Ak) → e1 ≡ e2.
  static IdentityRule KeyEquivalence(const std::string& name,
                                     const std::vector<std::string>& attrs);

  /// Checks the identity-rule well-formedness condition. OK when every
  /// attribute referenced by the predicates is forced equal across the two
  /// entities (or the antecedent is unsatisfiable).
  Status Validate() const;

  /// True when the antecedent cannot be satisfied by any entity pair.
  bool IsVacuous() const;

  /// Three-valued antecedent evaluation over a tuple pair. kTrue means the
  /// rule asserts e1 ≡ e2.
  Truth Matches(const TupleView& e1, const TupleView& e2) const;

  /// Attributes referenced by the predicates (deduplicated, sorted).
  std::vector<std::string> ReferencedAttributes() const;

  /// "(e1.name = e2.name) & ... -> e1 == e2" display form.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Predicate> predicates_;
};

/// Parses an identity rule from the conjunction syntax, e.g.
///   `e1.cuisine = "Chinese" & e2.cuisine = "Chinese"`
/// Operators: = < > <= >= !=. Operands: eN.attribute, "quoted" or bare
/// constants (numeric tokens parse as numbers).
Result<IdentityRule> ParseIdentityRule(const std::string& name,
                                       const std::string& text);

/// Parses a conjunction of predicates (shared with distinctness rules).
Result<std::vector<Predicate>> ParsePredicateConjunction(
    const std::string& text);

}  // namespace eid

#endif  // EID_RULES_IDENTITY_RULE_H_
