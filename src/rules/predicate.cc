#include "rules/predicate.h"

namespace eid {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kLt: return "<";
    case CompareOp::kGt: return ">";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGe: return ">=";
    case CompareOp::kNe: return "!=";
  }
  return "?";
}

Truth And(Truth a, Truth b) {
  if (a == Truth::kFalse || b == Truth::kFalse) return Truth::kFalse;
  if (a == Truth::kUnknown || b == Truth::kUnknown) return Truth::kUnknown;
  return Truth::kTrue;
}

Truth Not(Truth t) {
  switch (t) {
    case Truth::kTrue: return Truth::kFalse;
    case Truth::kFalse: return Truth::kTrue;
    case Truth::kUnknown: return Truth::kUnknown;
  }
  return Truth::kUnknown;
}

std::string Operand::ToString() const {
  if (kind == Kind::kEntityAttribute) {
    return "e" + std::to_string(entity) + "." + attribute;
  }
  if (constant.type() == ValueType::kString) {
    return "\"" + constant.ToString() + "\"";
  }
  return constant.ToString();
}

namespace {

bool BothNumeric(const Value& a, const Value& b) {
  auto numeric = [](const Value& v) {
    return v.type() == ValueType::kInt || v.type() == ValueType::kDouble;
  };
  return numeric(a) && numeric(b);
}

Truth FromBool(bool b) { return b ? Truth::kTrue : Truth::kFalse; }

}  // namespace

Truth CompareValues(const Value& a, CompareOp op, const Value& b) {
  if (a.is_null() || b.is_null()) return Truth::kUnknown;
  const bool comparable = a.type() == b.type() || BothNumeric(a, b);
  if (!comparable) {
    // Cross-kind values are never equal; their ordering is undefined.
    if (op == CompareOp::kEq) return Truth::kFalse;
    if (op == CompareOp::kNe) return Truth::kTrue;
    return Truth::kUnknown;
  }
  switch (op) {
    case CompareOp::kEq: return FromBool(a == b);
    case CompareOp::kNe: return FromBool(a != b);
    case CompareOp::kLt: return FromBool(a < b);
    case CompareOp::kGt: return FromBool(a > b);
    case CompareOp::kLe: return FromBool(a <= b);
    case CompareOp::kGe: return FromBool(a >= b);
  }
  return Truth::kUnknown;
}

Truth Predicate::Evaluate(const TupleView& e1, const TupleView& e2) const {
  auto resolve = [&](const Operand& o) -> Value {
    if (o.kind == Operand::Kind::kConstant) return o.constant;
    const TupleView& t = (o.entity == 1) ? e1 : e2;
    return t.GetOrNull(o.attribute);
  };
  return CompareValues(resolve(lhs), op, resolve(rhs));
}

std::string Predicate::ToString() const {
  return lhs.ToString() + " " + CompareOpName(op) + " " + rhs.ToString();
}

Truth EvaluateConjunction(const std::vector<Predicate>& predicates,
                          const TupleView& e1, const TupleView& e2) {
  Truth result = Truth::kTrue;
  for (const Predicate& p : predicates) {
    result = And(result, p.Evaluate(e1, e2));
    if (result == Truth::kFalse) return result;
  }
  return result;
}

}  // namespace eid
