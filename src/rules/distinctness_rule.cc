#include "rules/distinctness_rule.h"

#include <set>

#include "rules/identity_rule.h"

namespace eid {

Status DistinctnessRule::Validate() const {
  if (predicates_.empty()) {
    return Status::InvalidArgument("distinctness rule '" + name_ +
                                   "' has no predicates");
  }
  bool has_e1 = false, has_e2 = false;
  for (const Predicate& p : predicates_) {
    for (const Operand* o : {&p.lhs, &p.rhs}) {
      if (o->kind != Operand::Kind::kEntityAttribute) continue;
      if (o->entity == 1) has_e1 = true;
      if (o->entity == 2) has_e2 = true;
    }
  }
  if (!has_e1 || !has_e2) {
    return Status::InvalidArgument(
        "distinctness rule '" + name_ +
        "' must involve some attribute from each of e1 and e2 (paper §3.2)");
  }
  return Status::Ok();
}

std::vector<std::string> DistinctnessRule::ReferencedAttributes() const {
  std::set<std::string> attrs;
  for (const Predicate& p : predicates_) {
    if (p.lhs.kind == Operand::Kind::kEntityAttribute) {
      attrs.insert(p.lhs.attribute);
    }
    if (p.rhs.kind == Operand::Kind::kEntityAttribute) {
      attrs.insert(p.rhs.attribute);
    }
  }
  return std::vector<std::string>(attrs.begin(), attrs.end());
}

Truth DistinctnessRule::Applies(const TupleView& e1,
                                const TupleView& e2) const {
  return EvaluateConjunction(predicates_, e1, e2);
}

std::string DistinctnessRule::ToString() const {
  std::string out;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) out += " & ";
    out += "(" + predicates_[i].ToString() + ")";
  }
  out += " -> e1 != e2";
  return out;
}

Result<DistinctnessRule> DistinctnessRuleFromIlfd(const Ilfd& ilfd) {
  if (ilfd.consequent().size() != 1) {
    return Status::InvalidArgument(
        "Proposition 1 conversion requires a single-consequent ILFD; "
        "decompose '" +
        ilfd.ToString() + "' first");
  }
  std::vector<Predicate> predicates;
  for (const Atom& a : ilfd.antecedent()) {
    predicates.push_back(Predicate{Operand::Attr(1, a.attribute),
                                   CompareOp::kEq, Operand::Const(a.value)});
  }
  const Atom& c = ilfd.consequent()[0];
  predicates.push_back(Predicate{Operand::Attr(2, c.attribute), CompareOp::kNe,
                                 Operand::Const(c.value)});
  return DistinctnessRule("prop1(" + ilfd.ToString() + ")",
                          std::move(predicates));
}

Result<Ilfd> IlfdFromDistinctnessRule(const DistinctnessRule& rule) {
  std::vector<Atom> antecedent;
  std::optional<Atom> consequent;
  for (const Predicate& p : rule.predicates()) {
    // Expect attribute op constant, attribute on the left.
    if (p.lhs.kind != Operand::Kind::kEntityAttribute ||
        p.rhs.kind != Operand::Kind::kConstant) {
      return Status::InvalidArgument(
          "rule predicate '" + p.ToString() +
          "' is not of the ILFD-induced shape (eN.attr op constant)");
    }
    if (p.lhs.entity == 1 && p.op == CompareOp::kEq) {
      antecedent.push_back(Atom{p.lhs.attribute, p.rhs.constant});
      continue;
    }
    if (p.lhs.entity == 2 && p.op == CompareOp::kNe) {
      if (consequent.has_value()) {
        return Status::InvalidArgument(
            "rule has more than one e2-inequality; not ILFD-induced");
      }
      consequent = Atom{p.lhs.attribute, p.rhs.constant};
      continue;
    }
    return Status::InvalidArgument("predicate '" + p.ToString() +
                                   "' is not of the ILFD-induced shape");
  }
  if (antecedent.empty() || !consequent.has_value()) {
    return Status::InvalidArgument(
        "rule lacks the e1-equalities or the e2-inequality of the "
        "ILFD-induced shape");
  }
  return Ilfd::Implies(std::move(antecedent), std::move(*consequent));
}

Result<DistinctnessRule> ParseDistinctnessRule(const std::string& name,
                                               const std::string& text) {
  EID_ASSIGN_OR_RETURN(std::vector<Predicate> predicates,
                       ParsePredicateConjunction(text));
  return DistinctnessRule(name, std::move(predicates));
}

}  // namespace eid
