#include "analysis/diagnostic.h"

namespace eid {
namespace analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

const char* RuleKindName(RuleKind kind) {
  switch (kind) {
    case RuleKind::kIlfd: return "ilfd";
    case RuleKind::kIdentityRule: return "identity-rule";
    case RuleKind::kDistinctnessRule: return "distinctness-rule";
    case RuleKind::kExtendedKey: return "extended-key";
    case RuleKind::kCorrespondence: return "correspondence";
    case RuleKind::kProgram: return "program";
  }
  return "?";
}

std::string RuleRef::ToString() const {
  std::string out = RuleKindName(kind);
  if (kind == RuleKind::kIlfd || kind == RuleKind::kIdentityRule ||
      kind == RuleKind::kDistinctnessRule || kind == RuleKind::kCorrespondence) {
    out += "#" + std::to_string(index);
  }
  if (!display.empty()) out += " (" + display + ")";
  return out;
}

std::string Diagnostic::ToString() const {
  std::string out = code;
  out += " ";
  out += SeverityName(severity);
  out += " ";
  out += rule.ToString();
  out += ": ";
  out += message;
  if (!hint.empty()) {
    out += " [fix: " + hint + "]";
  }
  return out;
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Diagnostic::ToJson() const {
  std::string out = "{\"code\": \"" + JsonEscape(code) + "\"";
  out += ", \"severity\": \"";
  out += SeverityName(severity);
  out += "\", \"rule_kind\": \"";
  out += RuleKindName(rule.kind);
  out += "\"";
  if (rule.kind == RuleKind::kIlfd || rule.kind == RuleKind::kIdentityRule ||
      rule.kind == RuleKind::kDistinctnessRule ||
      rule.kind == RuleKind::kCorrespondence) {
    out += ", \"rule_index\": " + std::to_string(rule.index);
  }
  out += ", \"rule\": \"" + JsonEscape(rule.display) + "\"";
  out += ", \"message\": \"" + JsonEscape(message) + "\"";
  if (!hint.empty()) out += ", \"hint\": \"" + JsonEscape(hint) + "\"";
  out += "}";
  return out;
}

size_t AnalysisReport::ErrorCount() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t AnalysisReport::WarningCount() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

std::vector<const Diagnostic*> AnalysisReport::WithCode(
    const std::string& code) const {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) out.push_back(&d);
  }
  return out;
}

std::string AnalysisReport::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += "\n";
  }
  out += std::to_string(ErrorCount()) + " error(s), " +
         std::to_string(WarningCount()) + " warning(s)\n";
  return out;
}

}  // namespace analysis
}  // namespace eid
