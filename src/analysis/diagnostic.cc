#include "analysis/diagnostic.h"

namespace eid {
namespace analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

const char* RuleKindName(RuleKind kind) {
  switch (kind) {
    case RuleKind::kIlfd: return "ilfd";
    case RuleKind::kIdentityRule: return "identity-rule";
    case RuleKind::kDistinctnessRule: return "distinctness-rule";
    case RuleKind::kExtendedKey: return "extended-key";
    case RuleKind::kCorrespondence: return "correspondence";
    case RuleKind::kProgram: return "program";
  }
  return "?";
}

std::string RuleRef::ToString() const {
  std::string out = RuleKindName(kind);
  if (kind == RuleKind::kIlfd || kind == RuleKind::kIdentityRule ||
      kind == RuleKind::kDistinctnessRule || kind == RuleKind::kCorrespondence) {
    out += "#" + std::to_string(index);
  }
  if (!display.empty()) out += " (" + display + ")";
  return out;
}

std::string Diagnostic::ToString() const {
  std::string out = code;
  out += " ";
  out += SeverityName(severity);
  out += " ";
  out += rule.ToString();
  out += ": ";
  out += message;
  if (!hint.empty()) {
    out += " [fix: " + hint + "]";
  }
  return out;
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Diagnostic::ToJson() const {
  std::string out = "{\"code\": \"" + JsonEscape(code) + "\"";
  out += ", \"severity\": \"";
  out += SeverityName(severity);
  out += "\", \"rule_kind\": \"";
  out += RuleKindName(rule.kind);
  out += "\"";
  if (rule.kind == RuleKind::kIlfd || rule.kind == RuleKind::kIdentityRule ||
      rule.kind == RuleKind::kDistinctnessRule ||
      rule.kind == RuleKind::kCorrespondence) {
    out += ", \"rule_index\": " + std::to_string(rule.index);
  }
  out += ", \"rule\": \"" + JsonEscape(rule.display) + "\"";
  out += ", \"message\": \"" + JsonEscape(message) + "\"";
  if (!hint.empty()) out += ", \"hint\": \"" + JsonEscape(hint) + "\"";
  out += "}";
  return out;
}

size_t AnalysisReport::ErrorCount() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t AnalysisReport::WarningCount() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

std::vector<const Diagnostic*> AnalysisReport::WithCode(
    const std::string& code) const {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) out.push_back(&d);
  }
  return out;
}

std::string ToSarif(const AnalysisReport& report,
                    const std::string& tool_version) {
  // Distinct codes in first-appearance order -> reportingDescriptors.
  std::vector<std::string> codes;
  auto rule_index = [&codes](const std::string& code) -> size_t {
    for (size_t i = 0; i < codes.size(); ++i) {
      if (codes[i] == code) return i;
    }
    codes.push_back(code);
    return codes.size() - 1;
  };
  for (const Diagnostic& d : report.diagnostics) rule_index(d.code);

  std::string out;
  out += "{\n";
  out += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n    {\n";
  out += "      \"tool\": {\n        \"driver\": {\n";
  out += "          \"name\": \"eid-lint\",\n";
  out += "          \"version\": \"" + JsonEscape(tool_version) + "\",\n";
  out += "          \"informationUri\": "
         "\"https://github.com/eid/eid#linting-rule-programs\",\n";
  out += "          \"rules\": [";
  for (size_t i = 0; i < codes.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n            {\"id\": \"" + JsonEscape(codes[i]) +
           "\", \"name\": \"" + JsonEscape(codes[i]) + "\"}";
  }
  if (!codes.empty()) out += "\n          ";
  out += "]\n        }\n      },\n";
  out += "      \"results\": [";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) out += ",";
    first = false;
    out += "\n        {\n";
    out += "          \"ruleId\": \"" + JsonEscape(d.code) + "\",\n";
    out += "          \"ruleIndex\": " + std::to_string(rule_index(d.code)) +
           ",\n";
    out += "          \"level\": \"";
    out += SeverityName(d.severity);  // SARIF levels match: error/warning/note
    out += "\",\n";
    out += "          \"message\": {\"text\": \"" + JsonEscape(d.message) +
           "\"},\n";
    out += "          \"locations\": [\n            {\"logicalLocations\": "
           "[{\"fullyQualifiedName\": \"" +
           JsonEscape(d.rule.ToString()) + "\", \"kind\": \"" +
           RuleKindName(d.rule.kind) + "\"}]}\n          ]";
    if (!d.hint.empty()) {
      out += ",\n          \"properties\": {\"hint\": \"" +
             JsonEscape(d.hint) + "\"}";
    }
    out += "\n        }";
  }
  if (!first) out += "\n      ";
  out += "]\n    }\n  ]\n}\n";
  return out;
}

std::string AnalysisReport::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += "\n";
  }
  out += std::to_string(ErrorCount()) + " error(s), " +
         std::to_string(WarningCount()) + " warning(s)\n";
  return out;
}

}  // namespace analysis
}  // namespace eid
