// Static verification of ILFD rule programs — eid-lint's engine.
//
// The paper's correctness story rests on properties of the rule set that
// are checkable *before* any tuple is touched: Armstrong-style closure of
// the ILFDs (Propositions 1–2, Theorem 1) and the prototype's "first
// applicable ILFD wins" derivation order. RuleProgramAnalyzer takes the
// schema pair plus a full identification configuration (correspondence,
// extended key, ILFDs, identity and distinctness rules) and, without
// executing, reports diagnostics in four families:
//
//   (a) schema checks   — conditions referencing attributes absent from
//       R/S/the extended relations; type-incompatible or NULL-comparing
//       equality conjuncts; correspondence names missing from a schema.
//   (b) closure checks  — the FD-style closure under Armstrong's axioms
//       flags ILFD sets that are contradictory (some rule's antecedent
//       derives A=a and A=a' with a ≠ a'), redundant (a rule derivable
//       from the rest) or trivial.
//   (c) order checks    — rules unreachable or shadowed under the Prolog
//       prototype's first-applicable-wins derivation (a later rule whose
//       antecedent is subsumed by an earlier rule's), and unconditional
//       rules after which the §6.2 NULL default can never fire.
//   (d) blocking checks — identity/distinctness rules with no equality
//       conjunct, which force the exec layer's O(|R'|·|S'|) tiled-scan
//       fallback instead of an index probe (see exec/blocking_index.h).
//
// Consumers: the `eid-lint` CLI (examples/eid_lint.cpp), the opt-in
// engine pre-flight (MatcherOptions::analyze), the bench harness
// (bench_util.h validates generated workloads at startup) and tests.

#ifndef EID_ANALYSIS_ANALYZER_H_
#define EID_ANALYSIS_ANALYZER_H_

#include "analysis/diagnostic.h"
#include "eid/identifier.h"
#include "relational/schema.h"

namespace eid {
namespace analysis {

/// Which check families to run, plus cost bounds.
struct AnalyzerOptions {
  bool schema_checks = true;
  bool closure_checks = true;
  bool order_checks = true;
  bool blocking_checks = true;
  /// Closure-based checks (contradiction, redundancy) cost one closure
  /// computation per ILFD — quadratic in the rule-set size overall. Above
  /// this many ILFDs they are skipped and an EID-N001 note records the
  /// skip, so huge generated rule sets still lint in linear time.
  size_t closure_rule_limit = 2048;
};

/// Analyzes one rule program against a schema pair. The config is
/// borrowed for the analyzer's lifetime; Analyze() does not mutate it.
class RuleProgramAnalyzer {
 public:
  RuleProgramAnalyzer(Schema r_schema, Schema s_schema,
                      const IdentifierConfig* config,
                      AnalyzerOptions options = {});

  /// Runs every enabled check family; diagnostics appear in family order
  /// (schema, closure, order, blocking) and rule order within a family.
  [[nodiscard]] AnalysisReport Analyze() const;

 private:
  Schema r_schema_;
  Schema s_schema_;
  const IdentifierConfig* config_;
  AnalyzerOptions options_;
};

/// Convenience wrapper over schemas. [[nodiscard]]: an unread report is
/// a lint run that verified nothing.
[[nodiscard]] AnalysisReport AnalyzeRuleProgram(
    const Schema& r_schema, const Schema& s_schema,
    const IdentifierConfig& config, const AnalyzerOptions& options = {});

/// Convenience wrapper over relations (analyzes their schemas only —
/// tuple data never participates).
[[nodiscard]] AnalysisReport AnalyzeRuleProgram(
    const Relation& r, const Relation& s, const IdentifierConfig& config,
    const AnalyzerOptions& options = {});

/// The engine pre-flight: OK when the program has no error-severity
/// diagnostics, FailedPrecondition carrying the full report text
/// otherwise. Warnings never fail the pre-flight.
Status PreflightCheck(const Schema& r_schema, const Schema& s_schema,
                      const IdentifierConfig& config);

}  // namespace analysis
}  // namespace eid

#endif  // EID_ANALYSIS_ANALYZER_H_
