#include "analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exec/blocking_index.h"

namespace eid {
namespace analysis {
namespace {

/// Are values of these two declared types ever storage-equal? Int and
/// double cross-compare numerically in the predicate language, so they
/// count as compatible.
bool TypesComparable(ValueType a, ValueType b) {
  if (a == b) return true;
  auto numeric = [](ValueType t) {
    return t == ValueType::kInt || t == ValueType::kDouble;
  };
  return numeric(a) && numeric(b);
}

/// Atom-set subset test over the sorted-by-(attribute, value) vectors an
/// Ilfd maintains.
bool AntecedentSubsumes(const std::vector<Atom>& small,
                        const std::vector<Atom>& large) {
  auto less = [](const Atom& a, const Atom& b) {
    if (a.attribute != b.attribute) return a.attribute < b.attribute;
    return a.value < b.value;
  };
  return std::includes(large.begin(), large.end(), small.begin(), small.end(),
                       less);
}

std::string Truncate(const std::string& text, size_t limit = 64) {
  if (text.size() <= limit) return text;
  return text.substr(0, limit - 3) + "...";
}

/// Everything the four check families share: world-named schemas, the
/// attribute universe, per-attribute types, effective extended schemas.
class Analysis {
 public:
  Analysis(const Schema& r_schema, const Schema& s_schema,
           const IdentifierConfig& config, const AnalyzerOptions& options)
      : r_schema_(r_schema), s_schema_(s_schema), config_(config),
        options_(options) {
    BuildContext();
  }

  AnalysisReport Run() {
    if (options_.schema_checks) SchemaChecks();
    if (options_.closure_checks) ClosureChecks();
    if (options_.order_checks) OrderChecks();
    if (options_.blocking_checks) BlockingChecks();
    return std::move(report_);
  }

 private:
  // --- context ---------------------------------------------------------

  void BuildContext() {
    CollectSide(r_schema_, Side::kR, &r_world_);
    CollectSide(s_schema_, Side::kS, &s_world_);
    for (const Ilfd& f : config_.ilfds.ilfds()) {
      for (const Atom& a : f.consequent()) {
        derived_.insert(a.attribute);
        // Derived-only attributes take their type from the first
        // consequent value that names them.
        if (!a.value.is_null()) {
          types_.emplace(a.attribute, a.value.type());
        }
      }
    }
    universe_ = derived_;
    for (const auto& [name, type] : r_world_) universe_.insert(name);
    for (const auto& [name, type] : s_world_) universe_.insert(name);

    // Effective extended schemas under the configured options: world
    // naming plus the appended K_Ext−side columns, plus every derivable
    // attribute when extension runs in derive-all mode (which Identify
    // forces when no extended key is configured).
    const bool has_key = config_.extended_key.has_value();
    const bool derive_all =
        !has_key || config_.matcher_options.extension.derive_all;
    for (const auto& [name, type] : r_world_) r_ext_.insert(name);
    for (const auto& [name, type] : s_world_) s_ext_.insert(name);
    if (has_key) {
      for (const std::string& k : config_.extended_key->attributes()) {
        if (universe_.count(k) == 0) continue;  // E001 reports it
        r_ext_.insert(k);
        s_ext_.insert(k);
      }
    }
    if (derive_all) {
      for (const std::string& d : derived_) {
        r_ext_.insert(d);
        s_ext_.insert(d);
      }
    }
  }

  void CollectSide(const Schema& schema, Side side,
                   std::map<std::string, ValueType>* out) {
    for (const Attribute& attr : schema.attributes()) {
      std::string world = attr.name;
      for (const AttributeMapping& m : config_.correspondence.mappings()) {
        const std::optional<std::string>& local =
            side == Side::kR ? m.in_r : m.in_s;
        if (local.has_value() && *local == attr.name) {
          world = m.world;
          break;
        }
      }
      out->emplace(world, attr.type);
      types_.emplace(world, attr.type);
    }
  }

  void Emit(std::string code, Severity severity, RuleRef rule,
            std::string message, std::string hint = "") {
    report_.diagnostics.push_back(Diagnostic{
        std::move(code), severity, std::move(rule), std::move(message),
        std::move(hint)});
  }

  RuleRef IlfdRef(size_t i) const {
    return RuleRef{RuleKind::kIlfd, i,
                   Truncate(config_.ilfds.ilfd(i).ToString())};
  }

  /// Declared or inferred type of a world attribute; nullopt if unknown.
  std::optional<ValueType> TypeOf(const std::string& attribute) const {
    auto it = types_.find(attribute);
    if (it == types_.end()) return std::nullopt;
    return it->second;
  }

  // --- (a) schema checks ----------------------------------------------

  void SchemaChecks() {
    CorrespondenceChecks();
    ExtendedKeyChecks();
    for (size_t i = 0; i < config_.ilfds.size(); ++i) IlfdSchemaChecks(i);
    for (size_t i = 0; i < config_.identity_rules.size(); ++i) {
      const IdentityRule& rule = config_.identity_rules[i];
      RuleRef ref{RuleKind::kIdentityRule, i, rule.name()};
      Status valid = rule.Validate();
      if (!valid.ok()) {
        Emit("EID-E004", Severity::kError, ref,
             "identity rule is not well-formed: " + valid.message(),
             "an identity rule must force e1.A = e2.A for every attribute "
             "A it references (paper §3.2)");
      }
      PredicateChecks(rule.predicates(), ref);
    }
    for (size_t i = 0; i < config_.distinctness_rules.size(); ++i) {
      const DistinctnessRule& rule = config_.distinctness_rules[i];
      RuleRef ref{RuleKind::kDistinctnessRule, i, rule.name()};
      Status valid = rule.Validate();
      if (!valid.ok()) {
        Emit("EID-E005", Severity::kError, ref,
             "distinctness rule is not well-formed: " + valid.message(),
             "a distinctness rule must reference at least one attribute of "
             "each entity (paper §3.2)");
      }
      PredicateChecks(rule.predicates(), ref);
    }
  }

  void CorrespondenceChecks() {
    const auto& mappings = config_.correspondence.mappings();
    for (size_t i = 0; i < mappings.size(); ++i) {
      const AttributeMapping& m = mappings[i];
      RuleRef ref{RuleKind::kCorrespondence, i, m.world};
      if (m.in_r.has_value() && !r_schema_.Contains(*m.in_r)) {
        Emit("EID-E001", Severity::kError, ref,
             "mapped attribute '" + *m.in_r + "' does not exist in R (" +
                 Truncate(r_schema_.ToString()) + ")",
             "fix the correspondence or the R schema");
      }
      if (m.in_s.has_value() && !s_schema_.Contains(*m.in_s)) {
        Emit("EID-E001", Severity::kError, ref,
             "mapped attribute '" + *m.in_s + "' does not exist in S (" +
                 Truncate(s_schema_.ToString()) + ")",
             "fix the correspondence or the S schema");
      }
      if (m.in_r.has_value() && m.in_s.has_value()) {
        std::optional<size_t> ri = r_schema_.IndexOf(*m.in_r);
        std::optional<size_t> si = s_schema_.IndexOf(*m.in_s);
        if (ri.has_value() && si.has_value()) {
          ValueType rt = r_schema_.attribute(*ri).type;
          ValueType st = s_schema_.attribute(*si).type;
          if (!TypesComparable(rt, st)) {
            Emit("EID-E002", Severity::kError, ref,
                 std::string("world attribute '") + m.world +
                     "' is declared " + ValueTypeName(rt) + " in R but " +
                     ValueTypeName(st) +
                     " in S; cross-side equality can never hold",
                 "align the column types before integration");
          }
        }
      }
    }
  }

  void ExtendedKeyChecks() {
    if (!config_.extended_key.has_value()) return;
    const ExtendedKey& key = *config_.extended_key;
    RuleRef ref{RuleKind::kExtendedKey, 0, key.ToString()};
    for (const std::string& attr : key.attributes()) {
      if (universe_.count(attr) == 0) {
        Emit("EID-E001", Severity::kError, ref,
             "extended-key attribute '" + attr +
                 "' is not a world attribute of R or S and no ILFD "
                 "derives it; the key column is NULL for every tuple",
             "add a correspondence mapping or an ILFD with '" + attr +
                 "' in its consequent");
        continue;
      }
      // Per-side derivability (paper §4.2: K_Ext−R values must come from
      // ILFDs; a side with no column and no deriving rule joins nothing).
      if (r_world_.count(attr) == 0 && derived_.count(attr) == 0) {
        Emit("EID-W008", Severity::kWarning, ref,
             "extended-key attribute '" + attr +
                 "' is not modeled in R and no ILFD derives it; every R' "
                 "tuple carries NULL there, so no pair can match",
             "add an ILFD deriving '" + attr + "' or drop it from the key");
      }
      if (s_world_.count(attr) == 0 && derived_.count(attr) == 0) {
        Emit("EID-W008", Severity::kWarning, ref,
             "extended-key attribute '" + attr +
                 "' is not modeled in S and no ILFD derives it; every S' "
                 "tuple carries NULL there, so no pair can match",
             "add an ILFD deriving '" + attr + "' or drop it from the key");
      }
    }
  }

  void IlfdSchemaChecks(size_t i) {
    const Ilfd& f = config_.ilfds.ilfd(i);
    bool dangling = false;
    for (const Atom& a : f.antecedent()) {
      if (universe_.count(a.attribute) == 0) {
        dangling = true;
        Emit("EID-E001", Severity::kError, IlfdRef(i),
             "antecedent condition references unknown attribute '" +
                 a.attribute + "'; the rule can never fire",
             "use a world attribute of R/S or a derivable attribute");
        continue;
      }
      AtomTypeChecks(a, IlfdRef(i), "antecedent");
    }
    for (const Atom& a : f.consequent()) {
      // Consequent attributes are in the universe by construction; only
      // their types can disagree with a declared column.
      AtomTypeChecks(a, IlfdRef(i), "consequent");
    }
    if (dangling) return;
    // Reachability: the antecedent must be satisfiable on at least one
    // side — each condition needs its attribute stored there or
    // derivable (backward chaining may consult other ILFDs' consequents).
    auto dead_on = [&](const std::map<std::string, ValueType>& side_world) {
      for (const Atom& a : f.antecedent()) {
        if (side_world.count(a.attribute) == 0 &&
            derived_.count(a.attribute) == 0) {
          return true;
        }
      }
      return false;
    };
    if (!f.antecedent().empty() && dead_on(r_world_) && dead_on(s_world_)) {
      Emit("EID-W007", Severity::kWarning, IlfdRef(i),
           "antecedent mixes attributes that never coexist on one side; "
           "the rule can fire on neither R nor S",
           "split the rule per side or add the missing attributes");
    }
  }

  void AtomTypeChecks(const Atom& a, RuleRef ref, const char* where) {
    if (a.value.is_null()) {
      Emit("EID-E002", Severity::kError, std::move(ref),
           std::string(where) + " condition '" + a.ToString() +
               "' compares against NULL; non_null_eq never holds",
           "conditions must name a concrete value");
      return;
    }
    std::optional<ValueType> declared = TypeOf(a.attribute);
    if (declared.has_value() &&
        !TypesComparable(*declared, a.value.type())) {
      Emit("EID-E002", Severity::kError, std::move(ref),
           std::string(where) + " condition '" + a.ToString() + "' is " +
               ValueTypeName(a.value.type()) + " but attribute '" +
               a.attribute + "' is " + ValueTypeName(*declared) +
               "; the condition can never hold",
           "match the condition value's type to the column type");
    }
  }

  void PredicateChecks(const std::vector<Predicate>& predicates,
                       const RuleRef& ref) {
    for (const Predicate& p : predicates) {
      for (const Operand* op : {&p.lhs, &p.rhs}) {
        if (op->kind != Operand::Kind::kEntityAttribute) continue;
        if (universe_.count(op->attribute) == 0) {
          Emit("EID-E001", Severity::kError, ref,
               "predicate '" + p.ToString() +
                   "' references unknown attribute '" + op->attribute + "'",
               "use a world attribute of R/S or a derivable attribute");
        } else if (r_ext_.count(op->attribute) == 0 &&
                   s_ext_.count(op->attribute) == 0) {
          Emit("EID-W007", Severity::kWarning, ref,
               "attribute '" + op->attribute +
                   "' is derivable but not materialized in R'/S' under "
                   "the current options; the predicate is always unknown",
               "add it to the extended key or set "
               "ExtensionOptions::derive_all");
        }
      }
      PredicateTypeChecks(p, ref);
    }
  }

  void PredicateTypeChecks(const Predicate& p, const RuleRef& ref) {
    // Comparing against NULL is kUnknown under every operator (Kleene),
    // so this check precedes the operator-specific ones.
    auto is_null_const = [](const Operand& op) {
      return op.kind == Operand::Kind::kConstant && op.constant.is_null();
    };
    if (is_null_const(p.lhs) || is_null_const(p.rhs)) {
      Emit("EID-E002", Severity::kError, ref,
           "predicate '" + p.ToString() +
               "' compares against NULL and is always unknown",
           "compare against a concrete value");
      return;
    }
    // != is trivially true across incompatible types, so only the
    // operators that require comparable operands are flagged.
    if (p.op == CompareOp::kNe) return;
    auto operand_type = [&](const Operand& op) -> std::optional<ValueType> {
      if (op.kind == Operand::Kind::kConstant) {
        return op.constant.type();
      }
      return TypeOf(op.attribute);
    };
    std::optional<ValueType> lt = operand_type(p.lhs);
    std::optional<ValueType> rt = operand_type(p.rhs);
    if (lt.has_value() && rt.has_value() && !TypesComparable(*lt, *rt)) {
      Emit("EID-E002", Severity::kError, ref,
           "predicate '" + p.ToString() + "' compares " + ValueTypeName(*lt) +
               " with " + ValueTypeName(*rt) + " and can never be true",
           "align the operand types");
    }
  }

  // --- (b) closure checks ---------------------------------------------

  /// Both the closure family and order-check shadowing are quadratic in
  /// the rule-set size; above the limit they are skipped with one shared
  /// EID-N001 note so huge generated rule sets still lint in linear time.
  bool OverRuleLimit() {
    if (config_.ilfds.size() <= options_.closure_rule_limit) return false;
    if (!limit_note_emitted_) {
      limit_note_emitted_ = true;
      Emit("EID-N001", Severity::kNote, RuleRef{RuleKind::kProgram, 0, ""},
           "closure and shadowing checks skipped: " +
               std::to_string(config_.ilfds.size()) +
               " ILFDs exceed the limit of " +
               std::to_string(options_.closure_rule_limit),
           "raise AnalyzerOptions::closure_rule_limit to force them");
    }
    return true;
  }

  void ClosureChecks() {
    const IlfdSet& ilfds = config_.ilfds;
    if (OverRuleLimit()) return;
    std::vector<bool> skip_redundancy(ilfds.size(), false);
    for (size_t i = 0; i < ilfds.size(); ++i) {
      const Ilfd& f = ilfds.ilfd(i);
      if (f.IsTrivial()) {
        skip_redundancy[i] = true;
        Emit("EID-W003", Severity::kWarning, IlfdRef(i),
             "trivial ILFD: every consequent condition already appears in "
             "the antecedent",
             "delete the rule");
        continue;
      }
      // Contradiction (Theorem 1 machinery): the closure X⁺_F of the
      // rule's antecedent must bind each attribute to one value.
      std::vector<Atom> closure = ilfds.ConditionClosure(f.antecedent());
      std::map<std::string, std::vector<const Atom*>> by_attribute;
      for (const Atom& a : closure) by_attribute[a.attribute].push_back(&a);
      for (const auto& [attribute, atoms] : by_attribute) {
        if (atoms.size() < 2) continue;
        skip_redundancy[i] = true;
        std::string origin = ContradictionWitness(i, atoms);
        Emit("EID-E003", Severity::kError, IlfdRef(i),
             "contradictory derivations: the antecedent's closure contains "
             "both '" + atoms[0]->ToString() + "' and '" +
                 atoms[1]->ToString() + "'" + origin,
             "remove or reconcile one of the conflicting rules");
      }
    }
    for (size_t i = 0; i < ilfds.size(); ++i) {
      if (skip_redundancy[i]) continue;
      if (ilfds.IsRedundant(i)) {
        Emit("EID-W002", Severity::kWarning, IlfdRef(i),
             "redundant ILFD: derivable from the remaining rules by "
             "Armstrong's axioms",
             "delete the rule; IlfdSet::MinimalCover computes a "
             "minimal equivalent set");
      }
    }
  }

  /// Names another rule whose consequent introduces one of the
  /// conflicting atoms, for the E003 message.
  std::string ContradictionWitness(
      size_t self, const std::vector<const Atom*>& atoms) const {
    auto derived_by = [&](const Atom& atom) -> std::optional<size_t> {
      for (size_t j = 0; j < config_.ilfds.size(); ++j) {
        if (j == self) continue;
        for (const Atom& c : config_.ilfds.ilfd(j).consequent()) {
          if (c == atom) return j;
        }
      }
      return std::nullopt;
    };
    if (std::optional<size_t> j = derived_by(*atoms[1])) {
      return " (the latter via ilfd#" + std::to_string(*j) + ")";
    }
    if (std::optional<size_t> j = derived_by(*atoms[0])) {
      return " (the former via ilfd#" + std::to_string(*j) + ")";
    }
    return "";
  }

  // --- (c) order checks -----------------------------------------------

  void OrderChecks() {
    const IlfdSet& ilfds = config_.ilfds;
    // Unconditional rules: the prototype's NULL default (§6.2) applies
    // only when every rule for an attribute fails — an empty antecedent
    // never fails.
    for (size_t i = 0; i < ilfds.size(); ++i) {
      if (!ilfds.ilfd(i).IsUnconditional()) continue;
      Emit("EID-W004", Severity::kWarning, IlfdRef(i),
           "unconditional ILFD: under first-applicable-wins the NULL "
           "default can never apply to its consequent attributes and any "
           "later rule deriving them is dead",
           "give the rule an antecedent or make it the documented default");
    }
    // Shadowing: rules deriving the same attribute race in declaration
    // order; an earlier rule whose antecedent is subsumed by a later
    // rule's always fires first, so the later rule never commits a value.
    // Quadratic within a consequent-attribute group, hence rule-limited.
    if (OverRuleLimit()) return;
    std::map<std::string, std::vector<size_t>> by_attribute;
    for (size_t i = 0; i < ilfds.size(); ++i) {
      for (const Atom& c : ilfds.ilfd(i).consequent()) {
        std::vector<size_t>& group = by_attribute[c.attribute];
        if (group.empty() || group.back() != i) group.push_back(i);
      }
    }
    // One report per (rule, attribute), first shadower wins the message.
    for (const auto& [attribute, group] : by_attribute) {
      for (size_t jj = 1; jj < group.size(); ++jj) {
        const size_t j = group[jj];
        for (size_t ii = 0; ii < jj; ++ii) {
          const size_t i = group[ii];
          if (!AntecedentSubsumes(ilfds.ilfd(i).antecedent(),
                                  ilfds.ilfd(j).antecedent())) {
            continue;
          }
          Emit("EID-W001", Severity::kWarning, IlfdRef(j),
               "shadowed under first-applicable-wins: whenever this rule's "
               "antecedent holds, ilfd#" + std::to_string(i) +
                   " fires first and commits '" + attribute + "'",
               "reorder the rules or tighten ilfd#" + std::to_string(i) +
                   "'s antecedent");
          break;
        }
      }
    }
  }

  // --- (d) blocking checks --------------------------------------------

  void BlockingChecks() {
    Schema r_ext = ExtSchema(r_world_, r_ext_);
    Schema s_ext = ExtSchema(s_world_, s_ext_);
    for (size_t i = 0; i < config_.identity_rules.size(); ++i) {
      const IdentityRule& rule = config_.identity_rules[i];
      RuleRef ref{RuleKind::kIdentityRule, i, rule.name()};
      if (rule.IsVacuous()) {
        Emit("EID-W006", Severity::kWarning, ref,
             "vacuous rule: the antecedent forces two distinct constants "
             "equal and can never be satisfied",
             "delete the rule or fix the conflicting constants");
        continue;
      }
      RulePlanChecks(rule.predicates(), ref, r_ext, s_ext);
    }
    for (size_t i = 0; i < config_.distinctness_rules.size(); ++i) {
      const DistinctnessRule& rule = config_.distinctness_rules[i];
      RuleRef ref{RuleKind::kDistinctnessRule, i, rule.name()};
      RulePlanChecks(rule.predicates(), ref, r_ext, s_ext);
    }
    if (!unindexable_rules_.empty()) {
      std::string names;
      for (const std::string& name : unindexable_rules_) {
        if (!names.empty()) names += ", ";
        names += name;
      }
      Emit("EID-W009", Severity::kWarning, RuleRef{RuleKind::kProgram, 0, ""},
           "empty blocking plan: " + names +
               (unindexable_rules_.size() == 1 ? " has" : " have") +
               " no join or constant-equality conjunct in any satisfiable "
               "orientation, forcing the staged candidate generator into a "
               "quadratic scan over |R'|x|S'| pairs",
           "add an equality conjunct (e1.A = e2.B, or e.A = constant) to "
           "each listed rule so its candidates can be index-bounded");
    }
  }

  Schema ExtSchema(const std::map<std::string, ValueType>& side_world,
                   const std::set<std::string>& ext_attrs) const {
    std::vector<Attribute> attrs;
    for (const auto& [name, type] : side_world) {
      attrs.push_back(Attribute{name, type});
    }
    for (const std::string& name : ext_attrs) {
      if (side_world.count(name) != 0) continue;
      ValueType type = TypeOf(name).value_or(ValueType::kString);
      attrs.push_back(Attribute{name, type});
    }
    return Schema(std::move(attrs));
  }

  void RulePlanChecks(const std::vector<Predicate>& predicates,
                      const RuleRef& ref, const Schema& r_ext,
                      const Schema& s_ext) {
    // Rules already diagnosed as referencing an attribute missing from
    // both extended schemas are covered by the schema family.
    for (const Predicate& p : predicates) {
      for (const Operand* op : {&p.lhs, &p.rhs}) {
        if (op->kind == Operand::Kind::kEntityAttribute &&
            !r_ext.Contains(op->attribute) && !s_ext.Contains(op->attribute)) {
          return;
        }
      }
    }
    exec::BlockingPlan direct =
        exec::PlanBlocking(predicates, r_ext, s_ext, /*flipped=*/false);
    exec::BlockingPlan flipped =
        exec::PlanBlocking(predicates, r_ext, s_ext, /*flipped=*/true);
    if (direct.impossible && flipped.impossible) {
      Emit("EID-W006", Severity::kWarning, ref,
           "the antecedent can never evaluate to true against these "
           "schemas in either orientation; the rule is dead",
           "check the rule's attributes and constants against R'/S'");
      return;
    }
    if (!direct.has_join && !flipped.has_join) {
      Emit("EID-W005", Severity::kWarning, ref,
           "no cross-entity equality conjunct: the engine cannot use an "
           "index probe and falls back to a tiled scan over |R'|x|S'| "
           "pairs",
           "add an equality conjunct (e1.A = e2.B) if the rule's "
           "semantics allow one");
    }
    // An orientation with no join *and* no const filter has an empty
    // blocking plan — the staged generator can prune nothing for it.
    auto plan_empty = [](const exec::BlockingPlan& plan) {
      return !plan.impossible && !plan.has_join && plan.r_const_eq.empty() &&
             plan.s_const_eq.empty();
    };
    const bool any_live = !direct.impossible || !flipped.impossible;
    const bool all_live_empty =
        (direct.impossible || plan_empty(direct)) &&
        (flipped.impossible || plan_empty(flipped));
    if (any_live && all_live_empty) {
      std::string name = std::string(RuleKindName(ref.kind)) + "#" +
                         std::to_string(ref.index);
      if (!ref.display.empty()) name += " ('" + ref.display + "')";
      unindexable_rules_.push_back(std::move(name));
    }
  }

  const Schema& r_schema_;
  const Schema& s_schema_;
  const IdentifierConfig& config_;
  const AnalyzerOptions& options_;

  // World attribute name -> declared type, per side.
  std::map<std::string, ValueType> r_world_;
  std::map<std::string, ValueType> s_world_;
  // World attribute -> declared-or-inferred type (first writer wins:
  // R column, then S column, then first ILFD consequent value).
  std::map<std::string, ValueType> types_;
  // Attributes some ILFD can derive.
  std::set<std::string> derived_;
  // Every attribute that can exist on an extended tuple of either side.
  std::set<std::string> universe_;
  // Attributes materialized in R'/S' under the configured options.
  std::set<std::string> r_ext_;
  std::set<std::string> s_ext_;

  // Rules whose every satisfiable orientation has an empty blocking plan
  // (collected by RulePlanChecks, reported once as EID-W009).
  std::vector<std::string> unindexable_rules_;

  bool limit_note_emitted_ = false;
  AnalysisReport report_;
};

}  // namespace

RuleProgramAnalyzer::RuleProgramAnalyzer(Schema r_schema, Schema s_schema,
                                         const IdentifierConfig* config,
                                         AnalyzerOptions options)
    : r_schema_(std::move(r_schema)), s_schema_(std::move(s_schema)),
      config_(config), options_(options) {
  EID_CHECK(config_ != nullptr);
}

AnalysisReport RuleProgramAnalyzer::Analyze() const {
  Analysis analysis(r_schema_, s_schema_, *config_, options_);
  return analysis.Run();
}

AnalysisReport AnalyzeRuleProgram(const Schema& r_schema,
                                  const Schema& s_schema,
                                  const IdentifierConfig& config,
                                  const AnalyzerOptions& options) {
  return RuleProgramAnalyzer(r_schema, s_schema, &config, options).Analyze();
}

AnalysisReport AnalyzeRuleProgram(const Relation& r, const Relation& s,
                                  const IdentifierConfig& config,
                                  const AnalyzerOptions& options) {
  return AnalyzeRuleProgram(r.schema(), s.schema(), config, options);
}

Status PreflightCheck(const Schema& r_schema, const Schema& s_schema,
                      const IdentifierConfig& config) {
  AnalysisReport report = AnalyzeRuleProgram(r_schema, s_schema, config);
  if (!report.HasErrors()) return Status::Ok();
  return Status::FailedPrecondition("rule-program analysis failed:\n" +
                                    report.ToString());
}

}  // namespace analysis
}  // namespace eid
