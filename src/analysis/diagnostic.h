// Diagnostics emitted by the static rule-program analyzer.
//
// Every finding carries a stable machine-readable code (EID-Exxx for
// errors, EID-Wxxx for warnings, EID-Nxxx for notes), the provenance of
// the offending rule (which collection, which index, its display form),
// a human-readable message and — where one exists — a fix hint. The
// catalogue of codes lives in DESIGN.md §4b; tests assert exact codes, so
// codes are append-only: never renumber or reuse one.

#ifndef EID_ANALYSIS_DIAGNOSTIC_H_
#define EID_ANALYSIS_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <vector>

namespace eid {
namespace analysis {

/// How severe a diagnostic is. Errors make the rule program unusable
/// (wrong or impossible semantics); warnings flag suspicious or slow
/// constructs; notes report analysis limitations (e.g. a skipped check).
enum class Severity { kError, kWarning, kNote };

const char* SeverityName(Severity severity);  // "error", "warning", "note"

/// Which collection of the rule program a diagnostic points into.
enum class RuleKind {
  kIlfd,              // IdentifierConfig::ilfds, by index
  kIdentityRule,      // IdentifierConfig::identity_rules, by index
  kDistinctnessRule,  // IdentifierConfig::distinctness_rules, by index
  kExtendedKey,       // the extended key itself
  kCorrespondence,    // an attribute mapping, by mapping index
  kProgram,           // the rule program as a whole (no single rule)
};

const char* RuleKindName(RuleKind kind);  // "ilfd", "identity-rule", ...

/// Provenance of a diagnostic: the rule (or program part) it is about.
struct RuleRef {
  RuleKind kind = RuleKind::kProgram;
  /// Index within its collection (meaningless for kExtendedKey/kProgram).
  size_t index = 0;
  /// Display form of the rule: ILFD text, rule name, key attribute list.
  std::string display;

  /// "ilfd#2 (speciality=Mughalai -> cuisine=Indian)".
  std::string ToString() const;
};

/// One analyzer finding.
struct Diagnostic {
  std::string code;  // "EID-E003"
  Severity severity = Severity::kWarning;
  RuleRef rule;
  std::string message;
  /// How to fix it; empty when no mechanical fix exists.
  std::string hint;

  /// "EID-E003 error ilfd#1 (...): message [fix: hint]".
  std::string ToString() const;

  /// One JSON object on one line, all strings escaped:
  /// {"code": "...", "severity": "...", "rule_kind": "...",
  ///  "rule_index": N, "rule": "...", "message": "...", "hint": "..."}.
  /// `rule_index` is omitted for kinds where it is meaningless
  /// (extended-key, program); `hint` is omitted when empty.
  std::string ToJson() const;
};

/// The full outcome of analyzing one rule program.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  size_t ErrorCount() const;
  size_t WarningCount() const;
  bool HasErrors() const { return ErrorCount() > 0; }
  bool Clean() const { return diagnostics.empty(); }

  /// Diagnostics carrying `code`, in report order.
  std::vector<const Diagnostic*> WithCode(const std::string& code) const;
  bool HasCode(const std::string& code) const {
    return !WithCode(code).empty();
  }

  /// One line per diagnostic plus a "N error(s), M warning(s)" summary.
  std::string ToString() const;
};

/// The report as one SARIF 2.1.0 document (static-analysis interchange:
/// CI code-scanning upload, IDE SARIF viewers). One run, driver
/// "eid-lint"; every distinct code becomes a reportingDescriptor in
/// first-appearance order and each diagnostic a result referencing it by
/// ruleIndex, with severity mapped to SARIF level (error/warning/note),
/// the rule provenance as a logical location, and the fix hint (when
/// present) in the result's property bag. `tool_version` lands in
/// tool.driver.version.
std::string ToSarif(const AnalysisReport& report,
                    const std::string& tool_version = "1.0.0");

}  // namespace analysis
}  // namespace eid

#endif  // EID_ANALYSIS_DIAGNOSTIC_H_
