// Propositional implications X → Y over interned atoms.
//
// This is the paper's §5 representation of ILFDs: antecedent and consequent
// are conjunctions of propositional symbols. Implications with identical
// antecedents may be combined (paper: (P→Q1) ∧ (P→Q2) ≡ P→(Q1∧Q2)), so the
// head is a set too.

#ifndef EID_LOGIC_IMPLICATION_H_
#define EID_LOGIC_IMPLICATION_H_

#include <string>
#include <vector>

#include "logic/proposition.h"

namespace eid {

/// A definite propositional implication: body → head (both conjunctions).
struct Implication {
  AtomSet body;
  AtomSet head;

  bool operator==(const Implication& other) const {
    return body == other.body && head == other.head;
  }
  bool operator<(const Implication& other) const {
    if (!(body == other.body)) return body < other.body;
    return head < other.head;
  }

  /// Trivial (reflexivity instance): head ⊆ body. Such implications hold in
  /// every entity set (paper §5.2, axiom 1).
  bool IsTrivial() const { return body.ContainsAll(head); }

  /// "{a=1} -> {b=2}" display form.
  std::string ToString(const AtomTable& table) const {
    return body.ToString(table) + " -> " + head.ToString(table);
  }
};

/// Splits an implication with an n-atom head into n single-head
/// implications (decomposition rule).
std::vector<Implication> Decompose(const Implication& implication);

/// Combines implications sharing a body into one (union rule). Output is
/// sorted and deterministic.
std::vector<Implication> CombineByBody(std::vector<Implication> implications);

}  // namespace eid

#endif  // EID_LOGIC_IMPLICATION_H_
