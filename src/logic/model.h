// Propositional model checking for implications.
//
// A "model" is a truth assignment: the set of atoms that hold (in the
// paper's reading, the conditions true of one tuple). These helpers back
// the soundness tests: an inference system is sound iff every derivable
// implication holds in every model of the premises (Lemma 1).

#ifndef EID_LOGIC_MODEL_H_
#define EID_LOGIC_MODEL_H_

#include <vector>

#include "logic/implication.h"

namespace eid {

/// A truth assignment: atoms in the set are true, all others false.
using Model = AtomSet;

/// True iff `model` satisfies `implication` (body true ⇒ head true).
inline bool Satisfies(const Model& model, const Implication& implication) {
  if (!model.ContainsAll(implication.body)) return true;
  return model.ContainsAll(implication.head);
}

/// True iff `model` satisfies every implication.
inline bool SatisfiesAll(const Model& model,
                         const std::vector<Implication>& implications) {
  for (const Implication& imp : implications) {
    if (!Satisfies(model, imp)) return false;
  }
  return true;
}

/// Semantic entailment over an explicit atom universe: F ⊨ target iff every
/// model over atoms {0..universe_size-1} satisfying F satisfies target.
/// Exponential in universe_size; intended for small cross-checks in tests.
bool EntailsByExhaustiveModels(const std::vector<Implication>& premises,
                               const Implication& target,
                               size_t universe_size);

}  // namespace eid

#endif  // EID_LOGIC_MODEL_H_
