#include "logic/kb.h"

#include <algorithm>
#include <deque>

namespace eid {

size_t KnowledgeBase::Add(Implication implication) {
  size_t index = clauses_.size();
  if (implication.body.empty()) {
    facts_.push_back(index);
  }
  for (AtomId id : implication.body.ids()) {
    body_index_[id].push_back(index);
  }
  clauses_.push_back(std::move(implication));
  return index;
}

ClosureResult KnowledgeBase::ForwardClosure(const AtomSet& seed) const {
  ClosureResult result;
  result.atoms = seed;

  // Remaining unsatisfied body atoms per clause.
  std::vector<size_t> missing(clauses_.size());
  for (size_t i = 0; i < clauses_.size(); ++i) {
    missing[i] = clauses_[i].body.size();
  }

  std::vector<bool> fired(clauses_.size(), false);
  // Work queue of newly derived atoms, FIFO so earlier clauses fire first.
  std::deque<AtomId> queue(seed.ids().begin(), seed.ids().end());

  auto fire = [&](size_t clause_index) {
    if (fired[clause_index]) return;
    fired[clause_index] = true;
    result.firing_order.push_back(clause_index);
    for (AtomId h : clauses_[clause_index].head.ids()) {
      if (!result.atoms.Contains(h)) {
        result.atoms.Insert(h);
        result.provenance.emplace(h, clause_index);
        queue.push_back(h);
      }
    }
  };

  for (size_t f : facts_) fire(f);

  // Count down satisfied body atoms. Each atom enters the queue at most
  // once and clause bodies are sets, so each decrement is counted once.
  while (!queue.empty()) {
    AtomId a = queue.front();
    queue.pop_front();
    auto it = body_index_.find(a);
    if (it == body_index_.end()) continue;
    for (size_t clause_index : it->second) {
      if (missing[clause_index] == 0) continue;
      if (--missing[clause_index] == 0) fire(clause_index);
    }
  }
  return result;
}

bool KnowledgeBase::Entails(const AtomSet& seed, const AtomSet& goal) const {
  return ForwardClosure(seed).atoms.ContainsAll(goal);
}

ClosureResult ClosureEvaluator::Run(const AtomSet& seed) {
  const KnowledgeBase& kb = *kb_;
  ++epoch_;
  if (missing_.size() < kb.clauses_.size()) {
    missing_.resize(kb.clauses_.size(), 0);
    missing_epoch_.resize(kb.clauses_.size(), 0);
    fired_epoch_.resize(kb.clauses_.size(), 0);
  }

  ClosureResult result;
  result.atoms = seed;
  std::deque<AtomId> queue(seed.ids().begin(), seed.ids().end());

  auto fire = [&](size_t clause_index) {
    if (fired_epoch_[clause_index] == epoch_) return;
    fired_epoch_[clause_index] = epoch_;
    result.firing_order.push_back(clause_index);
    for (AtomId h : kb.clauses_[clause_index].head.ids()) {
      if (!result.atoms.Contains(h)) {
        result.atoms.Insert(h);
        result.provenance.emplace(h, clause_index);
        queue.push_back(h);
      }
    }
  };

  for (size_t f : kb.facts_) fire(f);

  while (!queue.empty()) {
    AtomId a = queue.front();
    queue.pop_front();
    auto it = kb.body_index_.find(a);
    if (it == kb.body_index_.end()) continue;
    for (size_t clause_index : it->second) {
      size_t remaining = (missing_epoch_[clause_index] == epoch_)
                             ? missing_[clause_index]
                             : kb.clauses_[clause_index].body.size();
      if (remaining == 0) continue;
      --remaining;
      missing_[clause_index] = remaining;
      missing_epoch_[clause_index] = epoch_;
      if (remaining == 0) fire(clause_index);
    }
  }
  return result;
}

void ClosureEvaluator::RebuildBodyIndex() {
  // One pass over the clause list — the only pass that chases the
  // per-clause heap vectors — collecting flat (atom, clause) pairs; a
  // counting sort then lays out the CSR rows. Pairs arrive in ascending
  // clause order, which is body_index_'s per-atom insertion order, so the
  // probe order (and with it every firing order) is identical to the map.
  const KnowledgeBase& kb = *kb_;
  const size_t num_clauses = kb.clauses_.size();
  body_size_.resize(num_clauses);
  head_begin_.assign(num_clauses + 1, 0);
  head_atoms_.clear();
  std::vector<std::pair<uint32_t, uint32_t>> pairs;  // (atom, clause)
  uint32_t max_atom = 0;
  for (size_t c = 0; c < num_clauses; ++c) {
    const Implication& clause = kb.clauses_[c];
    body_size_[c] = static_cast<uint32_t>(clause.body.size());
    for (AtomId a : clause.body.ids()) {
      max_atom = std::max(max_atom, a);
      pairs.emplace_back(a, static_cast<uint32_t>(c));
    }
    for (AtomId h : clause.head.ids()) head_atoms_.push_back(h);
    head_begin_[c + 1] = static_cast<uint32_t>(head_atoms_.size());
  }
  body_begin_.assign(pairs.empty() ? 0 : max_atom + 2, 0);
  if (!pairs.empty()) {
    for (const auto& [a, c] : pairs) ++body_begin_[a + 1];
    for (size_t i = 1; i < body_begin_.size(); ++i) {
      body_begin_[i] += body_begin_[i - 1];
    }
    body_clauses_.resize(pairs.size());
    std::vector<uint32_t> fill(body_begin_.begin(), body_begin_.end() - 1);
    for (const auto& [a, c] : pairs) body_clauses_[fill[a]++] = c;
  }
  indexed_clauses_ = num_clauses;
}

const std::vector<DerivedAtom>& ClosureEvaluator::RunDerived(
    const AtomId* seed, size_t count) {
  const KnowledgeBase& kb = *kb_;
  ++epoch_;
  if (missing_.size() < kb.clauses_.size()) {
    missing_.resize(kb.clauses_.size(), 0);
    missing_epoch_.resize(kb.clauses_.size(), 0);
    fired_epoch_.resize(kb.clauses_.size(), 0);
  }
  if (indexed_clauses_ != kb.clauses_.size()) RebuildBodyIndex();
  derived_.clear();
  queue_.clear();

  // Dense atom membership in place of Run's AtomSet: stamped = present.
  auto present = [&](AtomId a) {
    return a < atom_epoch_.size() && atom_epoch_[a] == epoch_;
  };
  auto mark = [&](AtomId a) {
    if (a >= atom_epoch_.size()) atom_epoch_.resize(a + 1, 0);
    atom_epoch_[a] = epoch_;
  };
  for (size_t i = 0; i < count; ++i) {
    mark(seed[i]);
    queue_.push_back(seed[i]);
  }

  auto fire = [&](size_t clause_index) {
    if (fired_epoch_[clause_index] == epoch_) return;
    fired_epoch_[clause_index] = epoch_;
    const uint32_t head_end = head_begin_[clause_index + 1];
    for (uint32_t i = head_begin_[clause_index]; i < head_end; ++i) {
      const AtomId h = head_atoms_[i];
      if (!present(h)) {
        mark(h);
        derived_.push_back(DerivedAtom{clause_index, h});
        queue_.push_back(h);
      }
    }
  };

  for (size_t f : kb.facts_) fire(f);

  // Identical traversal to Run: the vector-backed FIFO pops in the same
  // order the deque would, and the CSR rows preserve body_index_'s
  // per-atom clause order, so firing order — and thus derived_ order —
  // matches ForwardClosure exactly.
  const size_t atom_limit = body_begin_.empty() ? 0 : body_begin_.size() - 1;
  for (size_t head = 0; head < queue_.size(); ++head) {
    AtomId a = queue_[head];
    if (a >= atom_limit) continue;
    const uint32_t end = body_begin_[a + 1];
    for (uint32_t i = body_begin_[a]; i < end; ++i) {
      const size_t clause_index = body_clauses_[i];
      size_t remaining = (missing_epoch_[clause_index] == epoch_)
                             ? missing_[clause_index]
                             : body_size_[clause_index];
      if (remaining == 0) continue;
      --remaining;
      missing_[clause_index] = remaining;
      missing_epoch_[clause_index] = epoch_;
      if (remaining == 0) fire(clause_index);
    }
  }
  return derived_;
}

}  // namespace eid
