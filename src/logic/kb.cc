#include "logic/kb.h"

#include <deque>

namespace eid {

size_t KnowledgeBase::Add(Implication implication) {
  size_t index = clauses_.size();
  if (implication.body.empty()) {
    facts_.push_back(index);
  }
  for (AtomId id : implication.body.ids()) {
    body_index_[id].push_back(index);
  }
  clauses_.push_back(std::move(implication));
  return index;
}

ClosureResult KnowledgeBase::ForwardClosure(const AtomSet& seed) const {
  ClosureResult result;
  result.atoms = seed;

  // Remaining unsatisfied body atoms per clause.
  std::vector<size_t> missing(clauses_.size());
  for (size_t i = 0; i < clauses_.size(); ++i) {
    missing[i] = clauses_[i].body.size();
  }

  std::vector<bool> fired(clauses_.size(), false);
  // Work queue of newly derived atoms, FIFO so earlier clauses fire first.
  std::deque<AtomId> queue(seed.ids().begin(), seed.ids().end());

  auto fire = [&](size_t clause_index) {
    if (fired[clause_index]) return;
    fired[clause_index] = true;
    result.firing_order.push_back(clause_index);
    for (AtomId h : clauses_[clause_index].head.ids()) {
      if (!result.atoms.Contains(h)) {
        result.atoms.Insert(h);
        result.provenance.emplace(h, clause_index);
        queue.push_back(h);
      }
    }
  };

  for (size_t f : facts_) fire(f);

  // Count down satisfied body atoms. Each atom enters the queue at most
  // once and clause bodies are sets, so each decrement is counted once.
  while (!queue.empty()) {
    AtomId a = queue.front();
    queue.pop_front();
    auto it = body_index_.find(a);
    if (it == body_index_.end()) continue;
    for (size_t clause_index : it->second) {
      if (missing[clause_index] == 0) continue;
      if (--missing[clause_index] == 0) fire(clause_index);
    }
  }
  return result;
}

bool KnowledgeBase::Entails(const AtomSet& seed, const AtomSet& goal) const {
  return ForwardClosure(seed).atoms.ContainsAll(goal);
}

ClosureResult ClosureEvaluator::Run(const AtomSet& seed) {
  const KnowledgeBase& kb = *kb_;
  ++epoch_;
  if (missing_.size() < kb.clauses_.size()) {
    missing_.resize(kb.clauses_.size(), 0);
    missing_epoch_.resize(kb.clauses_.size(), 0);
    fired_epoch_.resize(kb.clauses_.size(), 0);
  }

  ClosureResult result;
  result.atoms = seed;
  std::deque<AtomId> queue(seed.ids().begin(), seed.ids().end());

  auto fire = [&](size_t clause_index) {
    if (fired_epoch_[clause_index] == epoch_) return;
    fired_epoch_[clause_index] = epoch_;
    result.firing_order.push_back(clause_index);
    for (AtomId h : kb.clauses_[clause_index].head.ids()) {
      if (!result.atoms.Contains(h)) {
        result.atoms.Insert(h);
        result.provenance.emplace(h, clause_index);
        queue.push_back(h);
      }
    }
  };

  for (size_t f : kb.facts_) fire(f);

  while (!queue.empty()) {
    AtomId a = queue.front();
    queue.pop_front();
    auto it = kb.body_index_.find(a);
    if (it == kb.body_index_.end()) continue;
    for (size_t clause_index : it->second) {
      size_t remaining = (missing_epoch_[clause_index] == epoch_)
                             ? missing_[clause_index]
                             : kb.clauses_[clause_index].body.size();
      if (remaining == 0) continue;
      --remaining;
      missing_[clause_index] = remaining;
      missing_epoch_[clause_index] = epoch_;
      if (remaining == 0) fire(clause_index);
    }
  }
  return result;
}

}  // namespace eid
