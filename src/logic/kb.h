// Definite-clause knowledge base with forward-chaining closure.
//
// This engine plays the role SB-Prolog played in the paper's prototype: it
// saturates a seed set of facts under a set of implications. The closure
// algorithm is the linear-time counting algorithm (Beeri–Bernstein / the
// standard attribute-closure algorithm the paper refers to in §5.2:
// "the algorithm for computing X⁺_F is the same as that for computing the
// closure of a set of attributes with respect to a set of FDs").
//
// Provenance is recorded: for every derived atom, which implication fired
// first. This supports proof extraction (logic/armstrong.h) and the
// explainable derivation traces used by the matching engine.

#ifndef EID_LOGIC_KB_H_
#define EID_LOGIC_KB_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "base/thread_annotations.h"
#include "logic/implication.h"

namespace eid {

/// Result of a forward-chaining run.
struct ClosureResult {
  /// All atoms derivable from the seed (including the seed itself).
  AtomSet atoms;
  /// For each derived (non-seed) atom: index of the implication (in the
  /// knowledge base's clause list) whose firing first produced it.
  std::unordered_map<AtomId, size_t> provenance;
  /// Implication indices in firing order (each listed once).
  std::vector<size_t> firing_order;
};

/// An indexed set of implications supporting saturation queries.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// Adds an implication; returns its index.
  size_t Add(Implication implication);

  size_t size() const { return clauses_.size(); }
  const Implication& clause(size_t i) const { return clauses_[i]; }
  const std::vector<Implication>& clauses() const { return clauses_; }

  /// Computes the closure of `seed` under all implications, O(total clause
  /// size). Firing order follows clause insertion order among enabled
  /// clauses (matching the prototype's top-down rule order). For many
  /// closures over one knowledge base (per-tuple derivation) use
  /// ClosureEvaluator, which avoids the per-call O(|clauses|) counter
  /// initialisation.
  ClosureResult ForwardClosure(const AtomSet& seed) const;

  /// True iff every atom of `goal` is derivable from `seed`.
  bool Entails(const AtomSet& seed, const AtomSet& goal) const;

  /// True iff the implication is a logical consequence of the knowledge
  /// base (F ⊨ body→head), decided via closure (sound & complete by
  /// Theorem 1 of the paper).
  bool Implies(const Implication& implication) const {
    return Entails(implication.body, implication.head);
  }

 private:
  friend class ClosureEvaluator;

  std::vector<Implication> clauses_;
  // body-atom -> indices of clauses containing it (for counting algorithm).
  std::unordered_map<AtomId, std::vector<size_t>> body_index_;
  // clauses with empty bodies (unconditional facts).
  std::vector<size_t> facts_;
};

/// One newly derived atom of a closure run: the clause that fired and the
/// head atom it produced. A run's derivations, in order, fully determine
/// the firing order and the provenance map restricted to derived atoms.
struct DerivedAtom {
  size_t clause = 0;
  AtomId atom = 0;
};

/// Amortised forward closure: reusable epoch-stamped workspace so each Run
/// touches only the clauses the seed actually reaches, not the whole
/// knowledge base. EID_PER_WORKER: one evaluator per ParallelFor worker
/// (the engine builds a vector indexed by worker id); never shared. The
/// referenced KnowledgeBase must outlive the evaluator and may grow
/// between runs.
class EID_PER_WORKER ClosureEvaluator {
 public:
  explicit ClosureEvaluator(const KnowledgeBase* kb) : kb_(kb) {
    EID_CHECK(kb != nullptr);
  }

  /// Semantics identical to KnowledgeBase::ForwardClosure.
  ClosureResult Run(const AtomSet& seed);

  /// Lean form for per-tuple derivation hot loops: runs the same closure
  /// as Run(AtomSet(seed)) but materialises only what compiled derivation
  /// consumes — every (clause, newly derived atom) pair, in Run's order
  /// (clauses in firing order; within a clause, head atoms in id order).
  /// `seed` must be sorted and duplicate-free, exactly AtomSet's invariant,
  /// so the work queue seeds in the same order Run's would. The returned
  /// span lives in evaluator scratch: valid until the next run, and a warm
  /// evaluator allocates nothing on this path.
  const std::vector<DerivedAtom>& RunDerived(const AtomId* seed, size_t count);
  const std::vector<DerivedAtom>& RunDerived(const std::vector<AtomId>& seed) {
    return RunDerived(seed.data(), seed.size());
  }

 private:
  void RebuildBodyIndex();

  const KnowledgeBase* kb_;
  std::vector<size_t> missing_;
  std::vector<uint64_t> missing_epoch_;
  std::vector<uint64_t> fired_epoch_;
  // RunDerived scratch: dense atom membership (epoch-stamped, grown on
  // first sight of an id), a vector-backed FIFO, and the result buffer.
  std::vector<uint64_t> atom_epoch_;
  std::vector<AtomId> queue_;
  std::vector<DerivedAtom> derived_;
  // Dense CSR mirror of kb_->body_index_ for RunDerived: atom id a maps
  // to body_clauses_[body_begin_[a] .. body_begin_[a+1]), in the map's
  // per-atom insertion order. Per-tuple sweeps probe an atom's clause
  // list once per derived atom, and the hash find was the hottest
  // instruction stream of the whole matcher — an array load is not.
  // body_size_ and the head CSR flatten the per-clause AtomSets the same
  // way, so the hot loop reads only these contiguous arrays and never
  // chases an Implication's heap vectors.
  // Rebuilt whenever the kb has grown (clause count is the version).
  std::vector<uint32_t> body_begin_;
  std::vector<uint32_t> body_clauses_;
  std::vector<uint32_t> body_size_;   // clause -> body atom count
  std::vector<uint32_t> head_begin_;  // clause -> head CSR row
  std::vector<AtomId> head_atoms_;
  size_t indexed_clauses_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace eid

#endif  // EID_LOGIC_KB_H_
