#include "logic/model.h"

namespace eid {

bool EntailsByExhaustiveModels(const std::vector<Implication>& premises,
                               const Implication& target,
                               size_t universe_size) {
  EID_CHECK(universe_size <= 24 && "exhaustive model check too large");
  const uint64_t limit = uint64_t{1} << universe_size;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    std::vector<AtomId> atoms;
    for (size_t i = 0; i < universe_size; ++i) {
      if (mask & (uint64_t{1} << i)) atoms.push_back(static_cast<AtomId>(i));
    }
    Model model(std::move(atoms));
    if (SatisfiesAll(model, premises) && !Satisfies(model, target)) {
      return false;
    }
  }
  return true;
}

}  // namespace eid
