#include "logic/proposition.h"

#include <algorithm>

namespace eid {

AtomId AtomTable::Intern(const std::string& attribute, const Value& value) {
  AttributeAtoms& attr = by_attribute_[attribute];
  auto it = attr.by_value.find(value);
  if (it != attr.by_value.end()) return it->second;
  AtomId id = static_cast<AtomId>(atoms_.size());
  atoms_.push_back(Atom{attribute, value});
  attr.ids.push_back(id);
  attr.by_value.emplace(value, id);
  return id;
}

std::optional<AtomId> AtomTable::Find(const std::string& attribute,
                                      const Value& value) const {
  const AttributeAtoms* attr = AttributeIndex(attribute);
  if (attr == nullptr) return std::nullopt;
  auto it = attr->by_value.find(value);
  if (it == attr->by_value.end()) return std::nullopt;
  return it->second;
}

std::vector<AtomId> AtomTable::AtomsForAttribute(
    const std::string& attribute) const {
  const AttributeAtoms* attr = AttributeIndex(attribute);
  return attr != nullptr ? attr->ids : std::vector<AtomId>{};
}

const AtomTable::AttributeAtoms* AtomTable::AttributeIndex(
    const std::string& attribute) const {
  auto it = by_attribute_.find(attribute);
  return it != by_attribute_.end() ? &it->second : nullptr;
}

AtomSet::AtomSet(std::vector<AtomId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

bool AtomSet::Contains(AtomId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool AtomSet::ContainsAll(const AtomSet& other) const {
  return std::includes(ids_.begin(), ids_.end(), other.ids_.begin(),
                       other.ids_.end());
}

bool AtomSet::DisjointFrom(const AtomSet& other) const {
  size_t i = 0, j = 0;
  while (i < ids_.size() && j < other.ids_.size()) {
    if (ids_[i] == other.ids_[j]) return false;
    if (ids_[i] < other.ids_[j]) ++i;
    else ++j;
  }
  return true;
}

void AtomSet::Insert(AtomId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return;
  ids_.insert(it, id);
}

AtomSet AtomSet::UnionWith(const AtomSet& other) const {
  std::vector<AtomId> out;
  out.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(out));
  AtomSet result;
  result.ids_ = std::move(out);
  return result;
}

AtomSet AtomSet::IntersectWith(const AtomSet& other) const {
  std::vector<AtomId> out;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out));
  AtomSet result;
  result.ids_ = std::move(out);
  return result;
}

AtomSet AtomSet::Minus(const AtomSet& other) const {
  std::vector<AtomId> out;
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out));
  AtomSet result;
  result.ids_ = std::move(out);
  return result;
}

std::string AtomSet::ToString(const AtomTable& table) const {
  std::string out = "{";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += " ^ ";
    out += table.ToString(ids_[i]);
  }
  out += "}";
  return out;
}

}  // namespace eid
