#include "logic/implication.h"

#include <algorithm>
#include <map>

namespace eid {

std::vector<Implication> Decompose(const Implication& implication) {
  std::vector<Implication> out;
  out.reserve(implication.head.size());
  for (AtomId id : implication.head.ids()) {
    out.push_back(Implication{implication.body, AtomSet::Of({id})});
  }
  return out;
}

std::vector<Implication> CombineByBody(std::vector<Implication> implications) {
  std::map<AtomSet, AtomSet> by_body;
  for (const Implication& imp : implications) {
    auto [it, inserted] = by_body.emplace(imp.body, imp.head);
    if (!inserted) it->second = it->second.UnionWith(imp.head);
  }
  std::vector<Implication> out;
  out.reserve(by_body.size());
  for (const auto& [body, head] : by_body) {
    out.push_back(Implication{body, head});
  }
  return out;
}

}  // namespace eid
