// Armstrong's axioms for ILFDs (paper §5.2) as an explicit proof system.
//
// The paper proves (Theorem 1) that reflexivity, augmentation and
// transitivity are sound and complete for ILFD implication, and derives the
// union, pseudotransitivity and decomposition rules (Lemma 2). This module
// makes those derivations first-class objects:
//
//  * BuildProof(F, target)  — constructs a machine-checkable proof of
//    F ⊢ target using only the axioms (the constructive content of the
//    completeness theorem).
//  * VerifyProof            — independently checks every step, accepting
//    only legal axiom applications. Soundness tests pair this with random
//    model checking.
//
// Proof shape produced by BuildProof for X → Y:
//   X → X            (reflexivity)
//   then, for every knowledge-base clause B → H fired during closure:
//   X → K ∪ B        (established so far, B ⊆ K)   [reflexivity from K]
//   B → H            (given)
//   X → K ∪ H        via augmentation + transitivity
//   finally X → Y    (decomposition/reflexivity from X → X⁺)

#ifndef EID_LOGIC_ARMSTRONG_H_
#define EID_LOGIC_ARMSTRONG_H_

#include <string>
#include <vector>

#include "logic/kb.h"

namespace eid {

/// The inference rule used by one proof step.
enum class InferenceRule {
  kGiven,              // clause of the knowledge base
  kReflexivity,        // ⊢ X → Y where Y ⊆ X
  kAugmentation,       // X → Y ⊢ X∧Z → Y∧Z
  kTransitivity,       // X → Y, Y → Z ⊢ X → Z
  kUnion,              // X → Y, X → Z ⊢ X → Y∧Z          (derived)
  kPseudoTransitivity, // X → Y, W∧Y → Z ⊢ W∧X → Z        (derived)
  kDecomposition,      // X → Y∧Z ⊢ X → Z                 (derived)
};

const char* InferenceRuleName(InferenceRule rule);

/// One line of a proof: a conclusion plus how it was obtained.
struct ProofStep {
  InferenceRule rule = InferenceRule::kGiven;
  /// Indices (into the proof) of the premise steps; empty for kGiven /
  /// kReflexivity. For kAugmentation the augmenting set Z is implied by the
  /// conclusion; for kGiven, `given_index` names the knowledge-base clause.
  std::vector<size_t> premises;
  size_t given_index = 0;
  Implication conclusion;
};

/// A checkable derivation; the last step's conclusion is the theorem.
struct Proof {
  std::vector<ProofStep> steps;

  const Implication& Conclusion() const {
    EID_CHECK(!steps.empty());
    return steps.back().conclusion;
  }
  std::string ToString(const AtomTable& table) const;
};

/// Constructs a proof of `target` from `kb` using Armstrong's axioms.
/// Fails (NotFound) when kb does not entail target — by Theorem 1 this is
/// exactly when no proof exists.
Result<Proof> BuildProof(const KnowledgeBase& kb, const Implication& target);

/// Checks that every step of `proof` is a legal rule application over
/// `kb`'s clauses and that the final conclusion equals `target`.
Status VerifyProof(const KnowledgeBase& kb, const Proof& proof,
                   const Implication& target);

/// Applies the *union* rule to two implications. Error unless bodies match.
Result<Implication> ApplyUnion(const Implication& a, const Implication& b);

/// Applies *pseudotransitivity*: from X→Y and W∧Y→Z derive W∧X→Z.
/// `wy` must contain `xy.head` within its body; W = wy.body − xy.head.
Result<Implication> ApplyPseudoTransitivity(const Implication& xy,
                                            const Implication& wy);

/// Applies *decomposition*: from X→Y derive X→Z for Z ⊆ Y.
Result<Implication> ApplyDecomposition(const Implication& xy,
                                       const AtomSet& z);

}  // namespace eid

#endif  // EID_LOGIC_ARMSTRONG_H_
