// Interned propositional atoms.
//
// §5 of the paper reduces ILFD reasoning to propositional logic: each
// boolean condition `(A = a)` over an entity attribute becomes a
// propositional symbol. AtomTable interns (attribute, value) pairs to dense
// 32-bit ids so that closure computation and clause indexing are array-based.

#ifndef EID_LOGIC_PROPOSITION_H_
#define EID_LOGIC_PROPOSITION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/status.h"
#include "relational/value.h"

namespace eid {

/// Dense id of an interned propositional atom.
using AtomId = uint32_t;

/// One propositional symbol: the condition `attribute = value`.
struct Atom {
  std::string attribute;
  Value value;

  bool operator==(const Atom& other) const {
    return attribute == other.attribute && value == other.value;
  }

  /// "cuisine=Chinese" display form.
  std::string ToString() const { return attribute + "=" + value.ToString(); }
};

/// Bidirectional mapping Atom <-> AtomId. Append-only; ids are stable for
/// the table's lifetime.
class AtomTable {
 public:
  /// The atoms of one attribute, maintained incrementally by Intern: ids in
  /// ascending order, plus the value -> id map that seeds forward closures.
  /// References stay valid until the table is destroyed (append-only).
  struct AttributeAtoms {
    std::vector<AtomId> ids;
    std::unordered_map<Value, AtomId, ValueHash> by_value;
  };

  AtomTable() = default;

  /// Id of the atom, interning it on first use.
  AtomId Intern(const std::string& attribute, const Value& value);
  AtomId Intern(const Atom& atom) { return Intern(atom.attribute, atom.value); }

  /// Id of the atom if already interned.
  std::optional<AtomId> Find(const std::string& attribute,
                             const Value& value) const;

  size_t size() const { return atoms_.size(); }
  const Atom& atom(AtomId id) const {
    EID_CHECK(id < atoms_.size());
    return atoms_[id];
  }
  std::string ToString(AtomId id) const { return atom(id).ToString(); }

  /// All interned atoms whose attribute equals `attribute`.
  std::vector<AtomId> AtomsForAttribute(const std::string& attribute) const;

  /// The attribute's atom index, or nullptr if no atom uses it. Lets
  /// compiled programs borrow the per-attribute seed maps instead of
  /// rebuilding them per session (compile/derivation_program.cc).
  const AttributeAtoms* AttributeIndex(const std::string& attribute) const;

 private:
  // Lookup goes through by_attribute_: an attribute-string probe, then a
  // ValueHash probe — no composite key is materialised per Intern (the
  // IlfdSet construction behind snapshot loads interns hundreds of
  // thousands of atoms; a string build per probe dominated that path).
  std::vector<Atom> atoms_;
  std::unordered_map<std::string, AttributeAtoms> by_attribute_;
};

/// A sorted, duplicate-free set of atom ids (conjunction of symbols).
/// Kept as a value type: cheap to copy at the sizes ILFD reasoning uses.
class AtomSet {
 public:
  AtomSet() = default;
  explicit AtomSet(std::vector<AtomId> ids);

  static AtomSet Of(std::initializer_list<AtomId> ids) {
    return AtomSet(std::vector<AtomId>(ids));
  }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  const std::vector<AtomId>& ids() const { return ids_; }

  bool Contains(AtomId id) const;
  bool ContainsAll(const AtomSet& other) const;
  /// True if the sets share no atom.
  bool DisjointFrom(const AtomSet& other) const;

  void Insert(AtomId id);
  AtomSet UnionWith(const AtomSet& other) const;
  AtomSet IntersectWith(const AtomSet& other) const;
  AtomSet Minus(const AtomSet& other) const;

  bool operator==(const AtomSet& other) const { return ids_ == other.ids_; }
  bool operator<(const AtomSet& other) const { return ids_ < other.ids_; }

  /// "{a=1 ^ b=2}" display form.
  std::string ToString(const AtomTable& table) const;

 private:
  std::vector<AtomId> ids_;  // sorted, unique
};

}  // namespace eid

#endif  // EID_LOGIC_PROPOSITION_H_
