#include "logic/armstrong.h"

namespace eid {

const char* InferenceRuleName(InferenceRule rule) {
  switch (rule) {
    case InferenceRule::kGiven: return "given";
    case InferenceRule::kReflexivity: return "reflexivity";
    case InferenceRule::kAugmentation: return "augmentation";
    case InferenceRule::kTransitivity: return "transitivity";
    case InferenceRule::kUnion: return "union";
    case InferenceRule::kPseudoTransitivity: return "pseudotransitivity";
    case InferenceRule::kDecomposition: return "decomposition";
  }
  return "?";
}

std::string Proof::ToString(const AtomTable& table) const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    const ProofStep& s = steps[i];
    out += "[" + std::to_string(i) + "] " + s.conclusion.ToString(table) +
           "   (" + InferenceRuleName(s.rule);
    if (s.rule == InferenceRule::kGiven) {
      out += " F" + std::to_string(s.given_index);
    }
    for (size_t p : s.premises) out += " #" + std::to_string(p);
    out += ")\n";
  }
  return out;
}

Result<Proof> BuildProof(const KnowledgeBase& kb, const Implication& target) {
  ClosureResult closure = kb.ForwardClosure(target.body);
  if (!closure.atoms.ContainsAll(target.head)) {
    return Status::NotFound(
        "knowledge base does not entail the target implication");
  }

  Proof proof;
  const AtomSet& x = target.body;

  // [0] X -> X by reflexivity.
  proof.steps.push_back(ProofStep{
      InferenceRule::kReflexivity, {}, 0, Implication{x, x}});
  size_t current = 0;       // step proving X -> K
  AtomSet known = x;        // K

  for (size_t clause_index : closure.firing_order) {
    const Implication& clause = kb.clause(clause_index);
    if (known.ContainsAll(clause.head)) {
      // Firing added nothing new over this prefix; skip for brevity.
      continue;
    }
    // [g] B -> H (given).
    proof.steps.push_back(
        ProofStep{InferenceRule::kGiven, {}, clause_index, clause});
    size_t given = proof.steps.size() - 1;
    // [a] K -> K ∪ H by augmenting (B -> H) with Z = K  (B ⊆ K).
    AtomSet enlarged = known.UnionWith(clause.head);
    proof.steps.push_back(ProofStep{InferenceRule::kAugmentation,
                                    {given},
                                    0,
                                    Implication{known, enlarged}});
    size_t augmented = proof.steps.size() - 1;
    // [t] X -> K ∪ H by transitivity of (X -> K) and (K -> K ∪ H).
    proof.steps.push_back(ProofStep{InferenceRule::kTransitivity,
                                    {current, augmented},
                                    0,
                                    Implication{x, enlarged}});
    current = proof.steps.size() - 1;
    known = std::move(enlarged);
  }

  if (!(proof.steps[current].conclusion.head == target.head)) {
    // [d] X -> Y by decomposition from X -> X⁺.
    proof.steps.push_back(ProofStep{InferenceRule::kDecomposition,
                                    {current},
                                    0,
                                    Implication{x, target.head}});
  }
  return proof;
}

namespace {

Status CheckStep(const KnowledgeBase& kb, const Proof& proof, size_t index) {
  const ProofStep& s = proof.steps[index];
  for (size_t p : s.premises) {
    if (p >= index) {
      return Status::InvalidArgument("step premise references a later step");
    }
  }
  auto premise = [&](size_t i) -> const Implication& {
    return proof.steps[s.premises[i]].conclusion;
  };
  const Implication& c = s.conclusion;
  switch (s.rule) {
    case InferenceRule::kGiven: {
      if (s.given_index >= kb.size() || !(kb.clause(s.given_index) == c)) {
        return Status::InvalidArgument("'given' step does not match clause");
      }
      return Status::Ok();
    }
    case InferenceRule::kReflexivity: {
      if (!c.body.ContainsAll(c.head)) {
        return Status::InvalidArgument("reflexivity requires head ⊆ body");
      }
      return Status::Ok();
    }
    case InferenceRule::kAugmentation: {
      if (s.premises.size() != 1) {
        return Status::InvalidArgument("augmentation takes one premise");
      }
      const Implication& p = premise(0);
      // ∃Z: c.body = p.body ∪ Z and c.head = p.head ∪ Z. Necessary and
      // sufficient conditions (see header):
      bool ok = c.body.ContainsAll(p.body) && c.head.ContainsAll(p.head) &&
                c.body.ContainsAll(c.head.Minus(p.head)) &&
                c.head.ContainsAll(c.body.Minus(p.body));
      if (!ok) return Status::InvalidArgument("illegal augmentation");
      return Status::Ok();
    }
    case InferenceRule::kTransitivity: {
      if (s.premises.size() != 2) {
        return Status::InvalidArgument("transitivity takes two premises");
      }
      const Implication& p1 = premise(0);
      const Implication& p2 = premise(1);
      bool ok = c.body == p1.body && p1.head == p2.body && c.head == p2.head;
      if (!ok) return Status::InvalidArgument("illegal transitivity");
      return Status::Ok();
    }
    case InferenceRule::kUnion: {
      if (s.premises.size() != 2) {
        return Status::InvalidArgument("union takes two premises");
      }
      const Implication& p1 = premise(0);
      const Implication& p2 = premise(1);
      bool ok = p1.body == p2.body && c.body == p1.body &&
                c.head == p1.head.UnionWith(p2.head);
      if (!ok) return Status::InvalidArgument("illegal union");
      return Status::Ok();
    }
    case InferenceRule::kPseudoTransitivity: {
      if (s.premises.size() != 2) {
        return Status::InvalidArgument("pseudotransitivity takes two premises");
      }
      const Implication& xy = premise(0);
      const Implication& wy = premise(1);
      if (!wy.body.ContainsAll(xy.head)) {
        return Status::InvalidArgument(
            "pseudotransitivity: first head not in second body");
      }
      AtomSet w = wy.body.Minus(xy.head);
      bool ok = c.body == w.UnionWith(xy.body) && c.head == wy.head;
      if (!ok) return Status::InvalidArgument("illegal pseudotransitivity");
      return Status::Ok();
    }
    case InferenceRule::kDecomposition: {
      if (s.premises.size() != 1) {
        return Status::InvalidArgument("decomposition takes one premise");
      }
      const Implication& p = premise(0);
      bool ok = c.body == p.body && p.head.ContainsAll(c.head);
      if (!ok) return Status::InvalidArgument("illegal decomposition");
      return Status::Ok();
    }
  }
  return Status::Internal("unknown inference rule");
}

}  // namespace

Status VerifyProof(const KnowledgeBase& kb, const Proof& proof,
                   const Implication& target) {
  if (proof.steps.empty()) {
    return Status::InvalidArgument("empty proof");
  }
  for (size_t i = 0; i < proof.steps.size(); ++i) {
    EID_RETURN_IF_ERROR(CheckStep(kb, proof, i));
  }
  if (!(proof.Conclusion() == target)) {
    return Status::InvalidArgument("proof concludes a different implication");
  }
  return Status::Ok();
}

Result<Implication> ApplyUnion(const Implication& a, const Implication& b) {
  if (!(a.body == b.body)) {
    return Status::InvalidArgument("union rule requires identical bodies");
  }
  return Implication{a.body, a.head.UnionWith(b.head)};
}

Result<Implication> ApplyPseudoTransitivity(const Implication& xy,
                                            const Implication& wy) {
  if (!wy.body.ContainsAll(xy.head)) {
    return Status::InvalidArgument(
        "pseudotransitivity requires the first implication's head inside the "
        "second's body");
  }
  AtomSet w = wy.body.Minus(xy.head);
  return Implication{w.UnionWith(xy.body), wy.head};
}

Result<Implication> ApplyDecomposition(const Implication& xy,
                                       const AtomSet& z) {
  if (!xy.head.ContainsAll(z)) {
    return Status::InvalidArgument("decomposition target not within head");
  }
  return Implication{xy.body, z};
}

}  // namespace eid
