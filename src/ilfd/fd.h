// Classical functional dependencies and the ILFD↔FD bridge.
//
// §5.1 of the paper relates the two constraint kinds: Proposition 2 states
// that if, for *every* combination of values a_1…a_m in the domains of
// A_1…A_m, there is an ILFD ((A_1=a_1) ∧…∧ (A_m=a_m)) → ((B_1=b_1) ∧…),
// then the FD {A_1…A_m} → {B_1…B_n} holds. The converse fails: an FD does
// not name values. This module implements FDs (satisfaction, attribute
// closure, implication) and the Proposition 2 check over a relation's
// active domain.

#ifndef EID_ILFD_FD_H_
#define EID_ILFD_FD_H_

#include <set>
#include <string>
#include <vector>

#include "ilfd/ilfd_set.h"
#include "relational/relation.h"

namespace eid {

/// A classical functional dependency LHS → RHS over attribute names.
struct Fd {
  std::set<std::string> lhs;
  std::set<std::string> rhs;

  bool operator==(const Fd& other) const {
    return lhs == other.lhs && rhs == other.rhs;
  }

  /// "{name,street} -> {city}" display form.
  std::string ToString() const;
};

/// True iff `relation` satisfies `fd`: tuples agreeing on lhs agree on rhs.
/// NULLs compare with storage equality (NULL == NULL), the usual convention
/// for FD checking over incomplete relations.
Result<bool> FdHolds(const Relation& relation, const Fd& fd);

/// Attribute closure X⁺ under a set of FDs (the classical algorithm the
/// paper says ILFD symbol closure mirrors).
std::set<std::string> AttributeClosure(const std::set<std::string>& attrs,
                                       const std::vector<Fd>& fds);

/// FD implication: F ⊨ fd, via attribute closure.
bool FdImplies(const std::vector<Fd>& fds, const Fd& fd);

/// Proposition 2 premise check: does `ilfds` contain (or imply), for every
/// combination of lhs-attribute values *appearing in `relation`* (its
/// active domain), an ILFD mapping that combination to a value of every rhs
/// attribute? When it does, Proposition 2 guarantees the FD holds in every
/// relation satisfying the ILFDs; the returned flag reports the premise.
Result<bool> IlfdFamilyCoversFd(const IlfdSet& ilfds, const Relation& relation,
                                const Fd& fd);

}  // namespace eid

#endif  // EID_ILFD_FD_H_
