#include "ilfd/ilfd_set.h"

#include <algorithm>

namespace eid {
namespace {

/// Enumeration budget for DerivedIlfds (candidate antecedents examined).
constexpr size_t kDerivedEnumerationCap = 200000;

}  // namespace

IlfdSet::IlfdSet(std::vector<Ilfd> ilfds) {
  for (Ilfd& f : ilfds) Add(std::move(f));
}

size_t IlfdSet::Add(Ilfd ilfd) {
  Implication imp = ToImplication(ilfd, &atoms_);
  kb_.Add(std::move(imp));
  ilfds_.push_back(std::move(ilfd));
  return ilfds_.size() - 1;
}

Result<size_t> IlfdSet::AddText(const std::string& text) {
  EID_ASSIGN_OR_RETURN(Ilfd f, ParseIlfd(text));
  return Add(std::move(f));
}

Implication IlfdSet::ToImplication(const Ilfd& f, AtomTable* table) const {
  std::vector<AtomId> body, head;
  for (const Atom& a : f.antecedent()) body.push_back(table->Intern(a));
  for (const Atom& a : f.consequent()) head.push_back(table->Intern(a));
  return Implication{AtomSet(std::move(body)), AtomSet(std::move(head))};
}

std::vector<Atom> IlfdSet::ConditionClosure(
    const std::vector<Atom>& conditions) const {
  // Scratch copy: ids of already-interned atoms are stable (append-only),
  // so kb_'s clauses remain valid against the extended table.
  AtomTable scratch = atoms_;
  std::vector<AtomId> seed;
  seed.reserve(conditions.size());
  for (const Atom& c : conditions) seed.push_back(scratch.Intern(c));
  ClosureResult closure = kb_.ForwardClosure(AtomSet(std::move(seed)));
  std::vector<Atom> out;
  out.reserve(closure.atoms.size());
  for (AtomId id : closure.atoms.ids()) out.push_back(scratch.atom(id));
  return out;
}

bool IlfdSet::Implies(const Ilfd& f) const {
  AtomTable scratch = atoms_;
  Implication target = ToImplication(f, &scratch);
  return kb_.Implies(target);
}

Result<Proof> IlfdSet::Prove(const Ilfd& f, AtomTable* table_out) const {
  AtomTable scratch = atoms_;
  Implication target = ToImplication(f, &scratch);
  if (table_out != nullptr) *table_out = scratch;
  return BuildProof(kb_, target);
}

bool IlfdSet::EquivalentTo(const IlfdSet& other) const {
  for (const Ilfd& f : other.ilfds_) {
    if (!Implies(f)) return false;
  }
  for (const Ilfd& f : ilfds_) {
    if (!other.Implies(f)) return false;
  }
  return true;
}

bool IlfdSet::IsRedundant(size_t index) const {
  EID_CHECK(index < ilfds_.size());
  IlfdSet rest;
  for (size_t i = 0; i < ilfds_.size(); ++i) {
    if (i != index) rest.Add(ilfds_[i]);
  }
  return rest.Implies(ilfds_[index]);
}

IlfdSet IlfdSet::MinimalCover() const {
  // 1. Decompose to single-consequent form.
  std::vector<Ilfd> work;
  for (const Ilfd& f : ilfds_) {
    for (const Atom& c : f.consequent()) {
      work.push_back(Ilfd::Implies(f.antecedent(), c));
    }
  }
  // 2. Remove extraneous antecedent conditions (tested against the full
  //    original set, per the standard FD minimal-cover algorithm).
  for (Ilfd& f : work) {
    bool changed = true;
    while (changed && f.antecedent().size() > 1) {
      changed = false;
      const std::vector<Atom>& ante = f.antecedent();
      for (size_t i = 0; i < ante.size(); ++i) {
        std::vector<Atom> reduced;
        for (size_t j = 0; j < ante.size(); ++j) {
          if (j != i) reduced.push_back(ante[j]);
        }
        Ilfd candidate(reduced, f.consequent());
        if (Implies(candidate)) {
          f = std::move(candidate);
          changed = true;
          break;
        }
      }
    }
  }
  // 3. Drop ILFDs implied by the remainder, and exact duplicates/trivial.
  std::vector<Ilfd> kept;
  std::vector<bool> alive(work.size(), true);
  for (size_t i = 0; i < work.size(); ++i) {
    if (work[i].IsTrivial()) {
      alive[i] = false;
      continue;
    }
    IlfdSet rest;
    for (size_t j = 0; j < work.size(); ++j) {
      if (j != i && alive[j]) rest.Add(work[j]);
    }
    if (rest.Implies(work[i])) alive[i] = false;
  }
  IlfdSet cover;
  for (size_t i = 0; i < work.size(); ++i) {
    if (alive[i]) cover.Add(work[i]);
  }
  return cover;
}

std::vector<Ilfd> IlfdSet::DerivedIlfds(size_t max_antecedent) const {
  // Universe: distinct antecedent atoms across the set.
  std::vector<AtomId> universe;
  {
    AtomSet seen;
    for (const Ilfd& f : ilfds_) {
      for (const Atom& a : f.antecedent()) {
        std::optional<AtomId> id = atoms_.Find(a.attribute, a.value);
        EID_CHECK(id.has_value());
        if (!seen.Contains(*id)) {
          seen.Insert(*id);
          universe.push_back(*id);
        }
      }
    }
  }
  std::sort(universe.begin(), universe.end());

  std::vector<Ilfd> derived;
  size_t examined = 0;

  // Enumerate subsets of the universe of size 1..max_antecedent.
  std::vector<size_t> pick;
  auto consider = [&](const std::vector<size_t>& indices) {
    std::vector<AtomId> body_ids;
    for (size_t i : indices) body_ids.push_back(universe[i]);
    AtomSet body(body_ids);
    ClosureResult closure = kb_.ForwardClosure(body);
    for (AtomId b : closure.atoms.ids()) {
      if (body.Contains(b)) continue;
      // Minimality: no proper subset of body derives b.
      bool minimal = true;
      for (size_t skip = 0; skip < body_ids.size() && minimal; ++skip) {
        std::vector<AtomId> sub;
        for (size_t j = 0; j < body_ids.size(); ++j) {
          if (j != skip) sub.push_back(body_ids[j]);
        }
        if (kb_.ForwardClosure(AtomSet(sub)).atoms.Contains(b)) {
          minimal = false;
        }
      }
      if (!minimal) continue;
      std::vector<Atom> ante;
      for (AtomId id : body.ids()) ante.push_back(atoms_.atom(id));
      Ilfd candidate = Ilfd::Implies(ante, atoms_.atom(b));
      // Skip ILFDs already given syntactically.
      if (std::find(ilfds_.begin(), ilfds_.end(), candidate) != ilfds_.end()) {
        continue;
      }
      derived.push_back(std::move(candidate));
    }
  };

  // Iterative subset enumeration by size.
  for (size_t k = 1; k <= max_antecedent && k <= universe.size(); ++k) {
    std::vector<size_t> idx(k);
    for (size_t i = 0; i < k; ++i) idx[i] = i;
    while (true) {
      if (++examined > kDerivedEnumerationCap) return derived;
      consider(idx);
      // Next combination.
      size_t i = k;
      while (i > 0) {
        --i;
        if (idx[i] != i + universe.size() - k) {
          ++idx[i];
          for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
          break;
        }
        if (i == 0) {
          i = k + 1;  // signal done
          break;
        }
      }
      if (i == k + 1) break;
    }
  }
  return derived;
}

std::string IlfdSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < ilfds_.size(); ++i) {
    out += "I";
    out += std::to_string(i + 1);
    out += ": ";
    out += ilfds_[i].ToString();
    out += "\n";
  }
  return out;
}

}  // namespace eid
