#include "ilfd/fd.h"

#include <unordered_map>

namespace eid {

std::string Fd::ToString() const {
  auto side = [](const std::set<std::string>& attrs) {
    std::string out = "{";
    bool first = true;
    for (const std::string& a : attrs) {
      if (!first) out += ",";
      first = false;
      out += a;
    }
    out += "}";
    return out;
  };
  return side(lhs) + " -> " + side(rhs);
}

Result<bool> FdHolds(const Relation& relation, const Fd& fd) {
  std::vector<size_t> lhs_idx, rhs_idx;
  for (const std::string& a : fd.lhs) {
    EID_ASSIGN_OR_RETURN(size_t i, relation.schema().RequireIndex(a));
    lhs_idx.push_back(i);
  }
  for (const std::string& a : fd.rhs) {
    EID_ASSIGN_OR_RETURN(size_t i, relation.schema().RequireIndex(a));
    rhs_idx.push_back(i);
  }
  auto fingerprint = [](const Row& row, const std::vector<size_t>& idx) {
    std::string fp;
    for (size_t i : idx) {
      std::string v = row[i].ToString();
      fp += std::to_string(v.size()) + ":" + v + "|" +
            static_cast<char>('0' + static_cast<int>(row[i].type()));
    }
    return fp;
  };
  std::unordered_map<std::string, std::string> seen;  // lhs fp -> rhs fp
  for (const Row& row : relation.rows()) {
    std::string l = fingerprint(row, lhs_idx);
    std::string r = fingerprint(row, rhs_idx);
    auto [it, inserted] = seen.emplace(l, r);
    if (!inserted && it->second != r) return false;
  }
  return true;
}

std::set<std::string> AttributeClosure(const std::set<std::string>& attrs,
                                       const std::vector<Fd>& fds) {
  std::set<std::string> closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds) {
      bool applies = true;
      for (const std::string& a : fd.lhs) {
        if (closure.count(a) == 0) {
          applies = false;
          break;
        }
      }
      if (!applies) continue;
      for (const std::string& a : fd.rhs) {
        if (closure.insert(a).second) changed = true;
      }
    }
  }
  return closure;
}

bool FdImplies(const std::vector<Fd>& fds, const Fd& fd) {
  std::set<std::string> closure = AttributeClosure(fd.lhs, fds);
  for (const std::string& a : fd.rhs) {
    if (closure.count(a) == 0) return false;
  }
  return true;
}

Result<bool> IlfdFamilyCoversFd(const IlfdSet& ilfds, const Relation& relation,
                                const Fd& fd) {
  std::vector<std::string> lhs(fd.lhs.begin(), fd.lhs.end());
  std::vector<size_t> lhs_idx;
  for (const std::string& a : lhs) {
    EID_ASSIGN_OR_RETURN(size_t i, relation.schema().RequireIndex(a));
    lhs_idx.push_back(i);
  }
  // Every lhs-value combination in the active domain must map, via the
  // ILFD closure, to a concrete value of every rhs attribute.
  for (const Row& row : relation.rows()) {
    std::vector<Atom> conditions;
    bool has_null = false;
    for (size_t k = 0; k < lhs.size(); ++k) {
      if (row[lhs_idx[k]].is_null()) {
        has_null = true;
        break;
      }
      conditions.push_back(Atom{lhs[k], row[lhs_idx[k]]});
    }
    if (has_null) continue;  // NULL combinations are outside any domain
    std::vector<Atom> closure = ilfds.ConditionClosure(conditions);
    for (const std::string& b : fd.rhs) {
      bool found = false;
      for (const Atom& atom : closure) {
        if (atom.attribute == b) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

}  // namespace eid
