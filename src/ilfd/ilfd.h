// Instance-level functional dependencies (ILFDs), paper §4.1 & §5.
//
// An ILFD is a semantic constraint on real-world entities:
//
//     (A_1 = a_1) ∧ … ∧ (A_n = a_n)  →  (B = b)
//
// e.g.  speciality=Mughalai → cuisine=Indian.  Unlike a classical FD, the
// antecedent and consequent name specific *values*; checking violation
// involves a single tuple; and the arrow is ordinary logical implication.
// ILFDs derive missing extended-key attribute values during entity
// identification.
//
// The consequent may be a conjunction (the paper combines ILFDs with equal
// antecedents); most ILFDs in practice have a single consequent atom.

#ifndef EID_ILFD_ILFD_H_
#define EID_ILFD_ILFD_H_

#include <string>
#include <vector>

#include "logic/proposition.h"
#include "relational/tuple.h"

namespace eid {

/// One instance-level functional dependency.
class Ilfd {
 public:
  Ilfd() = default;
  /// Precondition (checked): consequent non-empty; no attribute appears
  /// twice in the antecedent with different values; the consequent does not
  /// re-bind an antecedent attribute to a different value (that would be an
  /// unsatisfiable constraint the paper never allows).
  Ilfd(std::vector<Atom> antecedent, std::vector<Atom> consequent);

  /// Single-consequent convenience.
  static Ilfd Implies(std::vector<Atom> antecedent, Atom consequent) {
    return Ilfd(std::move(antecedent), {std::move(consequent)});
  }

  const std::vector<Atom>& antecedent() const { return antecedent_; }
  const std::vector<Atom>& consequent() const { return consequent_; }

  /// Attribute names mentioned in the antecedent / consequent.
  std::vector<std::string> AntecedentAttributes() const;
  std::vector<std::string> ConsequentAttributes() const;

  /// Trivial: every consequent atom already appears in the antecedent.
  bool IsTrivial() const;

  /// Unconditional: empty antecedent — the rule fires on every tuple, so
  /// under first-applicable-wins derivation no later rule for the same
  /// attribute (nor the §6.2 NULL default) can ever apply.
  bool IsUnconditional() const { return antecedent_.empty(); }

  /// True iff the tuple's values satisfy every antecedent condition.
  /// A NULL or missing attribute satisfies nothing (prototype semantics).
  bool AntecedentHolds(const TupleView& tuple) const;

  /// True iff the tuple satisfies the ILFD: antecedent false, or every
  /// consequent condition true. Violation checking involves one tuple
  /// (paper §4.1). NULL consequent values count as violations when the
  /// antecedent holds only if `null_violates` (a tuple that *lacks* the
  /// derived property is usually incomplete rather than inconsistent).
  bool SatisfiedBy(const TupleView& tuple, bool null_violates = false) const;

  /// "speciality=Mughalai -> cuisine=Indian" display form; conjunctions
  /// joined with " & ".
  std::string ToString() const;

  bool operator==(const Ilfd& other) const {
    return antecedent_ == other.antecedent_ && consequent_ == other.consequent_;
  }

 private:
  std::vector<Atom> antecedent_;  // sorted by attribute for canonical form
  std::vector<Atom> consequent_;  // sorted by attribute
};

/// Parses the textual ILFD format used throughout this library:
///
///     antecedent -> consequent
///     condition (& condition)*   on each side
///     condition := attribute = value
///     value     := "quoted string" | bare-token (int/double if numeric,
///                  string otherwise)
///
/// Example: `name=TwinCities & street=Co.B2 -> speciality=Hunan`.
Result<Ilfd> ParseIlfd(const std::string& text);

/// Parses one ILFD per non-empty, non-`#`-comment line.
Result<std::vector<Ilfd>> ParseIlfdList(const std::string& text);

/// Parses a single `attribute = value` condition.
Result<Atom> ParseCondition(const std::string& text);

}  // namespace eid

#endif  // EID_ILFD_ILFD_H_
