// Deriving missing attribute values of a tuple from ILFDs (paper §4.2 step
// 2: "Apply the available ILFDs to derive the values for K_Ext−R and
// K_Ext−S for each R' and S' tuple").
//
// Two strategies are provided:
//
//  * kFirstMatch — the Prolog prototype's semantics. Each ILFD rule ends
//    with a cut: for a queried attribute, rules are tried in declaration
//    order and the first whose antecedent succeeds commits the value.
//    Antecedent conditions may themselves query derived attributes
//    (backward chaining), as in the paper's I8 using the county derived by
//    I7. A NULL default applies when every rule fails (§6.2).
//
//  * kExhaustive — forward chaining to fixpoint, deriving every value any
//    ILFD can produce. Two ILFDs deriving *different* values for the same
//    attribute are reported as a conflict: under the paper's assumptions
//    (all tuples consistent with the ILFDs) this cannot happen, so a
//    conflict is evidence of dirty data or wrong ILFDs, and silently
//    picking one (as the prototype's cut does) risks unsound matches.
//
// Both record provenance: which ILFD produced each derived value.

#ifndef EID_ILFD_DERIVATION_H_
#define EID_ILFD_DERIVATION_H_

#include <map>
#include <string>
#include <vector>

#include "ilfd/ilfd_set.h"
#include "relational/tuple.h"

namespace eid {

/// Derivation strategy.
enum class DerivationMode {
  kFirstMatch,  // prototype (Prolog cut) semantics
  kExhaustive,  // fixpoint with conflict detection
};

/// What to do when exhaustive derivation finds two values for an attribute.
enum class ConflictPolicy {
  kError,      // fail the derivation (default: surface dirty data)
  kKeepFirst,  // keep the first-derived value, record the conflict
  kNullOut,    // derive NULL for the conflicted attribute, record it
};

/// One derived value with its provenance.
struct DerivationStep {
  std::string attribute;
  Value value;
  size_t ilfd_index = 0;  // index into the IlfdSet
};

/// Provenance sentinel used in DerivationConflict: the first value came
/// from the base tuple, not from an ILFD.
inline constexpr size_t kDerivationBaseProvenance = static_cast<size_t>(-1);

/// A conflicting second derivation for an already-derived attribute.
struct DerivationConflict {
  std::string attribute;
  Value first_value;
  Value second_value;
  size_t first_ilfd = 0;
  size_t second_ilfd = 0;
};

/// The ConstraintViolation status reported for an exhaustive-mode conflict
/// under ConflictPolicy::kError. `tuple_display` is the derived tuple's
/// TupleView::ToString() form. Shared between the interpreter and the
/// compiled engine (src/compile/) so their error text is byte-identical.
Status DerivationConflictError(const DerivationConflict& conflict,
                               const std::string& tuple_display);

/// Result of deriving one tuple's missing values.
struct Derivation {
  /// attribute -> derived value, for attributes not already non-NULL.
  std::map<std::string, Value> derived;
  /// Provenance, in derivation order.
  std::vector<DerivationStep> steps;
  /// Conflicts found (kExhaustive only; empty under kError since the
  /// derivation fails instead).
  std::vector<DerivationConflict> conflicts;
};

/// Options for DeriveTuple.
struct DerivationOptions {
  DerivationMode mode = DerivationMode::kExhaustive;
  ConflictPolicy conflict_policy = ConflictPolicy::kError;
  /// Attributes to derive; empty = every consequent attribute any ILFD can
  /// produce.
  std::vector<std::string> target_attributes;
};

/// Derives missing attribute values for `tuple` using `ilfds`.
/// Base (non-NULL) tuple values are never overwritten; an ILFD whose
/// consequent contradicts a base value is reported as a conflict against
/// the base data in kExhaustive mode and simply not applied in kFirstMatch
/// mode (the prototype asserts base facts ahead of rules, so rules for an
/// attribute are only reached when the base value is absent).
Result<Derivation> DeriveTuple(const TupleView& tuple, const IlfdSet& ilfds,
                               const DerivationOptions& options = {});

/// Batch form: reuses `evaluator` — which must have been constructed over
/// `ilfds.kb()` — across calls, so deriving a whole relation costs time
/// proportional to the clauses each tuple actually reaches instead of
/// O(|tuples| × |ILFDs|). Only kExhaustive mode uses the evaluator.
Result<Derivation> DeriveTuple(const TupleView& tuple, const IlfdSet& ilfds,
                               const DerivationOptions& options,
                               ClosureEvaluator* evaluator);

}  // namespace eid

#endif  // EID_ILFD_DERIVATION_H_
