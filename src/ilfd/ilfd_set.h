// Sets of ILFDs with the §5 reasoning operations.
//
// An IlfdSet owns an AtomTable interning every (attribute = value)
// condition it has seen, and mirrors its ILFDs into a logic::KnowledgeBase,
// giving:
//
//  * ConditionClosure  — X⁺_F, the closure of a set of conditions
//    (linear-time; the paper notes this mirrors FD attribute closure),
//  * Implies           — F ⊨ f, decided via closure (Theorem 1),
//  * Prove             — an explicit Armstrong-axiom proof of F ⊢ f,
//  * EquivalentTo      — mutual implication of two sets,
//  * MinimalCover      — redundancy removal (extraneous antecedent
//    conditions, then implied ILFDs),
//  * DerivedIlfds      — non-trivial single-consequent ILFDs in F⁺ whose
//    conditions come from a bounded atom universe (used to surface rules
//    like the paper's I9 from I7 + I8). The full closure F⁺ is exponential
//    (§5.2); this enumerates only antecedents that are subsets of existing
//    ILFD antecedent unions, which covers the compositions used in
//    practice.

#ifndef EID_ILFD_ILFD_SET_H_
#define EID_ILFD_ILFD_SET_H_

#include <string>
#include <vector>

#include "ilfd/ilfd.h"
#include "logic/armstrong.h"
#include "logic/kb.h"

namespace eid {

/// An indexed collection of ILFDs over one entity type.
class IlfdSet {
 public:
  IlfdSet() = default;
  explicit IlfdSet(std::vector<Ilfd> ilfds);

  /// Appends an ILFD; returns its index.
  size_t Add(Ilfd ilfd);
  /// Parses and appends; error on bad syntax.
  Result<size_t> AddText(const std::string& text);

  size_t size() const { return ilfds_.size(); }
  bool empty() const { return ilfds_.empty(); }
  const Ilfd& ilfd(size_t i) const { return ilfds_[i]; }
  const std::vector<Ilfd>& ilfds() const { return ilfds_; }

  const AtomTable& atoms() const { return atoms_; }
  const KnowledgeBase& kb() const { return kb_; }

  /// Closure of the given conditions under this set: every condition
  /// derivable from them. Input conditions are included in the output.
  std::vector<Atom> ConditionClosure(const std::vector<Atom>& conditions) const;

  /// F ⊨ f. ILFDs whose conditions were never interned are handled
  /// correctly (an unseen consequent atom is underivable unless present in
  /// the antecedent).
  bool Implies(const Ilfd& f) const;

  /// Armstrong-axiom proof of F ⊢ f; NotFound when F does not entail f.
  /// When `table_out` is non-null it receives an atom table covering every
  /// atom the proof mentions (use it for Proof::ToString — the proof may
  /// reference atoms of f that this set never interned).
  Result<Proof> Prove(const Ilfd& f, AtomTable* table_out = nullptr) const;

  /// Mutual implication: this ⊨ every ILFD of other, and vice versa.
  bool EquivalentTo(const IlfdSet& other) const;

  /// True iff removing index `i` leaves an equivalent set.
  bool IsRedundant(size_t i) const;

  /// A minimal cover: antecedent conditions that are extraneous are
  /// removed, then ILFDs implied by the rest are dropped. The result is
  /// equivalent to this set.
  IlfdSet MinimalCover() const;

  /// Derived non-trivial ILFDs (see header comment). `max_antecedent`
  /// bounds enumerated antecedent size.
  std::vector<Ilfd> DerivedIlfds(size_t max_antecedent = 3) const;

  /// Converts an ILFD into an Implication over this set's atom table,
  /// interning new conditions into a scratch copy when needed. Marked const
  /// because reasoning helpers need it; uses the mutable scratch table.
  Implication ToImplication(const Ilfd& f, AtomTable* table) const;

  std::string ToString() const;

 private:
  std::vector<Ilfd> ilfds_;
  AtomTable atoms_;
  KnowledgeBase kb_;
};

}  // namespace eid

#endif  // EID_ILFD_ILFD_SET_H_
