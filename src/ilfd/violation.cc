#include "ilfd/violation.h"

namespace eid {

bool RelationSatisfies(const Relation& relation, const Ilfd& ilfd,
                       bool null_violates) {
  for (size_t i = 0; i < relation.size(); ++i) {
    if (!ilfd.SatisfiedBy(relation.tuple(i), null_violates)) return false;
  }
  return true;
}

std::vector<IlfdViolation> CheckViolations(const Relation& relation,
                                           const IlfdSet& ilfds,
                                           const ViolationOptions& options) {
  std::vector<IlfdViolation> out;
  for (size_t r = 0; r < relation.size(); ++r) {
    TupleView tuple = relation.tuple(r);
    // Direct checks, attributable to a specific ILFD.
    for (size_t fi = 0; fi < ilfds.size(); ++fi) {
      if (!ilfds.ilfd(fi).SatisfiedBy(tuple, options.null_violates)) {
        out.push_back(IlfdViolation{
            r, fi,
            "tuple " + tuple.ToString() + " violates " +
                ilfds.ilfd(fi).ToString()});
      }
    }
    if (!options.check_derived) continue;
    // Closure check: conditions derivable from the tuple's non-NULL values
    // must not contradict any non-NULL value.
    std::vector<Atom> conditions;
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (!tuple.at(i).is_null()) {
        conditions.push_back(
            Atom{tuple.schema().attribute(i).name, tuple.at(i)});
      }
    }
    std::vector<Atom> closure = ilfds.ConditionClosure(conditions);
    for (const Atom& derived : closure) {
      Value actual = tuple.GetOrNull(derived.attribute);
      if (actual.is_null() || actual == derived.value) continue;
      // Attribute the contradiction to the first ILFD with this consequent
      // attribute (best-effort provenance for the report).
      size_t culprit = 0;
      for (size_t fi = 0; fi < ilfds.size(); ++fi) {
        for (const Atom& c : ilfds.ilfd(fi).consequent()) {
          if (c.attribute == derived.attribute && c.value == derived.value) {
            culprit = fi;
            break;
          }
        }
      }
      // Skip duplicates already reported by the direct check.
      bool already = false;
      for (const IlfdViolation& v : out) {
        if (v.row_index == r && v.ilfd_index == culprit) {
          already = true;
          break;
        }
      }
      if (already) continue;
      out.push_back(IlfdViolation{
          r, culprit,
          "tuple " + tuple.ToString() + " contradicts derived condition " +
              derived.ToString()});
    }
  }
  return out;
}

}  // namespace eid
