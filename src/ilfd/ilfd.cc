#include "ilfd/ilfd.h"

#include <algorithm>
#include <cctype>

namespace eid {
namespace {

void SortByAttribute(std::vector<Atom>* atoms) {
  std::sort(atoms->begin(), atoms->end(), [](const Atom& a, const Atom& b) {
    if (a.attribute != b.attribute) return a.attribute < b.attribute;
    return a.value < b.value;
  });
  atoms->erase(std::unique(atoms->begin(), atoms->end()), atoms->end());
}

/// Verifies no attribute is bound to two different values within `atoms`.
bool ConsistentBindings(const std::vector<Atom>& atoms) {
  for (size_t i = 1; i < atoms.size(); ++i) {
    if (atoms[i].attribute == atoms[i - 1].attribute &&
        !(atoms[i].value == atoms[i - 1].value)) {
      return false;
    }
  }
  return true;
}

bool TupleMeets(const TupleView& tuple, const Atom& condition) {
  Value v = tuple.GetOrNull(condition.attribute);
  return NonNullEq(v, condition.value);
}

std::string TrimCopy(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Splits on `delim` at top level (outside double quotes).
std::vector<std::string> SplitOutsideQuotes(const std::string& s,
                                            char delim) {
  std::vector<std::string> parts;
  std::string cur;
  bool in_quotes = false;
  for (char c : s) {
    if (c == '"') in_quotes = !in_quotes;
    if (c == delim && !in_quotes) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

Result<Value> ParseValueToken(const std::string& raw) {
  std::string token = TrimCopy(raw);
  if (token.empty()) {
    return Status::InvalidArgument("empty value in condition");
  }
  if (token.front() == '"') {
    if (token.size() < 2 || token.back() != '"') {
      return Status::InvalidArgument("unterminated quoted value: " + token);
    }
    return Value::String(token.substr(1, token.size() - 2));
  }
  if (token == "null") return Value::Null();
  if (token == "true") return Value::Bool(true);
  if (token == "false") return Value::Bool(false);
  // Numeric?
  bool numeric = true, has_dot = false;
  for (size_t i = 0; i < token.size(); ++i) {
    char c = token[i];
    if (c == '-' && i == 0) continue;
    if (c == '.') {
      if (has_dot) numeric = false;
      has_dot = true;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) numeric = false;
  }
  if (numeric && token != "-" && token != ".") {
    if (has_dot) {
      Result<Value> v = Value::Parse(token, ValueType::kDouble);
      if (v.ok()) return v;
    } else {
      Result<Value> v = Value::Parse(token, ValueType::kInt);
      if (v.ok()) return v;
    }
  }
  return Value::String(token);
}

Result<std::vector<Atom>> ParseConjunction(const std::string& side) {
  std::vector<Atom> atoms;
  for (const std::string& piece : SplitOutsideQuotes(side, '&')) {
    std::string p = TrimCopy(piece);
    if (p.empty()) {
      return Status::InvalidArgument("empty conjunct in ILFD: '" + side + "'");
    }
    EID_ASSIGN_OR_RETURN(Atom atom, ParseCondition(p));
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

}  // namespace

Ilfd::Ilfd(std::vector<Atom> antecedent, std::vector<Atom> consequent)
    : antecedent_(std::move(antecedent)), consequent_(std::move(consequent)) {
  EID_CHECK(!consequent_.empty() && "ILFD requires a consequent");
  SortByAttribute(&antecedent_);
  SortByAttribute(&consequent_);
  EID_CHECK(ConsistentBindings(antecedent_) &&
            "ILFD antecedent binds an attribute twice");
  EID_CHECK(ConsistentBindings(consequent_) &&
            "ILFD consequent binds an attribute twice");
  // The consequent may not contradict the antecedent.
  for (const Atom& c : consequent_) {
    for (const Atom& a : antecedent_) {
      EID_CHECK(!(a.attribute == c.attribute && !(a.value == c.value)) &&
                "ILFD consequent contradicts its antecedent");
    }
  }
}

std::vector<std::string> Ilfd::AntecedentAttributes() const {
  std::vector<std::string> out;
  for (const Atom& a : antecedent_) out.push_back(a.attribute);
  return out;
}

std::vector<std::string> Ilfd::ConsequentAttributes() const {
  std::vector<std::string> out;
  for (const Atom& a : consequent_) out.push_back(a.attribute);
  return out;
}

bool Ilfd::IsTrivial() const {
  for (const Atom& c : consequent_) {
    if (std::find(antecedent_.begin(), antecedent_.end(), c) ==
        antecedent_.end()) {
      return false;
    }
  }
  return true;
}

bool Ilfd::AntecedentHolds(const TupleView& tuple) const {
  for (const Atom& a : antecedent_) {
    if (!TupleMeets(tuple, a)) return false;
  }
  return true;
}

bool Ilfd::SatisfiedBy(const TupleView& tuple, bool null_violates) const {
  if (!AntecedentHolds(tuple)) return true;
  for (const Atom& c : consequent_) {
    Value v = tuple.GetOrNull(c.attribute);
    if (v.is_null()) {
      if (null_violates) return false;
      continue;
    }
    if (!(v == c.value)) return false;
  }
  return true;
}

std::string Ilfd::ToString() const {
  auto side = [](const std::vector<Atom>& atoms) {
    std::string out;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (i > 0) out += " & ";
      out += atoms[i].ToString();
    }
    return out;
  };
  return side(antecedent_) + " -> " + side(consequent_);
}

Result<Atom> ParseCondition(const std::string& text) {
  std::vector<std::string> sides = SplitOutsideQuotes(text, '=');
  if (sides.size() != 2) {
    return Status::InvalidArgument("condition must be 'attribute = value': '" +
                                   text + "'");
  }
  std::string attribute = TrimCopy(sides[0]);
  if (attribute.empty()) {
    return Status::InvalidArgument("empty attribute in condition: '" + text +
                                   "'");
  }
  EID_ASSIGN_OR_RETURN(Value value, ParseValueToken(sides[1]));
  return Atom{attribute, std::move(value)};
}

Result<Ilfd> ParseIlfd(const std::string& text) {
  size_t arrow = std::string::npos;
  bool in_quotes = false;
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '"') in_quotes = !in_quotes;
    if (!in_quotes && text[i] == '-' && text[i + 1] == '>') {
      arrow = i;
      break;
    }
  }
  if (arrow == std::string::npos) {
    return Status::InvalidArgument("ILFD missing '->': '" + text + "'");
  }
  EID_ASSIGN_OR_RETURN(std::vector<Atom> antecedent,
                       ParseConjunction(text.substr(0, arrow)));
  EID_ASSIGN_OR_RETURN(std::vector<Atom> consequent,
                       ParseConjunction(text.substr(arrow + 2)));
  if (consequent.empty()) {
    return Status::InvalidArgument("ILFD has empty consequent: '" + text + "'");
  }
  return Ilfd(std::move(antecedent), std::move(consequent));
}

Result<std::vector<Ilfd>> ParseIlfdList(const std::string& text) {
  std::vector<Ilfd> out;
  std::string line;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    line = TrimCopy(text.substr(start, end - start));
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    EID_ASSIGN_OR_RETURN(Ilfd ilfd, ParseIlfd(line));
    out.push_back(std::move(ilfd));
    if (end == text.size()) break;
  }
  return out;
}

}  // namespace eid
