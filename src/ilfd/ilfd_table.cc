#include "ilfd/ilfd_table.h"

#include <algorithm>
#include <map>

namespace eid {
namespace {

std::string TableName(const std::vector<std::string>& antecedent,
                      const std::string& consequent) {
  std::string name = "IM(";
  for (size_t i = 0; i < antecedent.size(); ++i) {
    if (i > 0) name += ",";
    name += antecedent[i];
  }
  name += ";" + consequent + ")";
  return name;
}

}  // namespace

IlfdTable::IlfdTable(std::vector<std::string> antecedent_attributes,
                     std::string consequent_attribute)
    : antecedent_attributes_(std::move(antecedent_attributes)),
      consequent_attribute_(std::move(consequent_attribute)) {
  EID_CHECK(!antecedent_attributes_.empty());
  std::sort(antecedent_attributes_.begin(), antecedent_attributes_.end());
  std::vector<std::string> names = antecedent_attributes_;
  names.push_back(consequent_attribute_);
  relation_ = Relation(TableName(antecedent_attributes_, consequent_attribute_),
                       Schema::OfStrings(names));
  Status st = relation_.DeclareKey(antecedent_attributes_);
  EID_CHECK(st.ok());
}

Status IlfdTable::AddEntry(std::vector<Value> antecedent_values,
                           Value consequent_value) {
  if (antecedent_values.size() != antecedent_attributes_.size()) {
    return Status::InvalidArgument("IM entry arity mismatch");
  }
  Row row = std::move(antecedent_values);
  row.push_back(std::move(consequent_value));
  return relation_.Insert(std::move(row));
}

Status IlfdTable::AddIlfd(const Ilfd& ilfd) {
  if (ilfd.consequent().size() != 1 ||
      ilfd.consequent()[0].attribute != consequent_attribute_) {
    return Status::InvalidArgument("ILFD consequent does not match IM table '" +
                                   relation_.name() + "'");
  }
  if (ilfd.AntecedentAttributes() != antecedent_attributes_) {
    return Status::InvalidArgument(
        "ILFD antecedent attributes do not match IM table '" +
        relation_.name() + "'");
  }
  std::vector<Value> values;
  for (const Atom& a : ilfd.antecedent()) values.push_back(a.value);
  return AddEntry(std::move(values), ilfd.consequent()[0].value);
}

Value IlfdTable::Lookup(const TupleView& tuple) const {
  Row key;
  key.reserve(antecedent_attributes_.size());
  for (const std::string& attr : antecedent_attributes_) {
    Value v = tuple.GetOrNull(attr);
    if (v.is_null()) return Value::Null();
    key.push_back(std::move(v));
  }
  // IM is keyed on the antecedent, so at most one row matches.
  for (const Row& row : relation_.rows()) {
    bool match = true;
    for (size_t i = 0; i < key.size(); ++i) {
      if (!(row[i] == key[i])) {
        match = false;
        break;
      }
    }
    if (match) return row.back();
  }
  return Value::Null();
}

std::vector<Ilfd> IlfdTable::ToIlfds() const {
  std::vector<Ilfd> out;
  out.reserve(relation_.size());
  for (const Row& row : relation_.rows()) {
    std::vector<Atom> antecedent;
    for (size_t i = 0; i < antecedent_attributes_.size(); ++i) {
      antecedent.push_back(Atom{antecedent_attributes_[i], row[i]});
    }
    out.push_back(
        Ilfd::Implies(std::move(antecedent),
                      Atom{consequent_attribute_, row.back()}));
  }
  return out;
}

Result<std::vector<IlfdTable>> IlfdTable::Partition(
    const std::vector<Ilfd>& ilfds) {
  // Group key: sorted antecedent attributes + consequent attribute.
  std::map<std::pair<std::vector<std::string>, std::string>,
           std::vector<const Ilfd*>>
      groups;
  for (const Ilfd& f : ilfds) {
    if (f.consequent().size() != 1) {
      return Status::InvalidArgument(
          "Partition requires single-consequent ILFDs; decompose '" +
          f.ToString() + "' first");
    }
    groups[{f.AntecedentAttributes(), f.consequent()[0].attribute}].push_back(
        &f);
  }
  std::vector<IlfdTable> tables;
  for (const auto& [format, members] : groups) {
    IlfdTable table(format.first, format.second);
    for (const Ilfd* f : members) {
      EID_RETURN_IF_ERROR(table.AddIlfd(*f));
    }
    tables.push_back(std::move(table));
  }
  return tables;
}

Result<IlfdTable> IlfdTable::FromIlfds(const std::vector<Ilfd>& ilfds) {
  if (ilfds.empty()) {
    return Status::InvalidArgument("FromIlfds: empty ILFD list");
  }
  EID_ASSIGN_OR_RETURN(std::vector<IlfdTable> tables, Partition(ilfds));
  if (tables.size() != 1) {
    return Status::InvalidArgument(
        "FromIlfds: ILFDs have " + std::to_string(tables.size()) +
        " distinct formats; use Partition");
  }
  return std::move(tables.front());
}

}  // namespace eid
