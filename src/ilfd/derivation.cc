#include "ilfd/derivation.h"

#include <set>
#include <unordered_set>

namespace eid {

Status DerivationConflictError(const DerivationConflict& conflict,
                               const std::string& tuple_display) {
  return Status::ConstraintViolation(
      "ILFD derivation conflict on attribute '" + conflict.attribute +
      "': '" + conflict.first_value.ToString() + "' (from " +
      (conflict.first_ilfd == kDerivationBaseProvenance
           ? std::string("base tuple")
           : "ILFD " + std::to_string(conflict.first_ilfd)) +
      ") vs '" + conflict.second_value.ToString() + "' (from ILFD " +
      std::to_string(conflict.second_ilfd) + ") for tuple " + tuple_display);
}

namespace {

/// Provenance sentinel for values present in the base tuple.
constexpr size_t kBaseProvenance = kDerivationBaseProvenance;

struct Binding {
  Value value;
  size_t source = kBaseProvenance;
};

/// Exhaustive derivation via the ILFD set's knowledge base: one
/// forward-closure call per tuple (the linear-time counting algorithm)
/// instead of repeated sweeps over every ILFD. Tuple values that were
/// never interned by any ILFD cannot fire a rule and are skipped.
Result<Derivation> DeriveExhaustive(const TupleView& tuple,
                                    const IlfdSet& ilfds,
                                    const DerivationOptions& options,
                                    ClosureEvaluator* evaluator) {
  Derivation out;
  const AtomTable& atoms = ilfds.atoms();

  // Base bindings (non-NULL tuple values) and the closure seed.
  std::map<std::string, Value> base;
  std::vector<AtomId> seed;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple.at(i).is_null()) continue;
    const std::string& attr = tuple.schema().attribute(i).name;
    base.emplace(attr, tuple.at(i));
    std::optional<AtomId> id = atoms.Find(attr, tuple.at(i));
    if (id.has_value()) seed.push_back(*id);
  }
  AtomSet seed_set(std::move(seed));
  ClosureResult closure = evaluator != nullptr
                              ? evaluator->Run(seed_set)
                              : ilfds.kb().ForwardClosure(seed_set);

  // Visit derived atoms in derivation order (clause firing order, heads in
  // clause order), binding each attribute to its first-derived value and
  // reporting later disagreements as conflicts.
  std::map<std::string, Binding> bound;
  std::set<std::string> conflicted;  // attributes nulled out (kNullOut)
  for (size_t clause_index : closure.firing_order) {
    const Implication& clause = ilfds.kb().clause(clause_index);
    for (AtomId h : clause.head.ids()) {
      auto prov = closure.provenance.find(h);
      if (prov == closure.provenance.end() ||
          prov->second != clause_index) {
        continue;  // atom was in the seed or derived by an earlier clause
      }
      const Atom& atom = atoms.atom(h);
      size_t fi = clause_index;  // IlfdSet mirrors ILFDs 1:1 into the KB

      // Conflict against the base tuple?
      auto base_it = base.find(atom.attribute);
      const Value* first_value = nullptr;
      size_t first_source = kBaseProvenance;
      if (base_it != base.end()) {
        first_value = &base_it->second;
      } else {
        auto bound_it = bound.find(atom.attribute);
        if (bound_it != bound.end()) {
          first_value = &bound_it->second.value;
          first_source = bound_it->second.source;
        }
      }
      if (first_value == nullptr) {
        if (conflicted.count(atom.attribute) > 0) continue;
        bound[atom.attribute] = Binding{atom.value, fi};
        out.steps.push_back(DerivationStep{atom.attribute, atom.value, fi});
        continue;
      }
      if (*first_value == atom.value) continue;
      DerivationConflict conflict{atom.attribute, *first_value, atom.value,
                                  first_source, fi};
      if (options.conflict_policy == ConflictPolicy::kError) {
        return DerivationConflictError(conflict, tuple.ToString());
      }
      out.conflicts.push_back(conflict);
      if (options.conflict_policy == ConflictPolicy::kNullOut &&
          first_source != kBaseProvenance) {
        bound.erase(atom.attribute);
        conflicted.insert(atom.attribute);
      }
      // kKeepFirst (and conflicts against base values): first value stands.
    }
  }

  for (const auto& [attr, binding] : bound) {
    if (!options.target_attributes.empty()) {
      bool wanted = false;
      for (const std::string& t : options.target_attributes) {
        if (t == attr) {
          wanted = true;
          break;
        }
      }
      if (!wanted) continue;
    }
    out.derived[attr] = binding.value;
  }
  return out;
}

/// Backward chaining with the prototype's cut semantics.
class FirstMatchResolver {
 public:
  FirstMatchResolver(const TupleView& tuple, const IlfdSet& ilfds,
                     Derivation* out)
      : tuple_(tuple), ilfds_(ilfds), out_(out) {}

  /// Resolved value of `attribute` (base, memoized, or derived); NULL when
  /// underivable.
  Value Resolve(const std::string& attribute) {
    Value base = tuple_.GetOrNull(attribute);
    if (!base.is_null()) return base;
    auto memo_it = memo_.find(attribute);
    if (memo_it != memo_.end()) return memo_it->second;
    if (in_progress_.count(attribute) > 0) {
      return Value::Null();  // cycle: the Prolog query would not terminate;
                             // we fail the subgoal instead.
    }
    in_progress_.insert(attribute);
    Value result = Value::Null();
    for (size_t fi = 0; fi < ilfds_.size() && result.is_null(); ++fi) {
      const Ilfd& f = ilfds_.ilfd(fi);
      const Atom* head = nullptr;
      for (const Atom& c : f.consequent()) {
        if (c.attribute == attribute) {
          head = &c;
          break;
        }
      }
      if (head == nullptr) continue;
      bool holds = true;
      for (const Atom& a : f.antecedent()) {
        if (!NonNullEq(Resolve(a.attribute), a.value)) {
          holds = false;
          break;
        }
      }
      if (!holds) continue;
      // Cut: commit this rule's conclusions.
      result = head->value;
      out_->steps.push_back(DerivationStep{attribute, head->value, fi});
      for (const Atom& c : f.consequent()) {
        if (c.attribute == attribute) continue;
        if (!tuple_.GetOrNull(c.attribute).is_null()) continue;
        if (memo_.count(c.attribute) > 0 && !memo_[c.attribute].is_null()) {
          continue;
        }
        memo_[c.attribute] = c.value;
        out_->steps.push_back(DerivationStep{c.attribute, c.value, fi});
      }
    }
    memo_[attribute] = result;
    in_progress_.erase(attribute);
    return result;
  }

 private:
  const TupleView& tuple_;
  const IlfdSet& ilfds_;
  Derivation* out_;
  std::map<std::string, Value> memo_;
  std::unordered_set<std::string> in_progress_;
};

Result<Derivation> DeriveFirstMatch(const TupleView& tuple,
                                    const IlfdSet& ilfds,
                                    const DerivationOptions& options) {
  Derivation out;
  std::vector<std::string> targets = options.target_attributes;
  if (targets.empty()) {
    std::set<std::string> all;
    for (const Ilfd& f : ilfds.ilfds()) {
      for (const std::string& a : f.ConsequentAttributes()) all.insert(a);
    }
    targets.assign(all.begin(), all.end());
  }
  FirstMatchResolver resolver(tuple, ilfds, &out);
  for (const std::string& attr : targets) {
    if (!tuple.GetOrNull(attr).is_null()) continue;  // base value stands
    Value v = resolver.Resolve(attr);
    if (!v.is_null()) out.derived[attr] = v;
  }
  return out;
}

}  // namespace

Result<Derivation> DeriveTuple(const TupleView& tuple, const IlfdSet& ilfds,
                               const DerivationOptions& options) {
  return DeriveTuple(tuple, ilfds, options, /*evaluator=*/nullptr);
}

Result<Derivation> DeriveTuple(const TupleView& tuple, const IlfdSet& ilfds,
                               const DerivationOptions& options,
                               ClosureEvaluator* evaluator) {
  switch (options.mode) {
    case DerivationMode::kExhaustive:
      return DeriveExhaustive(tuple, ilfds, options, evaluator);
    case DerivationMode::kFirstMatch:
      return DeriveFirstMatch(tuple, ilfds, options);
  }
  return Status::Internal("unknown derivation mode");
}

}  // namespace eid
