// ILFD violation checking over relations.
//
// The paper assumes "all tuples modeling the real world are consistent with
// the ILFDs" (§4.1). Before trusting ILFDs to derive matching decisions, an
// integrator should audit the source relations against them — an
// inconsistent tuple fed through derivation can produce an unsound match.
// Violation checking involves one tuple at a time (a defining difference
// from FDs, §4.1).

#ifndef EID_ILFD_VIOLATION_H_
#define EID_ILFD_VIOLATION_H_

#include <string>
#include <vector>

#include "ilfd/ilfd_set.h"
#include "relational/relation.h"

namespace eid {

/// One tuple/ILFD inconsistency.
struct IlfdViolation {
  size_t row_index = 0;
  size_t ilfd_index = 0;
  std::string description;
};

/// Options for CheckViolations.
struct ViolationOptions {
  /// When true, a tuple whose antecedent holds but whose consequent
  /// attribute is NULL counts as a violation (strict completeness reading);
  /// default treats NULL as merely missing, not inconsistent.
  bool null_violates = false;
  /// Also test every ILFD *implied* by the set via condition closure, not
  /// just the listed ones. A tuple can satisfy each listed ILFD's direct
  /// reading yet contradict a derived one when NULLs mask intermediate
  /// steps; closure checking derives step-by-step.
  bool check_derived = true;
};

/// True iff every row of `relation` satisfies `ilfd`.
bool RelationSatisfies(const Relation& relation, const Ilfd& ilfd,
                       bool null_violates = false);

/// All violations of `ilfds` in `relation`. With `check_derived`, each
/// tuple's non-NULL conditions are closed under the ILFDs and any closure
/// atom contradicting a non-NULL tuple value is reported (attributed to the
/// first listed ILFD producing it).
std::vector<IlfdViolation> CheckViolations(
    const Relation& relation, const IlfdSet& ilfds,
    const ViolationOptions& options = {});

}  // namespace eid

#endif  // EID_ILFD_VIOLATION_H_
