// ILFD tables: uniform ILFD families stored as relations (paper Table 8).
//
// When many useful ILFDs share one format — same antecedent attributes x̄,
// same consequent attribute y — the paper stores them as a relation
// IM(x̄, y): one tuple per ILFD. Example (Table 8):
//
//     IM(speciality, cuisine) = { (Hunan, Chinese), (Sichuan, Chinese),
//                                 (Gyros, Greek), (Mughalai, Indian) }
//
// The §4.2 matching-table pipeline joins source relations with IM tables to
// compute missing extended-key attribute values.

#ifndef EID_ILFD_ILFD_TABLE_H_
#define EID_ILFD_ILFD_TABLE_H_

#include <string>
#include <vector>

#include "ilfd/ilfd.h"
#include "relational/relation.h"

namespace eid {

/// A relation-backed family of same-format ILFDs.
class IlfdTable {
 public:
  /// Creates an empty table IM(antecedent_attributes..., consequent).
  /// Attribute value types default to string.
  IlfdTable(std::vector<std::string> antecedent_attributes,
            std::string consequent_attribute);

  const std::vector<std::string>& antecedent_attributes() const {
    return antecedent_attributes_;
  }
  const std::string& consequent_attribute() const {
    return consequent_attribute_;
  }

  /// The backing relation IM(x̄, y). Its candidate key is x̄ — two ILFDs
  /// with equal antecedents and different consequents would be
  /// contradictory (an entity cannot have two values for one property).
  const Relation& relation() const { return relation_; }

  size_t size() const { return relation_.size(); }

  /// Adds one ILFD row: antecedent values (ordered as
  /// antecedent_attributes) plus the consequent value.
  Status AddEntry(std::vector<Value> antecedent_values,
                  Value consequent_value);

  /// Adds `ilfd` if it matches this table's format; error otherwise.
  Status AddIlfd(const Ilfd& ilfd);

  /// Consequent value derived for a tuple, or NULL when no entry matches.
  Value Lookup(const TupleView& tuple) const;

  /// The table's rows as explicit ILFDs.
  std::vector<Ilfd> ToIlfds() const;

  /// Groups `ilfds` into the smallest number of uniform tables. ILFDs whose
  /// format is unique still get a (singleton) table. Error if any ILFD has
  /// a multi-atom consequent (decompose first).
  static Result<std::vector<IlfdTable>> Partition(
      const std::vector<Ilfd>& ilfds);

  /// Builds a single table from ILFDs that must all share one format.
  static Result<IlfdTable> FromIlfds(const std::vector<Ilfd>& ilfds);

 private:
  std::vector<std::string> antecedent_attributes_;
  std::string consequent_attribute_;
  Relation relation_;
};

}  // namespace eid

#endif  // EID_ILFD_ILFD_TABLE_H_
