#include "eid/algebra_pipeline.h"

#include <algorithm>
#include <set>

#include "relational/algebra.h"

namespace eid {
namespace {

/// Safety bound on derivation rounds (a chain can never be longer than the
/// number of distinct consequent attributes; 64 is far beyond any real
/// knowledge base and guards against pathological inputs).
constexpr size_t kMaxRounds = 64;

/// Appends an all-NULL column named `attribute` to `input`.
Relation AppendNullColumn(const Relation& input, const std::string& attribute,
                          ValueType type) {
  std::vector<Attribute> attrs = input.schema().attributes();
  attrs.push_back(Attribute{attribute, type});
  Relation out(input.name(), Schema(std::move(attrs)));
  for (const Row& row : input.rows()) {
    Row extended = row;
    extended.push_back(Value::Null());
    Status st = out.Insert(std::move(extended));
    EID_CHECK(st.ok());
  }
  return out;
}

size_t CountNonNull(const Relation& rel, const std::string& attribute) {
  std::optional<size_t> idx = rel.schema().IndexOf(attribute);
  if (!idx.has_value()) return 0;
  size_t count = 0;
  for (const Row& row : rel.rows()) {
    if (!row[*idx].is_null()) ++count;
  }
  return count;
}

/// Merges derived values D(key, y) into `current`:
///  * y absent  — natural left outer join (the paper's ⟕);
///  * y present — rename y→y#old, left outer join with D, then per row
///    coalesce(y#old, D.y); a key with several conflicting D rows yields
///    several output rows, surfacing the conflict for the uniqueness check
///    rather than hiding it.
Result<Relation> MergeDerived(const Relation& current, const Relation& d,
                              const std::string& y) {
  if (!current.schema().Contains(y)) {
    return LeftOuterJoin(current, d, NullPolicy::kNullEqualsNull);
  }
  EID_ASSIGN_OR_RETURN(Relation renamed, Rename(current, y, y + "#old"));
  EID_ASSIGN_OR_RETURN(Relation joined,
                       LeftOuterJoin(renamed, d, NullPolicy::kNullEqualsNull));
  // Rebuild with a single y column = coalesce(y#old, y).
  EID_ASSIGN_OR_RETURN(size_t old_idx, joined.schema().RequireIndex(y + "#old"));
  EID_ASSIGN_OR_RETURN(size_t new_idx, joined.schema().RequireIndex(y));
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < joined.schema().size(); ++i) {
    if (i == new_idx) continue;
    Attribute a = joined.schema().attribute(i);
    if (i == old_idx) a.name = y;
    attrs.push_back(std::move(a));
  }
  Relation out(current.name(), Schema(std::move(attrs)));
  for (const Row& row : joined.rows()) {
    Row merged;
    merged.reserve(attrs.size());
    for (size_t i = 0; i < joined.schema().size(); ++i) {
      if (i == new_idx) continue;
      if (i == old_idx && row[old_idx].is_null()) {
        merged.push_back(row[new_idx]);
      } else {
        merged.push_back(row[i]);
      }
    }
    EID_RETURN_IF_ERROR(out.Insert(std::move(merged)));
  }
  return out;
}

}  // namespace

Result<std::pair<Relation, size_t>> ExtendAlgebraically(
    const Relation& world_named, const ExtendedKey& ext_key,
    const std::vector<IlfdTable>& tables) {
  const std::vector<std::string> key_names = world_named.PrimaryKeyNames();
  const std::vector<std::string> original_attrs = [&] {
    std::vector<std::string> names;
    for (const Attribute& a : world_named.schema().attributes()) {
      names.push_back(a.name);
    }
    return names;
  }();

  // Consequent attributes, in first-table order, skipping key attributes
  // (they are never NULL, so there is nothing to derive).
  std::vector<std::string> consequents;
  for (const IlfdTable& t : tables) {
    const std::string& y = t.consequent_attribute();
    if (std::find(key_names.begin(), key_names.end(), y) != key_names.end()) {
      continue;
    }
    if (std::find(consequents.begin(), consequents.end(), y) ==
        consequents.end()) {
      consequents.push_back(y);
    }
  }

  Relation current = world_named;
  size_t rounds = 0;
  bool changed = true;
  while (changed && rounds < kMaxRounds) {
    changed = false;
    for (const std::string& y : consequents) {
      // R_y = ∪_u Π_{K, y}(Π_{K ∪ x̄u}(current) ⋈ IM_u) over every usable
      // IM table (the paper's union across IM tables for one attribute).
      // The inner projection drops a partially-filled y column so the
      // natural join binds on the antecedent attributes only.
      std::optional<Relation> r_y;
      for (const IlfdTable& t : tables) {
        if (t.consequent_attribute() != y) continue;
        bool covered = true;
        for (const std::string& a : t.antecedent_attributes()) {
          if (!current.schema().Contains(a)) {
            covered = false;
            break;
          }
        }
        if (!covered) continue;
        std::vector<std::string> inner = key_names;
        for (const std::string& a : t.antecedent_attributes()) {
          if (std::find(inner.begin(), inner.end(), a) == inner.end()) {
            inner.push_back(a);
          }
        }
        EID_ASSIGN_OR_RETURN(Relation narrowed, Project(current, inner));
        EID_ASSIGN_OR_RETURN(Relation joined,
                             NaturalJoin(narrowed, t.relation(),
                                         NullPolicy::kNullNeverMatches));
        std::vector<std::string> projection = key_names;
        projection.push_back(y);
        EID_ASSIGN_OR_RETURN(Relation d, Project(joined, projection));
        if (!r_y.has_value()) {
          r_y = std::move(d);
        } else {
          EID_ASSIGN_OR_RETURN(*r_y, Union(*r_y, d));
        }
      }
      if (!r_y.has_value() || r_y->empty()) continue;
      size_t before = CountNonNull(current, y);
      size_t rows_before = current.size();
      EID_ASSIGN_OR_RETURN(Relation merged, MergeDerived(current, *r_y, y));
      // Re-merging a conflicted key joins each of its rows with every
      // conflicting derivation again; Distinct keeps the row set at the
      // fixpoint instead of letting it grow each sweep.
      current = Distinct(merged);
      size_t after = CountNonNull(current, y);
      if (after > before || current.size() != rows_before) changed = true;
    }
    if (changed) ++rounds;
  }

  // Extended-key attributes no IM table can derive become NULL columns so
  // R' has the full K_Ext schema (paper §4.2 step 1).
  for (const std::string& a : ext_key.attributes()) {
    if (!current.schema().Contains(a)) {
      current = AppendNullColumn(current, a, ValueType::kString);
    }
  }

  // Drop intermediate derived attributes (e.g. county on the R side):
  // R' carries the original attributes plus K_Ext−R, as in the paper.
  std::vector<std::string> keep = original_attrs;
  for (const std::string& a : ext_key.attributes()) {
    if (std::find(keep.begin(), keep.end(), a) == keep.end()) {
      keep.push_back(a);
    }
  }
  if (keep.size() != current.schema().size()) {
    EID_ASSIGN_OR_RETURN(current, ProjectBag(current, keep));
  }
  current.set_name(world_named.name() + "'");
  return std::make_pair(std::move(current), rounds);
}

Result<AlgebraPipelineResult> BuildMatchingTableAlgebraically(
    const Relation& r, const Relation& s, const AttributeCorrespondence& corr,
    const ExtendedKey& ext_key, const std::vector<IlfdTable>& tables) {
  if (ext_key.empty()) {
    return Status::InvalidArgument("extended key must be non-empty");
  }
  EID_RETURN_IF_ERROR(corr.ValidateAgainst(r, s));
  EID_ASSIGN_OR_RETURN(Relation r_world, corr.ToWorldNaming(r, Side::kR));
  EID_ASSIGN_OR_RETURN(Relation s_world, corr.ToWorldNaming(s, Side::kS));

  const std::vector<std::string> r_keys = r_world.PrimaryKeyNames();
  const std::vector<std::string> s_keys = s_world.PrimaryKeyNames();

  AlgebraPipelineResult out;
  {
    EID_ASSIGN_OR_RETURN(auto extended,
                         ExtendAlgebraically(r_world, ext_key, tables));
    out.r_extended = std::move(extended.first);
    out.r_rounds = extended.second;
  }
  {
    EID_ASSIGN_OR_RETURN(auto extended,
                         ExtendAlgebraically(s_world, ext_key, tables));
    out.s_extended = std::move(extended.first);
    out.s_rounds = extended.second;
  }

  // Prefix columns, join over the extended key, project the keys.
  auto prefixed = [](const Relation& rel,
                     const std::string& prefix) -> Result<Relation> {
    std::vector<std::string> names;
    for (const Attribute& a : rel.schema().attributes()) {
      names.push_back(prefix + a.name);
    }
    return RenameAll(rel, names);
  };
  EID_ASSIGN_OR_RETURN(Relation r_prefixed, prefixed(out.r_extended, "R."));
  EID_ASSIGN_OR_RETURN(Relation s_prefixed, prefixed(out.s_extended, "S."));

  std::vector<JoinCondition> conditions;
  for (const std::string& a : ext_key.attributes()) {
    conditions.push_back(JoinCondition{"R." + a, "S." + a});
  }
  EID_ASSIGN_OR_RETURN(Relation joined,
                       EquiJoin(r_prefixed, s_prefixed, conditions,
                                NullPolicy::kNullNeverMatches));
  std::vector<std::string> mt_columns;
  for (const std::string& k : r_keys) mt_columns.push_back("R." + k);
  for (const std::string& k : s_keys) mt_columns.push_back("S." + k);
  EID_ASSIGN_OR_RETURN(Relation mt, ProjectBag(joined, mt_columns));
  mt.set_name("MT");
  out.matching = std::move(mt);
  return out;
}

}  // namespace eid
